// Adaptive: a-FlexCore in action (Fig. 10's right axis) — the same
// 64-PE detector is prepared on channels of increasing difficulty, and
// the pre-processing stopping criterion activates only as many
// processing elements as the channel requires.
package main

import (
	"fmt"
	"log"

	"flexcore"
	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
)

func main() {
	cons := flexcore.MustConstellation(64)
	af := flexcore.New(cons, flexcore.Options{NPE: 64, Threshold: 0.95})

	fmt.Println("a-FlexCore with 64 available PEs, 0.95 cumulative-probability stop")
	fmt.Println()
	fmt.Printf("%-44s %-10s %s\n", "channel", "SNR (dB)", "active PEs")

	show := func(name string, h *flexcore.Matrix, snrdB float64) {
		if err := af.Prepare(h, flexcore.Sigma2FromSNRdB(snrdB)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-44s %-10.1f %d\n", name, snrdB, af.ActivePaths())
	}

	// An orthogonal channel at high SNR needs essentially one path — the
	// complexity of linear detection, as the paper highlights.
	show("identity (orthogonal streams)", cmatrix.Identity(12), 30)

	// Well-behaved random channels at decreasing SNR need more.
	rng := channel.NewRNG(77)
	h := channel.Rayleigh(rng, 12, 12)
	for _, snr := range []float64{30, 24, 21.6, 18, 14} {
		show("12×12 Rayleigh", h, snr)
	}

	// Fewer users than antennas → well-conditioned → few active PEs even
	// at moderate SNR (Fig. 10's 6-user regime).
	h6 := channel.Rayleigh(rng, 12, 6)
	show("6 users × 12 antennas", h6, 21.6)

	// A badly conditioned channel exhausts the budget.
	bad := channel.Rayleigh(rng, 12, 12)
	for i := 0; i < 12; i++ {
		bad.Set(i, 1, bad.At(i, 0)+0.05*bad.At(i, 1)) // two nearly parallel users
	}
	show("12×12 with two nearly-parallel users", bad, 21.6)

	fmt.Println()
	fmt.Println("The active-PE count is the knob that lets a-FlexCore spend linear-")
	fmt.Println("detection complexity on easy channels and near-ML complexity only")
	fmt.Println("when the channel actually demands it (paper §5.1, Fig. 10).")
}
