// LTE: Fig. 12's feasibility view — for every LTE bandwidth mode, how
// many sphere-decoder paths each detector can evaluate within the 500 µs
// timeslot on the calibrated GPU model, and what that implies.
package main

import (
	"fmt"

	"flexcore/internal/platform/gpu"
	"flexcore/internal/platform/lte"
)

func main() {
	d := gpu.GTX970
	fmt.Printf("device: %s — %d lanes, %.0f µs fixed overhead\n\n", d.Name, d.Cores, d.Overhead*1e6)
	for _, nt := range []int{8, 12} {
		fmt.Printf("%d users × %d AP antennas, 64-QAM\n", nt, nt)
		fmt.Printf("%-10s %-14s %-16s %-14s %s\n", "mode", "vectors/slot", "FlexCore paths", "FCSD L=1", "FCSD L=2")
		for _, m := range lte.Modes {
			flexPaths := m.MaxPaths(d, nt, true)
			f1 := "infeasible"
			if m.SupportsFCSD(d, nt, 64, 1) {
				f1 = "ok (64 paths)"
			}
			f2 := "infeasible"
			if m.SupportsFCSD(d, nt, 64, 2) {
				f2 = "ok (4096 paths)"
			}
			fmt.Printf("%-10s %-14d %-16d %-14s %s\n", m.Name, m.VectorsPerSlot(), flexPaths, f1, f2)
		}
		fmt.Println()
	}
	fmt.Println("FlexCore degrades gracefully (fewer paths, small SNR loss) as the")
	fmt.Println("bandwidth grows; the FCSD's all-or-|Q|^L path requirement makes it")
	fmt.Println("infeasible beyond the narrowest mode — the paper's Fig. 12.")
	fmt.Println("Run `flexbench fig12` for the measured SNR losses at these budgets.")
}
