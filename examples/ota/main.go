// OTA: a full time-domain "over-the-air"-style run — the software
// analogue of the paper's WARP experiments. Every user synthesises an
// OFDM waveform (staggered LTF preamble + payload), the waveforms pass
// through per-antenna-pair multipath channels sample by sample, and the
// AP estimates channels from the preamble before detecting with
// FlexCore, exact ML and MMSE.
package main

import (
	"fmt"
	"log"

	"flexcore"
	"flexcore/internal/phy"
)

func main() {
	cons := flexcore.MustConstellation(16)
	base := phy.WaveformConfig{
		Users:         4,
		APAntennas:    4,
		Constellation: cons,
		DataSymbols:   20,
		Taps:          6,
		Seed:          42,
	}
	fmt.Println("4 users × 4 antennas, 16-QAM, 6-tap multipath, LTF-estimated channels")
	fmt.Println()
	fmt.Printf("%-8s %-22s %-10s %s\n", "SNR", "detector", "SER", "channel est. MSE")
	for _, snr := range []float64{12, 16, 20} {
		for _, det := range []flexcore.Detector{
			flexcore.New(cons, flexcore.Options{NPE: 32}),
			flexcore.NewML(cons),
			flexcore.NewMMSE(cons),
		} {
			cfg := base
			cfg.SNRdB = snr
			cfg.Detector = det
			res, err := phy.RunWaveform(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8.0f %-22s %-10.4f %.2e\n", snr, det.Name(), res.SER, res.ChannelErrVar)
		}
		fmt.Println()
	}
	fmt.Println("FlexCore tracks ML on the estimated channels while MMSE trails —")
	fmt.Println("the paper's over-the-air conclusion, reproduced at waveform level.")
}
