// Quickstart: detect one 12×12 64-QAM MIMO vector with FlexCore and
// compare the result (and the work done) against exact ML sphere
// decoding and linear MMSE.
package main

import (
	"fmt"
	"log"

	"flexcore"
	"flexcore/internal/channel"
)

func main() {
	const (
		users = 12
		snrdB = 21.6 // the paper's 64-QAM PER_ML=0.01 operating point
	)
	cons := flexcore.MustConstellation(64)
	sigma2 := flexcore.Sigma2FromSNRdB(snrdB)

	// One channel realisation (e.g. one OFDM subcarrier) and one
	// transmitted symbol vector.
	h := flexcore.Rayleigh(2026, users, users)
	rng := channel.NewRNG(7)
	tx := make([]int, users)
	x := make([]complex128, users)
	for i := range x {
		tx[i] = rng.IntN(cons.Size())
		x[i] = cons.Point(tx[i])
	}
	y := h.MulVec(x)
	channel.AddAWGN(rng, y, sigma2)

	detectors := []flexcore.Detector{
		flexcore.New(cons, flexcore.Options{NPE: 128}),
		flexcore.NewML(cons),
		flexcore.NewMMSE(cons),
	}
	fmt.Printf("transmitted: %v\n\n", tx)
	for _, det := range detectors {
		if err := det.Prepare(h, sigma2); err != nil {
			log.Fatalf("%s: %v", det.Name(), err)
		}
		got := det.Detect(y)
		errs := 0
		for i := range tx {
			if got[i] != tx[i] {
				errs++
			}
		}
		ops := det.OpCount().PerDetection()
		fmt.Printf("%-18s detected %v\n", det.Name(), got)
		fmt.Printf("%-18s stream errors: %d | per-detection: %d real muls, %d tree nodes\n\n",
			"", errs, ops.RealMuls, ops.Nodes)
	}

	// FlexCore's pre-processing is inspectable: the most promising tree
	// paths for this channel, with their model probabilities.
	paths := flexcore.FindPaths(flexcore.SortedQR(h).R, sigma2, cons, 5, 0)
	fmt.Println("five most promising position vectors (rank per level, top level last):")
	for _, p := range paths {
		fmt.Printf("  %v  Pc=%.3g\n", p.Ranks, p.Prob())
	}
}
