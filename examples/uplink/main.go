// Uplink: a Fig. 9-style measurement — eight users send 16-QAM coded
// packets to an 8-antenna AP at the PER_ML = 0.1 operating point, and
// the achievable network throughput of FlexCore is swept against the
// available processing elements, with FCSD, MMSE and ML references.
package main

import (
	"fmt"
	"log"

	"flexcore"
	"flexcore/internal/coding"
	"flexcore/internal/phy"
)

func main() {
	cons := flexcore.MustConstellation(16)
	link := flexcore.LinkConfig{
		Users:         8,
		APAntennas:    8,
		Constellation: cons,
		CodeRate:      coding.Rate12,
		Subcarriers:   8,
		OFDMSymbols:   8,
	}
	channels := func(seed uint64) flexcore.ChannelProvider {
		return &phy.FlatProvider{Seed: seed, Users: 8, APAntennas: 8, Subcarriers: 8, APCorrelation: 0.6}
	}

	// Anchor the SNR where exact ML reaches PER ≈ 0.1 — the paper's
	// definition of this experiment's operating point.
	snr, perML, err := flexcore.CalibrateSNR(flexcore.CalibrationConfig{
		Link:       link,
		TargetPER:  0.1,
		Packets:    24,
		Seed:       4,
		LoDB:       4,
		HiDB:       30,
		Iterations: 7,
		MLMaxNodes: 20000,
		Channels:   channels(4),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operating point: %.1f dB (measured PER_ML %.3f)\n\n", snr, perML)

	measure := func(det flexcore.Detector) flexcore.SimResult {
		res, err := flexcore.RunLink(flexcore.SimConfig{
			Link: link, SNRdB: snr, Packets: 30, Seed: 5,
			Detector: det, Channels: channels(5),
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("NPE   FlexCore throughput")
	for _, npe := range []int{1, 4, 16, 64, 128} {
		res := measure(flexcore.New(cons, flexcore.Options{NPE: npe}))
		fmt.Printf("%-5d %.0f Mbit/s (PER %.3f)\n", npe, res.ThroughputBps/1e6, res.PER)
	}
	fmt.Println()
	fcsd := measure(flexcore.NewFCSD(cons, 1))
	fmt.Printf("FCSD L=1 (16 paths): %.0f Mbit/s (PER %.3f)\n", fcsd.ThroughputBps/1e6, fcsd.PER)
	mmse := measure(flexcore.NewMMSE(cons))
	fmt.Printf("MMSE:                %.0f Mbit/s (PER %.3f)\n", mmse.ThroughputBps/1e6, mmse.PER)
	ml := measure(flexcore.NewML(cons))
	fmt.Printf("ML bound:            %.0f Mbit/s (PER %.3f)\n", ml.ThroughputBps/1e6, ml.PER)
}
