package coding

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newRng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+7)) }

func randBits(rng *rand.Rand, n int) []uint8 {
	b := make([]uint8, n)
	for i := range b {
		b[i] = uint8(rng.IntN(2))
	}
	return b
}

func TestEncodeKnownVector(t *testing.T) {
	// A single 1 bit through the zero-state encoder must emit the
	// generator polynomials' impulse response.
	got := EncodeRate12([]uint8{1})
	// Step 0: reg = 1000000b; g0 taps (1011011) → bit6 set → 1;
	// g1 (1111001) → bit6 set → 1.
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("impulse start %v", got[:2])
	}
	if len(got) != 2*(1+ConstraintLength-1) {
		t.Fatalf("impulse length %d", len(got))
	}
}

func TestEncodeLength(t *testing.T) {
	for _, n := range []int{0, 1, 10, 100} {
		if got := len(EncodeRate12(make([]uint8, n))); got != 2*(n+6) {
			t.Fatalf("n=%d: coded length %d", n, got)
		}
	}
}

func TestViterbiNoErrors(t *testing.T) {
	rng := newRng(81)
	for _, n := range []int{1, 17, 64, 512} {
		info := randBits(rng, n)
		dec, err := DecodeRate12(EncodeRate12(info), n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range info {
			if dec[i] != info[i] {
				t.Fatalf("n=%d: bit %d differs", n, i)
			}
		}
	}
}

func TestViterbiCorrectsScatteredErrors(t *testing.T) {
	// The free distance of the (133,171) code is 10, so it corrects up to
	// 4 errors in a constraint span; scattered single errors must always
	// be corrected.
	rng := newRng(82)
	info := randBits(rng, 256)
	coded := EncodeRate12(info)
	for i := 0; i < len(coded); i += 40 {
		coded[i] ^= 1
	}
	dec, err := DecodeRate12(coded, len(info))
	if err != nil {
		t.Fatal(err)
	}
	for i := range info {
		if dec[i] != info[i] {
			t.Fatalf("scattered errors not corrected at bit %d", i)
		}
	}
}

func TestViterbiBurstBeyondCapacityFails(t *testing.T) {
	// A long burst must defeat the decoder — guards against a decoder
	// that accidentally ignores its input.
	rng := newRng(83)
	info := randBits(rng, 128)
	coded := EncodeRate12(info)
	for i := 40; i < 90; i++ {
		coded[i] ^= 1
	}
	dec, err := DecodeRate12(coded, len(info))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range info {
		if dec[i] != info[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("decoder claimed to correct an uncorrectable burst")
	}
}

func TestViterbiErasuresOnly(t *testing.T) {
	// With moderate erasures and no errors the decoder must still recover
	// (erasures carry no metric penalty either way).
	rng := newRng(84)
	info := randBits(rng, 200)
	coded := EncodeRate12(info)
	for i := 0; i < len(coded); i += 4 {
		coded[i] = Erasure
	}
	dec, err := DecodeRate12(coded, len(info))
	if err != nil {
		t.Fatal(err)
	}
	for i := range info {
		if dec[i] != info[i] {
			t.Fatalf("erasure-only stream not recovered at %d", i)
		}
	}
}

func TestViterbiLengthValidation(t *testing.T) {
	if _, err := DecodeRate12(make([]uint8, 10), 100); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := newRng(seed)
		n := 1 + int(seed%200)
		info := randBits(rng, n)
		dec, err := DecodeRate12(EncodeRate12(info), n)
		if err != nil {
			return false
		}
		for i := range info {
			if dec[i] != info[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaverBijective(t *testing.T) {
	for _, tc := range []struct{ ncbps, nbpsc int }{
		{96, 2}, {192, 4}, {288, 6}, {384, 8},
	} {
		it, err := NewInterleaver(tc.ncbps, tc.nbpsc)
		if err != nil {
			t.Fatal(err)
		}
		rng := newRng(uint64(tc.ncbps))
		in := randBits(rng, tc.ncbps)
		out := it.Interleave(in)
		back := it.Deinterleave(out)
		for i := range in {
			if back[i] != in[i] {
				t.Fatalf("NCBPS=%d: round trip failed at %d", tc.ncbps, i)
			}
		}
		// The permutation must actually move bits.
		moved := 0
		for k, j := range it.fwd {
			if k != j {
				moved++
			}
		}
		if moved < tc.ncbps/2 {
			t.Fatalf("NCBPS=%d: permutation too close to identity (%d moved)", tc.ncbps, moved)
		}
	}
}

func TestInterleaverSpreadsAdjacentBits(t *testing.T) {
	// Adjacent coded bits must land on different subcarriers — the point
	// of the first permutation.
	it, err := NewInterleaver(288, 6) // 48 subcarriers × 64-QAM
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k+1 < 288; k++ {
		scA := it.fwd[k] / 6
		scB := it.fwd[k+1] / 6
		if scA == scB {
			t.Fatalf("adjacent bits %d,%d on same subcarrier %d", k, k+1, scA)
		}
	}
}

func TestInterleaverValidation(t *testing.T) {
	if _, err := NewInterleaver(100, 2); err == nil {
		t.Fatal("non-multiple-of-16 accepted")
	}
	if _, err := NewInterleaver(96, 5); err == nil {
		t.Fatal("incompatible NBPSC accepted")
	}
	if _, err := NewInterleaver(0, 1); err == nil {
		t.Fatal("zero NCBPS accepted")
	}
}

func TestPunctureRoundTrip(t *testing.T) {
	rng := newRng(85)
	for _, r := range []Rate{Rate12, Rate23, Rate34} {
		info := randBits(rng, 240)
		coded := EncodeRate12(info)
		p := Puncture(coded, r)
		if want := PuncturedLength(len(coded)/2, r); len(p) != want {
			t.Fatalf("rate %v: punctured length %d, want %d", r, len(p), want)
		}
		d, err := Depuncture(p, r, len(coded)/2)
		if err != nil {
			t.Fatal(err)
		}
		if len(d) != len(coded) {
			t.Fatalf("rate %v: depunctured length %d", r, len(d))
		}
		// Non-erased positions must match the original code word.
		for i := range d {
			if d[i] != Erasure && d[i] != coded[i] {
				t.Fatalf("rate %v: depunctured bit %d corrupted", r, i)
			}
		}
		// And the punctured code must still decode cleanly.
		dec, err := DecodeRate12(d, len(info))
		if err != nil {
			t.Fatal(err)
		}
		for i := range info {
			if dec[i] != info[i] {
				t.Fatalf("rate %v: punctured round trip failed at %d", r, i)
			}
		}
	}
}

func TestDepunctureValidation(t *testing.T) {
	if _, err := Depuncture(make([]uint8, 3), Rate23, 10); err == nil {
		t.Fatal("short punctured stream accepted")
	}
	if _, err := Depuncture(make([]uint8, 100), Rate23, 10); err == nil {
		t.Fatal("long punctured stream accepted")
	}
}

func TestRateValues(t *testing.T) {
	if Rate12.Value() != 0.5 || Rate34.Value() != 0.75 {
		t.Fatal("rate values wrong")
	}
	if Rate23.String() != "2/3" {
		t.Fatal("rate string wrong")
	}
}

func BenchmarkViterbi1024(b *testing.B) {
	rng := newRng(86)
	info := randBits(rng, 1024)
	coded := EncodeRate12(info)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRate12(coded, len(info)); err != nil {
			b.Fatal(err)
		}
	}
}
