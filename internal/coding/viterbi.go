package coding

import "fmt"

// DecodeRate12 performs hard-decision Viterbi decoding of a zero-tail
// terminated rate-1/2 code word (as produced by EncodeRate12, possibly
// with bit errors and Erasure symbols from depuncturing) and returns the
// info bits. infoLen is the number of information bits excluding the tail.
func DecodeRate12(coded []uint8, infoLen int) ([]uint8, error) {
	steps := infoLen + ConstraintLength - 1
	if len(coded) != 2*steps {
		return nil, fmt.Errorf("coding: code word length %d, want %d for %d info bits", len(coded), 2*steps, infoLen)
	}
	const inf = int32(1) << 28
	metric := make([]int32, numStates)
	next := make([]int32, numStates)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0 // encoder starts in the zero state
	// survivors[t][s] is the input bit that led to state s at step t+1,
	// packed with the predecessor state.
	type surv struct {
		prev  uint8
		input uint8
	}
	survivors := make([][]surv, steps)

	for t := 0; t < steps; t++ {
		r0, r1 := coded[2*t], coded[2*t+1]
		for i := range next {
			next[i] = inf
		}
		row := make([]surv, numStates)
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				out := branchOutputs[s][in]
				var bm int32
				if r0 != Erasure && (out>>1)&1 != r0&1 {
					bm++
				}
				if r1 != Erasure && out&1 != r1&1 {
					bm++
				}
				ns := (in<<(ConstraintLength-1) | s) >> 1
				if m+bm < next[ns] {
					next[ns] = m + bm
					row[ns] = surv{prev: uint8(s), input: uint8(in)}
				}
			}
		}
		survivors[t] = row
		metric, next = next, metric
	}

	// Zero-tail termination: trace back from state 0.
	decoded := make([]uint8, steps)
	state := 0
	for t := steps - 1; t >= 0; t-- {
		sv := survivors[t][state]
		decoded[t] = sv.input
		state = int(sv.prev)
	}
	return decoded[:infoLen], nil
}
