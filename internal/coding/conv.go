// Package coding implements the 802.11 forward-error-correction substrate
// used by the FlexCore evaluation: the rate-1/2 constraint-length-7
// convolutional code (g0 = 133, g1 = 171 octal) with zero-tail
// termination, a hard-decision Viterbi decoder with erasure support, the
// 802.11 two-permutation block interleaver, and the standard 2/3 and 3/4
// puncturing patterns.
package coding

import "math/bits"

const (
	// ConstraintLength of the 802.11 convolutional code.
	ConstraintLength = 7
	// numStates of the encoder shift register.
	numStates = 1 << (ConstraintLength - 1)
	// G0 and G1 are the industry-standard generator polynomials
	// (133 and 171 octal), tap 0 = current input bit.
	G0 = 0o133
	G1 = 0o171
)

// Bit values used throughout the package.
const (
	Zero    uint8 = 0
	One     uint8 = 1
	Erasure uint8 = 2 // depunctured position with no channel observation
)

// EncodeRate12 convolutionally encodes info with the 802.11 rate-1/2 code
// and zero-tail termination: ConstraintLength−1 zero bits are appended so
// the encoder ends in the all-zero state. The output holds
// 2·(len(info)+6) bits.
func EncodeRate12(info []uint8) []uint8 {
	out := make([]uint8, 0, 2*(len(info)+ConstraintLength-1))
	state := 0
	emit := func(b uint8) {
		reg := int(b&1)<<(ConstraintLength-1) | state
		out = append(out,
			uint8(bits.OnesCount(uint(reg&G0))&1),
			uint8(bits.OnesCount(uint(reg&G1))&1))
		state = reg >> 1
	}
	for _, b := range info {
		emit(b)
	}
	for i := 0; i < ConstraintLength-1; i++ {
		emit(0)
	}
	return out
}

// branchOutputs[state][input] packs the two coded bits (g0<<1 | g1)
// produced when `input` enters the register at `state`.
var branchOutputs [numStates][2]uint8

func init() {
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			reg := in<<(ConstraintLength-1) | s
			o0 := uint8(bits.OnesCount(uint(reg&G0)) & 1)
			o1 := uint8(bits.OnesCount(uint(reg&G1)) & 1)
			branchOutputs[s][in] = o0<<1 | o1
		}
	}
}
