package coding

import "testing"

func TestSoftViterbiCleanRoundTrip(t *testing.T) {
	rng := newRng(91)
	for _, n := range []int{1, 64, 300} {
		info := randBits(rng, n)
		coded := EncodeRate12(info)
		dec, err := DecodeRate12Soft(HardToLLR(coded, 4), n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range info {
			if dec[i] != info[i] {
				t.Fatalf("n=%d: soft round trip failed at %d", n, i)
			}
		}
	}
}

func TestSoftViterbiUsesReliability(t *testing.T) {
	// Construct a stream with errors placed on LOW-confidence positions:
	// the soft decoder must recover where a hard decoder (which weighs
	// all positions equally) fails.
	rng := newRng(92)
	info := randBits(rng, 200)
	coded := EncodeRate12(info)
	llrs := HardToLLR(coded, 8)
	hard := append([]uint8(nil), coded...)
	flips := 0
	for i := 10; i < len(coded) && flips < 40; i += 9 {
		// Flip the bit but mark it as very unreliable in the soft stream.
		hard[i] ^= 1
		if hard[i] == 1 {
			llrs[i] = -0.05
		} else {
			llrs[i] = 0.05
		}
		flips++
	}
	decSoft, err := DecodeRate12Soft(llrs, len(info))
	if err != nil {
		t.Fatal(err)
	}
	softErrs := 0
	for i := range info {
		if decSoft[i] != info[i] {
			softErrs++
		}
	}
	decHard, err := DecodeRate12(hard, len(info))
	if err != nil {
		t.Fatal(err)
	}
	hardErrs := 0
	for i := range info {
		if decHard[i] != info[i] {
			hardErrs++
		}
	}
	t.Logf("soft errors %d, hard errors %d", softErrs, hardErrs)
	if softErrs > hardErrs {
		t.Fatalf("soft decoding (%d errors) worse than hard (%d)", softErrs, hardErrs)
	}
	if softErrs != 0 {
		t.Fatalf("soft decoder failed to exploit reliability: %d errors", softErrs)
	}
}

func TestSoftViterbiZeroLLRsAreErasures(t *testing.T) {
	rng := newRng(93)
	info := randBits(rng, 150)
	coded := EncodeRate12(info)
	llrs := HardToLLR(coded, 5)
	for i := 0; i < len(llrs); i += 4 {
		llrs[i] = 0
	}
	dec, err := DecodeRate12Soft(llrs, len(info))
	if err != nil {
		t.Fatal(err)
	}
	for i := range info {
		if dec[i] != info[i] {
			t.Fatalf("zero-LLR stream not recovered at %d", i)
		}
	}
}

func TestSoftViterbiLengthValidation(t *testing.T) {
	if _, err := DecodeRate12Soft(make([]float64, 5), 100); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDepunctureLLRs(t *testing.T) {
	rng := newRng(94)
	for _, r := range []Rate{Rate12, Rate23, Rate34} {
		info := randBits(rng, 120)
		coded := EncodeRate12(info)
		punctured := Puncture(coded, r)
		llrs, err := DepunctureLLRs(HardToLLR(punctured, 6), r, len(coded)/2)
		if err != nil {
			t.Fatal(err)
		}
		if len(llrs) != len(coded) {
			t.Fatalf("rate %v: length %d", r, len(llrs))
		}
		dec, err := DecodeRate12Soft(llrs, len(info))
		if err != nil {
			t.Fatal(err)
		}
		for i := range info {
			if dec[i] != info[i] {
				t.Fatalf("rate %v: punctured soft round trip failed", r)
			}
		}
	}
	if _, err := DepunctureLLRs(make([]float64, 3), Rate23, 10); err == nil {
		t.Fatal("short LLR stream accepted")
	}
	if _, err := DepunctureLLRs(make([]float64, 99), Rate34, 10); err == nil {
		t.Fatal("long LLR stream accepted")
	}
}

func TestInterleaverLLRRoundTrip(t *testing.T) {
	it, err := NewInterleaver(192, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := newRng(95)
	in := make([]float64, 192)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	// Interleave the positions via the uint8 path, then check that the
	// LLR deinterleaver inverts the same permutation.
	tag := make([]uint8, 192)
	for i := range tag {
		tag[i] = uint8(i % 2)
	}
	perm := it.Interleave(tag)
	_ = perm
	shuffled := make([]float64, 192)
	for k := range in {
		shuffled[it.fwd[k]] = in[k]
	}
	back := it.DeinterleaveLLRs(shuffled)
	for i := range in {
		if back[i] != in[i] {
			t.Fatalf("LLR deinterleave mismatch at %d", i)
		}
	}
}
