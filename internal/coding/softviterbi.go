package coding

import "fmt"

// DecodeRate12Soft performs soft-decision Viterbi decoding of a
// zero-tail terminated rate-1/2 code word from log-likelihood ratios.
// llrs[i] is the LLR of coded bit i with the convention
// LLR = log P(bit=0)/P(bit=1): positive values favour 0. Punctured
// positions carry LLR 0 (no information), so no separate erasure symbol
// is needed. infoLen is the number of information bits.
//
// Soft decoding is the substrate for the paper's §7 future-work
// extension ("extend FlexCore to soft-detectors"); see detector-side LLR
// generation in internal/core.
func DecodeRate12Soft(llrs []float64, infoLen int) ([]uint8, error) {
	steps := infoLen + ConstraintLength - 1
	if len(llrs) != 2*steps {
		return nil, fmt.Errorf("coding: LLR length %d, want %d for %d info bits", len(llrs), 2*steps, infoLen)
	}
	const inf = 1e30
	metric := make([]float64, numStates)
	next := make([]float64, numStates)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0
	type surv struct {
		prev  uint8
		input uint8
	}
	survivors := make([][]surv, steps)

	for t := 0; t < steps; t++ {
		l0, l1 := llrs[2*t], llrs[2*t+1]
		for i := range next {
			next[i] = inf
		}
		row := make([]surv, numStates)
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				out := branchOutputs[s][in]
				// Branch metric: correlation distance. A transmitted 1
				// costs +LLR when the LLR favours 0 (and vice versa).
				var bm float64
				if (out>>1)&1 == 1 {
					bm += l0
				} else {
					bm -= l0
				}
				if out&1 == 1 {
					bm += l1
				} else {
					bm -= l1
				}
				ns := (in<<(ConstraintLength-1) | s) >> 1
				if m+bm < next[ns] {
					next[ns] = m + bm
					row[ns] = surv{prev: uint8(s), input: uint8(in)}
				}
			}
		}
		survivors[t] = row
		metric, next = next, metric
	}

	decoded := make([]uint8, steps)
	state := 0
	for t := steps - 1; t >= 0; t-- {
		sv := survivors[t][state]
		decoded[t] = sv.input
		state = int(sv.prev)
	}
	return decoded[:infoLen], nil
}

// HardToLLR converts hard bits (possibly with Erasure) to LLRs with the
// given confidence magnitude.
func HardToLLR(bits []uint8, confidence float64) []float64 {
	llrs := make([]float64, len(bits))
	for i, b := range bits {
		switch b {
		case Zero:
			llrs[i] = confidence
		case One:
			llrs[i] = -confidence
		default: // Erasure
			llrs[i] = 0
		}
	}
	return llrs
}
