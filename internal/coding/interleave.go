package coding

import "fmt"

// Interleaver is the 802.11 per-OFDM-symbol two-permutation block
// interleaver. ncbps is the number of coded bits per OFDM symbol for one
// spatial stream and nbpsc the number of coded bits per subcarrier
// (log2 of the constellation order).
type Interleaver struct {
	ncbps int
	fwd   []int // fwd[k] = position after interleaving of input bit k
	inv   []int
}

// NewInterleaver builds the interleaver for the given symbol geometry.
// ncbps must be a multiple of 16 (true for 48 data subcarriers and all
// supported constellations).
func NewInterleaver(ncbps, nbpsc int) (*Interleaver, error) {
	if ncbps <= 0 || ncbps%16 != 0 {
		return nil, fmt.Errorf("coding: NCBPS %d must be a positive multiple of 16", ncbps)
	}
	if nbpsc <= 0 || ncbps%nbpsc != 0 {
		return nil, fmt.Errorf("coding: NBPSC %d incompatible with NCBPS %d", nbpsc, ncbps)
	}
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	it := &Interleaver{ncbps: ncbps, fwd: make([]int, ncbps), inv: make([]int, ncbps)}
	for k := 0; k < ncbps; k++ {
		// First permutation: adjacent coded bits map onto non-adjacent
		// subcarriers.
		i := (ncbps/16)*(k%16) + k/16
		// Second permutation: adjacent coded bits alternate between less
		// and more significant constellation bits.
		j := s*(i/s) + (i+ncbps-16*i/ncbps)%s
		it.fwd[k] = j
		it.inv[j] = k
	}
	return it, nil
}

// BlockSize returns NCBPS.
func (it *Interleaver) BlockSize() int { return it.ncbps }

// Interleave permutes one NCBPS-sized block.
func (it *Interleaver) Interleave(in []uint8) []uint8 {
	if len(in) != it.ncbps {
		panic(fmt.Sprintf("coding: interleave block %d, want %d", len(in), it.ncbps))
	}
	out := make([]uint8, it.ncbps)
	for k, v := range in {
		out[it.fwd[k]] = v
	}
	return out
}

// Deinterleave inverts Interleave.
func (it *Interleaver) Deinterleave(in []uint8) []uint8 {
	if len(in) != it.ncbps {
		panic(fmt.Sprintf("coding: deinterleave block %d, want %d", len(in), it.ncbps))
	}
	out := make([]uint8, it.ncbps)
	for j, v := range in {
		out[it.inv[j]] = v
	}
	return out
}

// DeinterleaveLLRs inverts Interleave for soft values (one LLR per coded
// bit position).
func (it *Interleaver) DeinterleaveLLRs(in []float64) []float64 {
	if len(in) != it.ncbps {
		panic(fmt.Sprintf("coding: deinterleave block %d, want %d", len(in), it.ncbps))
	}
	out := make([]float64, it.ncbps)
	for j, v := range in {
		out[it.inv[j]] = v
	}
	return out
}
