package coding

import "fmt"

// Rate identifies a coding rate of the 802.11 rate set.
type Rate int

const (
	// Rate12 is the mother rate-1/2 code (no puncturing).
	Rate12 Rate = iota
	// Rate23 punctures to rate 2/3 (pattern A: 1 1, B: 1 0).
	Rate23
	// Rate34 punctures to rate 3/4 (pattern A: 1 1 0, B: 1 0 1).
	Rate34
)

// Value returns the numeric code rate.
func (r Rate) Value() float64 {
	switch r {
	case Rate12:
		return 0.5
	case Rate23:
		return 2.0 / 3.0
	case Rate34:
		return 0.75
	default:
		panic(fmt.Sprintf("coding: unknown rate %d", int(r)))
	}
}

func (r Rate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	case Rate34:
		return "3/4"
	default:
		return fmt.Sprintf("Rate(%d)", int(r))
	}
}

// pattern returns the keep-mask over (A, B) output pairs, A first.
func (r Rate) pattern() (a, b []bool) {
	switch r {
	case Rate12:
		return []bool{true}, []bool{true}
	case Rate23:
		return []bool{true, true}, []bool{true, false}
	case Rate34:
		return []bool{true, true, false}, []bool{true, false, true}
	default:
		panic(fmt.Sprintf("coding: unknown rate %d", int(r)))
	}
}

// Puncture removes the punctured positions from a rate-1/2 code word
// (interleaved as A0 B0 A1 B1 …), producing the higher-rate stream.
func Puncture(coded []uint8, r Rate) []uint8 {
	if r == Rate12 {
		out := make([]uint8, len(coded))
		copy(out, coded)
		return out
	}
	pa, pb := r.pattern()
	period := len(pa)
	out := make([]uint8, 0, len(coded))
	for i := 0; i*2 < len(coded); i++ {
		ph := i % period
		if pa[ph] {
			out = append(out, coded[2*i])
		}
		if pb[ph] {
			out = append(out, coded[2*i+1])
		}
	}
	return out
}

// Depuncture re-inserts Erasure symbols at the punctured positions so the
// Viterbi decoder sees a rate-1/2 stream of pairs. pairs is the number of
// (A,B) output pairs of the original rate-1/2 code word.
func Depuncture(punctured []uint8, r Rate, pairs int) ([]uint8, error) {
	if r == Rate12 {
		if len(punctured) != 2*pairs {
			return nil, fmt.Errorf("coding: depuncture length %d, want %d", len(punctured), 2*pairs)
		}
		out := make([]uint8, len(punctured))
		copy(out, punctured)
		return out, nil
	}
	pa, pb := r.pattern()
	period := len(pa)
	out := make([]uint8, 0, 2*pairs)
	pos := 0
	take := func() (uint8, error) {
		if pos >= len(punctured) {
			return 0, fmt.Errorf("coding: punctured stream too short")
		}
		v := punctured[pos]
		pos++
		return v, nil
	}
	for i := 0; i < pairs; i++ {
		ph := i % period
		if pa[ph] {
			v, err := take()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		} else {
			out = append(out, Erasure)
		}
		if pb[ph] {
			v, err := take()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		} else {
			out = append(out, Erasure)
		}
	}
	if pos != len(punctured) {
		return nil, fmt.Errorf("coding: punctured stream has %d extra bits", len(punctured)-pos)
	}
	return out, nil
}

// DepunctureLLRs re-inserts zero LLRs (no channel information) at the
// punctured positions of a soft stream.
func DepunctureLLRs(punctured []float64, r Rate, pairs int) ([]float64, error) {
	if r == Rate12 {
		if len(punctured) != 2*pairs {
			return nil, fmt.Errorf("coding: depuncture LLR length %d, want %d", len(punctured), 2*pairs)
		}
		out := make([]float64, len(punctured))
		copy(out, punctured)
		return out, nil
	}
	pa, pb := r.pattern()
	period := len(pa)
	out := make([]float64, 0, 2*pairs)
	pos := 0
	take := func() (float64, error) {
		if pos >= len(punctured) {
			return 0, fmt.Errorf("coding: punctured LLR stream too short")
		}
		v := punctured[pos]
		pos++
		return v, nil
	}
	for i := 0; i < pairs; i++ {
		ph := i % period
		for _, keep := range []bool{pa[ph], pb[ph]} {
			if keep {
				v, err := take()
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			} else {
				out = append(out, 0)
			}
		}
	}
	if pos != len(punctured) {
		return nil, fmt.Errorf("coding: punctured LLR stream has %d extra values", len(punctured)-pos)
	}
	return out, nil
}

// PuncturedLength returns the transmitted bit count for `pairs` rate-1/2
// output pairs at rate r.
func PuncturedLength(pairs int, r Rate) int {
	pa, pb := r.pattern()
	period := len(pa)
	full := pairs / period
	kept := 0
	for i := 0; i < period; i++ {
		if pa[i] {
			kept++
		}
		if pb[i] {
			kept++
		}
	}
	n := full * kept
	for i := 0; i < pairs%period; i++ {
		if pa[i] {
			n++
		}
		if pb[i] {
			n++
		}
	}
	return n
}
