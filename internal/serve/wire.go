// Package serve is the long-running detection service of the FlexCore
// reproduction (DESIGN.md §12–13): a streaming frame-ingest interface
// (length-prefixed binary frames over any io.ReadWriteCloser — TCP in
// production, an in-memory pipe in tests), consistent user→shard
// routing onto per-shard worker pools with per-user FIFO sequencing
// and per-user cross-frame Prepare reuse, bounded admission with
// explicit overload rejection (work is refused with a status code,
// never silently dropped), coalesced response writes, graceful drain
// on shutdown, and a metrics surface exposing latency histograms,
// throughput, per-shard queue depths/high-watermarks and reuse
// counters, and the aggregated OpCount/PreprocessStats of every
// worker.
//
// The serving layer adds no arithmetic of its own: detection results
// are produced by the same two-phase Prepare/Detect pipeline as the
// offline path, so a served frame's decisions are bit-identical to
// looping Prepare+Detect over its subcarriers — for any shard count,
// any workers-per-shard count, any detector worker count and either
// kernel backend (reuse is held at ReuseThreshold 0, where hits
// require a bit-identical (R, σ²) and are provably output-neutral).
// The e2e and ordering suites (e2e_test.go, order_test.go) enforce
// exactly that contract, plus per-user FIFO completion. Batching
// happens at the bufio/flush layer on both ends, so frames simply
// arrive back-to-back in one segment — nothing for the codec to know.
//
// Overload handling is graded (DESIGN.md §14): requests may carry a
// staleness budget (expired frames are shed with StatusExpired), a
// per-shard pressure controller steps queued frames down a configured
// N_PE ladder before admission control resorts to StatusOverloaded,
// and per-connection read/write deadlines keep one stalled peer from
// wedging a shard's ingest or response path.
package serve

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
)

// The wire format is a stream of length-prefixed frames:
//
//	offset  size  field
//	0       4     magic "FXS2"
//	4       1     message type (MsgDetect | MsgResult)
//	5       1     reserved, must be zero
//	6       4     payload length N (big-endian, ≤ MaxPayload)
//	10      4     IEEE CRC-32 of the payload (big-endian)
//	14      N     payload
//
// Every multi-byte integer on the wire is big-endian. The CRC makes
// payload corruption detectable: a frame that fails any header or
// checksum test is rejected with an error — the decoder never panics
// and never hands corrupted bytes to the payload layer.
const (
	headerSize = 14
	// MaxPayload bounds a single frame's payload; together with the
	// geometry caps of the payload layer it keeps a hostile peer from
	// forcing unbounded allocation.
	MaxPayload = 8 << 20
)

// magic identifies a FlexCore serve frame ("FXS" + format version).
// Version 2 added the request deadline budget, the response served-N_PE
// field and StatusExpired; v1 and v2 frames are mutually rejected at
// the header check, so a version-skewed peer fails fast instead of
// misparsing payloads.
var magic = [4]byte{'F', 'X', 'S', '2'}

// MsgType is the wire frame type.
type MsgType uint8

// The wire frame types.
const (
	// MsgDetect is a detection request (DetectRequest payload).
	MsgDetect MsgType = 1
	// MsgResult is a detection response (DetectResponse payload).
	MsgResult MsgType = 2
)

// Wire-level decode errors. All of them are terminal for the
// connection: once framing is lost there is no way to resynchronise a
// length-prefixed stream.
var (
	// ErrHeader reports a bad magic or nonzero reserved byte.
	ErrHeader = errors.New("serve: bad frame header")
	// ErrType reports an unknown frame type byte.
	ErrType = errors.New("serve: unknown frame type")
	// ErrOversize reports a length field exceeding MaxPayload.
	ErrOversize = errors.New("serve: frame exceeds MaxPayload")
	// ErrChecksum reports a payload whose CRC-32 does not match.
	ErrChecksum = errors.New("serve: frame checksum mismatch")
	// ErrTruncated reports a stream ending mid-frame.
	ErrTruncated = errors.New("serve: truncated frame")
)

// AppendFrame appends one framed message to dst and returns the
// extended slice. It allocates only when dst lacks capacity, so a
// caller reusing its buffer frames messages allocation-free in steady
// state.
// The header layout is machine-checked: the constant-bound writes
// below must tile headerSize exactly (wireoffset).
//
//flexcore:noalloc
//flexcore:wire hdr headerSize
func AppendFrame(dst []byte, typ MsgType, payload []byte) []byte {
	var hdr [headerSize]byte
	copy(hdr[0:4], magic[:])
	hdr[4] = byte(typ)
	hdr[5] = 0
	binary.BigEndian.PutUint32(hdr[6:10], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[10:14], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)   //lint:ignore noalloc amortised: the caller reuses dst, which regrows only past its high-water mark
	return append(dst, payload...) //lint:ignore noalloc amortised: same reused buffer
}

// parseHeader validates one frame header and returns the type, payload
// length and expected payload CRC.
// Decode-side twin of AppendFrame's layout, checked against the same
// headerSize (wireoffset): the two cannot silently disagree about
// where a field lives, CRC included.
//
//flexcore:noalloc
//flexcore:wire hdr headerSize
func parseHeader(hdr []byte) (typ MsgType, n int, crc uint32, err error) {
	if [4]byte(hdr[0:4]) != magic || hdr[5] != 0 {
		return 0, 0, 0, ErrHeader
	}
	typ = MsgType(hdr[4])
	if typ != MsgDetect && typ != MsgResult {
		return 0, 0, 0, ErrType
	}
	length := binary.BigEndian.Uint32(hdr[6:10])
	if length > MaxPayload {
		return 0, 0, 0, ErrOversize
	}
	return typ, int(length), binary.BigEndian.Uint32(hdr[10:14]), nil
}

// DecodeFrame decodes one frame from the head of b, returning the
// message type, the payload (aliasing b) and the remaining bytes. It
// is the pure-bytes twin of ReadFrame (shared by the fuzz target) and
// never panics on arbitrary input.
func DecodeFrame(b []byte) (typ MsgType, payload, rest []byte, err error) {
	if len(b) < headerSize {
		return 0, nil, nil, ErrTruncated
	}
	typ, n, crc, err := parseHeader(b[:headerSize])
	if err != nil {
		return 0, nil, nil, err
	}
	if len(b)-headerSize < n {
		return 0, nil, nil, ErrTruncated
	}
	payload = b[headerSize : headerSize+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, nil, ErrChecksum
	}
	return typ, payload, b[headerSize+n:], nil
}

// ReadFrame reads one frame from r, decoding the payload into buf
// (grown only when a frame exceeds every earlier one). It returns the
// payload (aliasing the returned buffer, valid until the next call
// that reuses it) and the buffer itself for reuse. A clean EOF at a
// frame boundary returns io.EOF; a stream ending mid-frame returns
// ErrTruncated.
//
//flexcore:noalloc
func ReadFrame(r io.Reader, buf []byte) (typ MsgType, payload, bufOut []byte, err error) {
	// The header is read into the reusable buffer too (and overwritten
	// by the payload once parsed): a stack-local header array would
	// escape through the io.Reader interface and allocate per call.
	if cap(buf) < headerSize {
		buf = make([]byte, headerSize) //lint:ignore noalloc amortised: the connection reuses buf, which regrows only past its high-water mark
	}
	if _, err := io.ReadFull(r, buf[:headerSize]); err != nil {
		if err == io.EOF {
			return 0, nil, buf, io.EOF
		}
		return 0, nil, buf, ErrTruncated
	}
	typ, n, crc, err := parseHeader(buf[:headerSize])
	if err != nil {
		return 0, nil, buf, err
	}
	if cap(buf) < n {
		buf = make([]byte, n) //lint:ignore noalloc amortised: the connection reuses buf, which regrows only past its high-water mark
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, ErrTruncated
	}
	if crc32.ChecksumIEEE(buf) != crc {
		return 0, nil, buf, ErrChecksum
	}
	return typ, buf, buf, nil
}
