package serve

import (
	"encoding/json"
	"math/bits"
	"net/http"
	"sync/atomic"
	"time"

	"flexcore/internal/core"
	"flexcore/internal/detector"
)

// latencyBucketCount sizes the power-of-two latency histogram: bucket
// i counts completed requests whose admit→respond latency in
// microseconds has bit length i (i.e. lies in [2^(i−1), 2^i)), with
// the last bucket absorbing everything slower (~67 s).
const latencyBucketCount = 27

// metrics is the server's lock-free counter block. Counters are
// monotonically increasing atomics written on the hot path; gauges
// (queue depths, per-shard op counters) are sampled at Snapshot time.
type metrics struct {
	start time.Time

	accepted         atomic.Int64
	completed        atomic.Int64
	rejectedOverload atomic.Int64
	rejectedDraining atomic.Int64
	rejectedInvalid  atomic.Int64
	expired          atomic.Int64
	degraded         atomic.Int64
	badFrames        atomic.Int64
	writeErrors      atomic.Int64
	connTimeouts     atomic.Int64

	lat          [latencyBucketCount]atomic.Int64
	latCount     atomic.Int64
	latSumMicros atomic.Int64
}

// observe records one completed request's admit→respond latency.
//
//flexcore:noalloc
func (m *metrics) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us))
	if b >= latencyBucketCount {
		b = latencyBucketCount - 1
	}
	m.lat[b].Add(1)
	m.latCount.Add(1)
	m.latSumMicros.Add(us)
}

// LatencyBucket is one histogram bin of a Snapshot: Count requests
// completed within (UpperMicros/2, UpperMicros] microseconds.
type LatencyBucket struct {
	UpperMicros int64 `json:"upper_micros"`
	Count       int64 `json:"count"`
}

// ShardStats is one shard's point-in-time gauges in a Snapshot.
type ShardStats struct {
	// QueueDepth is the shard's admitted-but-not-yet-processing backlog
	// right now; QueueHighWatermark is its maximum since start — the
	// capacity-planning signal QueueDepth alone misses between scrapes.
	QueueDepth         int `json:"queue_depth"`
	QueueHighWatermark int `json:"queue_high_watermark"`
	// TrackedUsers is the number of per-user sequencing/reuse states the
	// shard currently holds (bounded by Config.UserStateCap).
	TrackedUsers int `json:"tracked_users"`
	// ReuseHits/ReuseMisses aggregate the Prepare path-reuse cache
	// counters over the shard's workers: hits are subcarriers whose
	// §3.1.1 candidate-position search was skipped via the coherence
	// cache (within-frame or per-user cross-frame), misses are fresh
	// searches with reuse enabled. Both stay 0 when the detector factory
	// leaves PathReuse off.
	ReuseHits   int64 `json:"reuse_hits"`
	ReuseMisses int64 `json:"reuse_misses"`
}

// Snapshot is a point-in-time view of the server's metrics — the JSON
// document served by the metrics endpoint.
type Snapshot struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Shards          int     `json:"shards"`
	WorkersPerShard int     `json:"workers_per_shard"`
	QueueCapacity   int     `json:"queue_capacity"`
	// QueueDepths is the instantaneous admission-queue depth per shard
	// (ShardStats carries the rest of the per-shard gauges).
	QueueDepths []int        `json:"queue_depths"`
	ShardStats  []ShardStats `json:"shard_stats"`

	Accepted  int64 `json:"accepted"`
	Completed int64 `json:"completed"`
	// InFlight is accepted − completed: queued or detecting right now.
	InFlight int64 `json:"in_flight"`
	// Rejected* count explicit rejections (the service never drops work
	// silently: every rejection was answered with its status code).
	RejectedOverload int64 `json:"rejected_overload"`
	RejectedDraining int64 `json:"rejected_draining"`
	RejectedInvalid  int64 `json:"rejected_invalid"`
	// ExpiredFrames counts frames shed with StatusExpired because their
	// staleness budget (DetectRequest.DeadlineMicros) elapsed before a
	// worker started detecting them. Frames expired at dequeue also
	// count in Completed (the in-flight ledger drains through them);
	// frames expired at admission count in neither Accepted nor
	// Completed.
	ExpiredFrames int64 `json:"expired_frames"`
	// DegradedFrames counts frames the pressure controller served at a
	// reduced N_PE from Config.DegradeLadder (also counted in
	// Completed; the response carries the served N_PE).
	DegradedFrames int64 `json:"degraded_frames"`
	// BadFrames counts connections dropped for unrecoverable framing
	// errors (bad magic, checksum mismatch, truncation).
	BadFrames int64 `json:"bad_frames"`
	// WriteErrors counts connections condemned for a failed or stalled
	// response write (one count per connection).
	WriteErrors int64 `json:"write_errors"`
	// ConnTimeouts counts connections closed by the hygiene deadlines:
	// idle reaping, a mid-frame read stall, or a write stall.
	ConnTimeouts int64 `json:"conn_timeouts"`

	// ThroughputFPS is completed frames per second of uptime.
	ThroughputFPS float64 `json:"throughput_fps"`

	LatencyMeanMicros float64         `json:"latency_mean_micros"`
	LatencyP50Micros  int64           `json:"latency_p50_micros"`
	LatencyP95Micros  int64           `json:"latency_p95_micros"`
	LatencyP99Micros  int64           `json:"latency_p99_micros"`
	Latency           []LatencyBucket `json:"latency"`

	// OpCount aggregates the detection arithmetic of every shard
	// detector in the units the paper reports (Table 1/2).
	OpCount detector.OpCount `json:"op_count"`
	// Preprocess aggregates the per-shard pre-processing counters
	// (tree-search work, path-reuse cache hits/misses).
	Preprocess core.PreprocessStats `json:"preprocess"`
	// AvgActivePEs is the mean active processing-element count per
	// prepared subcarrier (a-FlexCore's flexibility knob; equals NPE
	// for plain FlexCore, 0 for detectors that do not report it).
	AvgActivePEs float64 `json:"avg_active_pes"`
}

// Metrics returns a consistent-enough point-in-time snapshot: counters
// are individually atomic, queue depths and shard op counters are
// sampled per shard.
func (s *Server) Metrics() Snapshot {
	snap := Snapshot{
		UptimeSeconds:    time.Since(s.met.start).Seconds(), //lint:ignore determinism wall-clock observability only — detection results never depend on it
		Shards:           len(s.shards),
		WorkersPerShard:  s.cfg.WorkersPerShard,
		QueueCapacity:    s.cfg.QueueDepth,
		QueueDepths:      make([]int, len(s.shards)),
		ShardStats:       make([]ShardStats, len(s.shards)),
		Accepted:         s.met.accepted.Load(),
		Completed:        s.met.completed.Load(),
		RejectedOverload: s.met.rejectedOverload.Load(),
		RejectedDraining: s.met.rejectedDraining.Load(),
		RejectedInvalid:  s.met.rejectedInvalid.Load(),
		ExpiredFrames:    s.met.expired.Load(),
		DegradedFrames:   s.met.degraded.Load(),
		BadFrames:        s.met.badFrames.Load(),
		WriteErrors:      s.met.writeErrors.Load(),
		ConnTimeouts:     s.met.connTimeouts.Load(),
	}
	snap.InFlight = snap.Accepted - snap.Completed
	if snap.UptimeSeconds > 0 {
		snap.ThroughputFPS = float64(snap.Completed) / snap.UptimeSeconds
	}

	var activeSum float64
	var activeN int64
	for i, sh := range s.shards {
		sh.mu.Lock()
		st := ShardStats{
			QueueDepth:         sh.waiting,
			QueueHighWatermark: sh.waitHWM,
			TrackedUsers:       len(sh.users),
		}
		sh.mu.Unlock()
		for _, w := range sh.workers {
			w.mu.Lock()
			snap.OpCount.Add(w.ops)
			snap.Preprocess.Add(w.pre)
			st.ReuseHits += w.pre.CacheHits
			st.ReuseMisses += w.pre.CacheMisses
			activeSum += w.activeSum
			activeN += w.activeN
			w.mu.Unlock()
		}
		snap.QueueDepths[i] = st.QueueDepth
		snap.ShardStats[i] = st
	}
	if activeN > 0 {
		snap.AvgActivePEs = activeSum / float64(activeN)
	}

	total := s.met.latCount.Load()
	if total > 0 {
		snap.LatencyMeanMicros = float64(s.met.latSumMicros.Load()) / float64(total)
	}
	var cum int64
	p50, p95, p99 := false, false, false
	for i := 0; i < latencyBucketCount; i++ {
		n := s.met.lat[i].Load()
		upper := int64(1)<<uint(i) - 1
		if n > 0 {
			snap.Latency = append(snap.Latency, LatencyBucket{UpperMicros: upper, Count: n})
		}
		cum += n
		if total > 0 {
			if !p50 && cum*100 >= total*50 {
				snap.LatencyP50Micros, p50 = upper, true
			}
			if !p95 && cum*100 >= total*95 {
				snap.LatencyP95Micros, p95 = upper, true
			}
			if !p99 && cum*100 >= total*99 {
				snap.LatencyP99Micros, p99 = upper, true
			}
		}
	}
	return snap
}

// MetricsHandler returns an http.Handler serving the JSON Snapshot —
// the daemon mounts it at /metrics.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Metrics()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
