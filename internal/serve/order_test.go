package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"flexcore/internal/channel"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
)

// fillFrameCoherent fills q with a deterministic frame whose channel
// depends only on (userID, epoch) while the transmitted data varies per
// frame: epoch held constant models a static user (every frame re-sends
// the identical per-subcarrier H — the cross-frame reuse steady state),
// epoch = frameID models a channel that changes every frame.
func fillFrameCoherent(t testing.TB, q *DetectRequest, userID, frameID, epoch uint64) {
	t.Helper()
	q.UserID, q.FrameID, q.Sigma2 = userID, frameID, e2eSigma2
	if err := q.SetGeometry(e2eNr, e2eNt, e2eK, e2eS); err != nil {
		t.Fatal(err)
	}
	chRNG := channel.NewStreamRNG(0xc0de, userID<<20|epoch)
	dataRNG := channel.NewStreamRNG(0xda7a, userID<<20|frameID)
	x := make([]complex128, e2eNt)
	for k := 0; k < e2eK; k++ {
		h := channel.Rayleigh(chRNG, e2eNr, e2eNt)
		copy(q.H()[k].Data, h.Data)
		for _, y := range q.Burst(k) {
			for i := range x {
				x[i] = channel.CN(dataRNG, 1)
			}
			copy(y, h.MulVec(x))
			channel.AddAWGN(dataRNG, y, e2eSigma2)
		}
	}
}

// TestPerUserFIFOWithWorkerPools is the ordering property test of the
// multi-worker serve path: many users pipeline bursts of frames into
// shards with several workers each and per-user cross-frame reuse
// enabled (ReuseThreshold 0), and for every user the responses must
// come back in send order (per-user FIFO completion) with decisions
// bit-identical to the offline Prepare+Detect loop — reuse hits and
// all. Half the users are static (identical H every frame: every
// subcarrier after the first frame is a cross-frame cache hit), half
// vary their channel every frame (no hits at threshold 0); the final
// snapshot pins both counters exactly, proving the per-user state was
// neither shared across users nor lost between a user's frames.
func TestPerUserFIFOWithWorkerPools(t *testing.T) {
	cons, err := constellation.New(e2eQAM)
	if err != nil {
		t.Fatal(err)
	}
	backend := envBackend(t)
	const users, frames = 10, 6
	srv, err := NewServer(Config{
		Shards:          2,
		WorkersPerShard: 4,
		QueueDepth:      users * frames, // overload-free: this test pins ordering, not backpressure
		DetectorFactory: func() detector.Detector {
			return core.New(cons, core.Options{
				NPE: e2eNPE, Workers: 1, Backend: backend,
				PathReuse: true, ReuseThreshold: 0,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(userID uint64, static bool) {
			defer wg.Done()
			cl := srv.InProcess()
			defer cl.Close()
			// Queue the whole burst, flush once (the coalescing client
			// path), then read the responses back.
			var q DetectRequest
			want := make([][]int, frames)
			for f := uint64(1); f <= frames; f++ {
				epoch := uint64(0)
				if !static {
					epoch = f
				}
				fillFrameCoherent(t, &q, userID, f, epoch)
				want[f-1] = offlineDecisions(t, cons, &q)
				if err := cl.Queue(&q); err != nil {
					t.Errorf("user %d queue %d: %v", userID, f, err)
					return
				}
			}
			if err := cl.Flush(); err != nil {
				t.Errorf("user %d flush: %v", userID, err)
				return
			}
			var resp DetectResponse
			for f := uint64(1); f <= frames; f++ {
				if err := cl.Recv(&resp); err != nil {
					t.Errorf("user %d recv %d: %v", userID, f, err)
					return
				}
				if resp.Status != StatusOK {
					t.Errorf("user %d frame %d: status %v", userID, resp.FrameID, resp.Status)
					return
				}
				// The FIFO property: the f-th response on this user's
				// connection is the f-th frame it sent.
				if resp.FrameID != f {
					t.Errorf("user %d: response %d carries frame %d — per-user FIFO order violated", userID, f, resp.FrameID)
					return
				}
				w := want[f-1]
				if len(resp.Decisions) != len(w) {
					t.Errorf("user %d frame %d: %d decisions, want %d", userID, f, len(resp.Decisions), len(w))
					return
				}
				for i, wv := range w {
					if int(resp.Decisions[i]) != wv {
						t.Errorf("user %d frame %d decision %d: served %d, offline %d — reuse must stay output-neutral",
							userID, f, i, resp.Decisions[i], wv)
						return
					}
				}
			}
		}(uint64(7+u*13), u%2 == 0)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	snap := srv.Metrics()
	if want := int64(users * frames); snap.Accepted != want || snap.Completed != want {
		t.Fatalf("accepted %d / completed %d, want %d", snap.Accepted, snap.Completed, want)
	}
	if snap.RejectedOverload != 0 || snap.RejectedInvalid != 0 || snap.WriteErrors != 0 {
		t.Fatalf("unexpected errors: %+v", snap)
	}
	var hits, misses int64
	tracked := 0
	for _, st := range snap.ShardStats {
		hits += st.ReuseHits
		misses += st.ReuseMisses
		tracked += st.TrackedUsers
	}
	// Static users hit on every subcarrier of every frame after their
	// first; varying users never hit at threshold 0. Exact counts prove
	// per-user keying: shared or leaked state would change them.
	const staticUsers = users / 2
	if wantHits := int64(staticUsers * (frames - 1) * e2eK); hits != wantHits {
		t.Fatalf("reuse hits %d, want exactly %d (static users × repeat frames × subcarriers)", hits, wantHits)
	}
	if wantMiss := int64(users*frames*e2eK) - hits; misses != wantMiss {
		t.Fatalf("reuse misses %d, want %d", misses, wantMiss)
	}
	if tracked != users {
		t.Fatalf("tracked users %d, want %d", tracked, users)
	}
}
