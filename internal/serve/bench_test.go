package serve

import (
	"context"
	"testing"
	"time"

	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
)

// BenchmarkServeProcess measures the in-process serve hot path for one
// frame — decode the wire payload into a pooled task, detect every
// subcarrier burst, frame the response — excluding socket I/O. The
// reuse leg runs a static-channel user with per-user cross-frame reuse
// installed (every subcarrier a cache hit); the fresh leg pays the full
// §3.1.1 search per frame. Both must stay 0 allocs/op: this is the
// benchmark twin of TestServeHotLoopZeroAllocs.
func BenchmarkServeProcess(b *testing.B) {
	cons, err := constellation.New(e2eQAM)
	if err != nil {
		b.Fatal(err)
	}
	for _, reuse := range []bool{false, true} {
		name := "fresh"
		if reuse {
			name = "reuse"
		}
		b.Run(name, func(b *testing.B) {
			srv, err := NewServer(Config{
				Shards: 1,
				DetectorFactory: func() detector.Detector {
					opts := core.Options{NPE: e2eNPE, Workers: 1, Backend: envBackend(b)}
					if reuse {
						opts.PathReuse = true
					}
					return core.New(cons, opts)
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()

			var q DetectRequest
			fillFrame(b, &q, 12, 1)
			payload := q.AppendPayload(nil)
			w := srv.shards[0].workers[0]
			tk := srv.taskPool.Get().(*task)
			if reuse {
				tk.user = &userState{id: 12}
			}
			defer srv.release(tk)
			hot := func() {
				if err := tk.req.Decode(payload); err != nil {
					b.Fatal(err)
				}
				tk.enq = time.Now()
				srv.process(w, tk)
			}
			hot() // warm the arenas (and, on the reuse leg, base the state)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hot()
			}
			b.StopTimer()
			if allocs := testing.AllocsPerRun(10, hot); allocs != 0 {
				b.Fatalf("serve process path allocates %.1f objects per frame, want 0", allocs)
			}
		})
	}
}
