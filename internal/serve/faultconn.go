package serve

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is the typed error a FaultConn write returns when
// its plan's ResetAfter point is reached: the connection is closed
// mid-frame, exactly like a peer dying between two TCP segments.
var ErrInjectedReset = errors.New("serve: injected connection reset")

// FaultPlan configures a FaultConn. Every fault is deterministic: the
// same plan over the same traffic injects the same faults at the same
// byte offsets, so a chaos test that fails replays exactly.
//
// MaxWriteChunk, MaxReadChunk and StutterEvery are lossless — they
// reshape the byte stream's timing and segmentation without changing
// its contents, so every request must still be answered correctly.
// CorruptByte and ResetAfter are lossy: the CRC layer must detect the
// former and the framing layer must surface the latter as a clean
// typed error.
type FaultPlan struct {
	// Seed seeds the SplitMix64 stream driving chunk sizes.
	Seed uint64
	// MaxWriteChunk > 0 fragments every Write into chunks of 1..Max
	// bytes (partial writes — the peer sees the frame trickle in).
	MaxWriteChunk int
	// MaxReadChunk > 0 caps every Read at 1..Max bytes (short reads).
	MaxReadChunk int
	// StutterEvery > 0 sleeps Stutter before every StutterEvery-th I/O
	// operation (bursty scheduling delays).
	StutterEvery int
	// Stutter is the stutter delay (default 1ms when StutterEvery > 0).
	Stutter time.Duration
	// CorruptByte > 0 flips one bit in the CorruptByte-th byte written
	// (1-based, counted across all writes) — in-flight corruption the
	// receiver's CRC must catch.
	CorruptByte int64
	// ResetAfter > 0 closes the connection once ResetAfter bytes have
	// been written (1-based threshold: the write delivering byte
	// ResetAfter delivers the bytes before it, then fails with
	// ErrInjectedReset).
	ResetAfter int64
}

// FaultConn wraps a net.Conn with deterministic fault injection for
// the chaos suite. It is safe for the usual one-reader/one-writer
// concurrent use of a net.Conn.
type FaultConn struct {
	net.Conn
	plan FaultPlan

	mu    sync.Mutex
	rng   uint64
	ops   int64 // I/O operations, for stutter cadence
	wrote int64 // bytes successfully handed to the underlying conn
}

// NewFaultConn wraps conn with the plan's faults.
func NewFaultConn(conn net.Conn, plan FaultPlan) *FaultConn {
	if plan.StutterEvery > 0 && plan.Stutter <= 0 {
		plan.Stutter = time.Millisecond
	}
	return &FaultConn{Conn: conn, plan: plan, rng: plan.Seed}
}

// stutter sleeps on every StutterEvery-th I/O operation.
func (c *FaultConn) stutter() {
	c.mu.Lock()
	c.ops++
	hit := c.plan.StutterEvery > 0 && c.ops%int64(c.plan.StutterEvery) == 0
	c.mu.Unlock()
	if hit {
		time.Sleep(c.plan.Stutter)
	}
}

// chunk draws a deterministic size in 1..max.
func (c *FaultConn) chunk(max int) int {
	c.mu.Lock()
	n := 1 + int(splitmix(&c.rng)%uint64(max))
	c.mu.Unlock()
	return n
}

// Read reads from the underlying conn, capped to a short read when the
// plan asks for one.
func (c *FaultConn) Read(p []byte) (int, error) {
	c.stutter()
	if c.plan.MaxReadChunk > 0 && len(p) > 0 {
		if n := c.chunk(c.plan.MaxReadChunk); n < len(p) {
			p = p[:n]
		}
	}
	return c.Conn.Read(p)
}

// Write delivers p through the underlying conn, applying the plan's
// write-side faults: fragmentation, one-bit corruption at CorruptByte,
// and the mid-stream reset at ResetAfter.
func (c *FaultConn) Write(p []byte) (int, error) {
	c.stutter()
	c.mu.Lock()
	start := c.wrote
	c.mu.Unlock()

	// Work on a copy when a fault mutates or truncates the stream —
	// the caller's buffer must never be touched.
	buf := p
	resetAt := -1 // index within this write after which the conn dies
	if c.plan.ResetAfter > 0 && start < c.plan.ResetAfter && c.plan.ResetAfter <= start+int64(len(p)) {
		resetAt = int(c.plan.ResetAfter - start - 1)
	}
	if c.plan.CorruptByte > 0 && start < c.plan.CorruptByte && c.plan.CorruptByte <= start+int64(len(p)) {
		cp := make([]byte, len(p))
		copy(cp, p)
		cp[c.plan.CorruptByte-start-1] ^= 0x20
		buf = cp
	}

	written := 0
	for written < len(buf) {
		end := len(buf)
		if c.plan.MaxWriteChunk > 0 {
			if n := written + c.chunk(c.plan.MaxWriteChunk); n < end {
				end = n
			}
		}
		deliver := buf[written:end]
		if resetAt >= 0 && resetAt < end {
			// Deliver the bytes up to the reset point, then kill the conn.
			deliver = buf[written:resetAt]
			if len(deliver) > 0 {
				n, err := c.Conn.Write(deliver)
				c.account(n)
				written += n
				if err != nil {
					return written, err
				}
			}
			c.Conn.Close()
			return written, ErrInjectedReset
		}
		n, err := c.Conn.Write(deliver)
		c.account(n)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// account tracks delivered bytes under the lock.
func (c *FaultConn) account(n int) {
	c.mu.Lock()
	c.wrote += int64(n)
	c.mu.Unlock()
}
