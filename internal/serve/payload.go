package serve

import (
	"encoding/binary"
	"errors"
	"math"

	"flexcore/internal/cmatrix"
)

// Status is the per-request outcome code carried by every
// DetectResponse. Rejections are always explicit: a request that
// cannot be served is answered with its status, never silently
// dropped.
type Status uint8

// The response status codes.
const (
	// StatusOK: the frame was detected; the response carries decisions.
	StatusOK Status = 0
	// StatusOverloaded: the target shard's admission queue was full.
	// The request was rejected immediately (backpressure) — retry later.
	StatusOverloaded Status = 1
	// StatusDraining: the server is shutting down and admits no new
	// work; already-admitted frames still complete and respond.
	StatusDraining Status = 2
	// StatusInvalid: the request payload was malformed (bad geometry,
	// non-finite values, size mismatch) or detection failed.
	StatusInvalid Status = 3
	// StatusExpired: the request's deadline (DetectRequest.DeadlineMicros)
	// elapsed before a worker could start detecting it — the frame was
	// shed at admission or at dequeue instead of burning detector time on
	// a result the PHY can no longer use.
	StatusExpired Status = 4
)

// statusMax is the highest defined status (decode validation bound).
const statusMax = StatusExpired

// String names the status for logs and test failures.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusOverloaded:
		return "overloaded"
	case StatusDraining:
		return "draining"
	case StatusInvalid:
		return "invalid"
	case StatusExpired:
		return "expired"
	}
	return "unknown"
}

// Geometry caps: together with MaxPayload they bound the memory a
// single request can make the server commit, so a hostile or buggy
// client cannot balloon a shard's arenas.
const (
	// MaxAntennas caps Nr (and therefore Nt ≤ Nr) per request.
	MaxAntennas = 64
	// MaxSubcarriers caps the per-frame subcarrier count.
	MaxSubcarriers = 512
	// MaxSymbols caps the per-frame OFDM symbol count.
	MaxSymbols = 512
)

// Payload sizes (bytes).
const (
	reqHeaderSize  = 40
	respHeaderSize = 20
	c128Size       = 16 // one complex128 on the wire: re, im float64
)

// Payload-level decode errors (the connection survives them: framing
// is intact, so the request is answered with StatusInvalid).
var (
	// ErrPayload reports a structurally malformed payload.
	ErrPayload = errors.New("serve: malformed payload")
	// ErrGeometry reports an out-of-range MIMO/OFDM geometry.
	ErrGeometry = errors.New("serve: invalid frame geometry")
)

// DetectRequest is one uplink detection request: the per-subcarrier
// channel matrices of one frame plus the received vectors of every
// OFDM symbol on every subcarrier. The struct owns all of its storage
// and is reused across Decode calls, so a connection's steady-state
// ingest allocates nothing.
//
// Payload layout (big-endian, after the wire header):
//
//	offset  size             field
//	0       8                user ID (shard routing key)
//	8       8                frame ID (echoed in the response)
//	16      8                σ² noise variance (float64 bits)
//	24      2                Nr receive antennas
//	26      2                Nt transmit streams (≤ Nr)
//	28      2                K subcarriers
//	30      2                S OFDM symbols
//	32      8                deadline budget in µs (0 = none)
//	40      K·Nr·Nt·16       channel matrices, row-major per subcarrier
//	…       K·S·Nr·16        received vectors, symbol-major per subcarrier
type DetectRequest struct {
	// UserID routes the request to a shard: frames from one user always
	// land on the same shard, in arrival order.
	UserID uint64
	// FrameID is an opaque client token echoed in the response, so a
	// pipelining client can match responses to requests.
	FrameID uint64
	// Sigma2 is the noise variance (must be finite and positive).
	Sigma2 float64
	// Nr, Nt, Subcarriers, Symbols are the frame geometry.
	Nr, Nt, Subcarriers, Symbols int
	// DeadlineMicros is the frame's staleness budget in microseconds,
	// measured by the server from the frame's arrival (no client/server
	// clock synchronisation is assumed — it is a TTL, not a timestamp).
	// A frame whose budget elapses before a worker starts detecting it
	// is answered with StatusExpired instead of being served late. 0
	// means no deadline.
	DeadlineMicros uint64

	hdata []complex128     // flat channel storage: K·Nr·Nt
	hs    []cmatrix.Matrix // per-subcarrier headers into hdata
	hptr  []*cmatrix.Matrix
	ydata []complex128   // flat received-vector storage: K·S·Nr
	ys    [][]complex128 // K·S headers into ydata
}

// SetGeometry sizes the request for the given frame geometry, growing
// the owned storage only past its high-water mark, and validates it
// against the caps. Client code calls it before filling H()/Burst();
// Decode calls it with the geometry read off the wire.
func (q *DetectRequest) SetGeometry(nr, nt, subcarriers, symbols int) error {
	if nt < 1 || nr < nt || nr > MaxAntennas {
		return ErrGeometry
	}
	if subcarriers < 1 || subcarriers > MaxSubcarriers || symbols < 1 || symbols > MaxSymbols {
		return ErrGeometry
	}
	q.Nr, q.Nt, q.Subcarriers, q.Symbols = nr, nt, subcarriers, symbols
	hn := subcarriers * nr * nt
	if cap(q.hdata) < hn {
		q.hdata = make([]complex128, hn)
	}
	q.hdata = q.hdata[:hn]
	if cap(q.hs) < subcarriers {
		q.hs = make([]cmatrix.Matrix, subcarriers)
		q.hptr = make([]*cmatrix.Matrix, subcarriers)
	}
	q.hs = q.hs[:subcarriers]
	q.hptr = q.hptr[:subcarriers]
	per := nr * nt
	for k := 0; k < subcarriers; k++ {
		q.hs[k] = cmatrix.Matrix{Rows: nr, Cols: nt, Data: q.hdata[k*per : (k+1)*per : (k+1)*per]}
		q.hptr[k] = &q.hs[k]
	}
	yn := subcarriers * symbols * nr
	if cap(q.ydata) < yn {
		q.ydata = make([]complex128, yn)
	}
	q.ydata = q.ydata[:yn]
	bursts := subcarriers * symbols
	if cap(q.ys) < bursts {
		q.ys = make([][]complex128, bursts)
	}
	q.ys = q.ys[:bursts]
	for i := 0; i < bursts; i++ {
		q.ys[i] = q.ydata[i*nr : (i+1)*nr : (i+1)*nr]
	}
	return nil
}

// H returns the per-subcarrier channel matrices, aliasing
// request-owned storage (valid until the next SetGeometry/Decode).
func (q *DetectRequest) H() []*cmatrix.Matrix { return q.hptr }

// Burst returns the received vectors of subcarrier k, one per OFDM
// symbol, aliasing request-owned storage.
func (q *DetectRequest) Burst(k int) [][]complex128 {
	return q.ys[k*q.Symbols : (k+1)*q.Symbols]
}

// payloadSize is the exact encoded payload size for the geometry.
func (q *DetectRequest) payloadSize() int {
	return reqHeaderSize + c128Size*(q.Subcarriers*q.Nr*q.Nt+q.Subcarriers*q.Symbols*q.Nr)
}

// AppendPayload appends the canonical payload encoding of q to dst.
func (q *DetectRequest) AppendPayload(dst []byte) []byte {
	dst = appendU64(dst, q.UserID)
	dst = appendU64(dst, q.FrameID)
	dst = appendU64(dst, math.Float64bits(q.Sigma2))
	dst = appendU16(dst, uint16(q.Nr))
	dst = appendU16(dst, uint16(q.Nt))
	dst = appendU16(dst, uint16(q.Subcarriers))
	dst = appendU16(dst, uint16(q.Symbols))
	dst = appendU64(dst, q.DeadlineMicros)
	for _, v := range q.hdata {
		dst = appendC128(dst, v)
	}
	for _, v := range q.ydata {
		dst = appendC128(dst, v)
	}
	return dst
}

// Decode parses payload into q, reusing q's storage. Truncated,
// oversized, inconsistent or non-finite payloads return ErrPayload or
// ErrGeometry; Decode never panics on arbitrary input.
// The header layout is machine-checked against reqHeaderSize
// (wireoffset); the variable-length H/y tail is outside the tiling.
//
//flexcore:noalloc
//flexcore:wire payload reqHeaderSize
func (q *DetectRequest) Decode(payload []byte) error {
	if len(payload) < reqHeaderSize {
		return ErrPayload
	}
	q.UserID = binary.BigEndian.Uint64(payload[0:8])
	q.FrameID = binary.BigEndian.Uint64(payload[8:16])
	q.Sigma2 = math.Float64frombits(binary.BigEndian.Uint64(payload[16:24]))
	if math.IsNaN(q.Sigma2) || math.IsInf(q.Sigma2, 0) || q.Sigma2 <= 0 {
		return ErrPayload
	}
	nr := int(binary.BigEndian.Uint16(payload[24:26]))
	nt := int(binary.BigEndian.Uint16(payload[26:28]))
	subcarriers := int(binary.BigEndian.Uint16(payload[28:30]))
	symbols := int(binary.BigEndian.Uint16(payload[30:32]))
	q.DeadlineMicros = binary.BigEndian.Uint64(payload[32:40])
	if err := q.SetGeometry(nr, nt, subcarriers, symbols); err != nil {
		return err
	}
	if len(payload) != q.payloadSize() {
		return ErrPayload
	}
	off := reqHeaderSize
	for i := range q.hdata {
		v, ok := decodeC128(payload[off:])
		if !ok {
			return ErrPayload
		}
		q.hdata[i] = v
		off += c128Size
	}
	for i := range q.ydata {
		v, ok := decodeC128(payload[off:])
		if !ok {
			return ErrPayload
		}
		q.ydata[i] = v
		off += c128Size
	}
	return nil
}

// peekFrameID best-effort extracts the frame ID from a payload that
// failed Decode, so the rejection can still be matched by the client.
//
//flexcore:noalloc
func peekFrameID(payload []byte) uint64 {
	if len(payload) < 16 {
		return 0
	}
	return binary.BigEndian.Uint64(payload[8:16])
}

// DetectResponse is the outcome of one DetectRequest. For StatusOK it
// carries the hard decisions — per-stream constellation symbol indices
// for every (subcarrier, OFDM symbol) of the frame; for every other
// status the geometry fields are zero and Decisions is empty.
//
// Payload layout (big-endian, after the wire header):
//
//	offset  size        field
//	0       8           frame ID (echo of the request)
//	8       1           status
//	9       1           reserved, must be zero
//	10      2           Nt
//	12      2           K subcarriers
//	14      2           S OFDM symbols
//	16      4           served N_PE (0 = full configured N_PE)
//	20      K·S·Nt·2    decisions, uint16 each, (k, s, stream)-major
type DetectResponse struct {
	FrameID                  uint64
	Status                   Status
	Nt, Subcarriers, Symbols int
	// ServedNPE reports the processing-element count the frame was
	// actually detected with when the pressure controller degraded it
	// below the serving configuration's full N_PE; 0 means the frame was
	// served at full quality. Always 0 on non-OK statuses.
	ServedNPE int
	// Decisions is the flat (subcarrier, symbol, stream)-major decision
	// array; it is reused across Decode calls.
	Decisions []uint16
}

// Decision returns the detected constellation index of stream i on
// OFDM symbol s of subcarrier k.
func (r *DetectResponse) Decision(k, s, i int) int {
	return int(r.Decisions[(k*r.Symbols+s)*r.Nt+i])
}

// appendRespHeader appends the response payload header. Non-OK
// statuses carry zero geometry, zero served N_PE and no decisions.
//
//flexcore:noalloc
func appendRespHeader(dst []byte, frameID uint64, st Status, npe, nt, subcarriers, symbols int) []byte {
	dst = appendU64(dst, frameID)
	dst = append(dst, byte(st), 0) //lint:ignore noalloc amortised: same reused buffer
	dst = appendU16(dst, uint16(nt))
	dst = appendU16(dst, uint16(subcarriers))
	dst = appendU16(dst, uint16(symbols))
	return appendU32(dst, uint32(npe))
}

// appendDecisions appends one subcarrier's detected burst (the
// detector-owned [symbol][stream] indices) to the response payload.
//
//flexcore:noalloc
func appendDecisions(dst []byte, decisions [][]int) []byte {
	for _, row := range decisions {
		for _, idx := range row {
			dst = appendU16(dst, uint16(idx))
		}
	}
	return dst
}

// Decode parses payload into r, reusing r.Decisions. It never panics
// on arbitrary input. The header layout is machine-checked against
// respHeaderSize (wireoffset); the decision tail is variable-length
// and outside the tiling.
//
//flexcore:wire payload respHeaderSize
func (r *DetectResponse) Decode(payload []byte) error {
	if len(payload) < respHeaderSize {
		return ErrPayload
	}
	r.FrameID = binary.BigEndian.Uint64(payload[0:8])
	st := Status(payload[8])
	if st > statusMax || payload[9] != 0 {
		return ErrPayload
	}
	r.Status = st
	r.Nt = int(binary.BigEndian.Uint16(payload[10:12]))
	r.Subcarriers = int(binary.BigEndian.Uint16(payload[12:14]))
	r.Symbols = int(binary.BigEndian.Uint16(payload[14:16]))
	r.ServedNPE = int(binary.BigEndian.Uint32(payload[16:20]))
	if st != StatusOK {
		if r.Nt != 0 || r.Subcarriers != 0 || r.Symbols != 0 || r.ServedNPE != 0 || len(payload) != respHeaderSize {
			return ErrPayload
		}
		r.Decisions = r.Decisions[:0]
		return nil
	}
	if r.Nt < 1 || r.Nt > MaxAntennas || r.Subcarriers < 1 || r.Subcarriers > MaxSubcarriers ||
		r.Symbols < 1 || r.Symbols > MaxSymbols {
		return ErrPayload
	}
	n := r.Subcarriers * r.Symbols * r.Nt
	if len(payload) != respHeaderSize+2*n {
		return ErrPayload
	}
	if cap(r.Decisions) < n {
		r.Decisions = make([]uint16, n)
	}
	r.Decisions = r.Decisions[:n]
	for i := 0; i < n; i++ {
		r.Decisions[i] = binary.BigEndian.Uint16(payload[respHeaderSize+2*i:])
	}
	return nil
}

// AppendPayload appends the canonical payload encoding of r to dst
// (the fuzz target's round-trip oracle; the server encodes responses
// incrementally through appendRespHeader/appendDecisions).
func (r *DetectResponse) AppendPayload(dst []byte) []byte {
	dst = appendRespHeader(dst, r.FrameID, r.Status, r.ServedNPE, r.Nt, r.Subcarriers, r.Symbols)
	for _, d := range r.Decisions {
		dst = appendU16(dst, d)
	}
	return dst
}

// appendU64 appends v big-endian.
//
//flexcore:noalloc
func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...) //lint:ignore noalloc amortised: all wire buffers are reused and regrow only past their high-water mark
}

// appendU16 appends v big-endian.
//
//flexcore:noalloc
func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v)) //lint:ignore noalloc amortised: all wire buffers are reused and regrow only past their high-water mark
}

// appendU32 appends v big-endian.
//
//flexcore:noalloc
func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v)) //lint:ignore noalloc amortised: all wire buffers are reused and regrow only past their high-water mark
}

// appendC128 appends a complex128 as two big-endian float64s.
//
//flexcore:noalloc
func appendC128(dst []byte, v complex128) []byte {
	dst = appendU64(dst, math.Float64bits(real(v)))
	return appendU64(dst, math.Float64bits(imag(v)))
}

// decodeC128 reads a complex128 and reports whether both components
// are finite (NaN/Inf channel or sample values are rejected — they
// would poison every distance computation downstream).
//
//flexcore:noalloc
//flexcore:wire b c128Size
func decodeC128(b []byte) (complex128, bool) {
	re := math.Float64frombits(binary.BigEndian.Uint64(b[0:8]))
	im := math.Float64frombits(binary.BigEndian.Uint64(b[8:16]))
	if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
		return 0, false
	}
	return complex(re, im), true
}
