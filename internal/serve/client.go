package serve

import (
	"bufio"
	"io"
	"net"
	"sync"
	"time"
)

// Client speaks the serve wire protocol over any stream connection —
// a TCP socket (Dial) or the in-memory pipe of Server.InProcess. All
// of its buffers are reused, so a steady-state request/response loop
// allocates only in the caller's hands.
//
// Send and Recv are individually thread-safe (a reader goroutine can
// drain responses while another pipelines requests — the overload
// tests do exactly that), but responses arrive in per-user completion
// order, not send order: a pipelining caller must match them to
// requests by FrameID (one user's responses do arrive in that user's
// send order — the server's per-user FIFO contract). Do (one request,
// one response) assumes it is the only outstanding exchange on the
// connection.
//
// Latency vs. coalescing: Send flushes every request immediately —
// lowest latency, one write per frame. A pipelining load generator
// should Queue a burst and Flush once: requests coalesce into one
// write, the server coalesces the responses the same way, and with
// TCP_NODELAY set on both ends (Dial and Serve do) the burst still
// crosses the wire without Nagle/delayed-ACK stalls. An unflushed
// Queue is never sent — a caller that Queues and then waits on Recv
// without flushing deadlocks itself.
//
// By default I/O is unbounded: a server that accepts but never
// responds wedges Recv (and Do/DoRetry) forever. SetIOTimeout arms a
// per-operation deadline that turns such stalls into timeout errors
// DoRetry can recover from.
type Client struct {
	rwc io.ReadWriteCloser

	// dl is non-nil when rwc supports deadlines (a real net.Conn); the
	// in-memory pipe of Server.InProcess does not. ioTimeout bounds each
	// conn read and write when set (SetIOTimeout) — without it a stalled
	// server wedges Recv, Do and DoRetry forever.
	dl        net.Conn
	ioTimeout time.Duration

	// addr is the redial target for DoRetry's transport-error recovery;
	// empty for clients wrapped around a non-dialable transport (pipes).
	addr   string
	policy RetryPolicy
	jit    uint64 // SplitMix64 jitter stream state (seeded, deterministic)

	wmu     sync.Mutex
	bw      *bufio.Writer
	payload []byte
	wire    []byte

	rmu  sync.Mutex
	br   *bufio.Reader
	rbuf []byte
}

// RetryPolicy shapes DialRetry and Client.DoRetry: jittered exponential
// backoff with a deterministic, seeded jitter stream (no global RNG —
// two clients with the same seed back off identically, which keeps
// load-generator runs reproducible).
type RetryPolicy struct {
	// Attempts is the total number of tries including the first
	// (default 4).
	Attempts int
	// Backoff is the delay before the first retry (default 2ms); it
	// doubles on each subsequent retry.
	Backoff time.Duration
	// MaxBackoff caps the per-retry delay (default 250ms).
	MaxBackoff time.Duration
	// Seed seeds the jitter stream.
	Seed uint64
}

// withDefaults resolves the zero-value knobs.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.Backoff <= 0 {
		p.Backoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	return p
}

// splitmix advances a SplitMix64 state and returns the next value.
func splitmix(z *uint64) uint64 {
	*z += 0x9e3779b97f4a7c15
	x := *z
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewClient wraps an established connection with the same explicitly
// sized I/O buffers the server uses (connReadBuf/connWriteBuf).
func NewClient(rwc io.ReadWriteCloser) *Client {
	c := &Client{
		rwc: rwc,
		bw:  bufio.NewWriterSize(rwc, connWriteBuf),
		br:  bufio.NewReaderSize(rwc, connReadBuf),
	}
	if nc, ok := rwc.(net.Conn); ok {
		c.dl = nc
	}
	return c
}

// SetIOTimeout bounds every subsequent conn read and write with a
// deadline (zero restores unbounded I/O). Without it, a peer that
// accepts but never responds wedges Recv — and therefore Do and
// DoRetry — forever; with it, the stalled exchange surfaces as a
// timeout error, which DoRetry treats like any transport error
// (redialing when it can). No-op for non-deadline transports
// (Server.InProcess pipes).
func (c *Client) SetIOTimeout(d time.Duration) {
	c.wmu.Lock()
	c.rmu.Lock()
	c.ioTimeout = d
	c.rmu.Unlock()
	c.wmu.Unlock()
}

// armWrite arms the write deadline ahead of a buffered write or flush.
// Called under c.wmu.
func (c *Client) armWrite() {
	if c.dl == nil || c.ioTimeout <= 0 {
		return
	}
	c.dl.SetWriteDeadline(time.Now().Add(c.ioTimeout)) //lint:ignore determinism wall-clock connection hygiene only — detection results never depend on it
}

// armRead arms the read deadline ahead of a response read. Called
// under c.rmu.
func (c *Client) armRead() {
	if c.dl == nil || c.ioTimeout <= 0 {
		return
	}
	c.dl.SetReadDeadline(time.Now().Add(c.ioTimeout)) //lint:ignore determinism wall-clock connection hygiene only — detection results never depend on it
}

// Dial connects to a flexserve TCP address with TCP_NODELAY set:
// batching is the client's decision (Queue/Flush), not the kernel's.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewClient(conn), nil
}

// Send encodes, writes and flushes one detection request — the
// low-latency path: the request is on the wire when Send returns.
func (c *Client) Send(req *DetectRequest) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.queueLocked(req); err != nil { //lint:ignore lockscope the write mutex is the shared stream's serialization point; the hold is bounded by the I/O deadline (SetIOTimeout)
		return err
	}
	return c.bw.Flush() //lint:ignore lockscope same bounded serialization window
}

// Queue encodes one detection request into the client's write buffer
// without flushing — the coalescing path: a burst of Queue calls
// followed by one Flush crosses the wire in a single write (the buffer
// auto-flushes if the burst outgrows it). The request is NOT sent
// until Flush (or a buffer-filling later Queue); see the latency note
// on Client.
func (c *Client) Queue(req *DetectRequest) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.queueLocked(req) //lint:ignore lockscope the write mutex is the shared stream's serialization point; the hold is bounded by the I/O deadline (SetIOTimeout)
}

// Flush writes out every queued request.
func (c *Client) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.armWrite()
	return c.bw.Flush() //lint:ignore lockscope the write mutex is the shared stream's serialization point; the hold is bounded by the I/O deadline (SetIOTimeout)
}

// queueLocked encodes one request into the write buffer, arming the
// write deadline first: a Queue burst that outgrows the buffer flushes
// to the conn from here.
func (c *Client) queueLocked(req *DetectRequest) error {
	c.armWrite()
	c.payload = req.AppendPayload(c.payload[:0])
	c.wire = AppendFrame(c.wire[:0], MsgDetect, c.payload)
	_, err := c.bw.Write(c.wire)
	return err
}

// Recv reads the next response into resp (reusing its storage).
func (c *Client) Recv(resp *DetectResponse) error {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.armRead()
	typ, payload, buf, err := ReadFrame(c.br, c.rbuf) //lint:ignore lockscope the read mutex is the shared stream's serialization point; the hold is bounded by the I/O deadline (SetIOTimeout)
	c.rbuf = buf
	if err != nil {
		return err
	}
	if typ != MsgResult {
		return ErrType
	}
	return resp.Decode(payload)
}

// Do performs one request/response exchange. The caller must not have
// other requests outstanding on this client (pipeline with Send/Recv
// and FrameID matching instead).
func (c *Client) Do(req *DetectRequest, resp *DetectResponse) error {
	if err := c.Send(req); err != nil {
		return err
	}
	return c.Recv(resp)
}

// DialRetry dials like Dial but retries transient dial failures under
// the policy, and arms the returned client with it so DoRetry inherits
// the same backoff shape and jitter stream.
func DialRetry(addr string, policy RetryPolicy) (*Client, error) {
	policy = policy.withDefaults()
	jit := policy.Seed
	var lastErr error
	for attempt := 0; attempt < policy.Attempts; attempt++ {
		if attempt > 0 {
			sleepBackoff(policy, attempt-1, &jit)
		}
		c, err := Dial(addr)
		if err == nil {
			c.addr = addr
			c.policy = policy
			c.jit = jit
			return c, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// SetRetryPolicy arms a client built by NewClient/Dial with a retry
// policy for DoRetry (DialRetry does this automatically). Clients not
// built by DialRetry cannot redial, so DoRetry on them retries only
// StatusOverloaded responses, not transport errors.
func (c *Client) SetRetryPolicy(policy RetryPolicy) {
	c.policy = policy
	c.jit = policy.Seed
}

// DoRetry performs one request/response exchange with jittered-backoff
// retries: a StatusOverloaded response is retried after a backoff
// (explicit backpressure — the server asked the client to slow down),
// and a transport error redials when the client knows its address
// (DialRetry). Retrying after a transport error may make the server
// detect the same frame twice; that is safe because requests are
// idempotent by (UserID, FrameID) — detection is deterministic, so a
// duplicate yields bit-identical decisions, and the first response
// died with the old connection. Like Do, the caller must have no other
// exchange outstanding. It returns the number of retries consumed; on
// exhaustion the last response (e.g. still StatusOverloaded) or error
// is returned as-is.
func (c *Client) DoRetry(req *DetectRequest, resp *DetectResponse) (retries int, err error) {
	policy := c.policy.withDefaults()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			sleepBackoff(policy, attempt-1, &c.jit)
		}
		err = c.Do(req, resp)
		if err == nil && resp.Status != StatusOverloaded {
			return attempt, nil
		}
		if attempt+1 >= policy.Attempts {
			return attempt, err
		}
		if err != nil {
			if c.addr == "" {
				return attempt, err
			}
			if derr := c.redial(); derr != nil {
				// The redial consumed this attempt; the next one redials
				// again after backoff (Do on the dead conn fails fast).
				err = derr
			}
		}
	}
}

// redial replaces the client's connection with a fresh dial, resetting
// both buffered ends (unflushed request bytes and any half-read
// response died with the old connection).
func (c *Client) redial() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c.wmu.Lock()
	c.rmu.Lock()
	c.rwc.Close()
	c.rwc = conn
	c.dl = conn
	c.bw.Reset(conn)
	c.br.Reset(conn)
	c.rbuf = c.rbuf[:0]
	c.rmu.Unlock()
	c.wmu.Unlock()
	return nil
}

// sleepBackoff sleeps the jittered exponential delay of retry i
// (0-based): half the nominal delay fixed plus up to half drawn from
// the seeded jitter stream, capped at MaxBackoff.
func sleepBackoff(p RetryPolicy, i int, jit *uint64) {
	d := p.Backoff << uint(i)
	if d <= 0 || d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	half := d / 2
	time.Sleep(half + time.Duration(splitmix(jit)%uint64(half+1)))
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.rwc.Close() }
