package serve

import (
	"bufio"
	"io"
	"net"
	"sync"
)

// Client speaks the serve wire protocol over any stream connection —
// a TCP socket (Dial) or the in-memory pipe of Server.InProcess. All
// of its buffers are reused, so a steady-state request/response loop
// allocates only in the caller's hands.
//
// Send and Recv are individually thread-safe (a reader goroutine can
// drain responses while another pipelines requests — the overload
// tests do exactly that), but responses arrive in per-user completion
// order, not send order: a pipelining caller must match them to
// requests by FrameID (one user's responses do arrive in that user's
// send order — the server's per-user FIFO contract). Do (one request,
// one response) assumes it is the only outstanding exchange on the
// connection.
//
// Latency vs. coalescing: Send flushes every request immediately —
// lowest latency, one write per frame. A pipelining load generator
// should Queue a burst and Flush once: requests coalesce into one
// write, the server coalesces the responses the same way, and with
// TCP_NODELAY set on both ends (Dial and Serve do) the burst still
// crosses the wire without Nagle/delayed-ACK stalls. An unflushed
// Queue is never sent — a caller that Queues and then waits on Recv
// without flushing deadlocks itself.
type Client struct {
	rwc io.ReadWriteCloser

	wmu     sync.Mutex
	bw      *bufio.Writer
	payload []byte
	wire    []byte

	rmu  sync.Mutex
	br   *bufio.Reader
	rbuf []byte
}

// NewClient wraps an established connection with the same explicitly
// sized I/O buffers the server uses (connReadBuf/connWriteBuf).
func NewClient(rwc io.ReadWriteCloser) *Client {
	return &Client{
		rwc: rwc,
		bw:  bufio.NewWriterSize(rwc, connWriteBuf),
		br:  bufio.NewReaderSize(rwc, connReadBuf),
	}
}

// Dial connects to a flexserve TCP address with TCP_NODELAY set:
// batching is the client's decision (Queue/Flush), not the kernel's.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewClient(conn), nil
}

// Send encodes, writes and flushes one detection request — the
// low-latency path: the request is on the wire when Send returns.
func (c *Client) Send(req *DetectRequest) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.queueLocked(req); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Queue encodes one detection request into the client's write buffer
// without flushing — the coalescing path: a burst of Queue calls
// followed by one Flush crosses the wire in a single write (the buffer
// auto-flushes if the burst outgrows it). The request is NOT sent
// until Flush (or a buffer-filling later Queue); see the latency note
// on Client.
func (c *Client) Queue(req *DetectRequest) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.queueLocked(req)
}

// Flush writes out every queued request.
func (c *Client) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.bw.Flush()
}

func (c *Client) queueLocked(req *DetectRequest) error {
	c.payload = req.AppendPayload(c.payload[:0])
	c.wire = AppendFrame(c.wire[:0], MsgDetect, c.payload)
	_, err := c.bw.Write(c.wire)
	return err
}

// Recv reads the next response into resp (reusing its storage).
func (c *Client) Recv(resp *DetectResponse) error {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	typ, payload, buf, err := ReadFrame(c.br, c.rbuf)
	c.rbuf = buf
	if err != nil {
		return err
	}
	if typ != MsgResult {
		return ErrType
	}
	return resp.Decode(payload)
}

// Do performs one request/response exchange. The caller must not have
// other requests outstanding on this client (pipeline with Send/Recv
// and FrameID matching instead).
func (c *Client) Do(req *DetectRequest, resp *DetectResponse) error {
	if err := c.Send(req); err != nil {
		return err
	}
	return c.Recv(resp)
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.rwc.Close() }
