package serve

import (
	"bufio"
	"io"
	"net"
	"sync"
)

// Client speaks the serve wire protocol over any stream connection —
// a TCP socket (Dial) or the in-memory pipe of Server.InProcess. All
// of its buffers are reused, so a steady-state request/response loop
// allocates only in the caller's hands.
//
// Send and Recv are individually thread-safe (a reader goroutine can
// drain responses while another pipelines requests — the overload
// tests do exactly that), but responses arrive in per-shard completion
// order, not send order: a pipelining caller must match them to
// requests by FrameID. Do (one request, one response) assumes it is
// the only outstanding exchange on the connection.
type Client struct {
	rwc io.ReadWriteCloser

	wmu     sync.Mutex
	bw      *bufio.Writer
	payload []byte
	wire    []byte

	rmu  sync.Mutex
	br   *bufio.Reader
	rbuf []byte
}

// NewClient wraps an established connection.
func NewClient(rwc io.ReadWriteCloser) *Client {
	return &Client{rwc: rwc, bw: bufio.NewWriter(rwc), br: bufio.NewReader(rwc)}
}

// Dial connects to a flexserve TCP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// Send encodes and writes one detection request.
func (c *Client) Send(req *DetectRequest) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.payload = req.AppendPayload(c.payload[:0])
	c.wire = AppendFrame(c.wire[:0], MsgDetect, c.payload)
	if _, err := c.bw.Write(c.wire); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv reads the next response into resp (reusing its storage).
func (c *Client) Recv(resp *DetectResponse) error {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	typ, payload, buf, err := ReadFrame(c.br, c.rbuf)
	c.rbuf = buf
	if err != nil {
		return err
	}
	if typ != MsgResult {
		return ErrType
	}
	return resp.Decode(payload)
}

// Do performs one request/response exchange. The caller must not have
// other requests outstanding on this client (pipeline with Send/Recv
// and FrameID matching instead).
func (c *Client) Do(req *DetectRequest, resp *DetectResponse) error {
	if err := c.Send(req); err != nil {
		return err
	}
	return c.Recv(resp)
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.rwc.Close() }
