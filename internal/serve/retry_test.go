package serve

import (
	"context"
	"net"
	"testing"
	"time"

	"flexcore/internal/detector"
)

// TestDoRetryOverloaded: a client hitting a full shard gets explicit
// StatusOverloaded backpressure and DoRetry re-submits with backoff
// until capacity frees — the caller sees one OK response, plus the
// retry count for its telemetry.
func TestDoRetryOverloaded(t *testing.T) {
	slow := newSlowDetector()
	srv, err := NewServer(Config{
		Shards:          1,
		QueueDepth:      1,
		DetectorFactory: func() detector.Detector { return slow },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Frame 1 (user 1) parks the worker; frame 2 (user 2) fills the
	// depth-1 backlog. The filler client is drained on its own goroutine
	// so the eventual completions cannot deadlock the synchronous pipe.
	filler := srv.InProcess()
	defer filler.Close()
	fillerResponses := recvAll(filler)
	var q DetectRequest
	tinyFrame(t, &q, 1)
	if err := filler.Send(&q); err != nil {
		t.Fatal(err)
	}
	<-slow.started
	tinyFrame(t, &q, 2)
	q.UserID = 2
	if err := filler.Send(&q); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "backlog admission", func() bool { return srv.Metrics().Accepted == 2 })

	// Open the gate as soon as the retrying client has been rejected at
	// least once, so the retry loop observes both the rejection and the
	// recovery deterministically.
	release := make(chan struct{})
	go func() {
		defer close(release)
		for srv.Metrics().RejectedOverload == 0 {
			time.Sleep(time.Millisecond)
		}
		close(slow.gate)
	}()

	cl := srv.InProcess()
	defer cl.Close()
	cl.SetRetryPolicy(RetryPolicy{Attempts: 10, Backoff: time.Millisecond, Seed: 7})
	tinyFrame(t, &q, 3)
	q.UserID = 3
	var resp DetectResponse
	retries, err := cl.DoRetry(&q, &resp)
	if err != nil {
		t.Fatalf("DoRetry: %v", err)
	}
	if resp.Status != StatusOK || resp.FrameID != 3 {
		t.Fatalf("status %v frame %d after retries, want ok frame 3", resp.Status, resp.FrameID)
	}
	if retries < 1 {
		t.Fatalf("retries %d, want at least 1 — the first attempt hit a full queue", retries)
	}
	<-release
	_ = fillerResponses // drained on its own goroutine; frames 1 and 2 complete once the gate opens
	waitFor(t, "all frames completed", func() bool { return srv.Metrics().Completed == 3 })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	snap := srv.Metrics()
	if snap.Completed != 3 {
		t.Fatalf("completed %d, want 3 — the retried frame must be served exactly once after admission", snap.Completed)
	}
	if snap.RejectedOverload < 1 {
		t.Fatalf("rejected_overload %d, want ≥ 1", snap.RejectedOverload)
	}
}

// TestDoRetryExhaustion: when the overload never clears, DoRetry
// returns the last StatusOverloaded response (not an error — explicit
// backpressure is an answer) after exactly Attempts tries.
func TestDoRetryExhaustion(t *testing.T) {
	slow := newSlowDetector()
	srv, err := NewServer(Config{
		Shards:          1,
		QueueDepth:      1,
		DetectorFactory: func() detector.Detector { return slow },
	})
	if err != nil {
		t.Fatal(err)
	}
	filler := srv.InProcess()
	defer filler.Close()
	fillerResponses := recvAll(filler)
	var q DetectRequest
	tinyFrame(t, &q, 1)
	if err := filler.Send(&q); err != nil {
		t.Fatal(err)
	}
	<-slow.started
	tinyFrame(t, &q, 2)
	q.UserID = 2
	if err := filler.Send(&q); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "backlog admission", func() bool { return srv.Metrics().Accepted == 2 })

	cl := srv.InProcess()
	defer cl.Close()
	cl.SetRetryPolicy(RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Seed: 11})
	tinyFrame(t, &q, 3)
	q.UserID = 3
	var resp DetectResponse
	retries, err := cl.DoRetry(&q, &resp)
	if err != nil {
		t.Fatalf("DoRetry: %v (exhaustion hands back the overloaded response, not an error)", err)
	}
	if resp.Status != StatusOverloaded {
		t.Fatalf("status %v after exhaustion, want overloaded", resp.Status)
	}
	if retries != 2 {
		t.Fatalf("retries %d, want 2 (three attempts total)", retries)
	}
	if snap := srv.Metrics(); snap.RejectedOverload != 3 {
		t.Fatalf("rejected_overload %d, want 3", snap.RejectedOverload)
	}

	close(slow.gate)
	_ = fillerResponses // drained on its own goroutine
	waitFor(t, "admitted frames completed", func() bool { return srv.Metrics().Completed == 2 })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDoRetryRedialsAfterTransportError: a DialRetry client whose
// connection dies mid-session redials transparently and re-submits the
// frame — safe because requests are idempotent by (UserID, FrameID).
func TestDoRetryRedialsAfterTransportError(t *testing.T) {
	slow := newSlowDetector()
	close(slow.gate)
	srv, err := NewServer(Config{Shards: 1, DetectorFactory: func() detector.Detector { return slow }})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	cl, err := DialRetry(lis.Addr().String(), RetryPolicy{Attempts: 4, Backoff: time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var q DetectRequest
	var resp DetectResponse
	tinyFrame(t, &q, 1)
	if retries, err := cl.DoRetry(&q, &resp); err != nil || retries != 0 {
		t.Fatalf("healthy exchange: retries %d err %v", retries, err)
	}

	// Kill the connection out from under the client: the next DoRetry
	// must fail over to a fresh dial instead of surfacing the dead conn.
	cl.rwc.Close()
	tinyFrame(t, &q, 2)
	retries, err := cl.DoRetry(&q, &resp)
	if err != nil {
		t.Fatalf("DoRetry after a dead connection: %v", err)
	}
	if resp.Status != StatusOK || resp.FrameID != 2 {
		t.Fatalf("status %v frame %d after redial, want ok frame 2", resp.Status, resp.FrameID)
	}
	if retries < 1 {
		t.Fatalf("retries %d, want at least 1 (the first attempt died with the connection)", retries)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestDoRetryNoRedialWithoutAddr: a pipe-backed client cannot redial,
// so a transport error surfaces immediately instead of spinning.
func TestDoRetryNoRedialWithoutAddr(t *testing.T) {
	slow := newSlowDetector()
	close(slow.gate)
	srv, err := NewServer(Config{Shards: 1, DetectorFactory: func() detector.Detector { return slow }})
	if err != nil {
		t.Fatal(err)
	}
	cl := srv.InProcess()
	cl.SetRetryPolicy(RetryPolicy{Attempts: 5, Backoff: time.Millisecond})
	cl.Close()
	var q DetectRequest
	var resp DetectResponse
	tinyFrame(t, &q, 1)
	start := time.Now()
	if _, err := cl.DoRetry(&q, &resp); err == nil {
		t.Fatal("DoRetry on a closed, non-dialable client returned success")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("DoRetry burned %v retrying a non-redialable transport error", elapsed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDialRetryGivesUp: dialing a dead address fails after the
// configured attempts with the underlying error, never a hang.
func TestDialRetryGivesUp(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	start := time.Now()
	if _, err := DialRetry(addr, RetryPolicy{Attempts: 2, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}); err == nil {
		t.Fatal("DialRetry to a closed port succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DialRetry burned %v on 2 attempts with ms backoffs", elapsed)
	}
}

// TestRetryJitterDeterministic: the jitter stream is a pure function of
// the seed — two equally seeded policies back off identically, keeping
// load-generator runs reproducible.
func TestRetryJitterDeterministic(t *testing.T) {
	a, b := uint64(99), uint64(99)
	for i := 0; i < 16; i++ {
		if splitmix(&a) != splitmix(&b) {
			t.Fatalf("jitter streams with equal seeds diverged at draw %d", i)
		}
	}
	c := uint64(100)
	same := true
	a = 99
	for i := 0; i < 16; i++ {
		if splitmix(&a) != splitmix(&c) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter streams")
	}
}
