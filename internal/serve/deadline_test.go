package serve

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"

	"flexcore/internal/detector"
)

// TestStale pins the staleness predicate: a zero budget never expires,
// and the budget is compared in whole microseconds of queue age.
func TestStale(t *testing.T) {
	base := time.Unix(1000, 0)
	cases := []struct {
		name   string
		age    time.Duration
		budget uint64
		want   bool
	}{
		{"zero budget never expires", time.Hour, 0, false},
		{"within budget", 500 * time.Microsecond, 1000, false},
		{"exactly at budget", time.Millisecond, 1000, false},
		{"past budget", 1001 * time.Microsecond, 1000, true},
		{"clock went backwards", -time.Second, 1, false},
		{"tiny budget, long wait", time.Second, 1, true},
	}
	for _, c := range cases {
		if got := stale(base, c.budget, base.Add(c.age)); got != c.want {
			t.Fatalf("%s: stale(age=%v, budget=%dµs) = %v, want %v", c.name, c.age, c.budget, got, c.want)
		}
	}
}

// TestDeadlineShedsStaleQueuedFrames is the dequeue-side shedding
// contract: frames whose staleness budget elapses while they wait
// behind a blocked worker are answered StatusExpired without ever
// reaching the detector, and the in-flight ledger still drains to
// zero (expired frames count as completed).
func TestDeadlineShedsStaleQueuedFrames(t *testing.T) {
	slow := newSlowDetector()
	srv, err := NewServer(Config{
		Shards:          1,
		QueueDepth:      8,
		DetectorFactory: func() detector.Detector { return slow },
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := srv.InProcess()
	defer cl.Close()
	responses := recvAll(cl)

	// Frame 1 (no deadline) parks the worker inside Detect; frames 2..4
	// carry a 1µs budget and age out while queued behind it.
	var q DetectRequest
	tinyFrame(t, &q, 1)
	q.DeadlineMicros = 0
	if err := cl.Send(&q); err != nil {
		t.Fatal(err)
	}
	<-slow.started
	for id := uint64(2); id <= 4; id++ {
		tinyFrame(t, &q, id)
		q.DeadlineMicros = 1
		if err := cl.Send(&q); err != nil {
			t.Fatalf("send %d: %v", id, err)
		}
	}
	waitFor(t, "backlog admission", func() bool { return srv.Metrics().Accepted == 4 })
	close(slow.gate)

	got := map[uint64]Status{}
	for len(got) < 4 {
		r, ok := <-responses
		if !ok {
			t.Fatalf("connection died with %d/4 responses delivered", len(got))
		}
		got[r.frameID] = r.status
	}
	if got[1] != StatusOK {
		t.Fatalf("frame 1: status %v, want ok (it was already processing when its successors aged out)", got[1])
	}
	for id := uint64(2); id <= 4; id++ {
		if got[id] != StatusExpired {
			t.Fatalf("frame %d: status %v, want expired", id, got[id])
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	snap := srv.Metrics()
	if snap.ExpiredFrames != 3 {
		t.Fatalf("expired_frames %d, want 3", snap.ExpiredFrames)
	}
	if snap.Accepted != 4 || snap.Completed != 4 || snap.InFlight != 0 {
		t.Fatalf("ledger accepted %d completed %d in-flight %d, want 4/4/0 (expired frames must drain the ledger)", snap.Accepted, snap.Completed, snap.InFlight)
	}
	// Only frame 1's single symbol ever reached the detector — expiry
	// sheds the detection work, it does not race it.
	if calls := slow.calls.Load(); calls != 1 {
		t.Fatalf("detector saw %d Detect calls, want 1 — expired frames must never be detected", calls)
	}
}

// TestDeadlineExpiryAtAdmission drives the admission-side check
// white-box: a task whose budget is already blown when admit sees it
// (backdated arrival timestamp) is answered StatusExpired before it
// ever occupies queue capacity, and is never counted accepted.
func TestDeadlineExpiryAtAdmission(t *testing.T) {
	slow := newSlowDetector()
	close(slow.gate)
	srv, err := NewServer(Config{Shards: 1, DetectorFactory: func() detector.Detector { return slow }})
	if err != nil {
		t.Fatal(err)
	}
	left, right := net.Pipe()
	defer right.Close()
	c := &serverConn{rwc: left, br: bufio.NewReaderSize(left, 256), bw: bufio.NewWriterSize(left, 256)}

	tk := srv.taskPool.Get().(*task)
	tinyFrame(t, &tk.req, 42)
	tk.req.DeadlineMicros = 1000
	tk.c = c
	tk.enq = time.Now().Add(-time.Second) // arrived one second ago with a 1ms budget

	done := make(chan struct{})
	go func() {
		srv.admit(tk)
		close(done)
	}()
	typ, payload, _, err := ReadFrame(right, nil)
	if err != nil || typ != MsgResult {
		t.Fatalf("typ %d err %v", typ, err)
	}
	var resp DetectResponse
	if err := resp.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusExpired || resp.FrameID != 42 {
		t.Fatalf("admission answered status %v frame %d, want expired frame 42", resp.Status, resp.FrameID)
	}
	<-done

	snap := srv.Metrics()
	if snap.ExpiredFrames != 1 {
		t.Fatalf("expired_frames %d, want 1", snap.ExpiredFrames)
	}
	if snap.Accepted != 0 || snap.Completed != 0 {
		t.Fatalf("accepted %d completed %d, want 0/0 — an admission-expired frame never enters the ledger", snap.Accepted, snap.Completed)
	}
	if calls := slow.calls.Load(); calls != 0 {
		t.Fatalf("detector saw %d calls, want 0", calls)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineZeroIsDisabled: requests without a budget (the v1 wire
// default) are never shed, however long they queue.
func TestDeadlineZeroIsDisabled(t *testing.T) {
	slow := newSlowDetector()
	srv, err := NewServer(Config{Shards: 1, QueueDepth: 4, DetectorFactory: func() detector.Detector { return slow }})
	if err != nil {
		t.Fatal(err)
	}
	cl := srv.InProcess()
	defer cl.Close()
	responses := recvAll(cl)
	var q DetectRequest
	for id := uint64(1); id <= 3; id++ {
		tinyFrame(t, &q, id)
		if err := cl.Send(&q); err != nil {
			t.Fatal(err)
		}
	}
	<-slow.started
	waitFor(t, "backlog admission", func() bool { return srv.Metrics().Accepted == 3 })
	// Let the queued frames age well past any plausible accidental budget.
	time.Sleep(20 * time.Millisecond)
	close(slow.gate)
	for seen := 0; seen < 3; seen++ {
		r, ok := <-responses
		if !ok {
			t.Fatal("connection died early")
		}
		if r.status != StatusOK {
			t.Fatalf("frame %d: status %v, want ok (no deadline was set)", r.frameID, r.status)
		}
	}
	if snap := srv.Metrics(); snap.ExpiredFrames != 0 {
		t.Fatalf("expired_frames %d, want 0", snap.ExpiredFrames)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
