package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
)

// gatedDetector wraps a real detector, blocking the first Detect call
// until its gate opens — it lets a test park the shard worker inside a
// real frame so the admission queue fills to a known depth, then
// observe how the pressure controller degrades the backlog.
type gatedDetector struct {
	detector.Detector
	started chan struct{}
	gate    chan struct{}
	once    sync.Once
}

func (d *gatedDetector) Detect(y []complex128) []int {
	d.once.Do(func() {
		select {
		case d.started <- struct{}{}:
		default:
		}
		<-d.gate
	})
	return d.Detector.Detect(y)
}

// TestDegradationLadderBitIdentical is the degradation tentpole
// contract: with the worker parked inside frame 1, six more users'
// frames fill a depth-8 queue, so the dequeue-time pressure controller
// must walk them down the {8, 4} ladder deterministically — and every
// degraded frame's decisions must be bit-identical to the offline
// Prepare+Detect at exactly the N_PE the response reports. Runs on
// both FLEXCORE_BACKEND legs via envBackend.
func TestDegradationLadderBitIdentical(t *testing.T) {
	cons, err := constellation.New(e2eQAM)
	if err != nil {
		t.Fatal(err)
	}
	backend := envBackend(t)
	gated := &gatedDetector{
		Detector: core.New(cons, core.Options{NPE: e2eNPE, Workers: 1, Backend: backend}),
		started:  make(chan struct{}, 1),
		gate:     make(chan struct{}),
	}
	srv, err := NewServer(Config{
		Shards:          1,
		WorkersPerShard: 1,
		QueueDepth:      8,
		DegradeLadder:   []int{8, 4},
		DegradeStart:    0.25,
		DetectorFactory: func() detector.Detector { return gated },
		DegradeFactory: func(npe int) detector.Detector {
			return core.New(cons, core.Options{NPE: npe, Workers: 1, Backend: backend})
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	cl := srv.InProcess()
	defer cl.Close()

	type fullResp struct {
		frameID uint64
		status  Status
		npe     int
		dec     []uint16
	}
	got := make(chan fullResp, 16)
	go func() {
		defer close(got)
		var resp DetectResponse
		for {
			if err := cl.Recv(&resp); err != nil {
				return
			}
			got <- fullResp{resp.FrameID, resp.Status, resp.ServedNPE, append([]uint16(nil), resp.Decisions...)}
		}
	}()

	// Distinct users (all on the single shard) so each frame is its own
	// runnable chain head and the single worker dequeues them in
	// admission order; FrameID == UserID keys the response map.
	var q DetectRequest
	send := func(u uint64) {
		fillFrame(t, &q, u, u)
		if err := cl.Send(&q); err != nil {
			t.Fatalf("send %d: %v", u, err)
		}
	}
	send(1)
	<-gated.started
	for u := uint64(2); u <= 7; u++ {
		send(u)
	}
	waitFor(t, "backlog admission", func() bool { return srv.Metrics().Accepted == 7 })
	close(gated.gate)

	// Dequeue-time queue depths for frames 2..7 are 6,5,4,3,2,1 of 8:
	// fills 0.75, 0.625 → rung 2 (N_PE 4); 0.5, 0.375, 0.25 → rung 1
	// (N_PE 8); 0.125 < DegradeStart → rung 0 (full N_PE). Frame 1 was
	// dequeued at depth 1 → rung 0.
	wantNPE := map[uint64]int{1: 0, 2: 4, 3: 4, 4: 8, 5: 8, 6: 8, 7: 0}
	seen := map[uint64]bool{}
	for len(seen) < 7 {
		r, ok := <-got
		if !ok {
			t.Fatalf("connection died with %d/7 responses delivered", len(seen))
		}
		if r.status != StatusOK {
			t.Fatalf("frame %d: status %v, want ok", r.frameID, r.status)
		}
		want, known := wantNPE[r.frameID]
		if !known || seen[r.frameID] {
			t.Fatalf("unexpected or duplicate response for frame %d", r.frameID)
		}
		seen[r.frameID] = true
		if r.npe != want {
			t.Fatalf("frame %d: served N_PE %d, want %d (deterministic ladder walk)", r.frameID, r.npe, want)
		}
		eff := r.npe
		if eff == 0 {
			eff = e2eNPE
		}
		fillFrame(t, &q, r.frameID, r.frameID)
		ref := offlineDecisionsNPE(t, cons, &q, eff)
		if len(r.dec) != len(ref) {
			t.Fatalf("frame %d: %d decisions, want %d", r.frameID, len(r.dec), len(ref))
		}
		for i, w := range ref {
			if int(r.dec[i]) != w {
				t.Fatalf("frame %d decision %d: served %d, offline reference at N_PE=%d says %d — degraded frames must stay bit-identical to offline detection at the degraded N_PE",
					r.frameID, i, r.dec[i], eff, w)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	snap := srv.Metrics()
	if snap.DegradedFrames != 5 {
		t.Fatalf("degraded_frames %d, want 5", snap.DegradedFrames)
	}
	if snap.Completed != 7 || snap.Accepted != 7 || snap.InFlight != 0 {
		t.Fatalf("ledger accepted %d completed %d in-flight %d, want 7/7/0", snap.Accepted, snap.Completed, snap.InFlight)
	}
	if snap.ExpiredFrames != 0 {
		t.Fatalf("expired_frames %d without deadlines, want 0", snap.ExpiredFrames)
	}
}

// TestDegradeConfigValidation pins the config contract: a ladder
// without a factory, and a ladder that is not strictly decreasing,
// are construction-time errors, not silent misconfiguration.
func TestDegradeConfigValidation(t *testing.T) {
	slow := newSlowDetector()
	close(slow.gate)
	factory := func() detector.Detector { return slow }
	degrade := func(npe int) detector.Detector { return slow }
	cases := []struct {
		name string
		cfg  Config
	}{
		{"ladder without factory", Config{DetectorFactory: factory, DegradeLadder: []int{8, 4}}},
		{"non-decreasing ladder", Config{DetectorFactory: factory, DegradeFactory: degrade, DegradeLadder: []int{4, 8}}},
		{"non-positive rung", Config{DetectorFactory: factory, DegradeFactory: degrade, DegradeLadder: []int{8, 0}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewServer(c.cfg); err == nil {
				t.Fatal("NewServer accepted an invalid degradation config")
			}
		})
	}
}

// TestRungMapping pins the pressure controller's depth→rung curve.
func TestRungMapping(t *testing.T) {
	slow := newSlowDetector()
	close(slow.gate)
	srv, err := NewServer(Config{
		QueueDepth:      8,
		DegradeStart:    0.25,
		DegradeLadder:   []int{8, 4},
		DetectorFactory: func() detector.Detector { return slow },
		DegradeFactory:  func(npe int) detector.Detector { return slow },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	want := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 1, 5: 2, 6: 2, 7: 2, 8: 2, 9: 2}
	for depth, rung := range want {
		if got := srv.rung(depth); got != rung {
			t.Fatalf("rung(depth=%d) = %d, want %d", depth, got, rung)
		}
	}
}
