package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"flexcore/internal/detector"
)

// blackHole listens and swallows: every accepted connection is read
// and discarded, never answered — the stalled-server shape that used
// to wedge a deadline-less client forever.
func blackHole(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			conns = append(conns, conn)
			go io.Copy(io.Discard, conn)
		}
	}()
	t.Cleanup(func() {
		lis.Close()
		<-done
		for _, c := range conns {
			c.Close()
		}
	})
	return lis
}

// TestIOTimeoutBoundsStalledRecv is the regression for the client's
// missing I/O deadlines (found by the timeoutguard analyzer): a server
// that accepts and reads but never responds used to wedge Do forever,
// because Recv blocked without a read deadline. With SetIOTimeout the
// stall surfaces as a timeout error in bounded time.
func TestIOTimeoutBoundsStalledRecv(t *testing.T) {
	lis := blackHole(t)
	cl, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetIOTimeout(100 * time.Millisecond)

	var q DetectRequest
	var resp DetectResponse
	tinyFrame(t, &q, 1)
	start := time.Now()
	err = cl.Do(&q, &resp)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Do against a never-responding server returned success")
	}
	// ReadFrame folds a read-deadline expiry into ErrTruncated (the
	// stream ended mid-frame from the framing layer's point of view);
	// a raw net.Error timeout appears when the deadline fires before
	// any header byte arrives. Either way the stall must surface as an
	// error in bounded time — that boundedness is the regression.
	var ne net.Error
	if !errors.Is(err, ErrTruncated) && !(errors.As(err, &ne) && ne.Timeout()) {
		t.Fatalf("want ErrTruncated or a timeout error, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Do took %v against a stalled server — the deadline did not bound the read", elapsed)
	}
}

// stallOnceFront proxies to backend, except the first connection: that
// one is swallowed. A DoRetry client dialing the front sees one
// stalled exchange, then a healthy server on redial.
func stallOnceFront(t *testing.T, backend string) net.Listener {
	t.Helper()
	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	go func() {
		for {
			conn, err := front.Accept()
			if err != nil {
				return
			}
			if n.Add(1) == 1 {
				go io.Copy(io.Discard, conn) // swallow, never answer
				continue
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				conn.Close()
				continue
			}
			go func() { io.Copy(up, conn); up.Close() }()
			go func() { io.Copy(conn, up); conn.Close() }()
		}
	}()
	t.Cleanup(func() { front.Close() })
	return front
}

// TestDoRetryRecoversFromStalledServer: the end-to-end shape of the
// fix. The first exchange stalls (no response); the armed I/O deadline
// turns the stall into a transport error; DoRetry redials and the
// retried frame completes against the healthy server. Without
// SetIOTimeout this test would hang in Recv on the first attempt.
func TestDoRetryRecoversFromStalledServer(t *testing.T) {
	slow := newSlowDetector()
	close(slow.gate)
	srv, err := NewServer(Config{Shards: 1, DetectorFactory: func() detector.Detector { return slow }})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	front := stallOnceFront(t, lis.Addr().String())
	cl, err := DialRetry(front.Addr().String(), RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetIOTimeout(200 * time.Millisecond)

	var q DetectRequest
	var resp DetectResponse
	tinyFrame(t, &q, 1)
	start := time.Now()
	retries, err := cl.DoRetry(&q, &resp)
	if err != nil {
		t.Fatalf("DoRetry through the stalled front: %v", err)
	}
	if retries < 1 {
		t.Fatalf("retries %d, want at least 1 (the first attempt must have timed out)", retries)
	}
	if resp.Status != StatusOK || resp.FrameID != 1 {
		t.Fatalf("status %v frame %d after recovery, want ok frame 1", resp.Status, resp.FrameID)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("recovery took %v — the stalled attempt was not deadline-bounded", elapsed)
	}
}
