package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// frame builds a valid wire frame around payload.
func frame(typ MsgType, payload []byte) []byte {
	return AppendFrame(nil, typ, payload)
}

// corrupt returns a copy of b with the byte at i flipped.
func corrupt(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x00},
		[]byte("hello flexcore"),
		bytes.Repeat([]byte{0xa5}, 4096),
	}
	for _, typ := range []MsgType{MsgDetect, MsgResult} {
		for _, p := range payloads {
			w := frame(typ, p)
			gotTyp, gotPayload, rest, err := DecodeFrame(w)
			if err != nil {
				t.Fatalf("type %d payload %d bytes: %v", typ, len(p), err)
			}
			if gotTyp != typ {
				t.Fatalf("type %d decoded as %d", typ, gotTyp)
			}
			if !bytes.Equal(gotPayload, p) {
				t.Fatalf("payload mismatch (%d bytes)", len(p))
			}
			if len(rest) != 0 {
				t.Fatalf("%d trailing bytes after a single frame", len(rest))
			}
		}
	}
}

func TestDecodeFrameBackToBack(t *testing.T) {
	var w []byte
	w = AppendFrame(w, MsgDetect, []byte("first"))
	w = AppendFrame(w, MsgResult, []byte("second"))
	typ, p, rest, err := DecodeFrame(w)
	if err != nil || typ != MsgDetect || string(p) != "first" {
		t.Fatalf("first frame: typ=%d payload=%q err=%v", typ, p, err)
	}
	typ, p, rest, err = DecodeFrame(rest)
	if err != nil || typ != MsgResult || string(p) != "second" {
		t.Fatalf("second frame: typ=%d payload=%q err=%v", typ, p, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after two frames", len(rest))
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	valid := frame(MsgDetect, []byte("payload"))

	oversize := frame(MsgDetect, nil)
	binary.BigEndian.PutUint32(oversize[6:10], MaxPayload+1)

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"truncated header", valid[:headerSize-1], ErrTruncated},
		{"truncated payload", valid[:len(valid)-1], ErrTruncated},
		{"header only, missing payload", valid[:headerSize], ErrTruncated},
		{"bad magic", corrupt(valid, 0), ErrHeader},
		{"nonzero reserved byte", corrupt(valid, 5), ErrHeader},
		{"unknown type", corrupt(valid, 4), ErrType},
		{"oversize length", oversize, ErrOversize},
		{"corrupted CRC", corrupt(valid, 10), ErrChecksum},
		{"corrupted payload byte", corrupt(valid, headerSize), ErrChecksum},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, _, err := DecodeFrame(c.in); !errors.Is(err, c.want) {
				t.Fatalf("got %v, want %v", err, c.want)
			}
		})
	}
}

// TestReadFrameAgreesWithDecodeFrame feeds the same byte streams through
// the io.Reader path and the pure-bytes path: they must agree on every
// outcome, and ReadFrame must distinguish clean EOF (frame boundary)
// from mid-frame truncation.
func TestReadFrameAgreesWithDecodeFrame(t *testing.T) {
	valid := frame(MsgResult, []byte("stream payload"))
	streams := [][]byte{
		valid,
		append(append([]byte(nil), valid...), frame(MsgDetect, []byte("x"))...),
		valid[:len(valid)-3],
		valid[:5],
		corrupt(valid, 2),
		corrupt(valid, len(valid)-1),
	}
	for i, stream := range streams {
		r := bytes.NewReader(stream)
		var buf []byte
		rest := stream
		for {
			wantTyp, wantPayload, wantRest, wantErr := DecodeFrame(rest)
			var typ MsgType
			var payload []byte
			var err error
			typ, payload, buf, err = ReadFrame(r, buf)
			if wantErr != nil {
				if errors.Is(wantErr, ErrTruncated) && len(rest) == 0 {
					// Clean boundary: the reader sees EOF instead.
					if err != io.EOF {
						t.Fatalf("stream %d: ReadFrame at boundary got %v, want io.EOF", i, err)
					}
				} else if !errors.Is(err, wantErr) {
					t.Fatalf("stream %d: ReadFrame got %v, DecodeFrame got %v", i, err, wantErr)
				}
				break
			}
			if err != nil {
				t.Fatalf("stream %d: ReadFrame got %v, DecodeFrame succeeded", i, err)
			}
			if typ != wantTyp || !bytes.Equal(payload, wantPayload) {
				t.Fatalf("stream %d: frame mismatch", i)
			}
			rest = wantRest
		}
	}
}

// TestReadFrameReusesBuffer pins the amortised-allocation contract: a
// second same-size frame must decode into the same backing array.
func TestReadFrameReusesBuffer(t *testing.T) {
	w := frame(MsgDetect, bytes.Repeat([]byte{1}, 256))
	r := bytes.NewReader(append(append([]byte(nil), w...), w...))
	_, _, buf, err := ReadFrame(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := &buf[0]
	_, _, buf2, err := ReadFrame(r, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &buf2[0] != first {
		t.Fatal("same-size frame reallocated the read buffer")
	}
}

// fillRequest populates q with a deterministic small frame.
func fillRequest(t testing.TB, q *DetectRequest, nr, nt, k, s int) {
	t.Helper()
	q.UserID, q.FrameID, q.Sigma2 = 42, 7, 0.25
	q.DeadlineMicros = 1500
	if err := q.SetGeometry(nr, nt, k, s); err != nil {
		t.Fatal(err)
	}
	for i := range q.hdata {
		q.hdata[i] = complex(float64(i+1)*0.5, -float64(i))
	}
	for i := range q.ydata {
		q.ydata[i] = complex(-float64(i), float64(i)*0.25)
	}
}

func TestRequestPayloadRoundTrip(t *testing.T) {
	var q DetectRequest
	fillRequest(t, &q, 4, 3, 5, 2)
	payload := q.AppendPayload(nil)
	if len(payload) != q.payloadSize() {
		t.Fatalf("encoded %d bytes, payloadSize says %d", len(payload), q.payloadSize())
	}
	var got DetectRequest
	if err := got.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if got.UserID != q.UserID || got.FrameID != q.FrameID || got.Sigma2 != q.Sigma2 {
		t.Fatal("scalar field mismatch")
	}
	if got.Nr != q.Nr || got.Nt != q.Nt || got.Subcarriers != q.Subcarriers || got.Symbols != q.Symbols {
		t.Fatal("geometry mismatch")
	}
	if got.DeadlineMicros != q.DeadlineMicros {
		t.Fatalf("deadline mismatch: got %d, want %d", got.DeadlineMicros, q.DeadlineMicros)
	}
	for k, h := range got.H() {
		want := q.H()[k]
		if h.Rows != want.Rows || h.Cols != want.Cols {
			t.Fatalf("subcarrier %d: matrix shape mismatch", k)
		}
		for i := range h.Data {
			if h.Data[i] != want.Data[i] {
				t.Fatalf("subcarrier %d: channel entry %d mismatch", k, i)
			}
		}
	}
	for k := 0; k < q.Subcarriers; k++ {
		wantBurst, gotBurst := q.Burst(k), got.Burst(k)
		for s := range wantBurst {
			for i := range wantBurst[s] {
				if gotBurst[s][i] != wantBurst[s][i] {
					t.Fatalf("subcarrier %d symbol %d: sample mismatch", k, s)
				}
			}
		}
	}
	// The decoded request must re-encode to the identical payload.
	if !bytes.Equal(got.AppendPayload(nil), payload) {
		t.Fatal("re-encode differs from original payload")
	}
}

func TestRequestDecodeErrors(t *testing.T) {
	var q DetectRequest
	fillRequest(t, &q, 4, 3, 2, 2)
	valid := q.AppendPayload(nil)

	mutate := func(f func(p []byte)) []byte {
		p := append([]byte(nil), valid...)
		f(p)
		return p
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrPayload},
		{"short header", valid[:reqHeaderSize-1], ErrPayload},
		{"truncated samples", valid[:len(valid)-1], ErrPayload},
		{"trailing bytes", append(append([]byte(nil), valid...), 0), ErrPayload},
		{"sigma2 NaN", mutate(func(p []byte) {
			binary.BigEndian.PutUint64(p[16:24], math.Float64bits(math.NaN()))
		}), ErrPayload},
		{"sigma2 zero", mutate(func(p []byte) {
			binary.BigEndian.PutUint64(p[16:24], 0)
		}), ErrPayload},
		{"sigma2 negative", mutate(func(p []byte) {
			binary.BigEndian.PutUint64(p[16:24], math.Float64bits(-1))
		}), ErrPayload},
		{"nt exceeds nr", mutate(func(p []byte) {
			binary.BigEndian.PutUint16(p[26:28], 5)
		}), ErrGeometry},
		{"zero nt", mutate(func(p []byte) {
			binary.BigEndian.PutUint16(p[26:28], 0)
		}), ErrGeometry},
		{"nr over cap", mutate(func(p []byte) {
			binary.BigEndian.PutUint16(p[24:26], MaxAntennas+1)
		}), ErrGeometry},
		{"subcarriers over cap", mutate(func(p []byte) {
			binary.BigEndian.PutUint16(p[28:30], MaxSubcarriers+1)
		}), ErrGeometry},
		{"symbols over cap", mutate(func(p []byte) {
			binary.BigEndian.PutUint16(p[30:32], MaxSymbols+1)
		}), ErrGeometry},
		{"zero subcarriers", mutate(func(p []byte) {
			binary.BigEndian.PutUint16(p[28:30], 0)
		}), ErrGeometry},
		{"non-finite channel entry", mutate(func(p []byte) {
			binary.BigEndian.PutUint64(p[reqHeaderSize:], math.Float64bits(math.Inf(1)))
		}), ErrPayload},
		{"non-finite sample", mutate(func(p []byte) {
			off := reqHeaderSize + c128Size*q.Subcarriers*q.Nr*q.Nt
			binary.BigEndian.PutUint64(p[off:], math.Float64bits(math.NaN()))
		}), ErrPayload},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var got DetectRequest
			if err := got.Decode(c.in); !errors.Is(err, c.want) {
				t.Fatalf("got %v, want %v", err, c.want)
			}
		})
	}
}

func TestResponsePayloadRoundTrip(t *testing.T) {
	r := DetectResponse{
		FrameID: 99, Status: StatusOK,
		Nt: 2, Subcarriers: 3, Symbols: 2,
		Decisions: []uint16{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
	}
	payload := r.AppendPayload(nil)
	var got DetectResponse
	if err := got.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if got.FrameID != r.FrameID || got.Status != r.Status ||
		got.Nt != r.Nt || got.Subcarriers != r.Subcarriers || got.Symbols != r.Symbols {
		t.Fatal("header mismatch")
	}
	for i := range r.Decisions {
		if got.Decisions[i] != r.Decisions[i] {
			t.Fatalf("decision %d mismatch", i)
		}
	}
	if got.Decision(2, 1, 1) != 11 {
		t.Fatalf("Decision(2,1,1) = %d, want 11", got.Decision(2, 1, 1))
	}
	// A degraded OK response reports its served N_PE through the codec.
	deg := r
	deg.ServedNPE = 32
	var gotDeg DetectResponse
	if err := gotDeg.Decode(deg.AppendPayload(nil)); err != nil {
		t.Fatal(err)
	}
	if gotDeg.ServedNPE != 32 {
		t.Fatalf("ServedNPE = %d, want 32", gotDeg.ServedNPE)
	}
	// A bare rejection carries zero geometry and no decisions.
	rej := appendRespHeader(nil, 5, StatusOverloaded, 0, 0, 0, 0)
	var gotRej DetectResponse
	if err := gotRej.Decode(rej); err != nil {
		t.Fatal(err)
	}
	if gotRej.FrameID != 5 || gotRej.Status != StatusOverloaded || len(gotRej.Decisions) != 0 {
		t.Fatal("rejection decode mismatch")
	}
	// An expired shed is a bare status response like any rejection.
	exp := appendRespHeader(nil, 6, StatusExpired, 0, 0, 0, 0)
	var gotExp DetectResponse
	if err := gotExp.Decode(exp); err != nil {
		t.Fatal(err)
	}
	if gotExp.FrameID != 6 || gotExp.Status != StatusExpired || gotExp.ServedNPE != 0 {
		t.Fatal("expired decode mismatch")
	}
}

func TestResponseDecodeErrors(t *testing.T) {
	ok := (&DetectResponse{
		FrameID: 1, Status: StatusOK, Nt: 1, Subcarriers: 1, Symbols: 1,
		Decisions: []uint16{3},
	}).AppendPayload(nil)
	rej := appendRespHeader(nil, 1, StatusDraining, 0, 0, 0, 0)

	mutate := func(base []byte, f func(p []byte)) []byte {
		p := append([]byte(nil), base...)
		f(p)
		return p
	}
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"short header", ok[:respHeaderSize-1]},
		{"unknown status", mutate(rej, func(p []byte) { p[8] = byte(statusMax) + 1 })},
		{"nonzero reserved", mutate(ok, func(p []byte) { p[9] = 1 })},
		{"rejection with geometry", mutate(rej, func(p []byte) { p[11] = 1 })},
		{"rejection with served npe", mutate(rej, func(p []byte) { p[19] = 1 })},
		{"rejection with trailing bytes", append(append([]byte(nil), rej...), 0, 0)},
		{"ok with zero geometry", mutate(ok, func(p []byte) {
			binary.BigEndian.PutUint16(p[10:12], 0)
		})},
		{"ok with truncated decisions", ok[:len(ok)-1]},
		{"ok with trailing bytes", append(append([]byte(nil), ok...), 0)},
		{"ok with nt over cap", mutate(ok, func(p []byte) {
			binary.BigEndian.PutUint16(p[10:12], MaxAntennas+1)
		})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var r DetectResponse
			if err := r.Decode(c.in); !errors.Is(err, ErrPayload) {
				t.Fatalf("got %v, want ErrPayload", err)
			}
		})
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		StatusOK: "ok", StatusOverloaded: "overloaded",
		StatusDraining: "draining", StatusInvalid: "invalid",
		StatusExpired: "expired", Status(200): "unknown",
	} {
		if got := st.String(); got != want {
			t.Fatalf("Status(%d).String() = %q, want %q", st, got, want)
		}
	}
}

func TestShardIndexStableAndInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 8, 13} {
		seen := make(map[int]bool)
		for u := uint64(0); u < 4096; u++ {
			i := shardIndex(u, shards)
			if i < 0 || i >= shards {
				t.Fatalf("user %d: shard %d out of [0,%d)", u, i, shards)
			}
			if j := shardIndex(u, shards); j != i {
				t.Fatalf("user %d: routing not stable (%d vs %d)", u, i, j)
			}
			seen[i] = true
		}
		if len(seen) != shards {
			t.Fatalf("%d shards: only %d ever selected over 4096 users", shards, len(seen))
		}
	}
}
