package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
)

// chaosServe starts a real-detector TCP server with the connection
// hygiene budgets armed and returns its dial address. Shutdown and the
// Serve error are checked in cleanup.
func chaosServe(t *testing.T, cons *constellation.Constellation, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.DetectorFactory == nil {
		backend := envBackend(t)
		cfg.DetectorFactory = func() detector.Detector {
			return core.New(cons, core.Options{NPE: e2eNPE, Workers: 1, Backend: backend})
		}
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, lis.Addr().String()
}

// faultDial dials the server and wraps the connection in a FaultConn.
func faultDial(t *testing.T, addr string, plan FaultPlan) *Client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return NewClient(NewFaultConn(conn, plan))
}

// TestChaosLosslessFaults drives real frames through every lossless
// fault class — partial writes, short reads, stutter, and all three at
// once — with the hygiene deadlines armed. The byte stream is reshaped
// but intact, so every response must still be bit-identical to the
// offline reference and nothing may be counted as a peer fault.
func TestChaosLosslessFaults(t *testing.T) {
	cons, err := constellation.New(e2eQAM)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := chaosServe(t, cons, Config{
		Shards:       2,
		ReadTimeout:  2 * time.Second,
		IdleTimeout:  5 * time.Second,
		WriteTimeout: 2 * time.Second,
	})

	plans := []struct {
		name string
		plan FaultPlan
	}{
		{"partial-writes", FaultPlan{Seed: 0xc0ffee01, MaxWriteChunk: 7}},
		{"short-reads", FaultPlan{Seed: 0xc0ffee02, MaxReadChunk: 5}},
		{"stutter", FaultPlan{Seed: 0xc0ffee03, StutterEvery: 9, Stutter: 200 * time.Microsecond}},
		{"combined", FaultPlan{Seed: 0xc0ffee04, MaxWriteChunk: 9, MaxReadChunk: 7, StutterEvery: 17, Stutter: 200 * time.Microsecond}},
	}
	for pi, p := range plans {
		t.Run(p.name, func(t *testing.T) {
			cl := faultDial(t, addr, p.plan)
			defer cl.Close()
			var q DetectRequest
			var resp DetectResponse
			for f := 0; f < 3; f++ {
				fillFrame(t, &q, uint64(7000+pi), uint64(f+1))
				if err := cl.Do(&q, &resp); err != nil {
					t.Fatalf("frame %d under %s: %v", f+1, p.name, err)
				}
				checkResponse(t, cons, &q, &resp)
			}
		})
	}
	snap := srv.Metrics()
	if snap.BadFrames != 0 || snap.ConnTimeouts != 0 || snap.WriteErrors != 0 {
		t.Fatalf("lossless faults were miscounted as peer faults: bad_frames %d conn_timeouts %d write_errors %d",
			snap.BadFrames, snap.ConnTimeouts, snap.WriteErrors)
	}
}

// TestChaosCorruptionCaughtByCRC flips one bit of the second frame in
// flight: the server's CRC check must reject the frame and close the
// connection (framing cannot be resynchronised), counting exactly one
// bad frame — and the server must keep serving fresh connections.
func TestChaosCorruptionCaughtByCRC(t *testing.T) {
	cons, err := constellation.New(e2eQAM)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := chaosServe(t, cons, Config{})

	var q DetectRequest
	fillFrame(t, &q, 7100, 1)
	frameLen := int64(len(AppendFrame(nil, MsgDetect, q.AppendPayload(nil))))

	// Corrupt the 5th payload byte of frame 2 (same geometry, same wire
	// length as frame 1) — inside the CRC-covered region.
	cl := faultDial(t, addr, FaultPlan{Seed: 1, CorruptByte: frameLen + headerSize + 5})
	defer cl.Close()
	var resp DetectResponse
	fillFrame(t, &q, 7100, 1)
	if err := cl.Do(&q, &resp); err != nil {
		t.Fatalf("frame 1 (before the corruption point): %v", err)
	}
	checkResponse(t, cons, &q, &resp)

	fillFrame(t, &q, 7100, 2)
	if err := cl.Do(&q, &resp); err == nil {
		t.Fatal("corrupted frame was answered — the CRC must catch in-flight corruption")
	}
	waitFor(t, "bad-frame counter", func() bool { return srv.Metrics().BadFrames == 1 })

	// The server survived: a clean connection still round-trips.
	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	fillFrame(t, &q, 7101, 1)
	if err := cl2.Do(&q, &resp); err != nil {
		t.Fatalf("clean connection after the corrupted one: %v", err)
	}
	checkResponse(t, cons, &q, &resp)
}

// TestChaosMidFrameReset kills the connection partway through the
// second frame's bytes: the client gets the typed ErrInjectedReset,
// the server sees a truncated frame (one bad frame, no hang), and
// fresh connections keep working.
func TestChaosMidFrameReset(t *testing.T) {
	cons, err := constellation.New(e2eQAM)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := chaosServe(t, cons, Config{})

	var q DetectRequest
	fillFrame(t, &q, 7200, 1)
	frameLen := int64(len(AppendFrame(nil, MsgDetect, q.AppendPayload(nil))))

	cl := faultDial(t, addr, FaultPlan{Seed: 2, ResetAfter: frameLen + headerSize + 10})
	defer cl.Close()
	var resp DetectResponse
	fillFrame(t, &q, 7200, 1)
	if err := cl.Do(&q, &resp); err != nil {
		t.Fatalf("frame 1 (before the reset point): %v", err)
	}
	checkResponse(t, cons, &q, &resp)

	fillFrame(t, &q, 7200, 2)
	err = cl.Do(&q, &resp)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("mid-frame reset surfaced as %v, want ErrInjectedReset", err)
	}
	waitFor(t, "bad-frame counter", func() bool { return srv.Metrics().BadFrames == 1 })

	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	fillFrame(t, &q, 7201, 1)
	if err := cl2.Do(&q, &resp); err != nil {
		t.Fatalf("clean connection after the reset one: %v", err)
	}
	checkResponse(t, cons, &q, &resp)
}

// TestChaosSlowLorisReaped pins the read-side hygiene: a peer stalling
// mid-header is reaped by IdleTimeout, one stalling mid-payload by
// ReadTimeout — both counted as connection timeouts, never as peer
// framing faults — while a healthy connection on the same server is
// completely unaffected.
func TestChaosSlowLorisReaped(t *testing.T) {
	cons, err := constellation.New(e2eQAM)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := chaosServe(t, cons, Config{
		ReadTimeout: 150 * time.Millisecond,
		IdleTimeout: 150 * time.Millisecond,
	})

	var q DetectRequest
	fillFrame(t, &q, 7300, 1)
	frame := AppendFrame(nil, MsgDetect, q.AppendPayload(nil))

	// Loris A: five header bytes, then silence → idle reaper.
	lorisA, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer lorisA.Close()
	if _, err := lorisA.Write(frame[:5]); err != nil {
		t.Fatal(err)
	}

	// Loris B: full header plus a payload prefix, then silence → the
	// mid-frame read deadline.
	lorisB, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer lorisB.Close()
	if _, err := lorisB.Write(frame[:headerSize+8]); err != nil {
		t.Fatal(err)
	}

	// A healthy client keeps round-tripping while both lorises stall.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var resp DetectResponse
	for f := 0; f < 3; f++ {
		fillFrame(t, &q, 7301, uint64(f+1))
		if err := cl.Do(&q, &resp); err != nil {
			t.Fatalf("healthy frame %d during the loris stall: %v", f+1, err)
		}
		checkResponse(t, cons, &q, &resp)
	}
	// Close the healthy client before waiting: once it goes quiet the
	// idle reaper would (correctly) claim it too, and ConnTimeouts
	// could hop from 2 to 3 between polls. A client-initiated close is
	// a clean EOF and counts nothing.
	cl.Close()

	waitFor(t, "both lorises reaped", func() bool { return srv.Metrics().ConnTimeouts == 2 })
	// The reap closed the sockets: the stalled peers observe it.
	for i, loris := range []net.Conn{lorisA, lorisB} {
		loris.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := loris.Read(make([]byte, 1)); err == nil {
			t.Fatalf("loris %d read succeeded after its connection was reaped", i)
		}
	}
	if snap := srv.Metrics(); snap.BadFrames != 0 {
		t.Fatalf("reaped lorises were miscounted as %d bad frames", snap.BadFrames)
	}
}

// TestChaosWriteStallCondemned pins the write-side hygiene over the
// synchronous in-process pipe: a client that never drains its
// responses stalls the worker's flush until WriteTimeout condemns the
// connection — after which the worker is free and the next client is
// served normally.
func TestChaosWriteStallCondemned(t *testing.T) {
	slow := newSlowDetector()
	close(slow.gate)
	srv, err := NewServer(Config{
		Shards:          1,
		WriteTimeout:    100 * time.Millisecond,
		DetectorFactory: func() detector.Detector { return slow },
	})
	if err != nil {
		t.Fatal(err)
	}

	stalled := srv.InProcess()
	defer stalled.Close()
	var q DetectRequest
	tinyFrame(t, &q, 1)
	if err := stalled.Send(&q); err != nil {
		t.Fatal(err)
	}
	// Never Recv: the pipe is synchronous, so the worker's response flush
	// blocks until the write deadline condemns the connection.
	waitFor(t, "write-stall condemnation", func() bool { return srv.Metrics().ConnTimeouts == 1 })

	// The worker survived the stall: a fresh client round-trips.
	cl := srv.InProcess()
	defer cl.Close()
	var resp DetectResponse
	tinyFrame(t, &q, 2)
	if err := cl.Do(&q, &resp); err != nil {
		t.Fatalf("frame after the write stall: %v", err)
	}
	if resp.Status != StatusOK || resp.FrameID != 2 {
		t.Fatalf("status %v frame %d, want ok frame 2", resp.Status, resp.FrameID)
	}

	snap := srv.Metrics()
	if snap.WriteErrors != 1 {
		t.Fatalf("write_errors %d, want 1 (one condemned connection)", snap.WriteErrors)
	}
	if snap.BadFrames != 0 {
		t.Fatalf("bad_frames %d, want 0 — the condemned conn's reader error is server-initiated", snap.BadFrames)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestFaultConnDeterminism: the same plan over the same traffic makes
// identical chunking decisions — a failing chaos run replays exactly.
func TestFaultConnDeterminism(t *testing.T) {
	chunks := func(seed uint64) []int {
		a, b := net.Pipe()
		defer a.Close()
		var sizes []int
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 64)
			for {
				n, err := b.Read(buf)
				if n > 0 {
					sizes = append(sizes, n)
				}
				if err != nil {
					return
				}
			}
		}()
		fc := NewFaultConn(a, FaultPlan{Seed: seed, MaxWriteChunk: 5})
		payload := make([]byte, 200)
		for i := range payload {
			payload[i] = byte(i)
		}
		if _, err := fc.Write(payload); err != nil {
			t.Fatal(err)
		}
		a.Close()
		<-done
		return sizes
	}
	first, second := chunks(42), chunks(42)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("same seed produced different fragmentation:\n%v\n%v", first, second)
	}
	if len(first) < 2 {
		t.Fatalf("MaxWriteChunk=5 over 200 bytes produced %d fragments, want many", len(first))
	}
}
