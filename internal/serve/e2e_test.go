package serve

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"flexcore/internal/channel"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
)

// envBackend mirrors the conformance suite: the FLEXCORE_BACKEND
// environment variable selects the kernel backend of the CI matrix leg
// (empty = complex128); an unknown value fails loudly.
func envBackend(t testing.TB) core.Backend {
	t.Helper()
	b, ok := core.ParseBackend(os.Getenv("FLEXCORE_BACKEND"))
	if !ok {
		t.Fatalf("FLEXCORE_BACKEND=%q: unknown backend", os.Getenv("FLEXCORE_BACKEND"))
	}
	return b
}

// e2e geometry: a small but non-trivial uplink frame.
const (
	e2eNr, e2eNt   = 5, 4
	e2eK, e2eS     = 6, 3
	e2eQAM, e2eNPE = 16, 16
	e2eSigma2      = 0.1
)

// fillFrame fills q with the deterministic frame (userID, frameID) of a
// seeded ensemble: Rayleigh channels per subcarrier, random transmit
// vectors through them plus AWGN. Both the client and the offline
// reference regenerate identical bits from the same (userID, frameID).
func fillFrame(t testing.TB, q *DetectRequest, userID, frameID uint64) {
	t.Helper()
	q.UserID, q.FrameID, q.Sigma2 = userID, frameID, e2eSigma2
	if err := q.SetGeometry(e2eNr, e2eNt, e2eK, e2eS); err != nil {
		t.Fatal(err)
	}
	rng := channel.NewStreamRNG(0xf1ec, userID<<20|frameID)
	x := make([]complex128, e2eNt)
	for k := 0; k < e2eK; k++ {
		h := channel.Rayleigh(rng, e2eNr, e2eNt)
		copy(q.H()[k].Data, h.Data)
		for _, y := range q.Burst(k) {
			for i := range x {
				x[i] = channel.CN(rng, 1)
			}
			copy(y, h.MulVec(x))
			channel.AddAWGN(rng, y, e2eSigma2)
		}
	}
}

// offlineCache memoizes offlineDecisionsNPE per (request payload, NPE):
// the e2e matrix re-checks the same deterministic (userID, frameID)
// frames across many server configurations and degradation rungs, and
// the reference decisions are a pure function of the request bytes and
// the N_PE they are detected at (the backend is fixed per process).
var offlineCache sync.Map // string(payload)+"@npe" -> []int

// offlineDecisions runs the reference path at the full e2e N_PE.
func offlineDecisions(t testing.TB, cons *constellation.Constellation, q *DetectRequest) []int {
	return offlineDecisionsNPE(t, cons, q, e2eNPE)
}

// offlineDecisionsNPE runs the reference path — a fresh single-worker
// detector at the given N_PE, scalar Prepare+Detect looped over every
// subcarrier and OFDM symbol — and returns the flat (k, s, stream)-major
// decisions. The degradation suite compares served frames against it at
// the rung N_PE the server reported.
func offlineDecisionsNPE(t testing.TB, cons *constellation.Constellation, q *DetectRequest, npe int) []int {
	t.Helper()
	key := fmt.Sprintf("%s@%d", q.AppendPayload(nil), npe)
	if got, ok := offlineCache.Load(key); ok {
		return got.([]int)
	}
	det := core.New(cons, core.Options{NPE: npe, Workers: 1, Backend: envBackend(t)})
	defer det.Close()
	out := make([]int, 0, q.Subcarriers*q.Symbols*q.Nt)
	for k := 0; k < q.Subcarriers; k++ {
		if err := det.Prepare(q.H()[k], q.Sigma2); err != nil {
			t.Fatal(err)
		}
		for _, y := range q.Burst(k) {
			out = append(out, det.Detect(y)...)
		}
	}
	offlineCache.Store(key, out)
	return out
}

// checkResponse compares a served response against the offline
// reference for the same frame.
func checkResponse(t testing.TB, cons *constellation.Constellation, q *DetectRequest, resp *DetectResponse) {
	t.Helper()
	if resp.Status != StatusOK {
		t.Fatalf("user %d frame %d: status %v, want ok", q.UserID, q.FrameID, resp.Status)
	}
	if resp.FrameID != q.FrameID {
		t.Fatalf("user %d: response frame %d, want %d", q.UserID, resp.FrameID, q.FrameID)
	}
	if resp.Nt != q.Nt || resp.Subcarriers != q.Subcarriers || resp.Symbols != q.Symbols {
		t.Fatalf("user %d frame %d: geometry echo mismatch", q.UserID, q.FrameID)
	}
	if resp.ServedNPE != 0 {
		t.Fatalf("user %d frame %d: served N_PE %d on a server without a degrade ladder", q.UserID, q.FrameID, resp.ServedNPE)
	}
	want := offlineDecisions(t, cons, q)
	if len(resp.Decisions) != len(want) {
		t.Fatalf("user %d frame %d: %d decisions, want %d", q.UserID, q.FrameID, len(resp.Decisions), len(want))
	}
	for i, w := range want {
		if int(resp.Decisions[i]) != w {
			t.Fatalf("user %d frame %d: decision %d = %d, offline reference %d — served decisions must be bit-identical to the offline path",
				q.UserID, q.FrameID, i, resp.Decisions[i], w)
		}
	}
}

// TestE2EServedEqualsOffline is the tentpole contract: N concurrent
// clients stream frames through the full ingest→shard→detect→respond
// pipeline, across shard counts and detector worker counts, and every
// served decision must be bit-identical to looping the offline
// Prepare+Detect over the same frame. The kernel backend leg comes from
// FLEXCORE_BACKEND, so the CI matrix covers both.
func TestE2EServedEqualsOffline(t *testing.T) {
	cons, err := constellation.New(e2eQAM)
	if err != nil {
		t.Fatal(err)
	}
	backend := envBackend(t)
	const clients, framesPerClient = 6, 4
	for _, shards := range []int{1, 2, 8} {
		for _, wps := range []int{1, 4} {
			// Cover in-detector parallelism on the configs without shard
			// worker pools (the two multiply the same worker budget).
			workers := 1
			if wps == 1 {
				workers = 3
			}
			t.Run(fmt.Sprintf("shards=%d,workersPerShard=%d,detWorkers=%d", shards, wps, workers), func(t *testing.T) {
				srv, err := NewServer(Config{
					Shards:          shards,
					WorkersPerShard: wps,
					QueueDepth:      2 * clients * framesPerClient, // overload-free: this test pins correctness, not backpressure
					DetectorFactory: func() detector.Detector {
						return core.New(cons, core.Options{NPE: e2eNPE, Workers: workers, Backend: backend})
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(userID uint64) {
						defer wg.Done()
						cl := srv.InProcess()
						defer cl.Close()
						var q DetectRequest
						var resp DetectResponse
						for f := 0; f < framesPerClient; f++ {
							fillFrame(t, &q, userID, uint64(f+1))
							if err := cl.Do(&q, &resp); err != nil {
								t.Errorf("user %d frame %d: %v", userID, f+1, err)
								return
							}
							checkResponse(t, cons, &q, &resp)
						}
					}(uint64(1 + c*31)) // spread users across the shard space
				}
				wg.Wait()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					t.Fatalf("shutdown: %v", err)
				}
				snap := srv.Metrics()
				if want := int64(clients * framesPerClient); snap.Accepted != want || snap.Completed != want {
					t.Fatalf("accepted %d / completed %d, want %d / %d", snap.Accepted, snap.Completed, want, want)
				}
				if snap.RejectedOverload != 0 || snap.RejectedDraining != 0 || snap.RejectedInvalid != 0 || snap.BadFrames != 0 {
					t.Fatalf("unexpected rejections: %+v", snap)
				}
				if snap.InFlight != 0 {
					t.Fatalf("in-flight %d after drain", snap.InFlight)
				}
				if snap.OpCount == (detector.OpCount{}) {
					t.Fatal("metrics did not aggregate detector op counts")
				}
				if snap.AvgActivePEs != float64(e2eNPE) {
					t.Fatalf("AvgActivePEs %g, want %d (plain FlexCore activates all PEs)", snap.AvgActivePEs, e2eNPE)
				}
			})
		}
	}
}

// TestE2EOverTCP runs one client over a real TCP socket — same codec
// and admission path as the in-process pipe, plus the listener.
func TestE2EOverTCP(t *testing.T) {
	cons, err := constellation.New(e2eQAM)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{
		Shards: 2,
		DetectorFactory: func() detector.Detector {
			return core.New(cons, core.Options{NPE: e2eNPE, Backend: envBackend(t)})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	cl, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var q DetectRequest
	var resp DetectResponse
	for f := 0; f < 3; f++ {
		fillFrame(t, &q, 9001, uint64(f+1))
		if err := cl.Do(&q, &resp); err != nil {
			t.Fatalf("frame %d: %v", f+1, err)
		}
		checkResponse(t, cons, &q, &resp)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestE2EPipelinedClient exercises the Send/Recv split: one client
// pipelines all of its frames before reading any response, matching
// responses to requests by FrameID (per-shard completion order need
// not be send order).
func TestE2EPipelinedClient(t *testing.T) {
	cons, err := constellation.New(e2eQAM)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{
		Shards:     4,
		QueueDepth: 64,
		DetectorFactory: func() detector.Detector {
			return core.New(cons, core.Options{NPE: e2eNPE, Backend: envBackend(t)})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := srv.InProcess()
	defer cl.Close()

	const frames = 8
	// One user per frame, so frames fan out across shards and responses
	// can legitimately arrive out of send order.
	done := make(chan error, 1)
	got := make(map[uint64][]uint16, frames)
	go func() {
		var resp DetectResponse
		for i := 0; i < frames; i++ {
			if err := cl.Recv(&resp); err != nil {
				done <- err
				return
			}
			if resp.Status != StatusOK {
				done <- fmt.Errorf("frame %d: status %v", resp.FrameID, resp.Status)
				return
			}
			got[resp.FrameID] = append([]uint16(nil), resp.Decisions...)
		}
		done <- nil
	}()
	var q DetectRequest
	for f := 0; f < frames; f++ {
		fillFrame(t, &q, uint64(100+f), uint64(f+1))
		if err := cl.Send(&q); err != nil {
			t.Fatalf("send %d: %v", f, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for f := 0; f < frames; f++ {
		var q DetectRequest
		fillFrame(t, &q, uint64(100+f), uint64(f+1))
		want := offlineDecisions(t, cons, &q)
		dec, ok := got[uint64(f+1)]
		if !ok {
			t.Fatalf("no response for frame %d", f+1)
		}
		for i, w := range want {
			if int(dec[i]) != w {
				t.Fatalf("frame %d decision %d: served %d, offline %d", f+1, i, dec[i], w)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsSnapshotShape sanity-checks the snapshot fields the
// daemon's /metrics endpoint serves.
func TestMetricsSnapshotShape(t *testing.T) {
	cons, err := constellation.New(e2eQAM)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{
		Shards:          3,
		WorkersPerShard: 2,
		DetectorFactory: func() detector.Detector {
			return core.New(cons, core.Options{NPE: e2eNPE, Backend: envBackend(t)})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := srv.InProcess()
	defer cl.Close()
	var q DetectRequest
	var resp DetectResponse
	fillFrame(t, &q, 5, 1)
	if err := cl.Do(&q, &resp); err != nil {
		t.Fatal(err)
	}
	snap := srv.Metrics()
	if snap.Shards != 3 || len(snap.QueueDepths) != 3 {
		t.Fatalf("shards %d, queue depths %v", snap.Shards, snap.QueueDepths)
	}
	if snap.WorkersPerShard != 2 {
		t.Fatalf("workers_per_shard %d, want 2", snap.WorkersPerShard)
	}
	if len(snap.ShardStats) != 3 {
		t.Fatalf("shard_stats has %d entries, want 3", len(snap.ShardStats))
	}
	var tracked, hwm int
	var hits, misses int64
	for _, st := range snap.ShardStats {
		if st.QueueDepth != 0 {
			t.Fatalf("queue depth %d after completion, want 0", st.QueueDepth)
		}
		tracked += st.TrackedUsers
		hwm += st.QueueHighWatermark
		hits += st.ReuseHits
		misses += st.ReuseMisses
	}
	if tracked != 1 {
		t.Fatalf("tracked users %d across shards, want 1", tracked)
	}
	if hwm != 1 {
		t.Fatalf("queue high-watermark sum %d, want 1 (one frame was admitted)", hwm)
	}
	if hits != 0 || misses != 0 {
		t.Fatalf("reuse counters %d/%d with PathReuse off, want 0/0", hits, misses)
	}
	if snap.Completed != 1 || snap.Accepted != 1 {
		t.Fatalf("accepted %d completed %d, want 1/1", snap.Accepted, snap.Completed)
	}
	var latTotal int64
	for _, b := range snap.Latency {
		latTotal += b.Count
	}
	if latTotal != 1 {
		t.Fatalf("latency histogram holds %d observations, want 1", latTotal)
	}
	if snap.Preprocess.Expanded == 0 {
		t.Fatal("preprocess stats not aggregated")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
