package serve

import (
	"bytes"
	"context"
	"testing"
	"time"

	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
)

// TestServeHotLoopZeroAllocs gates the per-frame serve hot path at 0
// allocs/op in steady state: decode a request into a pooled task, run
// it through process (PrepareAll/Select + DetectBatch, response
// streaming, framing, metrics). Everything on this path is task- or
// shard-owned and reused — the same discipline the core detector's
// alloc gates enforce, extended through the serving layer.
func TestServeHotLoopZeroAllocs(t *testing.T) {
	cons, err := constellation.New(e2eQAM)
	if err != nil {
		t.Fatal(err)
	}
	// The reuse leg runs the same hot path with PathReuse enabled and a
	// per-user ReuseState installed — the serve steady state for a
	// static-channel user, where every subcarrier is a cross-frame
	// cache hit.
	for _, reuse := range []bool{false, true} {
		name := "fresh"
		if reuse {
			name = "reuse"
		}
		t.Run(name, func(t *testing.T) {
			srv, err := NewServer(Config{
				Shards: 1,
				DetectorFactory: func() detector.Detector {
					opts := core.Options{NPE: e2eNPE, Workers: 1, Backend: envBackend(t)}
					if reuse {
						opts.PathReuse = true
					}
					return core.New(cons, opts)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()

			var q DetectRequest
			fillFrame(t, &q, 12, 1)
			payload := q.AppendPayload(nil)

			// Drive process directly: the shard workers sit idle on their
			// queue, so the test owns the detector without racing it.
			w := srv.shards[0].workers[0]
			tk := srv.taskPool.Get().(*task)
			u := &userState{id: 12}
			if reuse {
				tk.user = u
			}
			hot := func() {
				if err := tk.req.Decode(payload); err != nil {
					t.Fatal(err)
				}
				tk.enq = time.Now()
				srv.process(w, tk)
			}
			// Warm-up: first iterations grow the request arenas, the response
			// and wire buffers and the detector's pooled storage to their
			// high-water marks.
			for i := 0; i < 3; i++ {
				hot()
			}
			if allocs := testing.AllocsPerRun(50, hot); allocs != 0 {
				t.Fatalf("serve hot loop allocates %.1f objects per frame, want 0", allocs)
			}
			if reuse {
				if hits := w.det.(*core.FlexCore).PreprocessStats().CacheHits; hits == 0 {
					t.Fatal("reuse leg never hit the per-user cross-frame cache")
				}
			}
			srv.release(tk)
		})
	}
}

// TestReadFrameZeroAllocs gates the ingest side of the wire codec: a
// connection's read loop reuses one buffer, so decoding a stream of
// same-sized frames must not allocate.
func TestReadFrameZeroAllocs(t *testing.T) {
	var q DetectRequest
	fillFrame(t, &q, 4, 1)
	w := AppendFrame(nil, MsgDetect, q.AppendPayload(nil))
	r := bytes.NewReader(w)
	var buf []byte
	var err error
	read := func() {
		r.Reset(w)
		if _, _, buf, err = ReadFrame(r, buf); err != nil {
			t.Fatal(err)
		}
	}
	read()
	if allocs := testing.AllocsPerRun(100, read); allocs != 0 {
		t.Fatalf("ReadFrame allocates %.1f objects per frame, want 0", allocs)
	}
}

// TestWireEncodeZeroAllocs gates the client-side encode path: framing a
// request into reused buffers must not allocate.
func TestWireEncodeZeroAllocs(t *testing.T) {
	var q DetectRequest
	fillFrame(t, &q, 3, 1)
	var payload, wire []byte
	enc := func() {
		payload = q.AppendPayload(payload[:0])
		wire = AppendFrame(wire[:0], MsgDetect, payload)
	}
	enc()
	if allocs := testing.AllocsPerRun(100, enc); allocs != 0 {
		t.Fatalf("encode path allocates %.1f objects per frame, want 0", allocs)
	}
}
