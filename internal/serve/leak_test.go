package serve

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"flexcore/internal/detector"
)

// settleGoroutines waits for the process goroutine count to fall back
// to the baseline, dumping all stacks on timeout. Counting is
// inherently racy (test runner goroutines come and go), so the check
// polls until settled rather than asserting a single snapshot.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines never settled: %d > baseline %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNoGoroutineLeakAfterShutdown pins the server's lifecycle
// contract dynamically (the waitdiscipline analyzer pins it
// statically): after traffic over both TCP and the in-process pipe,
// Shutdown joins every goroutine the server started — shard workers,
// connection readers, the accept loop — and none outlive the drain.
func TestNoGoroutineLeakAfterShutdown(t *testing.T) {
	slow := newSlowDetector()
	close(slow.gate)
	base := runtime.NumGoroutine()

	srv, err := NewServer(Config{Shards: 2, WorkersPerShard: 2, DetectorFactory: func() detector.Detector { return slow }})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	tcpCl, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tcpCl.SetIOTimeout(5 * time.Second)
	pipeCl := srv.InProcess()

	var q DetectRequest
	var resp DetectResponse
	for i := uint64(1); i <= 4; i++ {
		tinyFrame(t, &q, i)
		if err := tcpCl.Do(&q, &resp); err != nil || resp.Status != StatusOK {
			t.Fatalf("tcp frame %d: status %v err %v", i, resp.Status, err)
		}
		tinyFrame(t, &q, i)
		if err := pipeCl.Do(&q, &resp); err != nil || resp.Status != StatusOK {
			t.Fatalf("pipe frame %d: status %v err %v", i, resp.Status, err)
		}
	}

	tcpCl.Close()
	pipeCl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	settleGoroutines(t, base)
}

// TestNoGoroutineLeakAfterChaos runs fault-injected traffic — partial
// writes, short reads, stutter, and a mid-stream connection reset —
// and checks the drain still joins everything: a condemned or reset
// connection must wind down its goroutines exactly like a polite one.
func TestNoGoroutineLeakAfterChaos(t *testing.T) {
	slow := newSlowDetector()
	close(slow.gate)
	base := runtime.NumGoroutine()

	srv, err := NewServer(Config{
		Shards:          1,
		DetectorFactory: func() detector.Detector { return slow },
		ReadTimeout:     2 * time.Second,
		WriteTimeout:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	// Lossless faults: the stream is reshaped but intact, so the
	// exchange completes.
	cl := faultDial(t, lis.Addr().String(), FaultPlan{Seed: 5, MaxWriteChunk: 7, MaxReadChunk: 5, StutterEvery: 3, Stutter: time.Millisecond})
	cl.SetIOTimeout(5 * time.Second)
	var q DetectRequest
	var resp DetectResponse
	tinyFrame(t, &q, 1)
	if err := cl.Do(&q, &resp); err != nil || resp.Status != StatusOK {
		t.Fatalf("faulty exchange: status %v err %v", resp.Status, err)
	}
	cl.Close()

	// Mid-stream reset: the conn dies partway through a request write;
	// the server's reader must wind the connection down, not linger.
	reset := faultDial(t, lis.Addr().String(), FaultPlan{Seed: 9, ResetAfter: 30})
	reset.SetIOTimeout(time.Second)
	tinyFrame(t, &q, 2)
	if err := reset.Do(&q, &resp); err == nil {
		t.Fatal("exchange over a reset connection returned success")
	}
	reset.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	settleGoroutines(t, base)
}
