package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"flexcore/internal/cmatrix"
	"flexcore/internal/detector"
)

// slowDetector is a stub detector whose Detect blocks until its gate is
// closed — it turns the overload test's timing into explicit
// synchronisation. started is signalled (non-blocking) at every Detect
// entry, marking the moment the shard worker has dequeued a frame.
type slowDetector struct {
	nt      int
	started chan struct{}
	gate    chan struct{}
	dec     []int
	calls   atomic.Int64 // Detect invocations — deadline tests assert expired frames never reach the detector
}

func newSlowDetector() *slowDetector {
	return &slowDetector{
		started: make(chan struct{}, 64),
		gate:    make(chan struct{}),
		dec:     make([]int, MaxAntennas),
	}
}

func (d *slowDetector) Name() string { return "slow-stub" }

func (d *slowDetector) Prepare(h *cmatrix.Matrix, sigma2 float64) error {
	d.nt = h.Cols
	return nil
}

func (d *slowDetector) Detect(y []complex128) []int {
	d.calls.Add(1)
	select {
	case d.started <- struct{}{}:
	default:
	}
	<-d.gate
	return d.dec[:d.nt]
}

func (d *slowDetector) OpCount() detector.OpCount { return detector.OpCount{} }

// tinyFrame fills q with the smallest legal frame for the stub tests.
func tinyFrame(t testing.TB, q *DetectRequest, frameID uint64) {
	t.Helper()
	q.UserID, q.FrameID, q.Sigma2 = 1, frameID, 1
	if err := q.SetGeometry(1, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	q.hdata[0], q.ydata[0] = 1, 1
}

// recvAll drains responses on its own goroutine — net.Pipe writes are
// synchronous, so the server's rejection writes would deadlock against
// a client that only sends — and delivers (FrameID, Status) pairs.
type respRec struct {
	frameID uint64
	status  Status
}

func recvAll(cl *Client) <-chan respRec {
	out := make(chan respRec, 64)
	go func() {
		defer close(out)
		var resp DetectResponse
		for {
			if err := cl.Recv(&resp); err != nil {
				return
			}
			out <- respRec{resp.FrameID, resp.Status}
		}
	}()
	return out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadRejectsExplicitly drives one shard with a blocked
// detector past its queue capacity: every frame beyond the backlog must
// be answered with StatusOverloaded immediately (backpressure as a
// response code, never a stalled connection or a silent drop), memory
// stays bounded by the queue depth, shutdown rejects new work with
// StatusDraining, and every admitted frame still completes on drain.
func TestOverloadRejectsExplicitly(t *testing.T) {
	const depth = 4
	slow := newSlowDetector()
	srv, err := NewServer(Config{
		Shards:          1,
		QueueDepth:      depth,
		DetectorFactory: func() detector.Detector { return slow },
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := srv.InProcess()
	defer cl.Close()
	responses := recvAll(cl)

	var q DetectRequest
	send := func(frameID uint64) {
		tinyFrame(t, &q, frameID)
		if err := cl.Send(&q); err != nil {
			t.Fatalf("send %d: %v", frameID, err)
		}
	}

	// Frame 1 occupies the worker (wait until it is dequeued), frames
	// 2..5 fill the admission queue.
	send(1)
	<-slow.started
	for id := uint64(2); id <= depth+1; id++ {
		send(id)
	}
	waitFor(t, "backlog admission", func() bool { return srv.Metrics().Accepted == depth+1 })

	// Frames 6..10 arrive at a full queue: five explicit overload
	// rejections, answered while the detector is still blocked.
	const extra = 5
	for id := uint64(depth + 2); id <= depth+1+extra; id++ {
		send(id)
	}
	overloaded := 0
	for overloaded < extra {
		r, ok := <-responses
		if !ok {
			t.Fatal("connection died while collecting overload rejections")
		}
		if r.status != StatusOverloaded {
			t.Fatalf("frame %d: status %v, want overloaded", r.frameID, r.status)
		}
		overloaded++
	}
	snap := srv.Metrics()
	if snap.RejectedOverload != extra {
		t.Fatalf("rejected_overload %d, want %d", snap.RejectedOverload, extra)
	}
	if snap.QueueDepths[0] > depth {
		t.Fatalf("queue depth %d exceeds capacity %d — memory is unbounded", snap.QueueDepths[0], depth)
	}

	// Begin shutdown: the backlog keeps draining, new work is rejected
	// with StatusDraining.
	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	waitFor(t, "draining flag", srv.Draining)
	send(11)
	r, ok := <-responses
	if !ok {
		t.Fatal("connection died before the draining rejection")
	}
	if r.status != StatusDraining {
		t.Fatalf("frame 11 during drain: status %v, want draining", r.status)
	}

	// Release the detector: the admitted backlog (frames 1..5) completes
	// and responds before the server closes the connection.
	close(slow.gate)
	completed := map[uint64]bool{}
	for len(completed) < depth+1 {
		r, ok := <-responses
		if !ok {
			t.Fatalf("connection closed with only %d/%d completions delivered", len(completed), depth+1)
		}
		if r.status != StatusOK {
			t.Fatalf("frame %d: status %v, want ok", r.frameID, r.status)
		}
		completed[r.frameID] = true
	}
	for id := uint64(1); id <= depth+1; id++ {
		if !completed[id] {
			t.Fatalf("admitted frame %d never completed — work was dropped silently", id)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	snap = srv.Metrics()
	if snap.Accepted != depth+1 || snap.Completed != depth+1 {
		t.Fatalf("accepted %d completed %d, want %d/%d", snap.Accepted, snap.Completed, depth+1, depth+1)
	}
	if snap.RejectedOverload != extra || snap.RejectedDraining != 1 {
		t.Fatalf("rejections %d overload / %d draining, want %d/1", snap.RejectedOverload, snap.RejectedDraining, extra)
	}
	// Every frame sent got exactly one response: 5 OK + 5 overloaded +
	// 1 draining — nothing vanished.
	if got := snap.Completed + snap.RejectedOverload + snap.RejectedDraining; got != 11 {
		t.Fatalf("%d responses accounted for, want 11", got)
	}
}

// TestInvalidPayloadKeepsConnection drives raw bytes over TCP: a
// well-framed but malformed payload is answered with StatusInvalid and
// the connection survives; a corrupted frame (CRC mismatch) is
// unrecoverable and closes it.
func TestInvalidPayloadKeepsConnection(t *testing.T) {
	slow := newSlowDetector()
	close(slow.gate) // instant detection
	srv, err := NewServer(Config{Shards: 1, DetectorFactory: func() detector.Detector { return slow }})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A syntactically valid frame around a garbage payload: explicit
	// StatusInvalid, connection stays usable.
	if _, err := conn.Write(AppendFrame(nil, MsgDetect, []byte("not a request"))); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	var resp DetectResponse
	typ, payload, buf, err := ReadFrame(conn, buf)
	if err != nil || typ != MsgResult {
		t.Fatalf("typ %d err %v", typ, err)
	}
	if err := resp.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusInvalid {
		t.Fatalf("garbage payload answered %v, want invalid", resp.Status)
	}

	// The same connection still serves a valid request.
	var q DetectRequest
	tinyFrame(t, &q, 77)
	if _, err := conn.Write(AppendFrame(nil, MsgDetect, q.AppendPayload(nil))); err != nil {
		t.Fatal(err)
	}
	typ, payload, buf, err = ReadFrame(conn, buf)
	if err != nil || typ != MsgResult {
		t.Fatalf("typ %d err %v", typ, err)
	}
	if err := resp.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || resp.FrameID != 77 {
		t.Fatalf("valid frame after invalid payload: status %v frame %d", resp.Status, resp.FrameID)
	}

	// A corrupted frame kills the connection: framing cannot be
	// resynchronised.
	bad := AppendFrame(nil, MsgDetect, q.AppendPayload(nil))
	bad[len(bad)-1] ^= 0xff
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err = ReadFrame(conn, buf); err == nil {
		t.Fatal("read succeeded after a corrupted frame — the server must close the connection")
	}
	waitFor(t, "bad-frame counter", func() bool { return srv.Metrics().BadFrames == 1 })

	// A client sending the wrong message type is also cut off.
	conn2, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(AppendFrame(nil, MsgResult, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("read after wrong-type frame: %v, want EOF", err)
	}

	snap := srv.Metrics()
	if snap.RejectedInvalid != 1 || snap.BadFrames != 2 {
		t.Fatalf("rejected_invalid %d bad_frames %d, want 1 and 2", snap.RejectedInvalid, snap.BadFrames)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestShutdownExpiredContext pins the timeout path: a drain that cannot
// finish (detector permanently blocked) returns the context error
// instead of hanging.
func TestShutdownExpiredContext(t *testing.T) {
	slow := newSlowDetector()
	srv, err := NewServer(Config{Shards: 1, QueueDepth: 2, DetectorFactory: func() detector.Detector { return slow }})
	if err != nil {
		t.Fatal(err)
	}
	cl := srv.InProcess()
	defer cl.Close()
	responses := recvAll(cl)
	var q DetectRequest
	tinyFrame(t, &q, 1)
	if err := cl.Send(&q); err != nil {
		t.Fatal(err)
	}
	<-slow.started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown with a stuck worker returned %v, want deadline exceeded", err)
	}
	// Unstick the worker so the test leaves no goroutine behind.
	close(slow.gate)
	for range responses {
	}
}

// TestInProcessAfterShutdown: a client obtained once draining has begun
// gets a dead connection, not a hang.
func TestInProcessAfterShutdown(t *testing.T) {
	slow := newSlowDetector()
	close(slow.gate)
	srv, err := NewServer(Config{Shards: 1, DetectorFactory: func() detector.Detector { return slow }})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cl := srv.InProcess()
	defer cl.Close()
	var q DetectRequest
	tinyFrame(t, &q, 1)
	if err := cl.Send(&q); err == nil {
		var resp DetectResponse
		if err := cl.Recv(&resp); err == nil {
			t.Fatal("request served after shutdown")
		}
	}
}

// TestShutdownOpenConnNotBadFrame: a connection left open across
// Shutdown is unblocked by the server's own force-close — the resulting
// read error must not be counted as a peer framing fault. (Regression:
// the reader raced Shutdown's force-close even after a clean client
// close, inflating BadFrames by one per connection.)
func TestShutdownOpenConnNotBadFrame(t *testing.T) {
	slow := newSlowDetector()
	close(slow.gate)
	srv, err := NewServer(Config{Shards: 1, DetectorFactory: func() detector.Detector { return slow }})
	if err != nil {
		t.Fatal(err)
	}
	cl := srv.InProcess()
	defer cl.Close()
	var q DetectRequest
	tinyFrame(t, &q, 1)
	var resp DetectResponse
	if err := cl.Do(&q, &resp); err != nil {
		t.Fatal(err)
	}
	// The client stays open: the server's conn reader is parked in
	// ReadFrame when Shutdown force-closes it.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if snap := srv.Metrics(); snap.BadFrames != 0 {
		t.Fatalf("shutdown force-close counted %d bad frames, want 0", snap.BadFrames)
	}
}
