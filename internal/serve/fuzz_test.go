package serve

import (
	"bytes"
	"testing"
)

// FuzzFrameCodec hammers the full decode stack — wire framing, request
// payload, response payload — with arbitrary bytes. Invariants:
//
//   - nothing panics, whatever the input;
//   - a frame DecodeFrame accepts re-encodes canonically: AppendFrame
//     over the decoded (type, payload) reproduces the consumed prefix
//     byte for byte;
//   - a payload DetectRequest.Decode accepts round-trips through
//     AppendPayload to the identical bytes (the codec is bijective on
//     valid payloads), and likewise for DetectResponse.
func FuzzFrameCodec(f *testing.F) {
	// Seed the generated corpus (testdata/fuzz/FuzzFrameCodec) with the
	// structural edges: valid frames of both types, every header
	// corruption class, and valid-frame/garbage-payload combinations.
	var q DetectRequest
	q.UserID, q.FrameID, q.Sigma2 = 3, 9, 0.5
	if err := q.SetGeometry(2, 2, 1, 1); err != nil {
		f.Fatal(err)
	}
	reqPayload := q.AppendPayload(nil)
	q.DeadlineMicros = 2500
	reqDeadline := q.AppendPayload(nil)
	resp := DetectResponse{FrameID: 9, Status: StatusOK, Nt: 2, Subcarriers: 1, Symbols: 1, Decisions: []uint16{1, 2}}
	respPayload := resp.AppendPayload(nil)
	resp.ServedNPE = 32
	respDegraded := resp.AppendPayload(nil)

	seeds := [][]byte{
		{},
		AppendFrame(nil, MsgDetect, nil),
		AppendFrame(nil, MsgDetect, reqPayload),
		AppendFrame(nil, MsgDetect, reqDeadline),
		AppendFrame(nil, MsgResult, respPayload),
		AppendFrame(nil, MsgResult, respDegraded),
		AppendFrame(nil, MsgResult, appendRespHeader(nil, 9, StatusOverloaded, 0, 0, 0, 0)),
		AppendFrame(nil, MsgResult, appendRespHeader(nil, 9, StatusExpired, 0, 0, 0, 0)),
		AppendFrame(nil, MsgDetect, []byte("garbage payload")),
		append(AppendFrame(nil, MsgDetect, reqPayload), AppendFrame(nil, MsgResult, respPayload)...),
	}
	valid := AppendFrame(nil, MsgDetect, reqDeadline)
	// Corruption classes: magic, type, reserved, length, CRC, payload —
	// plus the deadline field (payload offset 32) and the response
	// served-N_PE field, so the fuzzer starts on both v2 additions.
	for _, i := range []int{0, 4, 5, 8, 12, headerSize, headerSize + 32} {
		c := append([]byte(nil), valid...)
		c[i] ^= 0xff
		seeds = append(seeds, c)
	}
	degFrame := AppendFrame(nil, MsgResult, respDegraded)
	for _, i := range []int{headerSize + 16, headerSize + 19} {
		c := append([]byte(nil), degFrame...)
		c[i] ^= 0xff
		seeds = append(seeds, c)
	}
	seeds = append(seeds, valid[:headerSize-2], valid[:len(valid)-3])
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, rest, err := DecodeFrame(data)
		if err != nil {
			return
		}
		consumed := data[:len(data)-len(rest)]
		if re := AppendFrame(nil, typ, payload); !bytes.Equal(re, consumed) {
			t.Fatalf("re-encoding a decoded frame produced different bytes (%d vs %d)", len(re), len(consumed))
		}
		var req DetectRequest
		if req.Decode(payload) == nil {
			if !bytes.Equal(req.AppendPayload(nil), payload) {
				t.Fatal("request payload round-trip mismatch")
			}
		}
		var resp DetectResponse
		if resp.Decode(payload) == nil {
			if !bytes.Equal(resp.AppendPayload(nil), payload) {
				t.Fatal("response payload round-trip mismatch")
			}
		}
	})
}
