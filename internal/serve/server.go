package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/phy"
)

// Config configures a Server.
type Config struct {
	// Shards is the number of independent detection shards. Consistent
	// user→shard routing (shardIndex) pins every frame of one user to
	// one shard, so per-user state — FIFO sequencing and the Prepare
	// reuse cache — never crosses shards. Default 1.
	Shards int
	// WorkersPerShard is the number of worker goroutines per shard, each
	// owning its own detector/FrameDetector from the factory, so a
	// shard's throughput scales with cores. Frames of one user are still
	// dispatched and completed in arrival order: a user's next frame is
	// handed to a worker only after its previous frame has responded
	// (user-keyed sequencing on the shared shard queue), which also
	// serialises access to the user's cross-frame reuse state. Default 1.
	WorkersPerShard int
	// QueueDepth bounds each shard's admitted-but-not-yet-processing
	// backlog. A frame arriving at a full shard is rejected immediately
	// with StatusOverloaded — explicit backpressure, bounded memory.
	// Default 64.
	QueueDepth int
	// UserStateCap bounds each shard's table of per-user states (FIFO
	// sequencing + cross-frame Prepare-reuse bases). Past the cap the
	// oldest idle user is evicted and its reuse bases reset; users with
	// frames in flight are never evicted, so the table can transiently
	// exceed the cap by the in-flight user count. Default 1024.
	UserStateCap int
	// DetectorFactory builds one detector per worker (detectors are
	// stateful across Prepare/Detect, so workers cannot share one).
	// Required. Factory-created detectors are closed on Shutdown when
	// they expose a Close method. With core.Options.PathReuse enabled,
	// the server keys the coherence cache per user across frames; at
	// ReuseThreshold 0 this is provably output-neutral (DESIGN.md §13).
	DetectorFactory func() detector.Detector
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.UserStateCap <= 0 {
		c.UserStateCap = 1024
	}
	return c
}

// task is one admitted detection request in flight: the decoded
// request, the connection to answer on, and every buffer the
// ingest→detect→respond path needs. Tasks are pooled and fully
// reused, so the steady-state serve loop allocates nothing.
type task struct {
	req     DetectRequest
	c       *serverConn
	user    *userState
	enq     time.Time // admit timestamp (latency metric only)
	payload []byte    // response payload scratch
	wire    []byte    // framed response scratch

	// burst/emit are the frame-detection callbacks, bound once at task
	// construction so the hot loop passes pre-built funcs (no per-frame
	// closure allocation).
	burst func(k int) [][]complex128
	emit  func(k int, decisions [][]int)
}

// userState is one user's serve-side state on its home shard: the FIFO
// sequencing slot (busy + pending backlog) and the cross-frame Prepare
// reuse bases. It is accessed under the shard mutex, except reuse,
// which is touched only by the worker currently processing the user's
// frame — the busy flag guarantees there is at most one, and the
// mutex/channel handoff between frames orders the accesses.
type userState struct {
	id      uint64
	busy    bool    // a worker is processing (or holds) this user's frame
	pending []*task // admitted frames waiting for the one in flight
	reuse   core.ReuseState
}

// shard is one detection lane: a user-sequenced admission stage feeding
// a runnable queue drained by WorkersPerShard workers.
type shard struct {
	// runnable carries the head frame of each user's chain to the
	// workers. Capacity QueueDepth: every queued task is counted in
	// waiting, and admission caps waiting at QueueDepth, so sends under
	// the admission path never block.
	runnable chan *task
	workers  []*shardWorker

	// mu guards the sequencing state below.
	mu      sync.Mutex
	users   map[uint64]*userState
	order   []uint64     // user insertion order (FIFO eviction scan)
	free    []*userState // evicted states recycled for new users
	waiting int          // admitted frames not yet processing
	waitHWM int          // high-watermark of waiting since start
}

// shardWorker is one worker goroutine's state: its own detector and
// FrameDetector (detectors are stateful), the write-coalescing dirty
// list, and the op counters it publishes after every frame.
type shardWorker struct {
	det     detector.Detector
	fd      *phy.FrameDetector
	reuseOK bool // detector supports external reuse keying

	// dirty lists the connections holding buffered responses this worker
	// has not flushed yet. Flushed before the worker blocks on an empty
	// runnable queue — coalescing consecutive responses per connection
	// into one write while the shard is busy, without ever parking a
	// response behind an idle queue.
	dirty []*serverConn

	// mu publishes the detector's op counters to Metrics (the worker
	// writes them after every frame; Snapshot reads them).
	mu        sync.Mutex
	ops       detector.OpCount
	pre       core.PreprocessStats
	activeSum float64
	activeN   int64
}

// preprocessReporter is implemented by detectors exposing
// pre-processing counters (FlexCore).
type preprocessReporter interface {
	PreprocessStats() core.PreprocessStats
}

// Server is the sharded, backpressured detection service. Build one
// with NewServer, feed it connections via Serve/ListenAndServe (TCP)
// or InProcess (tests), and stop it with Shutdown.
type Server struct {
	cfg    Config
	shards []*shard
	met    metrics

	taskPool sync.Pool

	// drainMu orders admission against shutdown: admitters hold the
	// read side while checking draining and enqueueing; Shutdown flips
	// draining under the write side, after which no admitter can be
	// mid-enqueue — closing the shard queues is then race-free.
	drainMu  sync.RWMutex
	draining bool

	workerWG sync.WaitGroup
	connWG   sync.WaitGroup

	connMu sync.Mutex
	conns  map[io.Closer]struct{}
	lis    net.Listener

	closed atomic.Bool
}

// NewServer builds the shards, starts their workers and returns a
// server ready to accept connections.
func NewServer(cfg Config) (*Server, error) {
	if cfg.DetectorFactory == nil {
		return nil, fmt.Errorf("serve: Config.DetectorFactory is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		met:   metrics{start: time.Now()}, //lint:ignore determinism wall-clock observability only — detection results never depend on it
		conns: make(map[io.Closer]struct{}),
	}
	s.taskPool.New = func() any {
		t := &task{}
		t.burst = t.req.Burst
		t.emit = func(k int, decisions [][]int) {
			t.payload = appendDecisions(t.payload, decisions)
		}
		return t
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh := &shard{
			runnable: make(chan *task, cfg.QueueDepth),
			workers:  make([]*shardWorker, cfg.WorkersPerShard),
			users:    make(map[uint64]*userState),
		}
		for j := range sh.workers {
			det := cfg.DetectorFactory()
			w := &shardWorker{det: det, fd: phy.NewFrameDetector(det)}
			w.reuseOK = w.fd.SetReuseState(nil)
			sh.workers[j] = w
			s.workerWG.Add(1)
			go s.runWorker(sh, w)
		}
		s.shards[i] = sh
	}
	return s, nil
}

// shardIndex maps a user ID to its shard: a SplitMix64 finalizer
// reduced modulo the shard count — uniform, stable across restarts
// and independent of Go's per-process map hashing, so routing is
// consistent for every server instance.
//
//flexcore:noalloc
func shardIndex(userID uint64, shards int) int {
	z := userID + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}

// runWorker drains one shard's runnable queue until it is closed by
// Shutdown, then flushes its buffered responses and releases its
// detector. Each runnable task is the head of one user's chain: after
// responding, the worker takes the user's next pending frame directly
// (completeUser), so one user's frames are processed back-to-back by
// one worker in arrival order — per-user FIFO, serialized reuse state —
// while different users' chains run on all workers in parallel.
func (s *Server) runWorker(sh *shard, w *shardWorker) {
	defer s.workerWG.Done()
	for {
		t := s.nextTask(sh, w)
		if t == nil {
			break
		}
		for t != nil {
			s.begin(sh)
			s.process(w, t)
			s.buffer(w, t)
			t = s.completeUser(sh, t)
		}
	}
	s.flushDirty(w)
	if c, ok := w.det.(interface{ Close() }); ok {
		c.Close()
	}
}

// nextTask returns the next runnable chain head, or nil once the queue
// is closed and drained. Before blocking on an empty queue it flushes
// the worker's buffered responses — the coalescing contract: responses
// may ride in one write with their successors while work is queued, but
// never wait behind an idle queue.
func (s *Server) nextTask(sh *shard, w *shardWorker) *task {
	select {
	case t, ok := <-sh.runnable:
		if !ok {
			return nil
		}
		return t
	default:
	}
	s.flushDirty(w)
	t, ok := <-sh.runnable
	if !ok {
		return nil
	}
	return t
}

// begin moves one frame from the admitted backlog into processing.
//
//flexcore:noalloc
func (s *Server) begin(sh *shard) {
	sh.mu.Lock()
	sh.waiting--
	sh.mu.Unlock()
}

// process runs the ingest→detect→respond hot path for one admitted
// task: install the user's cross-frame reuse bases, detect every
// subcarrier burst through the worker's FrameDetector, streaming the
// decisions straight into the response payload, frame it, publish the
// worker's op counters and record the latency. Everything it touches is
// task-, user- or worker-owned and reused — the AllocsPerRun gate
// (alloc_test.go) pins this path at 0 allocs/op in steady state.
//
//flexcore:noalloc
func (s *Server) process(w *shardWorker, t *task) {
	q := &t.req
	if w.reuseOK && t.user != nil {
		w.fd.SetReuseState(&t.user.reuse)
	}
	t.payload = appendRespHeader(t.payload[:0], q.FrameID, StatusOK, q.Nt, q.Subcarriers, q.Symbols)
	if err := w.fd.DetectFrame(q.H(), q.Sigma2, t.burst, t.emit); err != nil {
		// Geometry was validated at decode time, so detector errors are
		// unexpected — answer them as an explicit rejection, never a
		// silent drop.
		t.payload = appendRespHeader(t.payload[:0], q.FrameID, StatusInvalid, 0, 0, 0)
		s.met.rejectedInvalid.Add(1)
	}
	if w.reuseOK {
		w.fd.SetReuseState(nil)
	}
	t.wire = AppendFrame(t.wire[:0], MsgResult, t.payload)
	s.publish(w)
	s.met.observe(time.Since(t.enq)) //lint:ignore determinism wall-clock latency metric only — decisions are already encoded at this point
	s.met.completed.Add(1)
}

// buffer queues t's framed response on its connection's buffered writer
// and marks the connection dirty for the next flush. The bufio writer
// auto-flushes when full, so a backlog burst still drains with bounded
// buffering; write errors surface here (sticky) or at flush.
//
//flexcore:noalloc
func (s *Server) buffer(w *shardWorker, t *task) {
	c := t.c
	c.mu.Lock()
	_, err := c.bw.Write(t.wire)
	c.mu.Unlock()
	if err != nil {
		s.met.writeErrors.Add(1)
		return
	}
	w.dirty = append(w.dirty, c) //lint:ignore noalloc amortised: the dirty list reuses its high-water capacity across flush cycles
}

// flushDirty flushes every connection this worker buffered responses on
// since the last flush. Duplicate entries are harmless: flushing an
// empty bufio writer is a no-op.
func (s *Server) flushDirty(w *shardWorker) {
	for i, c := range w.dirty {
		c.mu.Lock()
		err := c.bw.Flush()
		c.mu.Unlock()
		if err != nil {
			s.met.writeErrors.Add(1)
		}
		w.dirty[i] = nil
	}
	w.dirty = w.dirty[:0]
}

// completeUser finishes t's slot in its user's FIFO chain: it releases
// the task and returns the user's next pending frame for this worker to
// process, or marks the user idle. Handing the successor to the same
// worker (never back through runnable) is what makes per-user ordering
// a structural property: at most one worker ever holds a given user's
// frame, and it processes them in arrival order.
//
//flexcore:noalloc
func (s *Server) completeUser(sh *shard, t *task) *task {
	u := t.user
	s.release(t)
	if u == nil {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n := len(u.pending); n > 0 {
		next := u.pending[0]
		copy(u.pending, u.pending[1:])
		u.pending[n-1] = nil
		u.pending = u.pending[:n-1]
		return next
	}
	u.busy = false
	return nil
}

// publish copies the worker detector's cumulative counters under the
// worker's metrics lock.
//
//flexcore:noalloc
func (s *Server) publish(w *shardWorker) {
	ops := w.det.OpCount()
	var pre core.PreprocessStats
	if pr, ok := w.det.(preprocessReporter); ok {
		pre = pr.PreprocessStats()
	}
	activeSum, activeN := w.fd.ActivePEs()
	w.mu.Lock()
	w.ops = ops
	w.pre = pre
	w.activeSum, w.activeN = activeSum, activeN
	w.mu.Unlock()
}

// release returns a task to the pool.
//
//flexcore:noalloc
func (s *Server) release(t *task) {
	t.c = nil
	t.user = nil
	s.taskPool.Put(t) //lint:ignore noalloc t is already a pointer — Put's any parameter boxes no value
}

// userFor returns the shard's state for user id, creating (and, at the
// cap, evicting the oldest idle user to recycle) as needed. Called
// under sh.mu; the new-user path may allocate, which is why it sits
// outside the noalloc-annotated admit — in steady state the user table
// is warm and this is one map lookup.
func (sh *shard) userFor(id uint64, capacity int) *userState {
	if u, ok := sh.users[id]; ok {
		return u
	}
	if len(sh.users) >= capacity {
		sh.evictIdle()
	}
	var u *userState
	if n := len(sh.free); n > 0 {
		u = sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
	} else {
		u = &userState{}
	}
	u.id = id
	u.busy = false
	u.pending = u.pending[:0]
	sh.users[id] = u
	sh.order = append(sh.order, id)
	return u
}

// evictIdle drops the longest-tracked user with no frames in flight,
// resetting its reuse bases and recycling its storage. The scan walks
// the insertion-order slice (never the map: iteration order must not
// influence behaviour); if every tracked user is busy nothing is
// evicted and the table transiently overshoots the cap.
func (sh *shard) evictIdle() {
	for i, id := range sh.order {
		u := sh.users[id]
		if u.busy {
			continue
		}
		delete(sh.users, id)
		u.reuse.Reset()
		sh.free = append(sh.free, u)
		copy(sh.order[i:], sh.order[i+1:])
		sh.order = sh.order[:len(sh.order)-1]
		return
	}
}

// admit routes a decoded request into its shard's user-sequenced
// backlog, or rejects it explicitly: StatusDraining once shutdown has
// begun, StatusOverloaded when the shard's admitted backlog is full.
// Admission never blocks — backpressure is a response code, not a
// stalled connection. If the user is idle the frame becomes a runnable
// chain head; if a worker already holds the user's previous frame it
// joins the user's pending FIFO instead, preserving arrival order.
//
//flexcore:noalloc
func (s *Server) admit(t *task) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		s.met.rejectedDraining.Add(1)
		t.c.reject(s, t.req.FrameID, StatusDraining)
		s.release(t)
		return
	}
	sh := s.shards[shardIndex(t.req.UserID, len(s.shards))]
	sh.mu.Lock()
	if sh.waiting >= s.cfg.QueueDepth {
		sh.mu.Unlock()
		s.met.rejectedOverload.Add(1)
		t.c.reject(s, t.req.FrameID, StatusOverloaded)
		s.release(t)
		return
	}
	sh.waiting++
	if sh.waiting > sh.waitHWM {
		sh.waitHWM = sh.waiting
	}
	u := sh.userFor(t.req.UserID, s.cfg.UserStateCap)
	t.user = u
	if u.busy {
		u.pending = append(u.pending, t) //lint:ignore noalloc amortised: the pending arena reuses its high-water capacity across a user's bursts
		sh.mu.Unlock()
		s.met.accepted.Add(1)
		return
	}
	u.busy = true
	sh.mu.Unlock()
	s.met.accepted.Add(1)
	// Never blocks: every task in runnable is counted in waiting, and
	// waiting ≤ QueueDepth = cap(runnable) was just enforced above.
	sh.runnable <- t
}

// Connection I/O buffer sizes. The write buffer is sized for a burst of
// small responses (the dominant shape: a 5×4, 6-subcarrier frame's
// response is ~160 bytes) so coalesced flushing turns a backlog drain
// into a handful of syscalls; larger responses auto-flush through bufio
// in connWriteBuf-sized writes, which keeps per-connection memory
// bounded under load.
const (
	connReadBuf  = 64 << 10
	connWriteBuf = 64 << 10
)

// serverConn is one client connection: a buffered reader owned by the
// connection goroutine and a mutex-serialised buffered writer shared
// by the shard workers responding on it.
type serverConn struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader

	mu sync.Mutex
	bw *bufio.Writer

	// rejection scratch, touched only by the connection goroutine.
	rejPayload []byte
	rejWire    []byte
}

// write frames one response onto the connection and flushes immediately
// (the rejection path: a rejected frame must never wait for detection
// work to coalesce with).
func (c *serverConn) write(frame []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.bw.Write(frame); err != nil {
		return err
	}
	return c.bw.Flush()
}

// reject answers a request with a bare status response.
//
//flexcore:noalloc
func (c *serverConn) reject(s *Server, frameID uint64, st Status) {
	c.rejPayload = appendRespHeader(c.rejPayload[:0], frameID, st, 0, 0, 0)
	c.rejWire = AppendFrame(c.rejWire[:0], MsgResult, c.rejPayload)
	if err := c.write(c.rejWire); err != nil {
		s.met.writeErrors.Add(1)
	}
}

// handleConn runs one connection's ingest loop: read a frame, decode
// it into a pooled task, admit it. Payload-level errors are answered
// with StatusInvalid and the connection survives; framing errors are
// unrecoverable and close it.
func (s *Server) handleConn(rwc io.ReadWriteCloser) {
	defer s.connWG.Done()
	defer rwc.Close()
	defer s.untrackConn(rwc)
	c := &serverConn{rwc: rwc, br: bufio.NewReaderSize(rwc, connReadBuf), bw: bufio.NewWriterSize(rwc, connWriteBuf)}
	var buf []byte
	for {
		typ, payload, nbuf, err := ReadFrame(c.br, buf)
		buf = nbuf
		if err != nil {
			// A non-EOF error after Shutdown's force-close phase is the
			// server unblocking its own reader (the peer's FIN may still
			// be in flight when the fd closes locally), not a peer
			// framing fault — only count bad frames while the connection
			// table is live.
			if err != io.EOF && !s.forceClosed() {
				s.met.badFrames.Add(1)
			}
			return
		}
		if typ != MsgDetect {
			s.met.badFrames.Add(1)
			return
		}
		t := s.taskPool.Get().(*task) //lint:ignore pooldiscipline ownership transfers through the shard's sequencing state — the shard worker (or the rejection path in admit) releases the task after responding
		if err := t.req.Decode(payload); err != nil {
			s.met.rejectedInvalid.Add(1)
			c.reject(s, peekFrameID(payload), StatusInvalid)
			s.release(t)
			continue
		}
		t.c = c
		t.enq = time.Now() //lint:ignore determinism admit timestamp feeds the latency histogram only — detection results never depend on it
		s.admit(t)
	}
}

// trackConn registers a live connection (for forced close at the end
// of Shutdown) and reports whether the server still accepts it.
func (s *Server) trackConn(c io.Closer) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.conns == nil {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

// untrackConn removes a closed connection.
// forceClosed reports whether Shutdown has entered its force-close
// phase (the connection table is retired before the conns are closed,
// so any read error surfacing afterwards is server-initiated).
func (s *Server) forceClosed() bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.conns == nil
}

func (s *Server) untrackConn(c io.Closer) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// startConn registers rwc and spawns its handler unless shutdown has
// begun (the drainMu read lock orders the connWG.Add against
// Shutdown's Wait).
func (s *Server) startConn(rwc io.ReadWriteCloser) bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining || !s.trackConn(rwc) {
		rwc.Close()
		return false
	}
	s.connWG.Add(1)
	go s.handleConn(rwc)
	return true
}

// Serve accepts connections on lis until Shutdown closes it. TCP
// connections get TCP_NODELAY set explicitly: response batching is the
// server's decision (buffered writers + coalesced flushing), not the
// kernel's — Nagle would add delayed-ACK latency on top of flushes the
// server already sized. It returns nil after a graceful shutdown, or
// the first accept error.
func (s *Server) Serve(lis net.Listener) error {
	s.connMu.Lock()
	s.lis = lis
	s.connMu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		s.startConn(conn)
	}
}

// ListenAndServe listens on the TCP address and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// InProcess returns a Client connected to the server through an
// in-memory synchronous pipe — the same codec, connection handling and
// admission path as TCP, no sockets. It is the transport of the e2e
// suite. The returned client must be closed by the caller; a client
// obtained after Shutdown has begun receives io errors.
func (s *Server) InProcess() *Client {
	server, client := net.Pipe()
	if !s.startConn(server) {
		client.Close()
	}
	return NewClient(client)
}

// Draining reports whether Shutdown has begun (new work is being
// rejected with StatusDraining).
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// Shutdown gracefully drains the server: it stops accepting
// connections and requests (new frames are rejected with
// StatusDraining), lets every admitted frame detect and respond, then
// closes the remaining connections and the worker detectors. It
// returns nil on a complete drain, or ctx's error if the context
// expires first (workers keep draining in the background; connections
// are then closed on the spot so readers unblock).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		return nil
	}
	s.connMu.Lock()
	if s.lis != nil {
		s.lis.Close()
	}
	s.connMu.Unlock()

	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	// No admitter can be mid-enqueue past this point: close the queues
	// so the workers drain the backlog — every admitted task is either
	// in runnable or in a busy user's pending chain, and workers drain
	// whole chains before taking the next runnable head — and exit.
	for _, sh := range s.shards {
		close(sh.runnable)
	}

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// All drained responses are written; unblock the connection readers.
	s.connMu.Lock()
	conns := s.conns
	s.conns = nil
	s.connMu.Unlock()
	for c := range conns {
		c.Close()
	}
	if err != nil {
		return err
	}
	s.connWG.Wait()
	return nil
}
