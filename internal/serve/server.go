package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/phy"
)

// Config configures a Server.
type Config struct {
	// Shards is the number of independent detection shards; each shard
	// owns one detector (its FramePreparer + FlexCore set), one bounded
	// admission queue and one worker goroutine, so frames of one user
	// are served in arrival order. Default 1.
	Shards int
	// QueueDepth bounds each shard's admission queue. A frame arriving
	// at a full queue is rejected immediately with StatusOverloaded —
	// explicit backpressure, bounded memory. Default 64.
	QueueDepth int
	// DetectorFactory builds one detector per shard (detectors are
	// stateful across Prepare/Detect, so shards cannot share one).
	// Required. Factory-created detectors are closed on Shutdown when
	// they expose a Close method.
	DetectorFactory func() detector.Detector
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// task is one admitted detection request in flight: the decoded
// request, the connection to answer on, and every buffer the
// ingest→detect→respond path needs. Tasks are pooled and fully
// reused, so the steady-state serve loop allocates nothing.
type task struct {
	req     DetectRequest
	c       *serverConn
	enq     time.Time // admit timestamp (latency metric only)
	payload []byte    // response payload scratch
	wire    []byte    // framed response scratch

	// burst/emit are the frame-detection callbacks, bound once at task
	// construction so the hot loop passes pre-built funcs (no per-frame
	// closure allocation).
	burst func(k int) [][]complex128
	emit  func(k int, decisions [][]int)
}

// shard is one detection lane: a bounded admission queue drained by a
// single worker goroutine owning one detector.
type shard struct {
	queue chan *task
	det   detector.Detector
	fd    *phy.FrameDetector

	// mu publishes the detector's op counters to Metrics (the worker
	// writes them after every frame; Snapshot reads them).
	mu        sync.Mutex
	ops       detector.OpCount
	pre       core.PreprocessStats
	activeSum float64
	activeN   int64
}

// preprocessReporter is implemented by detectors exposing
// pre-processing counters (FlexCore).
type preprocessReporter interface {
	PreprocessStats() core.PreprocessStats
}

// Server is the sharded, backpressured detection service. Build one
// with NewServer, feed it connections via Serve/ListenAndServe (TCP)
// or InProcess (tests), and stop it with Shutdown.
type Server struct {
	cfg    Config
	shards []*shard
	met    metrics

	taskPool sync.Pool

	// drainMu orders admission against shutdown: admitters hold the
	// read side while checking draining and enqueueing; Shutdown flips
	// draining under the write side, after which no admitter can be
	// mid-enqueue — closing the shard queues is then race-free.
	drainMu  sync.RWMutex
	draining bool

	workerWG sync.WaitGroup
	connWG   sync.WaitGroup

	connMu sync.Mutex
	conns  map[io.Closer]struct{}
	lis    net.Listener

	closed atomic.Bool
}

// NewServer builds the shards, starts their workers and returns a
// server ready to accept connections.
func NewServer(cfg Config) (*Server, error) {
	if cfg.DetectorFactory == nil {
		return nil, fmt.Errorf("serve: Config.DetectorFactory is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		met:   metrics{start: time.Now()}, //lint:ignore determinism wall-clock observability only — detection results never depend on it
		conns: make(map[io.Closer]struct{}),
	}
	s.taskPool.New = func() any {
		t := &task{}
		t.burst = t.req.Burst
		t.emit = func(k int, decisions [][]int) {
			t.payload = appendDecisions(t.payload, decisions)
		}
		return t
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		det := cfg.DetectorFactory()
		sh := &shard{
			queue: make(chan *task, cfg.QueueDepth),
			det:   det,
			fd:    phy.NewFrameDetector(det),
		}
		s.shards[i] = sh
		s.workerWG.Add(1)
		go s.runShard(sh)
	}
	return s, nil
}

// shardIndex maps a user ID to its shard: a SplitMix64 finalizer
// reduced modulo the shard count — uniform, stable across restarts
// and independent of Go's per-process map hashing, so routing is
// consistent for every server instance.
//
//flexcore:noalloc
func shardIndex(userID uint64, shards int) int {
	z := userID + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}

// runShard drains one shard's admission queue until it is closed by
// Shutdown, then releases the detector.
func (s *Server) runShard(sh *shard) {
	defer s.workerWG.Done()
	for t := range sh.queue {
		s.process(sh, t)
		if err := t.c.write(t.wire); err != nil {
			s.met.writeErrors.Add(1)
		}
		s.release(t)
	}
	if c, ok := sh.det.(interface{ Close() }); ok {
		c.Close()
	}
}

// process runs the ingest→detect→respond hot path for one admitted
// task: detect every subcarrier burst through the shard's
// FrameDetector, streaming the decisions straight into the response
// payload, frame it, publish the shard's op counters and record the
// latency. Everything it touches is task- or shard-owned and reused —
// the AllocsPerRun gate (alloc_test.go) pins this path at 0 allocs/op
// in steady state.
//
//flexcore:noalloc
func (s *Server) process(sh *shard, t *task) {
	q := &t.req
	t.payload = appendRespHeader(t.payload[:0], q.FrameID, StatusOK, q.Nt, q.Subcarriers, q.Symbols)
	if err := sh.fd.DetectFrame(q.H(), q.Sigma2, t.burst, t.emit); err != nil {
		// Geometry was validated at decode time, so detector errors are
		// unexpected — answer them as an explicit rejection, never a
		// silent drop.
		t.payload = appendRespHeader(t.payload[:0], q.FrameID, StatusInvalid, 0, 0, 0)
		s.met.rejectedInvalid.Add(1)
	}
	t.wire = AppendFrame(t.wire[:0], MsgResult, t.payload)
	s.publish(sh)
	s.met.observe(time.Since(t.enq)) //lint:ignore determinism wall-clock latency metric only — decisions are already encoded at this point
	s.met.completed.Add(1)
}

// publish copies the shard detector's cumulative counters under the
// shard's metrics lock.
//
//flexcore:noalloc
func (s *Server) publish(sh *shard) {
	ops := sh.det.OpCount()
	var pre core.PreprocessStats
	if pr, ok := sh.det.(preprocessReporter); ok {
		pre = pr.PreprocessStats()
	}
	activeSum, activeN := sh.fd.ActivePEs()
	sh.mu.Lock()
	sh.ops = ops
	sh.pre = pre
	sh.activeSum, sh.activeN = activeSum, activeN
	sh.mu.Unlock()
}

// release returns a task to the pool.
//
//flexcore:noalloc
func (s *Server) release(t *task) {
	t.c = nil
	s.taskPool.Put(t) //lint:ignore noalloc t is already a pointer — Put's any parameter boxes no value
}

// admit routes a decoded request to its shard's bounded queue, or
// rejects it explicitly: StatusDraining once shutdown has begun,
// StatusOverloaded when the queue is full. Admission never blocks —
// backpressure is a response code, not a stalled connection.
//
//flexcore:noalloc
func (s *Server) admit(t *task) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		s.met.rejectedDraining.Add(1)
		t.c.reject(s, t.req.FrameID, StatusDraining)
		s.release(t)
		return
	}
	sh := s.shards[shardIndex(t.req.UserID, len(s.shards))]
	select {
	case sh.queue <- t:
		s.met.accepted.Add(1)
	default:
		s.met.rejectedOverload.Add(1)
		t.c.reject(s, t.req.FrameID, StatusOverloaded)
		s.release(t)
	}
}

// serverConn is one client connection: a buffered reader owned by the
// connection goroutine and a mutex-serialised buffered writer shared
// by the shard workers responding on it.
type serverConn struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader

	mu sync.Mutex
	bw *bufio.Writer

	// rejection scratch, touched only by the connection goroutine.
	rejPayload []byte
	rejWire    []byte
}

// write frames one response onto the connection (serialised: shard
// workers and the connection goroutine share the writer).
func (c *serverConn) write(frame []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.bw.Write(frame); err != nil {
		return err
	}
	return c.bw.Flush()
}

// reject answers a request with a bare status response.
//
//flexcore:noalloc
func (c *serverConn) reject(s *Server, frameID uint64, st Status) {
	c.rejPayload = appendRespHeader(c.rejPayload[:0], frameID, st, 0, 0, 0)
	c.rejWire = AppendFrame(c.rejWire[:0], MsgResult, c.rejPayload)
	if err := c.write(c.rejWire); err != nil {
		s.met.writeErrors.Add(1)
	}
}

// handleConn runs one connection's ingest loop: read a frame, decode
// it into a pooled task, admit it. Payload-level errors are answered
// with StatusInvalid and the connection survives; framing errors are
// unrecoverable and close it.
func (s *Server) handleConn(rwc io.ReadWriteCloser) {
	defer s.connWG.Done()
	defer rwc.Close()
	defer s.untrackConn(rwc)
	c := &serverConn{rwc: rwc, br: bufio.NewReader(rwc), bw: bufio.NewWriter(rwc)}
	var buf []byte
	for {
		typ, payload, nbuf, err := ReadFrame(c.br, buf)
		buf = nbuf
		if err != nil {
			if err != io.EOF {
				s.met.badFrames.Add(1)
			}
			return
		}
		if typ != MsgDetect {
			s.met.badFrames.Add(1)
			return
		}
		t := s.taskPool.Get().(*task) //lint:ignore pooldiscipline ownership transfers through the shard queue — the shard worker (or the rejection path in admit) releases the task after responding
		if err := t.req.Decode(payload); err != nil {
			s.met.rejectedInvalid.Add(1)
			c.reject(s, peekFrameID(payload), StatusInvalid)
			s.release(t)
			continue
		}
		t.c = c
		t.enq = time.Now() //lint:ignore determinism admit timestamp feeds the latency histogram only — detection results never depend on it
		s.admit(t)
	}
}

// trackConn registers a live connection (for forced close at the end
// of Shutdown) and reports whether the server still accepts it.
func (s *Server) trackConn(c io.Closer) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.conns == nil {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

// untrackConn removes a closed connection.
func (s *Server) untrackConn(c io.Closer) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// startConn registers rwc and spawns its handler unless shutdown has
// begun (the drainMu read lock orders the connWG.Add against
// Shutdown's Wait).
func (s *Server) startConn(rwc io.ReadWriteCloser) bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining || !s.trackConn(rwc) {
		rwc.Close()
		return false
	}
	s.connWG.Add(1)
	go s.handleConn(rwc)
	return true
}

// Serve accepts connections on lis until Shutdown closes it. It
// returns nil after a graceful shutdown, or the first accept error.
func (s *Server) Serve(lis net.Listener) error {
	s.connMu.Lock()
	s.lis = lis
	s.connMu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.startConn(conn)
	}
}

// ListenAndServe listens on the TCP address and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// InProcess returns a Client connected to the server through an
// in-memory synchronous pipe — the same codec, connection handling and
// admission path as TCP, no sockets. It is the transport of the e2e
// suite. The returned client must be closed by the caller; a client
// obtained after Shutdown has begun receives io errors.
func (s *Server) InProcess() *Client {
	server, client := net.Pipe()
	if !s.startConn(server) {
		client.Close()
	}
	return NewClient(client)
}

// Draining reports whether Shutdown has begun (new work is being
// rejected with StatusDraining).
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// Shutdown gracefully drains the server: it stops accepting
// connections and requests (new frames are rejected with
// StatusDraining), lets every admitted frame detect and respond, then
// closes the remaining connections and the shard detectors. It
// returns nil on a complete drain, or ctx's error if the context
// expires first (workers keep draining in the background; connections
// are then closed on the spot so readers unblock).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		return nil
	}
	s.connMu.Lock()
	if s.lis != nil {
		s.lis.Close()
	}
	s.connMu.Unlock()

	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	// No admitter can be mid-enqueue past this point: close the queues
	// so the workers drain the backlog and exit.
	for _, sh := range s.shards {
		close(sh.queue)
	}

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// All drained responses are written; unblock the connection readers.
	s.connMu.Lock()
	conns := s.conns
	s.conns = nil
	s.connMu.Unlock()
	for c := range conns {
		c.Close()
	}
	if err != nil {
		return err
	}
	s.connWG.Wait()
	return nil
}
