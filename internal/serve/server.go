package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/phy"
)

// Config configures a Server.
type Config struct {
	// Shards is the number of independent detection shards. Consistent
	// user→shard routing (shardIndex) pins every frame of one user to
	// one shard, so per-user state — FIFO sequencing and the Prepare
	// reuse cache — never crosses shards. Default 1.
	Shards int
	// WorkersPerShard is the number of worker goroutines per shard, each
	// owning its own detector/FrameDetector from the factory, so a
	// shard's throughput scales with cores. Frames of one user are still
	// dispatched and completed in arrival order: a user's next frame is
	// handed to a worker only after its previous frame has responded
	// (user-keyed sequencing on the shared shard queue), which also
	// serialises access to the user's cross-frame reuse state. Default 1.
	WorkersPerShard int
	// QueueDepth bounds each shard's admitted-but-not-yet-processing
	// backlog. A frame arriving at a full shard is rejected immediately
	// with StatusOverloaded — explicit backpressure, bounded memory.
	// Default 64.
	QueueDepth int
	// UserStateCap bounds each shard's table of per-user states (FIFO
	// sequencing + cross-frame Prepare-reuse bases). Past the cap the
	// oldest idle user is evicted and its reuse bases reset; users with
	// frames in flight are never evicted, so the table can transiently
	// exceed the cap by the in-flight user count. Default 1024.
	UserStateCap int
	// DetectorFactory builds one detector per worker (detectors are
	// stateful across Prepare/Detect, so workers cannot share one).
	// Required. Factory-created detectors are closed on Shutdown when
	// they expose a Close method. With core.Options.PathReuse enabled,
	// the server keys the coherence cache per user across frames; at
	// ReuseThreshold 0 this is provably output-neutral (DESIGN.md §13).
	DetectorFactory func() detector.Detector

	// DegradeLadder lists descending N_PE rungs (e.g. 512→128→32 as
	// {128, 32} under a full N_PE of 512) the pressure controller steps
	// queued frames down as a shard's admission queue fills — FlexCore's
	// flexibility knob entering the serve path as load shedding: lowering
	// N_PE only relaxes the decision metric (the PR 2 monotonicity
	// invariant), so a degraded frame is a coarser answer, never a
	// corrupted one. Empty disables degradation. Entries must be positive
	// and strictly decreasing; DegradeFactory is then required.
	DegradeLadder []int
	// DegradeFactory builds one detector at the given rung N_PE (one per
	// worker per rung, same statefulness rule as DetectorFactory).
	// Degraded frames never touch the per-user cross-frame reuse state:
	// cached candidate paths are N_PE-specific, and keeping the rungs
	// isolated preserves bit-identity with offline detection at both the
	// full and the degraded N_PE.
	DegradeFactory func(npe int) detector.Detector
	// DegradeStart is the queue-fill fraction (waiting/QueueDepth) at
	// which degradation begins; the ladder's rungs divide the remaining
	// fill range evenly. Default 0.5.
	DegradeStart float64

	// ReadTimeout bounds the arrival of a frame's remainder once its
	// header has been read: a peer that stalls mid-frame is disconnected
	// (counted in ConnTimeouts) instead of pinning the connection
	// goroutine. 0 disables.
	ReadTimeout time.Duration
	// IdleTimeout bounds the wait for the next frame header — the
	// idle-connection reaper. 0 disables.
	IdleTimeout time.Duration
	// WriteTimeout bounds each flush of a connection's response writer: a
	// peer that stops draining responses (slow-loris on the write side)
	// is disconnected instead of wedging the shard worker holding the
	// flush. 0 disables.
	WriteTimeout time.Duration
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.UserStateCap <= 0 {
		c.UserStateCap = 1024
	}
	if c.DegradeStart <= 0 || c.DegradeStart >= 1 {
		c.DegradeStart = 0.5
	}
	return c
}

// task is one admitted detection request in flight: the decoded
// request, the connection to answer on, and every buffer the
// ingest→detect→respond path needs. Tasks are pooled and fully
// reused, so the steady-state serve loop allocates nothing.
type task struct {
	req     DetectRequest
	c       *serverConn
	user    *userState
	enq     time.Time // arrival timestamp (staleness budget + latency metric)
	rung    int       // pressure-ladder rung chosen at dequeue (0 = full N_PE)
	payload []byte    // response payload scratch
	wire    []byte    // framed response scratch

	// burst/emit are the frame-detection callbacks, bound once at task
	// construction so the hot loop passes pre-built funcs (no per-frame
	// closure allocation).
	burst func(k int) [][]complex128
	emit  func(k int, decisions [][]int)
}

// userState is one user's serve-side state on its home shard: the FIFO
// sequencing slot (busy + pending backlog) and the cross-frame Prepare
// reuse bases. It is accessed under the shard mutex, except reuse,
// which is touched only by the worker currently processing the user's
// frame — the busy flag guarantees there is at most one, and the
// mutex/channel handoff between frames orders the accesses.
type userState struct {
	id      uint64
	busy    bool    // a worker is processing (or holds) this user's frame
	pending []*task // admitted frames waiting for the one in flight
	reuse   core.ReuseState
}

// shard is one detection lane: a user-sequenced admission stage feeding
// a runnable queue drained by WorkersPerShard workers.
type shard struct {
	// runnable carries the head frame of each user's chain to the
	// workers. Capacity QueueDepth: every queued task is counted in
	// waiting, and admission caps waiting at QueueDepth, so sends under
	// the admission path never block.
	runnable chan *task
	workers  []*shardWorker

	// mu guards the sequencing state below.
	mu      sync.Mutex
	users   map[uint64]*userState
	order   []uint64     // user insertion order (FIFO eviction scan)
	free    []*userState // evicted states recycled for new users
	waiting int          // admitted frames not yet processing
	waitHWM int          // high-watermark of waiting since start
}

// lane is one degraded detection rung of a worker: its own detector at
// the rung's N_PE plus the FrameDetector wrapping it. Lanes never see
// per-user reuse state (cached candidate paths are N_PE-specific).
type lane struct {
	npe int
	det detector.Detector
	fd  *phy.FrameDetector
}

// shardWorker is one worker goroutine's state: its own detector and
// FrameDetector (detectors are stateful), the degradation lanes, the
// write-coalescing dirty list, and the op counters it publishes after
// every frame.
type shardWorker struct {
	det     detector.Detector
	fd      *phy.FrameDetector
	reuseOK bool   // detector supports external reuse keying
	lanes   []lane // one per DegradeLadder rung, full→coarse

	// dirty lists the connections holding buffered responses this worker
	// has not flushed yet. Flushed before the worker blocks on an empty
	// runnable queue — coalescing consecutive responses per connection
	// into one write while the shard is busy, without ever parking a
	// response behind an idle queue.
	dirty []*serverConn

	// mu publishes the detector's op counters to Metrics (the worker
	// writes them after every frame; Snapshot reads them).
	mu        sync.Mutex
	ops       detector.OpCount
	pre       core.PreprocessStats
	activeSum float64
	activeN   int64
}

// preprocessReporter is implemented by detectors exposing
// pre-processing counters (FlexCore).
type preprocessReporter interface {
	PreprocessStats() core.PreprocessStats
}

// Server is the sharded, backpressured detection service. Build one
// with NewServer, feed it connections via Serve/ListenAndServe (TCP)
// or InProcess (tests), and stop it with Shutdown.
type Server struct {
	cfg    Config
	shards []*shard
	met    metrics

	taskPool sync.Pool

	// drainMu orders admission against shutdown: admitters hold the
	// read side while checking draining and enqueueing; Shutdown flips
	// draining under the write side, after which no admitter can be
	// mid-enqueue — closing the shard queues is then race-free.
	drainMu  sync.RWMutex
	draining bool

	workerWG sync.WaitGroup
	connWG   sync.WaitGroup

	connMu sync.Mutex
	conns  map[io.Closer]struct{}
	lis    net.Listener

	closed atomic.Bool
}

// NewServer builds the shards, starts their workers and returns a
// server ready to accept connections.
func NewServer(cfg Config) (*Server, error) {
	if cfg.DetectorFactory == nil {
		return nil, fmt.Errorf("serve: Config.DetectorFactory is required")
	}
	if len(cfg.DegradeLadder) > 0 {
		if cfg.DegradeFactory == nil {
			return nil, fmt.Errorf("serve: Config.DegradeFactory is required with a DegradeLadder")
		}
		for i, npe := range cfg.DegradeLadder {
			if npe <= 0 || (i > 0 && npe >= cfg.DegradeLadder[i-1]) {
				return nil, fmt.Errorf("serve: Config.DegradeLadder must be positive and strictly decreasing")
			}
		}
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		met:   metrics{start: time.Now()}, //lint:ignore determinism wall-clock observability only — detection results never depend on it
		conns: make(map[io.Closer]struct{}),
	}
	s.taskPool.New = func() any {
		t := &task{}
		t.burst = t.req.Burst
		t.emit = func(k int, decisions [][]int) {
			t.payload = appendDecisions(t.payload, decisions)
		}
		return t
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh := &shard{
			runnable: make(chan *task, cfg.QueueDepth),
			workers:  make([]*shardWorker, cfg.WorkersPerShard),
			users:    make(map[uint64]*userState),
		}
		for j := range sh.workers {
			det := cfg.DetectorFactory()
			w := &shardWorker{det: det, fd: phy.NewFrameDetector(det)}
			w.reuseOK = w.fd.SetReuseState(nil)
			for _, npe := range cfg.DegradeLadder {
				ld := cfg.DegradeFactory(npe)
				w.lanes = append(w.lanes, lane{npe: npe, det: ld, fd: phy.NewFrameDetector(ld)})
			}
			sh.workers[j] = w
			s.workerWG.Add(1)
			go s.runWorker(sh, w)
		}
		s.shards[i] = sh
	}
	return s, nil
}

// shardIndex maps a user ID to its shard: a SplitMix64 finalizer
// reduced modulo the shard count — uniform, stable across restarts
// and independent of Go's per-process map hashing, so routing is
// consistent for every server instance.
//
//flexcore:noalloc
func shardIndex(userID uint64, shards int) int {
	z := userID + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}

// runWorker drains one shard's runnable queue until it is closed by
// Shutdown, then flushes its buffered responses and releases its
// detector. Each runnable task is the head of one user's chain: after
// responding, the worker takes the user's next pending frame directly
// (completeUser), so one user's frames are processed back-to-back by
// one worker in arrival order — per-user FIFO, serialized reuse state —
// while different users' chains run on all workers in parallel.
func (s *Server) runWorker(sh *shard, w *shardWorker) {
	defer s.workerWG.Done()
	for {
		t := s.nextTask(sh, w)
		if t == nil {
			break
		}
		for t != nil {
			s.begin(sh, t)
			if s.expired(t) {
				s.expire(t)
			} else {
				s.process(w, t)
			}
			s.buffer(w, t)
			t = s.completeUser(sh, t)
		}
	}
	s.flushDirty(w)
	if c, ok := w.det.(interface{ Close() }); ok {
		c.Close()
	}
	for i := range w.lanes {
		if c, ok := w.lanes[i].det.(interface{ Close() }); ok {
			c.Close()
		}
	}
}

// nextTask returns the next runnable chain head, or nil once the queue
// is closed and drained. Before blocking on an empty queue it flushes
// the worker's buffered responses — the coalescing contract: responses
// may ride in one write with their successors while work is queued, but
// never wait behind an idle queue.
func (s *Server) nextTask(sh *shard, w *shardWorker) *task {
	select {
	case t, ok := <-sh.runnable:
		if !ok {
			return nil
		}
		return t
	default:
	}
	s.flushDirty(w)
	t, ok := <-sh.runnable
	if !ok {
		return nil
	}
	return t
}

// begin moves one frame from the admitted backlog into processing and
// picks its pressure-ladder rung from the backlog depth it leaves
// behind it — the degradation decision is made at dequeue, when the
// queue state is current, not at admission, when it may be stale by a
// whole backlog.
//
//flexcore:noalloc
func (s *Server) begin(sh *shard, t *task) {
	sh.mu.Lock()
	depth := sh.waiting
	sh.waiting--
	sh.mu.Unlock()
	t.rung = s.rung(depth)
}

// rung maps an instantaneous queue depth to a DegradeLadder rung: 0
// (full N_PE) below DegradeStart·QueueDepth, then the rungs divide the
// remaining fill range evenly, with the coarsest rung reached as the
// queue approaches capacity.
//
//flexcore:noalloc
func (s *Server) rung(depth int) int {
	n := len(s.cfg.DegradeLadder)
	if n == 0 || depth <= 0 {
		return 0
	}
	fill := float64(depth) / float64(s.cfg.QueueDepth)
	start := s.cfg.DegradeStart
	if fill < start {
		return 0
	}
	if fill >= 1 {
		return n
	}
	r := 1 + int((fill-start)*float64(n)/(1-start))
	if r > n {
		r = n
	}
	return r
}

// expired reports whether t's staleness budget elapsed while it sat in
// the admitted backlog.
func (s *Server) expired(t *task) bool {
	return stale(t.enq, t.req.DeadlineMicros, time.Now()) //lint:ignore determinism wall-clock staleness shedding — an expired frame is answered StatusExpired, never detected, so decisions of served frames are unaffected
}

// stale reports whether a frame that arrived at enq with the given
// staleness budget (µs, 0 = none) has aged out by now.
//
//flexcore:noalloc
func stale(enq time.Time, budgetMicros uint64, now time.Time) bool {
	if budgetMicros == 0 {
		return false
	}
	age := now.Sub(enq)
	return age > 0 && uint64(age/time.Microsecond) > budgetMicros
}

// expire answers an admitted frame whose budget elapsed in the queue
// with a bare StatusExpired response — shedding the detection work
// entirely. The frame still counts as completed (the accepted −
// completed in-flight ledger must drain to zero) as well as expired.
//
//flexcore:noalloc
func (s *Server) expire(t *task) {
	t.payload = appendRespHeader(t.payload[:0], t.req.FrameID, StatusExpired, 0, 0, 0, 0)
	t.wire = AppendFrame(t.wire[:0], MsgResult, t.payload)
	s.met.expired.Add(1)
	s.met.observe(time.Since(t.enq)) //lint:ignore determinism wall-clock latency metric only — the frame is already shed at this point
	s.met.completed.Add(1)
}

// process runs the ingest→detect→respond hot path for one admitted
// task: install the user's cross-frame reuse bases, detect every
// subcarrier burst through the worker's FrameDetector, streaming the
// decisions straight into the response payload, frame it, publish the
// worker's op counters and record the latency. Everything it touches is
// task-, user- or worker-owned and reused — the AllocsPerRun gate
// (alloc_test.go) pins this path at 0 allocs/op in steady state.
//
//flexcore:noalloc
func (s *Server) process(w *shardWorker, t *task) {
	q := &t.req
	fd, npe := w.fd, 0
	if t.rung > 0 && len(w.lanes) > 0 {
		// Degraded rung: detect on the rung's own lane at its lower N_PE
		// and report it in the response. Lanes never touch the per-user
		// reuse state — cached candidate paths are N_PE-specific.
		ln := &w.lanes[t.rung-1]
		fd, npe = ln.fd, ln.npe
		s.met.degraded.Add(1)
	} else if w.reuseOK && t.user != nil {
		w.fd.SetReuseState(&t.user.reuse)
	}
	t.payload = appendRespHeader(t.payload[:0], q.FrameID, StatusOK, npe, q.Nt, q.Subcarriers, q.Symbols)
	if err := fd.DetectFrame(q.H(), q.Sigma2, t.burst, t.emit); err != nil {
		// Geometry was validated at decode time, so detector errors are
		// unexpected — answer them as an explicit rejection, never a
		// silent drop.
		t.payload = appendRespHeader(t.payload[:0], q.FrameID, StatusInvalid, 0, 0, 0, 0)
		s.met.rejectedInvalid.Add(1)
	}
	if npe == 0 && w.reuseOK {
		w.fd.SetReuseState(nil)
	}
	t.wire = AppendFrame(t.wire[:0], MsgResult, t.payload)
	s.publish(w)
	s.met.observe(time.Since(t.enq)) //lint:ignore determinism wall-clock latency metric only — decisions are already encoded at this point
	s.met.completed.Add(1)
}

// buffer queues t's framed response on its connection's buffered writer
// and marks the connection dirty for the next flush. The bufio writer
// auto-flushes when full, so a backlog burst still drains with bounded
// buffering; write errors surface here (sticky) or at flush.
//
//flexcore:noalloc
func (s *Server) buffer(w *shardWorker, t *task) {
	c := t.c
	c.mu.Lock()
	c.armWrite()
	_, err := c.bw.Write(t.wire) //lint:ignore lockscope c.mu serializes the conn's buffered writer; the hold is bounded by the armWrite deadline, and a stalled conn is condemned, not waited on
	c.mu.Unlock()
	if err != nil {
		c.condemn(s, err)
		return
	}
	w.dirty = append(w.dirty, c) //lint:ignore noalloc amortised: the dirty list reuses its high-water capacity across flush cycles
}

// flushDirty flushes every connection this worker buffered responses on
// since the last flush. Duplicate entries are harmless: flushing an
// empty bufio writer is a no-op.
func (s *Server) flushDirty(w *shardWorker) {
	for i, c := range w.dirty {
		c.mu.Lock()
		c.armWrite()
		err := c.bw.Flush() //lint:ignore lockscope c.mu serializes the conn's buffered writer; the hold is bounded by the armWrite deadline, and a stalled conn is condemned, not waited on
		c.mu.Unlock()
		if err != nil {
			c.condemn(s, err)
		}
		w.dirty[i] = nil
	}
	w.dirty = w.dirty[:0]
}

// completeUser finishes t's slot in its user's FIFO chain: it releases
// the task and returns the user's next pending frame for this worker to
// process, or marks the user idle. Handing the successor to the same
// worker (never back through runnable) is what makes per-user ordering
// a structural property: at most one worker ever holds a given user's
// frame, and it processes them in arrival order.
//
//flexcore:noalloc
func (s *Server) completeUser(sh *shard, t *task) *task {
	u := t.user
	s.release(t)
	if u == nil {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n := len(u.pending); n > 0 {
		next := u.pending[0]
		copy(u.pending, u.pending[1:])
		u.pending[n-1] = nil
		u.pending = u.pending[:n-1]
		return next
	}
	u.busy = false
	return nil
}

// publish copies the worker detector's cumulative counters under the
// worker's metrics lock.
//
//flexcore:noalloc
func (s *Server) publish(w *shardWorker) {
	ops := w.det.OpCount()
	var pre core.PreprocessStats
	if pr, ok := w.det.(preprocessReporter); ok {
		pre = pr.PreprocessStats()
	}
	activeSum, activeN := w.fd.ActivePEs()
	for i := range w.lanes {
		ln := &w.lanes[i]
		ops.Add(ln.det.OpCount())
		if pr, ok := ln.det.(preprocessReporter); ok {
			pre.Add(pr.PreprocessStats())
		}
		as, an := ln.fd.ActivePEs()
		activeSum += as
		activeN += an
	}
	w.mu.Lock()
	w.ops = ops
	w.pre = pre
	w.activeSum, w.activeN = activeSum, activeN
	w.mu.Unlock()
}

// release returns a task to the pool.
//
//flexcore:noalloc
func (s *Server) release(t *task) {
	t.c = nil
	t.user = nil
	t.rung = 0
	s.taskPool.Put(t) //lint:ignore noalloc t is already a pointer — Put's any parameter boxes no value
}

// userFor returns the shard's state for user id, creating (and, at the
// cap, evicting the oldest idle user to recycle) as needed. Called
// under sh.mu; the new-user path may allocate, which is why it sits
// outside the noalloc-annotated admit — in steady state the user table
// is warm and this is one map lookup.
func (sh *shard) userFor(id uint64, capacity int) *userState {
	if u, ok := sh.users[id]; ok {
		return u
	}
	if len(sh.users) >= capacity {
		sh.evictIdle()
	}
	var u *userState
	if n := len(sh.free); n > 0 {
		u = sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
	} else {
		u = &userState{}
	}
	u.id = id
	u.busy = false
	u.pending = u.pending[:0]
	sh.users[id] = u
	sh.order = append(sh.order, id)
	return u
}

// evictIdle drops the longest-tracked user with no frames in flight,
// resetting its reuse bases and recycling its storage. The scan walks
// the insertion-order slice (never the map: iteration order must not
// influence behaviour); if every tracked user is busy nothing is
// evicted and the table transiently overshoots the cap.
func (sh *shard) evictIdle() {
	for i, id := range sh.order {
		u := sh.users[id]
		if u.busy {
			continue
		}
		delete(sh.users, id)
		u.reuse.Reset()
		sh.free = append(sh.free, u)
		copy(sh.order[i:], sh.order[i+1:])
		sh.order = sh.order[:len(sh.order)-1]
		return
	}
}

// admit routes a decoded request into its shard's user-sequenced
// backlog, or rejects it explicitly: StatusDraining once shutdown has
// begun, StatusOverloaded when the shard's admitted backlog is full.
// Admission never blocks — backpressure is a response code, not a
// stalled connection. If the user is idle the frame becomes a runnable
// chain head; if a worker already holds the user's previous frame it
// joins the user's pending FIFO instead, preserving arrival order.
//
//flexcore:noalloc
func (s *Server) admit(t *task) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		s.met.rejectedDraining.Add(1)
		t.c.reject(s, t.req.FrameID, StatusDraining) //lint:ignore lockscope drainMu is read-held; the rejection write is bounded by the conn's armWrite deadline and a stalled conn is condemned, not waited on
		s.release(t)
		return
	}
	if s.expired(t) {
		// Already stale at admission (a tiny budget or an ingest stall):
		// shed before the frame ever occupies queue capacity. Never
		// counted accepted, so the in-flight ledger is untouched.
		s.met.expired.Add(1)
		t.c.reject(s, t.req.FrameID, StatusExpired) //lint:ignore lockscope drainMu is read-held; the rejection write is bounded by the conn's armWrite deadline and a stalled conn is condemned, not waited on
		s.release(t)
		return
	}
	sh := s.shards[shardIndex(t.req.UserID, len(s.shards))]
	sh.mu.Lock()
	if sh.waiting >= s.cfg.QueueDepth {
		sh.mu.Unlock()
		s.met.rejectedOverload.Add(1)
		t.c.reject(s, t.req.FrameID, StatusOverloaded) //lint:ignore lockscope drainMu is read-held; the rejection write is bounded by the conn's armWrite deadline and a stalled conn is condemned, not waited on
		s.release(t)
		return
	}
	sh.waiting++
	if sh.waiting > sh.waitHWM {
		sh.waitHWM = sh.waiting
	}
	u := sh.userFor(t.req.UserID, s.cfg.UserStateCap)
	t.user = u
	if u.busy {
		u.pending = append(u.pending, t) //lint:ignore noalloc amortised: the pending arena reuses its high-water capacity across a user's bursts
		sh.mu.Unlock()
		s.met.accepted.Add(1)
		return
	}
	u.busy = true
	sh.mu.Unlock()
	s.met.accepted.Add(1)
	// Never blocks: every task in runnable is counted in waiting, and
	// waiting ≤ QueueDepth = cap(runnable) was just enforced above.
	sh.runnable <- t //lint:ignore lockscope the capacity invariant above makes this send non-blocking: waiting ≤ QueueDepth = cap(runnable)
}

// Connection I/O buffer sizes. The write buffer is sized for a burst of
// small responses (the dominant shape: a 5×4, 6-subcarrier frame's
// response is ~160 bytes) so coalesced flushing turns a backlog drain
// into a handful of syscalls; larger responses auto-flush through bufio
// in connWriteBuf-sized writes, which keeps per-connection memory
// bounded under load.
const (
	connReadBuf  = 64 << 10
	connWriteBuf = 64 << 10
)

// serverConn is one client connection: a buffered reader owned by the
// connection goroutine and a mutex-serialised buffered writer shared
// by the shard workers responding on it. When the transport supports
// deadlines (net.Conn — TCP and net.Pipe both do), the configured
// read/idle/write budgets are armed around the blocking spots so one
// stalled peer can neither pin its connection goroutine nor wedge a
// shard worker mid-flush.
type serverConn struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader
	dl  net.Conn      // non-nil when rwc supports deadlines
	wt  time.Duration // write-stall budget per flush (0 = none)

	// armed tracks whether a read deadline is currently set, so the
	// disabled-timeout path never issues deadline syscalls. Touched only
	// by the connection goroutine.
	armed bool

	// srvClosed records a server-initiated close (deadline expiry or
	// write failure), so the connection goroutine's resulting read error
	// is not miscounted as a peer framing fault.
	srvClosed atomic.Bool

	mu sync.Mutex
	bw *bufio.Writer

	// rejection scratch, touched only by the connection goroutine.
	rejPayload []byte
	rejWire    []byte
}

// armRead sets (or, for d ≤ 0, clears) the connection's read deadline.
func (c *serverConn) armRead(d time.Duration) {
	if c.dl == nil {
		return
	}
	if d <= 0 {
		if c.armed {
			c.dl.SetReadDeadline(time.Time{})
			c.armed = false
		}
		return
	}
	c.dl.SetReadDeadline(time.Now().Add(d)) //lint:ignore determinism wall-clock connection hygiene only — detection results never depend on it
	c.armed = true
}

// armWrite arms the write-stall deadline ahead of a buffered write or
// flush. Called under c.mu.
func (c *serverConn) armWrite() {
	if c.dl == nil || c.wt <= 0 {
		return
	}
	c.dl.SetWriteDeadline(time.Now().Add(c.wt)) //lint:ignore determinism wall-clock connection hygiene only — detection results never depend on it
}

// condemn closes a connection whose response path failed (write error
// or write-stall timeout): the close unblocks the connection's reader,
// so the whole conn winds down instead of accumulating per-response
// stalls. Counted once per connection.
func (c *serverConn) condemn(s *Server, err error) {
	if c.srvClosed.Swap(true) {
		return
	}
	if isTimeout(err) {
		s.met.connTimeouts.Add(1)
	}
	s.met.writeErrors.Add(1)
	c.rwc.Close()
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// write frames one response onto the connection and flushes immediately
// (the rejection path: a rejected frame must never wait for detection
// work to coalesce with).
func (c *serverConn) write(frame []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armWrite()
	if _, err := c.bw.Write(frame); err != nil { //lint:ignore lockscope c.mu serializes the conn's buffered writer; the hold is bounded by the armWrite deadline, and a stalled conn is condemned, not waited on
		return err
	}
	return c.bw.Flush() //lint:ignore lockscope same bounded write window under the conn mutex
}

// reject answers a request with a bare status response.
//
//flexcore:noalloc
func (c *serverConn) reject(s *Server, frameID uint64, st Status) {
	c.rejPayload = appendRespHeader(c.rejPayload[:0], frameID, st, 0, 0, 0, 0)
	c.rejWire = AppendFrame(c.rejWire[:0], MsgResult, c.rejPayload)
	if err := c.write(c.rejWire); err != nil {
		c.condemn(s, err)
	}
}

// readRequest reads one frame off the connection with the configured
// hygiene deadlines armed around the two blocking spots: IdleTimeout
// while waiting for the next header (the idle-connection reaper, which
// also bounds a stalled partial header) and ReadTimeout for the
// payload once a header has arrived (the slow-loris guard — a peer
// that trickles a frame cannot pin the goroutine past it). It mirrors
// wire.ReadFrame's buffer reuse and error contract, except that a
// deadline expiry surfaces as the transport's timeout error so the
// caller can classify it apart from peer framing faults.
func (s *Server) readRequest(c *serverConn, buf []byte) (typ MsgType, payload, bufOut []byte, err error) {
	if cap(buf) < headerSize {
		buf = make([]byte, headerSize)
	}
	c.armRead(s.cfg.IdleTimeout)
	if _, err := io.ReadFull(c.br, buf[:headerSize]); err != nil {
		if err == io.EOF {
			return 0, nil, buf, io.EOF
		}
		if isTimeout(err) {
			return 0, nil, buf, err
		}
		return 0, nil, buf, ErrTruncated
	}
	typ, n, crc, err := parseHeader(buf[:headerSize])
	if err != nil {
		return 0, nil, buf, err
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	c.armRead(s.cfg.ReadTimeout)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		if isTimeout(err) {
			return 0, nil, buf, err
		}
		return 0, nil, buf, ErrTruncated
	}
	c.armRead(0)
	if crc32.ChecksumIEEE(buf) != crc {
		return 0, nil, buf, ErrChecksum
	}
	return typ, buf, buf, nil
}

// handleConn runs one connection's ingest loop: read a frame, decode
// it into a pooled task, admit it. Payload-level errors are answered
// with StatusInvalid and the connection survives; framing errors are
// unrecoverable and close it; hygiene-deadline expiries close it and
// count in ConnTimeouts instead of BadFrames.
func (s *Server) handleConn(rwc io.ReadWriteCloser) {
	defer s.connWG.Done()
	defer rwc.Close()
	defer s.untrackConn(rwc)
	c := &serverConn{rwc: rwc, br: bufio.NewReaderSize(rwc, connReadBuf), bw: bufio.NewWriterSize(rwc, connWriteBuf), wt: s.cfg.WriteTimeout}
	if nc, ok := rwc.(net.Conn); ok {
		c.dl = nc
	}
	var buf []byte
	for {
		typ, payload, nbuf, err := s.readRequest(c, buf)
		buf = nbuf
		if err != nil {
			// A non-EOF error after Shutdown's force-close phase is the
			// server unblocking its own reader (the peer's FIN may still
			// be in flight when the fd closes locally), not a peer
			// framing fault; the same goes for a connection the response
			// path already condemned. Deadline expiries are the hygiene
			// layer reaping a stalled peer. Only genuine framing faults
			// count as bad frames.
			switch {
			case err == io.EOF || s.forceClosed() || c.srvClosed.Load():
			case isTimeout(err):
				s.met.connTimeouts.Add(1)
			default:
				s.met.badFrames.Add(1)
			}
			return
		}
		if typ != MsgDetect {
			s.met.badFrames.Add(1)
			return
		}
		t := s.taskPool.Get().(*task) //lint:ignore pooldiscipline ownership transfers through the shard's sequencing state — the shard worker (or the rejection path in admit) releases the task after responding
		if err := t.req.Decode(payload); err != nil {
			s.met.rejectedInvalid.Add(1)
			c.reject(s, peekFrameID(payload), StatusInvalid)
			s.release(t)
			continue
		}
		t.c = c
		t.enq = time.Now() //lint:ignore determinism admit timestamp feeds the latency histogram only — detection results never depend on it
		s.admit(t)
	}
}

// trackConn registers a live connection (for forced close at the end
// of Shutdown) and reports whether the server still accepts it.
func (s *Server) trackConn(c io.Closer) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.conns == nil {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

// untrackConn removes a closed connection.
// forceClosed reports whether Shutdown has entered its force-close
// phase (the connection table is retired before the conns are closed,
// so any read error surfacing afterwards is server-initiated).
func (s *Server) forceClosed() bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.conns == nil
}

func (s *Server) untrackConn(c io.Closer) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// startConn registers rwc and spawns its handler unless shutdown has
// begun (the drainMu read lock orders the connWG.Add against
// Shutdown's Wait).
func (s *Server) startConn(rwc io.ReadWriteCloser) bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining || !s.trackConn(rwc) {
		rwc.Close()
		return false
	}
	s.connWG.Add(1)
	go s.handleConn(rwc)
	return true
}

// Serve accepts connections on lis until Shutdown closes it. TCP
// connections get TCP_NODELAY set explicitly: response batching is the
// server's decision (buffered writers + coalesced flushing), not the
// kernel's — Nagle would add delayed-ACK latency on top of flushes the
// server already sized. It returns nil after a graceful shutdown, or
// the first accept error.
func (s *Server) Serve(lis net.Listener) error {
	s.connMu.Lock()
	s.lis = lis
	s.connMu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		s.startConn(conn)
	}
}

// ListenAndServe listens on the TCP address and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// InProcess returns a Client connected to the server through an
// in-memory synchronous pipe — the same codec, connection handling and
// admission path as TCP, no sockets. It is the transport of the e2e
// suite. The returned client must be closed by the caller; a client
// obtained after Shutdown has begun receives io errors.
func (s *Server) InProcess() *Client {
	server, client := net.Pipe()
	if !s.startConn(server) {
		client.Close()
	}
	return NewClient(client)
}

// Draining reports whether Shutdown has begun (new work is being
// rejected with StatusDraining).
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// Shutdown gracefully drains the server: it stops accepting
// connections and requests (new frames are rejected with
// StatusDraining), lets every admitted frame detect and respond, then
// closes the remaining connections and the worker detectors. It
// returns nil on a complete drain, or ctx's error if the context
// expires first (workers keep draining in the background; connections
// are then closed on the spot so readers unblock).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		return nil
	}
	s.connMu.Lock()
	if s.lis != nil {
		s.lis.Close()
	}
	s.connMu.Unlock()

	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	// No admitter can be mid-enqueue past this point: close the queues
	// so the workers drain the backlog — every admitted task is either
	// in runnable or in a busy user's pending chain, and workers drain
	// whole chains before taking the next runnable head — and exit.
	for _, sh := range s.shards {
		close(sh.runnable)
	}

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// All drained responses are written; unblock the connection readers.
	s.connMu.Lock()
	conns := s.conns
	s.conns = nil
	s.connMu.Unlock()
	for c := range conns {
		c.Close()
	}
	if err != nil {
		return err
	}
	s.connWG.Wait()
	return nil
}
