package detector

import (
	"fmt"
	"math"

	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// FCSD is the fixed complexity sphere decoder of Barbero and Thompson
// [4]: the top L tree levels are fully expanded (every constellation
// symbol), the remaining Nt−L levels follow the single nearest-symbol
// child. The |Q|^L candidate paths are independent, which is what makes
// the scheme parallel — but the path count is locked to powers of the
// constellation order, the flexibility FlexCore removes.
type FCSD struct {
	treeState
	L   int
	ops OpCount
	sym []complex128
}

// NewFCSD returns an FCSD that fully expands l levels (l ≥ 0; l = 0
// degenerates to SIC over the FCSD ordering).
func NewFCSD(cons *constellation.Constellation, l int) *FCSD {
	if l < 0 {
		panic("detector: FCSD expansion depth must be ≥ 0")
	}
	return &FCSD{treeState: treeState{cons: cons}, L: l}
}

// Name implements Detector.
func (d *FCSD) Name() string { return fmt.Sprintf("FCSD(L=%d)", d.L) }

// NumPaths returns the number of parallel candidate paths |Q|^L.
func (d *FCSD) NumPaths() int {
	p := 1
	for i := 0; i < d.L; i++ {
		p *= d.cons.Size()
	}
	return p
}

// Prepare implements Detector using the FCSD channel ordering [4].
func (d *FCSD) Prepare(h *cmatrix.Matrix, sigma2 float64) error {
	if d.L > h.Cols {
		return fmt.Errorf("detector: FCSD L=%d exceeds %d streams", d.L, h.Cols)
	}
	d.qr = cmatrix.SortedQRFCSD(h, d.L)
	d.n = h.Cols
	d.ops.Prepares++
	muls := int64(4 * h.Rows * h.Cols * h.Cols)
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	if len(d.sym) < d.n {
		d.sym = make([]complex128, d.n)
	}
	return nil
}

// Detect implements Detector.
func (d *FCSD) Detect(y []complex128) []int {
	ybar := d.qr.Ybar(y)
	d.ops.RealMuls += int64(4 * len(y) * d.n)
	d.ops.FLOPs += int64(8 * len(y) * d.n)
	d.ops.Detections++

	best := make([]int, d.n)
	bestPED := math.Inf(1)
	cur := make([]int, d.n)
	// Depth-first over the fully expanded prefix so the interference
	// partial sums are shared across sibling paths, then greedy descent.
	var walk func(row int, ped float64)
	walk = func(row int, ped float64) {
		expanded := d.n - 1 - row // levels already fixed above this row
		if expanded < d.L {
			rii := real(d.qr.R.At(row, row))
			b := cancel(d.qr.R, ybar, d.sym, row)
			d.ops.Nodes++
			d.ops.RealMuls += int64(4 * (d.n - 1 - row))
			for k, q := range d.cons.Points() {
				inc := pedIncrement(b, rii, q)
				d.ops.RealMuls += 2
				d.ops.FLOPs += 7
				cur[row] = k
				d.sym[row] = q
				if row == 0 {
					if ped+inc < bestPED {
						bestPED = ped + inc
						copy(best, cur)
					}
					continue
				}
				walk(row-1, ped+inc)
			}
			return
		}
		// Greedy tail: slice the effective received point at each level.
		for i := row; i >= 0; i-- {
			rii := real(d.qr.R.At(i, i))
			b := cancel(d.qr.R, ybar, d.sym, i)
			var z complex128
			if rii > 0 {
				z = b / complex(rii, 0)
			}
			k := d.cons.Slice(z)
			cur[i] = k
			d.sym[i] = d.cons.Point(k)
			ped += pedIncrement(b, rii, d.cons.Point(k))
			d.ops.Nodes++
			d.ops.RealMuls += int64(4*(d.n-1-i)) + 4
			d.ops.FLOPs += int64(8*(d.n-1-i)) + 10
			if ped >= bestPED {
				// The remaining levels cannot reduce the distance; this
				// candidate path already lost.
				return
			}
		}
		if ped < bestPED {
			bestPED = ped
			copy(best, cur)
		}
	}
	walk(d.n-1, 0)
	return d.qr.UnpermuteInts(best)
}

// OpCount implements Detector.
func (d *FCSD) OpCount() OpCount { return d.ops }
