package detector

import (
	"math"
	"math/rand/v2"
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

func newRng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed*0x9e37)) }

// randSymbols draws nt random symbol indices.
func randSymbols(rng *rand.Rand, cons *constellation.Constellation, nt int) []int {
	s := make([]int, nt)
	for i := range s {
		s[i] = rng.IntN(cons.Size())
	}
	return s
}

// transmit builds y = H·s + n for symbol indices s.
func transmit(rng *rand.Rand, h *cmatrix.Matrix, cons *constellation.Constellation, s []int, sigma2 float64) []complex128 {
	x := make([]complex128, len(s))
	for i, k := range s {
		x[i] = cons.Point(k)
	}
	y := h.MulVec(x)
	if sigma2 > 0 {
		channel.AddAWGN(rng, y, sigma2)
	}
	return y
}

// exhaustiveML brute-forces argmin ||y − H·s||².
func exhaustiveML(h *cmatrix.Matrix, cons *constellation.Constellation, y []complex128) []int {
	nt := h.Cols
	m := cons.Size()
	total := 1
	for i := 0; i < nt; i++ {
		total *= m
	}
	best := make([]int, nt)
	bestD := math.Inf(1)
	idx := make([]int, nt)
	x := make([]complex128, nt)
	for c := 0; c < total; c++ {
		v := c
		for i := 0; i < nt; i++ {
			idx[i] = v % m
			x[i] = cons.Point(idx[i])
			v /= m
		}
		d := cmatrix.Norm2(cmatrix.SubVec(y, h.MulVec(x)))
		if d < bestD {
			bestD = d
			copy(best, idx)
		}
	}
	return best
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allDetectors builds one of each detector for the constellation.
func allDetectors(cons *constellation.Constellation) []Detector {
	return []Detector{
		NewZF(cons),
		NewMMSE(cons),
		NewSIC(cons),
		NewSphere(cons),
		NewFCSD(cons, 1),
		NewKBest(cons, 8),
		NewTrellis(cons),
	}
}

func TestAllDetectorsNoiselessIdentityChannel(t *testing.T) {
	rng := newRng(101)
	for _, m := range []int{4, 16, 64} {
		cons := constellation.MustNew(m)
		h := cmatrix.Identity(4)
		for _, det := range allDetectors(cons) {
			if err := det.Prepare(h, 1e-4); err != nil {
				t.Fatalf("%s: %v", det.Name(), err)
			}
			for trial := 0; trial < 20; trial++ {
				s := randSymbols(rng, cons, 4)
				y := transmit(rng, h, cons, s, 0)
				if got := det.Detect(y); !equalInts(got, s) {
					t.Fatalf("%s on %d-QAM: got %v want %v", det.Name(), m, got, s)
				}
			}
		}
	}
}

func TestNonlinearDetectorsNoiselessRandomChannel(t *testing.T) {
	rng := newRng(102)
	cons := constellation.MustNew(16)
	for trial := 0; trial < 10; trial++ {
		h := channel.Rayleigh(rng, 6, 6)
		for _, det := range []Detector{NewSphere(cons), NewFCSD(cons, 2), NewKBest(cons, 16)} {
			if err := det.Prepare(h, 1e-6); err != nil {
				t.Fatal(err)
			}
			s := randSymbols(rng, cons, 6)
			y := transmit(rng, h, cons, s, 0)
			if got := det.Detect(y); !equalInts(got, s) {
				t.Fatalf("%s: noiseless recovery failed: got %v want %v", det.Name(), got, s)
			}
		}
	}
}

func TestSphereIsExactML(t *testing.T) {
	rng := newRng(103)
	cons := constellation.MustNew(4)
	for trial := 0; trial < 200; trial++ {
		h := channel.Rayleigh(rng, 3, 3)
		sph := NewSphere(cons)
		if err := sph.Prepare(h, 0.5); err != nil {
			t.Fatal(err)
		}
		s := randSymbols(rng, cons, 3)
		y := transmit(rng, h, cons, s, 0.5) // heavy noise: hard instances
		got := sph.Detect(y)
		want := exhaustiveML(h, cons, y)
		// ML solutions must have identical metric (allow metric ties).
		toVec := func(idx []int) []complex128 {
			x := make([]complex128, len(idx))
			for i, k := range idx {
				x[i] = cons.Point(k)
			}
			return x
		}
		dg := cmatrix.Norm2(cmatrix.SubVec(y, h.MulVec(toVec(got))))
		dw := cmatrix.Norm2(cmatrix.SubVec(y, h.MulVec(toVec(want))))
		if dg > dw+1e-9 {
			t.Fatalf("trial %d: sphere metric %v worse than exhaustive %v", trial, dg, dw)
		}
	}
}

func TestFCSDFullExpansionIsML(t *testing.T) {
	rng := newRng(104)
	cons := constellation.MustNew(4)
	for trial := 0; trial < 50; trial++ {
		h := channel.Rayleigh(rng, 3, 3)
		f := NewFCSD(cons, 3) // |Q|^Nt paths = exhaustive
		if err := f.Prepare(h, 0.3); err != nil {
			t.Fatal(err)
		}
		s := randSymbols(rng, cons, 3)
		y := transmit(rng, h, cons, s, 0.3)
		got := f.Detect(y)
		want := exhaustiveML(h, cons, y)
		if !equalInts(got, want) {
			// Allow metric ties.
			toVec := func(idx []int) []complex128 {
				x := make([]complex128, len(idx))
				for i, k := range idx {
					x[i] = cons.Point(k)
				}
				return x
			}
			dg := cmatrix.Norm2(cmatrix.SubVec(y, h.MulVec(toVec(got))))
			dw := cmatrix.Norm2(cmatrix.SubVec(y, h.MulVec(toVec(want))))
			if math.Abs(dg-dw) > 1e-9 {
				t.Fatalf("trial %d: FCSD full expansion not ML: %v vs %v", trial, got, want)
			}
		}
	}
}

func TestFCSDNumPaths(t *testing.T) {
	cons := constellation.MustNew(16)
	if NewFCSD(cons, 1).NumPaths() != 16 {
		t.Fatal("L=1 paths")
	}
	if NewFCSD(cons, 2).NumPaths() != 256 {
		t.Fatal("L=2 paths")
	}
	f := NewFCSD(cons, 5)
	if err := f.Prepare(cmatrix.Identity(4), 0.1); err == nil {
		t.Fatal("L > Nt accepted")
	}
}

func TestKBestLargeKIsML(t *testing.T) {
	rng := newRng(105)
	cons := constellation.MustNew(4)
	for trial := 0; trial < 50; trial++ {
		h := channel.Rayleigh(rng, 3, 3)
		kb := NewKBest(cons, 64) // ≥ |Q|^Nt
		if err := kb.Prepare(h, 0.3); err != nil {
			t.Fatal(err)
		}
		s := randSymbols(rng, cons, 3)
		y := transmit(rng, h, cons, s, 0.3)
		got := kb.Detect(y)
		want := exhaustiveML(h, cons, y)
		toVec := func(idx []int) []complex128 {
			x := make([]complex128, len(idx))
			for i, k := range idx {
				x[i] = cons.Point(k)
			}
			return x
		}
		dg := cmatrix.Norm2(cmatrix.SubVec(y, h.MulVec(toVec(got))))
		dw := cmatrix.Norm2(cmatrix.SubVec(y, h.MulVec(toVec(want))))
		if dg > dw+1e-9 {
			t.Fatalf("trial %d: K-best(64) worse than ML", trial)
		}
	}
}

// symbolErrorRate measures SER for a detector over random channels.
func symbolErrorRate(t *testing.T, det Detector, cons *constellation.Constellation, nt int, snrdB float64, trials int, seed uint64) float64 {
	t.Helper()
	rng := newRng(seed)
	sigma2 := channel.Sigma2FromSNRdB(snrdB, 1)
	errs, total := 0, 0
	for i := 0; i < trials; i++ {
		h := channel.Rayleigh(rng, nt, nt)
		if err := det.Prepare(h, sigma2); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 4; v++ {
			s := randSymbols(rng, cons, nt)
			y := transmit(rng, h, cons, s, sigma2)
			got := det.Detect(y)
			for j := range s {
				if got[j] != s[j] {
					errs++
				}
				total++
			}
		}
	}
	return float64(errs) / float64(total)
}

func TestDetectorHierarchySER(t *testing.T) {
	// At a moderate SNR on square channels the paper's ordering must
	// hold: ML ≤ FCSD(1) and every sphere-family detector beats MMSE by a
	// clear margin. Seeds are fixed so the test is deterministic.
	if testing.Short() {
		t.Skip("statistical test")
	}
	cons := constellation.MustNew(16)
	const nt, snr, trials, seed = 4, 14, 400, 106
	serML := symbolErrorRate(t, NewSphere(cons), cons, nt, snr, trials, seed)
	serFCSD := symbolErrorRate(t, NewFCSD(cons, 1), cons, nt, snr, trials, seed)
	serTrellis := symbolErrorRate(t, NewTrellis(cons), cons, nt, snr, trials, seed)
	serSIC := symbolErrorRate(t, NewSIC(cons), cons, nt, snr, trials, seed)
	serMMSE := symbolErrorRate(t, NewMMSE(cons), cons, nt, snr, trials, seed)
	t.Logf("SER: ML=%.4f FCSD=%.4f Trellis=%.4f SIC=%.4f MMSE=%.4f", serML, serFCSD, serTrellis, serSIC, serMMSE)
	if serML > serFCSD*1.05+1e-4 {
		t.Fatalf("ML (%.4f) worse than FCSD (%.4f)", serML, serFCSD)
	}
	if serFCSD > serMMSE {
		t.Fatalf("FCSD (%.4f) worse than MMSE (%.4f)", serFCSD, serMMSE)
	}
	if serML > 0.5*serMMSE {
		t.Fatalf("ML (%.4f) not clearly better than MMSE (%.4f)", serML, serMMSE)
	}
	if serTrellis > serMMSE {
		t.Fatalf("Trellis (%.4f) worse than MMSE (%.4f)", serTrellis, serMMSE)
	}
}

func TestOpCountersAdvance(t *testing.T) {
	rng := newRng(107)
	cons := constellation.MustNew(16)
	h := channel.Rayleigh(rng, 4, 4)
	for _, det := range allDetectors(cons) {
		if err := det.Prepare(h, 0.1); err != nil {
			t.Fatal(err)
		}
		before := det.OpCount()
		s := randSymbols(rng, cons, 4)
		det.Detect(transmit(rng, h, cons, s, 0.1))
		after := det.OpCount()
		if after.Detections != before.Detections+1 {
			t.Fatalf("%s: detections not counted", det.Name())
		}
		if after.RealMuls <= before.RealMuls {
			t.Fatalf("%s: multiplications not counted", det.Name())
		}
		if after.Prepares != 1 {
			t.Fatalf("%s: prepares not counted", det.Name())
		}
	}
}

func TestOpCountAddAndPerDetection(t *testing.T) {
	a := OpCount{RealMuls: 10, FLOPs: 20, Nodes: 2, Detections: 2, Prepares: 1}
	b := OpCount{RealMuls: 6, FLOPs: 4, Nodes: 1, Detections: 1}
	a.Add(b)
	if a.RealMuls != 16 || a.Detections != 3 {
		t.Fatal("Add wrong")
	}
	pd := a.PerDetection()
	if pd.RealMuls != 16/3 || pd.Detections != 1 {
		t.Fatal("PerDetection wrong")
	}
	if (OpCount{}).PerDetection() != (OpCount{}) {
		t.Fatal("empty PerDetection")
	}
}

func TestSphereMaxNodesCapStillReturns(t *testing.T) {
	rng := newRng(108)
	cons := constellation.MustNew(64)
	h := channel.Rayleigh(rng, 8, 8)
	sph := NewSphere(cons)
	sph.MaxNodes = 16
	if err := sph.Prepare(h, 1.0); err != nil {
		t.Fatal(err)
	}
	s := randSymbols(rng, cons, 8)
	y := transmit(rng, h, cons, s, 1.0)
	got := sph.Detect(y)
	if len(got) != 8 {
		t.Fatal("capped sphere returned no solution")
	}
	for _, k := range got {
		if k < 0 || k >= 64 {
			t.Fatalf("invalid symbol index %d", k)
		}
	}
}

func TestDetectorsReusableAcrossChannels(t *testing.T) {
	// Prepare/Detect must be callable repeatedly, including shrinking the
	// system size (scratch-buffer reuse).
	rng := newRng(109)
	cons := constellation.MustNew(16)
	for _, det := range allDetectors(cons) {
		for _, nt := range []int{8, 4, 6} {
			h := channel.Rayleigh(rng, nt, nt)
			if err := det.Prepare(h, 1e-6); err != nil {
				t.Fatalf("%s nt=%d: %v", det.Name(), nt, err)
			}
			s := randSymbols(rng, cons, nt)
			y := transmit(rng, h, cons, s, 0)
			got := det.Detect(y)
			if len(got) != nt {
				t.Fatalf("%s nt=%d: wrong output size", det.Name(), nt)
			}
		}
	}
}

func TestLinearZFEqualsMMSEAtHighSNR(t *testing.T) {
	rng := newRng(110)
	cons := constellation.MustNew(16)
	h := channel.Rayleigh(rng, 6, 6)
	zf := NewZF(cons)
	mm := NewMMSE(cons)
	if err := zf.Prepare(h, 1e-9); err != nil {
		t.Fatal(err)
	}
	if err := mm.Prepare(h, 1e-9); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		s := randSymbols(rng, cons, 6)
		y := transmit(rng, h, cons, s, 1e-9)
		if !equalInts(zf.Detect(y), mm.Detect(y)) {
			t.Fatal("ZF and MMSE disagree at negligible noise")
		}
	}
}

func BenchmarkSphere8x8_64QAM(b *testing.B) {
	rng := newRng(111)
	cons := constellation.MustNew(64)
	sigma2 := channel.Sigma2FromSNRdB(24, 1)
	h := channel.Rayleigh(rng, 8, 8)
	sph := NewSphere(cons)
	if err := sph.Prepare(h, sigma2); err != nil {
		b.Fatal(err)
	}
	s := randSymbols(rng, cons, 8)
	y := transmit(rng, h, cons, s, sigma2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sph.Detect(y)
	}
}

func BenchmarkFCSD12x12_64QAM_L1(b *testing.B) {
	rng := newRng(112)
	cons := constellation.MustNew(64)
	sigma2 := channel.Sigma2FromSNRdB(22, 1)
	h := channel.Rayleigh(rng, 12, 12)
	f := NewFCSD(cons, 1)
	if err := f.Prepare(h, sigma2); err != nil {
		b.Fatal(err)
	}
	s := randSymbols(rng, cons, 12)
	y := transmit(rng, h, cons, s, sigma2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Detect(y)
	}
}

func TestLRZFNoiselessRecovery(t *testing.T) {
	rng := newRng(120)
	for _, m := range []int{4, 16, 64} {
		cons := constellation.MustNew(m)
		lr := NewLRZF(cons)
		for trial := 0; trial < 10; trial++ {
			h := channel.Rayleigh(rng, 6, 6)
			if err := lr.Prepare(h, 1e-9); err != nil {
				t.Fatal(err)
			}
			s := randSymbols(rng, cons, 6)
			y := transmit(rng, h, cons, s, 0)
			if got := lr.Detect(y); !equalInts(got, s) {
				t.Fatalf("%d-QAM trial %d: LR-ZF noiseless recovery failed: %v vs %v", m, trial, got, s)
			}
		}
	}
}

func TestLRZFBeatsPlainZF(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// Lattice reduction collects receive diversity plain ZF lacks: at a
	// moderate SNR on square channels its SER must be clearly lower.
	cons := constellation.MustNew(16)
	const nt, snr, trials, seed = 4, 14, 400, 121
	serLR := symbolErrorRate(t, NewLRZF(cons), cons, nt, snr, trials, seed)
	serZF := symbolErrorRate(t, NewZF(cons), cons, nt, snr, trials, seed)
	t.Logf("SER: LR-ZF=%.4f ZF=%.4f", serLR, serZF)
	if serLR >= serZF {
		t.Fatalf("LR-ZF (%.4f) not better than ZF (%.4f)", serLR, serZF)
	}
}
