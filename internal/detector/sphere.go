package detector

import (
	"math"
	"sort"

	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// Sphere is the exact maximum-likelihood depth-first sphere decoder with
// Schnorr–Euchner enumeration — the paper's optimal reference detector
// (Geosphere, Nikitopoulos et al. [32], follows the same strategy). The
// first path the search follows is exactly the SIC (Babai) solution, so
// no separate initial radius is needed; children at every node are
// visited in ascending partial-distance order, which allows pruning an
// entire subtree as soon as one child exceeds the current radius.
type Sphere struct {
	treeState
	// MaxNodes bounds the visited-node count per Detect as a safety valve
	// for pathologically conditioned channels or absurd observations
	// (without it, a far-out receive vector defeats all pruning and the
	// search enumerates |Q|^Nt leaves). When the bound trips, the best
	// leaf found so far is returned. NewSphere sets DefaultMaxNodes; set
	// 0 explicitly for a provably exhaustive (possibly very slow) search.
	MaxNodes int64
	ops      OpCount

	// Scratch reused across Detect calls.
	frames []sphereFrame
	sym    []complex128
	best   []int
	cur    []int
}

type sphereFrame struct {
	b       complex128
	pedBase float64
	order   []int
	dists   []float64
	next    int
}

// DefaultMaxNodes is NewSphere's per-detection node budget — orders of
// magnitude above what any calibrated operating point needs, while still
// guaranteeing termination on adversarial inputs.
const DefaultMaxNodes = 1 << 18

// NewSphere returns the exact ML detector.
func NewSphere(cons *constellation.Constellation) *Sphere {
	return &Sphere{treeState: treeState{cons: cons}, MaxNodes: DefaultMaxNodes}
}

// Name implements Detector.
func (d *Sphere) Name() string { return "ML" }

// Prepare implements Detector.
func (d *Sphere) Prepare(h *cmatrix.Matrix, sigma2 float64) error {
	d.qr = cmatrix.SortedQR(h, cmatrix.OrderSQRD)
	d.n = h.Cols
	d.ops.Prepares++
	muls := int64(4 * h.Rows * h.Cols * h.Cols)
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	if cap(d.frames) < d.n {
		d.frames = make([]sphereFrame, d.n)
		for i := range d.frames {
			d.frames[i].order = make([]int, d.cons.Size())
			d.frames[i].dists = make([]float64, d.cons.Size())
		}
		d.sym = make([]complex128, d.n)
		d.best = make([]int, d.n)
		d.cur = make([]int, d.n)
	}
	return nil
}

// enterFrame fills a frame for row i: the interference-cancelled
// observation and the exact ascending-distance candidate order.
func (d *Sphere) enterFrame(f *sphereFrame, ybar []complex128, i int, pedBase float64) {
	f.b = cancel(d.qr.R, ybar, d.sym, i)
	f.pedBase = pedBase
	f.next = 0
	rii := real(d.qr.R.At(i, i))
	pts := d.cons.Points()
	for k, q := range pts {
		f.order[k] = k
		f.dists[k] = pedIncrement(f.b, rii, q)
	}
	sort.Sort(&argSort{order: f.order, dists: f.dists})
	// Per-node cost: (n−1−i) complex MACs for the cancellation and |Q|
	// two-multiplication distance evaluations.
	muls := int64(4*(d.n-1-i) + 2*d.cons.Size())
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2*muls + int64(d.cons.Size())
	d.ops.Nodes++
}

// argSort sorts order by dists (both permuted together).
type argSort struct {
	order []int
	dists []float64
}

func (a *argSort) Len() int           { return len(a.order) }
func (a *argSort) Less(i, j int) bool { return a.dists[a.order[i]] < a.dists[a.order[j]] }
func (a *argSort) Swap(i, j int)      { a.order[i], a.order[j] = a.order[j], a.order[i] }

// Detect implements Detector. It returns the exact ML symbol vector
// (subject to MaxNodes).
func (d *Sphere) Detect(y []complex128) []int {
	ybar := d.qr.Ybar(y)
	d.ops.RealMuls += int64(4 * len(y) * d.n)
	d.ops.FLOPs += int64(8 * len(y) * d.n)
	d.ops.Detections++

	radius := math.Inf(1)
	nodesAtStart := d.ops.Nodes
	depth := 0 // frame index; row = n−1−depth
	d.enterFrame(&d.frames[0], ybar, d.n-1, 0)
	haveBest := false

	for depth >= 0 {
		if d.MaxNodes > 0 && d.ops.Nodes-nodesAtStart > d.MaxNodes && haveBest {
			break
		}
		f := &d.frames[depth]
		row := d.n - 1 - depth
		if f.next >= d.cons.Size() {
			depth--
			continue
		}
		cand := f.order[f.next]
		ped := f.pedBase + f.dists[cand]
		f.next++
		if ped >= radius {
			// Children are sorted: nothing further in this frame can win.
			depth--
			continue
		}
		d.cur[row] = cand
		d.sym[row] = d.cons.Point(cand)
		if row == 0 {
			radius = ped
			copy(d.best, d.cur)
			haveBest = true
			continue
		}
		depth++
		d.enterFrame(&d.frames[depth], ybar, row-1, ped)
	}
	out := make([]int, d.n)
	copy(out, d.best)
	return d.qr.UnpermuteInts(out)
}

// OpCount implements Detector.
func (d *Sphere) OpCount() OpCount { return d.ops }
