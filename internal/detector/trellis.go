package detector

import (
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// Trellis is the trellis-based fully-parallel detector of Wu et al. [50]
// ("A GPU implementation of a real-time MIMO detector"): the sphere
// decoding tree is flattened into a trellis whose stages are the tree
// levels and whose |Q| states per stage are the constellation symbols.
// One processing element per constellation point computes, at every
// stage, the partial Euclidean distances from all predecessor survivors
// and keeps the best — a Viterbi-style approximation of the tree search.
// The scheme therefore requires exactly |Q| processing elements and, as
// the paper stresses, cannot scale with more or fewer.
type Trellis struct {
	treeState
	ops OpCount
}

// NewTrellis returns the [50] baseline detector.
func NewTrellis(cons *constellation.Constellation) *Trellis {
	return &Trellis{treeState: treeState{cons: cons}}
}

// Name implements Detector.
func (d *Trellis) Name() string { return "Trellis[50]" }

// NumPaths returns the fixed processing-element requirement |Q|.
func (d *Trellis) NumPaths() int { return d.cons.Size() }

// Prepare implements Detector.
func (d *Trellis) Prepare(h *cmatrix.Matrix, sigma2 float64) error {
	d.qr = cmatrix.SortedQR(h, cmatrix.OrderSQRD)
	d.n = h.Cols
	d.ops.Prepares++
	muls := int64(4 * h.Rows * h.Cols * h.Cols)
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	return nil
}

type trellisPath struct {
	idx []int
	sym []complex128
	ped float64
}

// Detect implements Detector.
func (d *Trellis) Detect(y []complex128) []int {
	ybar := d.qr.Ybar(y)
	d.ops.RealMuls += int64(4 * len(y) * d.n)
	d.ops.FLOPs += int64(8 * len(y) * d.n)
	d.ops.Detections++

	m := d.cons.Size()
	pts := d.cons.Points()
	// Stage 1 (top row): one survivor per state.
	row := d.n - 1
	rii := real(d.qr.R.At(row, row))
	cur := make([]trellisPath, m)
	for k := range pts {
		idx := make([]int, d.n)
		sym := make([]complex128, d.n)
		idx[row], sym[row] = k, pts[k]
		cur[k] = trellisPath{idx: idx, sym: sym, ped: pedIncrement(ybar[row], rii, pts[k])}
		d.ops.RealMuls += 2
		d.ops.FLOPs += 7
	}
	d.ops.Nodes += int64(m)

	for row = d.n - 2; row >= 0; row-- {
		rii = real(d.qr.R.At(row, row))
		// Each predecessor's cancelled observation depends only on its own
		// surviving path.
		bs := make([]complex128, m)
		for q := range cur {
			bs[q] = cancel(d.qr.R, ybar, cur[q].sym, row)
			d.ops.RealMuls += int64(4 * (d.n - 1 - row))
		}
		next := make([]trellisPath, m)
		for kp := range pts { // next-stage state (PE kp)
			bestQ, bestPED := -1, 0.0
			for q := range cur {
				ped := cur[q].ped + pedIncrement(bs[q], rii, pts[kp])
				d.ops.RealMuls += 2
				d.ops.FLOPs += 7
				if bestQ < 0 || ped < bestPED {
					bestQ, bestPED = q, ped
				}
			}
			idx := append([]int(nil), cur[bestQ].idx...)
			sym := append([]complex128(nil), cur[bestQ].sym...)
			idx[row], sym[row] = kp, pts[kp]
			next[kp] = trellisPath{idx: idx, sym: sym, ped: bestPED}
		}
		cur = next
		d.ops.Nodes += int64(m)
	}
	best := 0
	for q := 1; q < m; q++ {
		if cur[q].ped < cur[best].ped {
			best = q
		}
	}
	return d.qr.UnpermuteInts(cur[best].idx)
}

// OpCount implements Detector.
func (d *Trellis) OpCount() OpCount { return d.ops }
