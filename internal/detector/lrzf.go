package detector

import (
	"math"

	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// LRZF is lattice-reduction-aided zero-forcing detection (paper §6,
// related work [15]): QAM symbols are an offset/scaled Gaussian-integer
// lattice, so detection can zero-force on a CLLL-reduced basis, round in
// the reduced domain and transform back. It collects the full receive
// diversity that plain ZF loses, at the cost of the strictly sequential
// O(Nt⁴) reduction the paper rules out for large MIMO APs.
type LRZF struct {
	cons *constellation.Constellation
	n    int
	// Reduced-basis pseudo-inverse and the unimodular transform.
	pinv   *cmatrix.Matrix
	trans  *cmatrix.Matrix
	offset []complex128
	ops    OpCount
}

// NewLRZF returns the lattice-reduction-aided ZF detector.
func NewLRZF(cons *constellation.Constellation) *LRZF {
	return &LRZF{cons: cons}
}

// Name implements Detector.
func (d *LRZF) Name() string { return "LR-ZF" }

// Prepare reduces the symbol-lattice generator G = 2·scale·H with CLLL
// and precomputes the reduced-basis ZF filter. The QAM alphabet is
// s = 2·scale·u − scale·(side−1)·(1+i)·1 with u ∈ {0..side−1}² per
// stream, so y = G·u + offset + n with offset = −scale(side−1)(1+i)·H·1.
func (d *LRZF) Prepare(h *cmatrix.Matrix, sigma2 float64) error {
	d.n = h.Cols
	scale := d.cons.Scale()
	g := h.Scale(complex(2*scale, 0))
	reduced, trans := cmatrix.CLLL(g, 0.75)
	pinv, err := cmatrix.PseudoInverseZF(reduced)
	if err != nil {
		return err
	}
	d.pinv = pinv
	d.trans = trans
	// offset = −scale(side−1)(1+i)·H·1.
	ones := make([]complex128, d.n)
	for i := range ones {
		ones[i] = 1
	}
	h1 := h.MulVec(ones)
	c := complex(-scale*float64(d.cons.Side()-1), -scale*float64(d.cons.Side()-1))
	d.offset = make([]complex128, len(h1))
	for i := range h1 {
		d.offset[i] = c * h1[i]
	}
	d.ops.Prepares++
	muls := int64(4 * d.n * d.n * d.n * d.n) // the O(Nt⁴) reduction cost class
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	return nil
}

// Detect implements Detector.
func (d *LRZF) Detect(y []complex128) []int {
	// Remove the alphabet offset so the observation lives on G·u.
	shifted := make([]complex128, len(y))
	for i := range y {
		shifted[i] = y[i] - d.offset[i]
	}
	z := d.pinv.MulVec(shifted)
	// Round in the reduced domain, transform back with T.
	for i := range z {
		z[i] = complex(math.Round(real(z[i])), math.Round(imag(z[i])))
	}
	u := d.trans.MulVec(z)
	out := make([]int, d.n)
	side := d.cons.Side()
	for i, v := range u {
		ix := clampInt(int(math.Round(real(v))), side)
		iy := clampInt(int(math.Round(imag(v))), side)
		out[i] = iy*side + ix
	}
	d.ops.Detections++
	muls := int64(4 * (d.pinv.Rows*d.pinv.Cols + d.n*d.n))
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	return out
}

func clampInt(v, side int) int {
	if v < 0 {
		return 0
	}
	if v >= side {
		return side - 1
	}
	return v
}

// OpCount implements Detector.
func (d *LRZF) OpCount() OpCount { return d.ops }
