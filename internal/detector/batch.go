package detector

import "flexcore/internal/cmatrix"

// BatchDetector is a Detector with an amortised multi-vector entry point.
// One DetectBatch call detects a whole burst of received vectors (for
// example every OFDM symbol of a packet on one subcarrier) under the
// current Prepare, letting implementations pay fan-out and scheduling
// costs once per burst instead of once per vector — the batch-level
// parallelism large-MIMO detectors get their throughput numbers from.
type BatchDetector interface {
	Detector
	// DetectBatch detects every vector of ys under the current Prepare
	// and returns one per-stream index slice per vector, in order. The
	// returned slices are owned by the detector and remain valid only
	// until its next Detect/DetectBatch call; callers must copy to
	// retain. All vectors must have the same length (the receive
	// antenna count of the prepared channel).
	//
	// Edge cases, pinned by the conformance suite: a nil or empty burst
	// returns an empty result without counting detections or panicking;
	// a burst of one is detected exactly like a single Detect; bursts
	// may grow or shrink freely between calls (implementations regrow
	// their arenas transparently); and implementations with a Close
	// method treat it as a quiescing point, not a terminal state — a
	// later DetectBatch restarts any released resources on demand.
	DetectBatch(ys [][]complex128) [][]int
}

// Batch adapts any Detector to a BatchDetector. Detectors with a native
// batch implementation are returned as-is; every other detector is
// wrapped in a sequential loop adapter that copies each Detect result
// into a reused arena, so the returned slices follow the same
// valid-until-next-call ownership contract as native implementations.
func Batch(d Detector) BatchDetector {
	if b, ok := d.(BatchDetector); ok {
		return b
	}
	return &loopBatch{d: d}
}

// loopBatch is the generic DetectBatch adapter: a plain loop over Detect
// with arena-backed result storage (zero steady-state allocations beyond
// whatever the wrapped detector's Detect itself allocates).
type loopBatch struct {
	d   Detector
	buf []int   // flat arena backing the result slices
	out [][]int // reused headers into buf
}

func (l *loopBatch) Name() string { return l.d.Name() }

//lint:ignore opcount pure adapter — the wrapped detector's Prepare does the accounting
func (l *loopBatch) Prepare(h *cmatrix.Matrix, sigma2 float64) error {
	return l.d.Prepare(h, sigma2)
}

//lint:ignore opcount pure adapter — the wrapped detector's Detect does the accounting
func (l *loopBatch) Detect(y []complex128) []int { return l.d.Detect(y) }

func (l *loopBatch) OpCount() OpCount { return l.d.OpCount() }

// Unwrap exposes the adapted detector (for optional-interface probing).
func (l *loopBatch) Unwrap() Detector { return l.d }

//lint:ignore opcount pure adapter — each looped Detect accounts in the wrapped detector
func (l *loopBatch) DetectBatch(ys [][]complex128) [][]int {
	if cap(l.out) < len(ys) {
		l.out = make([][]int, len(ys))
	}
	l.out = l.out[:len(ys)]
	for i, y := range ys {
		got := l.d.Detect(y)
		if i == 0 {
			// Streams per vector are fixed for one Prepare; size the
			// arena off the first result.
			if need := len(got) * len(ys); len(l.buf) < need {
				l.buf = make([]int, need)
			}
		}
		dst := l.buf[i*len(got) : (i+1)*len(got) : (i+1)*len(got)]
		copy(dst, got)
		l.out[i] = dst
	}
	return l.out
}
