// Package detector implements the MIMO detectors the FlexCore paper
// evaluates against: linear ZF and MMSE, ordered successive interference
// cancellation (SIC / V-BLAST), the exact maximum-likelihood depth-first
// sphere decoder (the paper's "ML"/Geosphere reference), the fixed
// complexity sphere decoder (FCSD), a K-best breadth-first decoder, and
// the trellis-based fully-parallel detector of Wu et al. [50].
//
// Every detector follows the same two-phase protocol: Prepare runs once
// per channel realisation (QR decompositions, filter inversions — the
// work the paper amortises across a packet), Detect runs once per
// received vector. Detect returns per-stream constellation symbol
// indices in the original (unpermuted) stream order.
package detector

import (
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// Detector is a two-phase MIMO detector.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Prepare performs channel-dependent preprocessing for channel h and
	// noise variance sigma2. It must be called before Detect and may be
	// called again for a new channel.
	Prepare(h *cmatrix.Matrix, sigma2 float64) error
	// Detect demultiplexes one received vector y into per-stream symbol
	// indices (original stream order).
	Detect(y []complex128) []int
	// OpCount returns cumulative operation counters since construction.
	OpCount() OpCount
}

// OpCount tracks arithmetic work in the units the paper reports.
type OpCount struct {
	// RealMuls counts real multiplications (the paper's Table 2 metric);
	// one complex×complex multiply contributes 4.
	RealMuls int64
	// FLOPs counts all floating-point operations (adds and multiplies),
	// the paper's Table 1 metric.
	FLOPs int64
	// Nodes counts tree nodes / candidate paths visited.
	Nodes int64
	// Detections counts Detect invocations.
	Detections int64
	// Prepares counts Prepare invocations.
	Prepares int64
}

// Add accumulates other into c.
func (c *OpCount) Add(other OpCount) {
	c.RealMuls += other.RealMuls
	c.FLOPs += other.FLOPs
	c.Nodes += other.Nodes
	c.Detections += other.Detections
	c.Prepares += other.Prepares
}

// PerDetection returns the average op counts per Detect call.
func (c OpCount) PerDetection() OpCount {
	if c.Detections == 0 {
		return OpCount{}
	}
	d := c.Detections
	return OpCount{
		RealMuls:   c.RealMuls / d,
		FLOPs:      c.FLOPs / d,
		Nodes:      c.Nodes / d,
		Detections: 1,
		Prepares:   c.Prepares,
	}
}

// treeState is the shared per-channel state of the tree-search detectors:
// a (sorted) QR decomposition and the constellation.
type treeState struct {
	qr   *cmatrix.QRResult
	cons *constellation.Constellation
	n    int // number of streams
}

// pedIncrement and cancel are the two scalar kernels every tree-search
// detector shares; the single implementation lives in cmatrix
// (CancelRow / PEDIncrement) so the arithmetic is stated exactly once
// across this package and internal/core.
func pedIncrement(b complex128, rii float64, q complex128) float64 {
	return cmatrix.PEDIncrement(b, rii, q)
}

func cancel(r *cmatrix.Matrix, ybar []complex128, sym []complex128, i int) complex128 {
	return cmatrix.CancelRow(r, ybar, sym, i)
}
