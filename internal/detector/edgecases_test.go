package detector

import (
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// TestDetectorsSurviveZeroChannel injects an all-zero channel: linear
// detectors must report the singularity, tree-search detectors must
// terminate and return *some* valid symbol vector (garbage is fine,
// hangs and panics are not).
func TestDetectorsSurviveZeroChannel(t *testing.T) {
	cons := constellation.MustNew(16)
	h := cmatrix.New(4, 4)
	y := []complex128{1, -1, 0.5, 0.25i}

	if err := NewZF(cons).Prepare(h, 0.1); err == nil {
		t.Fatal("ZF accepted a singular channel")
	}
	if err := NewLRZF(cons).Prepare(h, 0.1); err == nil {
		t.Fatal("LR-ZF accepted a singular channel")
	}
	// MMSE is regularised and must survive.
	mm := NewMMSE(cons)
	if err := mm.Prepare(h, 0.1); err != nil {
		t.Fatalf("MMSE rejected a singular channel: %v", err)
	}
	checkOut(t, "MMSE", mm.Detect(y), 4, cons.Size())

	for _, det := range []Detector{NewSIC(cons), NewSphere(cons), NewFCSD(cons, 1), NewKBest(cons, 4), NewTrellis(cons)} {
		if err := det.Prepare(h, 0.1); err != nil {
			t.Fatalf("%s rejected the zero channel: %v", det.Name(), err)
		}
		checkOut(t, det.Name(), det.Detect(y), 4, cons.Size())
	}
}

// TestDetectorsSurviveRankDeficientChannel repeats with two identical
// user columns (rank deficiency without being all-zero).
func TestDetectorsSurviveRankDeficientChannel(t *testing.T) {
	rng := channel.NewRNG(601)
	cons := constellation.MustNew(16)
	h := channel.Rayleigh(rng, 4, 4)
	for i := 0; i < 4; i++ {
		h.Set(i, 1, h.At(i, 0))
	}
	y := h.MulVec([]complex128{0.3, -0.3, 0.1i, 0.2})
	for _, det := range []Detector{NewMMSE(cons), NewSIC(cons), NewSphere(cons), NewFCSD(cons, 1), NewTrellis(cons)} {
		if err := det.Prepare(h, 0.1); err != nil {
			t.Fatalf("%s rejected the rank-deficient channel: %v", det.Name(), err)
		}
		checkOut(t, det.Name(), det.Detect(y), 4, cons.Size())
	}
}

// TestDetectorsHugeReceiveVector stresses the numeric range: a received
// vector far outside any plausible constellation image must not panic
// or produce out-of-range indices.
func TestDetectorsHugeReceiveVector(t *testing.T) {
	rng := channel.NewRNG(602)
	cons := constellation.MustNew(64)
	h := channel.Rayleigh(rng, 6, 6)
	y := make([]complex128, 6)
	for i := range y {
		y[i] = complex(1e6, -1e6)
	}
	for _, det := range allDetectors(cons) {
		if err := det.Prepare(h, 0.1); err != nil {
			t.Fatal(err)
		}
		checkOut(t, det.Name(), det.Detect(y), 6, cons.Size())
	}
}

func checkOut(t *testing.T, name string, got []int, n, m int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("%s: output length %d", name, len(got))
	}
	for i, v := range got {
		if v < 0 || v >= m {
			t.Fatalf("%s: symbol index %d out of range at stream %d", name, v, i)
		}
	}
}
