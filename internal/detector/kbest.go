package detector

import (
	"fmt"
	"sort"

	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// KBest is the breadth-first K-best sphere decoder (related work the
// paper contrasts with: a fixed, per-level-synchronised form of
// parallelism). At every tree level only the K partial paths with the
// smallest partial Euclidean distances survive.
type KBest struct {
	treeState
	K   int
	ops OpCount
}

// NewKBest returns a K-best detector with K survivors per level.
func NewKBest(cons *constellation.Constellation, k int) *KBest {
	if k < 1 {
		panic("detector: K must be ≥ 1")
	}
	return &KBest{treeState: treeState{cons: cons}, K: k}
}

// Name implements Detector.
func (d *KBest) Name() string { return fmt.Sprintf("KBest(K=%d)", d.K) }

// Prepare implements Detector.
func (d *KBest) Prepare(h *cmatrix.Matrix, sigma2 float64) error {
	d.qr = cmatrix.SortedQR(h, cmatrix.OrderSQRD)
	d.n = h.Cols
	d.ops.Prepares++
	muls := int64(4 * h.Rows * h.Cols * h.Cols)
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	return nil
}

type kbPath struct {
	idx []int
	sym []complex128
	ped float64
}

// Detect implements Detector.
func (d *KBest) Detect(y []complex128) []int {
	ybar := d.qr.Ybar(y)
	d.ops.RealMuls += int64(4 * len(y) * d.n)
	d.ops.FLOPs += int64(8 * len(y) * d.n)
	d.ops.Detections++

	m := d.cons.Size()
	survivors := []kbPath{{idx: make([]int, d.n), sym: make([]complex128, d.n)}}
	for row := d.n - 1; row >= 0; row-- {
		rii := real(d.qr.R.At(row, row))
		next := make([]kbPath, 0, len(survivors)*m)
		for _, p := range survivors {
			b := cancel(d.qr.R, ybar, p.sym, row)
			d.ops.RealMuls += int64(4 * (d.n - 1 - row))
			d.ops.Nodes++
			for k, q := range d.cons.Points() {
				inc := pedIncrement(b, rii, q)
				d.ops.RealMuls += 2
				d.ops.FLOPs += 7
				child := kbPath{
					idx: append([]int(nil), p.idx...),
					sym: append([]complex128(nil), p.sym...),
					ped: p.ped + inc,
				}
				child.idx[row] = k
				child.sym[row] = q
				next = append(next, child)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].ped < next[j].ped })
		if len(next) > d.K {
			next = next[:d.K]
		}
		survivors = next
	}
	return d.qr.UnpermuteInts(survivors[0].idx)
}

// OpCount implements Detector.
func (d *KBest) OpCount() OpCount { return d.ops }
