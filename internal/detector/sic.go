package detector

import (
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// SIC is the ordered successive interference cancellation detector
// (V-BLAST, Wolniansky et al. [47]) realised through the sorted QR
// decomposition: streams are detected from the last factored column
// upwards, slicing each and cancelling its contribution. The paper points
// out it is "essentially a single-path FlexCore".
type SIC struct {
	treeState
	ops OpCount
}

// NewSIC returns an ordered ZF-SIC detector.
func NewSIC(cons *constellation.Constellation) *SIC {
	return &SIC{treeState: treeState{cons: cons}}
}

// Name implements Detector.
func (d *SIC) Name() string { return "SIC" }

// Prepare computes the SQRD-ordered QR decomposition.
func (d *SIC) Prepare(h *cmatrix.Matrix, sigma2 float64) error {
	d.qr = cmatrix.SortedQR(h, cmatrix.OrderSQRD)
	d.n = h.Cols
	d.ops.Prepares++
	muls := int64(4 * h.Rows * h.Cols * h.Cols) // MGS work
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	return nil
}

// Detect implements Detector.
func (d *SIC) Detect(y []complex128) []int {
	ybar := d.qr.Ybar(y)
	sym := make([]complex128, d.n)
	idx := make([]int, d.n)
	for i := d.n - 1; i >= 0; i-- {
		b := cancel(d.qr.R, ybar, sym, i)
		rii := real(d.qr.R.At(i, i))
		var z complex128
		if rii > 0 {
			z = b / complex(rii, 0)
		}
		idx[i] = d.cons.Slice(z)
		sym[i] = d.cons.Point(idx[i])
	}
	d.ops.Detections++
	// ȳ rotation + per-level cancellation.
	muls := int64(4*len(y)*d.n) + int64(4*d.n*(d.n-1)/2+2*d.n)
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	d.ops.Nodes += int64(d.n)
	return d.qr.UnpermuteInts(idx)
}

// OpCount implements Detector.
func (d *SIC) OpCount() OpCount { return d.ops }
