package detector

import (
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// Linear is a linear filter-and-slice detector (ZF or MMSE). The paper
// uses MMSE as the linear baseline (Argos, BigStation, SAM all use linear
// detection); ZF is included for completeness.
type Linear struct {
	cons *constellation.Constellation
	mmse bool
	w    *cmatrix.Matrix
	ops  OpCount
	nt   int
}

// NewZF returns a zero-forcing detector.
func NewZF(cons *constellation.Constellation) *Linear {
	return &Linear{cons: cons, mmse: false}
}

// NewMMSE returns a linear MMSE detector.
func NewMMSE(cons *constellation.Constellation) *Linear {
	return &Linear{cons: cons, mmse: true}
}

// Name implements Detector.
func (d *Linear) Name() string {
	if d.mmse {
		return "MMSE"
	}
	return "ZF"
}

// Prepare computes the linear filter for the channel.
func (d *Linear) Prepare(h *cmatrix.Matrix, sigma2 float64) error {
	var err error
	if d.mmse {
		d.w, err = cmatrix.MMSEFilter(h, sigma2, 1)
	} else {
		d.w, err = cmatrix.PseudoInverseZF(h)
	}
	if err != nil {
		return err
	}
	d.nt = h.Cols
	d.ops.Prepares++
	// Filter construction: Gram matrix (nt²·nr complex MACs), inversion
	// (≈nt³), product (nt²·nr) — count real multiplications (×4).
	nr := int64(h.Rows)
	nt := int64(h.Cols)
	muls := 4 * (nt*nt*nr + nt*nt*nt + nt*nt*nr)
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	return nil
}

// Detect filters and slices.
func (d *Linear) Detect(y []complex128) []int {
	x := d.w.MulVec(y)
	out := make([]int, d.nt)
	for i, v := range x {
		out[i] = d.cons.Slice(v)
	}
	d.ops.Detections++
	muls := int64(4 * d.w.Rows * d.w.Cols)
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	return out
}

// OpCount implements Detector.
func (d *Linear) OpCount() OpCount { return d.ops }
