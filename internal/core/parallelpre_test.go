package core

import (
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

func TestFindPathsParallelBatchOneMatchesSequential(t *testing.T) {
	m := testModel(t, 64, []float64{0.5, 1.0, 1.5, 0.8, 1.2, 0.9}, 18)
	seq, _ := FindPaths(m, 128, 0)
	par, _, rounds := FindPathsParallel(m, 128, 1)
	if rounds != 128 {
		t.Fatalf("batch-1 rounds %d, want 128", rounds)
	}
	if len(par) != len(seq) {
		t.Fatalf("path counts differ: %d vs %d", len(par), len(seq))
	}
	for i := range seq {
		if key(seq[i].Ranks) != key(par[i].Ranks) {
			t.Fatalf("batch-1 diverges from sequential at %d", i)
		}
	}
}

func TestFindPathsParallelCoverage(t *testing.T) {
	// The paper's claim (§3.1.1): parallel expansion loses negligible
	// *throughput* when N_PE / batch ≥ 10. In the selection model,
	// throughput is driven by the cumulative probability Σ Pc of the
	// selected set, so the batched set must cover ≥ 97 % of the
	// sequential set's probability mass (the divergent picks are the
	// borderline, lowest-probability paths).
	rng := newRng(411)
	cons := constellation.MustNew(64)
	sigma2 := channel.Sigma2FromSNRdB(18, 1)
	const nPE = 128
	for trial := 0; trial < 10; trial++ {
		h := channel.Rayleigh(rng, 12, 12)
		qr := cmatrix.SortedQR(h, cmatrix.OrderSQRD)
		m := NewModel(qr.R, sigma2, cons)
		seq, seqStats := FindPaths(m, nPE, 0)
		par, parStats, rounds := FindPathsParallel(m, nPE, nPE/10)
		if rounds >= nPE {
			t.Fatalf("batching did not reduce rounds: %d", rounds)
		}
		if len(par) != len(seq) {
			t.Fatalf("path counts differ: %d vs %d", len(par), len(seq))
		}
		if parStats.CumulativeProb < 0.97*seqStats.CumulativeProb {
			t.Fatalf("trial %d: batched coverage %.4f below sequential %.4f",
				trial, parStats.CumulativeProb, seqStats.CumulativeProb)
		}
	}
}

func TestFindPathsParallelLatencyReduction(t *testing.T) {
	m := testModel(t, 64, []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, 20)
	_, _, r1 := FindPathsParallel(m, 256, 1)
	_, _, r16 := FindPathsParallel(m, 256, 16)
	if r16*10 > r1 {
		t.Fatalf("batch-16 rounds %d not ≈16× below batch-1 %d", r16, r1)
	}
}

func TestFindPathsParallelRespectsNPE(t *testing.T) {
	m := testModel(t, 4, []float64{1, 1}, 8)
	paths, _, _ := FindPathsParallel(m, 1000, 8)
	if len(paths) != 16 {
		t.Fatalf("%d paths, want all 16", len(paths))
	}
	seen := map[string]bool{}
	for _, p := range paths {
		k := key(p.Ranks)
		if seen[k] {
			t.Fatalf("duplicate %v", p.Ranks)
		}
		seen[k] = true
	}
}
