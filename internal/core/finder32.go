package core

import (
	"flexcore/internal/kernel32"
)

// pathFinder32 is the SoA backend's pre-processing search pool: the
// same §3.1.1 best-first expansion as pathFinder, restated in the
// lazy-sibling form classic to top-k enumeration. Where the eager
// search pushes every child of an expanded node (up to Nt per
// expansion), this one orders each node's children by log Pe through a
// per-search level permutation and pushes exactly two candidates per
// extraction — the extracted node's next sibling and the new path's
// first child. Any deferred candidate's key is bounded by the key of
// the sibling or parent that defers it, so the extraction sequence is
// the same descending-probability order as the eager search; only the
// FIFO order among exactly-tied keys can differ. The heap therefore
// never exceeds N_PE+1 packed 16-byte nodes — below the paper's |L| ≤
// N_PE trim bound without ever running a trim.
//
// The selected position vectors are emitted into the same Path structs;
// ranks are exact integers either way, only LogP carries float32
// precision, so the downstream machinery — coherence cache, frame
// slots, a-FlexCore stats — is backend-agnostic. RealMuls counts the
// probability multiplies this search actually performs (root product
// plus one per generated candidate), which is genuinely fewer than the
// eager search's — that is the point.
//
// The returned paths alias the finder's arenas and stay valid until its
// next find call. A finder is not safe for concurrent use.
type pathFinder32 struct {
	heap    candHeap32
	resBuf  []int // result arena, cap × n
	paths   []Path
	logPe32 []float32 // per-level log Pe, float32
	ord     []int16   // levels sorted by descending logPe (ties: ascending level)
	lp      []float32 // per-emitted-path log-probability (float32, no double rounding)
	li      []int16   // per-emitted-path lastInc (duplicate-suppression bound)
	n, cap  int
}

// ensure grows the finder's arenas for an n-level, nPE-path search.
func (f *pathFinder32) ensure(n, nPE int) {
	if f.n != n || f.cap < nPE {
		f.n = n
		f.cap = nPE
		f.resBuf = make([]int, nPE*n)
		f.paths = make([]Path, 0, nPE)
		// Each extraction pushes at most two nodes and pops one, so the
		// heap never exceeds nPE+1 entries.
		f.heap = make(candHeap32, 0, nPE+2)
		f.lp = make([]float32, 0, nPE)
		f.li = make([]int16, 0, nPE)
	}
	if cap(f.logPe32) < n {
		f.logPe32 = make([]float32, n)
		f.ord = make([]int16, n)
	}
	f.logPe32 = f.logPe32[:n]
	f.ord = f.ord[:n]
	f.heap = f.heap[:0]
	f.paths = f.paths[:0]
	f.lp = f.lp[:0]
	f.li = f.li[:0]
}

// pushNext scans the child ordering from position t for the first legal
// increment of path parent — level ord[t] within the duplicate-
// suppression bound and below the rank cap — and pushes it with the
// next sequence number. It returns the advanced sequence counter.
//
//flexcore:noalloc
func (f *pathFinder32) pushNext(parent int32, t int32, bound int16, res []int, m int, seq uint32) uint32 {
	base := f.lp[parent]
	for ; int(t) < f.n; t++ {
		w := f.ord[t]
		if w > bound || res[w] >= m {
			continue
		}
		f.heap.push(candNode32{key: packKey(base+f.logPe32[w], seq), parent: parent, t: t})
		return seq + 1
	}
	return seq
}

// find runs the pre-processing tree search into the finder's pooled
// storage; see FindPaths for the algorithm contract (this is the
// float32 lazy-expansion twin — same expansion rule, same emitted set).
//
//flexcore:noalloc
func (f *pathFinder32) find(m *Model, nPE int, stopThreshold float64) ([]Path, PreprocessStats) {
	var stats PreprocessStats
	n := m.Levels()
	if nPE < 1 {
		nPE = 1
	}
	// Cap at the total number of tree paths |Q|^Nt (avoiding overflow).
	total := 1.0
	for i := 0; i < n; i++ {
		total *= float64(m.M)
		if total > 1e15 {
			total = 1e15
			break
		}
	}
	if float64(nPE) > total {
		nPE = int(total)
	}
	f.ensure(n, nPE)

	// Per-level float32 log-probabilities, the root product and the
	// child ordering: levels sorted by descending logPe, stable in the
	// level index so exact ties extract lowest-level-first like the
	// eager search's FIFO.
	var root float32
	for i := 0; i < n; i++ {
		f.logPe32[i] = float32(m.logPe[i])
		root += float32(m.log1mPe[i])
		f.ord[i] = int16(i)
	}
	stats.RealMuls += int64(n)
	for i := 1; i < n; i++ { // insertion sort: n ≤ a few dozen levels
		for j := i; j > 0; j-- {
			a, b := f.ord[j-1], f.ord[j]
			if f.logPe32[a] > f.logPe32[b] || (f.logPe32[a] == f.logPe32[b] && a < b) { //lint:ignore floatcmp stable-sort comparator: exact ties fall through to the level tie-break
				break
			}
			f.ord[j-1], f.ord[j] = b, a
		}
	}

	// Root: the all-ones position vector, emitted directly.
	res := f.resBuf[:n:n]
	for i := range res {
		res[i] = 1
	}
	f.paths = append(f.paths, Path{Ranks: res, LogP: float64(root)}) //lint:ignore noalloc amortised: ensure reserves cap nPE
	f.lp = append(f.lp, root)                                        //lint:ignore noalloc amortised: see above
	f.li = append(f.li, int16(n-1))                                  //lint:ignore noalloc amortised: see above
	cumulative := float64(kernel32.Exp32(root))
	stats.Expanded++
	seq := uint32(0)
	if !(stopThreshold > 0 && cumulative >= stopThreshold) && nPE > 1 {
		seq = f.pushNext(0, 0, int16(n-1), res, m.M, seq)
		stats.RealMuls += int64(seq)
	}

	for len(f.paths) < nPE && len(f.heap) > 0 {
		node := f.heap.popMax()
		logP := keyLogP(node.key)
		w := f.ord[node.t]
		pres := f.resBuf[int(node.parent)*n : (int(node.parent)+1)*n]
		// Materialise the new path from its parent's rank vector.
		q := len(f.paths)
		res := f.resBuf[q*n : (q+1)*n : (q+1)*n]
		copy(res, pres)
		res[w]++
		f.paths = append(f.paths, Path{Ranks: res, LogP: float64(logP)}) //lint:ignore noalloc amortised: ensure reserves cap nPE and the loop emits at most nPE paths
		f.lp = append(f.lp, logP)                                        //lint:ignore noalloc amortised: see above
		f.li = append(f.li, w)                                           //lint:ignore noalloc amortised: see above
		cumulative += float64(kernel32.Exp32(logP))
		stats.Expanded++
		if stopThreshold > 0 && cumulative >= stopThreshold {
			break
		}
		// Two deferred candidates replace the eager child fan-out: the
		// extracted node's next sibling under its own parent, and the
		// first child of the path just emitted.
		before := seq
		seq = f.pushNext(node.parent, node.t+1, f.li[node.parent], pres, m.M, seq)
		seq = f.pushNext(int32(q), 0, w, res, m.M, seq)
		stats.RealMuls += int64(seq - before)
	}
	stats.CumulativeProb = cumulative
	return f.paths, stats
}

// FindPaths32 is the standalone entry point of the float32 search — the
// SoA-backend twin of FindPaths, allocating a fresh pool per call so
// the returned paths are the caller's to keep. FlexCore detectors with
// Options.Backend == BackendSoA32 reuse a persistent pool instead.
func FindPaths32(m *Model, nPE int, stopThreshold float64) ([]Path, PreprocessStats) {
	var f pathFinder32
	return f.find(m, nPE, stopThreshold)
}
