package core

import (
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// detectFrame prepares hs with PrepareAll and detects one burst per
// subcarrier, returning cloned decisions.
func detectFrame(t *testing.T, fc *FlexCore, hs []*cmatrix.Matrix, ys [][]complex128, sigma2 float64) [][]int {
	t.Helper()
	if err := fc.PrepareAll(hs, sigma2); err != nil {
		t.Fatal(err)
	}
	out := make([][]int, len(hs))
	for k := range hs {
		if err := fc.Select(k); err != nil {
			t.Fatal(err)
		}
		out[k] = append([]int(nil), fc.Detect(ys[k])...)
	}
	return out
}

// TestReuseStateCrossFrameExact pins the tentpole guarantee of the
// cross-frame coherence state: with ReuseThreshold = 0 an installed
// ReuseState only fires on bit-identical (R, σ²), so a detector carrying
// per-user state across frames produces decisions identical to a fresh
// no-reuse detector — while a static channel (the same H re-sent every
// frame) skips the candidate-position search on every subcarrier from
// the second frame on.
func TestReuseStateCrossFrameExact(t *testing.T) {
	cons := constellation.MustNew(16)
	const nr, nt, nSC, nFrames = 5, 4, 8, 4
	sigma2 := channel.Sigma2FromSNRdB(16, 1)
	// A static frequency-selective channel: every frame re-sends the
	// same per-subcarrier H array, as a stationary user would.
	hs := frameChannels(71, nr, nt, nSC)
	rng := newRng(72)
	frames := make([][][]complex128, nFrames)
	for f := range frames {
		ys := make([][]complex128, nSC)
		for k := range ys {
			ys[k] = transmit(rng, hs[k], cons, randSymbols(rng, cons, nt), sigma2)
		}
		frames[f] = ys
	}

	for _, workers := range []int{1, 3} {
		ref := New(cons, Options{NPE: 24, Workers: workers})
		fc := New(cons, Options{NPE: 24, Workers: workers, PathReuse: true, ReuseThreshold: 0})
		var st ReuseState
		fc.SetReuseState(&st)
		if st.Valid() {
			t.Fatal("zero-value ReuseState reports Valid")
		}
		for f, ys := range frames {
			want := detectFrame(t, ref, hs, ys, sigma2)
			got := detectFrame(t, fc, hs, ys, sigma2)
			for k := range want {
				if !equalInts(got[k], want[k]) {
					t.Fatalf("workers=%d frame %d subcarrier %d: reuse-state decisions %v, want %v",
						workers, f, k, got[k], want[k])
				}
			}
		}
		if !st.Valid() {
			t.Fatal("ReuseState not valid after prepared frames")
		}
		// Frame 0 pays nSC fresh searches; every later frame re-sends the
		// identical H array and must hit the external base on all nSC
		// subcarriers (the frame-0 within-frame chain gets no hits: the
		// subcarriers are distinct and thr = 0).
		pp := fc.PreprocessStats()
		if wantHits := int64((nFrames - 1) * nSC); pp.CacheHits != wantHits {
			t.Fatalf("workers=%d: CacheHits = %d, want %d (all subcarriers of frames 2..%d)",
				workers, pp.CacheHits, wantHits, nFrames)
		}
		if pp.CacheMisses != nSC {
			t.Fatalf("workers=%d: CacheMisses = %d, want %d (frame 1 only)", workers, pp.CacheMisses, nSC)
		}
		ref.Close()
		fc.Close()
	}
}

// TestReuseStatePerturbedRebase drives a slowly-varying channel through
// a shared state: a perturbed frame misses (thr = 0), re-bases the
// state, and the perturbed frame re-sent afterwards hits again — the
// pin-until-miss semantics of ReuseState.update.
func TestReuseStatePerturbedRebase(t *testing.T) {
	cons := constellation.MustNew(16)
	const nr, nt, nSC = 5, 4, 6
	sigma2 := channel.Sigma2FromSNRdB(16, 1)
	ha := frameChannels(81, nr, nt, nSC)
	hb := frameChannels(82, nr, nt, nSC) // an independent draw: guaranteed miss at thr=0
	rng := newRng(83)
	ys := make([][]complex128, nSC)
	for k := range ys {
		ys[k] = transmit(rng, ha[k], cons, randSymbols(rng, cons, nt), sigma2)
	}

	fc := New(cons, Options{NPE: 24, PathReuse: true, ReuseThreshold: 0})
	defer fc.Close()
	var st ReuseState
	fc.SetReuseState(&st)

	ref := New(cons, Options{NPE: 24})
	defer ref.Close()

	hits := func() int64 { return fc.PreprocessStats().CacheHits }
	step := func(hs []*cmatrix.Matrix) {
		t.Helper()
		want := detectFrame(t, ref, hs, ys, sigma2)
		got := detectFrame(t, fc, hs, ys, sigma2)
		for k := range want {
			if !equalInts(got[k], want[k]) {
				t.Fatalf("decisions diverged on subcarrier %d", k)
			}
		}
	}

	step(ha) // fresh
	step(hb) // channel changed: every subcarrier misses and re-bases
	if h := hits(); h != 0 {
		t.Fatalf("perturbed frame hit the stale base %d times, want 0", h)
	}
	step(hb) // re-sent: the re-based state hits everywhere
	if h := hits(); h != nSC {
		t.Fatalf("re-sent frame after re-base: CacheHits = %d, want %d", h, nSC)
	}

	// Reset invalidates the bases without touching correctness.
	st.Reset()
	if st.Valid() {
		t.Fatal("ReuseState valid after Reset")
	}
	step(hb)
	if h := hits(); h != nSC {
		t.Fatalf("frame after Reset hit %d times, want 0 new hits", h-nSC)
	}
	step(hb)
	if h := hits(); h != 2*nSC {
		t.Fatalf("re-sent frame after Reset: CacheHits = %d, want %d", h, 2*nSC)
	}
}

// TestReuseStateGeometryChange covers frame-size churn on one state: a
// larger frame grows the slot array, a smaller frame only consults its
// prefix, and decisions stay pinned to the no-reuse reference
// throughout.
func TestReuseStateGeometryChange(t *testing.T) {
	cons := constellation.MustNew(4)
	const nr, nt = 4, 3
	sigma2 := channel.Sigma2FromSNRdB(14, 1)
	small := frameChannels(91, nr, nt, 4)
	large := frameChannels(92, nr, nt, 10)
	rng := newRng(93)
	ysL := make([][]complex128, len(large))
	for k := range ysL {
		ysL[k] = transmit(rng, large[k], cons, randSymbols(rng, cons, nt), sigma2)
	}

	fc := New(cons, Options{NPE: 8, PathReuse: true, ReuseThreshold: 0})
	defer fc.Close()
	ref := New(cons, Options{NPE: 8})
	defer ref.Close()
	var st ReuseState
	fc.SetReuseState(&st)

	for _, hs := range [][]*cmatrix.Matrix{small, large, large, small, small} {
		ys := ysL[:len(hs)]
		want := detectFrame(t, ref, hs, ys, sigma2)
		got := detectFrame(t, fc, hs, ys, sigma2)
		for k := range want {
			if !equalInts(got[k], want[k]) {
				t.Fatalf("frame of %d subcarriers, subcarrier %d: decisions diverged", len(hs), k)
			}
		}
	}
	// large repeated (10 hits) + small repeated (4 hits); the first
	// small frame's bases were overwritten by the first large frame.
	if pp := fc.PreprocessStats(); pp.CacheHits != 14 {
		t.Fatalf("CacheHits = %d, want 14 across the geometry churn", pp.CacheHits)
	}

	// Detaching the state returns the detector to within-frame-only
	// reuse: a re-sent frame no longer hits (distinct subcarriers,
	// thr = 0).
	fc.SetReuseState(nil)
	before := fc.PreprocessStats().CacheHits
	_ = detectFrame(t, fc, small, ysL[:len(small)], sigma2)
	if pp := fc.PreprocessStats(); pp.CacheHits != before {
		t.Fatalf("detached detector still hit the external base (%d new hits)", pp.CacheHits-before)
	}
}

// TestReuseStateHandoff moves one user's state between two detectors —
// the serving layer's worker-pool pattern, where any worker of a shard
// may process a user's next frame. The second detector must hit the
// bases the first one stored and keep decisions bit-identical.
func TestReuseStateHandoff(t *testing.T) {
	cons := constellation.MustNew(16)
	const nr, nt, nSC = 5, 4, 6
	sigma2 := channel.Sigma2FromSNRdB(16, 1)
	hs := frameChannels(61, nr, nt, nSC)
	rng := newRng(62)
	ys := make([][]complex128, nSC)
	for k := range ys {
		ys[k] = transmit(rng, hs[k], cons, randSymbols(rng, cons, nt), sigma2)
	}
	ref := New(cons, Options{NPE: 24})
	defer ref.Close()
	want := detectFrame(t, ref, hs, ys, sigma2)

	opts := Options{NPE: 24, PathReuse: true, ReuseThreshold: 0}
	a, b := New(cons, opts), New(cons, opts)
	defer a.Close()
	defer b.Close()
	var st ReuseState

	for i, fc := range []*FlexCore{a, b, a, b} {
		fc.SetReuseState(&st)
		got := detectFrame(t, fc, hs, ys, sigma2)
		fc.SetReuseState(nil)
		for k := range want {
			if !equalInts(got[k], want[k]) {
				t.Fatalf("handoff step %d subcarrier %d: decisions diverged", i, k)
			}
		}
	}
	// Steps 2..4 each hit all nSC subcarriers, split across detectors.
	if ha, hb := a.PreprocessStats().CacheHits, b.PreprocessStats().CacheHits; ha+hb != 3*nSC {
		t.Fatalf("handoff hits = %d+%d, want %d total", ha, hb, 3*nSC)
	}
}
