package core

import (
	"math"
	"sort"
)

// FindPathsParallel is the batched pre-processing expansion of §3.1.1:
// instead of expanding one best node per step, each round expands the
// `batch` most promising candidates together, which is what a parallel
// implementation does to cut pre-processing latency in dense
// constellations. The paper reports negligible throughput loss versus
// the sequential search provided N_PE/batch ≥ 10 — the property
// TestFindPathsParallelOverlap checks.
//
// The function reproduces the *selection semantics* of a parallel
// expansion deterministically; the child-generation arithmetic is so
// small that spawning goroutines per round would only add overhead in
// Go, so rounds execute inline. Latency is modelled by Rounds in the
// returned stats (a hardware round costs one expansion latency
// regardless of batch width).
func FindPathsParallel(m *Model, nPE, batch int) ([]Path, PreprocessStats, int) {
	var stats PreprocessStats
	rounds := 0
	n := m.Levels()
	if nPE < 1 {
		nPE = 1
	}
	if batch < 1 {
		batch = 1
	}
	total := 1.0
	for i := 0; i < n; i++ {
		total *= float64(m.M)
		if total > 1e15 {
			total = 1e15
			break
		}
	}
	if float64(nPE) > total {
		nPE = int(total)
	}

	root := preNode{ranks: onesVector(n), logP: m.RootLogP(), lastInc: n - 1}
	stats.RealMuls += int64(n)
	list := []preNode{root}
	e := make([]Path, 0, nPE)
	var cumulative float64

	for len(e) < nPE && len(list) > 0 {
		rounds++
		take := batch
		if take > nPE-len(e) {
			take = nPE - len(e)
		}
		if take > len(list) {
			take = len(list)
		}
		expand := list[:take]
		list = list[take:]
		for _, node := range expand {
			e = append(e, Path{Ranks: node.ranks, LogP: node.logP})
			cumulative += math.Exp(node.logP)
			stats.Expanded++
			for w := 0; w <= node.lastInc; w++ {
				if node.ranks[w] >= m.M {
					continue
				}
				child := preNode{
					ranks:   append([]int(nil), node.ranks...),
					logP:    node.logP + m.logPe[w],
					lastInc: w,
				}
				child.ranks[w]++
				stats.RealMuls++
				pos := sort.Search(len(list), func(i int) bool { return list[i].logP < child.logP })
				list = append(list, preNode{})
				copy(list[pos+1:], list[pos:])
				list[pos] = child
			}
		}
		if len(list) > nPE {
			list = list[:nPE]
		}
	}
	stats.CumulativeProb = cumulative
	return e, stats, rounds
}
