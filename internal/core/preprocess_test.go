package core

import (
	"math"
	"sort"
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/constellation"
)

// enumerateAll exhaustively lists every position vector with its logP.
func enumerateAll(m *Model) []Path {
	n := m.Levels()
	var out []Path
	ranks := onesVector(n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, Path{Ranks: append([]int(nil), ranks...), LogP: m.PathLogP(ranks)})
			return
		}
		for k := 1; k <= m.M; k++ {
			ranks[i] = k
			rec(i + 1)
		}
		ranks[i] = 1
	}
	rec(0)
	sort.Slice(out, func(i, j int) bool { return out[i].LogP > out[j].LogP })
	return out
}

func key(ranks []int) string {
	b := make([]byte, len(ranks))
	for i, r := range ranks {
		b[i] = byte(r)
	}
	return string(b)
}

func testModel(t *testing.T, m int, diag []float64, snrdB float64) *Model {
	t.Helper()
	cons := constellation.MustNew(m)
	return NewModel(diagMatrix(diag), channel.Sigma2FromSNRdB(snrdB, 1), cons)
}

func TestFindPathsRootFirstAndDescending(t *testing.T) {
	m := testModel(t, 16, []float64{0.9, 1.2, 0.7, 1.5}, 12)
	paths, _ := FindPaths(m, 64, 0)
	if len(paths) != 64 {
		t.Fatalf("got %d paths", len(paths))
	}
	for i, r := range paths[0].Ranks {
		if r != 1 {
			t.Fatalf("first path rank[%d] = %d, want all ones", i, r)
		}
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].LogP > paths[i-1].LogP+1e-12 {
			t.Fatalf("paths not in descending probability at %d", i)
		}
	}
}

func TestFindPathsUnique(t *testing.T) {
	m := testModel(t, 64, []float64{0.5, 1.0, 1.5, 0.8, 1.2, 0.9}, 18)
	paths, _ := FindPaths(m, 512, 0)
	seen := map[string]bool{}
	for _, p := range paths {
		k := key(p.Ranks)
		if seen[k] {
			t.Fatalf("duplicate position vector %v", p.Ranks)
		}
		seen[k] = true
		for _, r := range p.Ranks {
			if r < 1 || r > 64 {
				t.Fatalf("rank out of range in %v", p.Ranks)
			}
		}
	}
}

func TestFindPathsMatchesExhaustiveTopSet(t *testing.T) {
	// On systems small enough to enumerate, the best-first search with the
	// duplicate-suppression rule must return exactly the top-N_PE set.
	for _, tc := range []struct {
		m    int
		diag []float64
		snr  float64
		npe  int
	}{
		{4, []float64{0.8, 1.1}, 6, 7},
		{4, []float64{0.5, 1.0, 1.6}, 8, 20},
		{16, []float64{0.9, 1.4}, 10, 40},
	} {
		model := testModel(t, tc.m, tc.diag, tc.snr)
		got, _ := FindPaths(model, tc.npe, 0)
		all := enumerateAll(model)
		want := all[:tc.npe]
		gotSet := map[string]bool{}
		for _, p := range got {
			gotSet[key(p.Ranks)] = true
		}
		for i, p := range want {
			// Probability ties make the boundary of the top set ambiguous;
			// accept any vector with the same logP as the boundary.
			if !gotSet[key(p.Ranks)] && math.Abs(p.LogP-want[len(want)-1].LogP) > 1e-12 {
				t.Fatalf("m=%d npe=%d: exhaustive #%d %v (logP %v) missing", tc.m, tc.npe, i, p.Ranks, p.LogP)
			}
		}
	}
}

func TestFindPathsCapsAtTotalPaths(t *testing.T) {
	m := testModel(t, 4, []float64{1, 1}, 5)
	paths, _ := FindPaths(m, 1000, 0) // only 16 exist
	if len(paths) != 16 {
		t.Fatalf("got %d paths, want all 16", len(paths))
	}
	// Cumulative probability of the complete set is ≈ 1 (up to the rank
	// truncation at |Q|).
	var sum float64
	for _, p := range paths {
		sum += p.Prob()
	}
	if sum < 0.95 || sum > 1+1e-9 {
		t.Fatalf("complete-set probability %v", sum)
	}
}

func TestFindPathsStoppingThreshold(t *testing.T) {
	// At high SNR the all-ones path already carries almost all the
	// probability, so a 0.95 threshold must stop after very few paths —
	// the a-FlexCore behaviour of Fig. 10.
	m := testModel(t, 64, []float64{1.4, 1.1, 1.2, 1.3}, 30)
	paths, stats := FindPaths(m, 64, 0.95)
	if len(paths) > 3 {
		t.Fatalf("high SNR: %d paths active, expected ≤ 3", len(paths))
	}
	if stats.CumulativeProb < 0.95 {
		t.Fatalf("stop before reaching threshold: %v", stats.CumulativeProb)
	}
	// At low SNR the same threshold needs many more paths.
	m = testModel(t, 64, []float64{1.4, 1.1, 1.2, 1.3}, 8)
	lowPaths, _ := FindPaths(m, 64, 0.95)
	if len(lowPaths) <= len(paths) {
		t.Fatalf("low SNR should activate more paths: %d vs %d", len(lowPaths), len(paths))
	}
}

func TestFindPathsStats(t *testing.T) {
	m := testModel(t, 16, []float64{1, 1, 1, 1, 1, 1, 1, 1}, 12)
	_, stats := FindPaths(m, 32, 0)
	if stats.Expanded == 0 || stats.RealMuls == 0 {
		t.Fatal("stats not collected")
	}
	// Paper bound: at most N_PE·Nt multiplications (§3.1.1) plus the root.
	if stats.RealMuls > int64(32*8)+8 {
		t.Fatalf("pre-processing multiplications %d exceed the paper bound", stats.RealMuls)
	}
}

func TestFindPathsNPEOne(t *testing.T) {
	m := testModel(t, 16, []float64{1, 1}, 10)
	paths, _ := FindPaths(m, 1, 0)
	if len(paths) != 1 {
		t.Fatalf("got %d paths", len(paths))
	}
	for _, r := range paths[0].Ranks {
		if r != 1 {
			t.Fatal("single path must be the SIC path")
		}
	}
}

func TestPreprocessStatsAdd(t *testing.T) {
	s := PreprocessStats{RealMuls: 10, Expanded: 3, CumulativeProb: 0.5, CacheHits: 2, CacheMisses: 1}
	s.Add(PreprocessStats{RealMuls: 5, Expanded: 4, CumulativeProb: 0.9, CacheHits: 1, CacheMisses: 7})
	want := PreprocessStats{RealMuls: 15, Expanded: 7, CumulativeProb: 0.5, CacheHits: 3, CacheMisses: 8}
	if s != want {
		t.Fatalf("Add produced %+v, want %+v (counters summed, CumulativeProb kept)", s, want)
	}
}
