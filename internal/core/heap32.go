package core

import "math"

// The float32 candidate heap of the SoA backend's pre-processing
// search. Profiling the complex128 search shows the heap dominates: the
// 24-byte candNode's float64-compare-then-seq-tie-break order costs a
// branchy two-field comparison per sift step, and every swap moves
// three words. Here the order is a single uint64 compare: the float32
// log-probability is mapped through the standard order-preserving bits
// transform into the high word and the negated insertion sequence into
// the low word, so "higher logP, FIFO among ties" is exactly "bigger
// key" — and a node is 16 bytes.

// candNode32 is one packed candidate of the lazy-expansion search
// (pathFinder32): the increment of level ord[t] applied to emitted path
// parent. key carries the full extraction order.
type candNode32 struct {
	key    uint64
	parent int32
	t      int32 // position of the incremented level in the finder's logPe ordering
}

// packKey builds the order key: ord32(logP) in the high word (the sign-
// aware bits transform makes uint32 order match float32 order), ^seq in
// the low word (earlier insertions win ties).
//
//flexcore:noalloc
func packKey(logP float32, seq uint32) uint64 {
	bits := math.Float32bits(logP)
	if bits&0x8000_0000 != 0 {
		bits = ^bits
	} else {
		bits |= 0x8000_0000
	}
	return uint64(bits)<<32 | uint64(^seq)
}

// keyLogP recovers the float32 log-probability from a packed key.
//
//flexcore:noalloc
func keyLogP(key uint64) float32 {
	bits := uint32(key >> 32)
	if bits&0x8000_0000 != 0 {
		bits &^= 0x8000_0000
	} else {
		bits = ^bits
	}
	return math.Float32frombits(bits)
}

// candHeap32 is a binary max-heap on the packed key.
type candHeap32 []candNode32

// push inserts a candidate.
//
//flexcore:noalloc
func (h *candHeap32) push(n candNode32) {
	a := append(*h, n) //lint:ignore noalloc amortised: capacity is reserved by the finder and retained across frames
	*h = a
	j := len(a) - 1
	for j > 0 {
		p := (j - 1) / 2
		if a[p].key >= a[j].key {
			break
		}
		a[p], a[j] = a[j], a[p]
		j = p
	}
}

// popMax removes and returns the best candidate.
//
//flexcore:noalloc
func (h *candHeap32) popMax() candNode32 {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	*h = a
	a.siftDown(0)
	return top
}

// siftDown restores the heap property below i.
//
//flexcore:noalloc
func (h candHeap32) siftDown(i int) {
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if c+1 < len(h) && h[c].key < h[c+1].key {
			c++
		}
		if h[i].key >= h[c].key {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}
