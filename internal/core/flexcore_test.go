package core

import (
	"math/rand/v2"
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
	"flexcore/internal/detector"
)

// Compile-time interface check.
var _ detector.Detector = (*FlexCore)(nil)

func newRng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed|1)) }

func randSymbols(rng *rand.Rand, cons *constellation.Constellation, nt int) []int {
	s := make([]int, nt)
	for i := range s {
		s[i] = rng.IntN(cons.Size())
	}
	return s
}

func transmit(rng *rand.Rand, h *cmatrix.Matrix, cons *constellation.Constellation, s []int, sigma2 float64) []complex128 {
	x := make([]complex128, len(s))
	for i, k := range s {
		x[i] = cons.Point(k)
	}
	y := h.MulVec(x)
	if sigma2 > 0 {
		channel.AddAWGN(rng, y, sigma2)
	}
	return y
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFlexCoreNoiselessRecovery(t *testing.T) {
	rng := newRng(201)
	for _, m := range []int{4, 16, 64} {
		cons := constellation.MustNew(m)
		fc := New(cons, Options{NPE: 8})
		for trial := 0; trial < 10; trial++ {
			h := channel.Rayleigh(rng, 6, 6)
			if err := fc.Prepare(h, 1e-9); err != nil {
				t.Fatal(err)
			}
			s := randSymbols(rng, cons, 6)
			y := transmit(rng, h, cons, s, 0)
			if got := fc.Detect(y); !equalInts(got, s) {
				t.Fatalf("%d-QAM trial %d: got %v want %v", m, trial, got, s)
			}
		}
	}
}

// serOn measures SER on a shared sequence of channels and noise draws.
func serOn(t *testing.T, det detector.Detector, cons *constellation.Constellation, nt int, snrdB float64, trials int, seed uint64) float64 {
	t.Helper()
	rng := newRng(seed)
	sigma2 := channel.Sigma2FromSNRdB(snrdB, 1)
	errs, total := 0, 0
	for i := 0; i < trials; i++ {
		h := channel.Rayleigh(rng, nt, nt)
		if err := det.Prepare(h, sigma2); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 4; v++ {
			s := randSymbols(rng, cons, nt)
			y := transmit(rng, h, cons, s, sigma2)
			got := det.Detect(y)
			for j := range s {
				if got[j] != s[j] {
					errs++
				}
				total++
			}
		}
	}
	return float64(errs) / float64(total)
}

func TestFlexCoreApproachesMLWithManyPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// With a large path budget FlexCore's uncoded SER approaches ML up to
	// the residual cost of the approximate symbol ordering and the edge
	// deactivations of §3.2 (the paper's own near-optimality is stated on
	// *coded throughput*, where this residual nearly vanishes — the link-
	// level tests in internal/phy check that form of the claim).
	cons := constellation.MustNew(16)
	const nt, snr, trials, seed = 4, 13, 600, 202
	serML := serOn(t, detector.NewSphere(cons), cons, nt, snr, trials, seed)
	serFC := serOn(t, New(cons, Options{NPE: 256}), cons, nt, snr, trials, seed)
	t.Logf("SER: ML=%.4f FlexCore(256)=%.4f", serML, serFC)
	if serFC > serML*1.6+2e-3 {
		t.Fatalf("FlexCore(256) SER %.4f too far above ML %.4f", serFC, serML)
	}
}

func TestFlexCoreSERImprovesWithNPE(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	cons := constellation.MustNew(16)
	const nt, snr, trials, seed = 4, 13, 400, 203
	ser1 := serOn(t, New(cons, Options{NPE: 1}), cons, nt, snr, trials, seed)
	ser8 := serOn(t, New(cons, Options{NPE: 8}), cons, nt, snr, trials, seed)
	ser64 := serOn(t, New(cons, Options{NPE: 64}), cons, nt, snr, trials, seed)
	t.Logf("SER: NPE1=%.4f NPE8=%.4f NPE64=%.4f", ser1, ser8, ser64)
	if !(ser64 < ser8 && ser8 < ser1) {
		t.Fatalf("SER not improving with NPE: %v %v %v", ser1, ser8, ser64)
	}
}

func TestFlexCoreBeatsFCSDAtEqualPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// The paper's central claim (Fig. 9): at the same path budget,
	// FlexCore outperforms the FCSD.
	cons := constellation.MustNew(16)
	const nt, snr, trials, seed = 6, 12, 400, 204
	serFC := serOn(t, New(cons, Options{NPE: 16}), cons, nt, snr, trials, seed)
	serFCSD := serOn(t, detector.NewFCSD(cons, 1), cons, nt, snr, trials, seed)
	t.Logf("SER at 16 paths: FlexCore=%.4f FCSD=%.4f", serFC, serFCSD)
	if serFC > serFCSD {
		t.Fatalf("FlexCore (%.4f) worse than FCSD (%.4f) at equal paths", serFC, serFCSD)
	}
}

func TestAFlexCoreAdaptsToChannel(t *testing.T) {
	rng := newRng(205)
	cons := constellation.MustNew(64)
	fc := New(cons, Options{NPE: 64, Threshold: 0.95})
	// Well-conditioned, high-SNR: nearly one active path.
	if err := fc.Prepare(cmatrix.Identity(8), channel.Sigma2FromSNRdB(30, 1)); err != nil {
		t.Fatal(err)
	}
	if fc.ActivePaths() > 2 {
		t.Fatalf("identity channel at 30 dB: %d active paths", fc.ActivePaths())
	}
	// Poorly conditioned or noisy: many more.
	h := channel.Rayleigh(rng, 8, 8)
	if err := fc.Prepare(h, channel.Sigma2FromSNRdB(10, 1)); err != nil {
		t.Fatal(err)
	}
	many := fc.ActivePaths()
	if many <= 2 {
		t.Fatalf("noisy random channel: only %d active paths", many)
	}
	if many > 64 {
		t.Fatalf("active paths %d exceed NPE", many)
	}
}

func TestFlexCoreParallelMatchesSequential(t *testing.T) {
	rng := newRng(206)
	cons := constellation.MustNew(16)
	seqD := New(cons, Options{NPE: 48})
	parD := New(cons, Options{NPE: 48, Workers: 4})
	sigma2 := channel.Sigma2FromSNRdB(14, 1)
	for trial := 0; trial < 40; trial++ {
		h := channel.Rayleigh(rng, 8, 8)
		if err := seqD.Prepare(h, sigma2); err != nil {
			t.Fatal(err)
		}
		if err := parD.Prepare(h, sigma2); err != nil {
			t.Fatal(err)
		}
		s := randSymbols(rng, cons, 8)
		y := transmit(rng, h, cons, s, sigma2)
		if !equalInts(seqD.Detect(y), parD.Detect(y)) {
			t.Fatalf("trial %d: parallel and sequential disagree", trial)
		}
	}
}

func TestFlexCoreFallbackOnFullDeactivation(t *testing.T) {
	cons := constellation.MustNew(16)
	fc := New(cons, Options{NPE: 4, StrictDeactivation: true})
	if err := fc.Prepare(cmatrix.Identity(2), 0.01); err != nil {
		t.Fatal(err)
	}
	// A received point far outside the constellation deactivates every
	// candidate offset on every path.
	y := []complex128{complex(100, 100), complex(-100, 100)}
	got := fc.Detect(y)
	if len(got) != 2 {
		t.Fatal("fallback produced no result")
	}
	if fc.FallbackDetections() != 1 {
		t.Fatalf("fallback counter %d", fc.FallbackDetections())
	}
	// The clamped fallback must return the nearest corner symbols.
	want := []int{cons.Slice(y[0]), cons.Slice(y[1])}
	if !equalInts(got, want) {
		t.Fatalf("fallback got %v want %v", got, want)
	}
}

func TestFlexCoreOpCounters(t *testing.T) {
	rng := newRng(207)
	cons := constellation.MustNew(16)
	fc := New(cons, Options{NPE: 32})
	h := channel.Rayleigh(rng, 8, 8)
	if err := fc.Prepare(h, 0.05); err != nil {
		t.Fatal(err)
	}
	pp := fc.PreprocessStats()
	if pp.RealMuls == 0 || pp.Expanded == 0 {
		t.Fatal("pre-processing stats empty")
	}
	s := randSymbols(rng, cons, 8)
	fc.Detect(transmit(rng, h, cons, s, 0.05))
	ops := fc.OpCount()
	if ops.Detections != 1 || ops.RealMuls == 0 || ops.Nodes == 0 {
		t.Fatalf("op counters wrong: %+v", ops)
	}
}

func TestFlexCoreValidation(t *testing.T) {
	cons := constellation.MustNew(16)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NPE=0 accepted")
			}
		}()
		New(cons, Options{NPE: 0})
	}()
	fc := New(cons, Options{NPE: 4})
	h := cmatrix.New(2, 4) // fewer rx antennas than streams
	if err := fc.Prepare(h, 0.1); err == nil {
		t.Fatal("underdetermined channel accepted")
	}
}

func TestFlexCoreNameIncludesVariant(t *testing.T) {
	cons := constellation.MustNew(16)
	if New(cons, Options{NPE: 8}).Name() != "FlexCore(NPE=8)" {
		t.Fatal("plain name")
	}
	n := New(cons, Options{NPE: 8, Threshold: 0.95}).Name()
	if n != "a-FlexCore(NPE=8,θ=0.95)" {
		t.Fatalf("adaptive name %q", n)
	}
}

// benchBackends names the two hot-path backends for the sub-benchmarks
// below; the acceptance record BENCH_PR6.json compares the pair.
var benchBackends = []struct {
	name    string
	backend Backend
}{
	{"complex128", BackendComplex128},
	{"soa32", BackendSoA32},
}

func BenchmarkFlexCoreDetect12x12_64QAM_128(b *testing.B) {
	for _, bb := range benchBackends {
		b.Run(bb.name, func(b *testing.B) {
			rng := newRng(208)
			cons := constellation.MustNew(64)
			fc := New(cons, Options{NPE: 128, Backend: bb.backend})
			sigma2 := channel.Sigma2FromSNRdB(21.6, 1)
			h := channel.Rayleigh(rng, 12, 12)
			if err := fc.Prepare(h, sigma2); err != nil {
				b.Fatal(err)
			}
			s := randSymbols(rng, cons, 12)
			y := transmit(rng, h, cons, s, sigma2)
			fc.Detect(y) // build the backend's planes outside the timed loop
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fc.Detect(y)
			}
		})
	}
}

func BenchmarkFlexCorePreprocess12x12_64QAM_128(b *testing.B) {
	rng := newRng(209)
	cons := constellation.MustNew(64)
	sigma2 := channel.Sigma2FromSNRdB(21.6, 1)
	h := channel.Rayleigh(rng, 12, 12)
	qr := cmatrix.SortedQR(h, cmatrix.OrderSQRD)
	m := NewModel(qr.R, sigma2, cons)
	for _, bb := range benchBackends {
		b.Run(bb.name, func(b *testing.B) {
			find := FindPaths
			if bb.backend == BackendSoA32 {
				find = FindPaths32
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				find(m, 128, 0)
			}
		})
	}
}

func TestFlexCoreDenseConstellation256(t *testing.T) {
	// The paper's §3.1.1 discusses very dense constellations; 256-QAM
	// must work end to end (pre-processing, LUT ordering, detection).
	rng := newRng(210)
	cons := constellation.MustNew(256)
	fc := New(cons, Options{NPE: 64})
	for trial := 0; trial < 5; trial++ {
		h := channel.Rayleigh(rng, 4, 4)
		if err := fc.Prepare(h, 1e-8); err != nil {
			t.Fatal(err)
		}
		s := randSymbols(rng, cons, 4)
		y := transmit(rng, h, cons, s, 0)
		if got := fc.Detect(y); !equalInts(got, s) {
			t.Fatalf("trial %d: 256-QAM noiseless recovery failed", trial)
		}
	}
	// Deep ranks must be usable on 256-QAM too.
	m := NewModel(diagMatrix([]float64{0.4, 1.0, 1.6, 0.8}), 0.15, cons)
	paths, _ := FindPaths(m, 256, 0)
	if len(paths) != 256 {
		t.Fatalf("%d paths", len(paths))
	}
}
