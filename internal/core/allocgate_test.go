package core

import (
	"testing"

	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// Allocation gates for the channel-rate entry points, complementing the
// symbol-rate gates in batch_test.go (Detect/DetectBatch) and the
// cached-re-Prepare gate in frame_test.go. Together with the static
// noalloc analyzer (cmd/flexlint) they pin the repo's zero-allocation
// contract from both sides: the analyzer proves the annotated kernels
// contain no allocation sites, these gates prove the grow-on-shape-
// change helpers the analyzer deliberately exempts really do stop
// allocating once the shapes settle.

// TestPrepareSteadyStateAllocFree gates the fresh (cache-disabled)
// scalar Prepare: after one warm-up on the target geometry, re-preparing
// — full sorted QR, model build and pre-processing tree search — must
// run entirely out of the detector-owned arenas.
func TestPrepareSteadyStateAllocFree(t *testing.T) {
	cons := constellation.MustNew(16)
	const nr, nt = 8, 4
	hs := frameChannels(401, nr, nt, 2)
	fc := New(cons, Options{NPE: 32})
	defer fc.Close()
	for _, h := range hs {
		if err := fc.Prepare(h, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(50, func() {
		// Alternate channels so no coherence shortcut can kick in even
		// if a future change enables one by default.
		i++
		if err := fc.Prepare(hs[i%2], 0.05); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("fresh Prepare: %.1f allocs/op in steady state, want 0", allocs)
	}
}

// TestPrepareAllSteadyStateAllocFree gates the frame pipeline across the
// worker × reuse matrix: once a frame of the target shape has been
// prepared, re-preparing a same-shape frame must not allocate — QR
// workspaces, per-slot path arenas, the miss list and the pool dispatch
// all run from retained storage.
func TestPrepareAllSteadyStateAllocFree(t *testing.T) {
	cons := constellation.MustNew(16)
	const nr, nt, nSC = 6, 4, 12
	fa := frameChannels(402, nr, nt, nSC)
	fb := frameChannels(403, nr, nt, nSC)
	for _, tc := range []struct {
		name    string
		workers int
		reuse   bool
	}{
		{"seq", 1, false},
		{"seq-reuse", 1, true},
		{"par", 4, false},
		{"par-reuse", 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{NPE: 32, Workers: tc.workers, PathReuse: tc.reuse}
			if tc.reuse {
				opts.ReuseThreshold = 0.05
			}
			fc := New(cons, opts)
			defer fc.Close()
			if err := fc.PrepareAll(fa, 0.05); err != nil {
				t.Fatal(err)
			}
			if err := fc.PrepareAll(fb, 0.05); err != nil {
				t.Fatal(err)
			}
			i := 0
			allocs := testing.AllocsPerRun(20, func() {
				i++
				hs := fa
				if i%2 == 0 {
					hs = fb
				}
				if err := fc.PrepareAll(hs, 0.05); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("PrepareAll %s: %.1f allocs/op in steady state, want 0", tc.name, allocs)
			}
		})
	}
}

// TestSelectAllocFree pins Select's documented O(1)-pointer-swap
// contract: activating any prepared subcarrier allocates nothing, from
// the very first call.
func TestSelectAllocFree(t *testing.T) {
	cons := constellation.MustNew(16)
	hs := frameChannels(404, 6, 4, 8)
	fc := New(cons, Options{NPE: 32})
	defer fc.Close()
	if err := fc.PrepareAll(hs, 0.05); err != nil {
		t.Fatal(err)
	}
	k := 0
	allocs := testing.AllocsPerRun(50, func() {
		k = (k + 1) % len(hs)
		if err := fc.Select(k); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Select: %.1f allocs/op, want 0", allocs)
	}
}

// TestPrepareAllRegrowThenSettle checks the amortization story end to
// end: growing the frame (more subcarriers than ever seen) may allocate,
// but the very next same-shape call is allocation-free again.
func TestPrepareAllRegrowThenSettle(t *testing.T) {
	cons := constellation.MustNew(16)
	small := frameChannels(405, 6, 4, 4)
	big := frameChannels(406, 6, 4, 16)
	fc := New(cons, Options{NPE: 32})
	defer fc.Close()
	if err := fc.PrepareAll(small, 0.05); err != nil {
		t.Fatal(err)
	}
	if err := fc.PrepareAll(big, 0.05); err != nil { // regrow
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := fc.PrepareAll(big, 0.05); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PrepareAll after regrow: %.1f allocs/op, want 0", allocs)
	}
	// Shrinking back reuses the big arenas.
	allocs = testing.AllocsPerRun(20, func() {
		if err := fc.PrepareAll(small, 0.05); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PrepareAll after shrink: %.1f allocs/op, want 0", allocs)
	}
}

// TestReuseStateSteadyStateAllocFree gates the cross-frame reuse path:
// once a user's ReuseState has been based on a frame, both re-sent
// frames (every subcarrier an external hit — the static-channel serve
// steady state) and changed frames (every subcarrier a miss + re-base)
// run allocation-free from retained arenas.
func TestReuseStateSteadyStateAllocFree(t *testing.T) {
	cons := constellation.MustNew(16)
	const nr, nt, nSC = 6, 4, 8
	fa := frameChannels(407, nr, nt, nSC)
	fb := frameChannels(408, nr, nt, nSC)
	fc := New(cons, Options{NPE: 32, PathReuse: true, ReuseThreshold: 0})
	defer fc.Close()
	var st ReuseState
	fc.SetReuseState(&st)
	for _, hs := range [][]*cmatrix.Matrix{fa, fa, fb, fb} { // warm both hit and re-base paths
		if err := fc.PrepareAll(hs, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := fc.PrepareAll(fb, 0.05); err != nil { // all-hit frame
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PrepareAll with all external hits: %.1f allocs/op, want 0", allocs)
	}
	i := 0
	allocs = testing.AllocsPerRun(20, func() {
		i++
		hs := fa
		if i%2 == 0 {
			hs = fb
		}
		if err := fc.PrepareAll(hs, 0.05); err != nil { // all-miss frame: re-base
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PrepareAll with external re-base: %.1f allocs/op, want 0", allocs)
	}
}
