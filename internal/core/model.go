// Package core implements FlexCore (Husmann et al., NSDI '17): the
// channel-aware pre-processing that selects the most promising sphere-
// decoder tree paths as position vectors (§3.1), and the massively
// parallel detection step that evaluates one path per processing element
// using the predefined k-th-closest symbol ordering (§3.2). It also
// provides a-FlexCore, the adjustable variant that activates only as many
// processing elements as the channel conditions require (§5.1, Fig. 10).
package core

import (
	"fmt"
	"math"

	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// peClamp bounds the per-level error probability away from 0 and 1 so the
// geometric model (Eq. 3) stays well defined in log domain. Only the
// ordering and decay of path probabilities matter to path selection.
const (
	peMin = 1e-15
	peMax = 0.9999
)

// Model is the per-channel probabilistic model of Eqs. 2–4: for every
// tree level (R row) the probability Pe(l) that the closest constellation
// symbol to the effective received point is not the transmitted one, and
// the derived geometric rank probabilities
// P_l(k) = (1 − Pe(l))·Pe(l)^(k−1) (Appendix Eq. 11).
type Model struct {
	// Pe[i] is the per-level error probability for R row i.
	Pe []float64
	// logPe and log1mPe cache log Pe and log(1−Pe).
	logPe   []float64
	log1mPe []float64
	// M is the constellation order.
	M int
}

// NewModel evaluates Eq. 4 for every diagonal entry of R.
//
// Eq. 4 in the paper reads (2 + 2/√|Q|)·erfc(|R(l,l)|·√Es/σ); a
// coefficient above 2 cannot be a probability, so this implementation
// uses the exact square-QAM nearest-symbol error of the paper's own
// citation (Barry–Lee–Messerschmitt [6]): with the per-axis error
// p = (1 − 1/√|Q|)·erfc(d·|R(l,l)|/σ) for half-minimum-distance d,
// Pe = 1 − (1 − p)². This matches the paper's expression asymptotically
// (≈ 2(1−1/√|Q|)·erfc(·) at high SNR) and, unlike a raw union bound,
// saturates correctly at low SNR — which is what makes the Fig. 14
// model-vs-simulation agreement hold "in all SNR regimes".
func NewModel(r *cmatrix.Matrix, sigma2 float64, cons *constellation.Constellation) *Model {
	return NewModelInto(&Model{}, r, sigma2, cons)
}

// NewModelInto is NewModel evaluating into a caller-owned Model whose
// slices are reused when the dimensions match — the channel-rate fast
// path re-models every subcarrier without allocating. It returns m.
func NewModelInto(m *Model, r *cmatrix.Matrix, sigma2 float64, cons *constellation.Constellation) *Model {
	n := r.Cols
	if cap(m.Pe) < n {
		m.Pe = make([]float64, n)
		m.logPe = make([]float64, n)
		m.log1mPe = make([]float64, n)
	}
	m.Pe = m.Pe[:n]
	m.logPe = m.logPe[:n]
	m.log1mPe = m.log1mPe[:n]
	m.M = cons.Size()
	axisCoef := 1 - 1/math.Sqrt(float64(cons.Size()))
	sigma := math.Sqrt(sigma2)
	for i := 0; i < n; i++ {
		rii := real(r.At(i, i))
		pax := axisCoef * math.Erfc(rii*cons.Scale()/sigma)
		pe := 1 - (1-pax)*(1-pax)
		if pe < peMin {
			pe = peMin
		}
		if pe > peMax {
			pe = peMax
		}
		m.Pe[i] = pe
		m.logPe[i] = math.Log(pe)
		m.log1mPe[i] = math.Log1p(-pe)
	}
	return m
}

// LevelProb returns P_l(k) = (1 − Pe(l))·Pe(l)^(k−1) for R row i and rank
// k ≥ 1 (Eq. 3 / Appendix Eq. 11).
func (m *Model) LevelProb(i, k int) float64 {
	return (1 - m.Pe[i]) * math.Pow(m.Pe[i], float64(k-1))
}

// RootLogP returns log Pc of the all-ones position vector, Σ log(1−Pe).
func (m *Model) RootLogP() float64 {
	var s float64
	for _, v := range m.log1mPe {
		s += v
	}
	return s
}

// PathLogP returns log Pc(p) = Σ_i [log(1−Pe(i)) + (p(i)−1)·log Pe(i)]
// for a full position vector (ranks are 1-based, indexed by R row).
func (m *Model) PathLogP(ranks []int) float64 {
	if len(ranks) != len(m.Pe) {
		panic(fmt.Sprintf("core: rank vector length %d, want %d", len(ranks), len(m.Pe)))
	}
	var s float64
	for i, k := range ranks {
		s += m.log1mPe[i] + float64(k-1)*m.logPe[i]
	}
	return s
}

// Levels returns the number of tree levels.
func (m *Model) Levels() int { return len(m.Pe) }
