package core

import "math"

// maxLLR clamps soft outputs when a bit has no counter-hypothesis among
// the evaluated paths. Small candidate lists miss counter-hypotheses
// often, so list sphere decoders clip aggressively (±8 is the customary
// value); without the tight clip the missing-hypothesis bits come out
// overconfident and soft decoding loses its gain.
const maxLLR = 8.0

// DetectSoft evaluates the selected paths like Detect but additionally
// produces per-bit log-likelihood ratios by max-log-MAP over the
// candidate list: LLR(b) = (min_{s∈E, b(s)=1} ‖ȳ−Rs‖² −
// min_{s∈E, b(s)=0} ‖ȳ−Rs‖²) / σ², positive favouring bit 0.
//
// This is the paper's §7 future-work extension ("extend FlexCore to
// soft-detectors" [7,43]): FlexCore's path set doubles as the candidate
// list of a list sphere decoder at no extra detection cost.
// llrs[u][b] is bit b of stream u (original stream order).
func (d *FlexCore) DetectSoft(y []complex128, sigma2 float64) (best []int, llrs [][]float64) {
	ybar := d.qr.Ybar(y)
	d.countDetections(1, len(y))
	bits := d.cons.BitsPerSymbol()

	type candidate struct {
		idx []int
		ped float64
	}
	cands := make([]candidate, 0, len(d.paths))
	idx := make([]int, d.n)
	sym := make([]complex128, d.n)
	for _, p := range d.paths {
		ped, ok := d.evalPath(ybar, p.Ranks, idx, sym)
		if ok {
			cands = append(cands, candidate{idx: append([]int(nil), idx...), ped: ped})
		}
	}
	if len(cands) == 0 {
		// Degenerate: fall back to the clamped SIC path with saturated
		// confidence.
		sic := d.clampedSICInto(ybar, make([]int, d.n), make([]complex128, d.n))
		cands = append(cands, candidate{idx: sic, ped: 0})
	}

	bestI := 0
	for i := range cands {
		if cands[i].ped < cands[bestI].ped {
			bestI = i
		}
	}

	// Per-stream, per-bit hypothesis minima over the candidate list
	// (streams here are in factored order; unpermute at the end).
	min0 := make([][]float64, d.n)
	min1 := make([][]float64, d.n)
	for u := 0; u < d.n; u++ {
		min0[u] = make([]float64, bits)
		min1[u] = make([]float64, bits)
		for b := 0; b < bits; b++ {
			min0[u][b] = math.Inf(1)
			min1[u][b] = math.Inf(1)
		}
	}
	bitBuf := make([]uint8, bits)
	for _, c := range cands {
		for u := 0; u < d.n; u++ {
			d.cons.SymbolBits(c.idx[u], bitBuf)
			for b := 0; b < bits; b++ {
				if bitBuf[b] == 0 {
					if c.ped < min0[u][b] {
						min0[u][b] = c.ped
					}
				} else if c.ped < min1[u][b] {
					min1[u][b] = c.ped
				}
			}
		}
	}

	permLLR := make([][]float64, d.n)
	for u := 0; u < d.n; u++ {
		permLLR[u] = make([]float64, bits)
		for b := 0; b < bits; b++ {
			var l float64
			switch {
			case math.IsInf(min0[u][b], 1):
				l = -maxLLR
			case math.IsInf(min1[u][b], 1):
				l = maxLLR
			default:
				l = (min1[u][b] - min0[u][b]) / sigma2
				if l > maxLLR {
					l = maxLLR
				}
				if l < -maxLLR {
					l = -maxLLR
				}
			}
			permLLR[u][b] = l
		}
	}

	// Unpermute streams back to original order.
	best = d.qr.UnpermuteInts(cands[bestI].idx)
	llrs = make([][]float64, d.n)
	for k, src := range d.qr.Perm {
		llrs[src] = permLLR[k]
	}
	return best, llrs
}
