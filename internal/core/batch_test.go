package core

import (
	"sync"
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/constellation"
	"flexcore/internal/detector"
)

// Compile-time check: FlexCore implements the batch interface natively.
var _ detector.BatchDetector = (*FlexCore)(nil)

// makeBurst builds one prepared detector plus a burst of noisy received
// vectors with their transmitted symbols.
func makeBurst(t testing.TB, opts Options, nt, vectors int, seed uint64) (*FlexCore, [][]complex128, [][]int) {
	t.Helper()
	rng := newRng(seed)
	cons := constellation.MustNew(16)
	fc := New(cons, opts)
	sigma2 := channel.Sigma2FromSNRdB(14, 1)
	h := channel.Rayleigh(rng, nt, nt)
	if err := fc.Prepare(h, sigma2); err != nil {
		t.Fatal(err)
	}
	ys := make([][]complex128, vectors)
	sent := make([][]int, vectors)
	for v := range ys {
		sent[v] = randSymbols(rng, cons, nt)
		ys[v] = transmit(rng, h, cons, sent[v], sigma2)
	}
	return fc, ys, sent
}

func TestDetectBatchMatchesDetect(t *testing.T) {
	for _, workers := range []int{1, 4} {
		fc, ys, _ := makeBurst(t, Options{NPE: 32, Workers: workers}, 8, 12, 301)
		defer fc.Close()
		want := make([][]int, len(ys))
		for v, y := range ys {
			want[v] = append([]int(nil), fc.Detect(y)...)
		}
		got := fc.DetectBatch(ys)
		if len(got) != len(ys) {
			t.Fatalf("workers=%d: %d results for %d vectors", workers, len(got), len(ys))
		}
		for v := range got {
			if !equalInts(got[v], want[v]) {
				t.Fatalf("workers=%d vector %d: batch %v, loop %v", workers, v, got[v], want[v])
			}
		}
	}
}

func TestDetectBatchEmptyAndSingle(t *testing.T) {
	fc, ys, _ := makeBurst(t, Options{NPE: 16, Workers: 4}, 6, 1, 302)
	defer fc.Close()
	if got := fc.DetectBatch(nil); len(got) != 0 {
		t.Fatalf("nil burst returned %d results", len(got))
	}
	// A one-vector burst must not need the pool (batch fan-out is over
	// vectors, and one vector short-circuits to the sequential kernel).
	got := append([]int(nil), fc.DetectBatch(ys[:1])[0]...)
	if fc.pool != nil {
		t.Fatal("one-vector burst spun up the worker pool")
	}
	want := fc.Detect(ys[0])
	if !equalInts(got, want) {
		t.Fatalf("single-vector burst: got %v want %v", got, want)
	}
}

func TestDetectBatchConcurrentInstances(t *testing.T) {
	// Separate instances must be independently usable from separate
	// goroutines (the simulator's per-worker-detector contract); run
	// under -race.
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fc, ys, _ := makeBurst(t, Options{NPE: 24, Workers: 2}, 6, 8, 303+uint64(g))
			defer fc.Close()
			for i := 0; i < 20; i++ {
				if got := fc.DetectBatch(ys); len(got) != len(ys) {
					t.Errorf("goroutine %d: %d results", g, len(got))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDetectSteadyStateAllocFree(t *testing.T) {
	for _, workers := range []int{1, 4} {
		fc, ys, _ := makeBurst(t, Options{NPE: 32, Workers: workers}, 8, 4, 304)
		fc.Detect(ys[0]) // warm the scratch (and the pool, if any)
		if n := testing.AllocsPerRun(50, func() { fc.Detect(ys[1]) }); n != 0 {
			t.Errorf("Detect workers=%d: %.1f allocs/op in steady state", workers, n)
		}
		fc.DetectBatch(ys)
		if n := testing.AllocsPerRun(50, func() { fc.DetectBatch(ys) }); n != 0 {
			t.Errorf("DetectBatch workers=%d: %.1f allocs/op in steady state", workers, n)
		}
		fc.Close()
	}
}

func TestCloseIsRestartable(t *testing.T) {
	fc, ys, _ := makeBurst(t, Options{NPE: 32, Workers: 4}, 8, 6, 305)
	want := append([]int(nil), fc.Detect(ys[0])...)
	if fc.pool == nil {
		t.Fatal("parallel Detect did not start the pool")
	}
	fc.Close()
	if fc.pool != nil {
		t.Fatal("Close left the pool attached")
	}
	fc.Close() // double Close is a no-op
	if got := fc.Detect(ys[0]); !equalInts(got, want) {
		t.Fatalf("after Close: got %v want %v", got, want)
	}
	if fc.pool == nil {
		t.Fatal("Detect after Close did not restart the pool")
	}
	fc.Close()
}

func TestBatchLoopAdapter(t *testing.T) {
	// The generic adapter must equal per-vector Detect for a detector
	// without a native batch path.
	rng := newRng(306)
	cons := constellation.MustNew(16)
	mmse := detector.NewMMSE(cons)
	b := detector.Batch(mmse)
	if _, native := detector.Detector(b).(*FlexCore); native {
		t.Fatal("adapter expected")
	}
	sigma2 := channel.Sigma2FromSNRdB(14, 1)
	h := channel.Rayleigh(rng, 6, 6)
	if err := b.Prepare(h, sigma2); err != nil {
		t.Fatal(err)
	}
	ys := make([][]complex128, 5)
	for v := range ys {
		ys[v] = transmit(rng, h, cons, randSymbols(rng, cons, 6), sigma2)
	}
	want := make([][]int, len(ys))
	for v, y := range ys {
		want[v] = append([]int(nil), mmse.Detect(y)...)
	}
	for v, got := range b.DetectBatch(ys) {
		if !equalInts(got, want[v]) {
			t.Fatalf("vector %d: %v want %v", v, got, want[v])
		}
	}
	// Batch on a native implementation returns it unchanged.
	fc := New(cons, Options{NPE: 8})
	if detector.Batch(fc) != detector.BatchDetector(fc) {
		t.Fatal("Batch re-wrapped a native BatchDetector")
	}
}

func TestDetectBatchEmptyNonNil(t *testing.T) {
	fc, _, _ := makeBurst(t, Options{NPE: 16, Workers: 4}, 6, 1, 307)
	defer fc.Close()
	before := fc.OpCount()
	if got := fc.DetectBatch([][]complex128{}); len(got) != 0 {
		t.Fatalf("empty burst returned %d results", len(got))
	}
	if after := fc.OpCount(); after.Detections != before.Detections {
		t.Fatalf("empty burst counted %d detections", after.Detections-before.Detections)
	}
}

func TestDetectBatchGrowsArena(t *testing.T) {
	// A burst larger than any previous one must regrow the result arena
	// without corrupting results; a subsequent smaller burst reuses it.
	for _, workers := range []int{1, 4} {
		fc, ys, _ := makeBurst(t, Options{NPE: 24, Workers: workers}, 6, 40, 308)
		want := make([][]int, len(ys))
		for v, y := range ys {
			want[v] = append([]int(nil), fc.Detect(y)...)
		}
		check := func(lo, hi int) {
			t.Helper()
			got := fc.DetectBatch(ys[lo:hi])
			if len(got) != hi-lo {
				t.Fatalf("workers=%d [%d:%d]: %d results", workers, lo, hi, len(got))
			}
			for v := range got {
				if !equalInts(got[v], want[lo+v]) {
					t.Fatalf("workers=%d [%d:%d] vector %d: %v want %v", workers, lo, hi, v, got[v], want[lo+v])
				}
			}
		}
		check(0, 3)       // small burst pre-grows a small arena
		check(0, len(ys)) // larger than the pre-grown arena
		check(5, 9)       // smaller again, reusing the big arena
		fc.Close()
	}
}

func TestDetectBatchAfterClose(t *testing.T) {
	// Close is a quiescing point, not a terminal state: the batch path
	// must keep working afterwards, restarting the pool on demand.
	fc, ys, _ := makeBurst(t, Options{NPE: 24, Workers: 4}, 6, 8, 309)
	res := fc.DetectBatch(ys)
	want := make([][]int, len(res))
	for v := range res {
		want[v] = append([]int(nil), res[v]...)
	}
	fc.Close()
	if fc.pool != nil {
		t.Fatal("Close left the pool attached")
	}
	got := fc.DetectBatch(ys)
	for v := range got {
		if !equalInts(got[v], want[v]) {
			t.Fatalf("after Close, vector %d: %v want %v", v, got[v], want[v])
		}
	}
	if fc.pool == nil {
		t.Fatal("DetectBatch after Close did not restart the pool")
	}
	fc.Close()
}
