package core

import (
	"flexcore/internal/kernel32"
)

// This file wires the reduced-precision SoA backend (internal/kernel32,
// DESIGN.md §11) into the detector: Options.Backend == BackendSoA32
// routes the detect hot path through the lane-batched float32 kernel and
// the pre-processing search through the packed-key float32 finder. The
// conversion happens at two narrow boundaries — Prepare/Select mark the
// planes stale and the first detection rebuilds them; detection results
// convert back to the public []int form — so the API, the OpCount
// accounting and the PreprocessStats contract are identical across
// backends.
//
// ExactSlicer detections always run the scalar complex128 arithmetic
// regardless of Backend: the exact sort-based slicer is a verification
// mode, not a hot path, and its ML-equivalence proofs are stated for the
// reference arithmetic.

// soaState is the detector's SoA-backend state: the per-channel planes,
// the shared immutable slicer, the sequential-route scratch and the
// staleness flag that defers plane conversion to the first detection
// (Prepare/Select stay backend-agnostic pointer work).
type soaState struct {
	prep    kernel32.Prep
	slicer  *kernel32.Slicer32
	scratch kernel32.Scratch
	dirty   bool
}

// useSoA reports whether detection runs on the SoA float32 kernel.
//
//flexcore:noalloc
func (d *FlexCore) useSoA() bool {
	return d.opts.Backend == BackendSoA32 && !d.opts.ExactSlicer
}

// soaRefresh rebuilds the float32 planes after Prepare or Select marked
// them stale: the channel planes from the active R factor, the rank
// plane from the selected paths, and the scratch shape. Steady state
// (same stream and path counts) performs no allocation.
//
//flexcore:noalloc
func (d *FlexCore) soaRefresh() {
	if !d.soa.dirty {
		return
	}
	if d.soa.slicer == nil {
		d.soa.slicer = kernel32.NewSlicer32(d.cons)
	}
	d.soa.prep.SetChannel(d.qr.R, 1/d.cons.Scale())
	P := len(d.paths)
	ranks := d.soa.prep.EnsureRanks(P) //lint:ignore noalloc amortised: the inlined arena helper allocates only when the path count grows
	for p := range d.paths {
		pr := d.paths[p].Ranks
		for i := 0; i < len(pr); i++ {
			ranks[i*P+p] = int16(pr[i])
		}
	}
	d.soa.scratch.Ensure(d.n, P)
	d.soa.dirty = false
}

// soaDetectOne runs one full detection on the SoA kernel with
// caller-owned scratch, writing the unpermuted result into out; the
// planes must be refreshed already. It reports whether the clamped-SIC
// fallback resolved the vector — the scalar detectOne contract. The
// complex128 scratch (ybar/idx/sym) stays in play for the ȳ rotation
// and the fallback, both of which are shared with the scalar backend.
//
//flexcore:noalloc
func (d *FlexCore) soaDetectOne(y []complex128, s *kernel32.Scratch, ybar []complex128, idx []int, sym []complex128, best, out []int) bool {
	yb := d.qr.YbarInto(y, ybar)
	P := d.soa.prep.P
	if P == 0 || d.soa.prep.Degenerate {
		// A non-positive diagonal deactivates every path at that level in
		// the scalar backend too: straight to the fallback.
		d.clampedSICInto(yb, idx, sym)
		d.qr.UnpermuteIntsInto(idx, out)
		return true
	}
	s.Ensure(d.n, P)
	s.SetYbar(yb)
	lane, _ := kernel32.Descend(&d.soa.prep, d.soa.slicer, s, 0, P, d.opts.StrictDeactivation)
	if lane < 0 {
		d.clampedSICInto(yb, idx, sym)
		d.qr.UnpermuteIntsInto(idx, out)
		return true
	}
	s.GatherIdx(lane, best)
	d.qr.UnpermuteIntsInto(best, out)
	return false
}

// detectSoA is the Detect body of the SoA backend: the whole lane batch
// descends in one Descend call (sequential route), or in per-worker
// lane blocks over the shared scratch (Workers > 1) — all per-lane
// state is disjoint, so the block partition cannot change the result.
//
//flexcore:noalloc
func (d *FlexCore) detectSoA(y []complex128) []int {
	d.soaRefresh()
	if d.opts.Workers > 1 && len(d.paths) > 1 && !d.soa.prep.Degenerate {
		yb := d.qr.YbarInto(y, d.ybar)
		d.soa.scratch.SetYbar(yb)
		p := d.ensurePool()
		p.kind = jobPaths
		p.ybar = yb
		p.dispatch()
		// Merge the per-block minima in worker (= ascending lane) order
		// with a strict comparison: identical to the sequential argmin,
		// ties resolved to the lowest lane.
		lane := -1
		var bestPed float32
		for _, w := range p.workers {
			if w.lane >= 0 && (lane < 0 || w.ped32 < bestPed) {
				bestPed, lane = w.ped32, w.lane
			}
		}
		if lane < 0 {
			d.fallbk++
			d.clampedSICInto(yb, d.idx, d.sym)
			return d.qr.UnpermuteIntsInto(d.idx, d.out)
		}
		d.soa.scratch.GatherIdx(lane, d.best)
		return d.qr.UnpermuteIntsInto(d.best, d.out)
	}
	if d.soaDetectOne(y, &d.soa.scratch, d.ybar, d.idx, d.sym, d.best, d.out) {
		d.fallbk++
	}
	return d.out
}

// laneBlock returns worker id's contiguous lane block [lo, hi) of P
// lanes split across nw workers (first P%nw blocks one lane larger).
//
//flexcore:noalloc
func laneBlock(id, nw, P int) (lo, hi int) {
	q, r := P/nw, P%nw
	lo = id * q
	if id < r {
		lo += id
	} else {
		lo += r
	}
	hi = lo + q
	if id < r {
		hi++
	}
	return lo, hi
}

// findSlotPaths32 is the SoA-backend twin of findSlotPaths: the float32
// packed-key search into the slot's arenas.
//
//flexcore:noalloc
func (d *FlexCore) findSlotPaths32(s *prepSlot, f *pathFinder32) {
	paths, stats := f.find(&s.model, d.opts.NPE, d.opts.Threshold)
	s.storePaths(paths, stats)
}
