package core

import (
	"math"
	"sync"

	"flexcore/internal/cmatrix"
	"flexcore/internal/kernel32"
)

// jobKind selects what the persistent workers execute for one dispatch.
type jobKind int

const (
	// jobPaths fans the selected paths of a single received vector
	// across the workers (Fig. 2's per-processing-element pipeline).
	jobPaths jobKind = iota
	// jobBatch fans whole received vectors of a DetectBatch burst across
	// the workers; each worker evaluates every path of its vectors.
	jobBatch
	// jobPrepModel fans the per-subcarrier channel-rate math of a
	// PrepareAll frame (sorted QR + model) across the workers.
	jobPrepModel
	// jobPrepPaths fans the pre-processing tree searches of a PrepareAll
	// frame's fresh slots across the workers.
	jobPrepPaths
)

// pool is the persistent goroutine pool a FlexCore detector with
// Workers > 1 keeps across Detect/DetectBatch calls — the software
// analogue of the paper's always-resident processing elements. Workers
// block on their start channels between jobs; the dispatching goroutine
// publishes the job parameters on the pool, wakes every worker, and
// waits on wg. The start-channel send and the wg.Wait establish the
// happens-before edges that make the shared job fields safe without
// locks, and all per-job scratch lives on the workers themselves, so a
// steady-state dispatch performs no allocation.
type pool struct {
	d       *FlexCore
	workers []*poolWorker
	wg      sync.WaitGroup

	// Job parameters: written by the dispatcher before the wake-up,
	// read back (worker results) after wg.Wait().
	kind   jobKind
	ybar   []complex128      // jobPaths: rotated received vector
	ys     [][]complex128    // jobBatch: burst of received vectors
	out    [][]int           // jobBatch: arena-backed result slots
	hs     []*cmatrix.Matrix // jobPrepModel: per-subcarrier channels
	sigma2 float64           // jobPrepModel: noise variance
	frame  []prepSlot        // jobPrep*: per-subcarrier slots
	miss   []int32           // jobPrepPaths: slots needing a search
}

// poolWorker is one resident worker: a wake-up channel plus worker-owned
// scratch, grown only when the prepared stream count grows.
type poolWorker struct {
	id    int
	start chan struct{}

	idx  []int        // per-path candidate scratch
	sym  []complex128 // per-path symbol scratch
	best []int        // local best path (jobPaths) / per-vector best (jobBatch)
	ybar []complex128 // jobBatch: per-worker rotated vector

	qrws     cmatrix.QRWorkspace // jobPrepModel: per-worker QR scratch
	finder   pathFinder          // jobPrepPaths: per-worker search pool
	finder32 pathFinder32        // jobPrepPaths: per-worker search pool (SoA backend)
	ks       kernel32.Scratch    // jobBatch: per-worker lane scratch (SoA backend)

	ped    float64 // jobPaths: local minimum PED
	ok     bool    // jobPaths: local minimum exists
	lane   int     // jobPaths (SoA): block-best lane, -1 when none survives
	ped32  float32 // jobPaths (SoA): block-best distance
	fallbk int64   // jobBatch: fallback detections in the last job
}

// newPool starts workers resident goroutines for detector d.
func newPool(d *FlexCore, workers int) *pool {
	p := &pool{d: d, workers: make([]*poolWorker, workers)}
	for i := range p.workers {
		w := &poolWorker{id: i, start: make(chan struct{}, 1)}
		p.workers[i] = w
		go p.run(w)
	}
	return p
}

// dispatch wakes every worker for the job currently described by the
// pool's fields and blocks until all of them finish.
//
//flexcore:noalloc
func (p *pool) dispatch() {
	p.wg.Add(len(p.workers))
	for _, w := range p.workers {
		w.start <- struct{}{}
	}
	p.wg.Wait()
}

// stop terminates the resident workers; the pool must not be dispatched
// again afterwards.
func (p *pool) stop() {
	for _, w := range p.workers {
		close(w.start)
	}
}

// run is the worker main loop.
func (p *pool) run(w *poolWorker) {
	for range w.start {
		w.ensure(p.d)
		switch p.kind {
		case jobPaths:
			p.runPaths(w)
		case jobBatch:
			p.runBatch(w)
		case jobPrepModel:
			p.runPrepModel(w)
		case jobPrepPaths:
			p.runPrepPaths(w)
		}
		p.wg.Done()
	}
}

// ensure grows the worker scratch to the detector's current stream
// count. It runs on the worker goroutine after the wake-up (so it is
// ordered after Prepare) and only allocates when n grows.
func (w *poolWorker) ensure(d *FlexCore) {
	if cap(w.idx) < d.n {
		w.idx = make([]int, d.n)
		w.sym = make([]complex128, d.n)
		w.best = make([]int, d.n)
		w.ybar = make([]complex128, d.n)
	}
	w.idx = w.idx[:d.n]
	w.sym = w.sym[:d.n]
	w.best = w.best[:d.n]
	w.ybar = w.ybar[:d.n]
}

// runPaths evaluates the worker's stride of the selected paths against
// the shared rotated vector, keeping a local minimum (merged by the
// dispatcher — the minimum tree of Fig. 2).
//
//flexcore:noalloc
func (p *pool) runPaths(w *poolWorker) {
	d := p.d
	if d.useSoA() {
		// SoA route: a contiguous lane block of the shared scratch (all
		// per-lane state is disjoint, so blocks never interfere and the
		// partition cannot change the result).
		lo, hi := laneBlock(w.id, len(p.workers), d.soa.prep.P)
		if lo >= hi {
			w.lane = -1
			return
		}
		w.lane, w.ped32 = kernel32.Descend(&d.soa.prep, d.soa.slicer, &d.soa.scratch, lo, hi, d.opts.StrictDeactivation)
		return
	}
	w.ped = math.Inf(1)
	w.ok = false
	stride := len(p.workers)
	for i := w.id; i < len(d.paths); i += stride {
		ped, ok := d.evalPath(p.ybar, d.paths[i].Ranks, w.idx, w.sym)
		if ok && ped < w.ped {
			w.ped, w.ok = ped, true
			copy(w.best, w.idx)
		}
	}
}

// runBatch fully detects the worker's stride of the burst's vectors,
// writing unpermuted results straight into the shared arena slots.
//
//flexcore:noalloc
func (p *pool) runBatch(w *poolWorker) {
	d := p.d
	w.fallbk = 0
	stride := len(p.workers)
	soa := d.useSoA()
	for i := w.id; i < len(p.ys); i += stride {
		var fb bool
		if soa {
			fb = d.soaDetectOne(p.ys[i], &w.ks, w.ybar, w.idx, w.sym, w.best, p.out[i])
		} else {
			fb = d.detectOne(p.ys[i], w.ybar, w.idx, w.sym, w.best, p.out[i])
		}
		if fb {
			w.fallbk++
		}
	}
}

// runPrepModel computes the sorted QR and per-level model of the
// worker's stride of the frame's subcarriers, each into its own slot
// with worker-owned scratch (slots are disjoint across workers, so the
// stage is lock-free).
//
//flexcore:noalloc
func (p *pool) runPrepModel(w *poolWorker) {
	d := p.d
	stride := len(p.workers)
	for k := w.id; k < len(p.frame); k += stride {
		d.prepareSlot(&p.frame[k], p.hs[k], p.sigma2, &w.qrws)
	}
}

// runPrepPaths runs the pre-processing tree search for the worker's
// stride of the frame's fresh slots, using the worker's pooled finder.
//
//flexcore:noalloc
func (p *pool) runPrepPaths(w *poolWorker) {
	d := p.d
	stride := len(p.workers)
	soa := d.useSoA()
	for i := w.id; i < len(p.miss); i += stride {
		if soa {
			d.findSlotPaths32(&p.frame[p.miss[i]], &w.finder32)
		} else {
			d.findSlotPaths(&p.frame[p.miss[i]], &w.finder)
		}
	}
}
