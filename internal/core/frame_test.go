package core

import (
	"math"
	"sync"
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// frameChannels draws one correlated OFDM frame: nSC per-subcarrier
// channels sharing the default indoor delay taps, so adjacent
// subcarriers are coherent the way real frames are.
func frameChannels(seed uint64, nr, nt, nSC int) []*cmatrix.Matrix {
	rng := channel.NewRNG(seed)
	sc := make([]int, nSC)
	for i := range sc {
		sc[i] = i + 1
	}
	return channel.FreqSelective(rng, nr, nt, sc, channel.DefaultIndoorTDL)
}

// clonePaths deep-copies a detector's selected path set (the live set
// aliases detector-owned arenas).
func clonePaths(ps []Path) []Path {
	out := make([]Path, len(ps))
	for i, p := range ps {
		out[i] = Path{Ranks: append([]int(nil), p.Ranks...), LogP: p.LogP}
	}
	return out
}

// samePaths reports bit-identity of two path sets (ranks and LogP).
func samePaths(a, b []Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].LogP != b[i].LogP || !equalInts(a[i].Ranks, b[i].Ranks) {
			return false
		}
	}
	return true
}

// framePrepareReference runs the scalar Prepare loop over a frame and
// records per-subcarrier paths and detection outputs — the sequential
// baseline every fast-path variant must reproduce.
func framePrepareReference(t *testing.T, cons *constellation.Constellation, opts Options,
	hs []*cmatrix.Matrix, ys [][]complex128, sigma2 float64) (paths [][]Path, det [][]int) {
	t.Helper()
	ref := New(cons, opts)
	defer ref.Close()
	paths = make([][]Path, len(hs))
	det = make([][]int, len(hs))
	for k, h := range hs {
		if err := ref.Prepare(h, sigma2); err != nil {
			t.Fatal(err)
		}
		paths[k] = clonePaths(ref.Paths())
		det[k] = append([]int(nil), ref.Detect(ys[k])...)
	}
	return paths, det
}

// TestPrepareAllMatchesLoopedPrepare is the bit-identity property test of
// the frame pipeline: with the coherence cache disabled, PrepareAll +
// Select(k) must reproduce a fresh sequential Prepare per subcarrier
// exactly — same position vectors (ranks and log-probabilities bit for
// bit) and same detection decisions — for every worker count.
func TestPrepareAllMatchesLoopedPrepare(t *testing.T) {
	cons := constellation.MustNew(16)
	const nt, nSC = 6, 24
	hs := frameChannels(11, nt, nt, nSC)
	sigma2 := channel.Sigma2FromSNRdB(14, 1)
	rng := newRng(77)
	ys := make([][]complex128, nSC)
	for k := range ys {
		ys[k] = transmit(rng, hs[k], cons, randSymbols(rng, cons, nt), sigma2)
	}
	wantPaths, wantDet := framePrepareReference(t, cons, Options{NPE: 32}, hs, ys, sigma2)

	for _, workers := range []int{0, 2, 4} {
		fc := New(cons, Options{NPE: 32, Workers: workers})
		// Two rounds: the second exercises the steady-state pooled arenas.
		for round := 0; round < 2; round++ {
			if err := fc.PrepareAll(hs, sigma2); err != nil {
				t.Fatal(err)
			}
			if fc.FrameSize() != nSC {
				t.Fatalf("workers=%d: FrameSize %d, want %d", workers, fc.FrameSize(), nSC)
			}
			for k := range hs {
				if err := fc.Select(k); err != nil {
					t.Fatal(err)
				}
				if !samePaths(fc.Paths(), wantPaths[k]) {
					t.Fatalf("workers=%d round %d subcarrier %d: paths differ from looped Prepare", workers, round, k)
				}
				if got := fc.Detect(ys[k]); !equalInts(got, wantDet[k]) {
					t.Fatalf("workers=%d round %d subcarrier %d: Detect %v, want %v", workers, round, k, got, wantDet[k])
				}
			}
		}
		fc.Close()
	}
}

// TestPathReuseThresholdZeroExact pins the output-neutrality guarantee of
// the coherence cache: with ReuseThreshold = 0 the cache only fires on an
// exactly identical (R, σ²), so enabling it can never change any output —
// here on a frame with duplicated subcarriers, so hits actually occur.
func TestPathReuseThresholdZeroExact(t *testing.T) {
	cons := constellation.MustNew(16)
	const nt = 5
	base := frameChannels(23, nt, nt, 6)
	// Duplicate every channel: [h0 h0 h1 h1 ...] — each duplicate is an
	// exact-match cache hit.
	hs := make([]*cmatrix.Matrix, 0, 2*len(base))
	for _, h := range base {
		hs = append(hs, h, h)
	}
	sigma2 := channel.Sigma2FromSNRdB(15, 1)
	rng := newRng(99)
	ys := make([][]complex128, len(hs))
	for k := range ys {
		ys[k] = transmit(rng, hs[k], cons, randSymbols(rng, cons, nt), sigma2)
	}
	wantPaths, wantDet := framePrepareReference(t, cons, Options{NPE: 24}, hs, ys, sigma2)

	fc := New(cons, Options{NPE: 24, PathReuse: true, ReuseThreshold: 0})
	defer fc.Close()
	if err := fc.PrepareAll(hs, sigma2); err != nil {
		t.Fatal(err)
	}
	for k := range hs {
		if err := fc.Select(k); err != nil {
			t.Fatal(err)
		}
		if !samePaths(fc.Paths(), wantPaths[k]) {
			t.Fatalf("subcarrier %d: reuse-enabled paths differ at threshold 0", k)
		}
		if got := fc.Detect(ys[k]); !equalInts(got, wantDet[k]) {
			t.Fatalf("subcarrier %d: reuse-enabled Detect %v, want %v", k, got, wantDet[k])
		}
	}
	pp := fc.PreprocessStats()
	if pp.CacheHits != int64(len(base)) {
		t.Fatalf("CacheHits = %d, want %d (one per duplicated subcarrier)", pp.CacheHits, len(base))
	}
	if pp.CacheMisses != int64(len(base)) {
		t.Fatalf("CacheMisses = %d, want %d", pp.CacheMisses, len(base))
	}
}

// TestScalarPrepareReuse covers the cache on the scalar Prepare path:
// re-preparing the identical channel is a hit with identical outputs, a
// different channel is a miss, and a hit performs zero allocations in
// steady state.
func TestScalarPrepareReuse(t *testing.T) {
	cons := constellation.MustNew(64)
	const nt = 6
	rng := newRng(55)
	h1 := channel.Rayleigh(rng, nt, nt)
	h2 := channel.Rayleigh(rng, nt, nt)
	sigma2 := channel.Sigma2FromSNRdB(20, 1)
	y := transmit(rng, h1, cons, randSymbols(rng, cons, nt), sigma2)

	fc := New(cons, Options{NPE: 64, PathReuse: true, ReuseThreshold: 0})
	if err := fc.Prepare(h1, sigma2); err != nil {
		t.Fatal(err)
	}
	want := clonePaths(fc.Paths())
	wantDet := append([]int(nil), fc.Detect(y)...)

	if err := fc.Prepare(h1, sigma2); err != nil {
		t.Fatal(err)
	}
	if pp := fc.PreprocessStats(); pp.CacheHits != 1 || pp.CacheMisses != 1 {
		t.Fatalf("after identical re-Prepare: hits=%d misses=%d, want 1/1", pp.CacheHits, pp.CacheMisses)
	}
	if !samePaths(fc.Paths(), want) || !equalInts(fc.Detect(y), wantDet) {
		t.Fatal("cache hit changed the detector output")
	}

	if err := fc.Prepare(h2, sigma2); err != nil {
		t.Fatal(err)
	}
	if pp := fc.PreprocessStats(); pp.CacheMisses != 2 {
		t.Fatalf("different channel counted as a hit (misses=%d)", pp.CacheMisses)
	}

	// Steady state: a cached re-Prepare allocates nothing.
	if err := fc.Prepare(h2, sigma2); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := fc.Prepare(h2, sigma2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cached re-Prepare allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPathReuseWithinCoherence checks that a loose threshold actually
// reuses across distinct-but-coherent adjacent subcarriers, and that the
// reused sets keep the detector SER-sane (all-noiseless recovery).
func TestPathReuseWithinCoherence(t *testing.T) {
	cons := constellation.MustNew(16)
	const nt, nSC = 4, 16
	hs := frameChannels(31, nt, nt, nSC)
	sigma2 := channel.Sigma2FromSNRdB(18, 1)
	fc := New(cons, Options{NPE: 16, PathReuse: true, ReuseThreshold: 0.5})
	defer fc.Close()
	if err := fc.PrepareAll(hs, sigma2); err != nil {
		t.Fatal(err)
	}
	pp := fc.PreprocessStats()
	if pp.CacheHits == 0 {
		t.Fatalf("no coherence hits across %d adjacent subcarriers at threshold 0.5 (misses=%d)", nSC, pp.CacheMisses)
	}
	rng := newRng(32)
	for k := range hs {
		if err := fc.Select(k); err != nil {
			t.Fatal(err)
		}
		s := randSymbols(rng, cons, nt)
		y := transmit(rng, hs[k], cons, s, 0)
		if got := fc.Detect(y); !equalInts(got, s) {
			t.Fatalf("subcarrier %d: noiseless detection failed with reused paths: %v want %v", k, got, s)
		}
	}
}

// TestPrepareAllConcurrent is the race test: several detectors (each
// with an internal worker pool) run PrepareAll/Select/Detect on shared
// immutable channel data concurrently. Run under -race in CI.
func TestPrepareAllConcurrent(t *testing.T) {
	cons := constellation.MustNew(16)
	const nt, nSC = 4, 12
	hs := frameChannels(47, nt, nt, nSC)
	sigma2 := channel.Sigma2FromSNRdB(14, 1)
	rng := newRng(48)
	ys := make([][]complex128, nSC)
	for k := range ys {
		ys[k] = transmit(rng, hs[k], cons, randSymbols(rng, cons, nt), sigma2)
	}
	_, wantDet := framePrepareReference(t, cons, Options{NPE: 16}, hs, ys, sigma2)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fc := New(cons, Options{NPE: 16, Workers: 3})
			defer fc.Close()
			for round := 0; round < 5; round++ {
				if err := fc.PrepareAll(hs, sigma2); err != nil {
					errs <- err
					return
				}
				for k := range hs {
					if err := fc.Select(k); err != nil {
						errs <- err
						return
					}
					if got := fc.Detect(ys[k]); !equalInts(got, wantDet[k]) {
						t.Errorf("concurrent frame: subcarrier %d diverged", k)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPrepareAllValidation pins the error contract of the frame API.
func TestPrepareAllValidation(t *testing.T) {
	cons := constellation.MustNew(4)
	fc := New(cons, Options{NPE: 4})
	if err := fc.PrepareAll(nil, 0.1); err == nil {
		t.Fatal("empty frame accepted")
	}
	if err := fc.Select(0); err == nil {
		t.Fatal("Select before PrepareAll accepted")
	}
	mixed := []*cmatrix.Matrix{cmatrix.Identity(3), cmatrix.Identity(4)}
	if err := fc.PrepareAll(mixed, 0.1); err == nil {
		t.Fatal("mixed-geometry frame accepted")
	}
	wide := []*cmatrix.Matrix{cmatrix.New(2, 4)}
	if err := fc.PrepareAll(wide, 0.1); err == nil {
		t.Fatal("underdetermined frame accepted")
	}
	ok := []*cmatrix.Matrix{cmatrix.Identity(3), cmatrix.Identity(3)}
	if err := fc.PrepareAll(ok, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := fc.Select(2); err == nil {
		t.Fatal("Select past the frame accepted")
	}
	if err := fc.Select(-1); err == nil {
		t.Fatal("negative Select accepted")
	}
}

// TestSimilarR pins the normalized-Frobenius coherence predicate.
func TestSimilarR(t *testing.T) {
	a := cmatrix.Identity(3)
	b := cmatrix.Identity(3)
	if !similarR(a, b, 0) {
		t.Fatal("identical matrices rejected at threshold 0")
	}
	b.Set(0, 0, complex(1+1e-12, 0))
	if similarR(a, b, 0) {
		t.Fatal("perturbed matrix accepted at threshold 0")
	}
	// ‖diff‖_F/‖a‖_F = 1e-12/√3 — far inside a 1e-6 threshold.
	if !similarR(a, b, 1e-6) {
		t.Fatal("tiny perturbation rejected at threshold 1e-6")
	}
	b.Set(0, 0, complex(2, 0))
	if similarR(a, b, 0.1) {
		t.Fatal("gross perturbation accepted at threshold 0.1")
	}
	if similarR(a, cmatrix.Identity(4), math.Inf(1)) {
		t.Fatal("dimension mismatch accepted")
	}
}
