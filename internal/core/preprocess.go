package core

import (
	"math"
)

// Path is one sphere-decoder tree path selected by pre-processing,
// described relative to the future received signal: Ranks[i] is the
// 1-based closest-symbol rank chosen at R row i (row n−1 is the top tree
// level, decided first). LogP is the model log-probability log Pc.
type Path struct {
	Ranks []int
	LogP  float64
}

// Prob returns Pc(p) = exp(LogP).
func (p Path) Prob() float64 { return math.Exp(p.LogP) }

// PreprocessStats reports the work done by the pre-processing tree
// search, in the units of the paper's Table 2, plus the coherence-reuse
// counters of the channel-rate fast path.
type PreprocessStats struct {
	// RealMuls counts the probability-update multiplications
	// (Pc(child) = Pc(parent)·Pe(w), one per generated child, plus the
	// Nt-term root product).
	RealMuls int64
	// Expanded counts expanded pre-processing tree nodes.
	Expanded int64
	// CumulativeProb is Σ Pc over the returned set E.
	CumulativeProb float64
	// CacheHits counts Prepare calls that reused the position vectors of
	// a coherent earlier channel instead of re-running the tree search
	// (0 unless Options.PathReuse is enabled).
	CacheHits int64
	// CacheMisses counts Prepare calls that ran the tree search afresh
	// while the reuse cache was enabled.
	CacheMisses int64
}

// Add accumulates the counter fields of other into s — the
// aggregation the serving layer uses to merge per-shard detector
// stats into one metrics snapshot. CumulativeProb is a per-Prepare
// instantaneous value, not a counter, so Add keeps s's value.
func (s *PreprocessStats) Add(other PreprocessStats) {
	s.RealMuls += other.RealMuls
	s.Expanded += other.Expanded
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
}

// preNode is a pre-processing tree node (used by the batched-expansion
// model FindPathsParallel; the production search uses candNode and the
// pooled arena of pathFinder).
type preNode struct {
	ranks   []int
	logP    float64
	lastInc int // index whose increment generated this node (dedup rule)
}

// pathFinder owns the reusable storage of the pre-processing tree
// search: the bounded candidate heap and the result arena the selected
// paths are emitted into. Repeated searches with the same (N_PE, Nt)
// shape perform no allocation — the paper's point that pre-processing is
// O(N_PE·Nt) cheap holds for memory traffic too, not only arithmetic.
//
// The returned paths alias the finder's arena and stay valid until its
// next find call. A finder is not safe for concurrent use.
type pathFinder struct {
	heap   candHeap
	resBuf []int // result arena, cap × n
	paths  []Path
	n, cap int
}

// ensure grows the finder's arenas for an n-level, nPE-path search.
func (f *pathFinder) ensure(n, nPE int) {
	if f.n != n || f.cap < nPE {
		f.n = n
		f.cap = nPE
		f.resBuf = make([]int, nPE*n)
		f.paths = make([]Path, 0, nPE)
		// compact fires above 2·nPE; the burst of children pushed between
		// checks never exceeds n.
		f.heap = make(candHeap, 0, 2*nPE+n)
	}
	f.heap = f.heap[:0]
	f.paths = f.paths[:0]
}

// find runs the pre-processing tree search of §3.1.1 (see FindPaths for
// the algorithm contract) into the finder's pooled storage.
//
//flexcore:noalloc
func (f *pathFinder) find(m *Model, nPE int, stopThreshold float64) ([]Path, PreprocessStats) {
	var stats PreprocessStats
	n := m.Levels()
	if nPE < 1 {
		nPE = 1
	}
	// Cap at the total number of tree paths |Q|^Nt (avoiding overflow).
	total := 1.0
	for i := 0; i < n; i++ {
		total *= float64(m.M)
		if total > 1e15 {
			total = 1e15
			break
		}
	}
	if float64(nPE) > total {
		nPE = int(total)
	}
	f.ensure(n, nPE) //lint:ignore noalloc amortised: the inlined arena helper allocates only when the search shape changes

	// Root: the all-ones position vector.
	seq := int32(0)
	f.heap.push(candNode{logP: m.RootLogP(), seq: seq, lastInc: int32(n - 1), parent: -1})
	stats.RealMuls += int64(n) // root product of (1−Pe) terms

	var cumulative float64
	for len(f.paths) < nPE && len(f.heap) > 0 {
		// Expand the most promising candidate, materializing its rank
		// vector from its parent's (already in the result set).
		node := f.heap.popMax()
		res := f.resBuf[len(f.paths)*n : (len(f.paths)+1)*n : (len(f.paths)+1)*n]
		if node.parent < 0 {
			for i := range res {
				res[i] = 1
			}
		} else {
			copy(res, f.paths[node.parent].Ranks)
			res[node.lastInc]++
		}
		parent := int32(len(f.paths))
		f.paths = append(f.paths, Path{Ranks: res, LogP: node.logP}) //lint:ignore noalloc amortised: ensure reserves cap nPE and the loop emits at most nPE paths
		cumulative += math.Exp(node.logP)
		stats.Expanded++
		if stopThreshold > 0 && cumulative >= stopThreshold {
			break
		}
		// Generate children: increment element w for w ≤ lastInc (the
		// Fig. 5 duplicate-suppression rule — every position vector has a
		// unique generation path).
		for w := 0; w <= int(node.lastInc); w++ {
			if res[w] >= m.M {
				continue // rank cannot exceed the constellation order
			}
			seq++
			f.heap.push(candNode{
				logP:    node.logP + m.logPe[w], // Pc(child) = Pc·Pe(w)
				seq:     seq,
				lastInc: int32(w),
				parent:  parent,
			})
			stats.RealMuls++
		}
		// Bound |L|: the paper trims to N_PE after every insertion, but a
		// trimmed entry can provably never be extracted, so compacting
		// lazily at 2·N_PE is output-identical and amortizes to O(1).
		if len(f.heap) > 2*nPE {
			f.heap.compact(nPE)
		}
	}
	stats.CumulativeProb = cumulative
	return f.paths, stats
}

// FindPaths runs the pre-processing tree search of §3.1.1: starting from
// the all-ones position vector it repeatedly expands the most promising
// node of the candidate list, collecting expanded nodes into the result
// set E, until nPE paths are selected or (if stopThreshold > 0) the
// cumulative probability of E exceeds the threshold — the a-FlexCore
// stopping criterion. The returned paths are in descending Pc order.
//
// Duplicate suppression follows Fig. 5: a node generated by incrementing
// element l only generates children for elements w ≤ l, so every position
// vector is produced exactly once (its increments sorted in non-
// increasing element order form the unique generation path).
//
// The candidate list is a bounded min-max heap capped at nPE entries
// with all node storage pooled (see pathFinder); this standalone entry
// point allocates a fresh pool per call, so the returned paths are the
// caller's to keep. FlexCore detectors reuse a persistent pool across
// Prepare calls instead.
func FindPaths(m *Model, nPE int, stopThreshold float64) ([]Path, PreprocessStats) {
	var f pathFinder
	return f.find(m, nPE, stopThreshold)
}

func onesVector(n int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
