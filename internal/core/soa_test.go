package core

import (
	"math"
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// Tests of the SoA float32 backend (DESIGN.md §11). The contract is
// decisions, not bits: on seeded corpora the soa32 backend must pick
// exactly the symbol vectors the complex128 backend picks (the float32
// slicer can only disagree within ~1e-6 of a decision boundary, which
// these fixed seeds are checked not to straddle), while distances are
// internal and only bounded. The gates below also pin the backend's
// zero-allocation steady state and its monotone-in-N_PE behaviour.

// backendPair builds the same detector under both backends.
func backendPair(cons *constellation.Constellation, opts Options) (c128, soa *FlexCore) {
	opts.Backend = BackendComplex128
	c128 = New(cons, opts)
	opts.Backend = BackendSoA32
	soa = New(cons, opts)
	return c128, soa
}

// TestSoA32MatchesComplex128Decisions is the backend property test of
// the acceptance criteria: identical decisions on 300 seeded 64-QAM
// channels at N_PE ∈ {1, 8, 128}, with three noisy vectors per channel.
func TestSoA32MatchesComplex128Decisions(t *testing.T) {
	cons := constellation.MustNew(64)
	const nt, channels, vectors = 6, 300, 3
	sigma2 := channel.Sigma2FromSNRdB(20, 1)
	for _, npe := range []int{1, 8, 128} {
		c128, soa := backendPair(cons, Options{NPE: npe})
		for ch := 0; ch < channels; ch++ {
			rng := newRng(3000 + uint64(ch))
			h := channel.Rayleigh(rng, nt, nt)
			if err := c128.Prepare(h, sigma2); err != nil {
				t.Fatal(err)
			}
			if err := soa.Prepare(h, sigma2); err != nil {
				t.Fatal(err)
			}
			if c128.ActivePaths() != soa.ActivePaths() {
				t.Fatalf("NPE=%d ch=%d: active paths %d (c128) vs %d (soa32)",
					npe, ch, c128.ActivePaths(), soa.ActivePaths())
			}
			for v := 0; v < vectors; v++ {
				s := randSymbols(rng, cons, nt)
				y := transmit(rng, h, cons, s, sigma2)
				want := c128.Detect(y)
				got := soa.Detect(y)
				if !equalInts(got, want) {
					t.Fatalf("NPE=%d ch=%d vector %d: soa32 %v, complex128 %v", npe, ch, v, got, want)
				}
			}
		}
	}
}

// TestSoA32PathsMatchComplex128 pins the pre-processing side on its own:
// the packed-key float32 search must select the same position vectors in
// the same order as the float64 search on the decision corpus.
func TestSoA32PathsMatchComplex128(t *testing.T) {
	cons := constellation.MustNew(64)
	sigma2 := channel.Sigma2FromSNRdB(20, 1)
	for ch := 0; ch < 100; ch++ {
		rng := newRng(3500 + uint64(ch))
		h := channel.Rayleigh(rng, 6, 6)
		qr := cmatrix.SortedQR(h, cmatrix.OrderSQRD)
		m := NewModel(qr.R, sigma2, cons)
		want, wstats := FindPaths(m, 128, 0)
		got, gstats := FindPaths32(m, 128, 0)
		if len(got) != len(want) {
			t.Fatalf("ch=%d: %d paths (soa32) vs %d (c128)", ch, len(got), len(want))
		}
		for p := range want {
			if !equalInts(got[p].Ranks, want[p].Ranks) {
				t.Fatalf("ch=%d path %d: ranks %v (soa32) vs %v (c128)", ch, p, got[p].Ranks, want[p].Ranks)
			}
			if math.Abs(got[p].LogP-want[p].LogP) > 1e-4*(1+math.Abs(want[p].LogP)) {
				t.Fatalf("ch=%d path %d: logP %g (soa32) vs %g (c128)", ch, p, got[p].LogP, want[p].LogP)
			}
		}
		if wstats.Expanded != gstats.Expanded {
			t.Fatalf("ch=%d: expanded %d (soa32) vs %d (c128)", ch, gstats.Expanded, wstats.Expanded)
		}
	}
}

// TestSoA32ThresholdStops checks a-FlexCore stopping under the float32
// cumulative accumulation: the soa32 active-path count may differ from
// complex128 only where the float32 running sum crosses the threshold a
// node earlier or later, and decisions on the activated set still match.
func TestSoA32ThresholdStops(t *testing.T) {
	cons := constellation.MustNew(64)
	sigma2 := channel.Sigma2FromSNRdB(18, 1)
	c128, soa := backendPair(cons, Options{NPE: 64, Threshold: 0.95})
	for ch := 0; ch < 100; ch++ {
		rng := newRng(3700 + uint64(ch))
		h := channel.Rayleigh(rng, 6, 6)
		if err := c128.Prepare(h, sigma2); err != nil {
			t.Fatal(err)
		}
		if err := soa.Prepare(h, sigma2); err != nil {
			t.Fatal(err)
		}
		a, b := c128.ActivePaths(), soa.ActivePaths()
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		if diff > 1 {
			t.Fatalf("ch=%d: active paths %d (c128) vs %d (soa32)", ch, a, b)
		}
		if a == b {
			s := randSymbols(rng, cons, 6)
			y := transmit(rng, h, cons, s, sigma2)
			if !equalInts(soa.Detect(y), c128.Detect(y)) {
				t.Fatalf("ch=%d: threshold decisions diverged", ch)
			}
		}
	}
}

// TestSoA32MonotoneInNPE checks the monotone-in-N_PE conformance
// invariant within the soa32 backend: the receive-domain distance of the
// decision never increases with the path budget (the float32 search's
// first k extractions are independent of N_PE). The tolerance is the
// backend's documented ULP-scaled bound, not the complex128 1e-9.
func TestSoA32MonotoneInNPE(t *testing.T) {
	const soaTol = 1e-5
	cons := constellation.MustNew(16)
	const nt = 4
	sigma2 := channel.Sigma2FromSNRdB(14, 1)
	budgets := []int{1, 2, 4, 8, 16, 64}
	dets := make([]*FlexCore, len(budgets))
	for i, npe := range budgets {
		dets[i] = New(cons, Options{NPE: npe, Backend: BackendSoA32})
	}
	for ch := 0; ch < 60; ch++ {
		rng := newRng(3900 + uint64(ch))
		h := channel.Rayleigh(rng, nt, nt)
		s := randSymbols(rng, cons, nt)
		y := transmit(rng, h, cons, s, sigma2)
		prev := math.Inf(1)
		for i, fc := range dets {
			if err := fc.Prepare(h, sigma2); err != nil {
				t.Fatal(err)
			}
			got := fc.Detect(y)
			x := make([]complex128, nt)
			for j, k := range got {
				x[j] = cons.Point(k)
			}
			r := h.MulVec(x)
			var d float64
			for j := range r {
				dv := y[j] - r[j]
				d += real(dv)*real(dv) + imag(dv)*imag(dv)
			}
			if d > prev*(1+soaTol)+soaTol {
				t.Fatalf("ch=%d: distance %.9g at NPE=%d above %.9g at smaller budget", ch, d, budgets[i], prev)
			}
			if d < prev {
				prev = d
			}
		}
	}
}

// TestSoA32ParallelAndBatchMatchSequential pins worker-count
// independence inside the backend: the lane-block parallel Detect and
// the worker-strided DetectBatch must equal the sequential soa32 routes
// bit for bit (disjoint lane planes, ordered strict-minimum merge).
func TestSoA32ParallelAndBatchMatchSequential(t *testing.T) {
	cons := constellation.MustNew(16)
	const nt = 8
	sigma2 := channel.Sigma2FromSNRdB(14, 1)
	seqD := New(cons, Options{NPE: 48, Backend: BackendSoA32})
	parD := New(cons, Options{NPE: 48, Backend: BackendSoA32, Workers: 4})
	defer parD.Close()
	rng := newRng(4100)
	for trial := 0; trial < 40; trial++ {
		h := channel.Rayleigh(rng, nt, nt)
		if err := seqD.Prepare(h, sigma2); err != nil {
			t.Fatal(err)
		}
		if err := parD.Prepare(h, sigma2); err != nil {
			t.Fatal(err)
		}
		ys := make([][]complex128, 6)
		for v := range ys {
			s := randSymbols(rng, cons, nt)
			ys[v] = transmit(rng, h, cons, s, sigma2)
		}
		if !equalInts(seqD.Detect(ys[0]), parD.Detect(ys[0])) {
			t.Fatalf("trial %d: parallel soa32 Detect diverged from sequential", trial)
		}
		want := make([][]int, len(ys))
		for v := range ys {
			want[v] = append([]int(nil), seqD.Detect(ys[v])...)
		}
		got := parD.DetectBatch(ys)
		for v := range ys {
			if !equalInts(got[v], want[v]) {
				t.Fatalf("trial %d vector %d: parallel soa32 batch diverged", trial, v)
			}
		}
	}
}

// TestSoA32StrictAndFallback checks the deactivation semantics: under
// StrictDeactivation a far-outside received point deactivates every
// lane and the clamped-SIC fallback resolves the vector, exactly like
// the scalar backend.
func TestSoA32StrictAndFallback(t *testing.T) {
	cons := constellation.MustNew(16)
	fc := New(cons, Options{NPE: 4, StrictDeactivation: true, Backend: BackendSoA32})
	if err := fc.Prepare(cmatrix.Identity(2), 0.01); err != nil {
		t.Fatal(err)
	}
	y := []complex128{complex(100, 100), complex(-100, 100)}
	got := fc.Detect(y)
	if fc.FallbackDetections() != 1 {
		t.Fatalf("fallback counter %d", fc.FallbackDetections())
	}
	want := []int{cons.Slice(y[0]), cons.Slice(y[1])}
	if !equalInts(got, want) {
		t.Fatalf("fallback got %v want %v", got, want)
	}
}

// TestSoA32FrameSelect checks the PrepareAll/Select pipeline under the
// soa32 backend against per-subcarrier scalar Prepare under the same
// backend (and, transitively through the decision tests, complex128).
func TestSoA32FrameSelect(t *testing.T) {
	cons := constellation.MustNew(16)
	const nr, nt, nSC = 6, 4, 8
	sigma2 := 0.05
	hs := frameChannels(4200, nr, nt, nSC)
	frame := New(cons, Options{NPE: 32, Backend: BackendSoA32, Workers: 4})
	defer frame.Close()
	scalar := New(cons, Options{NPE: 32, Backend: BackendSoA32})
	if err := frame.PrepareAll(hs, sigma2); err != nil {
		t.Fatal(err)
	}
	rng := newRng(4201)
	for k := 0; k < nSC; k++ {
		if err := frame.Select(k); err != nil {
			t.Fatal(err)
		}
		if err := scalar.Prepare(hs[k], sigma2); err != nil {
			t.Fatal(err)
		}
		s := randSymbols(rng, cons, nt)
		y := transmit(rng, hs[k], cons, s, sigma2)
		if !equalInts(frame.Detect(y), scalar.Detect(y)) {
			t.Fatalf("subcarrier %d: frame-selected soa32 decision diverged from scalar Prepare", k)
		}
	}
}

// TestSoA32DetectSteadyStateAllocFree gates the backend's symbol-rate
// zero-allocation contract: after the first detection builds the planes,
// Detect — including the Prepare-triggered plane refresh — allocates
// nothing.
func TestSoA32DetectSteadyStateAllocFree(t *testing.T) {
	cons := constellation.MustNew(64)
	const nt = 12
	sigma2 := channel.Sigma2FromSNRdB(21.6, 1)
	rng := newRng(4300)
	fc := New(cons, Options{NPE: 128, Backend: BackendSoA32})
	hs := []*cmatrix.Matrix{channel.Rayleigh(rng, nt, nt), channel.Rayleigh(rng, nt, nt)}
	ys := make([][]complex128, 2)
	for i, h := range hs {
		if err := fc.Prepare(h, sigma2); err != nil {
			t.Fatal(err)
		}
		s := randSymbols(rng, cons, nt)
		ys[i] = transmit(rng, h, cons, s, sigma2)
		fc.Detect(ys[i])
	}
	allocs := testing.AllocsPerRun(50, func() {
		if fc.Detect(ys[0]) == nil {
			t.Fatal("no result")
		}
	})
	if allocs != 0 {
		t.Errorf("soa32 Detect: %.1f allocs/op in steady state, want 0", allocs)
	}
	// Prepare + refresh + Detect across alternating channels.
	i := 0
	allocs = testing.AllocsPerRun(50, func() {
		i++
		if err := fc.Prepare(hs[i%2], sigma2); err != nil {
			t.Fatal(err)
		}
		fc.Detect(ys[i%2])
	})
	if allocs != 0 {
		t.Errorf("soa32 Prepare+Detect: %.1f allocs/op in steady state, want 0", allocs)
	}
}

// TestSoA32PrepareSteadyStateAllocFree gates the float32 search pool:
// steady-state Prepare under the soa32 backend runs entirely out of the
// packed-key finder's arenas.
func TestSoA32PrepareSteadyStateAllocFree(t *testing.T) {
	cons := constellation.MustNew(16)
	const nr, nt = 8, 4
	hs := frameChannels(4400, nr, nt, 2)
	fc := New(cons, Options{NPE: 32, Backend: BackendSoA32})
	defer fc.Close()
	for _, h := range hs {
		if err := fc.Prepare(h, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(50, func() {
		i++
		if err := fc.Prepare(hs[i%2], 0.05); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("soa32 Prepare: %.1f allocs/op in steady state, want 0", allocs)
	}
}

// TestParseBackend pins the CLI spellings.
func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendComplex128, true},
		{"complex128", BackendComplex128, true},
		{"c128", BackendComplex128, true},
		{"soa32", BackendSoA32, true},
		{"f32", BackendSoA32, true},
		{"float32", BackendSoA32, true},
		{"avx", BackendComplex128, false},
	} {
		got, ok := ParseBackend(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	if BackendComplex128.String() != "complex128" || BackendSoA32.String() != "soa32" {
		t.Error("Backend.String spellings drifted")
	}
}
