package core

import (
	"math"
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/constellation"
)

func TestDetectSoftAgreesWithHardDecision(t *testing.T) {
	rng := newRng(401)
	cons := constellation.MustNew(16)
	fc := New(cons, Options{NPE: 32})
	sigma2 := channel.Sigma2FromSNRdB(14, 1)
	for trial := 0; trial < 30; trial++ {
		h := channel.Rayleigh(rng, 6, 6)
		if err := fc.Prepare(h, sigma2); err != nil {
			t.Fatal(err)
		}
		s := randSymbols(rng, cons, 6)
		y := transmit(rng, h, cons, s, sigma2)
		hard := fc.Detect(y)
		soft, llrs := fc.DetectSoft(y, sigma2)
		if !equalInts(hard, soft) {
			t.Fatalf("trial %d: hard %v vs soft-best %v", trial, hard, soft)
		}
		if len(llrs) != 6 {
			t.Fatalf("llrs for %d streams", len(llrs))
		}
		// The LLR signs must match the best symbol's bits.
		bits := make([]uint8, cons.BitsPerSymbol())
		for u := range llrs {
			cons.SymbolBits(soft[u], bits)
			for b, l := range llrs[u] {
				if bits[b] == 0 && l < 0 {
					t.Fatalf("stream %d bit %d: best says 0, LLR %v", u, b, l)
				}
				if bits[b] == 1 && l > 0 {
					t.Fatalf("stream %d bit %d: best says 1, LLR %v", u, b, l)
				}
			}
		}
	}
}

func TestDetectSoftLLRMagnitudes(t *testing.T) {
	// At very high SNR the LLRs must be confidently large (most clamp);
	// at low SNR many must be small.
	rng := newRng(402)
	cons := constellation.MustNew(16)
	fc := New(cons, Options{NPE: 64})

	avgAbs := func(snr float64) float64 {
		sigma2 := channel.Sigma2FromSNRdB(snr, 1)
		var sum float64
		var n int
		for trial := 0; trial < 20; trial++ {
			h := channel.Rayleigh(rng, 4, 4)
			if err := fc.Prepare(h, sigma2); err != nil {
				t.Fatal(err)
			}
			s := randSymbols(rng, cons, 4)
			y := transmit(rng, h, cons, s, sigma2)
			_, llrs := fc.DetectSoft(y, sigma2)
			for _, row := range llrs {
				for _, l := range row {
					sum += math.Abs(l)
					n++
				}
			}
		}
		return sum / float64(n)
	}
	high := avgAbs(30)
	low := avgAbs(5)
	if high <= low {
		t.Fatalf("LLR magnitude not increasing with SNR: %v vs %v", high, low)
	}
	if high < maxLLR/2 {
		t.Fatalf("high-SNR LLRs suspiciously small: %v", high)
	}
}

func TestDetectSoftClamping(t *testing.T) {
	rng := newRng(403)
	cons := constellation.MustNew(16)
	fc := New(cons, Options{NPE: 4}) // tiny list → many one-sided bits
	sigma2 := channel.Sigma2FromSNRdB(12, 1)
	h := channel.Rayleigh(rng, 4, 4)
	if err := fc.Prepare(h, sigma2); err != nil {
		t.Fatal(err)
	}
	s := randSymbols(rng, cons, 4)
	y := transmit(rng, h, cons, s, sigma2)
	_, llrs := fc.DetectSoft(y, sigma2)
	for _, row := range llrs {
		for _, l := range row {
			if math.Abs(l) > maxLLR+1e-12 {
				t.Fatalf("LLR %v beyond clamp", l)
			}
			if math.IsNaN(l) || math.IsInf(l, 0) {
				t.Fatalf("non-finite LLR %v", l)
			}
		}
	}
}
