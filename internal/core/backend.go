package core

// Backend selects the arithmetic and memory layout of the detect and
// pre-processing hot paths (DESIGN.md §11). The public API, decision
// semantics, OpCount accounting and PreprocessStats are identical for
// every backend; only the internal number format changes.
type Backend int

const (
	// BackendComplex128 is the default scalar backend: one path at a
	// time over complex128 array-of-structs values — the bit-exact
	// reference arithmetic the conformance oracle gates.
	BackendComplex128 Backend = iota
	// BackendSoA32 is the reduced-precision backend: float32
	// structure-of-arrays planes batched across the N_PE paths
	// (internal/kernel32), with the pre-processing search running on a
	// packed-key float32 heap. Decisions match the scalar backend on
	// the conformance corpus; distances carry the documented
	// ULP-scaled tolerance. ExactSlicer detections always use the
	// scalar arithmetic regardless of backend (they are a verification
	// mode, not a hot path).
	BackendSoA32
)

// String names the backend the way CLI flags and benchmarks spell it.
func (b Backend) String() string {
	switch b {
	case BackendSoA32:
		return "soa32"
	default:
		return "complex128"
	}
}

// ParseBackend maps the CLI spelling to a Backend.
func ParseBackend(s string) (Backend, bool) {
	switch s {
	case "", "complex128", "c128":
		return BackendComplex128, true
	case "soa32", "f32", "float32":
		return BackendSoA32, true
	}
	return BackendComplex128, false
}
