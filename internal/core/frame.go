package core

import (
	"fmt"

	"flexcore/internal/cmatrix"
)

// This file implements the channel-rate fast path across channels: the
// coherence-aware position-vector cache (Options.PathReuse) and the
// frame-level PrepareAll/Select pipeline that prepares every subcarrier
// of an OFDM frame in one call, fanning the per-subcarrier work across
// the detector's persistent worker pool.
//
// Both exploit the same property of §3.1.1: the selected path set E is
// a function of (R, σ²) only — never of the received signal — so it can
// be computed once per coherence interval and shared, and it can be
// computed for many subcarriers independently and in parallel.

// reuseCache is the depth-1 coherence cache of the scalar Prepare path:
// the R factor, noise variance and position vectors of the last fresh-
// prepared channel. Stored paths live in cache-owned arenas so they
// survive subsequent tree searches into the finder's scratch.
type reuseCache struct {
	valid  bool
	r      *cmatrix.Matrix // copy of the base R
	sigma2 float64
	cum    float64
	paths  []Path
	ranks  []int // backing for the cached Ranks
}

// similarR reports whether r is within thr of base in normalized
// Frobenius distance: ‖r−base‖_F ≤ thr·‖base‖_F. thr = 0 accepts only
// an exactly identical R.
//
//flexcore:noalloc
func similarR(base, r *cmatrix.Matrix, thr float64) bool {
	if base.Rows != r.Rows || base.Cols != r.Cols {
		return false
	}
	var diff2, norm2 float64
	for i, v := range r.Data {
		b := base.Data[i]
		d := v - b
		diff2 += real(d)*real(d) + imag(d)*imag(d)
		norm2 += real(b)*real(b) + imag(b)*imag(b)
	}
	return diff2 <= thr*thr*norm2
}

// match reports whether (r, sigma2) is coherent with the cached base
// under the relative tolerance thr.
//
//flexcore:noalloc
func (c *reuseCache) match(r *cmatrix.Matrix, sigma2, thr float64) bool {
	if !c.valid {
		return false
	}
	ds := sigma2 - c.sigma2
	if ds < 0 {
		ds = -ds
	}
	if ds > thr*c.sigma2 {
		return false
	}
	return similarR(c.r, r, thr)
}

// store copies (r, sigma2, paths) into the cache-owned arenas and makes
// them the new reuse base.
func (c *reuseCache) store(r *cmatrix.Matrix, sigma2 float64, paths []Path, cum float64) {
	if c.r == nil || c.r.Rows != r.Rows || c.r.Cols != r.Cols {
		c.r = cmatrix.New(r.Rows, r.Cols)
	}
	copy(c.r.Data, r.Data)
	c.sigma2 = sigma2
	c.cum = cum
	c.paths, c.ranks = copyPaths(paths, c.paths, c.ranks)
	c.valid = true
}

// ReuseState carries PrepareAll's coherence bases across frames: one
// (R, σ², position-vector) base per subcarrier of the last prepared
// frame. Installed on a detector with SetReuseState, it lets a caller
// key the PathReuse cache by any identity it chooses — the serving
// layer keys it per user, so a user whose channel is static or slowly
// varying across frames skips the §3.1.1 candidate-position search on
// every re-sent H, not only within one frame. With ReuseThreshold = 0
// a hit requires a bit-identical (R, σ²), so reuse is provably
// output-neutral (the same proof as the scalar cache, DESIGN.md §9).
//
// A ReuseState must be installed on at most one detector at a time,
// and hand-offs between detectors must be externally synchronized
// (the serving layer's per-user FIFO sequencing provides exactly
// that). The zero value is ready to use; all storage is state-owned
// and regrows only past its high-water mark.
type ReuseState struct {
	slots []reuseCache
}

// Valid reports whether the state holds at least one subcarrier base.
func (st *ReuseState) Valid() bool {
	for i := range st.slots {
		if st.slots[i].valid {
			return true
		}
	}
	return false
}

// Reset invalidates every subcarrier base, keeping the arenas for
// reuse (the serving layer recycles evicted per-user states).
func (st *ReuseState) Reset() {
	for i := range st.slots {
		st.slots[i].valid = false
	}
}

// update re-bases the per-subcarrier slots on the frame just prepared.
// A subcarrier that hit its own external base keeps it untouched — the
// base R stays pinned until a miss, matching the scalar cache's
// semantics — while fresh subcarriers (and within-frame chain hits)
// store their actual (R, paths). Copies are state-owned, so later
// frames cannot corrupt a detector's selected slots.
func (st *ReuseState) update(frame []prepSlot, sigma2 float64) {
	for len(st.slots) < len(frame) {
		st.slots = append(st.slots, reuseCache{})
	}
	for k := range frame {
		s := &frame[k]
		if s.hit && s.base == extBase {
			continue
		}
		st.slots[k].store(s.qr.R, sigma2, s.paths, s.cum)
	}
}

// copyPaths clones a path set into reusable header/rank arenas and
// returns the (possibly regrown) arenas.
func copyPaths(src, hdr []Path, ranks []int) ([]Path, []int) {
	n := 0
	if len(src) > 0 {
		n = len(src[0].Ranks)
	}
	if cap(hdr) < len(src) {
		hdr = make([]Path, len(src))
	}
	hdr = hdr[:len(src)]
	if cap(ranks) < len(src)*n {
		ranks = make([]int, len(src)*n)
	}
	ranks = ranks[:cap(ranks)]
	for i, p := range src {
		dst := ranks[i*n : (i+1)*n : (i+1)*n]
		copy(dst, p.Ranks)
		hdr[i] = Path{Ranks: dst, LogP: p.LogP}
	}
	return hdr, ranks
}

// prepSlot is one subcarrier's prepared channel state inside a frame:
// its QR factors, per-level model, and selected position vectors (owned
// for fresh searches, aliased from the coherence base for reuse hits).
type prepSlot struct {
	qr    cmatrix.QRResult
	model Model
	paths []Path
	cum   float64

	hdr   []Path // owned path-header arena (fresh slots)
	ranks []int  // owned rank arena (fresh slots)

	stats PreprocessStats // fresh-search stats; zero for reuse hits
	hit   bool
	base  int32 // slot whose paths a hit aliases (-1 fresh, extBase external)
}

// extBase marks a slot whose coherence hit came from the installed
// ReuseState (the previous frame's base for the same subcarrier)
// rather than from a slot of the current frame.
const extBase int32 = -2

// storePaths clones the finder's result into the slot-owned arenas.
func (s *prepSlot) storePaths(paths []Path, stats PreprocessStats) {
	s.hdr, s.ranks = copyPaths(paths, s.hdr, s.ranks)
	s.paths = s.hdr
	s.stats = stats
	s.cum = stats.CumulativeProb
}

// prepareSlot runs one subcarrier's channel-rate work (sorted QR + per-
// level model) into slot s using the caller-owned QR workspace.
//
//flexcore:noalloc
func (d *FlexCore) prepareSlot(s *prepSlot, h *cmatrix.Matrix, sigma2 float64, ws *cmatrix.QRWorkspace) {
	ws.SortedQRInto(h, d.opts.Ordering, &s.qr)
	NewModelInto(&s.model, s.qr.R, sigma2, d.cons)
}

// findSlotPaths runs the pre-processing tree search for slot s with the
// caller-owned finder and stores the result in the slot's arenas.
//
//flexcore:noalloc
func (d *FlexCore) findSlotPaths(s *prepSlot, f *pathFinder) {
	paths, stats := f.find(&s.model, d.opts.NPE, d.opts.Threshold)
	s.storePaths(paths, stats)
}

// PrepareAll prepares a whole frame of per-subcarrier channels (same
// geometry, same noise variance) in one call: the sorted QR and model of
// every subcarrier, then the pre-processing tree search for every
// subcarrier that needs one. With Options.Workers > 1 both stages fan
// out across the persistent worker pool; with Options.PathReuse the
// subcarriers are chained through the coherence test in index order, so
// a subcarrier within ReuseThreshold of the last fresh-prepared one
// aliases its position vectors instead of searching again (adjacent
// subcarriers inside the coherence bandwidth — the dominant OFDM case).
//
// With a ReuseState installed (SetReuseState), the coherence test also
// spans frames: each subcarrier first tries the previous frame's base
// for the same subcarrier, so a static or slowly-varying channel skips
// every search on a re-sent H, and the state is re-based on this
// frame's results afterwards.
//
// The hit/miss decisions are made sequentially in subcarrier order over
// the already-computed R factors, so results are identical for every
// worker count; with PathReuse disabled they are bit-identical to
// looping Prepare over the channels. PrepareAll leaves no subcarrier
// selected: call Select(k) before detecting. The frame state is valid
// until the next PrepareAll call (scalar Prepare does not disturb it).
//
//flexcore:noalloc
func (d *FlexCore) PrepareAll(hs []*cmatrix.Matrix, sigma2 float64) error {
	nr, n, err := validateFrameGeometry(hs)
	if err != nil {
		return err
	}
	d.n = n
	d.ensureScratch() //lint:ignore noalloc amortised: the inlined grow helper allocates only when the stream count changes
	if cap(d.frame) < len(hs) {
		grown := make([]prepSlot, len(hs)) //lint:ignore noalloc amortised: frame arena regrows only when the subcarrier count grows
		copy(grown, d.frame)               // keep the arenas already grown in old slots
		d.frame = grown
	}
	d.frame = d.frame[:len(hs)]
	d.frameN = len(hs)
	frame := d.frame

	parallel := d.opts.Workers > 1 && len(hs) > 1

	// Stage 1 — channel-rate math per subcarrier: sorted QR + model.
	if parallel {
		p := d.ensurePool()
		p.kind = jobPrepModel
		p.hs, p.sigma2, p.frame = hs, sigma2, frame
		p.dispatch()
		p.hs, p.frame = nil, nil
	} else {
		for k := range frame {
			d.prepareSlot(&frame[k], hs[k], sigma2, &d.qrws)
		}
	}

	// Stage 2 — sequential coherence tests over the computed R factors
	// (cheap: one normalized Frobenius distance per comparison), marking
	// each slot fresh or aliasing it to its coherence base. With an
	// installed ReuseState, subcarrier k first tries the previous
	// frame's base for the same subcarrier — the sharper key: a static
	// or slowly-varying channel hits on every subcarrier and skips the
	// search entirely — then falls back to the within-frame chain (the
	// last fresh-prepared subcarrier of this frame). Decisions are made
	// in subcarrier order, so results are identical for every worker
	// count.
	d.missIdx = d.missIdx[:0]
	base := int32(-1)
	ext := d.extReuse
	for k := range frame {
		s := &frame[k]
		s.hit = false
		s.base = -1
		s.stats = PreprocessStats{}
		if d.opts.PathReuse {
			if ext != nil && k < len(ext.slots) && ext.slots[k].valid {
				d.countSimilarity(n)
				if ext.slots[k].match(s.qr.R, sigma2, d.opts.ReuseThreshold) {
					s.hit = true
					s.base = extBase
					continue
				}
			}
			if base >= 0 {
				d.countSimilarity(n)
				if similarR(frame[base].qr.R, s.qr.R, d.opts.ReuseThreshold) {
					s.hit = true
					s.base = base
					continue
				}
			}
		}
		base = int32(k)
		d.missIdx = append(d.missIdx, int32(k)) //lint:ignore noalloc amortised: miss list is reset to len 0 and reuses its frame-sized capacity
	}

	// Stage 3 — pre-processing tree search for the fresh slots.
	if parallel && len(d.missIdx) > 1 {
		p := d.ensurePool()
		p.kind = jobPrepPaths
		p.hs, p.sigma2, p.frame, p.miss = hs, sigma2, frame, d.missIdx
		p.dispatch()
		p.hs, p.frame, p.miss = nil, nil, nil
	} else {
		for _, k := range d.missIdx {
			if d.useSoA() {
				d.findSlotPaths32(&frame[k], &d.finder32)
			} else {
				d.findSlotPaths(&frame[k], &d.finder)
			}
		}
	}

	// Resolve hit aliases and fold the counters in subcarrier order, so
	// the cumulative stats are identical for every worker count.
	// External hits copy the base's position vectors into slot-owned
	// arenas (a rank copy, negligible next to the skipped search):
	// the ReuseState may be re-based by a later frame — possibly on a
	// different detector — while this frame's slots are still selected.
	for k := range frame {
		s := &frame[k]
		if s.hit {
			if s.base == extBase {
				e := &ext.slots[k]
				s.hdr, s.ranks = copyPaths(e.paths, s.hdr, s.ranks)
				s.paths = s.hdr
				s.cum = e.cum
			} else {
				b := &frame[s.base]
				s.paths = b.paths
				s.cum = b.cum
			}
			d.ppOps.CacheHits++
		} else {
			d.ppOps.RealMuls += s.stats.RealMuls
			d.ppOps.Expanded += s.stats.Expanded
			if d.opts.PathReuse {
				d.ppOps.CacheMisses++
			}
		}
		d.ops.Prepares++
		muls := int64(4 * nr * n * n)
		d.ops.RealMuls += muls
		d.ops.FLOPs += 2 * muls
	}
	d.ppOps.CumulativeProb = frame[len(frame)-1].cum
	if d.opts.PathReuse && ext != nil {
		ext.update(frame, sigma2)
	}
	return nil
}

// validateFrameGeometry checks that a PrepareAll frame is non-empty and
// that every subcarrier shares one tall geometry, returning it. It is
// the cold error path of PrepareAll, kept outside the noalloc-annotated
// steady state because its error formatting necessarily allocates.
func validateFrameGeometry(hs []*cmatrix.Matrix) (nr, n int, err error) {
	if len(hs) == 0 {
		return 0, 0, fmt.Errorf("core: PrepareAll needs at least one channel")
	}
	nr, n = hs[0].Rows, hs[0].Cols
	if nr < n {
		return 0, 0, fmt.Errorf("core: need receive antennas ≥ streams, got %d×%d", nr, n)
	}
	for k, h := range hs {
		if h.Rows != nr || h.Cols != n {
			return 0, 0, fmt.Errorf("core: PrepareAll channels must share one geometry, subcarrier %d is %d×%d (frame is %d×%d)",
				k, h.Rows, h.Cols, nr, n)
		}
	}
	return nr, n, nil
}

// FrameSize returns the number of subcarriers prepared by the last
// PrepareAll (0 before the first).
func (d *FlexCore) FrameSize() int { return d.frameN }

// Select activates subcarrier k of the frame prepared by PrepareAll:
// subsequent Detect/DetectBatch/DetectSoft calls run against its
// channel. It is a pointer swap — O(1), no math, no allocation.
//
//flexcore:noalloc
func (d *FlexCore) Select(k int) error {
	if k < 0 || k >= d.frameN {
		return fmt.Errorf("core: Select(%d) outside the prepared frame of %d subcarriers", k, d.frameN) //lint:ignore noalloc cold validation path, never taken in steady state
	}
	s := &d.frame[k]
	d.qr = &s.qr
	d.model = &s.model
	d.paths = s.paths
	d.ppOps.CumulativeProb = s.cum
	d.soa.dirty = true
	return nil
}
