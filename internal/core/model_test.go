package core

import (
	"math"
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

func diagMatrix(d []float64) *cmatrix.Matrix {
	m := cmatrix.New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, complex(v, 0))
	}
	return m
}

func TestModelPeMonotoneInChannelGain(t *testing.T) {
	cons := constellation.MustNew(16)
	m := NewModel(diagMatrix([]float64{0.2, 1.0, 3.0}), 0.1, cons)
	if !(m.Pe[0] > m.Pe[1] && m.Pe[1] > m.Pe[2]) {
		t.Fatalf("Pe not decreasing in R(l,l): %v", m.Pe)
	}
}

func TestModelPeMonotoneInSNR(t *testing.T) {
	cons := constellation.MustNew(64)
	r := diagMatrix([]float64{1, 1})
	low := NewModel(r, channel.Sigma2FromSNRdB(10, 1), cons)
	high := NewModel(r, channel.Sigma2FromSNRdB(25, 1), cons)
	if low.Pe[0] <= high.Pe[0] {
		t.Fatalf("Pe should shrink with SNR: %v vs %v", low.Pe[0], high.Pe[0])
	}
}

func TestModelPeClamped(t *testing.T) {
	cons := constellation.MustNew(16)
	// Gigantic noise → raw Pe above 1 without clamping.
	m := NewModel(diagMatrix([]float64{1e-6}), 1e6, cons)
	if m.Pe[0] >= 1 || m.Pe[0] <= 0 {
		t.Fatalf("Pe not clamped: %v", m.Pe[0])
	}
	// Negligible noise → clamped above zero so logs stay finite.
	m = NewModel(diagMatrix([]float64{1e6}), 1e-9, cons)
	if m.Pe[0] <= 0 || math.IsInf(m.logPe[0], 0) {
		t.Fatalf("Pe lower clamp broken: %v", m.Pe[0])
	}
}

func TestLevelProbGeometricAndNormalised(t *testing.T) {
	cons := constellation.MustNew(16)
	m := NewModel(diagMatrix([]float64{0.8, 1.3}), 0.15, cons)
	for i := 0; i < 2; i++ {
		// Geometric decay with ratio Pe.
		for k := 1; k < 8; k++ {
			r := m.LevelProb(i, k+1) / m.LevelProb(i, k)
			if math.Abs(r-m.Pe[i]) > 1e-12 {
				t.Fatalf("level %d: ratio %v != Pe %v", i, r, m.Pe[i])
			}
		}
		// Infinite-rank sum is 1; the first |Q| ranks carry almost all of it.
		var sum float64
		for k := 1; k <= cons.Size(); k++ {
			sum += m.LevelProb(i, k)
		}
		if sum > 1+1e-9 || sum < 0.9 {
			t.Fatalf("level %d: truncated sum %v", i, sum)
		}
	}
}

func TestPathLogPConsistency(t *testing.T) {
	cons := constellation.MustNew(16)
	m := NewModel(diagMatrix([]float64{0.8, 1.3, 0.5}), 0.2, cons)
	if math.Abs(m.PathLogP([]int{1, 1, 1})-m.RootLogP()) > 1e-12 {
		t.Fatal("root log-probability inconsistent")
	}
	// Pc(p) must equal the product of level probabilities (Eq. 2).
	ranks := []int{3, 1, 2}
	want := math.Log(m.LevelProb(0, 3) * m.LevelProb(1, 1) * m.LevelProb(2, 2))
	if got := m.PathLogP(ranks); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PathLogP %v, want %v", got, want)
	}
}

func TestPathLogPLengthPanics(t *testing.T) {
	cons := constellation.MustNew(4)
	m := NewModel(diagMatrix([]float64{1, 1}), 0.1, cons)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong rank length")
		}
	}()
	m.PathLogP([]int{1})
}
