package core

import (
	"math"
	"testing"
	"testing/quick"

	"flexcore/internal/constellation"
)

// TestQuickFindPathsInvariants drives the pre-processing search with
// arbitrary per-level gains and noise levels: the output must always be
// unique position vectors in descending probability starting at the
// all-ones vector, with ranks within [1, |Q|].
func TestQuickFindPathsInvariants(t *testing.T) {
	cons := constellation.MustNew(16)
	f := func(g1, g2, g3, g4 float64, rawSNR uint8, rawNPE uint8) bool {
		gains := []float64{g1, g2, g3, g4}
		for i, g := range gains {
			g = math.Abs(math.Mod(g, 4))
			if g < 1e-3 || math.IsNaN(g) {
				g = 1e-3
			}
			gains[i] = g
		}
		snr := float64(rawSNR%30) + 1
		npe := int(rawNPE)%200 + 1
		m := NewModel(diagMatrix(gains), math.Pow(10, -snr/10), cons)
		paths, stats := FindPaths(m, npe, 0)
		if len(paths) == 0 || len(paths) > npe {
			return false
		}
		for i, r := range paths[0].Ranks {
			if r != 1 {
				t.Logf("first path rank[%d]=%d", i, r)
				return false
			}
		}
		seen := map[string]bool{}
		prev := math.Inf(1)
		for _, p := range paths {
			if p.LogP > prev+1e-9 {
				return false
			}
			prev = p.LogP
			k := key(p.Ranks)
			if seen[k] {
				return false
			}
			seen[k] = true
			for _, r := range p.Ranks {
				if r < 1 || r > cons.Size() {
					return false
				}
			}
		}
		// Paper complexity bound: ≤ N_PE·Nt multiplications + root.
		return stats.RealMuls <= int64(npe*len(gains))+int64(len(gains))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickModelProbabilities checks the per-level model stays a valid
// probability distribution under arbitrary gains and noise.
func TestQuickModelProbabilities(t *testing.T) {
	cons := constellation.MustNew(64)
	f := func(g float64, rawSNR int16) bool {
		g = math.Abs(math.Mod(g, 8))
		if math.IsNaN(g) {
			g = 1
		}
		sigma2 := math.Pow(10, -float64(rawSNR%40)/10)
		m := NewModel(diagMatrix([]float64{g}), sigma2, cons)
		if m.Pe[0] <= 0 || m.Pe[0] >= 1 {
			return false
		}
		var sum float64
		for k := 1; k <= cons.Size(); k++ {
			p := m.LevelProb(0, k)
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return sum <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
