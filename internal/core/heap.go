package core

// Bounded max-heap for the pre-processing candidate list L of §3.1.1,
// replacing the former binary-insertion sorted slice: push and pop-max
// are O(log N_PE) with no O(N_PE) memmove and no sort.* call in the
// expansion loop.
//
// Two properties keep it cheap without changing any output bit:
//
//   - Candidates do not carry rank vectors. A child is described by its
//     parent's index in the result set E plus the incremented element
//     (children are only ever generated from just-expanded nodes, so the
//     parent is always already in E); the n-element vector is
//     materialized only for the N_PE extracted candidates, never for the
//     ~N_PE·Nt generated ones.
//   - The N_PE size bound is enforced lazily: the paper drops the worst
//     entry whenever |L| > N_PE, but a dropped entry can provably never
//     be extracted (the remaining extractions number less than N_PE and
//     each outranks it), so the bound is a pure memory cap. The heap
//     compacts to the best N_PE entries — a hand-written quickselect,
//     then re-heapify — only when it exceeds 2·N_PE, amortizing the trim
//     to O(1) per push.
//
// Candidates carry an insertion sequence number that breaks probability
// ties exactly like the sorted list did (FIFO among equal logP on
// extraction), so the heap-based search returns the bit-identical path
// set in the bit-identical order.

// candNode is one candidate-list entry: the would-be child of result
// path `parent` obtained by incrementing element lastInc.
type candNode struct {
	logP    float64
	seq     int32 // insertion order; tie-break matching the sorted list
	lastInc int32 // index whose increment generated this node (dedup rule)
	parent  int32 // index into the finder's result set (-1 = root node)
}

// worse reports whether a ranks strictly below b: lower logP, or equal
// logP and later insertion. It is a total order (seq is unique).
func (a *candNode) worse(b *candNode) bool {
	if a.logP != b.logP { //lint:ignore floatcmp comparator: exact ties must hit the seq tie-break for bit-identical extraction order
		return a.logP < b.logP
	}
	return a.seq > b.seq
}

// candHeap is a binary max-heap of candidates: the root is the best
// (highest logP, earliest insertion among ties).
type candHeap []candNode

// push inserts a candidate.
//
//flexcore:noalloc
func (h *candHeap) push(n candNode) {
	a := append(*h, n) //lint:ignore noalloc amortised: capacity is reserved by the finder and retained across frames
	*h = a
	j := len(a) - 1
	for j > 0 {
		p := (j - 1) / 2
		if !a[p].worse(&a[j]) {
			break
		}
		a[p], a[j] = a[j], a[p]
		j = p
	}
}

// popMax removes and returns the best candidate.
//
//flexcore:noalloc
func (h *candHeap) popMax() candNode {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	*h = a
	a.siftDown(0)
	return top
}

// siftDown restores the heap property below i.
//
//flexcore:noalloc
func (h candHeap) siftDown(i int) {
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if c+1 < len(h) && h[c].worse(&h[c+1]) {
			c++
		}
		if !h[i].worse(&h[c]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// compact trims the heap to its k best candidates (quickselect, then
// re-heapify). By the trim-neutrality argument above this never changes
// which candidates get extracted.
//
//flexcore:noalloc
func (h *candHeap) compact(k int) {
	a := *h
	if len(a) <= k {
		return
	}
	selectBest(a, k)
	a = a[:k]
	for i := k/2 - 1; i >= 0; i-- {
		a.siftDown(i)
	}
	*h = a
}

// selectBest partially partitions a so its k best candidates (under the
// worse-order) occupy a[:k], in arbitrary order — an iterative
// median-of-three quickselect.
//
//flexcore:noalloc
func selectBest(a []candNode, k int) {
	lo, hi := 0, len(a)
	for hi-lo > 1 {
		// Median-of-three pivot from lo, mid, hi-1, parked at hi-1.
		mid := lo + (hi-lo)/2
		if a[lo].worse(&a[mid]) {
			a[lo], a[mid] = a[mid], a[lo]
		}
		if a[mid].worse(&a[hi-1]) {
			a[mid], a[hi-1] = a[hi-1], a[mid]
			if a[lo].worse(&a[mid]) {
				a[lo], a[mid] = a[mid], a[lo]
			}
		}
		// Now a[mid] is the median; best-first Lomuto partition on it.
		pivot := a[mid]
		a[mid], a[hi-1] = a[hi-1], a[mid]
		p := lo
		for j := lo; j < hi-1; j++ {
			if pivot.worse(&a[j]) { // a[j] better than pivot
				a[p], a[j] = a[j], a[p]
				p++
			}
		}
		a[p], a[hi-1] = a[hi-1], a[p]
		switch {
		case p == k || p == k-1:
			return
		case p > k:
			hi = p
		default:
			lo = p + 1
		}
	}
}
