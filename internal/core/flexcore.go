package core

import (
	"fmt"
	"math"
	"sync"

	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
	"flexcore/internal/detector"
)

// Options configures a FlexCore detector.
type Options struct {
	// NPE is the number of available processing elements; one sphere-
	// decoder path is evaluated per element (the paper's minimum-latency
	// allocation). Any positive value is legal — FlexCore's flexibility.
	NPE int
	// Threshold, when positive, enables a-FlexCore: pre-processing stops
	// as soon as the cumulative probability of the selected paths reaches
	// the threshold, activating only as many of the NPE elements as the
	// channel requires (the paper uses 0.95).
	Threshold float64
	// Ordering selects the sorted QR variant. The paper evaluates both
	// the SQRD ordering [13] and the FCSD ordering [4] and keeps the
	// better; OrderSQRD is the default here.
	Ordering cmatrix.Ordering
	// Workers > 1 evaluates paths on a goroutine pool, demonstrating the
	// embarrassingly parallel structure; 0 or 1 is sequential.
	Workers int
	// StrictDeactivation reproduces the paper's §3.2 wording literally: a
	// candidate outside the constellation kills the whole path. The
	// default instead saturates the slicer per axis (the natural hardware
	// behaviour, and what the paper's reported performance is consistent
	// with); see the ablation benchmark for the measured difference.
	StrictDeactivation bool
}

// FlexCore is the paper's detector: channel-aware path pre-selection plus
// fully parallel per-path evaluation. It implements detector.Detector.
type FlexCore struct {
	cons *constellation.Constellation
	opts Options

	qr     *cmatrix.QRResult
	model  *Model
	paths  []Path
	n      int
	ops    detector.OpCount
	ppOps  PreprocessStats
	fallbk int64 // detections resolved by the clamped-SIC fallback
}

// New returns a FlexCore detector. NPE must be ≥ 1.
func New(cons *constellation.Constellation, opts Options) *FlexCore {
	if opts.NPE < 1 {
		panic("core: NPE must be ≥ 1")
	}
	if opts.Ordering == 0 {
		opts.Ordering = cmatrix.OrderSQRD
	}
	return &FlexCore{cons: cons, opts: opts}
}

// Name implements detector.Detector.
func (d *FlexCore) Name() string {
	if d.opts.Threshold > 0 {
		return fmt.Sprintf("a-FlexCore(NPE=%d,θ=%.2f)", d.opts.NPE, d.opts.Threshold)
	}
	return fmt.Sprintf("FlexCore(NPE=%d)", d.opts.NPE)
}

// Prepare runs the channel-dependent work: the sorted QR decomposition
// (shared with any sphere decoder) and FlexCore's pre-processing tree
// search. It re-runs whenever the channel changes, as in the paper.
func (d *FlexCore) Prepare(h *cmatrix.Matrix, sigma2 float64) error {
	if h.Rows < h.Cols {
		return fmt.Errorf("core: need receive antennas ≥ streams, got %d×%d", h.Rows, h.Cols)
	}
	d.qr = cmatrix.SortedQR(h, d.opts.Ordering)
	d.n = h.Cols
	d.model = NewModel(d.qr.R, sigma2, d.cons)
	var stats PreprocessStats
	d.paths, stats = FindPaths(d.model, d.opts.NPE, d.opts.Threshold)
	d.ppOps.RealMuls += stats.RealMuls
	d.ppOps.Expanded += stats.Expanded
	d.ppOps.CumulativeProb = stats.CumulativeProb
	d.ops.Prepares++
	muls := int64(4 * h.Rows * h.Cols * h.Cols)
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	return nil
}

// ActivePaths returns the number of processing elements activated for the
// current channel (< NPE only for a-FlexCore).
func (d *FlexCore) ActivePaths() int { return len(d.paths) }

// Paths returns the selected position vectors (descending Pc).
func (d *FlexCore) Paths() []Path { return d.paths }

// PreprocessStats returns cumulative pre-processing work counters.
func (d *FlexCore) PreprocessStats() PreprocessStats { return d.ppOps }

// FallbackDetections returns how many Detect calls were resolved by the
// clamped-SIC fallback because every selected path deactivated.
func (d *FlexCore) FallbackDetections() int64 { return d.fallbk }

// pathResult is one processing element's output (Fig. 2).
type pathResult struct {
	idx []int
	ped float64
	ok  bool
}

// evalPath walks one tree path: at each level it cancels the decided
// interference, forms the effective received point (Eq. 5) and picks the
// rank[i]-th closest symbol through the predefined ordering. A candidate
// outside the constellation saturates the slicer per axis (default) or
// deactivates the whole path (StrictDeactivation, the paper's literal
// §3.2 wording).
func (d *FlexCore) evalPath(ybar []complex128, ranks []int, idx []int, sym []complex128) pathResult {
	ped := 0.0
	for i := d.n - 1; i >= 0; i-- {
		b := cancel(d.qr.R, ybar, sym, i)
		rii := real(d.qr.R.At(i, i))
		if rii <= 0 {
			return pathResult{ok: false}
		}
		z := b / complex(rii, 0)
		var k int
		if d.opts.StrictDeactivation {
			var ok bool
			k, ok = d.cons.KthClosest(z, ranks[i])
			if !ok {
				return pathResult{ok: false}
			}
		} else {
			k, _ = d.cons.KthClosestClamped(z, ranks[i])
		}
		idx[i] = k
		q := d.cons.Point(k)
		sym[i] = q
		dr := real(b) - rii*real(q)
		di := imag(b) - rii*imag(q)
		ped += dr*dr + di*di
	}
	return pathResult{idx: idx, ped: ped, ok: true}
}

// cancel is detector.cancel re-stated locally to keep the packages
// decoupled: b_i = ȳ(i) − Σ_{j>i} R(i,j)·sym(j).
func cancel(r *cmatrix.Matrix, ybar, sym []complex128, i int) complex128 {
	b := ybar[i]
	row := r.Data[i*r.Cols : (i+1)*r.Cols]
	for j := i + 1; j < r.Cols; j++ {
		b -= row[j] * sym[j]
	}
	return b
}

// Detect implements detector.Detector: it evaluates every selected path
// (one per processing element) and returns the path with the minimum
// Euclidean distance, falling back to a clamped SIC pass when every path
// deactivates.
func (d *FlexCore) Detect(y []complex128) []int {
	ybar := d.qr.Ybar(y)
	d.ops.Detections++
	// ȳ rotation plus per-path cost: Σ_i [4(n−1−i) + 4 + 2] real muls.
	perPath := int64(2*d.n*(d.n-1) + 6*d.n)
	muls := int64(4*len(y)*d.n) + perPath*int64(len(d.paths))
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	d.ops.Nodes += int64(len(d.paths) * d.n)

	var best pathResult
	best.ped = math.Inf(1)
	if d.opts.Workers > 1 {
		best = d.detectParallel(ybar)
	} else {
		idx := make([]int, d.n)
		sym := make([]complex128, d.n)
		for _, p := range d.paths {
			r := d.evalPath(ybar, p.Ranks, idx, sym)
			if r.ok && r.ped < best.ped {
				best = pathResult{idx: append([]int(nil), r.idx...), ped: r.ped, ok: true}
			}
		}
	}
	if !best.ok {
		d.fallbk++
		return d.qr.UnpermuteInts(d.clampedSIC(ybar))
	}
	return d.qr.UnpermuteInts(best.idx)
}

// detectParallel fans the paths out over a worker pool; each worker keeps
// its own scratch and local minimum, merged at the end — the software
// analogue of Fig. 2's per-processing-element pipeline plus minimum tree.
func (d *FlexCore) detectParallel(ybar []complex128) pathResult {
	workers := d.opts.Workers
	if workers > len(d.paths) {
		workers = len(d.paths)
	}
	results := make([]pathResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			idx := make([]int, d.n)
			sym := make([]complex128, d.n)
			local := pathResult{ped: math.Inf(1)}
			for p := w; p < len(d.paths); p += workers {
				r := d.evalPath(ybar, d.paths[p].Ranks, idx, sym)
				if r.ok && r.ped < local.ped {
					local = pathResult{idx: append([]int(nil), r.idx...), ped: r.ped, ok: true}
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	best := pathResult{ped: math.Inf(1)}
	for _, r := range results {
		if r.ok && r.ped < best.ped {
			best = r
		}
	}
	return best
}

// clampedSIC is the deactivation fallback: a rank-one descent using the
// exact slicer (which clamps to the constellation and never deactivates).
func (d *FlexCore) clampedSIC(ybar []complex128) []int {
	idx := make([]int, d.n)
	sym := make([]complex128, d.n)
	for i := d.n - 1; i >= 0; i-- {
		b := cancel(d.qr.R, ybar, sym, i)
		rii := real(d.qr.R.At(i, i))
		var z complex128
		if rii > 0 {
			z = b / complex(rii, 0)
		}
		idx[i] = d.cons.Slice(z)
		sym[i] = d.cons.Point(idx[i])
	}
	return idx
}

// OpCount implements detector.Detector.
func (d *FlexCore) OpCount() detector.OpCount { return d.ops }
