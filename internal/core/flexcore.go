package core

import (
	"fmt"
	"math"

	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
	"flexcore/internal/detector"
)

// Options configures a FlexCore detector.
type Options struct {
	// NPE is the number of available processing elements; one sphere-
	// decoder path is evaluated per element (the paper's minimum-latency
	// allocation). Any positive value is legal — FlexCore's flexibility.
	NPE int
	// Threshold, when positive, enables a-FlexCore: pre-processing stops
	// as soon as the cumulative probability of the selected paths reaches
	// the threshold, activating only as many of the NPE elements as the
	// channel requires (the paper uses 0.95).
	Threshold float64
	// Ordering selects the sorted QR variant. The paper evaluates both
	// the SQRD ordering [13] and the FCSD ordering [4] and keeps the
	// better; OrderSQRD is the default here.
	Ordering cmatrix.Ordering
	// Workers > 1 evaluates paths on a goroutine pool, demonstrating the
	// embarrassingly parallel structure; 0 or 1 is sequential.
	Workers int
	// StrictDeactivation reproduces the paper's §3.2 wording literally: a
	// candidate outside the constellation kills the whole path. The
	// default instead saturates the slicer per axis (the natural hardware
	// behaviour, and what the paper's reported performance is consistent
	// with); see the ablation benchmark for the measured difference.
	StrictDeactivation bool
	// ExactSlicer replaces the triangle-LUT k-th-closest lookup with the
	// true sort-based k-th closest symbol (constellation.ExactKth) — the
	// idealised detection step the paper's Fig. 6 ordering approximates.
	// Under it the rank-vector → symbol-vector map is a bijection, so
	// FlexCore with N_PE = |Q|^Nt provably equals exhaustive ML; the
	// conformance suite relies on this mode as a reference. It is much
	// slower than the LUT (it sorts |Q| distances per tree level) and is
	// meant for verification, not production detection. ExactSlicer takes
	// precedence over StrictDeactivation (exact lookups never leave the
	// constellation, so no path ever deactivates).
	ExactSlicer bool
	// PathReuse enables the coherence-aware position-vector cache: the
	// selected path set E depends only on R and σ² (§3.1.1), so a
	// Prepare whose R is within ReuseThreshold of the previous fresh-
	// prepared channel (normalized Frobenius distance, with σ² within
	// the same relative tolerance) reuses E and skips the tree search —
	// only the QR decomposition and the per-level model terms are
	// redone. Adjacent OFDM subcarriers inside the channel's coherence
	// bandwidth, and slowly fading packets, hit this cache almost
	// always. Hit/miss counts are reported by PreprocessStats.
	PathReuse bool
	// ReuseThreshold is the relative tolerance of the PathReuse
	// similarity test. 0 reuses only on an exactly identical (R, σ²)
	// pair — provably output-neutral (the conformance suite checks it).
	// Typical OFDM operation uses 0.05–0.2 (see DESIGN.md §9).
	ReuseThreshold float64
	// Backend selects the hot-path arithmetic (DESIGN.md §11). The
	// default BackendComplex128 is the reference scalar arithmetic;
	// BackendSoA32 runs detection on float32 structure-of-arrays planes
	// batched across the paths and the pre-processing search on a
	// packed-key float32 heap. Decisions match the default backend on
	// the conformance corpus; distances carry a documented ULP-scaled
	// tolerance. ExactSlicer always detects with the scalar arithmetic
	// regardless of Backend.
	Backend Backend
}

// FlexCore is the paper's detector: channel-aware path pre-selection plus
// fully parallel per-path evaluation. It implements detector.Detector and
// detector.BatchDetector.
//
// A FlexCore instance is not safe for concurrent use; run one instance
// per goroutine (they are cheap — all scratch is lazily grown and
// reused). With Workers > 1 the instance owns a persistent goroutine
// pool; call Close to release it when the detector is long-lived no more.
type FlexCore struct {
	cons *constellation.Constellation
	opts Options

	qr     *cmatrix.QRResult
	model  *Model
	paths  []Path
	n      int
	ops    detector.OpCount
	ppOps  PreprocessStats
	fallbk int64 // detections resolved by the clamped-SIC fallback

	// Steady-state scratch, grown in Prepare and reused across
	// Detect/DetectBatch calls so the hot path is allocation-free.
	ybar []complex128 // rotated received vector
	idx  []int        // per-path candidate scratch
	sym  []complex128 // per-path symbol scratch
	best []int        // current best path (factored order)
	out  []int        // unpermuted result handed to the caller

	// Batch result arena: one flat buffer re-sliced into per-vector
	// headers each DetectBatch call.
	batchBuf []int
	batchHdr [][]int

	// Channel-rate scratch: QR factors, workspace, model storage and the
	// pre-processing pool, all reused so steady-state Prepare performs
	// no allocation (the paper's O(N_PE·Nt) pre-processing claim held in
	// memory traffic too, not only arithmetic).
	qrOwn    cmatrix.QRResult
	qrws     cmatrix.QRWorkspace
	modelOwn Model
	finder   pathFinder
	finder32 pathFinder32
	reuse    reuseCache
	extReuse *ReuseState // caller-owned cross-frame bases (SetReuseState)

	// SoA-backend planes and scratch (Options.Backend == BackendSoA32).
	soa soaState

	// Frame state: per-subcarrier prepared slots filled by PrepareAll,
	// activated by Select.
	frame   []prepSlot
	frameN  int
	missIdx []int32 // PrepareAll scratch: slots needing a fresh search

	pool *pool // persistent workers, started on first parallel use
}

// New returns a FlexCore detector. NPE must be ≥ 1.
func New(cons *constellation.Constellation, opts Options) *FlexCore {
	if opts.NPE < 1 {
		panic("core: NPE must be ≥ 1")
	}
	if opts.Ordering == 0 {
		opts.Ordering = cmatrix.OrderSQRD
	}
	return &FlexCore{cons: cons, opts: opts}
}

// Name implements detector.Detector.
func (d *FlexCore) Name() string {
	suffix := ""
	if d.opts.ExactSlicer {
		suffix = ",exact"
	}
	if d.opts.Backend != BackendComplex128 {
		suffix += "," + d.opts.Backend.String()
	}
	if d.opts.Threshold > 0 {
		return fmt.Sprintf("a-FlexCore(NPE=%d,θ=%.2f%s)", d.opts.NPE, d.opts.Threshold, suffix)
	}
	return fmt.Sprintf("FlexCore(NPE=%d%s)", d.opts.NPE, suffix)
}

// Prepare runs the channel-dependent work: the sorted QR decomposition
// (shared with any sphere decoder) and FlexCore's pre-processing tree
// search. It re-runs whenever the channel changes, as in the paper.
// All channel-rate storage (QR factors, model, candidate heap, path
// set) is detector-owned and reused, so steady-state Prepare calls are
// allocation-free; the slices returned by Paths() are valid until the
// next Prepare/PrepareAll call. With Options.PathReuse, a channel
// coherent with the previous fresh-prepared one reuses its position
// vectors and skips the tree search entirely.
//
//flexcore:noalloc
func (d *FlexCore) Prepare(h *cmatrix.Matrix, sigma2 float64) error {
	if h.Rows < h.Cols {
		return fmt.Errorf("core: need receive antennas ≥ streams, got %d×%d", h.Rows, h.Cols) //lint:ignore noalloc cold validation path, never taken in steady state
	}
	d.qr = d.qrws.SortedQRInto(h, d.opts.Ordering, &d.qrOwn)
	d.n = h.Cols
	d.ensureScratch() //lint:ignore noalloc amortised: the inlined grow helper allocates only when the stream count changes
	d.model = NewModelInto(&d.modelOwn, d.qr.R, sigma2, d.cons)
	d.preparePaths(d.qr.R, sigma2)
	d.soa.dirty = true
	d.ops.Prepares++
	muls := int64(4 * h.Rows * h.Cols * h.Cols)
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	return nil
}

// preparePaths selects the position vectors for the current model,
// going through the coherence cache when PathReuse is enabled.
//
//flexcore:noalloc
func (d *FlexCore) preparePaths(r *cmatrix.Matrix, sigma2 float64) {
	if d.opts.PathReuse && d.reuse.valid {
		d.countSimilarity(r.Cols)
		if d.reuse.match(r, sigma2, d.opts.ReuseThreshold) {
			d.paths = d.reuse.paths
			d.ppOps.CacheHits++
			d.ppOps.CumulativeProb = d.reuse.cum
			return
		}
	}
	var paths []Path
	var stats PreprocessStats
	if d.useSoA() {
		paths, stats = d.finder32.find(d.model, d.opts.NPE, d.opts.Threshold)
	} else {
		paths, stats = d.finder.find(d.model, d.opts.NPE, d.opts.Threshold)
	}
	d.ppOps.RealMuls += stats.RealMuls
	d.ppOps.Expanded += stats.Expanded
	d.ppOps.CumulativeProb = stats.CumulativeProb
	if d.opts.PathReuse {
		d.ppOps.CacheMisses++
		d.reuse.store(r, sigma2, paths, stats.CumulativeProb)
		d.paths = d.reuse.paths
		return
	}
	d.paths = paths
}

// countSimilarity accounts the coherence test's arithmetic: 2 real
// multiplications per R entry for the squared distance plus 2 for the
// base norm.
//
//flexcore:noalloc
func (d *FlexCore) countSimilarity(n int) {
	muls := int64(4 * n * n)
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
}

// SetReuseState installs (or, with nil, removes) an externally-owned
// cross-frame coherence base for PrepareAll: with Options.PathReuse
// enabled, each subcarrier of a prepared frame first tests the state's
// base for the same subcarrier before the within-frame chain, and the
// state is re-based on the frame's results afterwards. The caller keys
// the state however it likes — the serving layer installs one per user
// before each frame, so a user's static channel skips the
// candidate-position search across frames. It has no effect on the
// scalar Prepare path (which keeps the detector-internal depth-1
// cache) or when PathReuse is disabled. See ReuseState for the
// single-detector-at-a-time contract.
//
//flexcore:noalloc
func (d *FlexCore) SetReuseState(st *ReuseState) { d.extReuse = st }

// ActivePaths returns the number of processing elements activated for the
// current channel (< NPE only for a-FlexCore).
func (d *FlexCore) ActivePaths() int { return len(d.paths) }

// Paths returns the selected position vectors (descending Pc).
func (d *FlexCore) Paths() []Path { return d.paths }

// PreprocessStats returns cumulative pre-processing work counters.
func (d *FlexCore) PreprocessStats() PreprocessStats { return d.ppOps }

// FallbackDetections returns how many Detect calls were resolved by the
// clamped-SIC fallback because every selected path deactivated.
func (d *FlexCore) FallbackDetections() int64 { return d.fallbk }

// ensureScratch grows the detector-owned scratch to the current stream
// count; it only allocates when n grows, keeping Detect allocation-free
// in steady state.
func (d *FlexCore) ensureScratch() {
	if cap(d.idx) < d.n {
		d.idx = make([]int, d.n)
		d.sym = make([]complex128, d.n)
		d.best = make([]int, d.n)
		d.out = make([]int, d.n)
		d.ybar = make([]complex128, d.n)
	}
	d.idx = d.idx[:d.n]
	d.sym = d.sym[:d.n]
	d.best = d.best[:d.n]
	d.out = d.out[:d.n]
	d.ybar = d.ybar[:d.n]
}

// evalPath walks one tree path: at each level it cancels the decided
// interference, forms the effective received point (Eq. 5) and picks the
// rank[i]-th closest symbol through the predefined ordering, writing the
// candidate into idx/sym. A candidate outside the constellation
// saturates the slicer per axis (default) or deactivates the whole path
// (StrictDeactivation, the paper's literal §3.2 wording), reported by
// ok = false.
//
//flexcore:noalloc
func (d *FlexCore) evalPath(ybar []complex128, ranks []int, idx []int, sym []complex128) (ped float64, ok bool) {
	for i := d.n - 1; i >= 0; i-- {
		b := cmatrix.CancelRow(d.qr.R, ybar, sym, i)
		rii := real(d.qr.R.At(i, i))
		if rii <= 0 {
			return 0, false
		}
		z := b / complex(rii, 0)
		var k int
		if d.opts.ExactSlicer {
			k = d.cons.ExactKth(z, ranks[i])
		} else if d.opts.StrictDeactivation {
			var kok bool
			k, kok = d.cons.KthClosest(z, ranks[i])
			if !kok {
				return 0, false
			}
		} else {
			k, _ = d.cons.KthClosestClamped(z, ranks[i])
		}
		idx[i] = k
		q := d.cons.Point(k)
		sym[i] = q
		ped += cmatrix.PEDIncrement(b, rii, q)
	}
	return ped, true
}

// countDetections accumulates the operation counters for detecting
// `vectors` received vectors of length ylen under the current Prepare.
//
//flexcore:noalloc
func (d *FlexCore) countDetections(vectors, ylen int) {
	d.ops.Detections += int64(vectors)
	// ȳ rotation plus per-path cost: Σ_i [4(n−1−i) + 4 + 2] real muls.
	perPath := int64(2*d.n*(d.n-1) + 6*d.n)
	muls := (int64(4*ylen*d.n) + perPath*int64(len(d.paths))) * int64(vectors)
	d.ops.RealMuls += muls
	d.ops.FLOPs += 2 * muls
	d.ops.Nodes += int64(len(d.paths)*d.n) * int64(vectors)
}

// Detect implements detector.Detector: it evaluates every selected path
// (one per processing element) and returns the path with the minimum
// Euclidean distance, falling back to a clamped SIC pass when every path
// deactivates. The returned slice is owned by the detector and valid
// until its next Detect/DetectBatch call; copy it to retain.
//
//flexcore:noalloc
func (d *FlexCore) Detect(y []complex128) []int {
	d.countDetections(1, len(y))
	if d.useSoA() {
		return d.detectSoA(y)
	}
	// One or zero paths gain nothing from fan-out: take the sequential
	// route before touching the pool.
	if d.opts.Workers > 1 && len(d.paths) > 1 {
		ybar := d.qr.YbarInto(y, d.ybar)
		if !d.detectParallel(ybar) {
			d.fallbk++
			d.clampedSICInto(ybar, d.idx, d.sym)
			return d.qr.UnpermuteIntsInto(d.idx, d.out)
		}
		return d.qr.UnpermuteIntsInto(d.best, d.out)
	}
	if d.detectOne(y, d.ybar, d.idx, d.sym, d.best, d.out) {
		d.fallbk++
	}
	return d.out
}

// DetectBatch implements detector.BatchDetector: it detects a whole
// burst of received vectors under the current Prepare, fanning vectors
// (not paths) across the persistent workers so the pool wake-up cost is
// paid once per burst. Results live in a reused arena, valid until the
// next Detect/DetectBatch call. With Workers ≤ 1 the burst is processed
// sequentially with the same scratch reuse.
//
// A nil or empty burst returns nil without counting detections; the
// arena regrows transparently for bursts larger than any seen before;
// and calling DetectBatch after Close restarts the worker pool on
// demand (Close quiesces, it does not retire the detector).
//
//flexcore:noalloc
func (d *FlexCore) DetectBatch(ys [][]complex128) [][]int {
	if len(ys) == 0 {
		return nil
	}
	d.countDetections(len(ys), len(ys[0]))
	out := d.batchSlots(len(ys)) //lint:ignore noalloc amortised: the inlined arena helper allocates only when the burst shape grows
	soa := d.useSoA()
	if soa {
		// Refresh once on the dispatcher so the batch workers only read
		// the planes.
		d.soaRefresh()
	}
	if d.opts.Workers > 1 && len(ys) > 1 && len(d.paths) > 0 {
		p := d.ensurePool()
		p.kind = jobBatch
		p.ys, p.out = ys, out
		p.dispatch()
		p.ys, p.out = nil, nil
		for _, w := range p.workers {
			d.fallbk += w.fallbk
		}
		return out
	}
	for i, y := range ys {
		var fb bool
		if soa {
			fb = d.soaDetectOne(y, &d.soa.scratch, d.ybar, d.idx, d.sym, d.best, out[i])
		} else {
			fb = d.detectOne(y, d.ybar, d.idx, d.sym, d.best, out[i])
		}
		if fb {
			d.fallbk++
		}
	}
	return out
}

// batchSlots re-slices the batch arena into m result slots of n streams.
func (d *FlexCore) batchSlots(m int) [][]int {
	if cap(d.batchHdr) < m {
		d.batchHdr = make([][]int, m)
	}
	d.batchHdr = d.batchHdr[:m]
	if len(d.batchBuf) < m*d.n {
		d.batchBuf = make([]int, m*d.n)
	}
	for i := 0; i < m; i++ {
		d.batchHdr[i] = d.batchBuf[i*d.n : (i+1)*d.n : (i+1)*d.n]
	}
	return d.batchHdr
}

// detectOne runs one full detection with caller-owned scratch (ybar,
// idx, sym, best of length ≥ n) and writes the unpermuted result into
// out. It reports whether the clamped-SIC fallback resolved the vector.
// It is the sequential per-vector kernel shared by Detect, the
// sequential DetectBatch route and the pool's batch workers.
//
//flexcore:noalloc
func (d *FlexCore) detectOne(y []complex128, ybar []complex128, idx []int, sym []complex128, best, out []int) bool {
	yb := d.qr.YbarInto(y, ybar)
	bestPed := math.Inf(1)
	found := false
	for _, p := range d.paths {
		ped, ok := d.evalPath(yb, p.Ranks, idx, sym)
		if ok && ped < bestPed {
			bestPed, found = ped, true
			copy(best, idx)
		}
	}
	if !found {
		d.clampedSICInto(yb, idx, sym)
		d.qr.UnpermuteIntsInto(idx, out)
		return true
	}
	d.qr.UnpermuteIntsInto(best, out)
	return false
}

// detectParallel fans the paths out over the persistent worker pool;
// each worker keeps its own scratch and local minimum, merged here — the
// software analogue of Fig. 2's per-processing-element pipeline plus
// minimum tree. The winning path lands in d.best; the return value
// reports whether any path survived.
//
//flexcore:noalloc
func (d *FlexCore) detectParallel(ybar []complex128) bool {
	p := d.ensurePool()
	p.kind = jobPaths
	p.ybar = ybar
	p.dispatch()
	bestPed := math.Inf(1)
	var winner *poolWorker
	for _, w := range p.workers {
		if w.ok && w.ped < bestPed {
			bestPed = w.ped
			winner = w
		}
	}
	if winner == nil {
		return false
	}
	copy(d.best, winner.best)
	return true
}

// ensurePool lazily starts the persistent workers (first parallel use).
func (d *FlexCore) ensurePool() *pool {
	if d.pool == nil {
		d.pool = newPool(d, d.opts.Workers)
	}
	return d.pool
}

// Close releases the persistent worker pool (a no-op for sequential
// detectors). The detector remains usable afterwards: the pool restarts
// on the next parallel call.
func (d *FlexCore) Close() {
	if d.pool != nil {
		d.pool.stop()
		d.pool = nil
	}
}

// clampedSICInto is the deactivation fallback: a rank-one descent using
// the exact slicer (which clamps to the constellation and never
// deactivates), written into caller-owned idx/sym scratch.
//
//flexcore:noalloc
func (d *FlexCore) clampedSICInto(ybar []complex128, idx []int, sym []complex128) []int {
	for i := d.n - 1; i >= 0; i-- {
		b := cmatrix.CancelRow(d.qr.R, ybar, sym, i)
		rii := real(d.qr.R.At(i, i))
		var z complex128
		if rii > 0 {
			z = b / complex(rii, 0)
		}
		idx[i] = d.cons.Slice(z)
		sym[i] = d.cons.Point(idx[i])
	}
	return idx
}

// OpCount implements detector.Detector.
func (d *FlexCore) OpCount() detector.OpCount { return d.ops }
