package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"flexcore/internal/constellation"
)

func TestModemRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	m := NewModulator()
	cons := constellation.MustNew(16)
	data := make([]complex128, DataSubcarriers)
	for i := range data {
		data[i] = cons.Point(rng.IntN(16))
	}
	wave, err := m.Symbol(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != SamplesPerSymbol {
		t.Fatalf("waveform length %d", len(wave))
	}
	// The first CP samples must repeat the tail.
	for i := 0; i < CPLength; i++ {
		if cmplx.Abs(wave[i]-wave[NFFT+i]) > 1e-12 {
			t.Fatalf("CP mismatch at %d", i)
		}
	}
	got, err := m.Demodulate(wave)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if cmplx.Abs(got[i]-data[i]) > 1e-9 {
			t.Fatalf("round trip bin %d: %v vs %v", i, got[i], data[i])
		}
	}
}

func TestModemValidation(t *testing.T) {
	m := NewModulator()
	if _, err := m.Symbol(make([]complex128, 5)); err == nil {
		t.Fatal("short data accepted")
	}
	if _, err := m.Demodulate(make([]complex128, 10)); err == nil {
		t.Fatal("short waveform accepted")
	}
}

func TestModemCPAbsorbsMultipath(t *testing.T) {
	// A delay-spread channel shorter than the CP must appear as a pure
	// per-subcarrier complex gain — the property OFDM exists for.
	rng := rand.New(rand.NewPCG(13, 14))
	m := NewModulator()
	cons := constellation.MustNew(16)
	data := make([]complex128, DataSubcarriers)
	for i := range data {
		data[i] = cons.Point(rng.IntN(16))
	}
	wave, err := m.Symbol(data)
	if err != nil {
		t.Fatal(err)
	}
	// 4-tap channel.
	taps := []complex128{complex(0.8, 0.1), complex(0.3, -0.2), complex(-0.1, 0.15), complex(0.05, 0.05)}
	// Convolve two consecutive identical symbols so the CP of the second
	// absorbs the first's tail, then inspect the second.
	stream := append(append([]complex128(nil), wave...), wave...)
	rx := convolve(stream, taps)
	second := rx[SamplesPerSymbol : 2*SamplesPerSymbol]
	got, err := m.Demodulate(second)
	if err != nil {
		t.Fatal(err)
	}
	// Expected per-bin gain: DFT of the taps at the bin frequency.
	idx := DataSubcarrierIndices()
	for i, bin := range idx {
		var h complex128
		for d, tap := range taps {
			h += tap * cmplx.Exp(complex(0, -2*math.Pi*float64(bin*d)/float64(NFFT)))
		}
		want := h * data[i]
		if cmplx.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("bin %d: %v, want %v", bin, got[i], want)
		}
	}
}

func convolve(x, taps []complex128) []complex128 {
	out := make([]complex128, len(x))
	for n := range x {
		for d, tap := range taps {
			if n-d >= 0 {
				out[n] += tap * x[n-d]
			}
		}
	}
	return out
}

func TestLTFChannelEstimation(t *testing.T) {
	m := NewModulator()
	ltfWave, err := m.Symbol(LTFSequence())
	if err != nil {
		t.Fatal(err)
	}
	taps := []complex128{complex(1, 0), complex(0.4, -0.3)}
	stream := append(append([]complex128(nil), ltfWave...), ltfWave...)
	rx := convolve(stream, taps)
	h, err := EstimateFromLTF(rx[SamplesPerSymbol : 2*SamplesPerSymbol])
	if err != nil {
		t.Fatal(err)
	}
	idx := DataSubcarrierIndices()
	for i, bin := range idx {
		var want complex128
		for d, tap := range taps {
			want += tap * cmplx.Exp(complex(0, -2*math.Pi*float64(bin*d)/float64(NFFT)))
		}
		if cmplx.Abs(h[i]-want) > 1e-9 {
			t.Fatalf("bin %d: ĥ %v, want %v", bin, h[i], want)
		}
	}
}

func TestCFOEstimateAndCorrect(t *testing.T) {
	m := NewModulator()
	ltfWave, err := m.Symbol(LTFSequence())
	if err != nil {
		t.Fatal(err)
	}
	const cfo = 0.002 // radians per sample
	stream := append(append([]complex128(nil), ltfWave...), ltfWave...)
	for i := range stream {
		stream[i] *= cmplx.Exp(complex(0, cfo*float64(i)))
	}
	got := EstimateCFO(stream[:SamplesPerSymbol], stream[SamplesPerSymbol:])
	if math.Abs(got-cfo) > 1e-6 {
		t.Fatalf("CFO estimate %v, want %v", got, cfo)
	}
	CorrectCFO(stream, got, 0)
	// After correction the two halves must match again.
	for i := 0; i < SamplesPerSymbol; i++ {
		if cmplx.Abs(stream[i]-stream[SamplesPerSymbol+i]) > 1e-6 {
			t.Fatalf("correction failed at %d", i)
		}
	}
}

func TestLTFSequenceBalanced(t *testing.T) {
	seq := LTFSequence()
	if len(seq) != DataSubcarriers {
		t.Fatal("LTF length")
	}
	pos := 0
	for _, v := range seq {
		if v != 1 && v != -1 {
			t.Fatalf("LTF value %v not BPSK", v)
		}
		if v == 1 {
			pos++
		}
	}
	// Reasonably balanced sign pattern.
	if pos < DataSubcarriers/4 || pos > 3*DataSubcarriers/4 {
		t.Fatalf("LTF unbalanced: %d of %d positive", pos, DataSubcarriers)
	}
}
