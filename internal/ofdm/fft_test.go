package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

func randSignal(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randSignal(rng, n)
		want := DFT(x)
		got := FFT(append([]complex128(nil), x...))
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, DFT = %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	x := randSignal(rng, 64)
	orig := append([]complex128(nil), x...)
	IFFT(FFT(x))
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-12*64 {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	x := randSignal(rng, 128)
	var tp float64
	for _, v := range x {
		tp += real(v)*real(v) + imag(v)*imag(v)
	}
	FFT(x)
	var fp float64
	for _, v := range x {
		fp += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(fp-128*tp) > 1e-8*fp {
		t.Fatalf("Parseval violated: %v vs %v", fp, 128*tp)
	}
}

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 16)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v", i, v)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FFT(make([]complex128, 48))
}
