// Package ofdm fixes the 802.11-style OFDM numerology used throughout the
// FlexCore evaluation (20 MHz, 64-point FFT, 48 data subcarriers, 4 µs
// symbols) and the derived PHY-rate and network-throughput arithmetic.
package ofdm

// 802.11 OFDM constants for a 20 MHz channel.
const (
	// NFFT is the FFT size.
	NFFT = 64
	// DataSubcarriers is the number of payload-bearing subcarriers.
	DataSubcarriers = 48
	// PilotSubcarriers carry training, not payload.
	PilotSubcarriers = 4
	// SymbolDuration is the OFDM symbol duration including the 0.8 µs
	// guard interval, in seconds.
	SymbolDuration = 4e-6
)

// SymbolsPerSecond is the OFDM symbol rate (250 k symbols/s at 20 MHz).
const SymbolsPerSecond = 1 / SymbolDuration

// DataSubcarrierIndices returns the FFT bin indices of the 48 data
// subcarriers in the 802.11 layout: occupied bins ±1…±26 minus the pilot
// bins ±7 and ±21, with negative frequencies mapped to NFFT−|k|.
func DataSubcarrierIndices() []int {
	isPilot := func(k int) bool { return k == 7 || k == 21 }
	idx := make([]int, 0, DataSubcarriers)
	for k := 1; k <= 26; k++ {
		if !isPilot(k) {
			idx = append(idx, k)
		}
	}
	for k := -26; k <= -1; k++ {
		if !isPilot(-k) {
			idx = append(idx, NFFT+k)
		}
	}
	return idx
}

// CodedBitsPerSymbol returns NCBPS for one spatial stream: data
// subcarriers times coded bits per subcarrier.
func CodedBitsPerSymbol(bitsPerSubcarrier int) int {
	return DataSubcarriers * bitsPerSubcarrier
}

// PHYRate returns the aggregate information bit rate in bit/s for nt
// spatial streams carrying bitsPerSymbol-bit constellation symbols at the
// given code rate, with every data subcarrier loaded.
func PHYRate(nt, bitsPerSymbol int, codeRate float64) float64 {
	return float64(nt) * float64(bitsPerSymbol) * codeRate * DataSubcarriers * SymbolsPerSecond
}

// NetworkThroughput returns the goodput in bit/s after packet losses: the
// paper's "network throughput" metric is PHY rate × (1 − PER).
func NetworkThroughput(nt, bitsPerSymbol int, codeRate, per float64) float64 {
	return PHYRate(nt, bitsPerSymbol, codeRate) * (1 - per)
}

// VectorsPerSecond returns the number of received MIMO symbol vectors the
// AP must detect per second (data subcarriers × OFDM symbol rate).
func VectorsPerSecond() float64 { return DataSubcarriers * SymbolsPerSecond }
