package ofdm

import (
	"math"
	"testing"
)

func TestDataSubcarrierIndices(t *testing.T) {
	idx := DataSubcarrierIndices()
	if len(idx) != DataSubcarriers {
		t.Fatalf("got %d indices, want %d", len(idx), DataSubcarriers)
	}
	seen := map[int]bool{}
	for _, k := range idx {
		if k <= 0 || k >= NFFT {
			t.Fatalf("index %d out of FFT range", k)
		}
		if seen[k] {
			t.Fatalf("duplicate index %d", k)
		}
		seen[k] = true
		// Pilot and DC bins must not appear.
		for _, p := range []int{0, 7, 21, NFFT - 7, NFFT - 21} {
			if k == p {
				t.Fatalf("pilot/DC bin %d used for data", k)
			}
		}
	}
}

func TestPHYRateKnownValues(t *testing.T) {
	// 12 users × 64-QAM × rate-1/2 × 48 subcarriers × 250k symbols/s = 432 Mbit/s.
	if got := PHYRate(12, 6, 0.5); math.Abs(got-432e6) > 1 {
		t.Fatalf("12×64QAM rate = %v", got)
	}
	// 8 users × 16-QAM × 1/2 = 192 Mbit/s.
	if got := PHYRate(8, 4, 0.5); math.Abs(got-192e6) > 1 {
		t.Fatalf("8×16QAM rate = %v", got)
	}
}

func TestNetworkThroughput(t *testing.T) {
	full := PHYRate(8, 4, 0.5)
	if got := NetworkThroughput(8, 4, 0.5, 0); got != full {
		t.Fatal("PER=0 must give full rate")
	}
	if got := NetworkThroughput(8, 4, 0.5, 1); got != 0 {
		t.Fatal("PER=1 must give zero")
	}
	if got := NetworkThroughput(8, 4, 0.5, 0.1); math.Abs(got-0.9*full) > 1e-6 {
		t.Fatal("PER=0.1 must give 90%")
	}
}

func TestVectorsPerSecond(t *testing.T) {
	if got := VectorsPerSecond(); math.Abs(got-12e6) > 1 {
		t.Fatalf("vectors/s = %v, want 12M", got)
	}
}

func TestCodedBitsPerSymbol(t *testing.T) {
	if CodedBitsPerSymbol(6) != 288 {
		t.Fatal("64-QAM NCBPS")
	}
	if CodedBitsPerSymbol(4) != 192 {
		t.Fatal("16-QAM NCBPS")
	}
}
