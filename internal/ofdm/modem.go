package ofdm

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CPLength is the 802.11 cyclic prefix in samples (0.8 µs at 20 MHz).
const CPLength = 16

// SamplesPerSymbol is the time-domain OFDM symbol length including CP.
const SamplesPerSymbol = NFFT + CPLength

// Modulator assembles time-domain OFDM symbols from frequency-domain
// subcarrier values — the transmit half of the paper's WARP waveform
// chain.
type Modulator struct {
	dataIdx []int
}

// NewModulator returns a modulator over the 48 standard data bins.
func NewModulator() *Modulator {
	return &Modulator{dataIdx: DataSubcarrierIndices()}
}

// Symbol modulates one OFDM symbol: data carries one complex value per
// data subcarrier (len 48); pilots and unused bins are zero. The output
// has SamplesPerSymbol samples, CP first. The transform is unitary
// (√N-scaled) so a per-sample noise variance of σ² at the receiver maps
// to exactly σ² per demodulated subcarrier — per-bin SNR equals the
// waveform SNR.
func (m *Modulator) Symbol(data []complex128) ([]complex128, error) {
	if len(data) != len(m.dataIdx) {
		return nil, fmt.Errorf("ofdm: %d data values, want %d", len(data), len(m.dataIdx))
	}
	freq := make([]complex128, NFFT)
	for i, bin := range m.dataIdx {
		freq[bin] = data[i]
	}
	IFFT(freq)
	root := complex(math.Sqrt(NFFT), 0)
	for i := range freq {
		freq[i] *= root
	}
	out := make([]complex128, SamplesPerSymbol)
	copy(out, freq[NFFT-CPLength:]) // cyclic prefix
	copy(out[CPLength:], freq)
	return out, nil
}

// Demodulate strips the CP and returns the 48 data-bin values of one
// received OFDM symbol (SamplesPerSymbol samples), inverting Symbol's
// unitary scaling.
func (m *Modulator) Demodulate(samples []complex128) ([]complex128, error) {
	if len(samples) != SamplesPerSymbol {
		return nil, fmt.Errorf("ofdm: %d samples, want %d", len(samples), SamplesPerSymbol)
	}
	freq := make([]complex128, NFFT)
	copy(freq, samples[CPLength:])
	FFT(freq)
	root := complex(math.Sqrt(NFFT), 0)
	out := make([]complex128, len(m.dataIdx))
	for i, bin := range m.dataIdx {
		out[i] = freq[bin] / root
	}
	return out, nil
}

// LTFSequence returns the known long-training-field values: BPSK ±1 on
// every data bin, deterministic in the bin index (a stand-in for the
// 802.11 L-LTF sequence with the same constant-magnitude property).
func LTFSequence() []complex128 {
	idx := DataSubcarrierIndices()
	seq := make([]complex128, len(idx))
	for i, bin := range idx {
		// A simple deterministic sign pattern with good balance.
		if (bin*2654435761)>>4&1 == 0 {
			seq[i] = 1
		} else {
			seq[i] = -1
		}
	}
	return seq
}

// EstimateFromLTF least-squares-estimates the per-data-bin channel from
// a received LTF symbol: Ĥ(bin) = Y(bin)/LTF(bin). Averaging over
// repeated LTFs is the caller's job.
func EstimateFromLTF(received []complex128) ([]complex128, error) {
	m := NewModulator()
	y, err := m.Demodulate(received)
	if err != nil {
		return nil, err
	}
	ltf := LTFSequence()
	h := make([]complex128, len(y))
	for i := range y {
		h[i] = y[i] / ltf[i]
	}
	return h, nil
}

// EstimateCFO estimates a carrier frequency offset from two identical
// consecutive OFDM symbols (Moose's method): the phase of the lag-N
// autocorrelation, in radians per sample.
func EstimateCFO(first, second []complex128) float64 {
	var acc complex128
	for i := range first {
		acc += cmplx.Conj(first[i]) * second[i]
	}
	return cmplx.Phase(acc) / float64(SamplesPerSymbol)
}

// CorrectCFO derotates samples by the given frequency offset (radians
// per sample) in place and returns them.
func CorrectCFO(samples []complex128, cfo float64, startIndex int) []complex128 {
	for i := range samples {
		samples[i] *= cmplx.Exp(complex(0, -cfo*float64(startIndex+i)))
	}
	return samples
}
