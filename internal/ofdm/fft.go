package ofdm

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x (len must be a power of two) and returns x.
// The convention is X[k] = Σ_n x[n]·e^(−2πi·kn/N).
func FFT(x []complex128) []complex128 {
	return fft(x, false)
}

// IFFT computes the inverse transform (with 1/N normalisation) in place.
func IFFT(x []complex128) []complex128 {
	fft(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return x
}

func fft(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("ofdm: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= step
			}
		}
	}
	return x
}

// DFT is the O(N²) reference transform used by tests.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			s += x[t] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*t)/float64(n)))
		}
		out[k] = s
	}
	return out
}
