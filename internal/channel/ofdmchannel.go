package channel

import (
	"math"
	"math/cmplx"
	"math/rand/v2"

	"flexcore/internal/cmatrix"
)

// TDLConfig describes a tapped-delay-line frequency-selective channel with
// an exponential power-delay profile, the standard indoor-office model.
type TDLConfig struct {
	// NTaps is the number of delay taps (1 = flat fading).
	NTaps int
	// DecayPerTap is the per-tap power decay in dB (e.g. 3 dB).
	DecayPerTap float64
	// NFFT is the OFDM FFT size the delay taps are referred to.
	NFFT int
}

// DefaultIndoorTDL is an 8-tap, 3 dB/tap profile over a 64-point FFT —
// a typical indoor office delay spread at 20 MHz.
var DefaultIndoorTDL = TDLConfig{NTaps: 8, DecayPerTap: 3, NFFT: 64}

// CoherenceSubcarriers estimates the channel's coherence bandwidth in
// subcarrier spacings: the RMS delay spread τ_rms of the exponential
// power-delay profile (in samples) gives B_c ≈ 1/(5·τ_rms) as a fraction
// of the sampling rate, i.e. NFFT/(5·τ_rms) subcarrier spacings. It is
// the natural frame-coherence hint for FlexCore's position-vector reuse:
// subcarriers closer than this see nearly the same channel, so their
// pre-processing path sets coincide. Flat fading (τ_rms = 0) returns
// NFFT — every subcarrier is coherent.
func (c TDLConfig) CoherenceSubcarriers() int {
	powers := c.tapPowers()
	var mean, mean2 float64
	for t, p := range powers {
		mean += float64(t) * p
		mean2 += float64(t) * float64(t) * p
	}
	tauRMS := math.Sqrt(mean2 - mean*mean)
	if tauRMS == 0 { //lint:ignore floatcmp a single-tap profile has exactly zero delay spread — the flat-channel case
		return c.NFFT
	}
	bc := float64(c.NFFT) / (5 * tauRMS)
	if bc < 1 {
		return 1
	}
	return int(bc)
}

// tapPowers returns the normalised (Σ=1) exponential power-delay profile,
// so the expected per-subcarrier channel gain stays E|H(f)|² = 1.
func (c TDLConfig) tapPowers() []float64 {
	p := make([]float64, c.NTaps)
	var sum float64
	for t := 0; t < c.NTaps; t++ {
		p[t] = math.Pow(10, -c.DecayPerTap*float64(t)/10)
		sum += p[t]
	}
	for t := range p {
		p[t] /= sum
	}
	return p
}

// FreqSelective draws one frequency-selective channel realisation: a
// per-subcarrier nr×nt matrix for each of the subcarrier indices in sc
// (indices into the NFFT grid). Entries across antenna pairs are
// independent; across subcarriers they are correlated through the shared
// delay taps, exactly as in a real OFDM system.
func FreqSelective(rng *rand.Rand, nr, nt int, sc []int, cfg TDLConfig) []*cmatrix.Matrix {
	powers := cfg.tapPowers()
	// taps[t] is the nr×nt matrix of tap-t gains.
	taps := make([]*cmatrix.Matrix, cfg.NTaps)
	for t := range taps {
		m := cmatrix.New(nr, nt)
		for i := range m.Data {
			m.Data[i] = CN(rng, powers[t])
		}
		taps[t] = m
	}
	out := make([]*cmatrix.Matrix, len(sc))
	for k, f := range sc {
		h := cmatrix.New(nr, nt)
		for t := 0; t < cfg.NTaps; t++ {
			w := cmplx.Exp(complex(0, -2*math.Pi*float64(f*t)/float64(cfg.NFFT)))
			for i, v := range taps[t].Data {
				h.Data[i] += w * v
			}
		}
		out[k] = h
	}
	return out
}
