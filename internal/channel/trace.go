package channel

import (
	"fmt"
	"math"

	"flexcore/internal/cmatrix"
)

// TraceConfig parameterises a synthetic multi-user channel trace set.
// It stands in for the paper's WARP v3 measurement campaign: the paper
// itself evaluates 12-antenna APs by measuring 1×12 single-user channels
// over the air and combining them into 12×12 channels (§5.1); this
// generator performs the same combination with synthetic per-user
// frequency-selective channels.
type TraceConfig struct {
	Seed        uint64
	Users       int
	APAntennas  int
	Subcarriers []int // subcarrier indices into the TDL.NFFT grid
	Drops       int   // independent channel realisations (user placements)
	TDL         TDLConfig
	// APCorrelation is the exponential correlation coefficient between
	// adjacent AP antennas (0 = uncorrelated).
	APCorrelation float64
	// SNRSpreadDB bounds the per-user large-scale power spread. The paper
	// schedules users whose SNRs differ by no more than 3 dB.
	SNRSpreadDB float64
}

// TraceSet holds Drops×len(Subcarriers) channel matrices.
type TraceSet struct {
	Config TraceConfig
	// H[d][k] is the APAntennas×Users channel of drop d at subcarrier
	// Subcarriers[k].
	H [][]*cmatrix.Matrix
}

// Synthesize builds a deterministic trace set from the configuration.
func Synthesize(cfg TraceConfig) (*TraceSet, error) {
	if cfg.Users <= 0 || cfg.APAntennas <= 0 || cfg.Users > cfg.APAntennas {
		return nil, fmt.Errorf("channel: invalid trace dimensions %d users × %d antennas", cfg.Users, cfg.APAntennas)
	}
	if len(cfg.Subcarriers) == 0 || cfg.Drops <= 0 {
		return nil, fmt.Errorf("channel: trace set needs subcarriers and drops")
	}
	if cfg.TDL.NTaps == 0 {
		cfg.TDL = DefaultIndoorTDL
	}
	rng := NewRNG(cfg.Seed)
	var corr *cmatrix.Matrix
	if cfg.APCorrelation != 0 { //lint:ignore floatcmp zero is the config's exact "correlation disabled" sentinel
		l, err := cmatrix.Cholesky(ExponentialCorrelation(cfg.APAntennas, cfg.APCorrelation))
		if err != nil {
			return nil, fmt.Errorf("channel: AP correlation: %w", err)
		}
		corr = l
	}
	ts := &TraceSet{Config: cfg, H: make([][]*cmatrix.Matrix, cfg.Drops)}
	for d := 0; d < cfg.Drops; d++ {
		per := make([][]*cmatrix.Matrix, cfg.Users)
		gains := make([]float64, cfg.Users)
		for u := 0; u < cfg.Users; u++ {
			// Large-scale per-user gain within the scheduler's spread.
			offsetDB := (rng.Float64() - 0.5) * cfg.SNRSpreadDB
			gains[u] = math.Pow(10, offsetDB/20)
			per[u] = FreqSelective(rng, cfg.APAntennas, 1, cfg.Subcarriers, cfg.TDL)
		}
		ts.H[d] = make([]*cmatrix.Matrix, len(cfg.Subcarriers))
		for k := range cfg.Subcarriers {
			h := cmatrix.New(cfg.APAntennas, cfg.Users)
			for u := 0; u < cfg.Users; u++ {
				col := per[u][k].Col(0)
				g := complex(gains[u], 0)
				for i := 0; i < cfg.APAntennas; i++ {
					h.Set(i, u, g*col[i])
				}
			}
			if corr != nil {
				h = corr.Mul(h)
			}
			ts.H[d][k] = h
		}
	}
	return ts, nil
}

// UserSubset returns a view of the trace set restricted to the first
// `users` columns — the paper's Fig. 10 sweeps active users against a
// fixed 12-antenna AP by scheduling subsets of the measured users.
func (ts *TraceSet) UserSubset(users int) (*TraceSet, error) {
	if users <= 0 || users > ts.Config.Users {
		return nil, fmt.Errorf("channel: subset of %d users from %d", users, ts.Config.Users)
	}
	out := &TraceSet{Config: ts.Config, H: make([][]*cmatrix.Matrix, len(ts.H))}
	out.Config.Users = users
	for d := range ts.H {
		out.H[d] = make([]*cmatrix.Matrix, len(ts.H[d]))
		for k, h := range ts.H[d] {
			sub := cmatrix.New(h.Rows, users)
			for i := 0; i < h.Rows; i++ {
				for j := 0; j < users; j++ {
					sub.Set(i, j, h.At(i, j))
				}
			}
			out.H[d][k] = sub
		}
	}
	return out, nil
}
