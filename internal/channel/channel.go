// Package channel provides the wireless-channel substrate of the FlexCore
// reproduction: deterministic seeded randomness, i.i.d. and spatially
// correlated Rayleigh MIMO channels, frequency-selective tapped-delay-line
// channels for OFDM, AWGN injection, and synthetic multi-user "trace sets"
// standing in for the paper's WARP v3 over-the-air measurements (see
// DESIGN.md §2 for the substitution rationale).
package channel

import (
	"fmt"
	"math"
	"math/rand/v2"

	"flexcore/internal/cmatrix"
)

// NewRNG returns a deterministic PCG-backed random source for the seed.
// All stochastic experiment inputs flow through explicitly seeded RNGs so
// that every table and figure regenerates bit-identically.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
}

// SplitSeed derives the seed of an independent sub-stream from a base
// seed via a SplitMix64 finalising step. Parallel Monte-Carlo runs give
// every work unit (e.g. every simulated packet) its own RNG stream
// derived this way, so the random draws a unit sees depend only on
// (seed, stream) — never on how units are scheduled across workers —
// which is what makes parallel simulation results bit-identical for any
// worker count.
func SplitSeed(seed, stream uint64) uint64 {
	z := seed + (stream+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// NewStreamRNG returns the deterministic RNG of sub-stream `stream` of a
// base seed (see SplitSeed).
func NewStreamRNG(seed, stream uint64) *rand.Rand {
	return NewRNG(SplitSeed(seed, stream))
}

// CN draws a circularly-symmetric complex Gaussian sample with the given
// variance (E|x|² = variance).
func CN(rng *rand.Rand, variance float64) complex128 {
	s := math.Sqrt(variance / 2)
	return complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
}

// Rayleigh returns an nr×nt matrix with i.i.d. CN(0,1) entries — the flat
// Rayleigh-fading MIMO channel used for the paper's Table 1 simulations.
func Rayleigh(rng *rand.Rand, nr, nt int) *cmatrix.Matrix {
	h := cmatrix.New(nr, nt)
	for i := range h.Data {
		h.Data[i] = CN(rng, 1)
	}
	return h
}

// ExponentialCorrelation returns the nr×nr exponential correlation matrix
// C(i,j) = ρ^|i−j| that models closely spaced AP antennas (the paper's
// testbed spaces co-located AP antennas ≈6 cm apart).
func ExponentialCorrelation(n int, rho float64) *cmatrix.Matrix {
	c := cmatrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c.Set(i, j, complex(math.Pow(rho, math.Abs(float64(i-j))), 0))
		}
	}
	return c
}

// CorrelatedRayleigh returns C^{1/2}·H_iid, a receive-side Kronecker
// correlated Rayleigh channel. rho=0 reduces to Rayleigh.
func CorrelatedRayleigh(rng *rand.Rand, nr, nt int, rho float64) (*cmatrix.Matrix, error) {
	if rho == 0 { //lint:ignore floatcmp rho=0 is the documented exact sentinel for the uncorrelated fast path
		return Rayleigh(rng, nr, nt), nil
	}
	l, err := cmatrix.Cholesky(ExponentialCorrelation(nr, rho))
	if err != nil {
		return nil, fmt.Errorf("channel: correlation factor: %w", err)
	}
	return l.Mul(Rayleigh(rng, nr, nt)), nil
}

// AddAWGN adds white Gaussian noise of per-antenna variance sigma2 to y in
// place and returns y.
func AddAWGN(rng *rand.Rand, y []complex128, sigma2 float64) []complex128 {
	for i := range y {
		y[i] += CN(rng, sigma2)
	}
	return y
}

// Sigma2FromSNRdB converts an SNR (dB) to a noise variance using the
// per-stream convention of the sphere-decoding literature (and of the
// paper's 13.5/21.6 dB operating points): SNR = Es/σ², where Es is the
// average transmit symbol energy of one stream and σ² the per-receive-
// antenna noise variance.
func Sigma2FromSNRdB(snrdB, es float64) float64 {
	return es / math.Pow(10, snrdB/10)
}

// SNRdBFromSigma2 is the inverse of Sigma2FromSNRdB.
func SNRdBFromSigma2(sigma2, es float64) float64 {
	return 10 * math.Log10(es/sigma2)
}
