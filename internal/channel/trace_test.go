package channel

import (
	"math"
	"testing"
)

func testTraceConfig() TraceConfig {
	return TraceConfig{
		Seed:          99,
		Users:         12,
		APAntennas:    12,
		Subcarriers:   []int{0, 8, 16, 24, 32, 40},
		Drops:         5,
		APCorrelation: 0.4,
		SNRSpreadDB:   3,
	}
}

func TestSynthesizeShapeAndDeterminism(t *testing.T) {
	cfg := testTraceConfig()
	a, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.H) != cfg.Drops {
		t.Fatalf("drops %d", len(a.H))
	}
	for _, drop := range a.H {
		if len(drop) != len(cfg.Subcarriers) {
			t.Fatalf("subcarriers %d", len(drop))
		}
		for _, h := range drop {
			if h.Rows != cfg.APAntennas || h.Cols != cfg.Users {
				t.Fatalf("shape %d×%d", h.Rows, h.Cols)
			}
		}
	}
	b, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for d := range a.H {
		for k := range a.H[d] {
			if !a.H[d][k].EqualApprox(b.H[d][k], 0) {
				t.Fatal("same seed produced different traces")
			}
		}
	}
	cfg.Seed++
	c, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.H[0][0].EqualApprox(c.H[0][0], 1e-9) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSynthesizeSNRSpreadBound(t *testing.T) {
	cfg := testTraceConfig()
	cfg.Drops = 20
	cfg.APCorrelation = 0
	ts, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per-user average power across subcarriers and drops must stay
	// within the configured spread (up to small-sample fading noise).
	for d := range ts.H {
		powers := make([]float64, cfg.Users)
		for u := 0; u < cfg.Users; u++ {
			var p float64
			var n int
			for k := range ts.H[d] {
				col := ts.H[d][k].Col(u)
				for _, v := range col {
					p += real(v)*real(v) + imag(v)*imag(v)
					n++
				}
			}
			powers[u] = p / float64(n)
		}
		lo, hi := powers[0], powers[0]
		for _, p := range powers[1:] {
			lo = math.Min(lo, p)
			hi = math.Max(hi, p)
		}
		spread := 10 * math.Log10(hi/lo)
		// 3 dB configured spread plus fading variation margin.
		if spread > 3+7 {
			t.Fatalf("drop %d: user power spread %.1f dB too large", d, spread)
		}
	}
}

func TestUserSubset(t *testing.T) {
	ts, err := Synthesize(testTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ts.UserSubset(6)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Config.Users != 6 {
		t.Fatal("subset user count")
	}
	for d := range sub.H {
		for k := range sub.H[d] {
			if sub.H[d][k].Cols != 6 {
				t.Fatal("subset column count")
			}
			for i := 0; i < sub.H[d][k].Rows; i++ {
				for j := 0; j < 6; j++ {
					if sub.H[d][k].At(i, j) != ts.H[d][k].At(i, j) {
						t.Fatal("subset does not preserve entries")
					}
				}
			}
		}
	}
	if _, err := ts.UserSubset(13); err == nil {
		t.Fatal("oversized subset accepted")
	}
	if _, err := ts.UserSubset(0); err == nil {
		t.Fatal("zero subset accepted")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	cfg := testTraceConfig()
	cfg.Users = 13 // more users than antennas
	if _, err := Synthesize(cfg); err == nil {
		t.Fatal("accepted users > antennas")
	}
	cfg = testTraceConfig()
	cfg.Subcarriers = nil
	if _, err := Synthesize(cfg); err == nil {
		t.Fatal("accepted empty subcarrier list")
	}
	cfg = testTraceConfig()
	cfg.Drops = 0
	if _, err := Synthesize(cfg); err == nil {
		t.Fatal("accepted zero drops")
	}
}
