package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"flexcore/internal/cmatrix"
)

func TestCNStatistics(t *testing.T) {
	rng := NewRNG(71)
	const n = 200000
	var mean complex128
	var power float64
	for i := 0; i < n; i++ {
		x := CN(rng, 2.0)
		mean += x
		power += real(x)*real(x) + imag(x)*imag(x)
	}
	mean /= complex(n, 0)
	power /= n
	if cmplx.Abs(mean) > 0.02 {
		t.Fatalf("CN mean %v not ≈ 0", mean)
	}
	if math.Abs(power-2.0) > 0.05 {
		t.Fatalf("CN power %v not ≈ 2", power)
	}
}

func TestRayleighUnitVariance(t *testing.T) {
	rng := NewRNG(72)
	var power float64
	const trials = 500
	for i := 0; i < trials; i++ {
		h := Rayleigh(rng, 8, 8)
		f := h.FrobeniusNorm()
		power += f * f / 64
	}
	power /= trials
	if math.Abs(power-1) > 0.05 {
		t.Fatalf("Rayleigh per-entry power %v not ≈ 1", power)
	}
}

func TestCorrelatedRayleighRowCorrelation(t *testing.T) {
	rng := NewRNG(73)
	const rho = 0.8
	var c01, p0 float64
	const trials = 4000
	for i := 0; i < trials; i++ {
		h, err := CorrelatedRayleigh(rng, 4, 1, rho)
		if err != nil {
			t.Fatal(err)
		}
		a, b := h.At(0, 0), h.At(1, 0)
		c01 += real(a * cmplx.Conj(b))
		p0 += real(a * cmplx.Conj(a))
	}
	got := c01 / p0
	if math.Abs(got-rho) > 0.05 {
		t.Fatalf("adjacent-antenna correlation %v, want ≈ %v", got, rho)
	}
}

func TestCorrelatedRayleighZeroRho(t *testing.T) {
	rng := NewRNG(74)
	h, err := CorrelatedRayleigh(rng, 3, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows != 3 || h.Cols != 3 {
		t.Fatal("bad shape")
	}
}

func TestFreqSelectiveGainAndCoherence(t *testing.T) {
	rng := NewRNG(75)
	sc := make([]int, 48)
	for i := range sc {
		sc[i] = i
	}
	var gain, adjCorr, farCorr, pow0 float64
	const trials = 800
	for i := 0; i < trials; i++ {
		hs := FreqSelective(rng, 1, 1, sc, DefaultIndoorTDL)
		for _, h := range hs {
			v := h.At(0, 0)
			gain += real(v)*real(v) + imag(v)*imag(v)
		}
		a := hs[0].At(0, 0)
		adjCorr += real(a * cmplx.Conj(hs[1].At(0, 0)))
		farCorr += real(a * cmplx.Conj(hs[24].At(0, 0)))
		pow0 += real(a * cmplx.Conj(a))
	}
	gain /= float64(trials * len(sc))
	if math.Abs(gain-1) > 0.05 {
		t.Fatalf("per-subcarrier gain %v not ≈ 1", gain)
	}
	// Adjacent subcarriers must be strongly correlated; distant ones much less.
	if adjCorr/pow0 < 0.8 {
		t.Fatalf("adjacent subcarrier correlation too low: %v", adjCorr/pow0)
	}
	if math.Abs(farCorr/pow0) > 0.4 {
		t.Fatalf("far subcarrier correlation too high: %v", farCorr/pow0)
	}
}

func TestFreqSelectiveFlatWithOneTap(t *testing.T) {
	rng := NewRNG(76)
	hs := FreqSelective(rng, 2, 2, []int{0, 13, 50}, TDLConfig{NTaps: 1, NFFT: 64})
	for k := 1; k < len(hs); k++ {
		if !hs[k].EqualApprox(hs[0], 1e-12) {
			t.Fatal("single-tap channel must be flat across subcarriers")
		}
	}
}

func TestAWGNVariance(t *testing.T) {
	rng := NewRNG(77)
	const n = 100000
	y := make([]complex128, n)
	AddAWGN(rng, y, 0.5)
	if v := cmatrix.Norm2(y) / n; math.Abs(v-0.5) > 0.02 {
		t.Fatalf("AWGN variance %v, want 0.5", v)
	}
}

func TestSNRConversionRoundTrip(t *testing.T) {
	for _, snr := range []float64{-3, 0, 13.5, 21.6, 30} {
		s2 := Sigma2FromSNRdB(snr, 1)
		if got := SNRdBFromSigma2(s2, 1); math.Abs(got-snr) > 1e-9 {
			t.Fatalf("round trip %v → %v", snr, got)
		}
	}
	// Higher SNR means less noise.
	if Sigma2FromSNRdB(20, 1) >= Sigma2FromSNRdB(10, 1) {
		t.Fatal("σ² not decreasing in SNR")
	}
	// 0 dB with unit energy is unit noise.
	if math.Abs(Sigma2FromSNRdB(0, 1)-1) > 1e-12 {
		t.Fatal("0 dB convention broken")
	}
}

func TestCoherenceSubcarriers(t *testing.T) {
	// Flat fading (one tap, zero delay spread): every subcarrier coherent.
	flat := TDLConfig{NTaps: 1, DecayPerTap: 3, NFFT: 64}
	if got := flat.CoherenceSubcarriers(); got != 64 {
		t.Fatalf("flat channel: %d, want NFFT", got)
	}
	// The default indoor profile: τ_rms ≈ 1.33 samples → B_c ≈ 64/(5·1.33) ≈ 9.
	if got := DefaultIndoorTDL.CoherenceSubcarriers(); got < 8 || got > 11 {
		t.Fatalf("DefaultIndoorTDL coherence %d subcarriers, want ≈ 9", got)
	}
	// More dispersion (slower decay spreads power to later taps) must
	// shrink the coherence bandwidth, never below one subcarrier.
	disp := TDLConfig{NTaps: 32, DecayPerTap: 0.5, NFFT: 64}
	if got := disp.CoherenceSubcarriers(); got >= DefaultIndoorTDL.CoherenceSubcarriers() || got < 1 {
		t.Fatalf("dispersive coherence %d not in [1, default)", got)
	}
}
