package kernel32

// Descend advances lanes [lo, hi) of the batch through the whole tree:
// for every level i from the top (N−1) down it cancels the decided
// interference of each lane, forms the effective received point with
// one reciprocal multiply (no complex division), picks the lane's
// rank[i]-th closest symbol with the inlined integer slicer, and
// accumulates the partial Euclidean distance — the lane-batched
// restatement of the scalar evalPath loop.
//
// strict selects the paper's literal §3.2 deactivation (a candidate
// outside the constellation kills the lane, marked by a +Inf distance);
// the default saturates the slicer per axis. With pr.Degenerate the
// caller must skip Descend entirely and take the fallback, exactly like
// the scalar backend's per-level rii ≤ 0 bailout.
//
// It returns the block's best lane (ties resolved to the lowest lane
// index, matching the scalar first-strict-improvement scan) and its
// distance; lane −1 means every lane of the block deactivated. Because
// every lane's arithmetic depends only on its own planes, the result of
// a block is independent of how blocks partition the lanes — the
// worker-count-independence contract of the pool.
//
//flexcore:noalloc
func Descend(pr *Prep, sl *Slicer32, s *Scratch, lo, hi int, strict bool) (lane int, ped float32) {
	n, P := pr.N, pr.P
	bre := s.Bre[lo:hi]
	bim := s.Bim[lo:hi]
	bim = bim[:len(bre)]
	peds := s.Ped[lo:hi]
	peds = peds[:len(bre)]
	for p := range peds {
		peds[p] = 0
	}
	offA, offB := sl.offA, sl.offB
	pre, pim := sl.pre, sl.pim
	side, fside := sl.side, sl.fside

	for i := n - 1; i >= 0; i-- {
		// b ← ȳ(i) − Σ_{j>i} R(i,j)·sym(j), batched over the lanes: the
		// R entry is a broadcast scalar, the symbol planes are contiguous.
		ybr, ybi := s.Ybre[i], s.Ybim[i]
		for p := range bre {
			bre[p] = ybr
			bim[p] = ybi
		}
		row := i * n
		for j := i + 1; j < n; j++ {
			rr := pr.Rre[row+j]
			ri := pr.Rim[row+j]
			sre := s.SymRe[j*P+lo : j*P+hi]
			sim := s.SymIm[j*P+lo : j*P+hi]
			sre = sre[:len(bre)]
			sim = sim[:len(bre)]
			for p := range bre {
				sr := sre[p]
				si := sim[p]
				bre[p] -= rr*sr - ri*si
				bim[p] -= rr*si + ri*sr
			}
		}

		// Slice and accumulate: z = b·W is already in half-distance
		// units, so the lookup is pure integer math plus two rounds.
		w := pr.W[i]
		rii := pr.Rii[i]
		ranks := pr.Ranks[i*P+lo : i*P+hi]
		idxs := s.Idx[i*P+lo : i*P+hi]
		symre := s.SymRe[i*P+lo : i*P+hi]
		symim := s.SymIm[i*P+lo : i*P+hi]
		ranks = ranks[:len(bre)]
		idxs = idxs[:len(bre)]
		symre = symre[:len(bre)]
		symim = symim[:len(bre)]
		for p := range bre {
			br := bre[p]
			bi := bim[p]
			zx := br * w
			zy := bi * w
			// Inlined Slicer32 lookup (kept in this loop body so the
			// compiler need not materialise a call per lane per level).
			mx := round32((zx + fside) * 0.5)
			my := round32((zy + fside) * 0.5)
			cx := 2*mx - side
			cy := 2*my - side
			dx := zx - float32(cx)
			dy := zy - float32(cy)
			sx, sy := int32(1), int32(1)
			if dx < 0 {
				sx = -1
				dx = -dx
			}
			if dy < 0 {
				sy = -1
				dy = -dy
			}
			k := int32(ranks[p]) - 1
			oa := offA[k]
			ob := offB[k]
			if dy > dx {
				oa, ob = ob, oa
			}
			nx := (cx + sx*oa + side - 1) / 2
			ny := (cy + sy*ob + side - 1) / 2
			if uint32(nx) >= uint32(side) || uint32(ny) >= uint32(side) {
				if strict {
					// Deactivated lane: +Inf distance, neutral symbol so
					// later levels stay finite.
					peds[p] = inf32
					idxs[p] = 0
					symre[p] = 0
					symim[p] = 0
					continue
				}
				nx = clampAxis32(nx, side)
				ny = clampAxis32(ny, side)
			}
			q := ny*side + nx
			qr := pre[q]
			qi := pim[q]
			dr := br - rii*qr
			di := bi - rii*qi
			peds[p] += dr*dr + di*di
			idxs[p] = q
			symre[p] = qr
			symim[p] = qi
		}
	}

	// Block argmin; ties resolve to the lowest lane like the scalar
	// first-strict-improvement scan (deactivated lanes are +Inf and a
	// NaN distance — possible only from a NaN input — never wins, the
	// scalar backend's behaviour too).
	lane = -1
	best := inf32
	for p := range peds {
		if peds[p] < best {
			best = peds[p]
			lane = lo + p
		}
	}
	return lane, best
}
