package kernel32

import "math"

// Exp32 returns e^x rounded to float32, computed with a degree-6
// Taylor kernel on the reduced range |r| ≤ ln2/2 and an exponent-bits
// scale — a fraction of math.Exp's cost at ~1e-7 relative error, well
// inside the float32 backend's documented tolerance. The pre-processing
// search uses it to accumulate the cumulative path probability (the
// a-FlexCore stopping rule), where only ~single-float32-ulp accuracy is
// meaningful to begin with.
//
//flexcore:noalloc
func Exp32(x float32) float32 {
	const (
		log2e = 1.44269504088896338700e+00
		ln2   = 6.93147180559945286227e-01
	)
	xf := float64(x)
	// Out-of-range guards: beyond these every float32 rounds to 0/+Inf.
	if xf < -88 {
		return 0
	}
	if xf > 89 {
		return inf32
	}
	k := math.Floor(xf*log2e + 0.5)
	r := xf - k*ln2
	// e^r by Horner; |r| ≤ 0.3466 keeps the truncation under 1e-7·e^r.
	p := 1 + r*(1+r*(1.0/2+r*(1.0/6+r*(1.0/24+r*(1.0/120+r*(1.0/720))))))
	// Scale by 2^k through the exponent field (k ∈ [-127, 128] here, so
	// the double-precision exponent never saturates).
	scale := math.Float64frombits(uint64(1023+int64(k)) << 52)
	return float32(p * scale)
}
