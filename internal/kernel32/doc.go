// Package kernel32 holds the float32 structure-of-arrays (SoA) kernels
// of the reduced-precision detection backend (DESIGN.md §11).
//
// The complex128 hot path processes one sphere-decoder path at a time
// over array-of-structs complex values — a layout whose interleaved
// re/im words and per-level complex divisions the compiler cannot turn
// into tight register loops. This package stores everything as separate
// re/im float32 planes, batched across the N_PE paths ("lanes"):
//
//	R planes   Rre/Rim[i*n+j]      one scalar pair per level pair,
//	                               broadcast over the lane loop
//	sym planes SymRe/SymIm[j*P+p]  level-major: the lane loop of a
//	                               level reads/writes contiguous runs
//	rank plane Ranks[i*P+p]        the per-level slicer ranks of every
//	                               selected path, transposed once at
//	                               conversion time
//
// One Descend call advances every lane of a block through the whole
// tree: the inner loops are contiguous float32 slices with hoisted
// bounds (`x = x[:len(b)]` re-slicing), so the compiler keeps the lane
// state in registers and eliminates the per-element bounds checks — and
// the per-level work replaces the complex128 division and the float64
// LUT lookup of the scalar path with one reciprocal multiply and an
// inlined integer slicer.
//
// Numerics: float32 arithmetic makes distances (not decisions) the
// approximate quantity. The conformance contract (internal/conformance)
// therefore gates decisions exactly — the golden corpus and the seeded
// backend-equivalence corpus must produce identical symbol vectors —
// while distances carry a documented ULP-scaled tolerance. Fused
// multiply-add contraction means float32 results may differ across
// architectures at ulp level; decisions, not bits, are the contract.
package kernel32
