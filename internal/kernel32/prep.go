package kernel32

import (
	"math"

	"flexcore/internal/cmatrix"
)

// Prep is the per-channel state of the SoA backend, built once per
// Prepare/Select and read-only during detection: the upper-triangular R
// factor as float32 planes, the per-level reciprocals that replace the
// complex128 division of the scalar path, and the selected paths' rank
// vectors transposed into a level-major plane so the detect kernel
// reads one contiguous run per level.
type Prep struct {
	N int // tree levels (streams)
	P int // lanes (selected paths)

	Rre, Rim []float32 // N×N row-major; entries below the diagonal unused
	Rii      []float32 // real diagonal of R, value units
	W        []float32 // per-level (1/Rii)·(1/scale): b·W is z in half-distance units

	Ranks []int16 // level-major N×P rank plane: Ranks[i*P+p] = path p's rank at level i

	// Degenerate is set when some diagonal entry is ≤ 0: every path
	// deactivates at that level (exactly as in the scalar backend), so
	// detection goes straight to the clamped-SIC fallback.
	Degenerate bool
}

// SetChannel converts the upper triangle of r into the float32 planes,
// growing the arenas only when the level count grows. invScale is the
// constellation's 1/scale factor folded into W.
//
//flexcore:noalloc
func (pr *Prep) SetChannel(r *cmatrix.Matrix, invScale float64) {
	n := r.Cols
	if cap(pr.Rre) < n*n {
		pr.Rre = make([]float32, n*n) //lint:ignore noalloc amortised: channel planes regrow only when the stream count grows
		pr.Rim = make([]float32, n*n) //lint:ignore noalloc amortised: see above
		pr.Rii = make([]float32, n)   //lint:ignore noalloc amortised: see above
		pr.W = make([]float32, n)     //lint:ignore noalloc amortised: see above
	}
	pr.N = n
	pr.Rre = pr.Rre[:n*n]
	pr.Rim = pr.Rim[:n*n]
	pr.Rii = pr.Rii[:n]
	pr.W = pr.W[:n]
	pr.Degenerate = false
	for i := 0; i < n; i++ {
		row := r.Data[i*r.Cols : i*r.Cols+n]
		for j := i; j < n; j++ {
			pr.Rre[i*n+j] = float32(real(row[j]))
			pr.Rim[i*n+j] = float32(imag(row[j]))
		}
		rii := real(row[i])
		pr.Rii[i] = float32(rii)
		if rii <= 0 {
			pr.Degenerate = true
			pr.W[i] = 0
			continue
		}
		pr.W[i] = float32(invScale / rii)
	}
}

// EnsureRanks sizes the rank plane for p lanes of the current level
// count and returns it for the caller (internal/core owns the Path
// structs) to fill level-major. It only allocates when n×p grows.
//
//flexcore:noalloc
func (pr *Prep) EnsureRanks(p int) []int16 {
	n := pr.N
	if cap(pr.Ranks) < n*p {
		pr.Ranks = make([]int16, n*p) //lint:ignore noalloc amortised: the rank plane regrows only when paths×levels grows
	}
	pr.Ranks = pr.Ranks[:n*p]
	pr.P = p
	return pr.Ranks
}

// Scratch is the per-worker mutable lane state of one batched descent:
// the interference-cancelled observation, accumulated distances, and
// the level-major symbol/index planes the descent writes as it decides
// each level. One Scratch serves any number of sequential detections;
// concurrent workers each own one (lanes of a single shared Scratch may
// also be split across workers — all per-lane state is disjoint).
type Scratch struct {
	N, P int

	Bre, Bim []float32 // P: per-lane cancelled observation at the current level
	Ped      []float32 // P: accumulated partial Euclidean distance

	SymRe, SymIm []float32 // N×P level-major decided symbol planes
	Idx          []int32   // N×P level-major decided symbol indices

	Ybre, Ybim []float32 // N: rotated received vector ȳ
}

// Ensure grows the scratch planes to n levels × p lanes; it only
// allocates when the shape grows.
//
//flexcore:noalloc
func (s *Scratch) Ensure(n, p int) {
	if cap(s.Bre) < p {
		s.Bre = make([]float32, p) //lint:ignore noalloc amortised: lane planes regrow only when the path count grows
		s.Bim = make([]float32, p) //lint:ignore noalloc amortised: see above
		s.Ped = make([]float32, p) //lint:ignore noalloc amortised: see above
	}
	if cap(s.SymRe) < n*p {
		s.SymRe = make([]float32, n*p) //lint:ignore noalloc amortised: symbol planes regrow only when paths×levels grows
		s.SymIm = make([]float32, n*p) //lint:ignore noalloc amortised: see above
		s.Idx = make([]int32, n*p)     //lint:ignore noalloc amortised: see above
	}
	if cap(s.Ybre) < n {
		s.Ybre = make([]float32, n) //lint:ignore noalloc amortised: ȳ planes regrow only when the stream count grows
		s.Ybim = make([]float32, n) //lint:ignore noalloc amortised: see above
	}
	s.N, s.P = n, p
	s.Bre = s.Bre[:p]
	s.Bim = s.Bim[:p]
	s.Ped = s.Ped[:p]
	s.SymRe = s.SymRe[:n*p]
	s.SymIm = s.SymIm[:n*p]
	s.Idx = s.Idx[:n*p]
	s.Ybre = s.Ybre[:n]
	s.Ybim = s.Ybim[:n]
}

// SetYbar converts the rotated received vector into the ȳ planes. The
// scratch must already be Ensured for len(yb) levels.
//
//flexcore:noalloc
func (s *Scratch) SetYbar(yb []complex128) {
	ybre := s.Ybre[:len(yb)]
	ybim := s.Ybim[:len(yb)]
	for i, v := range yb {
		ybre[i] = float32(real(v))
		ybim[i] = float32(imag(v))
	}
}

// GatherIdx copies lane p's decided symbol indices (factored stream
// order) into dst, one per level.
//
//flexcore:noalloc
func (s *Scratch) GatherIdx(p int, dst []int) {
	P := s.P
	for i := range dst {
		dst[i] = int(s.Idx[i*P+p])
	}
}

var inf32 = float32(math.Inf(1))
