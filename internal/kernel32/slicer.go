package kernel32

import (
	"flexcore/internal/constellation"
)

// Slicer32 is the float32 rendition of the predefined k-th-closest
// symbol ordering (constellation.KthClosest, paper §3.2/Fig. 6): the
// canonical-triangle offset table flattened into int32 planes plus the
// symbol alphabet as float32 re/im planes, so the detect kernel can
// perform the whole lookup with integer arithmetic and two float32
// multiplies — no division, no float64 rounding calls.
//
// Lookups take the effective point in half-minimum-distance units
// (z/scale); the detect kernel folds the 1/scale factor into the
// per-level reciprocal, so the units conversion costs nothing extra.
// A Slicer32 is immutable after construction and safe to share.
type Slicer32 struct {
	side  int32
	m     int32
	fside float32 // float32(side)

	offA, offB []int32   // canonical offsets, rank-indexed (k-1)
	pre, pim   []float32 // symbol values (unit-energy units), index-major
}

// NewSlicer32 builds the float32 slicer planes for cons from its public
// ordering table, so both backends share one ordering definition.
func NewSlicer32(cons *constellation.Constellation) *Slicer32 {
	offs := cons.OrderOffsets()
	pts := cons.Points()
	s := &Slicer32{
		side:  int32(cons.Side()),
		m:     int32(cons.Size()),
		fside: float32(cons.Side()),
		offA:  make([]int32, len(offs)),
		offB:  make([]int32, len(offs)),
		pre:   make([]float32, len(pts)),
		pim:   make([]float32, len(pts)),
	}
	for k, o := range offs {
		s.offA[k] = int32(o[0])
		s.offB[k] = int32(o[1])
	}
	for i, p := range pts {
		s.pre[i] = float32(real(p))
		s.pim[i] = float32(imag(p))
	}
	return s
}

// Side returns the per-axis point count.
func (s *Slicer32) Side() int { return int(s.side) }

// Point returns the float32 symbol value planes for index idx.
//
//flexcore:noalloc
func (s *Slicer32) Point(idx int32) (re, im float32) { return s.pre[idx], s.pim[idx] }

// round32 rounds half away from zero, matching math.Round on the float32
// grid (int32 conversion truncates toward zero).
//
//flexcore:noalloc
func round32(x float32) int32 {
	if x >= 0 {
		return int32(x + 0.5)
	}
	return -int32(0.5 - x)
}

// clampAxis32 saturates an axis index to [0, side).
//
//flexcore:noalloc
func clampAxis32(i, side int32) int32 {
	if i < 0 {
		return 0
	}
	if i >= side {
		return side - 1
	}
	return i
}

// Kth returns the index of the (approximately) k-th closest symbol to
// the point (zx, zy) given in half-minimum-distance units, k ∈ [1, m].
// ok is false when the predefined ordering points outside the
// constellation — the paper's deactivation case. It mirrors
// constellation.KthClosest step for step; only the float32 rounding of
// the inputs can make the two disagree (near midpoint-grid boundaries).
//
//flexcore:noalloc
func (s *Slicer32) Kth(zx, zy float32, k int32) (idx int32, ok bool) {
	nx, ny := s.rawAxes(zx, zy, k)
	if uint32(nx) >= uint32(s.side) || uint32(ny) >= uint32(s.side) {
		return 0, false
	}
	return ny*s.side + nx, true
}

// KthClamped is Kth with per-axis saturation: out-of-constellation
// candidates clamp each axis to the nearest edge instead of
// deactivating — constellation.KthClosestClamped in float32.
//
//flexcore:noalloc
func (s *Slicer32) KthClamped(zx, zy float32, k int32) int32 {
	nx, ny := s.rawAxes(zx, zy, k)
	if uint32(nx) >= uint32(s.side) || uint32(ny) >= uint32(s.side) {
		nx = clampAxis32(nx, s.side)
		ny = clampAxis32(ny, s.side)
	}
	return ny*s.side + nx
}

// rawAxes computes the (possibly out-of-range) axis indices of the
// rank-k candidate: nearest midpoint-grid square, canonicalisation into
// the stored triangle, signed offset application.
//
//flexcore:noalloc
func (s *Slicer32) rawAxes(zx, zy float32, k int32) (nx, ny int32) {
	mx := round32((zx + s.fside) * 0.5)
	my := round32((zy + s.fside) * 0.5)
	cx := 2*mx - s.side
	cy := 2*my - s.side
	dx := zx - float32(cx)
	dy := zy - float32(cy)
	sx, sy := int32(1), int32(1)
	if dx < 0 {
		sx = -1
		dx = -dx
	}
	if dy < 0 {
		sy = -1
		dy = -dy
	}
	oa := s.offA[k-1]
	ob := s.offB[k-1]
	if dy > dx {
		oa, ob = ob, oa
	}
	nx = (cx + sx*oa + s.side - 1) / 2
	ny = (cy + sy*ob + s.side - 1) / 2
	return nx, ny
}
