package experiments

import (
	"io"
	"sort"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
)

// Fig14 regenerates the paper's Fig. 14 (Appendix): the theoretical
// per-level probability P_Nt(k) that the k-th closest constellation
// point to the received observable is the transmitted one (Eq. 11)
// against Monte-Carlo simulation over an AWGN level, at 1 dB and 15 dB
// SNR, for k = 1…10 (16-QAM, as in the paper's WARP experiment).
func Fig14(cfg Config, w io.Writer) ([]*Table, error) {
	cons := constellation.MustNew(16)
	trials := 200000
	if cfg.Quick {
		trials = 40000
	}
	var out []*Table
	for _, snr := range []float64{1, 15} {
		sigma2 := channel.Sigma2FromSNRdB(snr, 1)
		rng := channel.NewRNG(cfg.Seed + uint64(3000+int(snr)))

		// Model: a single tree level with R(l,l) = 1.
		r := cmatrix.New(1, 1)
		r.Set(0, 0, 1)
		model := core.NewModel(r, sigma2, cons)

		counts := make([]int, cons.Size()+1)
		type ds struct {
			idx int
			d   float64
		}
		all := make([]ds, cons.Size())
		for i := 0; i < trials; i++ {
			tx := rng.IntN(cons.Size())
			y := cons.Point(tx) + channel.CN(rng, sigma2)
			for j, p := range cons.Points() {
				dr, di := real(y)-real(p), imag(y)-imag(p)
				all[j] = ds{j, dr*dr + di*di}
			}
			sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
			for rank, v := range all {
				if v.idx == tx {
					counts[rank+1]++
					break
				}
			}
		}
		t := &Table{
			Title:  "Fig. 14 — P_Nt(k): geometric model (Eq. 11) vs simulation, 16-QAM, SNR " + f1(snr) + " dB",
			Header: []string{"k", "model", "simulated"},
		}
		for k := 1; k <= 10; k++ {
			t.Add(d(int64(k)), e2(model.LevelProb(0, k)), e2(float64(counts[k])/float64(trials)))
		}
		t.Notes = append(t.Notes, "the model must track the simulated rank distribution across both SNR regimes (paper: 'very accurate in all SNR regimes')")
		if w != nil {
			t.Fprint(w)
		}
		out = append(out, t)
	}
	return out, nil
}
