package experiments

import (
	"fmt"
	"io"

	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/phy"
	"flexcore/internal/platform/gpu"
	"flexcore/internal/platform/lte"
)

// Fig12 regenerates the paper's Fig. 12: the SNR loss relative to ML that
// FlexCore, the FCSD and SIC incur when each is restricted to the number
// of sphere-decoder paths the GPU can evaluate within an LTE timeslot, as
// a function of the LTE bandwidth mode (64-QAM, Nt ∈ {8, 12}). SIC is a
// single-path FlexCore; the FCSD is feasible only where |Q| paths fit.
func Fig12(cfg Config, w io.Writer) ([]*Table, error) {
	cons := constellation.MustNew(64)
	device := gpu.GTX970
	modes := lte.Modes
	targets := []float64{0.1, 0.01}
	if cfg.Quick {
		modes = []lte.Mode{lte.Modes[0], lte.Modes[2], lte.Modes[5]}
		targets = []float64{0.1}
	}
	var out []*Table
	for _, nt := range []int{8, 12} {
		link := cfg.linkFor(64, nt)
		for _, target := range targets {
			seed := cfg.Seed + uint64(2000+nt*10) + uint64(target*100)
			// ML anchor SNR for the loss reference.
			mlSNR, _, err := cfg.calibrate(link, target, seed)
			if err != nil {
				return nil, err
			}
			// SNR at which a given detector hits the same PER target.
			snrFor := func(mk func() detector.Detector) (float64, error) {
				snr, _, err := phy.CalibrateSNR(phy.CalibrationConfig{
					Link:        link,
					TargetPER:   target,
					Packets:     cfg.calPackets(),
					Seed:        seed,
					LoDB:        10,
					HiDB:        48,
					Iterations:  cfg.calIterations(),
					NewDetector: mk,
					Channels:    cfg.flatProvider(link, seed),
					Workers:     cfg.Workers,
				})
				return snr, err
			}
			sicSNR, err := snrFor(func() detector.Detector {
				return core.New(cons, core.Options{NPE: 1})
			})
			if err != nil {
				return nil, err
			}
			t := &Table{
				Title: fmt.Sprintf("Fig. 12 — SNR loss vs ML across LTE modes (64-QAM, %d×%d, PER_ML=%.2f, ML at %.1f dB)",
					nt, nt, target, mlSNR),
				Header: []string{"LTE mode", "FlexCore paths", "FlexCore loss (dB)", "FCSD loss (dB)", "SIC loss (dB)"},
			}
			for _, mode := range modes {
				paths := mode.MaxPaths(device, nt, true)
				flexCell := "×"
				if paths >= 1 {
					snr, err := snrFor(func() detector.Detector {
						return core.New(cons, core.Options{NPE: paths})
					})
					if err != nil {
						return nil, err
					}
					flexCell = f1(snr - mlSNR)
				}
				fcsdCell := "×"
				if mode.SupportsFCSD(device, nt, 64, 1) {
					snr, err := snrFor(func() detector.Detector {
						return detector.NewFCSD(cons, 1)
					})
					if err != nil {
						return nil, err
					}
					fcsdCell = f1(snr - mlSNR)
				}
				t.Add(mode.Name, d(int64(paths)), flexCell, fcsdCell, f1(sicSNR-mlSNR))
			}
			t.Notes = append(t.Notes,
				"paper: FlexCore supports every mode with graceful loss (0.2–2.1 dB at Nt=8); the FCSD fits only the narrowest mode; SIC loses up to ≈11.9 dB",
				"path budgets from the calibrated GPU model; losses from link-level PER bisection",
				"a small negative loss means the node-capped ML anchor fell below a many-path FlexCore on hard 12×12 instances (the full configuration deepens the cap)")
			if w != nil {
				t.Fprint(w)
			}
			out = append(out, t)
		}
	}
	return out, nil
}
