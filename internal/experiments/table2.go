package experiments

import (
	"fmt"
	"io"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
)

// Table2 regenerates the paper's Table 2: real-multiplication counts and
// parallelizability of FlexCore's pre-processing and detection for 8×8
// and 12×12 64-QAM at N_PE ∈ {32, 128}, with the QR/ZF channel
// preparation as the reference column.
func Table2(cfg Config, w io.Writer) (*Table, error) {
	cons := constellation.MustNew(64)
	rng := channel.NewRNG(cfg.Seed + 2)
	sigma2 := channel.Sigma2FromSNRdB(21.6, 1)

	t := &Table{
		Title:  "Table 2 — Complexity in real multiplications and parallelizability",
		Header: []string{"System", "QR/ZF", "PreProc NPE=32", "PreProc NPE=128", "Detect NPE=32", "Detect NPE=128"},
	}
	trials := 20
	if cfg.Quick {
		trials = 6
	}
	for _, nt := range []int{8, 12} {
		var qrMuls int64
		pre := map[int]int64{}
		det := map[int]int64{}
		for trial := 0; trial < trials; trial++ {
			h := channel.Rayleigh(rng, nt, nt)
			qrMuls += int64(4 * nt * nt * nt)
			for _, npe := range []int{32, 128} {
				qr := cmatrix.SortedQR(h, cmatrix.OrderSQRD)
				model := core.NewModel(qr.R, sigma2, cons)
				_, stats := core.FindPaths(model, npe, 0)
				pre[npe] += stats.RealMuls
				// Detection cost per received vector, measured through the
				// instrumented detector (one Detect on one vector).
				fc := core.New(cons, core.Options{NPE: npe})
				if err := fc.Prepare(h, sigma2); err != nil {
					return nil, err
				}
				x := make([]complex128, nt)
				for i := range x {
					x[i] = cons.Point(rng.IntN(cons.Size()))
				}
				y := h.MulVec(x)
				channel.AddAWGN(rng, y, sigma2)
				before := fc.OpCount()
				fc.Detect(y)
				efter := fc.OpCount()
				// Exclude the ȳ = Qᴴy rotation (shared with every QR
				// detector) to count the per-path work the paper reports.
				det[npe] += efter.RealMuls - before.RealMuls - int64(4*nt*nt)
			}
		}
		n := int64(trials)
		t.Add(fmt.Sprintf("%d×%d", nt, nt),
			d(qrMuls/n), d(pre[32]/n), d(pre[128]/n), d(det[32]/n), d(det[128]/n))
	}
	t.Add("Parallelizability", "-", "3", "12", "32", "128")
	t.Notes = append(t.Notes,
		"paper values: QR≈2048/6912; pre-processing 102/301 and 136/391; detection 4608/18432 and 9984/39936",
		"pre-processing parallelizability is N_PE/10 (the paper's parallel-expansion bound), detection is N_PE (one path per element)")
	if w != nil {
		t.Fprint(w)
	}
	return t, nil
}
