package experiments

import (
	"fmt"
	"io"

	"flexcore/internal/platform/gpu"
)

// Fig11 regenerates the paper's Fig. 11: FlexCore's GPU speedup against
// the GPU-based FCSD (baseline 1.0) for 12×12 64-QAM, as a function of
// the sphere-decoder paths |E| evaluated in parallel, for batch sizes
// Nsc ∈ {64, 1024, 16384} and FCSD expansion depths L ∈ {1, 2}, with
// OpenMP CPU baselines. Values are from the calibrated GPU execution
// model (DESIGN.md §2).
func Fig11(cfg Config, w io.Writer) ([]*Table, error) {
	d := gpu.GTX970
	const nt, qam = 12, 64
	es := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	var out []*Table
	for _, l := range []int{1, 2} {
		paths := qam
		if l == 2 {
			paths = qam * qam
		}
		t := &Table{
			Title:  fmt.Sprintf("Fig. 11 — FlexCore speedup vs GPU FCSD (12×12 64-QAM, L=%d, %d FCSD paths)", l, paths),
			Header: []string{"|E|", "Nsc=64", "Nsc=1024", "Nsc=16384"},
		}
		for _, e := range es {
			row := []string{d2(e)}
			for _, nsc := range []int{64, 1024, 16384} {
				base := gpu.Workload{Vectors: nsc, PathsPerVector: paths, Levels: nt}
				flex := gpu.Workload{Vectors: nsc, PathsPerVector: e, Levels: nt, FlexCore: true}
				row = append(row, f2(d.Speedup(base, flex)))
			}
			t.Add(row...)
		}
		// CPU references relative to the same GPU FCSD baseline.
		base := gpu.Workload{Vectors: 16384, PathsPerVector: paths, Levels: nt}
		gpuT := d.KernelTime(base)
		for _, threads := range []int{1, 2, 4, 8} {
			t.Notes = append(t.Notes, fmt.Sprintf("FCSD OpenMP-%d: %.3fx of the GPU FCSD baseline", threads, gpuT/d.CPUTime(base, threads)))
		}
		t.Notes = append(t.Notes, "paper headline: ≈19× at |E|=128, L=2, high occupancy; speedup shrinks with |E| and at low occupancy (Nsc=64)")
		if w != nil {
			t.Fprint(w)
		}
		out = append(out, t)
	}
	return out, nil
}

func d2(v int) string { return fmt.Sprintf("%d", v) }
