package experiments

import (
	"fmt"
	"io"
)

// Names lists the generators accepted by Run and the flexbench CLI.
var Names = []string{
	"table1", "table2", "table3",
	"fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
}

// RunTables executes one named generator, writing its rendered tables to
// w (if non-nil) and returning them for programmatic use (CSV export,
// assertions).
func RunTables(name string, cfg Config, w io.Writer) ([]*Table, error) {
	switch name {
	case "table1":
		t, err := Table1(cfg, w)
		return wrap(t, err)
	case "table2":
		t, err := Table2(cfg, w)
		return wrap(t, err)
	case "table3":
		t, err := Table3(cfg, w)
		return wrap(t, err)
	case "fig9":
		return Fig9(cfg, w, nil)
	case "fig10":
		t, err := Fig10(cfg, w)
		return wrap(t, err)
	case "fig11":
		return Fig11(cfg, w)
	case "fig12":
		return Fig12(cfg, w)
	case "fig13":
		return Fig13(cfg, w)
	case "fig14":
		return Fig14(cfg, w)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (choose from %v)", name, Names)
	}
}

func wrap(t *Table, err error) ([]*Table, error) {
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// Run executes one named generator, writing its tables to w.
func Run(name string, cfg Config, w io.Writer) error {
	_, err := RunTables(name, cfg, w)
	return err
}

// RunAll executes every generator in order.
func RunAll(cfg Config, w io.Writer) error {
	for _, n := range Names {
		fmt.Fprintf(w, "\n––––– %s –––––\n", n)
		if err := Run(n, cfg, w); err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
	}
	return nil
}
