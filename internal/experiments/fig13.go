package experiments

import (
	"fmt"
	"io"

	"flexcore/internal/platform/fpga"
)

// Fig13 regenerates the paper's Fig. 13: FPGA energy efficiency
// (Joules/bit) of FlexCore and the FCSD on the XCVU440 as a function of
// the number of instantiated processing elements M, under equal network-
// throughput requirements (Fig. 9's equivalence points: FlexCore 32 ≈
// FCSD 64 paths for L=1, FlexCore 128 ≈ FCSD 4096 for L=2), with
// extrapolation up to the 75 % device-utilization cap.
func Fig13(cfg Config, w io.Writer) ([]*Table, error) {
	type series struct {
		name  string
		pe    fpga.PE
		paths int
	}
	groups := []struct {
		title  string
		series []series
	}{
		{"Nt=8, L=1 equivalence (FlexCore 32 paths ≡ FCSD 64 paths)", []series{
			{"FlexCore", fpga.FlexCorePE8, 32},
			{"FCSD", fpga.FCSDPE8, 64},
		}},
		{"Nt=12, L=1 equivalence (FlexCore 32 ≡ FCSD 64)", []series{
			{"FlexCore", fpga.FlexCorePE12, 32},
			{"FCSD", fpga.FCSDPE12, 64},
		}},
		{"Nt=12, L=2 equivalence (FlexCore 128 ≡ FCSD 4096)", []series{
			{"FlexCore", fpga.FlexCorePE12, 128},
			{"FCSD", fpga.FCSDPE12, 4096},
		}},
	}
	ms := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	var out []*Table
	for _, g := range groups {
		t := &Table{
			Title:  "Fig. 13 — FPGA energy efficiency (J/bit), " + g.title,
			Header: []string{"M"},
		}
		for _, s := range g.series {
			t.Header = append(t.Header, s.name+" (J/bit)")
		}
		var lastRatio float64
		for _, m := range ms {
			row := []string{d(int64(m))}
			vals := make([]float64, len(g.series))
			for i, s := range g.series {
				max := fpga.XCVU440.MaxInstances(s.pe)
				if m > max {
					row = append(row, fmt.Sprintf("× (>%d max)", max))
					vals[i] = -1
					continue
				}
				v := fpga.EnergyPerBit(s.pe, m, s.paths, 6)
				vals[i] = v
				row = append(row, e2(v))
			}
			if vals[0] > 0 && vals[1] > 0 {
				lastRatio = vals[1] / vals[0]
			}
			t.Add(row...)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("FCSD/FlexCore J/bit ratio at equal M: %.2f× (paper band: 1.54× for Nt=8 L=1 up to 28.8× for Nt=12 L=2)", lastRatio))
		if w != nil {
			t.Fprint(w)
		}
		out = append(out, t)
	}
	return out, nil
}
