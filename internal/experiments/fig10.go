package experiments

import (
	"fmt"
	"io"

	"flexcore/internal/channel"
	"flexcore/internal/coding"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/ofdm"
	"flexcore/internal/phy"
)

// Fig10 regenerates the paper's Fig. 10: network throughput of FlexCore
// (64 PEs), a-FlexCore (64 PEs, 0.95 threshold), Geosphere (exact ML)
// and MMSE as six to twelve users transmit 64-QAM to a 12-antenna AP,
// plus a-FlexCore's mean number of activated processing elements. The
// SNR is fixed at the 12-user PER_ML = 0.01 operating point, and the
// channels come from a synthesized trace set (the paper's trace-driven
// 12×12 methodology).
func Fig10(cfg Config, w io.Writer) (*Table, error) {
	cons := constellation.MustNew(64)
	const apAntennas = 12

	// One trace set serves every user count (users are a column subset,
	// like scheduling a subset of the measured users).
	sc := make([]int, cfg.subcarriers())
	idx := ofdm.DataSubcarrierIndices()
	for i := range sc {
		sc[i] = idx[i*len(idx)/len(sc)]
	}
	traces, err := channel.Synthesize(channel.TraceConfig{
		Seed:          cfg.Seed + 1000,
		Users:         apAntennas,
		APAntennas:    apAntennas,
		Subcarriers:   sc,
		Drops:         maxInt(cfg.packets(), 8),
		APCorrelation: 0.3,
		SNRSpreadDB:   3,
	})
	if err != nil {
		return nil, err
	}

	linkFor := func(users int) phy.LinkConfig {
		return phy.LinkConfig{
			Users:         users,
			APAntennas:    apAntennas,
			Constellation: cons,
			CodeRate:      coding.Rate12,
			Subcarriers:   cfg.subcarriers(),
			OFDMSymbols:   cfg.ofdmSymbols(),
		}
	}

	// Calibrate at the full 12-user load on the trace channels.
	link12 := linkFor(apAntennas)
	snr, perML, err := phy.CalibrateSNR(phy.CalibrationConfig{
		Link:       link12,
		TargetPER:  0.01,
		Packets:    cfg.calPackets(),
		Seed:       cfg.Seed + 1001,
		LoDB:       10,
		HiDB:       40,
		Iterations: cfg.calIterations(),
		MLMaxNodes: cfg.mlMaxNodesFor(link12),
		Channels:   &phy.TraceProvider{Set: traces},
		Workers:    cfg.Workers,
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  fmt.Sprintf("Fig. 10 — 64-QAM, 12-antenna AP, SNR %.1f dB (12-user PER_ML target 0.01, measured %.3f)", snr, perML),
		Header: []string{"Users", "Geosphere/ML (Mbit/s)", "FlexCore-64 (Mbit/s)", "a-FlexCore (Mbit/s)", "MMSE (Mbit/s)", "a-FlexCore active PEs"},
	}
	userCounts := []int{6, 8, 10, 12}
	if !cfg.Quick {
		userCounts = []int{6, 7, 8, 9, 10, 11, 12}
	}
	for _, users := range userCounts {
		sub, err := traces.UserSubset(users)
		if err != nil {
			return nil, err
		}
		provider := &phy.TraceProvider{Set: sub}
		link := linkFor(users)
		run := func(newDet func() detector.Detector) (float64, float64, error) {
			res, err := phy.Run(phy.SimConfig{
				Link: link, SNRdB: snr, Packets: cfg.packets(),
				Seed: cfg.Seed + uint64(users), DetectorFactory: newDet,
				Workers: cfg.Workers, Channels: provider,
			})
			if err != nil {
				return 0, 0, err
			}
			return res.ThroughputBps / 1e6, res.AvgActivePEs, nil
		}
		mlT, _, err := run(func() detector.Detector {
			ml := detector.NewSphere(cons)
			ml.MaxNodes = cfg.mlMaxNodesFor(link)
			return ml
		})
		if err != nil {
			return nil, err
		}
		fcT, _, err := run(func() detector.Detector {
			return core.New(cons, core.Options{NPE: 64})
		})
		if err != nil {
			return nil, err
		}
		afT, active, err := run(func() detector.Detector {
			return core.New(cons, core.Options{NPE: 64, Threshold: 0.95})
		})
		if err != nil {
			return nil, err
		}
		mmseT, _, err := run(func() detector.Detector { return detector.NewMMSE(cons) })
		if err != nil {
			return nil, err
		}
		t.Add(d(int64(users)), f1(mlT), f1(fcT), f1(afT), f1(mmseT), f1(active))
	}
	t.Notes = append(t.Notes,
		"expected shape: MMSE near-ML only for users ≪ antennas; FlexCore tracks ML across loads; a-FlexCore's active-PE count collapses toward 1 on easy channels and grows toward the full load at 12 users")
	if w != nil {
		t.Fprint(w)
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
