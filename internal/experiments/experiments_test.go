package experiments

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 42} }

// cell parses a numeric table cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTableRenderer(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.Add("1", "2")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"T", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTable1ComplexityGrowsExponentially(t *testing.T) {
	if testing.Short() {
		t.Skip("link-level experiment")
	}
	tab, err := Table1(quickCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// GFLOPS must grow strictly and super-linearly with antennas, and
	// throughput must grow too.
	var g, tput []float64
	for _, r := range tab.Rows {
		tput = append(tput, cell(t, r[1]))
		g = append(g, cell(t, r[2]))
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("GFLOPS not increasing: %v", g)
		}
	}
	// Strong growth overall: ≥20× from 2×2 to 8×8 (the paper measures
	// ≈700×; our Schnorr–Euchner decoder prunes harder at small sizes,
	// but the exponential trend must remain unmistakable).
	if g[3]/g[0] < 20 {
		t.Fatalf("complexity growth too flat: %v", g)
	}
	if tput[3] <= tput[0] {
		t.Fatalf("throughput not growing with antennas: %v", tput)
	}
}

func TestTable2MatchesPaperStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("link-level experiment")
	}
	tab, err := Table2(quickCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, r := range tab.Rows[:2] {
		qr := cell(t, r[1])
		pre32, pre128 := cell(t, r[2]), cell(t, r[3])
		det32, det128 := cell(t, r[4]), cell(t, r[5])
		// The paper's structural claims: pre-processing is negligible
		// next to the QR decomposition; detection dominates and scales
		// linearly with N_PE.
		if pre32 >= qr || pre128 >= qr {
			t.Fatalf("pre-processing (%v/%v) not below QR (%v)", pre32, pre128, qr)
		}
		if det32 >= det128 {
			t.Fatal("detection cost must grow with NPE")
		}
		ratio := det128 / det32
		if ratio < 3.5 || ratio > 4.5 {
			t.Fatalf("detection cost ratio %v, want ≈4 (128/32)", ratio)
		}
	}
}

func TestTable3Static(t *testing.T) {
	tab, err := Table3(quickCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[0][1] != "FlexCore" || tab.Rows[1][1] != "FCSD" {
		t.Fatal("row labels wrong")
	}
	// Table 3 constants must appear verbatim.
	if tab.Rows[0][2] != "3206" || tab.Rows[3][5] != "10501" {
		t.Fatal("paper constants not reproduced")
	}
}

func TestFig11SpeedupShape(t *testing.T) {
	tabs, err := Fig11(quickCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("%d tables", len(tabs))
	}
	l2 := tabs[1]
	// |E|=128 row at Nsc=16384 carries the ≈19× headline.
	var headline float64
	for _, r := range l2.Rows {
		if r[0] == "128" {
			headline = cell(t, r[3])
		}
	}
	if headline < 16 || headline > 24 {
		t.Fatalf("L=2 |E|=128 speedup %v outside ≈19× band", headline)
	}
	// Speedup decreasing in |E| within each column.
	for col := 1; col <= 3; col++ {
		prev := 1e18
		for _, r := range l2.Rows {
			v := cell(t, r[col])
			if v >= prev {
				t.Fatalf("speedup not decreasing in column %d", col)
			}
			prev = v
		}
	}
}

func TestFig13Shape(t *testing.T) {
	tabs, err := Fig13(quickCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("%d tables", len(tabs))
	}
	// In every group the FCSD column must sit above FlexCore's at equal M.
	for gi, tab := range tabs {
		for _, r := range tab.Rows {
			if strings.Contains(r[1], "×") || strings.Contains(r[2], "×") {
				continue
			}
			flex, fcsd := cell(t, r[1]), cell(t, r[2])
			if fcsd <= flex {
				t.Fatalf("group %d M=%s: FCSD J/bit %v not above FlexCore %v", gi, r[0], fcsd, flex)
			}
		}
	}
}

func TestFig14ModelTracksSimulation(t *testing.T) {
	tabs, err := Fig14(quickCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("%d tables", len(tabs))
	}
	for ti, tab := range tabs {
		// k=1 and k=2 must agree within a factor band; deep tails are
		// noise-limited in quick mode.
		for _, r := range tab.Rows[:2] {
			model, sim := cell(t, r[1]), cell(t, r[2])
			if sim == 0 {
				continue
			}
			ratio := model / sim
			if ratio < 0.5 || ratio > 2.0 {
				t.Fatalf("table %d k=%s: model %v vs sim %v", ti, r[0], model, sim)
			}
		}
		// Model must be strictly decreasing in k.
		prev := 1e18
		for _, r := range tab.Rows {
			v := cell(t, r[1])
			if v >= prev {
				t.Fatal("model not decreasing in k")
			}
			prev = v
		}
	}
}

func TestFig9HeadlinePanelShape(t *testing.T) {
	if testing.Short() {
		t.Skip("link-level experiment")
	}
	// One full quick panel (16-QAM 8×8 at PER_ML 0.1) must reproduce the
	// paper's central shape: FlexCore beats the FCSD at the shared path
	// count, improves monotonically-ish with more elements, clearly beats
	// MMSE at moderate budgets, and approaches the ML bound.
	tabs, err := Fig9(quickCfg(), nil, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	flex := map[int]float64{}
	var fcsd16 float64
	for _, r := range tab.Rows {
		npe := int(cell(t, r[0]))
		flex[npe] = cell(t, r[1])
		if npe == 16 {
			fcsd16 = cell(t, r[2])
		}
	}
	if flex[16] <= fcsd16 {
		t.Fatalf("FlexCore(16) %.1f not above FCSD(16) %.1f", flex[16], fcsd16)
	}
	if !(flex[1] < flex[16] && flex[16] < flex[128]) {
		t.Fatalf("FlexCore not improving with PEs: %v", flex)
	}
	// ML and MMSE bounds live in the notes; parse them loosely.
	var mlT, mmseT float64
	if _, err := fmt.Sscanf(tab.Notes[0], "ML bound %f", &mlT); err != nil {
		t.Fatalf("cannot parse ML bound: %v", err)
	}
	idx := strings.Index(tab.Notes[0], "MMSE ")
	if idx < 0 {
		t.Fatal("MMSE bound missing")
	}
	if _, err := fmt.Sscanf(tab.Notes[0][idx:], "MMSE %f", &mmseT); err != nil {
		t.Fatal(err)
	}
	if flex[64] <= mmseT {
		t.Fatalf("FlexCore(64) %.1f not above MMSE %.1f", flex[64], mmseT)
	}
	if flex[128] < 0.75*mlT {
		t.Fatalf("FlexCore(128) %.1f too far below ML %.1f", flex[128], mlT)
	}
}

func TestRunDispatcher(t *testing.T) {
	if err := Run("table3", quickCfg(), io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := Run("nonsense", quickCfg(), io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Names) != 9 {
		t.Fatalf("%d experiments registered, want 9 (3 tables + 6 figures)", len(Names))
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "b"}, Notes: []string{"n"}}
	tab.Add("1", `has,"comma`)
	var buf bytes.Buffer
	tab.CSV(&buf)
	out := buf.String()
	for _, want := range []string{"# T", "a,b", `1,"has,""comma"`, "# n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}
