package experiments

import (
	"fmt"
	"io"

	"flexcore/internal/platform/fpga"
)

// Table3 regenerates the paper's Table 3: single-processing-element
// implementation cost of FlexCore and the FCSD on the XCVU440 at 64-QAM,
// plus the derived area-delay comparison. The per-element constants are
// the paper's published measurements (the repo has no synthesis tools);
// the derived columns and comparisons are computed by the model.
func Table3(cfg Config, w io.Writer) (*Table, error) {
	t := &Table{
		Title:  "Table 3 — Single processing element on the XCVU440 (64-QAM)",
		Header: []string{"System", "Engine", "LUT logic", "LUT mem", "FF pairs", "CLB slices", "DSP48", "fmax (MHz)", "Power (W)", "Area·delay (slice·µs)"},
	}
	rows := []struct {
		label string
		pe    fpga.PE
	}{
		{"8×8", fpga.FlexCorePE8},
		{"8×8", fpga.FCSDPE8},
		{"12×12", fpga.FlexCorePE12},
		{"12×12", fpga.FCSDPE12},
	}
	for _, r := range rows {
		t.Add(r.label, r.pe.Name,
			fmt.Sprintf("%d", r.pe.LUTLogic), fmt.Sprintf("%d", r.pe.LUTMem),
			fmt.Sprintf("%d", r.pe.FFPairs), fmt.Sprintf("%d", r.pe.CLBSlices),
			fmt.Sprintf("%d", r.pe.DSP48), f1(r.pe.FmaxMHz), f2(r.pe.PowerW),
			f2(r.pe.AreaDelay()))
	}
	o8 := fpga.AreaDelayOverhead(fpga.FlexCorePE8, fpga.FCSDPE8)
	o12 := fpga.AreaDelayOverhead(fpga.FlexCorePE12, fpga.FCSDPE12)
	g8 := fpga.FlexCorePE12.AreaDelay() / fpga.FlexCorePE8.AreaDelay()
	g12 := fpga.FCSDPE12.AreaDelay() / fpga.FCSDPE8.AreaDelay()
	t.Notes = append(t.Notes,
		fmt.Sprintf("FlexCore per-element area-delay overhead vs FCSD: %.1f%% (Nt=8), %.1f%% (Nt=12) — modest and shrinking with Nt, as the paper reports", 100*o8, 100*o12),
		fmt.Sprintf("Nt=12 vs Nt=8 area-delay growth: %.2f× (FlexCore), %.2f× (FCSD); paper reports 1.81× and 1.99×", g8, g12),
		fmt.Sprintf("max elements at 75%% utilization: FlexCore %d / FCSD %d (Nt=12)", fpga.XCVU440.MaxInstances(fpga.FlexCorePE12), fpga.XCVU440.MaxInstances(fpga.FCSDPE12)))
	if w != nil {
		t.Fprint(w)
	}
	return t, nil
}
