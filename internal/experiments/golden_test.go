package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files for the deterministic experiments")

// goldenNames lists the experiments whose output is fully deterministic
// and model-based (no Monte-Carlo), so their rendered tables can be
// golden-checked byte for byte.
var goldenNames = []string{"table3", "fig11", "fig13"}

func TestDeterministicExperimentsGolden(t *testing.T) {
	for _, name := range goldenNames {
		var buf bytes.Buffer
		tabs, err := RunTables(name, Config{Quick: true, Seed: 42}, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, tab := range tabs {
			tab.Fprint(&buf)
		}
		path := filepath.Join("testdata", name+".golden")
		if *updateGolden {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update-golden): %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("%s: output diverged from golden\n--- got ---\n%s\n--- want ---\n%s", name, buf.String(), want)
		}
	}
}
