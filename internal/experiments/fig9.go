package experiments

import (
	"fmt"
	"io"

	"flexcore/internal/coding"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/phy"
)

// mlMaxNodes caps the exact sphere decoder's per-vector search in the
// link-level experiments; at the calibrated (high) operating SNRs the cap
// rarely binds, and it keeps worst-case channels from stalling the
// harness. The paper's own reference (Geosphere) is likewise a practical
// depth-first decoder.
func (c Config) mlMaxNodesFor(link phy.LinkConfig) int64 {
	// 12×12 64-QAM needs a much deeper search before the best-found leaf
	// is reliably (near-)ML; smaller systems get a tighter cap.
	hard := link.Users >= 12 && link.Constellation.Size() >= 64
	if c.Quick {
		if hard {
			return 30000
		}
		return 8000
	}
	if hard {
		return 100000
	}
	return 50000
}

// fig9Scenario is one panel of Fig. 9.
type fig9Scenario struct {
	qam       int
	nt        int
	targetPER float64
}

// Fig9Scenarios lists the paper's eight panels.
var Fig9Scenarios = []fig9Scenario{
	{16, 8, 0.1}, {16, 8, 0.01}, {64, 8, 0.1}, {64, 8, 0.01},
	{16, 12, 0.1}, {16, 12, 0.01}, {64, 12, 0.1}, {64, 12, 0.01},
}

// npeSweep returns the processing-element axis.
func (c Config) npeSweep(qam int) []int {
	if c.Quick {
		return []int{1, 4, 16, 64, 128}
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 196, 256}
}

// linkFor builds the link geometry of a scenario.
func (c Config) linkFor(qam, nt int) phy.LinkConfig {
	return phy.LinkConfig{
		Users:         nt,
		APAntennas:    nt,
		Constellation: constellation.MustNew(qam),
		CodeRate:      coding.Rate12,
		Subcarriers:   c.subcarriers(),
		OFDMSymbols:   c.ofdmSymbols(),
	}
}

// apCorrelation is the receive-side correlation of the Fig. 9/12
// channels: the paper's AP packs its antennas ≈6 cm apart, and the
// resulting correlation (together with its 500-kByte packets) is what
// places the PER_ML anchors in the 13–22 dB band the paper reports.
const apCorrelation = 0.6

// flatProvider returns the block-fading channel source the Fig. 9/12
// experiments run on (see FlatProvider for the rationale).
func (c Config) flatProvider(link phy.LinkConfig, seed uint64) phy.ChannelProvider {
	return &phy.FlatProvider{
		Seed:          seed ^ 0xabcdef12,
		Users:         link.Users,
		APAntennas:    link.APAntennas,
		Subcarriers:   link.Subcarriers,
		APCorrelation: apCorrelation,
	}
}

// calibrate anchors the scenario SNR at the paper's PER_ML target.
func (c Config) calibrate(link phy.LinkConfig, targetPER float64, seed uint64) (float64, float64, error) {
	lo, hi := 4.0, 32.0
	if link.Constellation.Size() == 64 {
		lo, hi = 10.0, 40.0
	}
	return phy.CalibrateSNR(phy.CalibrationConfig{
		Link:       link,
		TargetPER:  targetPER,
		Packets:    c.calPackets(),
		Seed:       seed,
		LoDB:       lo,
		HiDB:       hi,
		Iterations: c.calIterations(),
		MLMaxNodes: c.mlMaxNodesFor(link),
		Channels:   c.flatProvider(link, seed),
		Workers:    c.Workers,
	})
}

// measure runs one link-level point and returns throughput (Mbit/s), PER
// and mean active processing elements. newDet builds one detector per
// simulation worker (results are bit-identical for every worker count).
func (c Config) measure(link phy.LinkConfig, newDet func() detector.Detector, snr float64, seed uint64) (tputMbps, per, activePEs float64, err error) {
	res, err := phy.Run(phy.SimConfig{
		Link:            link,
		SNRdB:           snr,
		Packets:         c.packets(),
		Seed:            seed,
		DetectorFactory: newDet,
		Workers:         c.Workers,
		Channels:        c.flatProvider(link, seed),
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return res.ThroughputBps / 1e6, res.PER, res.AvgActivePEs, nil
}

// isPowerOf reports whether v = base^k for some k ≥ 1.
func isPowerOf(v, base int) (int, bool) {
	k := 0
	for v > 1 && v%base == 0 {
		v /= base
		k++
	}
	if v == 1 && k >= 1 {
		return k, true
	}
	return 0, false
}

// Fig9 regenerates the paper's Fig. 9: achievable network throughput of
// FlexCore, FCSD and the trellis detector [50] as a function of the
// available processing elements, against the ML and MMSE bounds, at SNRs
// where PER_ML ∈ {0.1, 0.01}. Panels is a filter over Fig9Scenarios
// indices (nil = all).
func Fig9(cfg Config, w io.Writer, panels []int) ([]*Table, error) {
	if panels == nil {
		panels = make([]int, len(Fig9Scenarios))
		for i := range panels {
			panels[i] = i
		}
	}
	var out []*Table
	for _, pi := range panels {
		sc := Fig9Scenarios[pi]
		link := cfg.linkFor(sc.qam, sc.nt)
		seed := cfg.Seed + uint64(100+pi)
		snr, perML, err := cfg.calibrate(link, sc.targetPER, seed)
		if err != nil {
			return nil, fmt.Errorf("fig9 panel %d calibrate: %w", pi, err)
		}
		cons := link.Constellation

		newML := func() detector.Detector {
			ml := detector.NewSphere(cons)
			ml.MaxNodes = cfg.mlMaxNodesFor(link)
			return ml
		}
		mlT, mlPER, _, err := cfg.measure(link, newML, snr, seed)
		if err != nil {
			return nil, err
		}
		mmseT, _, _, err := cfg.measure(link, func() detector.Detector { return detector.NewMMSE(cons) }, snr, seed)
		if err != nil {
			return nil, err
		}

		t := &Table{
			Title: fmt.Sprintf("Fig. 9 — %d-QAM %d×%d, SNR %.1f dB (PER_ML target %.2f, measured %.3f)",
				sc.qam, sc.nt, sc.nt, snr, sc.targetPER, perML),
			Header: []string{"NPE", "FlexCore (Mbit/s)", "FCSD (Mbit/s)", "Trellis[50] (Mbit/s)"},
		}
		for _, npe := range cfg.npeSweep(sc.qam) {
			npe := npe
			fcT, _, _, err := cfg.measure(link, func() detector.Detector {
				return core.New(cons, core.Options{NPE: npe})
			}, snr, seed)
			if err != nil {
				return nil, err
			}
			fcsdCell, trellisCell := "×", "×"
			if l, ok := isPowerOf(npe, cons.Size()); ok && l <= sc.nt {
				l := l
				v, _, _, err := cfg.measure(link, func() detector.Detector {
					return detector.NewFCSD(cons, l)
				}, snr, seed)
				if err != nil {
					return nil, err
				}
				fcsdCell = f1(v)
			}
			if npe == cons.Size() {
				v, _, _, err := cfg.measure(link, func() detector.Detector {
					return detector.NewTrellis(cons)
				}, snr, seed)
				if err != nil {
					return nil, err
				}
				trellisCell = f1(v)
			}
			t.Add(d(int64(npe)), f1(fcT), fcsdCell, trellisCell)
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("ML bound %.1f Mbit/s (PER %.3f); MMSE %.1f Mbit/s", mlT, mlPER, mmseT),
			"× = the detector cannot use that processing-element count (FCSD needs |Q|^L, trellis exactly |Q|)")
		if w != nil {
			t.Fprint(w)
		}
		out = append(out, t)
	}
	return out, nil
}
