// Package experiments regenerates every table and figure of the
// FlexCore paper's evaluation (§5). Each generator prints the same rows
// or series the paper reports; DESIGN.md §4 maps generators to paper
// artefacts and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Config scales the Monte-Carlo effort of the link-level experiments.
type Config struct {
	// Quick selects reduced trial counts for smoke runs; the full
	// settings reproduce the published shapes with tight error bars.
	Quick bool
	// Seed drives all randomness (experiments are fully deterministic).
	Seed uint64
	// Workers is the packet-level simulation parallelism of the
	// link-level experiments (0 = all cores). Results are bit-identical
	// for every worker count — parallelism only changes wall-clock time.
	Workers int
}

// packets returns the per-measurement packet count.
func (c Config) packets() int {
	if c.Quick {
		return 24
	}
	return 60
}

// calPackets returns the packet count per calibration PER evaluation.
func (c Config) calPackets() int {
	if c.Quick {
		return 16
	}
	return 40
}

// calIterations returns the SNR bisection depth.
func (c Config) calIterations() int {
	if c.Quick {
		return 6
	}
	return 8
}

// subcarriers returns the simulated data-subcarrier count (NCBPS must
// stay a multiple of 16 for every constellation in use).
func (c Config) subcarriers() int {
	if c.Quick {
		return 8
	}
	return 8
}

// ofdmSymbols returns the packet length in OFDM symbols. Longer packets
// move the PER anchors toward the paper's 500-kByte regime; the full
// setting is still far shorter than 500 kB (see DESIGN.md §2), which the
// AP-correlation of the experiment channels compensates for.
func (c Config) ofdmSymbols() int {
	if c.Quick {
		return 8
	}
	return 12
}

// Table is a minimal fixed-width text table renderer.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "\n%s\n", t.Title)
	fmt.Fprintln(w, strings.Repeat("=", len(t.Title)))
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s  ", widths[i], c)
			} else {
				fmt.Fprintf(w, "%s  ", c)
			}
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// CSV renders the table as RFC-4180-ish comma-separated values (title
// and notes as comment lines) for plotting tools.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	writeCSVRow(w, t.Header)
	for _, r := range t.Rows {
		writeCSVRow(w, r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

// f1, f2, f3 format floats at fixed precision; e2 scientific.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func e2(v float64) string { return fmt.Sprintf("%.2e", v) }
func d(v int64) string    { return fmt.Sprintf("%d", v) }
