package experiments

import (
	"fmt"
	"io"

	"flexcore/internal/channel"
	"flexcore/internal/coding"
	"flexcore/internal/constellation"
	"flexcore/internal/detector"
	"flexcore/internal/ofdm"
	"flexcore/internal/phy"
)

// Table1 regenerates the paper's Table 1: the floating-point rate a
// single core must sustain to run exact depth-first sphere decoding at
// Wi-Fi line rate (16-QAM, 13 dB SNR, Rayleigh channels), and the
// network throughput the corresponding MIMO size delivers, for 2×2 up to
// 8×8.
func Table1(cfg Config, w io.Writer) (*Table, error) {
	cons := constellation.MustNew(16)
	const snrdB = 13
	sigma2 := channel.Sigma2FromSNRdB(snrdB, 1)
	rng := channel.NewRNG(cfg.Seed + 1)

	t := &Table{
		Title:  "Table 1 — Sphere decoder throughput and single-core compute rate (16-QAM, Rayleigh, 13 dB)",
		Header: []string{"Antennas", "Throughput (Mbit/s)", "Complexity (GFLOPS)", "FLOPs/vector"},
	}
	vectors := cfg.packets() * 40
	if cfg.Quick {
		vectors = 400
	}
	for _, nt := range []int{2, 4, 6, 8} {
		// Measured FLOPs per detected vector via instrumented counters.
		ml := detector.NewSphere(cons)
		x := make([]complex128, nt)
		for v := 0; v < vectors; v++ {
			h := channel.Rayleigh(rng, nt, nt)
			if err := ml.Prepare(h, sigma2); err != nil {
				return nil, err
			}
			for i := range x {
				x[i] = cons.Point(rng.IntN(cons.Size()))
			}
			y := h.MulVec(x)
			channel.AddAWGN(rng, y, sigma2)
			ml.Detect(y)
		}
		ops := ml.OpCount().PerDetection()
		gflops := float64(ops.FLOPs) * ofdm.VectorsPerSecond() / 1e9

		// Network throughput at the same operating point from a coded
		// link-level run.
		res, err := phy.Run(phy.SimConfig{
			Link: phy.LinkConfig{
				Users: nt, APAntennas: nt, Constellation: cons,
				CodeRate: coding.Rate12, Subcarriers: cfg.subcarriers(), OFDMSymbols: cfg.ofdmSymbols(),
			},
			SNRdB:           snrdB,
			Packets:         cfg.packets(),
			Seed:            cfg.Seed + uint64(nt),
			DetectorFactory: func() detector.Detector { return detector.NewSphere(cons) },
			Workers:         cfg.Workers,
			Channels:        &phy.IIDProvider{Seed: cfg.Seed + uint64(nt)*7, Users: nt, APAntennas: nt, Subcarriers: cfg.subcarriers()},
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d×%d", nt, nt), f1(res.ThroughputBps/1e6), f2(gflops), d(ops.FLOPs))
	}
	t.Notes = append(t.Notes,
		"paper reports 45/100/162/223 Mbit/s and 1.2/13/105/837 GFLOPS; the exponential growth in compute rate with antenna count is the reproduced shape",
		fmt.Sprintf("FLOP rate = measured FLOPs/vector × %.0fM vectors/s (48 data subcarriers × 250k OFDM symbols/s)", ofdm.VectorsPerSecond()/1e6))
	if w != nil {
		t.Fprint(w)
	}
	return t, nil
}
