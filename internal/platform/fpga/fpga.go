// Package fpga models the paper's FPGA implementations (§4, §5.3)
// through a resource/latency/power cost model instantiated with the
// paper's own Table 3 per-processing-element measurements on the Xilinx
// Virtex Ultrascale XCVU440. The model regenerates Table 3's area-delay
// comparison and Fig. 13's energy-efficiency exploration; see DESIGN.md
// §2 for the substitution rationale.
package fpga

import "math"

// PE describes one fully-instantiated processing element (the logic for
// a whole sphere-decoder path, top to bottom — §4).
type PE struct {
	Name      string
	Nt        int
	LUTLogic  int     // CLB LUTs used as logic
	LUTMem    int     // CLB LUTs used as memory / FF pairs block
	FFPairs   int     // flip-flop pairs
	CLBSlices int     // occupied CLB slices
	DSP48     int     // embedded multiply-add slices
	FmaxMHz   float64 // maximum clock of a single element
	PowerW    float64 // estimated power of a single element at 100 % load
}

// Table 3 of the paper: single processing element at 64-QAM on the
// XCVU440-flga2892-3-e.
var (
	FlexCorePE8  = PE{Name: "FlexCore", Nt: 8, LUTLogic: 3206, LUTMem: 15276, FFPairs: 1187, CLBSlices: 5363, DSP48: 16, FmaxMHz: 312.5, PowerW: 6.82}
	FCSDPE8      = PE{Name: "FCSD", Nt: 8, LUTLogic: 2187, LUTMem: 11320, FFPairs: 713, CLBSlices: 4717, DSP48: 16, FmaxMHz: 370.4, PowerW: 6.54}
	FlexCorePE12 = PE{Name: "FlexCore", Nt: 12, LUTLogic: 5795, LUTMem: 28810, FFPairs: 2497, CLBSlices: 11415, DSP48: 24, FmaxMHz: 312.5, PowerW: 9.157}
	FCSDPE12     = PE{Name: "FCSD", Nt: 12, LUTLogic: 4364, LUTMem: 23252, FFPairs: 1537, CLBSlices: 10501, DSP48: 24, FmaxMHz: 370.4, PowerW: 9.04}
)

// Device holds the target-device resource budget.
type Device struct {
	Name   string
	LUTs   int
	DSP48s int
	// UtilizationCap is the fraction of the device the paper allows when
	// extrapolating (75 %, to avoid routing congestion [3]).
	UtilizationCap float64
}

// XCVU440 is the paper's Virtex Ultrascale evaluation device.
var XCVU440 = Device{Name: "XCVU440", LUTs: 2532960, DSP48s: 2880, UtilizationCap: 0.75}

// MultiPEClockNs is the pipeline clock period used for the multi-element
// exploration (§5.3: 5.5 ns, the minimum both engines support).
const MultiPEClockNs = 5.5

// TotalLUTs returns the element's total LUT footprint.
func (p PE) TotalLUTs() int { return p.LUTLogic + p.LUTMem }

// AreaDelay returns the area-delay product (CLB slices × critical-path
// delay) of a single element, in slice-microseconds.
func (p PE) AreaDelay() float64 { return float64(p.CLBSlices) / p.FmaxMHz }

// AreaDelayOverhead returns the fractional area-delay increase of pe
// over base (Table 3's bottom line).
func AreaDelayOverhead(pe, base PE) float64 {
	return pe.AreaDelay()/base.AreaDelay() - 1
}

// MaxInstances returns how many processing elements fit the device under
// the utilization cap (LUT- and DSP-bound, whichever is tighter).
func (d Device) MaxInstances(p PE) int {
	byLUT := int(float64(d.LUTs) * d.UtilizationCap / float64(p.TotalLUTs()))
	byDSP := int(float64(d.DSP48s) * d.UtilizationCap / float64(p.DSP48))
	if byDSP < byLUT {
		return byDSP
	}
	return byLUT
}

// Throughput returns the detector's processing throughput in bit/s when
// m elements serve a detector that needs pathsRequired paths per
// received vector: the pipelined elements complete m paths per clock, so
// vectors/s = m·f/paths, each carrying Nt·log2|Q| bits. This is the
// paper's formula (§5.3), which for the FCSD at L=1 reduces to
// log2(|Q|)·Nt·fmax·M/|Q|.
func Throughput(p PE, m, pathsRequired, bitsPerSymbol int) float64 {
	f := 1e9 / MultiPEClockNs // pipeline clock (Hz) at the shared 5.5 ns
	vectorsPerSec := float64(m) * f / float64(pathsRequired)
	return vectorsPerSec * float64(p.Nt) * float64(bitsPerSymbol)
}

// Power returns the modelled power of m instantiated elements. The
// Table 3 figure for one element includes the device's static power;
// additional elements add only their dynamic share.
func Power(p PE, m int) float64 {
	if m < 1 {
		m = 1
	}
	dynamic := p.PowerW - StaticPowerW
	if dynamic < 0 {
		dynamic = p.PowerW
	}
	return StaticPowerW + float64(m)*dynamic
}

// StaticPowerW is the assumed device static power folded into Table 3's
// single-element estimates (worst-case static conditions, §5.3).
const StaticPowerW = 2.5

// EnergyPerBit returns the paper's J/bit index for m elements serving
// pathsRequired paths per vector.
func EnergyPerBit(p PE, m, pathsRequired, bitsPerSymbol int) float64 {
	return Power(p, m) / Throughput(p, m, pathsRequired, bitsPerSymbol)
}

// MinInstancesForVectorRate returns the smallest element count that
// sustains the given received-vector rate (vectors/s) for pathsRequired
// paths per vector — e.g. the 20 MHz LTE bandwidth in §5.3.
func MinInstancesForVectorRate(pathsRequired int, vectorRate float64) int {
	f := 1e9 / MultiPEClockNs
	return int(math.Ceil(vectorRate * float64(pathsRequired) / f))
}
