package fpga

import (
	"math"
	"testing"
)

func TestAreaDelayOverheadBand(t *testing.T) {
	// Table 3: FlexCore's per-element overhead is modest and *decreases*
	// with Nt (the caption quotes 73.7 % → 57.8 % on the full-resource
	// weighting; the slice-based figure is smaller but must follow the
	// same trend and stay below 2×).
	o8 := AreaDelayOverhead(FlexCorePE8, FCSDPE8)
	o12 := AreaDelayOverhead(FlexCorePE12, FCSDPE12)
	if o8 <= 0 || o8 > 1 {
		t.Fatalf("Nt=8 overhead %.2f out of band", o8)
	}
	if o12 <= 0 || o12 > 1 {
		t.Fatalf("Nt=12 overhead %.2f out of band", o12)
	}
	if o12 >= o8 {
		t.Fatalf("overhead should shrink with Nt: %.3f vs %.3f", o12, o8)
	}
}

func TestAreaDelayGrowthWithNt(t *testing.T) {
	// Table 3 caption: Nt=12 costs 1.81× (FlexCore) and 1.99× (FCSD) the
	// area-delay of Nt=8.
	gFlex := FlexCorePE12.AreaDelay() / FlexCorePE8.AreaDelay()
	gFCSD := FCSDPE12.AreaDelay() / FCSDPE8.AreaDelay()
	if math.Abs(gFlex-1.81) > 0.40 {
		t.Fatalf("FlexCore Nt growth %.2f, want ≈1.81", gFlex)
	}
	if math.Abs(gFCSD-1.99) > 0.40 {
		t.Fatalf("FCSD Nt growth %.2f, want ≈1.99", gFCSD)
	}
}

func TestThroughputHeadline(t *testing.T) {
	// §5.3: with M=32 elements FlexCore reaches ≈13.09 Gbps when 32
	// paths are needed and ≈3.27 Gbps at 128 paths (12×12, 64-QAM).
	t32 := Throughput(FlexCorePE12, 32, 32, 6)
	t128 := Throughput(FlexCorePE12, 32, 128, 6)
	if math.Abs(t32-13.09e9) > 0.2e9 {
		t.Fatalf("32-path throughput %.3g, want ≈13.09 Gbps", t32)
	}
	if math.Abs(t128-3.27e9) > 0.1e9 {
		t.Fatalf("128-path throughput %.3g, want ≈3.27 Gbps", t128)
	}
}

func TestFCSDThroughputFormula(t *testing.T) {
	// The paper's FCSD formula: log2(|Q|)·Nt·fmax·M/|Q| (f at 5.5 ns).
	f := 1e9 / MultiPEClockNs
	want := 6.0 * 12 * f * 64 / 64
	if got := Throughput(FCSDPE12, 64, 64, 6); math.Abs(got-want) > 1 {
		t.Fatalf("FCSD throughput %v, want %v", got, want)
	}
}

func TestLTEInstanceRequirements(t *testing.T) {
	// §5.3: supporting the 20 MHz LTE bandwidth needs ≥3 elements for 32
	// paths and ≥9 for 128 paths. The LTE vector rate is 1200 subcarriers
	// × 14000 symbols/s = 16.8 M vectors/s.
	const vectorRate = 1200 * 14000
	if got := MinInstancesForVectorRate(32, vectorRate); got < 3 || got > 4 {
		t.Fatalf("32 paths need %d elements, want ≈3", got)
	}
	if got := MinInstancesForVectorRate(128, vectorRate); got < 9 || got > 13 {
		t.Fatalf("128 paths need %d elements, want ≈9+", got)
	}
}

func TestMaxInstancesRespectsCap(t *testing.T) {
	m := XCVU440.MaxInstances(FlexCorePE12)
	if m < 1 {
		t.Fatal("no instances fit")
	}
	used := m * FlexCorePE12.TotalLUTs()
	if float64(used) > float64(XCVU440.LUTs)*XCVU440.UtilizationCap {
		t.Fatal("utilization cap violated")
	}
	// The FCSD element is smaller, so more of them fit.
	if XCVU440.MaxInstances(FCSDPE12) <= m {
		t.Fatal("smaller FCSD element should fit more instances")
	}
}

func TestEnergyPerBitComparison(t *testing.T) {
	// Fig. 13: at equal network-throughput requirements the FCSD needs
	// ≈1.54× (Nt=8, L=1: 32 vs 64 paths) up to ≈28.8× (Nt=12, L=2: 128
	// vs 4096 paths) more J/bit. Compare at the same instantiated M.
	const m = 32
	r1 := EnergyPerBit(FCSDPE8, m, 64, 6) / EnergyPerBit(FlexCorePE8, m, 32, 6)
	r2 := EnergyPerBit(FCSDPE12, m, 4096, 6) / EnergyPerBit(FlexCorePE12, m, 128, 6)
	if r1 < 1.3 || r1 > 3 {
		t.Fatalf("Nt=8 L=1 J/bit ratio %.2f outside the ≈1.54× band", r1)
	}
	if r2 < 15 || r2 > 45 {
		t.Fatalf("Nt=12 L=2 J/bit ratio %.2f outside the ≈28.8× band", r2)
	}
}

func TestEnergyPerBitImprovesWithM(t *testing.T) {
	// More elements amortise static power: J/bit must fall with M.
	prev := math.Inf(1)
	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		e := EnergyPerBit(FlexCorePE12, m, 128, 6)
		if e >= prev {
			t.Fatalf("J/bit not decreasing at M=%d", m)
		}
		prev = e
	}
}

func TestPowerModel(t *testing.T) {
	if Power(FlexCorePE8, 1) != FlexCorePE8.PowerW {
		t.Fatal("single-element power must match Table 3")
	}
	if Power(FlexCorePE8, 2) <= Power(FlexCorePE8, 1) {
		t.Fatal("power must grow with instances")
	}
	if Power(FlexCorePE8, 0) != FlexCorePE8.PowerW {
		t.Fatal("zero instances should clamp to one")
	}
}
