package gpu

import (
	"math"
	"testing"
)

func TestFig11HeadlineSpeedup(t *testing.T) {
	// The paper's headline: FlexCore |E|=128 vs FCSD L=2 (4096 paths) at
	// 12×12 64-QAM, high occupancy → ≈19× speedup.
	d := GTX970
	fcsd := Workload{Vectors: 16384, PathsPerVector: 4096, Levels: 12}
	flex := Workload{Vectors: 16384, PathsPerVector: 128, Levels: 12, FlexCore: true}
	s := d.Speedup(fcsd, flex)
	if s < 16 || s < 0 || s > 24 {
		t.Fatalf("L=2 speedup %.1f outside the paper's ≈19× band", s)
	}
}

func TestSpeedupDropsAtLowOccupancy(t *testing.T) {
	// Fig. 11: the Nsc=64 curve sits below Nsc=1024 and Nsc=16384.
	d := GTX970
	speedupAt := func(nsc int) float64 {
		return d.Speedup(
			Workload{Vectors: nsc, PathsPerVector: 4096, Levels: 12},
			Workload{Vectors: nsc, PathsPerVector: 128, Levels: 12, FlexCore: true},
		)
	}
	s64, s1024, s16384 := speedupAt(64), speedupAt(1024), speedupAt(16384)
	if !(s64 < s1024 && s1024 <= s16384*1.01) {
		t.Fatalf("occupancy ordering broken: %v %v %v", s64, s1024, s16384)
	}
}

func TestSpeedupDecreasesWithMorePaths(t *testing.T) {
	d := GTX970
	base := Workload{Vectors: 1024, PathsPerVector: 4096, Levels: 12}
	prev := math.Inf(1)
	for _, e := range []int{8, 32, 128, 512, 1024} {
		s := d.Speedup(base, Workload{Vectors: 1024, PathsPerVector: e, Levels: 12, FlexCore: true})
		if s >= prev {
			t.Fatalf("speedup not decreasing in |E|: %v at %d", s, e)
		}
		prev = s
	}
}

func TestGPUBeatsCPUByPaperMargin(t *testing.T) {
	// §5.2: the GPU FCSD is at least 21× faster than OpenMP-8, and the
	// 8-thread CPU speedup over 1 thread is ≈5.14×.
	d := GTX970
	w := Workload{Vectors: 16384, PathsPerVector: 64, Levels: 12}
	gpu := d.KernelTime(w)
	cpu8 := d.CPUTime(w, 8)
	cpu1 := d.CPUTime(w, 1)
	if r := cpu8 / gpu; r < 21*0.85 {
		t.Fatalf("GPU/CPU-8 ratio %.1f below the paper's ≥21×", r)
	}
	if r := cpu1 / cpu8; math.Abs(r-5.14) > 0.4 {
		t.Fatalf("8-thread OpenMP speedup %.2f, want ≈5.14", r)
	}
}

func TestLTEAnchorPathCounts(t *testing.T) {
	// Fig. 12 anchors used for calibration must be reproduced: Nt=8
	// supports ≈105 paths at 1.25 MHz (525 vectors/slot) and ≈4 at
	// 20 MHz (8400); Nt=12 supports ≈68 and ≈2.
	d := GTX970
	const slot = 500e-6
	checks := []struct {
		vectors, levels, want, tol int
	}{
		{525, 8, 105, 12},
		{8400, 8, 4, 1},
		{525, 12, 68, 8},
		{8400, 12, 2, 1},
	}
	for _, c := range checks {
		got := d.MaxPathsWithinBudget(c.vectors, c.levels, true, slot)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Fatalf("vectors=%d levels=%d: %d paths, want %d±%d", c.vectors, c.levels, got, c.want, c.tol)
		}
	}
}

func TestMaxPathsInfeasible(t *testing.T) {
	d := GTX970
	// A budget below the fixed overhead supports nothing.
	if got := d.MaxPathsWithinBudget(1000, 12, true, 50e-6); got != 0 {
		t.Fatalf("infeasible budget returned %d paths", got)
	}
}

func TestFCSDCannotMeetWideLTEModes(t *testing.T) {
	// Fig. 12: the FCSD needs |Q| = 64 paths minimum (L=1); beyond the
	// narrow modes that no longer fits the slot budget.
	d := GTX970
	const slot = 500e-6
	if got := d.MaxPathsWithinBudget(525, 8, false, slot); got < 64 {
		t.Fatalf("FCSD L=1 should fit the 1.25 MHz mode, got %d", got)
	}
	if got := d.MaxPathsWithinBudget(8400, 8, false, slot); got >= 64 {
		t.Fatalf("FCSD L=1 should not fit the 20 MHz mode, got %d", got)
	}
}

func TestEnergyPerBitFavoursFlexCore(t *testing.T) {
	d := GTX970
	fcsd := Workload{Vectors: 16384, PathsPerVector: 4096, Levels: 12}
	flex := Workload{Vectors: 16384, PathsPerVector: 128, Levels: 12, FlexCore: true}
	ef := d.EnergyPerBit(flex, 6)
	eb := d.EnergyPerBit(fcsd, 6)
	if ef >= eb {
		t.Fatalf("FlexCore J/bit %.3g not below FCSD %.3g", ef, eb)
	}
	// Abstract: ≈97 % increased energy efficiency for the L=2 case.
	if red := 1 - ef/eb; red < 0.90 {
		t.Fatalf("energy reduction %.2f below the paper's ≈0.97 band", red)
	}
}

func TestKernelTimeMonotone(t *testing.T) {
	d := GTX970
	a := d.KernelTime(Workload{Vectors: 100, PathsPerVector: 10, Levels: 8})
	b := d.KernelTime(Workload{Vectors: 100, PathsPerVector: 20, Levels: 8})
	c := d.KernelTime(Workload{Vectors: 200, PathsPerVector: 10, Levels: 8})
	if !(a < b && a < c) {
		t.Fatal("kernel time not monotone in work")
	}
	flex := d.KernelTime(Workload{Vectors: 100, PathsPerVector: 10, Levels: 8, FlexCore: true})
	if flex <= a {
		t.Fatal("FlexCore workload factor not applied")
	}
}
