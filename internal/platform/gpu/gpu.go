// Package gpu models the execution time and energy of the paper's
// GPU-based detectors (§4, §5.2) without CUDA hardware: an analytic
// kernel-time model whose constants are calibrated against the paper's
// own published anchor points, as documented in DESIGN.md §2.
//
// The model is
//
//	T = T_overhead + V·t_transfer + (V·P·c_path)/cores
//
// where V is the number of subcarrier vectors in the batch, P the paths
// per vector (threads = V·P), and c_path the per-thread path cost
// (levels × per-level cost × a FlexCore workload factor for the extra
// arithmetic/branching of the ordering lookup, §4).
//
// Calibration anchors (all from the paper):
//   - Fig. 12: with 8 CUDA streams, FlexCore Nt=8 supports 105 paths in
//     the 1.25 MHz LTE mode and 4 paths at 20 MHz; Nt=12 supports 68 and
//     2. These four points pin the per-level cost, per-vector transfer
//     time and fixed overhead.
//   - Fig. 11: FlexCore |E|=128 vs FCSD L=2 at 12×12 64-QAM reaches ≈19×
//     speedup at high occupancy, which pins the FlexCore workload factor.
//   - §5.2: the GPU FCSD is ≥21× faster than 8-thread OpenMP, which with
//     the measured 5.14× 8-thread scaling (64.25 % parallel efficiency)
//     pins the CPU-core cost factor.
package gpu

import "math"

// Device holds the calibrated execution-model constants.
type Device struct {
	Name string
	// Cores is the number of parallel execution lanes.
	Cores int
	// PathLevelCost is the per-tree-level, per-thread execution cost of
	// an FCSD path, in seconds, on one lane.
	PathLevelCost float64
	// FlexCoreFactor scales path cost for FlexCore's extra per-level
	// work (predefined-ordering lookup, branching, deactivation logic).
	FlexCoreFactor float64
	// Overhead is the fixed kernel launch + driver cost per batch (s).
	Overhead float64
	// TransferPerVector is the host↔device transfer time per subcarrier
	// vector (s).
	TransferPerVector float64
	// PowerW is the busy board power used for the Joules/bit index.
	PowerW float64
	// CPUCoreFactor is the per-level cost of one CPU core relative to
	// PathLevelCost, and CPUParallelExp the OpenMP scaling exponent
	// (speedup(k) = k^CPUParallelExp).
	CPUCoreFactor  float64
	CPUParallelExp float64
}

// GTX970 is the paper's Maxwell evaluation device with constants
// calibrated as described in the package comment.
var GTX970 = Device{
	Name:              "GTX 970 (calibrated model)",
	Cores:             1664,
	PathLevelCost:     0.953e-6,
	FlexCoreFactor:    1.6,
	Overhead:          85e-6,
	TransferPerVector: 20e-9,
	PowerW:            145,
	CPUCoreFactor:     0.0649,
	CPUParallelExp:    0.785,
}

// Workload describes one detection batch.
type Workload struct {
	// Vectors is the number of received subcarrier vectors in the batch
	// (Nsc × OFDM symbols).
	Vectors int
	// PathsPerVector is |E| for FlexCore, |Q|^L for the FCSD.
	PathsPerVector int
	// Levels is the tree height Nt.
	Levels int
	// FlexCore selects the higher per-thread workload.
	FlexCore bool
}

// Threads returns the CUDA thread count Nsc·|E| (or Nsc·|Q|^L).
func (w Workload) Threads() int { return w.Vectors * w.PathsPerVector }

// pathCost returns the per-thread cost on one GPU lane.
func (d Device) pathCost(w Workload) float64 {
	c := d.PathLevelCost * float64(w.Levels)
	if w.FlexCore {
		c *= d.FlexCoreFactor
	}
	return c
}

// KernelTime returns the modelled GPU execution time of the batch,
// including transfers and launch overhead.
func (d Device) KernelTime(w Workload) float64 {
	compute := float64(w.Threads()) * d.pathCost(w) / float64(d.Cores)
	transfer := float64(w.Vectors) * d.TransferPerVector
	return d.Overhead + transfer + compute
}

// CPUTime returns the modelled OpenMP execution time of the same batch
// on `threads` CPU cores (threads ≥ 1). One CPU core executes a path
// CPUCoreFactor times as fast as... precisely: its per-path cost is
// pathCost·CPUCoreFactor (a general-purpose core is ~15× faster per
// thread than one GPU lane), and multi-threading scales sublinearly with
// the measured exponent (8 threads → 5.14×, 64.25 % efficiency).
func (d Device) CPUTime(w Workload, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	cpuPathCost := d.pathCost(w) * d.CPUCoreFactor
	speedup := math.Pow(float64(threads), d.CPUParallelExp)
	return float64(w.Threads()) * cpuPathCost / speedup
}

// Speedup returns T(base)/T(target) on the device.
func (d Device) Speedup(base, target Workload) float64 {
	return d.KernelTime(base) / d.KernelTime(target)
}

// EnergyPerBit returns the paper's Joules/bit index for the batch:
// board power × time / detected information bits, for bitsPerSymbol-bit
// constellation symbols on Levels streams.
func (d Device) EnergyPerBit(w Workload, bitsPerSymbol int) float64 {
	bits := float64(w.Vectors) * float64(w.Levels) * float64(bitsPerSymbol)
	return d.PowerW * d.KernelTime(w) / bits
}

// MaxPathsWithinBudget returns the largest paths-per-vector count the
// device can sustain for the batch within the time budget (s), or 0 if
// even one path is infeasible.
func (d Device) MaxPathsWithinBudget(vectors, levels int, flexCore bool, budget float64) int {
	fixed := d.Overhead + float64(vectors)*d.TransferPerVector
	if fixed > budget {
		return 0
	}
	w := Workload{Vectors: vectors, PathsPerVector: 1, Levels: levels, FlexCore: flexCore}
	perPath := float64(vectors) * d.pathCost(w) / float64(d.Cores)
	n := int((budget - fixed) / perPath)
	return n
}
