// Package lte fixes the 3GPP LTE numerology the paper evaluates against
// (§5.2, Fig. 12): the six bandwidth modes, the 500 µs timeslot budget
// and the per-slot detection workload (7 OFDM symbols × occupied
// subcarriers; 140× the subcarrier count per 10 ms frame).
package lte

import "flexcore/internal/platform/gpu"

// SlotDuration is the LTE timeslot the detector must keep up with.
const SlotDuration = 500e-6

// SymbolsPerSlot is the OFDM symbol count per 500 µs timeslot.
const SymbolsPerSlot = 7

// Mode is one LTE bandwidth configuration.
type Mode struct {
	Name         string
	BandwidthMHz float64
	// Subcarriers is the number of occupied (data-bearing) subcarriers.
	Subcarriers int
}

// Modes lists the LTE bandwidth modes of Fig. 12 with their occupied
// subcarrier counts (6/15/25/50/75/100 resource blocks × 12).
var Modes = []Mode{
	{"1.25 MHz", 1.25, 72},
	{"2.5 MHz", 2.5, 180},
	{"5 MHz", 5, 300},
	{"10 MHz", 10, 600},
	{"15 MHz", 15, 900},
	{"20 MHz", 20, 1200},
}

// VectorsPerSlot returns the number of received MIMO vectors the AP must
// detect within one timeslot.
func (m Mode) VectorsPerSlot() int { return m.Subcarriers * SymbolsPerSlot }

// VectorsPerFrame returns the per-10 ms-frame workload (the paper's
// "140× the number of occupied subcarriers").
func (m Mode) VectorsPerFrame() int { return m.Subcarriers * 140 }

// MaxPaths returns the largest per-vector path count the GPU device
// sustains within the slot budget for this mode (0 = infeasible).
func (m Mode) MaxPaths(d gpu.Device, levels int, flexCore bool) int {
	return d.MaxPathsWithinBudget(m.VectorsPerSlot(), levels, flexCore, SlotDuration)
}

// SupportsFCSD reports whether the FCSD with expansion depth L (needing
// |Q|^L paths) meets this mode's budget on the device.
func (m Mode) SupportsFCSD(d gpu.Device, levels, qamOrder, l int) bool {
	need := 1
	for i := 0; i < l; i++ {
		need *= qamOrder
	}
	return m.MaxPaths(d, levels, false) >= need
}
