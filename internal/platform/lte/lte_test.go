package lte

import (
	"testing"

	"flexcore/internal/platform/gpu"
)

func TestModeWorkloads(t *testing.T) {
	if len(Modes) != 6 {
		t.Fatalf("%d modes, want 6", len(Modes))
	}
	prev := 0
	for _, m := range Modes {
		if m.Subcarriers <= prev {
			t.Fatalf("subcarriers not increasing at %s", m.Name)
		}
		prev = m.Subcarriers
		if m.VectorsPerFrame() != 20*m.VectorsPerSlot() {
			t.Fatalf("%s: frame/slot inconsistency", m.Name)
		}
	}
	// The paper's workload statement: 140 × subcarriers per frame.
	if Modes[5].VectorsPerFrame() != 140*1200 {
		t.Fatal("20 MHz frame workload wrong")
	}
}

func TestFlexCoreSupportsAllModes(t *testing.T) {
	// §5.2/Fig. 12: FlexCore supports every LTE bandwidth (at least one
	// path everywhere), with path budgets shrinking as bandwidth grows.
	d := gpu.GTX970
	for _, levels := range []int{8, 12} {
		prev := 1 << 30
		for _, m := range Modes {
			p := m.MaxPaths(d, levels, true)
			if p < 1 {
				t.Fatalf("Nt=%d %s: FlexCore infeasible", levels, m.Name)
			}
			if p > prev {
				t.Fatalf("Nt=%d %s: path budget grew with bandwidth", levels, m.Name)
			}
			prev = p
		}
	}
}

func TestFCSDLimitedToNarrowModes(t *testing.T) {
	// Fig. 12: the FCSD (L=1, 64-QAM) only fits the 1.25 MHz mode, and
	// L=2 fits nothing.
	d := gpu.GTX970
	for _, levels := range []int{8, 12} {
		if !Modes[0].SupportsFCSD(d, levels, 64, 1) {
			t.Fatalf("Nt=%d: FCSD L=1 should fit 1.25 MHz", levels)
		}
		// Nt=8 at 2.5 MHz is borderline in this calibration (67 vs the 64
		// paths required); every wider mode must be infeasible, and at
		// Nt=12 everything beyond 1.25 MHz must be infeasible.
		for _, m := range Modes[2:] {
			if m.SupportsFCSD(d, levels, 64, 1) {
				t.Fatalf("Nt=%d %s: FCSD L=1 should not fit", levels, m.Name)
			}
		}
		for _, m := range Modes {
			if m.SupportsFCSD(d, levels, 64, 2) {
				t.Fatalf("Nt=%d %s: FCSD L=2 should not fit anywhere", levels, m.Name)
			}
		}
	}
	if Modes[1].SupportsFCSD(d, 12, 64, 1) {
		t.Fatal("Nt=12 2.5 MHz: FCSD L=1 should not fit")
	}
}
