package phy

import (
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/coding"
	"flexcore/internal/constellation"
)

// smallLink is a fast 2×2 4-QAM geometry for unit tests.
func smallLink() LinkConfig {
	return LinkConfig{
		Users:         2,
		APAntennas:    2,
		Constellation: constellation.MustNew(4),
		CodeRate:      coding.Rate12,
		Subcarriers:   8, // NCBPS = 16
		OFDMSymbols:   8,
	}
}

func TestLinkConfigValidate(t *testing.T) {
	good := smallLink()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Users = 3 // more users than antennas
	if err := bad.Validate(); err == nil {
		t.Fatal("users > antennas accepted")
	}
	bad = good
	bad.Subcarriers = 7 // NCBPS = 14, not a multiple of 16
	if err := bad.Validate(); err == nil {
		t.Fatal("bad NCBPS accepted")
	}
	bad = good
	bad.OFDMSymbols = 1 // payload would be negative
	if err := bad.Validate(); err == nil {
		t.Fatal("packet too short accepted")
	}
	bad = good
	bad.Constellation = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil constellation accepted")
	}
}

func TestPayloadBitsArithmetic(t *testing.T) {
	c := smallLink()
	// 8 subcarriers × 2 bits × 8 symbols = 128 coded bits → 64 pairs →
	// 64 − 6 (tail) − 32 (CRC) = 26 payload bits.
	if got := c.PayloadBits(); got != 26 {
		t.Fatalf("payload bits %d, want 26", got)
	}
	// Rate 3/4: 128 coded bits carry 96 pairs.
	c.CodeRate = coding.Rate34
	if got := c.motherPairs(); got != 96 {
		t.Fatalf("rate-3/4 pairs %d, want 96", got)
	}
}

func TestCRCRoundTrip(t *testing.T) {
	rng := channel.NewRNG(301)
	for _, n := range []int{8, 26, 100, 1000} {
		payload := make([]uint8, n)
		for i := range payload {
			payload[i] = uint8(rng.IntN(2))
		}
		info := appendCRC(payload)
		if len(info) != n+32 {
			t.Fatalf("CRC append length %d", len(info))
		}
		got, ok := splitCRC(info)
		if !ok {
			t.Fatal("clean CRC rejected")
		}
		for i := range payload {
			if got[i] != payload[i] {
				t.Fatal("payload corrupted")
			}
		}
		// Any single flipped bit must fail the check.
		for _, pos := range []int{0, n / 2, n + 5, n + 31} {
			mut := append([]uint8(nil), info...)
			mut[pos] ^= 1
			if _, ok := splitCRC(mut); ok {
				t.Fatalf("flip at %d not detected", pos)
			}
		}
	}
}

func TestPackBits(t *testing.T) {
	got := packBits([]uint8{1, 0, 1, 0, 0, 0, 0, 1, 1})
	if len(got) != 2 || got[0] != 0xA1 || got[1] != 0x80 {
		t.Fatalf("packBits wrong: %x", got)
	}
}

func TestTxRxChainLoopback(t *testing.T) {
	// Without channel or noise, decoding the transmitted symbols must
	// recover every packet exactly.
	link := smallLink()
	il, err := coding.NewInterleaver(link.ncbps(), link.Constellation.BitsPerSymbol())
	if err != nil {
		t.Fatal(err)
	}
	rng := channel.NewRNG(302)
	for trial := 0; trial < 20; trial++ {
		tx := link.buildTxPacket(rng, il)
		ok, bitErrs, err := link.decodeRxPacket(tx.symbols, tx, il)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || bitErrs != 0 {
			t.Fatalf("trial %d: loopback failed (ok=%v errs=%d)", trial, ok, bitErrs)
		}
	}
}

func TestTxRxChainCorruption(t *testing.T) {
	// Corrupting many detected symbols must produce a packet error.
	link := smallLink()
	il, err := coding.NewInterleaver(link.ncbps(), link.Constellation.BitsPerSymbol())
	if err != nil {
		t.Fatal(err)
	}
	rng := channel.NewRNG(303)
	tx := link.buildTxPacket(rng, il)
	rx := make([][]int, len(tx.symbols))
	for s := range rx {
		rx[s] = append([]int(nil), tx.symbols[s]...)
		for k := 0; k < len(rx[s]); k += 2 {
			rx[s][k] = (rx[s][k] + 1) % link.Constellation.Size()
		}
	}
	ok, _, err := link.decodeRxPacket(rx, tx, il)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("heavily corrupted packet accepted")
	}
}

func TestTxPacketsDiffer(t *testing.T) {
	link := smallLink()
	il, _ := coding.NewInterleaver(link.ncbps(), link.Constellation.BitsPerSymbol())
	rng := channel.NewRNG(304)
	a := link.buildTxPacket(rng, il)
	b := link.buildTxPacket(rng, il)
	same := true
	for i := range a.payload {
		if a.payload[i] != b.payload[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("consecutive packets carry identical payloads")
	}
}
