package phy

import (
	"fmt"
	"math"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
	"flexcore/internal/detector"
	"flexcore/internal/ofdm"
)

// WaveformConfig drives a full time-domain over-the-air-style simulation
// — the closest software analogue of the paper's WARP experiments: every
// user synthesises a real OFDM waveform (preamble + payload), the
// waveforms traverse per-antenna-pair multipath channels sample by
// sample, and the receiver estimates channels from the preamble before
// detecting. Users are trigger-synchronised, as WARPLab nodes are, so
// no timing search is needed; preambles are time-orthogonal (user u
// sends its two LTF symbols in slots 2u, 2u+1 and is silent otherwise).
type WaveformConfig struct {
	Users         int
	APAntennas    int
	Constellation *constellation.Constellation
	// DataSymbols is the payload length in OFDM symbols.
	DataSymbols int
	// SNRdB sets the per-stream symbol SNR (Es/σ²).
	SNRdB float64
	// Taps is the multipath tap count per antenna pair (must stay below
	// the cyclic prefix; taps decay 3 dB each).
	Taps int
	Seed uint64
	// Detector demultiplexes the received vectors (prepared per
	// subcarrier with the preamble-estimated channel).
	Detector detector.Detector
}

// WaveformResult reports waveform-level detection quality.
type WaveformResult struct {
	Symbols      int
	SymbolErrors int
	SER          float64
	// ChannelErrVar is the mean squared error of the preamble channel
	// estimate against the true frequency response.
	ChannelErrVar float64
}

// RunWaveform executes the time-domain chain.
func RunWaveform(cfg WaveformConfig) (WaveformResult, error) {
	if cfg.Users < 1 || cfg.APAntennas < cfg.Users {
		return WaveformResult{}, fmt.Errorf("phy: invalid waveform geometry")
	}
	if cfg.Taps < 1 || cfg.Taps > ofdm.CPLength {
		return WaveformResult{}, fmt.Errorf("phy: taps must be in [1, %d]", ofdm.CPLength)
	}
	if cfg.Detector == nil {
		return WaveformResult{}, fmt.Errorf("phy: detector required")
	}
	rng := channel.NewRNG(cfg.Seed)
	mod := ofdm.NewModulator()
	cons := cfg.Constellation
	nt, nr := cfg.Users, cfg.APAntennas
	sigma2 := channel.Sigma2FromSNRdB(cfg.SNRdB, 1)

	preambleSlots := 2 * nt
	totalSymbols := preambleSlots + cfg.DataSymbols
	samples := totalSymbols * ofdm.SamplesPerSymbol

	// Per-user transmit waveforms: staggered LTFs then payload.
	txSym := make([][][]int, nt) // [user][dataSym][subcarrier]
	waves := make([][]complex128, nt)
	ltf := ofdm.LTFSequence()
	for u := 0; u < nt; u++ {
		wave := make([]complex128, 0, samples)
		for slot := 0; slot < preambleSlots; slot++ {
			if slot == 2*u || slot == 2*u+1 {
				s, err := mod.Symbol(ltf)
				if err != nil {
					return WaveformResult{}, err
				}
				wave = append(wave, s...)
			} else {
				wave = append(wave, make([]complex128, ofdm.SamplesPerSymbol)...)
			}
		}
		txSym[u] = make([][]int, cfg.DataSymbols)
		for s := 0; s < cfg.DataSymbols; s++ {
			txSym[u][s] = make([]int, ofdm.DataSubcarriers)
			data := make([]complex128, ofdm.DataSubcarriers)
			for k := range data {
				idx := rng.IntN(cons.Size())
				txSym[u][s][k] = idx
				data[k] = cons.Point(idx)
			}
			w, err := mod.Symbol(data)
			if err != nil {
				return WaveformResult{}, err
			}
			wave = append(wave, w...)
		}
		waves[u] = wave
	}

	// Per-pair multipath taps with an exponential profile, normalised so
	// E‖h(f)‖² = 1 per pair.
	powers := channel.TDLConfig{NTaps: cfg.Taps, DecayPerTap: 3, NFFT: ofdm.NFFT}
	taps := make([][][]complex128, nr)
	for r := 0; r < nr; r++ {
		taps[r] = make([][]complex128, nt)
		for u := 0; u < nt; u++ {
			taps[r][u] = drawTaps(rng, powers)
		}
	}

	// Superpose at each receive antenna and add noise.
	rx := make([][]complex128, nr)
	for r := 0; r < nr; r++ {
		acc := make([]complex128, samples)
		for u := 0; u < nt; u++ {
			convolveInto(acc, waves[u], taps[r][u])
		}
		channel.AddAWGN(rng, acc, sigma2)
		rx[r] = acc
	}

	// Channel estimation: user u's LTFs occupy slots 2u and 2u+1.
	// hEst[k] is the nr×nt matrix at data bin k.
	hEst := make([]*cmatrix.Matrix, ofdm.DataSubcarriers)
	for k := range hEst {
		hEst[k] = cmatrix.New(nr, nt)
	}
	var estErr float64
	var estN int
	for u := 0; u < nt; u++ {
		for r := 0; r < nr; r++ {
			var avg []complex128
			for rep := 0; rep < 2; rep++ {
				slot := (2*u + rep) * ofdm.SamplesPerSymbol
				h, err := ofdm.EstimateFromLTF(rx[r][slot : slot+ofdm.SamplesPerSymbol])
				if err != nil {
					return WaveformResult{}, err
				}
				if avg == nil {
					avg = h
				} else {
					for i := range avg {
						avg[i] = (avg[i] + h[i]) / 2
					}
				}
			}
			truth := tapsToFreq(taps[r][u])
			for k := range avg {
				hEst[k].Set(r, u, avg[k])
				d := avg[k] - truth[k]
				estErr += real(d)*real(d) + imag(d)*imag(d)
				estN++
			}
		}
	}

	// Detection: per subcarrier Prepare on the estimate, per symbol
	// Detect across antennas.
	res := WaveformResult{ChannelErrVar: estErr / float64(estN)}
	y := make([]complex128, nr)
	demod := make([][][]complex128, nr) // [antenna][dataSym][bin]
	for r := 0; r < nr; r++ {
		demod[r] = make([][]complex128, cfg.DataSymbols)
		for s := 0; s < cfg.DataSymbols; s++ {
			start := (preambleSlots + s) * ofdm.SamplesPerSymbol
			d, err := mod.Demodulate(rx[r][start : start+ofdm.SamplesPerSymbol])
			if err != nil {
				return WaveformResult{}, err
			}
			demod[r][s] = d
		}
	}
	// The estimates are all computed before detection starts, so a
	// frame-capable detector prepares every bin in one PrepareAll call.
	framePrep, _ := cfg.Detector.(FramePreparer)
	if framePrep != nil {
		if err := framePrep.PrepareAll(hEst, sigma2); err != nil {
			return WaveformResult{}, fmt.Errorf("phy: waveform prepare frame: %w", err)
		}
	}
	for k := 0; k < ofdm.DataSubcarriers; k++ {
		if framePrep != nil {
			if err := framePrep.Select(k); err != nil {
				return WaveformResult{}, fmt.Errorf("phy: waveform select bin %d: %w", k, err)
			}
		} else if err := cfg.Detector.Prepare(hEst[k], sigma2); err != nil {
			return WaveformResult{}, fmt.Errorf("phy: waveform prepare bin %d: %w", k, err)
		}
		for s := 0; s < cfg.DataSymbols; s++ {
			for r := 0; r < nr; r++ {
				y[r] = demod[r][s][k]
			}
			got := cfg.Detector.Detect(y)
			for u := 0; u < nt; u++ {
				res.Symbols++
				if got[u] != txSym[u][s][k] {
					res.SymbolErrors++
				}
			}
		}
	}
	res.SER = float64(res.SymbolErrors) / float64(res.Symbols)
	return res, nil
}

// drawTaps draws one antenna pair's normalised multipath taps.
func drawTaps(rng interface {
	NormFloat64() float64
}, cfg channel.TDLConfig) []complex128 {
	// Reuse channel.FreqSelective's profile arithmetic via direct draw.
	powers := make([]float64, cfg.NTaps)
	var sum float64
	for t := 0; t < cfg.NTaps; t++ {
		powers[t] = math.Pow(10, -cfg.DecayPerTap*float64(t)/10)
		sum += powers[t]
	}
	taps := make([]complex128, cfg.NTaps)
	for t := range taps {
		std := math.Sqrt(powers[t] / sum / 2)
		taps[t] = complex(rng.NormFloat64()*std, rng.NormFloat64()*std)
	}
	return taps
}

// tapsToFreq returns the data-bin frequency response of the taps.
func tapsToFreq(taps []complex128) []complex128 {
	freq := make([]complex128, ofdm.NFFT)
	copy(freq, taps)
	ofdm.FFT(freq)
	idx := ofdm.DataSubcarrierIndices()
	out := make([]complex128, len(idx))
	for i, bin := range idx {
		out[i] = freq[bin]
	}
	return out
}

// convolveInto accumulates conv(x, taps) into acc (same length as x).
func convolveInto(acc, x, taps []complex128) {
	for d, tap := range taps {
		if tap == 0 { //lint:ignore floatcmp exact-zero taps (padded profiles) contribute nothing; skipping them is exact
			continue
		}
		for n := d; n < len(x); n++ {
			acc[n] += tap * x[n-d]
		}
	}
}
