package phy

import (
	"errors"
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
)

// frameCase builds a deterministic frame: K Rayleigh channels and a
// burst of S received vectors per subcarrier.
func frameCase(t *testing.T, seed uint64, nr, nt, k, s int) ([]*cmatrix.Matrix, [][][]complex128) {
	t.Helper()
	rng := channel.NewStreamRNG(seed, 0)
	hs := make([]*cmatrix.Matrix, k)
	ys := make([][][]complex128, k)
	x := make([]complex128, nt)
	for i := range hs {
		hs[i] = channel.Rayleigh(rng, nr, nt)
		ys[i] = make([][]complex128, s)
		for j := range ys[i] {
			for l := range x {
				x[l] = channel.CN(rng, 1)
			}
			ys[i][j] = channel.AddAWGN(rng, hs[i].MulVec(x), 0.1)
		}
	}
	return hs, ys
}

// runFrame collects DetectFrame's streamed decisions into a copy the
// caller owns.
func runFrame(t *testing.T, fd *FrameDetector, hs []*cmatrix.Matrix, ys [][][]complex128, sigma2 float64) [][][]int {
	t.Helper()
	out := make([][][]int, len(hs))
	err := fd.DetectFrame(hs, sigma2, func(k int) [][]complex128 { return ys[k] }, func(k int, decisions [][]int) {
		out[k] = make([][]int, len(decisions))
		for s, d := range decisions {
			out[k][s] = append([]int(nil), d...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// checkAgainstScalarLoop compares a FrameDetector run against the
// reference loop — a fresh detector, scalar Prepare+Detect per
// subcarrier — which must be bit-identical (DESIGN.md §9).
func checkAgainstScalarLoop(t *testing.T, fd *FrameDetector, ref detector.Detector, seed uint64) {
	t.Helper()
	const nr, nt, k, s, sigma2 = 4, 3, 5, 2, 0.1
	hs, ys := frameCase(t, seed, nr, nt, k, s)
	got := runFrame(t, fd, hs, ys, sigma2)
	for ki := range hs {
		if err := ref.Prepare(hs[ki], sigma2); err != nil {
			t.Fatal(err)
		}
		for si := range ys[ki] {
			want := ref.Detect(ys[ki][si])
			for i, w := range want {
				if got[ki][si][i] != w {
					t.Fatalf("subcarrier %d symbol %d stream %d: frame path %d, scalar loop %d",
						ki, si, i, got[ki][si][i], w)
				}
			}
		}
	}
}

// TestFrameDetectorMatchesScalarLoopFlexCore covers the channel-rate
// fast path: FlexCore implements FramePreparer, so DetectFrame goes
// through PrepareAll/Select.
func TestFrameDetectorMatchesScalarLoopFlexCore(t *testing.T) {
	cons, err := constellation.New(16)
	if err != nil {
		t.Fatal(err)
	}
	det := core.New(cons, core.Options{NPE: 16})
	defer det.Close()
	ref := core.New(cons, core.Options{NPE: 16})
	defer ref.Close()
	fd := NewFrameDetector(det)
	checkAgainstScalarLoop(t, fd, ref, 0xabc1)
	// FlexCore reports active PEs: the frame loop must have sampled one
	// count per prepared subcarrier across the run.
	if sum, n := fd.ActivePEs(); n != 5 || sum != float64(16*5) {
		t.Fatalf("ActivePEs = (%g, %d), want (80, 5)", sum, n)
	}
}

// TestFrameDetectorMatchesScalarLoopMMSE covers the scalar fallback:
// a linear detector has no FramePreparer, so DetectFrame loops Prepare.
func TestFrameDetectorMatchesScalarLoopMMSE(t *testing.T) {
	cons, err := constellation.New(16)
	if err != nil {
		t.Fatal(err)
	}
	det := detector.NewMMSE(cons)
	ref := detector.NewMMSE(cons)
	fd := NewFrameDetector(det)
	checkAgainstScalarLoop(t, fd, ref, 0xabc2)
	if sum, n := fd.ActivePEs(); sum != 0 || n != 0 {
		t.Fatalf("ActivePEs = (%g, %d) for a detector without ActivePaths, want (0, 0)", sum, n)
	}
}

// errDetector fails Prepare after a set number of successes.
type errDetector struct {
	okLeft int
	err    error
}

func (d *errDetector) Name() string { return "err-stub" }
func (d *errDetector) Prepare(h *cmatrix.Matrix, sigma2 float64) error {
	if d.okLeft == 0 {
		return d.err
	}
	d.okLeft--
	return nil
}
func (d *errDetector) Detect(y []complex128) []int { return []int{0} }
func (d *errDetector) OpCount() detector.OpCount   { return detector.OpCount{} }

// TestFrameDetectorPropagatesPrepareError: a mid-frame Prepare failure
// surfaces as DetectFrame's error; emit is not called for the failed
// subcarrier.
func TestFrameDetectorPropagatesPrepareError(t *testing.T) {
	want := errors.New("prepare failed")
	fd := NewFrameDetector(&errDetector{okLeft: 2, err: want})
	hs, ys := frameCase(t, 0xabc3, 2, 1, 4, 1)
	emitted := 0
	err := fd.DetectFrame(hs, 0.1, func(k int) [][]complex128 { return ys[k] }, func(k int, decisions [][]int) { emitted++ })
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want the detector's error", err)
	}
	if emitted != 2 {
		t.Fatalf("emit called %d times before the failure, want 2", emitted)
	}
}

// TestFrameDetectorReuseState covers the SetReuseState passthrough: a
// FlexCore-backed FrameDetector reports support and a re-sent frame
// hits the installed per-user state on every subcarrier with decisions
// unchanged, while a detector without the coherence cache reports
// false.
func TestFrameDetectorReuseState(t *testing.T) {
	cons, err := constellation.New(16)
	if err != nil {
		t.Fatal(err)
	}
	det := core.New(cons, core.Options{NPE: 16, PathReuse: true, ReuseThreshold: 0})
	defer det.Close()
	fd := NewFrameDetector(det)
	var st core.ReuseState
	if !fd.SetReuseState(&st) {
		t.Fatal("FlexCore FrameDetector must report reuse-state support")
	}

	const nr, nt, k, s, sigma2 = 4, 3, 5, 2, 0.1
	hs, ys := frameCase(t, 0xabc4, nr, nt, k, s)
	first := runFrame(t, fd, hs, ys, sigma2)
	if st.Valid() != true {
		t.Fatal("ReuseState not based after the first frame")
	}
	again := runFrame(t, fd, hs, ys, sigma2) // identical H: all external hits
	for ki := range hs {
		for si := range ys[ki] {
			for i := range first[ki][si] {
				if first[ki][si][i] != again[ki][si][i] {
					t.Fatalf("subcarrier %d symbol %d stream %d: reuse hit changed the decision", ki, si, i)
				}
			}
		}
	}
	if pp := det.PreprocessStats(); pp.CacheHits != k {
		t.Fatalf("CacheHits = %d after the re-sent frame, want %d", pp.CacheHits, k)
	}

	mmse := NewFrameDetector(detector.NewMMSE(cons))
	if mmse.SetReuseState(&st) {
		t.Fatal("MMSE FrameDetector must not report reuse-state support")
	}
}
