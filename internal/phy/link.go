package phy

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand/v2"

	"flexcore/internal/coding"
	"flexcore/internal/constellation"
)

// LinkConfig describes the per-user transmit chain geometry.
type LinkConfig struct {
	// Users is the number of single-antenna uplink users (Nt).
	Users int
	// APAntennas is the number of AP receive antennas (Nr ≥ Users).
	APAntennas int
	// Constellation carries the per-stream QAM alphabet.
	Constellation *constellation.Constellation
	// CodeRate is the convolutional code rate (paper: 1/2).
	CodeRate coding.Rate
	// Subcarriers is the number of simulated data subcarriers. 48 is the
	// full 802.11 symbol; smaller values (with NCBPS still a multiple of
	// 16) cut simulation cost without changing per-subcarrier statistics.
	Subcarriers int
	// OFDMSymbols is the packet length in OFDM symbols.
	OFDMSymbols int
}

// Validate checks the geometry and returns derived sizes.
func (c *LinkConfig) Validate() error {
	if c.Users < 1 || c.APAntennas < c.Users {
		return fmt.Errorf("phy: invalid MIMO geometry %d users × %d antennas", c.Users, c.APAntennas)
	}
	if c.Constellation == nil {
		return fmt.Errorf("phy: constellation required")
	}
	if c.Subcarriers < 1 || c.OFDMSymbols < 1 {
		return fmt.Errorf("phy: need positive subcarriers and OFDM symbols")
	}
	if c.ncbps()%16 != 0 {
		return fmt.Errorf("phy: NCBPS %d not a multiple of 16 (choose a different subcarrier count)", c.ncbps())
	}
	if c.PayloadBits() < 8 {
		return fmt.Errorf("phy: packet too short for CRC and tail")
	}
	return nil
}

// ncbps is the coded bits per OFDM symbol per stream.
func (c *LinkConfig) ncbps() int { return c.Subcarriers * c.Constellation.BitsPerSymbol() }

// codedBitsPerPacket is the transmitted coded bits per user per packet.
func (c *LinkConfig) codedBitsPerPacket() int { return c.ncbps() * c.OFDMSymbols }

// motherPairs is the number of rate-1/2 encoder output pairs that fill
// one packet after puncturing.
func (c *LinkConfig) motherPairs() int {
	// PuncturedLength(pairs) == codedBitsPerPacket; invert per rate.
	coded := c.codedBitsPerPacket()
	switch c.CodeRate {
	case coding.Rate12:
		return coded / 2
	case coding.Rate23:
		// 3 transmitted bits per 2 pairs.
		return coded / 3 * 2
	case coding.Rate34:
		// 4 transmitted bits per 3 pairs.
		return coded / 4 * 3
	default:
		panic("phy: unsupported code rate")
	}
}

// PayloadBits is the information payload per user per packet, excluding
// the 32-bit CRC and the 6-bit zero tail.
func (c *LinkConfig) PayloadBits() int {
	return c.motherPairs() - (coding.ConstraintLength - 1) - 32
}

// txPacket is one user's encoded packet.
type txPacket struct {
	payload []uint8 // PayloadBits information bits
	symbols [][]int // [ofdmSymbol][subcarrier] constellation indices
	coded   []uint8 // transmitted (punctured, interleaved) bits
}

// buildTxPacket runs the transmit chain for one user.
func (c *LinkConfig) buildTxPacket(rng *rand.Rand, il *coding.Interleaver) txPacket {
	payload := make([]uint8, c.PayloadBits())
	for i := range payload {
		payload[i] = uint8(rng.IntN(2))
	}
	info := appendCRC(payload)
	coded := coding.EncodeRate12(info)
	stream := coding.Puncture(coded, c.CodeRate)
	// Interleave per OFDM symbol and map to constellation symbols.
	bps := c.Constellation.BitsPerSymbol()
	symbols := make([][]int, c.OFDMSymbols)
	tx := txPacket{payload: payload, coded: stream}
	for s := 0; s < c.OFDMSymbols; s++ {
		block := il.Interleave(stream[s*c.ncbps() : (s+1)*c.ncbps()])
		symbols[s] = make([]int, c.Subcarriers)
		for k := 0; k < c.Subcarriers; k++ {
			symbols[s][k] = c.Constellation.SymbolFromBits(block[k*bps : (k+1)*bps])
		}
	}
	tx.symbols = symbols
	return tx
}

// decodeRxPacket runs the receive chain on hard symbol decisions and
// reports packet success (CRC match) and payload bit errors.
func (c *LinkConfig) decodeRxPacket(rx [][]int, tx txPacket, il *coding.Interleaver) (ok bool, bitErrors int, err error) {
	bps := c.Constellation.BitsPerSymbol()
	stream := make([]uint8, 0, c.codedBitsPerPacket())
	buf := make([]uint8, c.ncbps())
	bits := make([]uint8, bps)
	for s := 0; s < c.OFDMSymbols; s++ {
		for k := 0; k < c.Subcarriers; k++ {
			c.Constellation.SymbolBits(rx[s][k], bits)
			copy(buf[k*bps:(k+1)*bps], bits)
		}
		stream = append(stream, il.Deinterleave(buf)...)
	}
	mother, err := coding.Depuncture(stream, c.CodeRate, c.motherPairs())
	if err != nil {
		return false, 0, err
	}
	info, err := coding.DecodeRate12(mother, c.PayloadBits()+32)
	if err != nil {
		return false, 0, err
	}
	payload, crcOK := splitCRC(info)
	for i := range tx.payload {
		if payload[i] != tx.payload[i] {
			bitErrors++
		}
	}
	return crcOK && bitErrors == 0, bitErrors, nil
}

// decodeRxPacketSoft is decodeRxPacket for LLR observations: it
// deinterleaves the soft values, re-inserts zero LLRs at punctured
// positions and runs soft-decision Viterbi.
func (c *LinkConfig) decodeRxPacketSoft(rxLLR [][]float64, tx txPacket, il *coding.Interleaver) (ok bool, bitErrors int, err error) {
	stream := make([]float64, 0, c.codedBitsPerPacket())
	for s := 0; s < c.OFDMSymbols; s++ {
		stream = append(stream, il.DeinterleaveLLRs(rxLLR[s])...)
	}
	mother, err := coding.DepunctureLLRs(stream, c.CodeRate, c.motherPairs())
	if err != nil {
		return false, 0, err
	}
	info, err := coding.DecodeRate12Soft(mother, c.PayloadBits()+32)
	if err != nil {
		return false, 0, err
	}
	payload, crcOK := splitCRC(info)
	for i := range tx.payload {
		if payload[i] != tx.payload[i] {
			bitErrors++
		}
	}
	return crcOK && bitErrors == 0, bitErrors, nil
}

// appendCRC appends the IEEE CRC-32 of the payload bits (packed MSB
// first) as 32 trailing bits.
func appendCRC(payload []uint8) []uint8 {
	crc := crc32.ChecksumIEEE(packBits(payload))
	out := make([]uint8, len(payload)+32)
	copy(out, payload)
	var word [4]byte
	binary.BigEndian.PutUint32(word[:], crc)
	for i := 0; i < 32; i++ {
		out[len(payload)+i] = (word[i/8] >> (7 - i%8)) & 1
	}
	return out
}

// splitCRC verifies and strips the trailing CRC-32.
func splitCRC(info []uint8) (payload []uint8, ok bool) {
	n := len(info) - 32
	payload = info[:n]
	want := crc32.ChecksumIEEE(packBits(payload))
	var got uint32
	for i := 0; i < 32; i++ {
		got = got<<1 | uint32(info[n+i]&1)
	}
	return payload, got == want
}

// packBits packs 0/1 bits into bytes, MSB first, zero-padded.
func packBits(bits []uint8) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b&1 == 1 {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	return out
}
