package phy

import (
	"flexcore/internal/cmatrix"
	"flexcore/internal/core"
	"flexcore/internal/detector"
)

// FrameDetector runs any detector over whole uplink frames — one
// channel matrix per subcarrier, a burst of OFDM symbols per
// subcarrier — through the channel-rate fast path when the detector
// implements FramePreparer (FlexCore's PrepareAll/Select, DESIGN.md
// §9) and through the scalar Prepare loop otherwise. It is the
// frame-detection loop shared by the link simulator's genie-CSI path
// and the serving layer (internal/serve): both must produce decisions
// bit-identical to looping Prepare+Detect per subcarrier, which the
// underlying detectors guarantee for any worker count.
//
// A FrameDetector is not safe for concurrent use (detectors are
// stateful across Prepare/Detect); run one per goroutine or shard.
type FrameDetector struct {
	det    detector.Detector
	batch  detector.BatchDetector
	frame  FramePreparer
	rep    ActivePathReporter
	reuser ReuseCarrier

	activeSum float64
	activeN   int64
}

// ReuseCarrier is implemented by detectors whose PathReuse coherence
// cache can be re-keyed onto caller-owned cross-frame state
// (core.FlexCore). The serving layer uses it to key Prepare reuse per
// user.
type ReuseCarrier interface {
	SetReuseState(*core.ReuseState)
}

// NewFrameDetector wraps d for frame-at-a-time detection.
func NewFrameDetector(d detector.Detector) *FrameDetector {
	f := &FrameDetector{det: d, batch: detector.Batch(d)}
	f.frame, _ = d.(FramePreparer)
	f.rep, _ = d.(ActivePathReporter)
	f.reuser, _ = d.(ReuseCarrier)
	return f
}

// SetReuseState installs st as the wrapped detector's cross-frame
// coherence base for the next DetectFrame calls (nil removes it) and
// reports whether the detector supports external reuse keying. The
// type assertion is done once at construction, so per-frame installs
// stay off the allocation and dispatch hot path.
//
//flexcore:noalloc
func (f *FrameDetector) SetReuseState(st *core.ReuseState) bool {
	if f.reuser == nil {
		return false
	}
	f.reuser.SetReuseState(st)
	return true
}

// Detector returns the wrapped detector.
func (f *FrameDetector) Detector() detector.Detector { return f.det }

// DetectFrame detects one frame: it prepares every subcarrier channel
// (in one PrepareAll when the detector supports it), then for each
// subcarrier k detects the burst returned by burst(k) — one received
// vector per OFDM symbol — and hands the decisions to emit(k, got).
// The decisions slice is detector-owned and valid only until the next
// detection call: emit must consume (copy or encode) it before
// returning. The burst and emit callbacks let callers stream results
// without any intermediate per-frame decision buffer, keeping the
// steady-state loop allocation-free.
//
//flexcore:noalloc
func (f *FrameDetector) DetectFrame(hs []*cmatrix.Matrix, sigma2 float64, burst func(k int) [][]complex128, emit func(k int, decisions [][]int)) error {
	if f.frame != nil {
		if err := f.frame.PrepareAll(hs, sigma2); err != nil {
			return err
		}
	}
	for k := range hs {
		if f.frame != nil {
			if err := f.frame.Select(k); err != nil {
				return err
			}
		} else if err := f.det.Prepare(hs[k], sigma2); err != nil {
			return err
		}
		if f.rep != nil {
			f.activeSum += float64(f.rep.ActivePaths())
			f.activeN++
		}
		emit(k, f.batch.DetectBatch(burst(k)))
	}
	return nil
}

// ActivePEs returns the cumulative active processing-element count and
// the number of prepared subcarriers it was sampled over (nonzero only
// for detectors reporting ActivePaths, i.e. FlexCore/a-FlexCore) — the
// serving layer's AvgActivePEs metric.
func (f *FrameDetector) ActivePEs() (sum float64, n int64) { return f.activeSum, f.activeN }
