package phy

import (
	"math"
	"math/cmplx"
	"math/rand/v2"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
)

// pilotMatrix returns the Nt×Np unit-modulus DFT pilot matrix: user u
// transmits P(u,p) = e^(−2πi·u·p/Np) during pilot symbol p. For Np ≥ Nt
// the rows are orthogonal (P·Pᴴ = Np·I), the standard multi-user uplink
// sounding arrangement (each 802.11/LTE frame carries such a preamble).
func pilotMatrix(nt, np int) *cmatrix.Matrix {
	p := cmatrix.New(nt, np)
	for u := 0; u < nt; u++ {
		for t := 0; t < np; t++ {
			p.Set(u, t, cmplx.Exp(complex(0, -2*math.Pi*float64(u*t)/float64(np))))
		}
	}
	return p
}

// EstimateLS performs least-squares channel estimation from np pilot
// OFDM symbols: the AP observes Y = H·P + N and recovers
// Ĥ = Y·Pᴴ/Np, whose per-entry error variance is σ²/Np. This models the
// over-the-air estimation step of the paper's WARP experiments ("all
// necessary estimation and synchronisation steps", §5.1): more pilots
// mean a cleaner estimate, and the paper's §3.1 point that FlexCore's
// pre-processing needs reliable channel knowledge becomes measurable.
func EstimateLS(rng *rand.Rand, h *cmatrix.Matrix, sigma2 float64, np int) *cmatrix.Matrix {
	nt := h.Cols
	if np < nt {
		np = nt // fewer pilots than users cannot separate the streams
	}
	p := pilotMatrix(nt, np)
	y := h.Mul(p)
	for i := range y.Data {
		y.Data[i] += channel.CN(rng, sigma2)
	}
	est := y.Mul(p.H())
	return est.Scale(complex(1/float64(np), 0))
}
