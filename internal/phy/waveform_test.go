package phy

import (
	"testing"

	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
)

func waveformCfg(det detector.Detector, snr float64, seed uint64) WaveformConfig {
	return WaveformConfig{
		Users:         4,
		APAntennas:    4,
		Constellation: constellation.MustNew(16),
		DataSymbols:   6,
		SNRdB:         snr,
		Taps:          4,
		Seed:          seed,
		Detector:      det,
	}
}

func TestWaveformHighSNRErrorFree(t *testing.T) {
	cons := constellation.MustNew(16)
	res, err := RunWaveform(waveformCfg(core.New(cons, core.Options{NPE: 32}), 38, 701))
	if err != nil {
		t.Fatal(err)
	}
	if res.SymbolErrors != 0 {
		t.Fatalf("38 dB waveform chain: %d/%d symbol errors", res.SymbolErrors, res.Symbols)
	}
	if res.Symbols != 4*6*48 {
		t.Fatalf("symbol count %d", res.Symbols)
	}
	// The preamble estimate must be tight at high SNR.
	if res.ChannelErrVar > 1e-3 {
		t.Fatalf("channel estimation error %v too large", res.ChannelErrVar)
	}
}

func TestWaveformEstimationErrorScalesWithSNR(t *testing.T) {
	cons := constellation.MustNew(16)
	hi, err := RunWaveform(waveformCfg(detector.NewMMSE(cons), 30, 702))
	if err != nil {
		t.Fatal(err)
	}
	lo, err := RunWaveform(waveformCfg(detector.NewMMSE(cons), 10, 702))
	if err != nil {
		t.Fatal(err)
	}
	if lo.ChannelErrVar <= hi.ChannelErrVar {
		t.Fatalf("estimation error should grow with noise: %v vs %v", lo.ChannelErrVar, hi.ChannelErrVar)
	}
}

func TestWaveformDetectorOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// On the full waveform chain (with real channel estimation) FlexCore
	// must still beat MMSE at a moderate SNR.
	cons := constellation.MustNew(16)
	fc, err := RunWaveform(waveformCfg(core.New(cons, core.Options{NPE: 32}), 15, 703))
	if err != nil {
		t.Fatal(err)
	}
	mm, err := RunWaveform(waveformCfg(detector.NewMMSE(cons), 15, 703))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("waveform SER: FlexCore=%.4f MMSE=%.4f (est err %v)", fc.SER, mm.SER, fc.ChannelErrVar)
	if fc.SER >= mm.SER {
		t.Fatalf("FlexCore (%.4f) not better than MMSE (%.4f) on the waveform chain", fc.SER, mm.SER)
	}
}

func TestWaveformValidation(t *testing.T) {
	cons := constellation.MustNew(16)
	cfg := waveformCfg(detector.NewMMSE(cons), 20, 1)
	cfg.Taps = 17 // longer than the cyclic prefix
	if _, err := RunWaveform(cfg); err == nil {
		t.Fatal("taps beyond CP accepted")
	}
	cfg = waveformCfg(nil, 20, 1)
	if _, err := RunWaveform(cfg); err == nil {
		t.Fatal("nil detector accepted")
	}
	cfg = waveformCfg(detector.NewMMSE(cons), 20, 1)
	cfg.Users = 5 // more users than antennas
	if _, err := RunWaveform(cfg); err == nil {
		t.Fatal("users > antennas accepted")
	}
}
