package phy

import (
	"math"
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/coding"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
)

func TestPilotMatrixOrthogonal(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {8, 16}, {12, 12}} {
		p := pilotMatrix(dims[0], dims[1])
		g := p.Mul(p.H())
		want := cmatrix.Identity(dims[0]).Scale(complex(float64(dims[1]), 0))
		if !g.EqualApprox(want, 1e-9) {
			t.Fatalf("%v: P·Pᴴ != Np·I", dims)
		}
	}
}

func TestEstimateLSErrorVariance(t *testing.T) {
	rng := channel.NewRNG(501)
	const nt, sigma2 = 8, 0.2
	for _, np := range []int{8, 32} {
		var errPow float64
		var n int
		for trial := 0; trial < 200; trial++ {
			h := channel.Rayleigh(rng, nt, nt)
			est := EstimateLS(rng, h, sigma2, np)
			diff := est.Sub(h)
			f := diff.FrobeniusNorm()
			errPow += f * f
			n += nt * nt
		}
		got := errPow / float64(n)
		want := sigma2 / float64(np)
		if math.Abs(got-want) > 0.25*want {
			t.Fatalf("np=%d: error variance %v, want ≈ %v", np, got, want)
		}
	}
}

func TestEstimateLSClampsPilotCount(t *testing.T) {
	rng := channel.NewRNG(502)
	h := channel.Rayleigh(rng, 4, 4)
	// Requesting fewer pilots than users silently clamps to Nt so the
	// streams remain separable.
	est := EstimateLS(rng, h, 1e-12, 1)
	if !est.EqualApprox(h, 1e-4) {
		t.Fatal("near-noiseless estimate should match the channel")
	}
}

func TestRunWithPilotEstimation(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	link := LinkConfig{
		Users:         4,
		APAntennas:    4,
		Constellation: constellation.MustNew(16),
		CodeRate:      coding.Rate12,
		Subcarriers:   8,
		OFDMSymbols:   8,
	}
	run := func(pilots int) Result {
		res, err := Run(SimConfig{
			Link: link, SNRdB: 12, Packets: 80, Seed: 902,
			Detector:     core.New(link.Constellation, core.Options{NPE: 32}),
			PilotSymbols: pilots,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	genie := run(0)
	few := run(4)
	many := run(64)
	t.Logf("PER: genie %.3f, 4 pilots %.3f, 64 pilots %.3f", genie.PER, few.PER, many.PER)
	if few.PER <= genie.PER {
		t.Fatalf("pilot estimation (%.3f) should degrade vs genie CSI (%.3f)", few.PER, genie.PER)
	}
	if many.PER > few.PER {
		t.Fatalf("more pilots (%.3f) should not be worse than fewer (%.3f)", many.PER, few.PER)
	}
}
