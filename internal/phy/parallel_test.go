package phy

import (
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/core"
	"flexcore/internal/detector"
)

// runAt runs the same simulation with a given worker count; everything
// else is fixed so results can be compared bit for bit.
func runAt(t *testing.T, workers int, cfg SimConfig) Result {
	t.Helper()
	cfg.Workers = workers
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res
}

func TestRunParallelBitIdentical(t *testing.T) {
	// The determinism contract: for a fixed seed, Result is the same for
	// every worker count — PER, BER, bit errors, active-PE average, all
	// of it. Workers beyond GOMAXPROCS still exercise the merge logic.
	link := smallLink()
	cfg := SimConfig{
		Link:    link,
		SNRdB:   8,
		Packets: 24,
		Seed:    601,
		DetectorFactory: func() detector.Detector {
			return core.New(link.Constellation, core.Options{NPE: 16, Threshold: 0.95})
		},
	}
	serial := runAt(t, 1, cfg)
	if serial.UserPackets == 0 {
		t.Fatal("empty run")
	}
	for _, w := range []int{2, 8} {
		if got := runAt(t, w, cfg); got != serial {
			t.Fatalf("workers=%d diverged:\n  %+v\nvs\n  %+v", w, got, serial)
		}
	}
}

func TestRunParallelEarlyStopBitIdentical(t *testing.T) {
	// MaxPacketErrors must stop at exactly the same packet regardless of
	// worker count: outcomes computed speculatively past the serial stop
	// point are discarded by the in-order merge.
	link := smallLink()
	cfg := SimConfig{
		Link:    link,
		SNRdB:   -15,
		Packets: 1000,
		Seed:    602,
		DetectorFactory: func() detector.Detector {
			return detector.NewMMSE(link.Constellation)
		},
		MaxPacketErrors: 10,
	}
	serial := runAt(t, 1, cfg)
	if serial.UserPackets >= 1000*link.Users {
		t.Fatal("early stop did not trigger")
	}
	for _, w := range []int{3, 8} {
		if got := runAt(t, w, cfg); got != serial {
			t.Fatalf("workers=%d early-stop diverged:\n  %+v\nvs\n  %+v", w, got, serial)
		}
	}
}

func TestRunParallelSoftBitIdentical(t *testing.T) {
	link := smallLink()
	cfg := SimConfig{
		Link:    link,
		SNRdB:   6,
		Packets: 12,
		Seed:    603,
		Soft:    true,
		DetectorFactory: func() detector.Detector {
			return core.New(link.Constellation, core.Options{NPE: 16})
		},
	}
	serial := runAt(t, 1, cfg)
	if got := runAt(t, 4, cfg); got != serial {
		t.Fatalf("soft workers=4 diverged:\n  %+v\nvs\n  %+v", got, serial)
	}
}

func TestRunWorkersRequireFactory(t *testing.T) {
	link := smallLink()
	_, err := Run(SimConfig{
		Link:     link,
		SNRdB:    10,
		Packets:  4,
		Seed:     604,
		Workers:  4,
		Detector: detector.NewMMSE(link.Constellation),
	})
	if err == nil {
		t.Fatal("Workers > 1 without a DetectorFactory accepted")
	}
}

func TestRunFactoryServesSerialPath(t *testing.T) {
	// A factory alone (Workers unset → all cores, possibly 1) must give
	// the same result as the classic single-Detector configuration.
	link := smallLink()
	base := SimConfig{Link: link, SNRdB: 8, Packets: 8, Seed: 605}

	classic := base
	classic.Detector = detector.NewSIC(link.Constellation)
	a, err := Run(classic)
	if err != nil {
		t.Fatal(err)
	}

	viaFactory := base
	viaFactory.DetectorFactory = func() detector.Detector {
		return detector.NewSIC(link.Constellation)
	}
	b, err := Run(viaFactory)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("factory path diverged from Detector path:\n  %+v\nvs\n  %+v", b, a)
	}
}

func TestSplitSeedStreamsAreDistinct(t *testing.T) {
	// Neighbouring packet streams must decorrelate even for tiny seeds.
	seen := map[uint64]bool{}
	for stream := uint64(0); stream < 64; stream++ {
		s := channel.SplitSeed(1, stream)
		if seen[s] {
			t.Fatalf("stream %d collides", stream)
		}
		seen[s] = true
	}
	if channel.SplitSeed(1, 0) == channel.SplitSeed(2, 0) {
		t.Fatal("seeds 1 and 2 collide on stream 0")
	}
}

func TestRunParallelEarlyStopFlexCoreBitIdentical(t *testing.T) {
	// The full determinism matrix for the paper's own detector: a
	// FlexCore factory (with its internal path-level worker pool) under
	// MaxPacketErrors early stop must be byte-identical for every
	// simulation worker count — the two parallelism layers compose
	// without breaking the in-order merge.
	link := smallLink()
	cfg := SimConfig{
		Link:    link,
		SNRdB:   -12,
		Packets: 400,
		Seed:    606,
		DetectorFactory: func() detector.Detector {
			return core.New(link.Constellation, core.Options{NPE: 16, Workers: 2})
		},
		MaxPacketErrors: 6,
	}
	serial := runAt(t, 1, cfg)
	if serial.UserPackets >= 400*link.Users {
		t.Fatal("early stop did not trigger")
	}
	if serial.PacketErrors < 6 {
		t.Fatalf("stopped with only %d packet errors", serial.PacketErrors)
	}
	for _, w := range []int{2, 8} {
		if got := runAt(t, w, cfg); got != serial {
			t.Fatalf("workers=%d early-stop diverged:\n  %+v\nvs\n  %+v", w, got, serial)
		}
	}
}
