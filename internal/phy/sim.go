package phy

import (
	"fmt"

	"flexcore/internal/channel"
	"flexcore/internal/coding"
	"flexcore/internal/detector"
	"flexcore/internal/ofdm"
)

// ActivePathReporter is implemented by detectors (a-FlexCore) that
// activate a channel-dependent subset of their processing elements.
type ActivePathReporter interface {
	ActivePaths() int
}

// SoftDetector is implemented by detectors that can emit per-bit LLRs
// alongside hard decisions (FlexCore's list-sphere soft output — the
// paper's §7 extension). LLRs are positive when bit 0 is favoured.
type SoftDetector interface {
	detector.Detector
	DetectSoft(y []complex128, sigma2 float64) (best []int, llrs [][]float64)
}

// SimConfig drives one link-level measurement.
type SimConfig struct {
	Link     LinkConfig
	SNRdB    float64
	Packets  int
	Seed     uint64
	Detector detector.Detector
	// Channels defaults to a fresh TDLProvider over the link geometry.
	Channels ChannelProvider
	// MaxPacketErrors stops the run early once this many user-packet
	// errors are observed (0 = run all packets) — standard Monte-Carlo
	// early termination for PER estimation.
	MaxPacketErrors int
	// Soft enables soft-decision decoding: the detector must implement
	// SoftDetector, and the receive chain feeds its LLRs to a soft
	// Viterbi decoder instead of hard decisions.
	Soft bool
	// EstErrorVar adds synthetic channel-estimation error: the detector
	// is prepared on Ĥ = H + E with i.i.d. CN(0, EstErrorVar·σ²) entries
	// (pilot-limited estimation noise scales with the channel noise),
	// while transmissions still traverse the true H. The paper's §3.1
	// notes that reliable channel estimates are required for both the
	// QR decomposition and FlexCore's path selection; this knob measures
	// the sensitivity. 0 disables.
	EstErrorVar float64
	// PilotSymbols enables explicit least-squares channel estimation
	// from that many pilot OFDM symbols per packet and subcarrier (see
	// EstimateLS); it takes precedence over EstErrorVar. 0 = genie CSI.
	PilotSymbols int
}

// Result summarises a link-level run.
type Result struct {
	UserPackets  int
	PacketErrors int
	PER          float64
	PayloadBits  int64
	BitErrors    int64
	BER          float64
	// ThroughputBps is the paper's network-throughput metric for the full
	// 48-subcarrier 802.11 symbol: PHY rate × (1 − PER).
	ThroughputBps float64
	// AvgActivePEs is the mean per-channel active processing-element
	// count (meaningful for a-FlexCore; equals the fixed path count
	// otherwise, 0 if the detector does not report it).
	AvgActivePEs float64
}

// Run simulates Packets MIMO-OFDM packets through the full chain and
// returns PER, BER and throughput.
func Run(cfg SimConfig) (Result, error) {
	if err := cfg.Link.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Packets < 1 {
		return Result{}, fmt.Errorf("phy: need at least one packet")
	}
	if cfg.Detector == nil {
		return Result{}, fmt.Errorf("phy: detector required")
	}
	link := cfg.Link
	if cfg.Channels == nil {
		sc := make([]int, link.Subcarriers)
		idx := ofdm.DataSubcarrierIndices()
		for i := range sc {
			sc[i] = idx[i*len(idx)/link.Subcarriers]
		}
		cfg.Channels = &TDLProvider{
			Seed:        cfg.Seed ^ 0x5bf03635,
			Users:       link.Users,
			APAntennas:  link.APAntennas,
			Subcarriers: sc,
			Config:      channel.DefaultIndoorTDL,
		}
	}
	il, err := coding.NewInterleaver(link.ncbps(), link.Constellation.BitsPerSymbol())
	if err != nil {
		return Result{}, err
	}
	sigma2 := channel.Sigma2FromSNRdB(cfg.SNRdB, 1)
	rng := channel.NewRNG(cfg.Seed)

	var soft SoftDetector
	if cfg.Soft {
		var ok bool
		soft, ok = cfg.Detector.(SoftDetector)
		if !ok {
			return Result{}, fmt.Errorf("phy: detector %s cannot produce soft outputs", cfg.Detector.Name())
		}
	}

	var res Result
	var activeSum float64
	var activeN int
	rx := make([][][]int, link.Users) // [user][ofdmSym][subcarrier]
	var rxL [][][]float64             // [user][ofdmSym][ncbps] when soft
	for u := range rx {
		rx[u] = make([][]int, link.OFDMSymbols)
		for s := range rx[u] {
			rx[u][s] = make([]int, link.Subcarriers)
		}
	}
	if cfg.Soft {
		rxL = make([][][]float64, link.Users)
		for u := range rxL {
			rxL[u] = make([][]float64, link.OFDMSymbols)
			for s := range rxL[u] {
				rxL[u][s] = make([]float64, link.ncbps())
			}
		}
	}
	bps := link.Constellation.BitsPerSymbol()
	x := make([]complex128, link.Users)

	for pkt := 0; pkt < cfg.Packets; pkt++ {
		hs := cfg.Channels.Packet(pkt)
		if len(hs) != link.Subcarriers {
			return Result{}, fmt.Errorf("phy: provider returned %d subcarriers, want %d", len(hs), link.Subcarriers)
		}
		tx := make([]txPacket, link.Users)
		for u := range tx {
			tx[u] = link.buildTxPacket(rng, il)
		}
		for k := 0; k < link.Subcarriers; k++ {
			prepH := hs[k]
			switch {
			case cfg.PilotSymbols > 0:
				prepH = EstimateLS(rng, prepH, sigma2, cfg.PilotSymbols)
			case cfg.EstErrorVar > 0:
				est := prepH.Copy()
				for i := range est.Data {
					est.Data[i] += channel.CN(rng, cfg.EstErrorVar*sigma2)
				}
				prepH = est
			}
			if err := cfg.Detector.Prepare(prepH, sigma2); err != nil {
				return Result{}, fmt.Errorf("phy: prepare subcarrier %d: %w", k, err)
			}
			if rep, ok := cfg.Detector.(ActivePathReporter); ok {
				activeSum += float64(rep.ActivePaths())
				activeN++
			}
			for s := 0; s < link.OFDMSymbols; s++ {
				for u := 0; u < link.Users; u++ {
					x[u] = link.Constellation.Point(tx[u].symbols[s][k])
				}
				y := hs[k].MulVec(x)
				channel.AddAWGN(rng, y, sigma2)
				if cfg.Soft {
					got, llrs := soft.DetectSoft(y, sigma2)
					for u := 0; u < link.Users; u++ {
						rx[u][s][k] = got[u]
						copy(rxL[u][s][k*bps:(k+1)*bps], llrs[u])
					}
				} else {
					got := cfg.Detector.Detect(y)
					for u := 0; u < link.Users; u++ {
						rx[u][s][k] = got[u]
					}
				}
			}
		}
		for u := 0; u < link.Users; u++ {
			var ok bool
			var bitErrs int
			var err error
			if cfg.Soft {
				ok, bitErrs, err = link.decodeRxPacketSoft(rxL[u], tx[u], il)
			} else {
				ok, bitErrs, err = link.decodeRxPacket(rx[u], tx[u], il)
			}
			if err != nil {
				return Result{}, err
			}
			res.UserPackets++
			if !ok {
				res.PacketErrors++
			}
			res.BitErrors += int64(bitErrs)
			res.PayloadBits += int64(len(tx[u].payload))
		}
		if cfg.MaxPacketErrors > 0 && res.PacketErrors >= cfg.MaxPacketErrors {
			break
		}
	}
	res.PER = float64(res.PacketErrors) / float64(res.UserPackets)
	res.BER = float64(res.BitErrors) / float64(res.PayloadBits)
	res.ThroughputBps = ofdm.NetworkThroughput(link.Users, link.Constellation.BitsPerSymbol(), link.CodeRate.Value(), res.PER)
	if activeN > 0 {
		res.AvgActivePEs = activeSum / float64(activeN)
	}
	return res, nil
}
