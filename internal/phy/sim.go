package phy

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/coding"
	"flexcore/internal/detector"
	"flexcore/internal/ofdm"
)

// ActivePathReporter is implemented by detectors (a-FlexCore) that
// activate a channel-dependent subset of their processing elements.
type ActivePathReporter interface {
	ActivePaths() int
}

// FramePreparer is implemented by detectors that can prepare a whole
// frame of per-subcarrier channels in one call (FlexCore's channel-rate
// fast path): PrepareAll runs every subcarrier's pre-processing —
// fanning it across the detector's workers and reusing position vectors
// across coherent subcarriers when enabled — and Select activates one
// prepared subcarrier for the per-symbol Detect calls.
type FramePreparer interface {
	PrepareAll(hs []*cmatrix.Matrix, sigma2 float64) error
	Select(k int) error
}

// SoftDetector is implemented by detectors that can emit per-bit LLRs
// alongside hard decisions (FlexCore's list-sphere soft output — the
// paper's §7 extension). LLRs are positive when bit 0 is favoured.
type SoftDetector interface {
	detector.Detector
	DetectSoft(y []complex128, sigma2 float64) (best []int, llrs [][]float64)
}

// SimConfig drives one link-level measurement.
type SimConfig struct {
	Link     LinkConfig
	SNRdB    float64
	Packets  int
	Seed     uint64
	Detector detector.Detector
	// Channels defaults to a fresh TDLProvider over the link geometry.
	// Custom providers must be safe for concurrent Packet calls when
	// Workers > 1 (the built-in providers all are).
	Channels ChannelProvider
	// MaxPacketErrors stops the run early once this many user-packet
	// errors are observed (0 = run all packets) — standard Monte-Carlo
	// early termination for PER estimation. The stop point is determined
	// by accumulating packets strictly in order, so it is identical for
	// every worker count.
	MaxPacketErrors int
	// Soft enables soft-decision decoding: the detector must implement
	// SoftDetector, and the receive chain feeds its LLRs to a soft
	// Viterbi decoder instead of hard decisions.
	Soft bool
	// EstErrorVar adds synthetic channel-estimation error: the detector
	// is prepared on Ĥ = H + E with i.i.d. CN(0, EstErrorVar·σ²) entries
	// (pilot-limited estimation noise scales with the channel noise),
	// while transmissions still traverse the true H. The paper's §3.1
	// notes that reliable channel estimates are required for both the
	// QR decomposition and FlexCore's path selection; this knob measures
	// the sensitivity. 0 disables.
	EstErrorVar float64
	// PilotSymbols enables explicit least-squares channel estimation
	// from that many pilot OFDM symbols per packet and subcarrier (see
	// EstimateLS); it takes precedence over EstErrorVar. 0 = genie CSI.
	PilotSymbols int
	// Workers is the number of packet-level simulation workers
	// (0 = runtime.NumCPU()). Every packet draws its randomness from its
	// own seed-split RNG stream and results are merged in packet order,
	// so the Result is bit-identical for every worker count. Workers > 1
	// requires DetectorFactory.
	Workers int
	// DetectorFactory builds one detector instance per worker (detectors
	// are stateful across Prepare/Detect, so workers cannot share one).
	// Required for Workers > 1; when nil the run is single-worker using
	// Detector. When both are set, Detector serves the 1-worker path and
	// the factory the parallel path. Factory-created detectors are
	// closed by Run if they expose a Close method.
	DetectorFactory func() detector.Detector
}

// Result summarises a link-level run.
type Result struct {
	UserPackets  int
	PacketErrors int
	PER          float64
	PayloadBits  int64
	BitErrors    int64
	BER          float64
	// ThroughputBps is the paper's network-throughput metric for the full
	// 48-subcarrier 802.11 symbol: PHY rate × (1 − PER).
	ThroughputBps float64
	// AvgActivePEs is the mean per-channel active processing-element
	// count (meaningful for a-FlexCore; equals the fixed path count
	// otherwise, 0 if the detector does not report it).
	AvgActivePEs float64
}

// packetStats is the contribution of one simulated packet to a Result.
type packetStats struct {
	userPackets  int
	packetErrors int
	bitErrors    int64
	payloadBits  int64
	activeSum    float64
	activeN      int
}

// accumulator folds packetStats into a Result, strictly in packet order.
type accumulator struct {
	res       Result
	activeSum float64
	activeN   int
}

// add folds one packet in and reports whether the MaxPacketErrors budget
// has been reached (the early-stop decision point of the serial loop).
func (a *accumulator) add(cfg *SimConfig, st packetStats) bool {
	a.res.UserPackets += st.userPackets
	a.res.PacketErrors += st.packetErrors
	a.res.BitErrors += st.bitErrors
	a.res.PayloadBits += st.payloadBits
	a.activeSum += st.activeSum
	a.activeN += st.activeN
	return cfg.MaxPacketErrors > 0 && a.res.PacketErrors >= cfg.MaxPacketErrors
}

// finalize computes the derived rates.
func (a *accumulator) finalize(cfg *SimConfig) Result {
	res := a.res
	res.PER = float64(res.PacketErrors) / float64(res.UserPackets)
	res.BER = float64(res.BitErrors) / float64(res.PayloadBits)
	res.ThroughputBps = ofdm.NetworkThroughput(cfg.Link.Users, cfg.Link.Constellation.BitsPerSymbol(), cfg.Link.CodeRate.Value(), res.PER)
	if a.activeN > 0 {
		res.AvgActivePEs = a.activeSum / float64(a.activeN)
	}
	return res
}

// effectiveWorkers resolves the worker count from the configuration.
func (cfg *SimConfig) effectiveWorkers() (int, error) {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if cfg.DetectorFactory == nil {
		if cfg.Workers > 1 {
			return 0, fmt.Errorf("phy: Workers = %d requires DetectorFactory (detectors are stateful across Prepare/Detect)", cfg.Workers)
		}
		w = 1
	}
	if w > cfg.Packets {
		w = cfg.Packets
	}
	return w, nil
}

// closeDetector releases a factory-created detector's resources (e.g.
// FlexCore's persistent worker pool) if it exposes them.
func closeDetector(d detector.Detector) {
	if c, ok := d.(interface{ Close() }); ok {
		c.Close()
	}
}

// Run simulates Packets MIMO-OFDM packets through the full chain and
// returns PER, BER and throughput. With Workers > 1 (and a
// DetectorFactory) packets are simulated concurrently; every packet
// draws from its own seed-split RNG stream and outcomes are merged in
// packet order, so the Result is bit-identical for every worker count,
// including the MaxPacketErrors early-stop point.
func Run(cfg SimConfig) (Result, error) {
	if err := cfg.Link.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Packets < 1 {
		return Result{}, fmt.Errorf("phy: need at least one packet")
	}
	if cfg.Detector == nil && cfg.DetectorFactory == nil {
		return Result{}, fmt.Errorf("phy: detector required")
	}
	workers, err := cfg.effectiveWorkers()
	if err != nil {
		return Result{}, err
	}
	if cfg.Channels == nil {
		link := cfg.Link
		sc := make([]int, link.Subcarriers)
		idx := ofdm.DataSubcarrierIndices()
		for i := range sc {
			sc[i] = idx[i*len(idx)/link.Subcarriers]
		}
		cfg.Channels = &TDLProvider{
			Seed:        cfg.Seed ^ 0x5bf03635,
			Users:       link.Users,
			APAntennas:  link.APAntennas,
			Subcarriers: sc,
			Config:      channel.DefaultIndoorTDL,
		}
	}
	il, err := coding.NewInterleaver(cfg.Link.ncbps(), cfg.Link.Constellation.BitsPerSymbol())
	if err != nil {
		return Result{}, err
	}
	sigma2 := channel.Sigma2FromSNRdB(cfg.SNRdB, 1)

	if workers == 1 {
		return runSerial(&cfg, il, sigma2)
	}
	return runParallel(&cfg, workers, il, sigma2)
}

// runSerial is the 1-worker path: the same per-packet kernel and
// accumulator as the parallel path, on the calling goroutine.
func runSerial(cfg *SimConfig, il *coding.Interleaver, sigma2 float64) (Result, error) {
	det := cfg.Detector
	owned := false
	if det == nil {
		det = cfg.DetectorFactory()
		owned = true
	}
	if owned {
		defer closeDetector(det)
	}
	w, err := newSimWorker(cfg, il, sigma2, det)
	if err != nil {
		return Result{}, err
	}
	var acc accumulator
	for pkt := 0; pkt < cfg.Packets; pkt++ {
		st, err := w.simPacket(pkt)
		if err != nil {
			return Result{}, err
		}
		if acc.add(cfg, st) {
			break
		}
	}
	return acc.finalize(cfg), nil
}

// runParallel fans packets out over a bounded worker pool. Workers claim
// packet indices from a shared counter and simulate them speculatively;
// the merger consumes outcomes strictly in packet order, so accumulation
// (including float summation order), the MaxPacketErrors early stop and
// error reporting replicate the serial schedule exactly. Packets
// computed beyond the stop point are discarded.
func runParallel(cfg *SimConfig, workers int, il *coding.Interleaver, sigma2 float64) (Result, error) {
	ws := make([]*simWorker, workers)
	dets := make([]detector.Detector, workers)
	for i := range ws {
		det := cfg.DetectorFactory()
		w, err := newSimWorker(cfg, il, sigma2, det)
		if err != nil {
			closeDetector(det)
			for j := 0; j < i; j++ {
				closeDetector(dets[j])
			}
			return Result{}, err
		}
		dets[i] = det
		ws[i] = w
	}
	defer func() {
		for _, det := range dets {
			closeDetector(det)
		}
	}()

	type outcome struct {
		pkt   int
		stats packetStats
		err   error
	}
	results := make(chan outcome, workers)
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *simWorker) {
			defer wg.Done()
			for !stop.Load() {
				pkt := int(next.Add(1)) - 1
				if pkt >= cfg.Packets {
					return
				}
				st, err := w.simPacket(pkt)
				results <- outcome{pkt: pkt, stats: st, err: err}
				if err != nil {
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var acc accumulator
	pending := make(map[int]outcome)
	nextMerge := 0
	done := false
	var firstErr error
	for out := range results {
		pending[out.pkt] = out
		for {
			o, ok := pending[nextMerge]
			if !ok {
				break
			}
			delete(pending, nextMerge)
			nextMerge++
			if done || firstErr != nil {
				continue // beyond the serial run's stop point: discard
			}
			if o.err != nil {
				firstErr = o.err
				stop.Store(true)
				continue
			}
			if acc.add(cfg, o.stats) {
				done = true
				stop.Store(true)
			}
		}
	}
	if firstErr != nil {
		return Result{}, firstErr
	}
	return acc.finalize(cfg), nil
}

// simWorker is the per-worker simulation state: one detector instance
// plus every reusable buffer of the per-packet chain.
type simWorker struct {
	cfg    *SimConfig
	il     *coding.Interleaver
	sigma2 float64
	det    detector.Detector
	batch  detector.BatchDetector
	soft   SoftDetector
	rep    ActivePathReporter
	frame  FramePreparer

	tx  []txPacket
	rx  [][][]int      // [user][ofdmSym][subcarrier]
	rxL [][][]float64  // [user][ofdmSym][ncbps] when soft
	x   []complex128   // transmit vector scratch
	ys  [][]complex128 // one received vector per OFDM symbol (batched)
}

// newSimWorker allocates the worker buffers and validates the detector
// against the configuration.
func newSimWorker(cfg *SimConfig, il *coding.Interleaver, sigma2 float64, det detector.Detector) (*simWorker, error) {
	link := cfg.Link
	w := &simWorker{cfg: cfg, il: il, sigma2: sigma2, det: det}
	if cfg.Soft {
		soft, ok := det.(SoftDetector)
		if !ok {
			return nil, fmt.Errorf("phy: detector %s cannot produce soft outputs", det.Name())
		}
		w.soft = soft
	} else {
		w.batch = detector.Batch(det)
	}
	w.rep, _ = det.(ActivePathReporter)
	w.frame, _ = det.(FramePreparer)
	w.tx = make([]txPacket, link.Users)
	w.rx = make([][][]int, link.Users)
	for u := range w.rx {
		w.rx[u] = make([][]int, link.OFDMSymbols)
		for s := range w.rx[u] {
			w.rx[u][s] = make([]int, link.Subcarriers)
		}
	}
	if cfg.Soft {
		w.rxL = make([][][]float64, link.Users)
		for u := range w.rxL {
			w.rxL[u] = make([][]float64, link.OFDMSymbols)
			for s := range w.rxL[u] {
				w.rxL[u][s] = make([]float64, link.ncbps())
			}
		}
	}
	w.x = make([]complex128, link.Users)
	w.ys = make([][]complex128, link.OFDMSymbols)
	for s := range w.ys {
		w.ys[s] = make([]complex128, link.APAntennas)
	}
	return w, nil
}

// simPacket runs one packet end to end: transmit chains, per-subcarrier
// channel preparation, detection (batched per subcarrier over the OFDM
// symbols) and decoding. All randomness comes from the packet's own
// seed-split RNG stream, so the outcome depends only on (Seed, pkt).
func (w *simWorker) simPacket(pkt int) (packetStats, error) {
	cfg := w.cfg
	link := cfg.Link
	var st packetStats
	rng := channel.NewStreamRNG(cfg.Seed, uint64(pkt))
	hs := cfg.Channels.Packet(pkt)
	if len(hs) != link.Subcarriers {
		return st, fmt.Errorf("phy: provider returned %d subcarriers, want %d", len(hs), link.Subcarriers)
	}
	for u := range w.tx {
		w.tx[u] = link.buildTxPacket(rng, w.il)
	}
	bps := link.Constellation.BitsPerSymbol()
	// Genie-CSI runs prepare the whole frame up front through the
	// detector's channel-rate fast path when it has one. With channel
	// estimation the per-subcarrier estimates must be drawn in loop order
	// (their RNG draws interleave with the AWGN draws), so those runs keep
	// the scalar Prepare path — either way the RNG stream and the
	// detection outcomes are bit-identical to the per-subcarrier loop.
	useFrame := w.frame != nil && cfg.PilotSymbols == 0 && cfg.EstErrorVar == 0 //lint:ignore floatcmp zero is the config's exact "genie CSI" sentinel
	if useFrame {
		if err := w.frame.PrepareAll(hs, w.sigma2); err != nil {
			return st, fmt.Errorf("phy: prepare frame: %w", err)
		}
	}
	for k := 0; k < link.Subcarriers; k++ {
		if useFrame {
			if err := w.frame.Select(k); err != nil {
				return st, fmt.Errorf("phy: select subcarrier %d: %w", k, err)
			}
		} else {
			prepH := hs[k]
			switch {
			case cfg.PilotSymbols > 0:
				prepH = EstimateLS(rng, prepH, w.sigma2, cfg.PilotSymbols)
			case cfg.EstErrorVar > 0:
				est := prepH.Copy()
				for i := range est.Data {
					est.Data[i] += channel.CN(rng, cfg.EstErrorVar*w.sigma2)
				}
				prepH = est
			}
			if err := w.det.Prepare(prepH, w.sigma2); err != nil {
				return st, fmt.Errorf("phy: prepare subcarrier %d: %w", k, err)
			}
		}
		if w.rep != nil {
			st.activeSum += float64(w.rep.ActivePaths())
			st.activeN++
		}
		if cfg.Soft {
			for s := 0; s < link.OFDMSymbols; s++ {
				y := w.received(hs[k], rng, s, k)
				got, llrs := w.soft.DetectSoft(y, w.sigma2)
				for u := 0; u < link.Users; u++ {
					w.rx[u][s][k] = got[u]
					copy(w.rxL[u][s][k*bps:(k+1)*bps], llrs[u])
				}
			}
			continue
		}
		// Hard path: synthesize the whole OFDM-symbol burst for this
		// subcarrier, then detect it in one batch so the detector can
		// amortise its fan-out over the burst.
		for s := 0; s < link.OFDMSymbols; s++ {
			w.received(hs[k], rng, s, k)
		}
		got := w.batch.DetectBatch(w.ys)
		for s := range got {
			for u := 0; u < link.Users; u++ {
				w.rx[u][s][k] = got[s][u]
			}
		}
	}
	for u := 0; u < link.Users; u++ {
		var ok bool
		var bitErrs int
		var err error
		if cfg.Soft {
			ok, bitErrs, err = link.decodeRxPacketSoft(w.rxL[u], w.tx[u], w.il)
		} else {
			ok, bitErrs, err = link.decodeRxPacket(w.rx[u], w.tx[u], w.il)
		}
		if err != nil {
			return st, err
		}
		st.userPackets++
		if !ok {
			st.packetErrors++
		}
		st.bitErrors += int64(bitErrs)
		st.payloadBits += int64(len(w.tx[u].payload))
	}
	return st, nil
}

// received synthesizes the received vector of OFDM symbol s on
// subcarrier k into the worker's ys[s] buffer: modulation, channel, AWGN.
func (w *simWorker) received(h *cmatrix.Matrix, rng *rand.Rand, s, k int) []complex128 {
	link := w.cfg.Link
	for u := 0; u < link.Users; u++ {
		w.x[u] = link.Constellation.Point(w.tx[u].symbols[s][k])
	}
	y := h.MulVecInto(w.x, w.ys[s])
	return channel.AddAWGN(rng, y, w.sigma2)
}
