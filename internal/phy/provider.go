// Package phy is the link-level simulator of the FlexCore reproduction:
// the full 802.11-style uplink chain (CRC → convolutional coding →
// interleaving → QAM mapping → OFDM-MIMO channel → detection →
// deinterleaving → Viterbi → CRC check), packet-error-rate measurement,
// network-throughput computation and the SNR calibration that anchors
// every experiment at the paper's PER_ML operating points.
package phy

import (
	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
)

// ChannelProvider supplies per-packet, per-subcarrier channel matrices.
// The channel is static over one packet, as in the paper's evaluation.
type ChannelProvider interface {
	// Packet returns one channel matrix per simulated subcarrier for
	// packet p. Implementations must be deterministic in p.
	Packet(p int) []*cmatrix.Matrix
}

// TDLProvider draws an independent frequency-selective indoor channel per
// packet (synthetic stand-in for the paper's over-the-air traces).
type TDLProvider struct {
	Seed        uint64
	Users       int
	APAntennas  int
	Subcarriers []int
	Config      channel.TDLConfig
	// APCorrelation applies exponential receive-side correlation (0 = none).
	APCorrelation float64
}

// Packet implements ChannelProvider.
func (p *TDLProvider) Packet(pkt int) []*cmatrix.Matrix {
	rng := channel.NewRNG(p.Seed + uint64(pkt)*0x9e3779b97f4a7c15)
	hs := channel.FreqSelective(rng, p.APAntennas, p.Users, p.Subcarriers, p.Config)
	if p.APCorrelation != 0 { //lint:ignore floatcmp zero is the config's exact "correlation disabled" sentinel
		l, err := cmatrix.Cholesky(channel.ExponentialCorrelation(p.APAntennas, p.APCorrelation))
		if err == nil {
			for i := range hs {
				hs[i] = l.Mul(hs[i])
			}
		}
	}
	return hs
}

// FlatProvider draws one Rayleigh channel per packet, shared by every
// subcarrier (block fading): the whole codeword sees a single channel
// realisation, which reproduces the paper's packet-error behaviour —
// its measured indoor channels with ≤3 dB user-SNR spread put the PER
// anchors at 13.5/21.6 dB, far from the deep-diversity regime a
// many-tap synthetic channel would create.
type FlatProvider struct {
	Seed        uint64
	Users       int
	APAntennas  int
	Subcarriers int
	// APCorrelation applies exponential receive-side correlation — the
	// paper's AP co-locates antennas ≈6 cm apart, so its measured
	// channels are substantially correlated (0 = uncorrelated).
	APCorrelation float64
}

// Packet implements ChannelProvider.
func (p *FlatProvider) Packet(pkt int) []*cmatrix.Matrix {
	rng := channel.NewRNG(p.Seed + uint64(pkt)*0x94d049bb133111eb)
	h, err := channel.CorrelatedRayleigh(rng, p.APAntennas, p.Users, p.APCorrelation)
	if err != nil {
		// |ρ| < 1 keeps the correlation factor positive definite; treat a
		// bad configuration as uncorrelated rather than failing mid-sweep.
		h = channel.Rayleigh(rng, p.APAntennas, p.Users)
	}
	hs := make([]*cmatrix.Matrix, p.Subcarriers)
	for i := range hs {
		hs[i] = h
	}
	return hs
}

// IIDProvider draws an independent flat Rayleigh channel per subcarrier
// and packet — the model behind the paper's Table 1 simulations.
type IIDProvider struct {
	Seed        uint64
	Users       int
	APAntennas  int
	Subcarriers int
}

// Packet implements ChannelProvider.
func (p *IIDProvider) Packet(pkt int) []*cmatrix.Matrix {
	rng := channel.NewRNG(p.Seed + uint64(pkt)*0xbf58476d1ce4e5b9)
	hs := make([]*cmatrix.Matrix, p.Subcarriers)
	for i := range hs {
		hs[i] = channel.Rayleigh(rng, p.APAntennas, p.Users)
	}
	return hs
}

// TraceProvider cycles through a synthesized trace set (drop d serves
// packet d mod Drops) — the reproduction of the paper's trace-driven
// 12×12 evaluation.
type TraceProvider struct {
	Set *channel.TraceSet
}

// Packet implements ChannelProvider.
func (p *TraceProvider) Packet(pkt int) []*cmatrix.Matrix {
	return p.Set.H[pkt%len(p.Set.H)]
}
