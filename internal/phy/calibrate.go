package phy

import (
	"fmt"

	"flexcore/internal/constellation"
	"flexcore/internal/detector"
)

// CalibrationConfig finds the SNR at which the exact ML detector reaches
// a target PER — the paper's definition of its operating points ("the
// examined SNR is such that an ML decoder reaches approximately the
// practical packet error rates of 0.1 and 0.01", §5.1).
type CalibrationConfig struct {
	Link      LinkConfig
	TargetPER float64
	Packets   int // packets per PER evaluation
	Seed      uint64
	Channels  ChannelProvider
	// LoDB and HiDB bracket the search (defaults 0 and 45 dB).
	LoDB, HiDB float64
	// Iterations bounds the bisection steps (default 10).
	Iterations int
	// MLMaxNodes caps the sphere search per vector (0 = exact).
	MLMaxNodes int64
	// NewDetector overrides the detector whose PER curve is bisected
	// (default: the exact ML sphere decoder — the paper's anchor). A
	// fresh instance is created per PER evaluation.
	NewDetector func() detector.Detector
	// Workers is the packet-level parallelism of each PER evaluation
	// (see SimConfig.Workers); the bisection path is identical for every
	// worker count because each evaluation is bit-identical.
	Workers int
}

// CalibrateSNR bisects the (monotone) ML PER-vs-SNR curve and returns the
// SNR in dB at which PER_ML ≈ TargetPER, together with the measured PER
// at that point.
func CalibrateSNR(cfg CalibrationConfig) (snrdB, measuredPER float64, err error) {
	if cfg.TargetPER <= 0 || cfg.TargetPER >= 1 {
		return 0, 0, fmt.Errorf("phy: target PER %v out of (0,1)", cfg.TargetPER)
	}
	if cfg.HiDB == 0 { //lint:ignore floatcmp zero is the config's exact "use the default" sentinel
		cfg.HiDB = 45
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 10
	}
	newDet := cfg.NewDetector
	if newDet == nil {
		newDet = func() detector.Detector {
			ml := detector.NewSphere(cfg.Link.Constellation)
			ml.MaxNodes = cfg.MLMaxNodes
			return ml
		}
	}
	perAt := func(snr float64) (float64, error) {
		res, err := Run(SimConfig{
			Link:            cfg.Link,
			SNRdB:           snr,
			Packets:         cfg.Packets,
			Seed:            cfg.Seed,
			DetectorFactory: newDet,
			Workers:         cfg.Workers,
			Channels:        cfg.Channels,
		})
		if err != nil {
			return 0, err
		}
		return res.PER, nil
	}
	lo, hi := cfg.LoDB, cfg.HiDB
	perLo, err := perAt(lo)
	if err != nil {
		return 0, 0, err
	}
	perHi, err := perAt(hi)
	if err != nil {
		return 0, 0, err
	}
	if perLo < cfg.TargetPER {
		return lo, perLo, nil // already below target at the low end
	}
	if perHi > cfg.TargetPER {
		return hi, perHi, nil // cannot reach target within the bracket
	}
	mid, perMid := lo, perLo
	for i := 0; i < cfg.Iterations; i++ {
		mid = (lo + hi) / 2
		perMid, err = perAt(mid)
		if err != nil {
			return 0, 0, err
		}
		if perMid > cfg.TargetPER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return mid, perMid, nil
}

// MustConstellation is a test/experiment helper resolving a QAM order.
func MustConstellation(m int) *constellation.Constellation {
	return constellation.MustNew(m)
}
