package phy

import (
	"math"
	"testing"

	"flexcore/internal/channel"
	"flexcore/internal/coding"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
)

func TestRunHighSNRIsErrorFree(t *testing.T) {
	link := smallLink()
	res, err := Run(SimConfig{
		Link:     link,
		SNRdB:    40,
		Packets:  10,
		Seed:     311,
		Detector: detector.NewMMSE(link.Constellation),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PER != 0 || res.BitErrors != 0 {
		t.Fatalf("40 dB: PER %v, bit errors %d", res.PER, res.BitErrors)
	}
	if res.UserPackets != 20 {
		t.Fatalf("user packets %d", res.UserPackets)
	}
	if res.ThroughputBps <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestRunLowSNRLosesEverything(t *testing.T) {
	link := smallLink()
	res, err := Run(SimConfig{
		Link:     link,
		SNRdB:    -15,
		Packets:  10,
		Seed:     312,
		Detector: detector.NewMMSE(link.Constellation),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PER < 0.9 {
		t.Fatalf("-15 dB: PER only %v", res.PER)
	}
}

func TestRunDeterministic(t *testing.T) {
	link := smallLink()
	run := func() Result {
		res, err := Run(SimConfig{
			Link:     link,
			SNRdB:    8,
			Packets:  8,
			Seed:     313,
			Detector: detector.NewSIC(link.Constellation),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestRunDetectorOrderingPER(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// ML must not lose to MMSE in PER on the same channels and noise.
	link := LinkConfig{
		Users:         4,
		APAntennas:    4,
		Constellation: constellation.MustNew(4),
		CodeRate:      coding.Rate12,
		Subcarriers:   8,
		OFDMSymbols:   8,
	}
	perOf := func(d detector.Detector) float64 {
		res, err := Run(SimConfig{Link: link, SNRdB: 7, Packets: 60, Seed: 314, Detector: d})
		if err != nil {
			t.Fatal(err)
		}
		return res.PER
	}
	perML := perOf(detector.NewSphere(link.Constellation))
	perFC := perOf(core.New(link.Constellation, core.Options{NPE: 16}))
	perMMSE := perOf(detector.NewMMSE(link.Constellation))
	t.Logf("PER: ML=%.3f FlexCore(16)=%.3f MMSE=%.3f", perML, perFC, perMMSE)
	if perML > perMMSE {
		t.Fatalf("ML PER %.3f worse than MMSE %.3f", perML, perMMSE)
	}
	if perFC > perMMSE {
		t.Fatalf("FlexCore PER %.3f worse than MMSE %.3f", perFC, perMMSE)
	}
}

func TestRunReportsActivePEs(t *testing.T) {
	link := smallLink()
	fc := core.New(link.Constellation, core.Options{NPE: 16, Threshold: 0.95})
	res, err := Run(SimConfig{Link: link, SNRdB: 30, Packets: 4, Seed: 315, Detector: fc})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgActivePEs <= 0 || res.AvgActivePEs > 16 {
		t.Fatalf("active PEs %v", res.AvgActivePEs)
	}
	// At 30 dB on a 2×2 the channel is easy: nearly one active path.
	if res.AvgActivePEs > 6 {
		t.Fatalf("active PEs %v too high at 30 dB", res.AvgActivePEs)
	}
}

func TestRunEarlyStop(t *testing.T) {
	link := smallLink()
	res, err := Run(SimConfig{
		Link:            link,
		SNRdB:           -15,
		Packets:         1000,
		Seed:            316,
		Detector:        detector.NewMMSE(link.Constellation),
		MaxPacketErrors: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UserPackets >= 1000*link.Users {
		t.Fatal("early stop did not trigger")
	}
	if res.PacketErrors < 10 {
		t.Fatalf("stopped before reaching the error budget: %d", res.PacketErrors)
	}
}

func TestRunValidation(t *testing.T) {
	link := smallLink()
	if _, err := Run(SimConfig{Link: link, Packets: 0, Detector: detector.NewMMSE(link.Constellation)}); err == nil {
		t.Fatal("zero packets accepted")
	}
	if _, err := Run(SimConfig{Link: link, Packets: 1}); err == nil {
		t.Fatal("nil detector accepted")
	}
	bad := link
	bad.Subcarriers = 7
	if _, err := Run(SimConfig{Link: bad, Packets: 1, Detector: detector.NewMMSE(link.Constellation)}); err == nil {
		t.Fatal("invalid link accepted")
	}
}

func TestProvidersDeterministicAndDistinct(t *testing.T) {
	tdl := &TDLProvider{Seed: 317, Users: 2, APAntennas: 2, Subcarriers: []int{1, 5, 9}, Config: channel.DefaultIndoorTDL}
	a := tdl.Packet(3)
	b := tdl.Packet(3)
	c := tdl.Packet(4)
	for i := range a {
		if !a[i].EqualApprox(b[i], 0) {
			t.Fatal("TDL provider not deterministic")
		}
	}
	if a[0].EqualApprox(c[0], 1e-9) {
		t.Fatal("TDL provider repeats across packets")
	}

	iid := &IIDProvider{Seed: 318, Users: 2, APAntennas: 3, Subcarriers: 4}
	hs := iid.Packet(0)
	if len(hs) != 4 || hs[0].Rows != 3 || hs[0].Cols != 2 {
		t.Fatal("IID provider shape")
	}
	if hs[0].EqualApprox(hs[1], 1e-9) {
		t.Fatal("IID subcarriers should be independent")
	}

	ts, err := channel.Synthesize(channel.TraceConfig{
		Seed: 319, Users: 2, APAntennas: 2, Subcarriers: []int{0, 4}, Drops: 3, SNRSpreadDB: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tp := &TraceProvider{Set: ts}
	if got := tp.Packet(5); !got[0].EqualApprox(ts.H[5%3][0], 0) {
		t.Fatal("trace provider cycling wrong")
	}
}

func TestCalibrateSNRFindsTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	link := smallLink()
	snr, per, err := CalibrateSNR(CalibrationConfig{
		Link:       link,
		TargetPER:  0.3,
		Packets:    40,
		Seed:       320,
		Iterations: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("calibrated SNR %.2f dB → PER %.3f", snr, per)
	if snr <= 0 || snr >= 45 {
		t.Fatalf("calibrated SNR %v out of range", snr)
	}
	if math.Abs(per-0.3) > 0.2 {
		t.Fatalf("calibrated PER %v too far from 0.3", per)
	}
}

func TestCalibrateSNRValidation(t *testing.T) {
	link := smallLink()
	if _, _, err := CalibrateSNR(CalibrationConfig{Link: link, TargetPER: 0}); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, _, err := CalibrateSNR(CalibrationConfig{Link: link, TargetPER: 1.5}); err == nil {
		t.Fatal("target > 1 accepted")
	}
}

func TestRunSoftBeatsHard(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// Soft-decision decoding with FlexCore's list-sphere LLRs must not
	// lose to hard decisions at an operating point with real errors, and
	// typically wins (the paper's §7 motivation).
	link := LinkConfig{
		Users:         4,
		APAntennas:    4,
		Constellation: constellation.MustNew(16),
		CodeRate:      coding.Rate12,
		Subcarriers:   8,
		OFDMSymbols:   8,
	}
	fc := core.New(link.Constellation, core.Options{NPE: 32})
	run := func(soft bool) Result {
		res, err := Run(SimConfig{
			Link: link, SNRdB: 11, Packets: 120, Seed: 900,
			Detector: fc, Soft: soft,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hard := run(false)
	soft := run(true)
	t.Logf("hard PER %.3f BER %.2e | soft PER %.3f BER %.2e", hard.PER, hard.BER, soft.PER, soft.BER)
	if soft.PER >= hard.PER {
		t.Fatalf("soft decoding (PER %.3f) not better than hard (%.3f)", soft.PER, hard.PER)
	}
}

func TestRunSoftRequiresSoftDetector(t *testing.T) {
	link := smallLink()
	_, err := Run(SimConfig{
		Link: link, SNRdB: 10, Packets: 1, Seed: 1,
		Detector: detector.NewMMSE(link.Constellation), Soft: true,
	})
	if err == nil {
		t.Fatal("soft run with a hard-only detector accepted")
	}
}

func TestRunChannelEstimationError(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	link := LinkConfig{
		Users:         4,
		APAntennas:    4,
		Constellation: constellation.MustNew(16),
		CodeRate:      coding.Rate12,
		Subcarriers:   8,
		OFDMSymbols:   8,
	}
	run := func(estVar float64) Result {
		res, err := Run(SimConfig{
			Link: link, SNRdB: 12, Packets: 80, Seed: 901,
			Detector:    core.New(link.Constellation, core.Options{NPE: 32}),
			EstErrorVar: estVar,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(0)
	mild := run(0.5)
	heavy := run(8)
	t.Logf("PER: clean %.3f, mild est error %.3f, heavy %.3f", clean.PER, mild.PER, heavy.PER)
	if heavy.PER <= clean.PER {
		t.Fatalf("heavy estimation error (%.3f) did not degrade PER (clean %.3f)", heavy.PER, clean.PER)
	}
	if mild.PER > heavy.PER {
		t.Fatalf("PER not monotone in estimation error: %.3f vs %.3f", mild.PER, heavy.PER)
	}
}
