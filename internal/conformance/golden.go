package conformance

import (
	"encoding/json"
	"fmt"
	"os"

	"flexcore/internal/cmatrix"
	"flexcore/internal/coding"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/phy"
)

// GoldenSuite is the on-disk golden corpus: a set of fully-determined
// detection cases with every detector's expected output, plus short
// link-level simulation runs with their expected packet/bit-error
// counts. Any refactor that changes numerical behaviour anywhere in the
// stack — RNG streams, channel synthesis, QR pivoting, slicing,
// path selection, Viterbi decoding — shifts at least one pinned value
// and fails the golden test with a readable diff.
//
// Regenerate with `go generate ./internal/conformance` (which runs
// cmd/goldengen) after an intentional behaviour change, and review the
// resulting JSON diff like any other code change.
type GoldenSuite struct {
	// Comment documents the regeneration command inside the fixture.
	Comment string       `json:"_comment"`
	Cases   []GoldenCase `json:"cases"`
	Sims    []GoldenSim  `json:"sims"`
}

// GoldenCase pins per-vector detector outputs on one seeded channel.
// H and Y are stored (as [re, im] pairs) even though they are
// regenerable from the seed: when inputs drift the diff then says so
// directly instead of blaming every detector.
type GoldenCase struct {
	Name    string  `json:"name"`
	Seed    uint64  `json:"seed"`
	M       int     `json:"m"`
	Nt      int     `json:"nt"`
	Nr      int     `json:"nr"`
	SNRdB   float64 `json:"snr_db"`
	Vectors int     `json:"vectors"`

	H [][2]float64   `json:"h"` // row-major Nr×Nt
	Y [][][2]float64 `json:"y"` // [vector][antenna]

	// OracleDist is the exhaustive-ML minimum distance per vector
	// (omitted when |Q|^Nt exceeds the oracle budget).
	OracleDist []float64 `json:"oracle_dist,omitempty"`
	// Detectors holds each detector's expected symbol indices per
	// vector, keyed by detector name, in a stable order.
	Detectors []GoldenDetector `json:"detectors"`
}

// GoldenDetector is one detector's expected output on a GoldenCase.
type GoldenDetector struct {
	Name    string  `json:"name"`
	Indices [][]int `json:"indices"` // [vector][stream]
}

// GoldenSim pins the outcome of a short deterministic link-level run:
// exact packet and bit-error counts (PER/BER are derived and therefore
// implied). MaxPacketErrors > 0 additionally pins the Monte-Carlo
// early-stop point.
type GoldenSim struct {
	Name            string  `json:"name"`
	Detector        string  `json:"detector"`
	Seed            uint64  `json:"seed"`
	SNRdB           float64 `json:"snr_db"`
	Packets         int     `json:"packets"`
	MaxPacketErrors int     `json:"max_packet_errors,omitempty"`

	UserPackets  int   `json:"user_packets"`
	PacketErrors int   `json:"packet_errors"`
	BitErrors    int64 `json:"bit_errors"`
	PayloadBits  int64 `json:"payload_bits"`
}

// goldenCaseParams are the seeded scenarios the corpus pins. The spread
// covers both constellations of the acceptance criteria plus a 64-QAM
// point, and includes a geometry with more antennas than streams.
var goldenCaseParams = []struct {
	name   string
	seed   uint64
	m      int
	nt, nr int
	snrdB  float64
}{
	{"qpsk-2x2", 2001, 4, 2, 2, 8},
	{"qpsk-3x4", 2002, 4, 3, 4, 10},
	{"16qam-2x2", 2003, 16, 2, 2, 14},
	{"16qam-3x3", 2004, 16, 3, 3, 16},
	{"64qam-2x2", 2005, 64, 2, 2, 20},
}

const goldenVectorsPerCase = 4

// goldenDetectors builds the detector set pinned per case, in stable
// order. Names must stay unique — they key the fixture.
func goldenDetectors(cons *constellation.Constellation) []detector.Detector {
	return []detector.Detector{
		detector.NewZF(cons),
		detector.NewMMSE(cons),
		detector.NewSIC(cons),
		detector.NewSphere(cons),
		detector.NewFCSD(cons, 1),
		detector.NewKBest(cons, 4),
		detector.NewTrellis(cons),
		detector.NewLRZF(cons),
		core.New(cons, core.Options{NPE: 8}),
		core.New(cons, core.Options{NPE: 16, Threshold: 0.95}),
		core.New(cons, core.Options{NPE: 16, ExactSlicer: true}),
	}
}

// goldenLink is the fast 2×2 QPSK geometry the pinned simulation runs
// use (mirrors the phy package's unit-test link).
func goldenLink() phy.LinkConfig {
	return phy.LinkConfig{
		Users:         2,
		APAntennas:    2,
		Constellation: constellation.MustNew(4),
		CodeRate:      coding.Rate12,
		Subcarriers:   8,
		OFDMSymbols:   8,
	}
}

// goldenSimDetector maps a pinned sim's detector name to a fresh
// instance (the inverse of Detector.Name for the names the corpus uses).
func goldenSimDetector(name string) (detector.Detector, error) {
	cons := goldenLink().Constellation
	switch name {
	case "MMSE":
		return detector.NewMMSE(cons), nil
	case "SIC":
		return detector.NewSIC(cons), nil
	case "ML":
		return detector.NewSphere(cons), nil
	case "FlexCore(NPE=16)":
		return core.New(cons, core.Options{NPE: 16}), nil
	default:
		return nil, fmt.Errorf("conformance: unknown golden sim detector %q", name)
	}
}

// goldenSimParams are the pinned link-level runs: one ordinary short
// run per detector plus one run exercising the MaxPacketErrors
// early-stop path.
var goldenSimParams = []struct {
	name            string
	det             string
	seed            uint64
	snrdB           float64
	packets         int
	maxPacketErrors int
}{
	{"per-mmse", "MMSE", 3001, 8, 12, 0},
	{"per-sic", "SIC", 3002, 8, 12, 0},
	{"per-ml", "ML", 3003, 8, 12, 0},
	{"per-flexcore16", "FlexCore(NPE=16)", 3004, 8, 12, 0},
	{"per-earlystop-mmse", "MMSE", 3005, -15, 400, 5},
}

// GenerateGoldenSuite regenerates the entire corpus from its seeds.
// It is the single source of truth shared by cmd/goldengen (which
// writes the fixture) and the golden test (which diffs a fresh
// generation against the fixture).
func GenerateGoldenSuite() (*GoldenSuite, error) {
	suite := &GoldenSuite{
		Comment: "Generated by cmd/goldengen (go generate ./internal/conformance). " +
			"Do not edit by hand; regenerate after intentional behaviour changes and review the diff.",
	}
	for _, p := range goldenCaseParams {
		c := NewCase(p.seed, p.m, p.nt, p.nr, p.snrdB, goldenVectorsPerCase)
		gc := GoldenCase{
			Name: p.name, Seed: p.seed, M: p.m, Nt: p.nt, Nr: p.nr,
			SNRdB: p.snrdB, Vectors: goldenVectorsPerCase,
			H: packMatrix(c.H), Y: packVectors(c.Y),
		}
		if c.Hypotheses() <= MaxOracleHypotheses {
			gc.OracleDist = make([]float64, len(c.Y))
			for v := range c.Y {
				res, err := ExhaustiveML(c.H, c.Y[v], c.Cons)
				if err != nil {
					return nil, fmt.Errorf("case %s: %w", p.name, err)
				}
				gc.OracleDist[v] = res.Dist
			}
		}
		for _, det := range goldenDetectors(c.Cons) {
			if err := det.Prepare(c.H, c.Sigma2); err != nil {
				return nil, fmt.Errorf("case %s: %s: %w", p.name, det.Name(), err)
			}
			gd := GoldenDetector{Name: det.Name(), Indices: make([][]int, len(c.Y))}
			for v := range c.Y {
				gd.Indices[v] = append([]int(nil), det.Detect(c.Y[v])...)
			}
			gc.Detectors = append(gc.Detectors, gd)
			if fc, ok := det.(*core.FlexCore); ok {
				fc.Close()
			}
		}
		suite.Cases = append(suite.Cases, gc)
	}
	for _, p := range goldenSimParams {
		det, err := goldenSimDetector(p.det)
		if err != nil {
			return nil, err
		}
		res, err := phy.Run(phy.SimConfig{
			Link:            goldenLink(),
			SNRdB:           p.snrdB,
			Packets:         p.packets,
			Seed:            p.seed,
			Detector:        det,
			MaxPacketErrors: p.maxPacketErrors,
		})
		if err != nil {
			return nil, fmt.Errorf("sim %s: %w", p.name, err)
		}
		suite.Sims = append(suite.Sims, GoldenSim{
			Name: p.name, Detector: p.det, Seed: p.seed, SNRdB: p.snrdB,
			Packets: p.packets, MaxPacketErrors: p.maxPacketErrors,
			UserPackets: res.UserPackets, PacketErrors: res.PacketErrors,
			BitErrors: res.BitErrors, PayloadBits: res.PayloadBits,
		})
	}
	return suite, nil
}

// LoadGoldenSuite reads a fixture written by cmd/goldengen.
func LoadGoldenSuite(path string) (*GoldenSuite, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var suite GoldenSuite
	if err := json.Unmarshal(raw, &suite); err != nil {
		return nil, fmt.Errorf("conformance: parse %s: %w", path, err)
	}
	return &suite, nil
}

// WriteGoldenSuite serialises the suite with stable, reviewable
// formatting.
func WriteGoldenSuite(path string, suite *GoldenSuite) error {
	raw, err := json.MarshalIndent(suite, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// DiffGoldenSuites compares a freshly-generated suite against the
// stored fixture and returns one human-readable line per divergence —
// the "fails loudly with a readable diff" contract. An empty slice
// means bit-for-bit agreement.
func DiffGoldenSuites(want, got *GoldenSuite) []string {
	var diffs []string
	addf := func(format string, args ...any) { diffs = append(diffs, fmt.Sprintf(format, args...)) }

	wantCases := map[string]*GoldenCase{}
	for i := range want.Cases {
		wantCases[want.Cases[i].Name] = &want.Cases[i]
	}
	gotCases := map[string]*GoldenCase{}
	for i := range got.Cases {
		gotCases[got.Cases[i].Name] = &got.Cases[i]
	}
	for i := range want.Cases {
		w := &want.Cases[i]
		g, ok := gotCases[w.Name]
		if !ok {
			addf("case %s: missing from regeneration", w.Name)
			continue
		}
		diffCase(w, g, addf)
	}
	for i := range got.Cases {
		if _, ok := wantCases[got.Cases[i].Name]; !ok {
			addf("case %s: not in fixture (new case? regenerate the corpus)", got.Cases[i].Name)
		}
	}

	wantSims := map[string]*GoldenSim{}
	for i := range want.Sims {
		wantSims[want.Sims[i].Name] = &want.Sims[i]
	}
	for i := range got.Sims {
		g := &got.Sims[i]
		w, ok := wantSims[g.Name]
		if !ok {
			addf("sim %s: not in fixture (new sim? regenerate the corpus)", g.Name)
			continue
		}
		if *w != *g {
			addf("sim %s (%s, seed %d, %g dB): packet/bit counts diverged:\n  fixture: %+v\n  current: %+v",
				w.Name, w.Detector, w.Seed, w.SNRdB, *w, *g)
		}
	}
	for i := range want.Sims {
		if !containsSim(got.Sims, want.Sims[i].Name) {
			addf("sim %s: missing from regeneration", want.Sims[i].Name)
		}
	}
	return diffs
}

func diffCase(w, g *GoldenCase, addf func(string, ...any)) {
	//lint:ignore floatcmp the golden gate demands bit-exact reproduction; an epsilon would mask the drift it exists to catch
	if w.Seed != g.Seed || w.M != g.M || w.Nt != g.Nt || w.Nr != g.Nr || w.SNRdB != g.SNRdB || w.Vectors != g.Vectors {
		addf("case %s: parameters diverged (fixture seed=%d m=%d %dx%d snr=%g n=%d, current seed=%d m=%d %dx%d snr=%g n=%d)",
			w.Name, w.Seed, w.M, w.Nt, w.Nr, w.SNRdB, w.Vectors, g.Seed, g.M, g.Nt, g.Nr, g.SNRdB, g.Vectors)
		return
	}
	if !equalPairs(w.H, g.H) {
		addf("case %s: channel matrix H diverged — the RNG stream or channel synthesis changed, every detector diff below is downstream of this", w.Name)
	}
	for v := range w.Y {
		if v < len(g.Y) && !equalPairs(w.Y[v], g.Y[v]) {
			addf("case %s vector %d: received vector y diverged (input drift, not a detector change)", w.Name, v)
		}
	}
	for v := range w.OracleDist {
		if v < len(g.OracleDist) && w.OracleDist[v] != g.OracleDist[v] { //lint:ignore floatcmp golden drift check: oracle distances must reproduce bit-exactly
			addf("case %s vector %d: oracle ML distance %v -> %v", w.Name, v, w.OracleDist[v], g.OracleDist[v])
		}
	}
	gotDets := map[string]*GoldenDetector{}
	for i := range g.Detectors {
		gotDets[g.Detectors[i].Name] = &g.Detectors[i]
	}
	for i := range w.Detectors {
		wd := &w.Detectors[i]
		gd, ok := gotDets[wd.Name]
		if !ok {
			addf("case %s: detector %s missing from regeneration", w.Name, wd.Name)
			continue
		}
		for v := range wd.Indices {
			if v >= len(gd.Indices) {
				addf("case %s: detector %s produced %d vectors, fixture has %d", w.Name, wd.Name, len(gd.Indices), len(wd.Indices))
				break
			}
			if !equalIntSlices(wd.Indices[v], gd.Indices[v]) {
				addf("case %s vector %d: %s output diverged:\n  fixture: %v\n  current: %v",
					w.Name, v, wd.Name, wd.Indices[v], gd.Indices[v])
			}
		}
	}
	for i := range g.Detectors {
		found := false
		for j := range w.Detectors {
			if w.Detectors[j].Name == g.Detectors[i].Name {
				found = true
				break
			}
		}
		if !found {
			addf("case %s: detector %s not in fixture (new detector? regenerate the corpus)", w.Name, g.Detectors[i].Name)
		}
	}
}

func packMatrix(m *cmatrix.Matrix) [][2]float64 {
	out := make([][2]float64, len(m.Data))
	for i, v := range m.Data {
		out[i] = [2]float64{real(v), imag(v)}
	}
	return out
}

func packVectors(ys [][]complex128) [][][2]float64 {
	out := make([][][2]float64, len(ys))
	for i, y := range ys {
		out[i] = make([][2]float64, len(y))
		for j, v := range y {
			out[i][j] = [2]float64{real(v), imag(v)}
		}
	}
	return out
}

func equalPairs(a, b [][2]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsSim(sims []GoldenSim, name string) bool {
	for i := range sims {
		if sims[i].Name == name {
			return true
		}
	}
	return false
}
