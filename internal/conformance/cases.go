package conformance

import (
	"math/rand/v2"

	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
)

// Case is one fully-determined detection scenario: a seeded channel
// realisation plus a burst of noisy received vectors with their
// transmitted symbols. Everything is a pure function of the parameters,
// so a Case can be reproduced from its description alone — the property
// the golden corpus and the invariant tests are built on.
type Case struct {
	Seed    uint64
	M       int // constellation order |Q|
	Nt      int // transmit streams
	Nr      int // receive antennas
	SNRdB   float64
	Vectors int // received vectors per channel realisation

	Cons   *constellation.Constellation
	H      *cmatrix.Matrix
	Sigma2 float64
	Sent   [][]int        // [vector][stream] transmitted symbol indices
	Y      [][]complex128 // [vector][antenna] received vectors
}

// NewCase materialises the scenario for the given parameters. All
// randomness flows through a single stream derived from Seed, so the
// case depends only on its parameters — never on call order.
func NewCase(seed uint64, m, nt, nr int, snrdB float64, vectors int) *Case {
	c := &Case{Seed: seed, M: m, Nt: nt, Nr: nr, SNRdB: snrdB, Vectors: vectors}
	c.Cons = constellation.MustNew(m)
	c.Sigma2 = channel.Sigma2FromSNRdB(snrdB, 1)
	rng := channel.NewStreamRNG(seed, 0xC04F)
	c.H = channel.Rayleigh(rng, nr, nt)
	c.Sent = make([][]int, vectors)
	c.Y = make([][]complex128, vectors)
	x := make([]complex128, nt)
	for v := 0; v < vectors; v++ {
		c.Sent[v] = make([]int, nt)
		for i := 0; i < nt; i++ {
			c.Sent[v][i] = rng.IntN(m)
			x[i] = c.Cons.Point(c.Sent[v][i])
		}
		c.Y[v] = channel.AddAWGN(rng, c.H.MulVec(x), c.Sigma2)
	}
	return c
}

// Hypotheses returns the oracle search-space size |Q|^Nt, saturating at
// MaxOracleHypotheses+1 when it would overflow the budget.
func (c *Case) Hypotheses() int {
	total := 1
	for i := 0; i < c.Nt; i++ {
		if total > MaxOracleHypotheses/c.M {
			return MaxOracleHypotheses + 1
		}
		total *= c.M
	}
	return total
}

// Score returns the receive-domain squared distance of a detector's
// decision for vector v.
func (c *Case) Score(v int, idx []int) float64 {
	return HypothesisDistance(c.H, c.Y[v], c.Cons, idx)
}

// CaseRNG exposes a deterministic sub-stream of the case's seed for
// tests that need extra randomness tied to the same scenario.
func (c *Case) CaseRNG(stream uint64) *rand.Rand {
	return channel.NewStreamRNG(c.Seed, 0xD15C^stream)
}
