package conformance

import (
	"testing"

	"flexcore/internal/core"
)

// TestPathReuseThresholdZeroNeverChangesOutput is the conformance
// invariant of the coherence cache: with Options.PathReuse enabled at
// ReuseThreshold = 0 the cache fires only on an exactly identical
// (R, σ²), so every detection decision over the seeded ML ensembles must
// be bit-identical to the cache-off detector — including after repeated
// Prepares of the same channel, where the cache actually hits.
func TestPathReuseThresholdZeroNeverChangesOutput(t *testing.T) {
	forEachMLCase(t, func(t *testing.T, c *Case) {
		plain := flexAt(t, c, core.Options{NPE: 16})
		cached := flexAt(t, c, core.Options{NPE: 16, PathReuse: true, ReuseThreshold: 0})
		// Re-prepare the identical channel so the second round runs on a
		// cache hit.
		for round := 0; round < 2; round++ {
			if round > 0 {
				if err := cached.Prepare(c.H, c.Sigma2); err != nil {
					t.Fatal(err)
				}
			}
			for v := range c.Y {
				want := plain.Detect(c.Y[v])
				got := cached.Detect(c.Y[v])
				if !equalIntSlices(got, want) {
					t.Fatalf("seed %d vector %d round %d: reuse-enabled %v, plain %v",
						c.Seed, v, round, got, want)
				}
			}
		}
		if pp := cached.PreprocessStats(); pp.CacheHits != 1 || pp.CacheMisses != 1 {
			t.Fatalf("seed %d: hits=%d misses=%d, want 1/1", c.Seed, pp.CacheHits, pp.CacheMisses)
		}
	})
}
