package conformance

import (
	"math"
	"os"
	"testing"

	"flexcore/internal/core"
	"flexcore/internal/detector"
)

// distTol is the relative tolerance for comparing squared distances
// computed along different floating-point paths (receive domain vs
// QR-rotated domain).
const distTol = 1e-9

// soaDistTol is the distance tolerance when the float32 SoA backend is
// active: the backend's conformance contract (DESIGN.md §11) pins
// decisions, not distances, and its float32 PED ranking can disagree
// with the float64 receive-domain metric by a few ULPs of the working
// precision — ~1e-6 relative, bounded here with margin.
const soaDistTol = 1e-5

// envBackend returns the core backend selected by the FLEXCORE_BACKEND
// environment variable — the axis of the CI test matrix. Empty means
// the default complex128 backend; an unknown value fails the test
// rather than silently running the wrong matrix leg.
func envBackend(t testing.TB) core.Backend {
	t.Helper()
	b, ok := core.ParseBackend(os.Getenv("FLEXCORE_BACKEND"))
	if !ok {
		t.Fatalf("FLEXCORE_BACKEND=%q: unknown backend", os.Getenv("FLEXCORE_BACKEND"))
	}
	return b
}

// scoreTol is the receive-domain distance tolerance for the active
// backend.
func scoreTol(t testing.TB) float64 {
	t.Helper()
	if envBackend(t) == core.BackendSoA32 {
		return soaDistTol
	}
	return distTol
}

// mlEnsembles are the seeded channel ensembles the acceptance criteria
// pin: ≥ 200 channels per constellation/geometry with Nt ≤ 3, QPSK and
// 16-QAM. SNRs sit near the paper's calibrated operating points so the
// cases exercise both easy and noise-limited decisions.
var mlEnsembles = []struct {
	name     string
	m        int
	nt, nr   int
	snrdB    float64
	channels int
}{
	{"qpsk-2x2", 4, 2, 2, 8, 80},
	{"qpsk-3x3", 4, 3, 3, 10, 80},
	{"16qam-2x2", 16, 2, 2, 14, 80},
	{"16qam-3x3", 16, 3, 3, 16, 80}, // sphere-vs-oracle only (4096 paths)
}

// forEachMLCase materialises every ensemble case (3 vectors per channel)
// and hands it to fn.
func forEachMLCase(t *testing.T, fn func(t *testing.T, c *Case)) {
	t.Helper()
	for _, e := range mlEnsembles {
		e := e
		t.Run(e.name, func(t *testing.T) {
			for ch := 0; ch < e.channels; ch++ {
				c := NewCase(uint64(1000+ch), e.m, e.nt, e.nr, e.snrdB, 3)
				fn(t, c)
			}
		})
	}
}

// TestOracleSelfConsistent sanity-checks the oracle itself: on a
// noise-free identity channel the ML decision is the transmitted vector
// with distance 0, and the reported distance always matches re-scoring
// the reported indices.
func TestOracleSelfConsistent(t *testing.T) {
	c := NewCase(7, 16, 3, 3, 40, 4)
	for v := range c.Y {
		res, err := ExhaustiveML(c.H, c.Y[v], c.Cons)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Score(v, res.Indices); math.Abs(got-res.Dist) > distTol*(1+res.Dist) {
			t.Fatalf("vector %d: reported dist %g, re-scored %g", v, res.Dist, got)
		}
		// At 40 dB the ML decision must be the transmitted vector.
		for i, idx := range res.Indices {
			if idx != c.Sent[v][i] {
				t.Fatalf("vector %d stream %d: oracle %d, sent %d at 40 dB", v, i, idx, c.Sent[v][i])
			}
		}
	}
}

func TestOracleRejectsOversizedSearch(t *testing.T) {
	c := NewCase(8, 1024, 3, 3, 20, 1)
	if _, err := ExhaustiveML(c.H, c.Y[0], c.Cons); err == nil {
		t.Fatal("1024^3 hypotheses accepted")
	}
}

// TestSphereMatchesExhaustiveOracle is the first conformance layer: the
// depth-first sphere decoder's decision must score exactly the oracle
// minimum on every seeded channel. Scoring the sphere's output with the
// oracle's own receive-domain metric sidesteps distance-tie ambiguity:
// any hypothesis at the minimum distance is an ML decision.
func TestSphereMatchesExhaustiveOracle(t *testing.T) {
	forEachMLCase(t, func(t *testing.T, c *Case) {
		sp := detector.NewSphere(c.Cons)
		if err := sp.Prepare(c.H, c.Sigma2); err != nil {
			t.Fatal(err)
		}
		for v := range c.Y {
			oracle, err := ExhaustiveML(c.H, c.Y[v], c.Cons)
			if err != nil {
				t.Fatal(err)
			}
			got := sp.Detect(c.Y[v])
			if d := c.Score(v, got); d > oracle.Dist*(1+distTol)+distTol {
				t.Fatalf("seed %d vector %d: sphere dist %.12g > oracle %.12g (sphere %v, oracle %v)",
					c.Seed, v, d, oracle.Dist, got, oracle.Indices)
			}
		}
	})
}

// flexAt prepares a FlexCore detector with the given path budget on the
// case's channel. Tests that leave Options.Backend at its default run
// on the backend the CI matrix selects via FLEXCORE_BACKEND, so every
// invariant in this file holds per backend.
func flexAt(t *testing.T, c *Case, opts core.Options) *core.FlexCore {
	t.Helper()
	if opts.Backend == core.BackendComplex128 {
		opts.Backend = envBackend(t)
	}
	fc := core.New(c.Cons, opts)
	if err := fc.Prepare(c.H, c.Sigma2); err != nil {
		t.Fatal(err)
	}
	return fc
}

// TestFlexCoreMonotoneAndConvergesToML checks the paper's convergence
// claim in its exact per-vector form. Two invariants, for both the
// production triangle-LUT slicer and the ExactSlicer reference mode:
//
//   - The distance of FlexCore's decision is monotonically
//     non-increasing in N_PE: the pre-processing search is best-first
//     with monotone path probabilities, so a smaller budget's selected
//     path set is a prefix of a larger budget's.
//   - At N_PE = |Q|^Nt — every position vector selected — the
//     ExactSlicer decision scores exactly the exhaustive-ML minimum
//     (the rank-vector → symbol-vector map is a bijection under the
//     true k-th-closest lookup). The triangle-LUT mode is approximate
//     near the constellation hull (ranks collapse under saturation), so
//     its full-budget decision is only checked against the monotone
//     envelope; its exact numerical behaviour is pinned by the golden
//     corpus instead.
func TestFlexCoreMonotoneAndConvergesToML(t *testing.T) {
	tol := scoreTol(t)
	forEachMLCase(t, func(t *testing.T, c *Case) {
		full := c.Hypotheses()
		if full > 256 {
			// Full enumeration stays affordable only for |Q|^Nt ≤ 256;
			// the larger ensembles are covered by the sphere-vs-oracle
			// and golden layers.
			return
		}
		budgets := []int{1, 2, 4, 8, full / 2, full}
		for _, exact := range []bool{false, true} {
			prev := make([]float64, len(c.Y))
			for i := range prev {
				prev[i] = math.Inf(1)
			}
			for _, npe := range budgets {
				if npe < 1 {
					continue
				}
				fc := flexAt(t, c, core.Options{NPE: npe, ExactSlicer: exact})
				for v := range c.Y {
					d := c.Score(v, fc.Detect(c.Y[v]))
					if d > prev[v]*(1+tol)+tol {
						t.Fatalf("seed %d vector %d (exact=%v): distance %.12g at NPE=%d above %.12g at smaller budget",
							c.Seed, v, exact, d, npe, prev[v])
					}
					if d < prev[v] {
						prev[v] = d
					}
				}
			}
		}
		fc := flexAt(t, c, core.Options{NPE: full, ExactSlicer: true})
		for v := range c.Y {
			oracle, err := ExhaustiveML(c.H, c.Y[v], c.Cons)
			if err != nil {
				t.Fatal(err)
			}
			if d := c.Score(v, fc.Detect(c.Y[v])); d > oracle.Dist*(1+tol)+tol {
				t.Fatalf("seed %d vector %d: FlexCore(NPE=%d,exact) dist %.12g > ML %.12g",
					c.Seed, v, full, d, oracle.Dist)
			}
		}
	})
}

// TestSICEqualsSinglePathFlexCore pins the paper's §3 observation that
// SIC "is essentially a single-path FlexCore": with N_PE = 1 (the
// all-ones position vector) FlexCore must reproduce the ordered-SIC
// decision bit for bit on every seeded channel.
func TestSICEqualsSinglePathFlexCore(t *testing.T) {
	forEachMLCase(t, func(t *testing.T, c *Case) {
		sic := detector.NewSIC(c.Cons)
		if err := sic.Prepare(c.H, c.Sigma2); err != nil {
			t.Fatal(err)
		}
		fc := flexAt(t, c, core.Options{NPE: 1})
		for v := range c.Y {
			want := sic.Detect(c.Y[v])
			got := fc.Detect(c.Y[v])
			if !equalIntSlices(got, want) {
				t.Fatalf("seed %d vector %d: FlexCore(NPE=1) %v, SIC %v", c.Seed, v, got, want)
			}
		}
	})
}

// allDetectors builds one of every detector in the library for the
// case's constellation (the set DetectBatch and OpCount conformance is
// checked over).
func allDetectors(c *Case) []detector.Detector {
	return []detector.Detector{
		detector.NewZF(c.Cons),
		detector.NewMMSE(c.Cons),
		detector.NewSIC(c.Cons),
		detector.NewSphere(c.Cons),
		detector.NewFCSD(c.Cons, 1),
		detector.NewKBest(c.Cons, 4),
		detector.NewTrellis(c.Cons),
		detector.NewLRZF(c.Cons),
		core.New(c.Cons, core.Options{NPE: 8}),
		core.New(c.Cons, core.Options{NPE: 16, Threshold: 0.95}),
		core.New(c.Cons, core.Options{NPE: 16, Workers: 4}),
		core.New(c.Cons, core.Options{NPE: 8, Backend: core.BackendSoA32}),
		core.New(c.Cons, core.Options{NPE: 16, Workers: 4, Backend: core.BackendSoA32}),
	}
}

// TestDetectBatchMatchesLoopedDetect checks the batch conformance
// contract for every detector in the library, native batch
// implementations and loop adapters alike: DetectBatch must equal a
// plain loop over Detect bit for bit.
func TestDetectBatchMatchesLoopedDetect(t *testing.T) {
	c := NewCase(42, 16, 4, 4, 14, 8)
	for _, det := range allDetectors(c) {
		if err := det.Prepare(c.H, c.Sigma2); err != nil {
			t.Fatalf("%s: %v", det.Name(), err)
		}
		want := make([][]int, len(c.Y))
		for v := range c.Y {
			want[v] = append([]int(nil), det.Detect(c.Y[v])...)
		}
		b := detector.Batch(det)
		got := b.DetectBatch(c.Y)
		if len(got) != len(c.Y) {
			t.Fatalf("%s: %d batch results for %d vectors", det.Name(), len(got), len(c.Y))
		}
		for v := range got {
			if !equalIntSlices(got[v], want[v]) {
				t.Fatalf("%s vector %d: batch %v, looped Detect %v", det.Name(), v, got[v], want[v])
			}
		}
		if fc, ok := det.(*core.FlexCore); ok {
			fc.Close()
		}
	}
}

// TestOpCountMonotoneAndConsistent checks the instrumentation contract
// across every detector: counters never decrease, Prepares/Detections
// track the call counts exactly (DetectBatch counting one detection per
// vector), and per-call work is attributed where it happens.
func TestOpCountMonotoneAndConsistent(t *testing.T) {
	c := NewCase(43, 16, 4, 4, 14, 6)
	for _, det := range allDetectors(c) {
		prev := det.OpCount()
		if prev != (detector.OpCount{}) {
			t.Fatalf("%s: non-zero counters before first Prepare: %+v", det.Name(), prev)
		}
		var prepares, detections int64
		step := func(stage string) {
			cur := det.OpCount()
			if cur.RealMuls < prev.RealMuls || cur.FLOPs < prev.FLOPs || cur.Nodes < prev.Nodes ||
				cur.Detections < prev.Detections || cur.Prepares < prev.Prepares {
				t.Fatalf("%s after %s: counters decreased: %+v -> %+v", det.Name(), stage, prev, cur)
			}
			if cur.Prepares != prepares {
				t.Fatalf("%s after %s: Prepares = %d, want %d", det.Name(), stage, cur.Prepares, prepares)
			}
			if cur.Detections != detections {
				t.Fatalf("%s after %s: Detections = %d, want %d", det.Name(), stage, cur.Detections, detections)
			}
			prev = cur
		}
		for round := 0; round < 2; round++ {
			if err := det.Prepare(c.H, c.Sigma2); err != nil {
				t.Fatalf("%s: %v", det.Name(), err)
			}
			prepares++
			step("Prepare")
			det.Detect(c.Y[0])
			detections++
			step("Detect")
			detector.Batch(det).DetectBatch(c.Y)
			detections += int64(len(c.Y))
			step("DetectBatch")
		}
		if per := det.OpCount().PerDetection(); per.Detections != 1 {
			t.Fatalf("%s: PerDetection.Detections = %d", det.Name(), per.Detections)
		}
		if fc, ok := det.(*core.FlexCore); ok {
			fc.Close()
		}
	}
}
