package conformance

import (
	"testing"

	"flexcore/internal/core"
	"flexcore/internal/detector"
)

// FuzzDetect is the end-to-end fuzz target of the conformance harness:
// arbitrary seeds, geometries and SNRs drive every detector in the
// library through Prepare/Detect and check the structural contract —
// the decision has one valid constellation index per transmit stream,
// no detector panics, and on small search spaces the sphere decoder's
// decision scores within tolerance of the exhaustive-ML oracle.
func FuzzDetect(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(2), uint8(0), int8(10))
	f.Add(uint64(2), uint8(1), uint8(3), uint8(1), int8(16))
	f.Add(uint64(3), uint8(2), uint8(2), uint8(2), int8(22))
	f.Add(uint64(4), uint8(0), uint8(4), uint8(0), int8(-5))
	f.Add(uint64(5), uint8(1), uint8(1), uint8(3), int8(40))
	f.Fuzz(func(t *testing.T, seed uint64, mSel, ntRaw, extraNr uint8, snrRaw int8) {
		orders := []int{4, 16, 64}
		m := orders[int(mSel)%len(orders)]
		nt := int(ntRaw)%4 + 1
		nr := nt + int(extraNr)%3
		snr := float64(int(snrRaw)%46 - 5) // −5 … 40 dB

		c := NewCase(seed, m, nt, nr, snr, 2)
		oracleOK := c.Hypotheses() <= 4096

		dets := allDetectors(c)
		for _, det := range dets {
			if err := det.Prepare(c.H, c.Sigma2); err != nil {
				t.Fatalf("%s: Prepare: %v", det.Name(), err)
			}
		}
		for v := range c.Y {
			var oracle *OracleResult
			if oracleOK {
				r, err := ExhaustiveML(c.H, c.Y[v], c.Cons)
				if err != nil {
					t.Fatal(err)
				}
				oracle = &r
			}
			for _, det := range dets {
				got := det.Detect(c.Y[v])
				if len(got) != nt {
					t.Fatalf("%s: %d indices for %d streams", det.Name(), len(got), nt)
				}
				for i, idx := range got {
					if idx < 0 || idx >= m {
						t.Fatalf("%s stream %d: index %d out of range [0,%d)", det.Name(), i, idx, m)
					}
				}
				if oracle != nil {
					if d := c.Score(v, got); d < oracle.Dist*(1-distTol)-distTol {
						t.Fatalf("%s beat the exhaustive oracle: %.12g < %.12g", det.Name(), d, oracle.Dist)
					}
					if _, isSphere := det.(*detector.Sphere); isSphere {
						if d := c.Score(v, got); d > oracle.Dist*(1+distTol)+distTol {
							t.Fatalf("sphere dist %.12g > oracle %.12g (seed %d, %dx%d M=%d snr=%g)",
								d, oracle.Dist, seed, nt, nr, m, snr)
						}
					}
				}
			}
		}
		for _, det := range dets {
			if fc, ok := det.(*core.FlexCore); ok {
				fc.Close()
			}
		}
	})
}
