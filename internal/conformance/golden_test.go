package conformance

import (
	"os"
	"strings"
	"testing"
)

const goldenPath = "testdata/golden_vectors.json"

// TestGoldenVectors is the second conformance layer: a fresh
// deterministic regeneration of every pinned case and simulation must
// agree bit for bit with the checked-in fixture. A divergence means the
// numerical behaviour of some layer changed — the failure message lists
// exactly which case, vector and detector moved, and distinguishes
// input drift (RNG/channel changes) from detector-output drift.
func TestGoldenVectors(t *testing.T) {
	want, err := LoadGoldenSuite(goldenPath)
	if err != nil {
		t.Fatalf("missing or unreadable fixture (regenerate with `go generate ./internal/conformance`): %v", err)
	}
	got, err := GenerateGoldenSuite()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := DiffGoldenSuites(want, got); len(diffs) > 0 {
		t.Fatalf("numerical behaviour diverged from the golden corpus (%d difference(s)).\n"+
			"If the change is intentional, regenerate with `go generate ./internal/conformance` and review the JSON diff.\n\n%s",
			len(diffs), strings.Join(diffs, "\n"))
	}
}

// TestGoldenFixtureIsSelfConsistent guards the fixture file itself: it
// must parse, carry every case the generator defines, and declare the
// regeneration command so a reader of the JSON knows how it was made.
func TestGoldenFixtureIsSelfConsistent(t *testing.T) {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "goldengen") {
		t.Fatal("fixture does not name its generator")
	}
	suite, err := LoadGoldenSuite(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Cases) != len(goldenCaseParams) || len(suite.Sims) != len(goldenSimParams) {
		t.Fatalf("fixture has %d cases / %d sims, generator defines %d / %d",
			len(suite.Cases), len(suite.Sims), len(goldenCaseParams), len(goldenSimParams))
	}
	for _, c := range suite.Cases {
		if len(c.Detectors) == 0 || c.Vectors == 0 {
			t.Fatalf("case %s is empty", c.Name)
		}
		for _, d := range c.Detectors {
			if len(d.Indices) != c.Vectors {
				t.Fatalf("case %s detector %s: %d vectors, want %d", c.Name, d.Name, len(d.Indices), c.Vectors)
			}
		}
	}
}

// TestGoldenDiffReportsInjectedChange proves the corpus fails loudly:
// perturbing one detector output, one input sample and one sim count
// must each surface as a distinct readable diff line.
func TestGoldenDiffReportsInjectedChange(t *testing.T) {
	want, err := GenerateGoldenSuite()
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateGoldenSuite()
	if err != nil {
		t.Fatal(err)
	}
	got.Cases[0].Detectors[0].Indices[0][0] ^= 1
	got.Cases[1].Y[0][0][0] += 1e-9
	got.Sims[0].PacketErrors++
	diffs := DiffGoldenSuites(want, got)
	if len(diffs) < 3 {
		t.Fatalf("injected 3 divergences, diff reported %d: %v", len(diffs), diffs)
	}
	joined := strings.Join(diffs, "\n")
	for _, needle := range []string{
		want.Cases[0].Detectors[0].Name, // the perturbed detector is named
		"input drift",                   // the y perturbation is attributed to inputs
		want.Sims[0].Name,               // the perturbed sim is named
	} {
		if !strings.Contains(joined, needle) {
			t.Fatalf("diff does not mention %q:\n%s", needle, joined)
		}
	}
}
