package conformance

import (
	"math"
	"testing"

	"flexcore/internal/core"
)

// Backend conformance for the float32 structure-of-arrays kernel
// backend (core.BackendSoA32). Its contract — DESIGN.md §11 — is
// decisions, not distances: on the pinned corpora the soa32 decisions
// must equal the complex128 decisions exactly, while internal distances
// are only required to agree within a ULP-scaled bound (soaDistTol).
// These tests run on every matrix leg regardless of FLEXCORE_BACKEND:
// the cross-backend equality is the gate, not a per-leg invariant.

// soaGoldenConfigs are the FlexCore configurations of the golden corpus
// (goldenDetectors), rerun here on the SoA backend. The complex128 twin
// of each entry names the fixture record to compare against.
var soaGoldenConfigs = []core.Options{
	{NPE: 8},
	{NPE: 16, Threshold: 0.95},
	{NPE: 16, ExactSlicer: true}, // routes to the scalar kernels; pins the backend dispatch
}

// TestSoA32MatchesGoldenFlexCoreDecisions reruns every FlexCore
// configuration pinned in the golden corpus on the SoA32 backend and
// requires its decisions to match the checked-in complex128 fixture
// indices bit for bit, on every case and vector. A float32 rounding
// change that flips any corpus decision fails here with the exact case,
// vector and configuration named.
func TestSoA32MatchesGoldenFlexCoreDecisions(t *testing.T) {
	suite, err := LoadGoldenSuite(goldenPath)
	if err != nil {
		t.Fatalf("missing or unreadable fixture (regenerate with `go generate ./internal/conformance`): %v", err)
	}
	fixture := map[string]*GoldenCase{}
	for i := range suite.Cases {
		fixture[suite.Cases[i].Name] = &suite.Cases[i]
	}
	for _, p := range goldenCaseParams {
		gc, ok := fixture[p.name]
		if !ok {
			t.Fatalf("case %s not in fixture", p.name)
		}
		c := NewCase(p.seed, p.m, p.nt, p.nr, p.snrdB, goldenVectorsPerCase)
		// Guard against input drift first, so a failure below is
		// attributable to the backend rather than the RNG stream.
		if !equalPairs(gc.H, packMatrix(c.H)) {
			t.Fatalf("case %s: regenerated channel diverged from fixture (input drift)", p.name)
		}
		for _, opts := range soaGoldenConfigs {
			scalar := core.New(c.Cons, opts)
			want := findGoldenDetector(gc, scalar.Name())
			if want == nil {
				t.Fatalf("case %s: fixture has no detector %q", p.name, scalar.Name())
			}
			scalar.Close()
			opts.Backend = core.BackendSoA32
			fc := core.New(c.Cons, opts)
			if err := fc.Prepare(c.H, c.Sigma2); err != nil {
				t.Fatalf("case %s: %s: %v", p.name, fc.Name(), err)
			}
			for v := range c.Y {
				got := fc.Detect(c.Y[v])
				if !equalIntSlices(got, want.Indices[v]) {
					t.Fatalf("case %s vector %d: %s decided %v, fixture pins %v",
						p.name, v, fc.Name(), got, want.Indices[v])
				}
			}
			fc.Close()
		}
	}
}

func findGoldenDetector(gc *GoldenCase, name string) *GoldenDetector {
	for i := range gc.Detectors {
		if gc.Detectors[i].Name == name {
			return &gc.Detectors[i]
		}
	}
	return nil
}

// TestSoA32MatchesComplex128OnMLEnsembles extends the decision gate
// beyond the five golden cases to the full seeded ML ensembles (the
// oracle corpora): at every budget the soa32 decision must equal the
// complex128 decision exactly, and the receive-domain distances of the
// two decisions must agree within soaDistTol — which, with equal
// decisions, also pins the scoring path itself.
func TestSoA32MatchesComplex128OnMLEnsembles(t *testing.T) {
	forEachMLCase(t, func(t *testing.T, c *Case) {
		for _, npe := range []int{1, 4, 16} {
			fc64 := core.New(c.Cons, core.Options{NPE: npe})
			fc32 := core.New(c.Cons, core.Options{NPE: npe, Backend: core.BackendSoA32})
			for _, fc := range []*core.FlexCore{fc64, fc32} {
				if err := fc.Prepare(c.H, c.Sigma2); err != nil {
					t.Fatal(err)
				}
			}
			for v := range c.Y {
				want := fc64.Detect(c.Y[v])
				got := fc32.Detect(c.Y[v])
				if !equalIntSlices(got, want) {
					t.Fatalf("seed %d vector %d NPE=%d: soa32 %v, complex128 %v",
						c.Seed, v, npe, got, want)
				}
				d64, d32 := c.Score(v, want), c.Score(v, got)
				if math.Abs(d32-d64) > soaDistTol*(1+d64) {
					t.Fatalf("seed %d vector %d NPE=%d: soa32 dist %.12g vs complex128 %.12g exceeds tolerance",
						c.Seed, v, npe, d32, d64)
				}
			}
			fc64.Close()
			fc32.Close()
		}
	})
}
