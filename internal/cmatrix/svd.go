package cmatrix

import (
	"math"
	"math/cmplx"
	"sort"
)

// SingularValues returns the singular values of m (Rows ≥ Cols) in
// descending order, computed with a one-sided complex Jacobi iteration.
// The method rotates column pairs until all pairs are orthogonal; the
// singular values are then the column norms.
func SingularValues(m *Matrix) []float64 {
	if m.Rows < m.Cols {
		m = m.H()
	}
	a := m.Copy()
	n := a.Cols
	const (
		maxSweeps = 60
		tol       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				cp := a.Col(p)
				cq := a.Col(q)
				app := Norm2(cp)
				aqq := Norm2(cq)
				apq := Dot(cp, cq)
				mag := cmplx.Abs(apq)
				if mag <= tol*math.Sqrt(app*aqq) || mag == 0 { //lint:ignore floatcmp exact-zero off-diagonal needs no rotation (guards the tol·0 case too)
					continue
				}
				off += mag
				// Complex Jacobi rotation orthogonalising columns p and q.
				phase := apq / complex(mag, 0)
				tau := (aqq - app) / (2 * mag)
				t := math.Copysign(1, tau) / (math.Abs(tau) + math.Sqrt(1+tau*tau))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				cs := complex(c, 0)
				sn := complex(s, 0) * phase
				for i := 0; i < a.Rows; i++ {
					vp := a.At(i, p)
					vq := a.At(i, q)
					a.Set(i, p, cs*vp-cmplx.Conj(sn)*vq)
					a.Set(i, q, sn*vp+cs*vq)
				}
			}
		}
		if off < tol {
			break
		}
	}
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		sv[j] = Norm(a.Col(j))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sv)))
	return sv
}

// Cond2 returns the 2-norm condition number σ_max/σ_min of m, or +Inf when
// the matrix is numerically rank deficient.
func Cond2(m *Matrix) float64 {
	sv := SingularValues(m)
	smin := sv[len(sv)-1]
	if smin == 0 { //lint:ignore floatcmp division guard: exactly-zero σ_min means exact rank deficiency
		return math.Inf(1)
	}
	return sv[0] / smin
}
