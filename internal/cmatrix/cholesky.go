package cmatrix

import (
	"math"
	"math/cmplx"
)

// Cholesky returns the lower-triangular factor L with A = L·Lᴴ for a
// Hermitian positive-definite matrix A, or ErrSingular when A is not
// numerically positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		panic("cmatrix: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		// Diagonal entry.
		d := real(a.At(j, j))
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= real(v)*real(v) + imag(v)*imag(v)
		}
		if d <= 0 {
			return nil, ErrSingular
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, complex(ljj, 0))
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * cmplx.Conj(l.At(j, k))
			}
			l.Set(i, j, s/complex(ljj, 0))
		}
	}
	return l, nil
}
