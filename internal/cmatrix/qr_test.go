package cmatrix

import (
	"math"
	"testing"
	"testing/quick"
)

// checkQR verifies the defining invariants of a (permuted) QR result.
func checkQR(t *testing.T, h *Matrix, qr *QRResult, tol float64) {
	t.Helper()
	n := h.Cols
	// Perm must be a permutation of 0..n-1.
	seen := make([]bool, n)
	for _, p := range qr.Perm {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("invalid permutation %v", qr.Perm)
		}
		seen[p] = true
	}
	// Reconstruction: H·P == Q·R.
	hp := h.PermuteCols(qr.Perm)
	if got := qr.Q.Mul(qr.R); !got.EqualApprox(hp, tol) {
		t.Fatalf("Q·R != H·P (max err %g)", got.Sub(hp).MaxAbs())
	}
	// Orthonormal columns.
	qhq := qr.Q.H().Mul(qr.Q)
	if !qhq.EqualApprox(Identity(n), tol) {
		t.Fatalf("QᴴQ != I (max err %g)", qhq.Sub(Identity(n)).MaxAbs())
	}
	// Upper triangular with real, non-negative diagonal.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if v := qr.R.At(i, j); v != 0 {
				t.Fatalf("R(%d,%d) = %v below diagonal", i, j, v)
			}
		}
		d := qr.R.At(i, i)
		if imag(d) != 0 || real(d) < 0 {
			t.Fatalf("R(%d,%d) = %v not real non-negative", i, i, d)
		}
	}
}

func TestHouseholderQRInvariants(t *testing.T) {
	rng := newRng(11)
	for _, dims := range [][2]int{{2, 2}, {4, 4}, {8, 8}, {12, 12}, {10, 6}} {
		h := randMatrix(rng, dims[0], dims[1])
		checkQR(t, h, QR(h), 1e-10)
	}
}

func TestSortedQRInvariants(t *testing.T) {
	rng := newRng(12)
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {12, 12}, {12, 8}} {
		h := randMatrix(rng, dims[0], dims[1])
		checkQR(t, h, SortedQR(h, OrderNone), 1e-9)
		checkQR(t, h, SortedQR(h, OrderSQRD), 1e-9)
		for l := 0; l <= dims[1]; l += 2 {
			checkQR(t, h, SortedQRFCSD(h, l), 1e-9)
		}
	}
}

func TestSQRDImprovesWorstFirstLevel(t *testing.T) {
	// SQRD should not make the last diagonal entry (the level detected
	// first) smaller than plain QR does, on average.
	rng := newRng(13)
	var plain, sorted float64
	const trials = 200
	for i := 0; i < trials; i++ {
		h := randMatrix(rng, 8, 8)
		q1 := QR(h)
		q2 := SortedQR(h, OrderSQRD)
		n := h.Cols
		plain += real(q1.R.At(n-1, n-1))
		sorted += real(q2.R.At(n-1, n-1))
	}
	if sorted <= plain {
		t.Fatalf("SQRD last-level gain missing: sorted %g <= plain %g", sorted, plain)
	}
}

func TestFCSDOrderingPushesWeakColumnsLast(t *testing.T) {
	// Build a matrix with one clearly weak column; with L=1 the FCSD
	// ordering must place it at the last factored position.
	rng := newRng(14)
	for trial := 0; trial < 50; trial++ {
		h := randMatrix(rng, 6, 6)
		weak := rng.IntN(6)
		for i := 0; i < h.Rows; i++ {
			h.Set(i, weak, h.At(i, weak)*0.01)
		}
		qr := SortedQRFCSD(h, 1)
		if qr.Perm[len(qr.Perm)-1] != weak {
			t.Fatalf("trial %d: weak column %d not last in perm %v", trial, weak, qr.Perm)
		}
	}
}

func TestUnpermuteRoundTrip(t *testing.T) {
	rng := newRng(15)
	h := randMatrix(rng, 8, 8)
	qr := SortedQR(h, OrderSQRD)
	x := make([]complex128, 8)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	// Detection works on permuted streams: stream k of the factored system
	// is original stream Perm[k]; Unpermute must invert the gather.
	perm := make([]complex128, 8)
	for k, src := range qr.Perm {
		perm[k] = x[src]
	}
	back := qr.Unpermute(perm)
	for i := range x {
		if back[i] != x[i] {
			t.Fatalf("Unpermute round trip failed at %d", i)
		}
	}
	xi := []int{7, 6, 5, 4, 3, 2, 1, 0}
	pi := make([]int, 8)
	for k, src := range qr.Perm {
		pi[k] = xi[src]
	}
	backInts := qr.UnpermuteInts(pi)
	for i := range xi {
		if backInts[i] != xi[i] {
			t.Fatalf("UnpermuteInts round trip failed at %d", i)
		}
	}
}

func TestYbarPreservesDistances(t *testing.T) {
	// For square H, ||y − Hs||² == ||ȳ − R·s_perm||² because Q is unitary.
	rng := newRng(16)
	h := randMatrix(rng, 6, 6)
	qr := SortedQR(h, OrderSQRD)
	s := randMatrix(rng, 6, 1).Col(0)
	y := h.MulVec(s)
	for i := range y {
		y[i] += complex(rng.NormFloat64(), rng.NormFloat64()) * 0.1
	}
	direct := Norm2(SubVec(y, h.MulVec(s)))
	sp := make([]complex128, 6)
	for k, src := range qr.Perm {
		sp[k] = s[src]
	}
	viaR := Norm2(SubVec(qr.Ybar(y), qr.R.MulVec(sp)))
	if math.Abs(direct-viaR) > 1e-9*(1+direct) {
		t.Fatalf("distance mismatch: %g vs %g", direct, viaR)
	}
}

func TestQRQuickProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := newRng(seed)
		m := 2 + int(seed%7)
		h := randMatrix(r, m+int(seed%3), m)
		qr := QR(h)
		hp := h.PermuteCols(qr.Perm)
		return qr.Q.Mul(qr.R).EqualApprox(hp, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQRRankDeficientDoesNotPanic(t *testing.T) {
	// A rank-deficient matrix must still produce a valid factorization
	// (R may have zero diagonal entries).
	h := New(4, 4)
	for i := 0; i < 4; i++ {
		h.Set(i, 0, complex(float64(i+1), 0))
		h.Set(i, 1, complex(2*float64(i+1), 0)) // multiple of column 0
	}
	qr := QR(h)
	hp := h.PermuteCols(qr.Perm)
	if !qr.Q.Mul(qr.R).EqualApprox(hp, 1e-9) {
		t.Fatal("rank-deficient QR does not reconstruct")
	}
	qrs := SortedQR(h, OrderSQRD)
	hps := h.PermuteCols(qrs.Perm)
	if !qrs.Q.Mul(qrs.R).EqualApprox(hps, 1e-9) {
		t.Fatal("rank-deficient SortedQR does not reconstruct")
	}
}

func BenchmarkQR12x12(b *testing.B) {
	rng := newRng(18)
	h := randMatrix(rng, 12, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		QR(h)
	}
}

func BenchmarkSortedQR12x12(b *testing.B) {
	rng := newRng(19)
	h := randMatrix(rng, 12, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SortedQR(h, OrderSQRD)
	}
}
