package cmatrix

import (
	"errors"
	"math/cmplx"
)

// ErrSingular is returned when a solve or inversion meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("cmatrix: matrix is singular")

// Inverse returns the inverse of the square matrix m using Gauss-Jordan
// elimination with partial pivoting.
func Inverse(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("cmatrix: Inverse requires a square matrix")
	}
	n := m.Rows
	a := m.Copy()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: the largest magnitude in this column.
		p := col
		best := cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a.At(r, col)); v > best {
				best, p = v, r
			}
		}
		if best == 0 { //lint:ignore floatcmp an exactly-zero best pivot means a structurally singular column; any nonzero pivot is divisible
			return nil, ErrSingular
		}
		if p != col {
			swapRows(a, p, col)
			swapRows(inv, p, col)
		}
		pivInv := 1 / a.At(col, col)
		for j := 0; j < n; j++ {
			a.Data[col*n+j] *= pivInv
			inv.Data[col*n+j] *= pivInv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 { //lint:ignore floatcmp exact-zero entries need no elimination; skipping them is exact
				continue
			}
			for j := 0; j < n; j++ {
				a.Data[r*n+j] -= f * a.Data[col*n+j]
				inv.Data[r*n+j] -= f * inv.Data[col*n+j]
			}
		}
	}
	return inv, nil
}

// SolveUpperTriangular solves R·x = b by back substitution, where R is
// square upper triangular.
func SolveUpperTriangular(r *Matrix, b []complex128) ([]complex128, error) {
	if r.Rows != r.Cols || r.Rows != len(b) {
		panic("cmatrix: SolveUpperTriangular shape mismatch")
	}
	n := r.Rows
	x := make([]complex128, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if d == 0 { //lint:ignore floatcmp division guard: any nonzero diagonal is divisible, exactly zero is singular
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// PseudoInverseZF returns the zero-forcing filter (HᴴH)⁻¹Hᴴ.
func PseudoInverseZF(h *Matrix) (*Matrix, error) {
	hh := h.H()
	gram := hh.Mul(h)
	inv, err := Inverse(gram)
	if err != nil {
		return nil, err
	}
	return inv.Mul(hh), nil
}

// MMSEFilter returns the linear MMSE filter (HᴴH + (σ²/Es)·I)⁻¹Hᴴ for
// noise variance sigma2 and per-symbol energy es.
func MMSEFilter(h *Matrix, sigma2, es float64) (*Matrix, error) {
	hh := h.H()
	gram := hh.Mul(h)
	reg := complex(sigma2/es, 0)
	for i := 0; i < gram.Rows; i++ {
		gram.Data[i*gram.Cols+i] += reg
	}
	inv, err := Inverse(gram)
	if err != nil {
		return nil, err
	}
	return inv.Mul(hh), nil
}

func swapRows(m *Matrix, a, b int) {
	ra := m.Data[a*m.Cols : (a+1)*m.Cols]
	rb := m.Data[b*m.Cols : (b+1)*m.Cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}
