package cmatrix

import (
	"math"
	"math/cmplx"
)

// Dot returns the inner product ⟨a, b⟩ = aᴴ·b.
//
//flexcore:noalloc
func Dot(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic("cmatrix: Dot length mismatch") //lint:ignore noalloc cold panic path: the panic argument escapes by construction
	}
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm of v.
//
//flexcore:noalloc
func Norm2(v []complex128) float64 {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return s
}

// Norm returns the Euclidean norm of v.
//
//flexcore:noalloc
func Norm(v []complex128) float64 { return math.Sqrt(Norm2(v)) }

// AXPY computes y ← y + a·x in place.
//
//flexcore:noalloc
func AXPY(a complex128, x, y []complex128) {
	if len(x) != len(y) {
		panic("cmatrix: AXPY length mismatch") //lint:ignore noalloc cold panic path: the panic argument escapes by construction
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// CopyVec returns a copy of v.
func CopyVec(v []complex128) []complex128 {
	c := make([]complex128, len(v))
	copy(c, v)
	return c
}

// SubVec returns a − b.
func SubVec(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("cmatrix: SubVec length mismatch")
	}
	c := make([]complex128, len(a))
	for i := range a {
		c[i] = a[i] - b[i]
	}
	return c
}
