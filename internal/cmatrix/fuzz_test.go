package cmatrix

import (
	"math"
	"math/rand/v2"
	"testing"
)

// fuzzMatrix deterministically materialises an m×n complex matrix from a
// seed, with entries scaled by scalePow ∈ [-3, 3] decades to stress both
// tiny and large magnitudes.
func fuzzMatrix(seed uint64, m, n int, scalePow int) *Matrix {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	scale := math.Pow(10, float64(scalePow))
	h := New(m, n)
	for i := range h.Data {
		h.Data[i] = complex(rng.NormFloat64()*scale, rng.NormFloat64()*scale)
	}
	return h
}

// checkQRInvariants verifies the QR contract on one decomposition:
// H·P = Q·R within a norm-relative tolerance, Q has orthonormal columns,
// R is upper triangular with a real non-negative diagonal, Perm is a
// permutation, and back-substitution through R is consistent
// (‖R·x − b‖ small relative to ‖R‖·‖x‖).
func checkQRInvariants(t *testing.T, h *Matrix, qr *QRResult) {
	t.Helper()
	m, n := h.Rows, h.Cols
	normH := frobenius(h)
	tol := 1e-10 * (normH + 1)

	// Perm is a permutation of 0..n-1.
	seen := make([]bool, n)
	for _, p := range qr.Perm {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("Perm %v is not a permutation", qr.Perm)
		}
		seen[p] = true
	}

	// R upper triangular, real non-negative diagonal.
	for i := 0; i < n; i++ {
		d := qr.R.At(i, i)
		if imag(d) != 0 || real(d) < 0 {
			t.Fatalf("R diagonal entry %d = %v not real non-negative", i, d)
		}
		for j := 0; j < i; j++ {
			if qr.R.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %v below the diagonal", i, j, qr.R.At(i, j))
			}
		}
	}

	// ‖Q·R − H·P‖_F ≤ tol.
	hp := h.PermuteCols(qr.Perm)
	diff := qr.Q.Mul(qr.R).Sub(hp)
	if err := frobenius(diff); err > tol {
		t.Fatalf("‖QR − HP‖ = %g above %g (‖H‖ = %g)", err, tol, normH)
	}

	// Orthonormal columns: ‖QᴴQ − I‖_F small. A column whose pivot
	// R(j,j) is negligible relative to ‖H‖ spans a numerically null
	// direction — its Q column is normalised rounding noise (or exactly
	// zero), and modified Gram-Schmidt then orthogonalises every LATER
	// column against that noise, polluting them too. So the
	// orthonormality promise only covers the prefix of columns processed
	// before the first dead pivot; the detectors guard the degenerate
	// rows via their rii > 0 checks. Reconstruction, triangularity and
	// back-substitution hold unconditionally and are checked above/below.
	wellPosed := n
	for j := 0; j < n; j++ {
		if real(qr.R.At(j, j)) <= 1e-7*(normH+math.SmallestNonzeroFloat64) {
			wellPosed = j
			break
		}
	}
	qhq := qr.Q.H().Mul(qr.Q)
	for i := 0; i < wellPosed; i++ {
		for j := 0; j < wellPosed; j++ {
			got := qhq.At(i, j)
			if i == j {
				if mag := real(got); math.Abs(mag-1) > 1e-10 {
					t.Fatalf("‖q_%d‖² = %g, want 1", i, mag)
				}
			} else if abs2(got) > 1e-16 {
				t.Fatalf("q_%d·q_%d = %v, not orthogonal", i, j, got)
			}
		}
	}
	_ = m

	// Back-substitution consistency on a well-scaled RHS.
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i%3)-1, float64(i%2))
	}
	b := qr.R.MulVec(x)
	solved, err := SolveUpperTriangular(qr.R, b)
	if err != nil {
		return // singular R is legal for rank-deficient inputs
	}
	resid := qr.R.MulVec(solved)
	var worst float64
	for i := range resid {
		worst = math.Max(worst, cmagnitude(resid[i]-b[i]))
	}
	scale := frobenius(qr.R) + 1
	if worst > 1e-9*scale {
		t.Fatalf("back-substitution residual %g above %g", worst, 1e-9*scale)
	}
}

func frobenius(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += abs2(v)
	}
	return math.Sqrt(s)
}

func abs2(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }

func cmagnitude(v complex128) float64 { return math.Sqrt(abs2(v)) }

// FuzzQR is the decomposition fuzz target of the conformance harness:
// for arbitrary seeds, shapes and magnitude scales it checks every QR
// variant (Householder, SQRD, FCSD ordering) against the reconstruction,
// orthonormality, triangularity and back-substitution invariants above.
func FuzzQR(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(4), int8(0))
	f.Add(uint64(2), uint8(6), uint8(3), int8(0))
	f.Add(uint64(3), uint8(2), uint8(2), int8(3))
	f.Add(uint64(4), uint8(8), uint8(8), int8(-3))
	f.Add(uint64(5), uint8(1), uint8(1), int8(0))
	f.Fuzz(func(t *testing.T, seed uint64, mRaw, nRaw uint8, scaleRaw int8) {
		n := int(nRaw)%6 + 1
		m := n + int(mRaw)%4 // Rows ≥ Cols, up to 3 extra receive dims
		scalePow := int(scaleRaw) % 4
		h := fuzzMatrix(seed, m, n, scalePow)

		checkQRInvariants(t, h, QR(h))
		checkQRInvariants(t, h, SortedQR(h, OrderNone))
		checkQRInvariants(t, h, SortedQR(h, OrderSQRD))
		for l := 0; l <= n; l++ {
			checkQRInvariants(t, h, SortedQRFCSD(h, l))
		}

		// A rank-deficient variant: duplicate a column when n permits.
		if n >= 2 {
			hd := h.Copy()
			for i := 0; i < m; i++ {
				hd.Set(i, 1, hd.At(i, 0))
			}
			checkQRInvariants(t, hd, SortedQR(hd, OrderSQRD))
		}
	})
}
