package cmatrix

import (
	"errors"
	"math"
	"testing"
)

func TestCholeskyReconstructs(t *testing.T) {
	rng := newRng(61)
	for _, n := range []int{1, 3, 8, 12} {
		// Build a Hermitian PD matrix A = BᴴB + I.
		b := randMatrix(rng, n+2, n)
		a := b.H().Mul(b).Add(Identity(n))
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !l.Mul(l.H()).EqualApprox(a, 1e-9) {
			t.Fatalf("n=%d: L·Lᴴ != A", n)
		}
		// L must be lower triangular with positive real diagonal.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("L(%d,%d) above diagonal", i, j)
				}
			}
			if d := l.At(i, i); imag(d) != 0 || real(d) <= 0 {
				t.Fatalf("L(%d,%d) = %v not positive real", i, i, d)
			}
		}
	}
}

func TestCholeskyExponentialCorrelation(t *testing.T) {
	// The exponential correlation matrix used for AP-side antenna
	// correlation must be positive definite for |ρ| < 1.
	n, rho := 12, 0.7
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, complex(math.Pow(rho, math.Abs(float64(i-j))), 0))
		}
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Mul(l.H()).EqualApprox(a, 1e-9) {
		t.Fatal("exponential correlation reconstruction failed")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}
