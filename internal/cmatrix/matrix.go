// Package cmatrix provides dense complex-valued linear algebra for MIMO
// detection: matrix products, Householder and sorted QR decompositions,
// matrix inversion, triangular solves and a one-sided Jacobi SVD.
//
// Matrices are row-major and sized for MIMO dimensions (tens of rows and
// columns), so the implementations favour clarity and numerical robustness
// over blocking or cache tricks.
package cmatrix

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense complex matrix stored in row-major order.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// New returns a zero-valued rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("cmatrix: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("cmatrix: FromRows requires a non-empty row set")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("cmatrix: FromRows rows have differing lengths")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Copy returns a deep copy of m.
func (m *Matrix) Copy() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// H returns the conjugate (Hermitian) transpose of m.
func (m *Matrix) H() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("cmatrix: Mul dimension mismatch %d×%d · %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	p := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 { //lint:ignore floatcmp sparsity skip: an exactly-zero factor contributes exactly nothing
				continue
			}
			rowB := b.Data[k*b.Cols : (k+1)*b.Cols]
			rowP := p.Data[i*p.Cols : (i+1)*p.Cols]
			for j := range rowB {
				rowP[j] += a * rowB[j]
			}
		}
	}
	return p
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []complex128) []complex128 {
	return m.MulVecInto(x, make([]complex128, m.Rows))
}

// MulVecInto computes m·x into y (len m.Rows) and returns y; the scratch
// variant used by allocation-free hot paths.
func (m *Matrix) MulVecInto(x, y []complex128) []complex128 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("cmatrix: MulVec dimension mismatch %d×%d · %d", m.Rows, m.Cols, len(x)))
	}
	if len(y) != m.Rows {
		panic(fmt.Sprintf("cmatrix: MulVecInto output length %d, want %d", len(y), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulHVec returns mᴴ·x without forming the transpose.
func (m *Matrix) MulHVec(x []complex128) []complex128 {
	return m.MulHVecInto(x, make([]complex128, m.Cols))
}

// MulHVecInto computes mᴴ·x into y (len m.Cols) and returns y.
//
//flexcore:noalloc
func (m *Matrix) MulHVecInto(x, y []complex128) []complex128 {
	if m.Rows != len(x) {
		panic(fmt.Sprintf("cmatrix: MulHVec dimension mismatch %d×%d ᴴ· %d", m.Rows, m.Cols, len(x))) //lint:ignore noalloc cold panic path, never taken in steady state
	}
	if len(y) != m.Cols {
		panic(fmt.Sprintf("cmatrix: MulHVecInto output length %d, want %d", len(y), m.Cols)) //lint:ignore noalloc cold panic path, never taken in steady state
	}
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			y[j] += cmplx.Conj(v) * xi
		}
	}
	return y
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.sameShape(b, "Add")
	c := m.Copy()
	for i, v := range b.Data {
		c.Data[i] += v
	}
	return c
}

// Sub returns m − b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.sameShape(b, "Sub")
	c := m.Copy()
	for i, v := range b.Data {
		c.Data[i] -= v
	}
	return c
}

// Scale returns a·m.
func (m *Matrix) Scale(a complex128) *Matrix {
	c := m.Copy()
	for i := range c.Data {
		c.Data[i] *= a
	}
	return c
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []complex128 {
	c := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		c[i] = m.Data[i*m.Cols+j]
	}
	return c
}

// SetCol assigns column j from v.
func (m *Matrix) SetCol(j int, v []complex128) {
	if len(v) != m.Rows {
		panic("cmatrix: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// PermuteCols returns a matrix whose column k is m's column perm[k].
func (m *Matrix) PermuteCols(perm []int) *Matrix {
	if len(perm) != m.Cols {
		panic("cmatrix: PermuteCols length mismatch")
	}
	p := New(m.Rows, m.Cols)
	for k, src := range perm {
		for i := 0; i < m.Rows; i++ {
			p.Data[i*p.Cols+k] = m.Data[i*m.Cols+src]
		}
	}
	return p
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest element magnitude.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// EqualApprox reports whether m and b agree elementwise within tol.
func (m *Matrix) EqualApprox(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if cmplx.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&sb, "%8.4f%+8.4fi ", real(v), imag(v))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (m *Matrix) sameShape(b *Matrix, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("cmatrix: %s shape mismatch %d×%d vs %d×%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}
