package cmatrix

// This file holds the two scalar kernels every tree-search detector
// shares. They used to be restated locally in internal/detector and
// internal/core; keeping the single implementation here (below the
// packages that specialise on top of it) means a change to the
// interference-cancellation or PED arithmetic lands in exactly one
// place.

// CancelRow computes the interference-cancelled observation of row i of
// an upper-triangular system: b_i = ȳ(i) − Σ_{j>i} R(i,j)·sym(j), where
// sym holds the already-decided symbol values for rows > i (sym may be
// longer than R when reused as scratch; only the first R.Cols entries
// are read). r must be upper triangular (entries below the diagonal are
// never read).
//
//flexcore:noalloc
func CancelRow(r *Matrix, ybar, sym []complex128, i int) complex128 {
	b := ybar[i]
	n := r.Cols
	// Reslice both operands to the row tail j ∈ (i, n) and pin sym to the
	// row's length, so the loop body indexes with a range variable into
	// slices of provably equal length: the compiler drops both
	// per-iteration bounds checks (verified with -gcflags=-d=ssa/check_bce;
	// see DESIGN.md §11.5). Only the three one-time reslice checks remain.
	row := r.Data[i*n+i+1 : i*n+n]
	tail := sym[i+1 : n]
	tail = tail[:len(row)]
	for j, rj := range row {
		b -= rj * tail[j]
	}
	return b
}

// PEDIncrement returns the partial-Euclidean-distance increment at a
// tree level for candidate symbol value q given the interference-
// cancelled observation b and the real diagonal entry rii:
// |b − rii·q|².
//
//flexcore:noalloc
func PEDIncrement(b complex128, rii float64, q complex128) float64 {
	dr := real(b) - rii*real(q)
	di := imag(b) - rii*imag(q)
	return dr*dr + di*di
}
