package cmatrix

import (
	"errors"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestInverseReconstructsIdentity(t *testing.T) {
	rng := newRng(21)
	for _, n := range []int{1, 2, 4, 8, 12} {
		a := randMatrix(rng, n, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !a.Mul(inv).EqualApprox(Identity(n), 1e-9) {
			t.Fatalf("n=%d: A·A⁻¹ != I", n)
		}
		if !inv.Mul(a).EqualApprox(Identity(n), 1e-9) {
			t.Fatalf("n=%d: A⁻¹·A != I", n)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := New(3, 3) // all zeros
	if _, err := Inverse(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	// Rank-1 matrix.
	b := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := Inverse(b); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular for rank-1, got %v", err)
	}
}

func TestSolveUpperTriangular(t *testing.T) {
	rng := newRng(22)
	h := randMatrix(rng, 6, 6)
	qr := QR(h)
	x := randMatrix(rng, 6, 1).Col(0)
	b := qr.R.MulVec(x)
	got, err := SolveUpperTriangular(qr.R, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("solve mismatch at %d: %v vs %v", i, got[i], x[i])
		}
	}
}

func TestSolveUpperTriangularSingular(t *testing.T) {
	r := New(2, 2)
	r.Set(0, 0, 1)
	// r(1,1) = 0 → singular.
	if _, err := SolveUpperTriangular(r, []complex128{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestZFFilterInvertsChannel(t *testing.T) {
	rng := newRng(23)
	for _, dims := range [][2]int{{8, 8}, {12, 8}, {12, 12}} {
		h := randMatrix(rng, dims[0], dims[1])
		w, err := PseudoInverseZF(h)
		if err != nil {
			t.Fatal(err)
		}
		if !w.Mul(h).EqualApprox(Identity(dims[1]), 1e-8) {
			t.Fatalf("%v: W·H != I", dims)
		}
	}
}

func TestMMSEFilterLimits(t *testing.T) {
	rng := newRng(24)
	h := randMatrix(rng, 8, 8)
	// As σ² → 0 the MMSE filter approaches the ZF filter.
	wm, err := MMSEFilter(h, 1e-12, 1)
	if err != nil {
		t.Fatal(err)
	}
	wz, err := PseudoInverseZF(h)
	if err != nil {
		t.Fatal(err)
	}
	if !wm.EqualApprox(wz, 1e-5) {
		t.Fatal("MMSE(σ²→0) != ZF")
	}
	// With huge noise the filter shrinks toward zero.
	wh, err := MMSEFilter(h, 1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wh.MaxAbs() > 1e-6 {
		t.Fatalf("MMSE(σ²→∞) not shrinking: max %g", wh.MaxAbs())
	}
}

func TestMMSEHandlesSingularChannel(t *testing.T) {
	// ZF fails on a singular channel; MMSE regularisation must not.
	h := FromRows([][]complex128{{1, 1}, {1, 1}})
	if _, err := PseudoInverseZF(h); err == nil {
		t.Fatal("ZF on singular channel should fail")
	}
	if _, err := MMSEFilter(h, 0.1, 1); err != nil {
		t.Fatalf("MMSE on singular channel failed: %v", err)
	}
}

func TestInverseQuickProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := newRng(seed)
		n := 1 + int(seed%8)
		a := randMatrix(r, n, n)
		inv, err := Inverse(a)
		if err != nil {
			return true // singular draws are legal
		}
		return a.Mul(inv).EqualApprox(Identity(n), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
