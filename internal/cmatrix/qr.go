package cmatrix

import (
	"math"
	"math/cmplx"
)

// QRResult holds a (possibly column-permuted) thin QR decomposition
// H·P = Q·R, where P permutes columns such that the k-th column of the
// factored matrix is column Perm[k] of the input. Q is Rows×Cols with
// orthonormal columns, R is Cols×Cols upper triangular with real,
// non-negative diagonal.
type QRResult struct {
	Q    *Matrix
	R    *Matrix
	Perm []int
}

// Unpermute scatters a detection result x (indexed by factored-column
// position) back to original column order.
func (qr *QRResult) Unpermute(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for k, src := range qr.Perm {
		out[src] = x[k]
	}
	return out
}

// UnpermuteInts scatters an int-valued per-stream result back to original
// column order (used for symbol indices).
func (qr *QRResult) UnpermuteInts(x []int) []int {
	return qr.UnpermuteIntsInto(x, make([]int, len(x)))
}

// UnpermuteIntsInto is UnpermuteInts into a caller-owned buffer (len ≥
// len(Perm)); the scratch variant used by allocation-free hot paths.
//
//flexcore:noalloc
func (qr *QRResult) UnpermuteIntsInto(x, out []int) []int {
	for k, src := range qr.Perm {
		out[src] = x[k]
	}
	return out
}

// Ybar returns ȳ = Qᴴ·y, the rotated receive vector used by tree-search
// detectors.
func (qr *QRResult) Ybar(y []complex128) []complex128 { return qr.Q.MulHVec(y) }

// YbarInto computes ȳ = Qᴴ·y into a caller-owned buffer of length Q.Cols.
//
//flexcore:noalloc
func (qr *QRResult) YbarInto(y, out []complex128) []complex128 {
	return qr.Q.MulHVecInto(y, out)
}

// QR computes the thin Householder QR decomposition of h (Rows ≥ Cols)
// with identity permutation. Householder reflections give the best
// orthogonality of the three variants and are used wherever no column
// ordering is needed.
func QR(h *Matrix) *QRResult {
	m, n := h.Rows, h.Cols
	if m < n {
		panic("cmatrix: QR requires Rows ≥ Cols")
	}
	r := h.Copy()
	// Accumulate Q by applying the reflectors to an identity block.
	q := New(m, m)
	for i := 0; i < m; i++ {
		q.Data[i*m+i] = 1
	}
	v := make([]complex128, m)
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			x := r.At(i, k)
			norm += real(x)*real(x) + imag(x)*imag(x)
		}
		norm = math.Sqrt(norm)
		if norm == 0 { //lint:ignore floatcmp an exactly-zero column norm has no reflector; any nonzero norm is usable
			continue
		}
		akk := r.At(k, k)
		alpha := complex(-norm, 0)
		if akk != 0 { //lint:ignore floatcmp division guard for the phase factor akk/|akk|
			alpha = -complex(norm, 0) * akk / complex(cmplx.Abs(akk), 0)
		}
		var vnorm2 float64
		for i := k; i < m; i++ {
			v[i] = r.At(i, k)
		}
		v[k] -= alpha
		for i := k; i < m; i++ {
			vnorm2 += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
		}
		if vnorm2 == 0 { //lint:ignore floatcmp division guard: β = 2/vnorm2
			continue
		}
		beta := complex(2/vnorm2, 0)
		// r ← (I − β v vᴴ) r for the trailing block.
		for j := k; j < n; j++ {
			var s complex128
			for i := k; i < m; i++ {
				s += cmplx.Conj(v[i]) * r.At(i, j)
			}
			s *= beta
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-s*v[i])
			}
		}
		// q ← q (I − β v vᴴ); accumulating on the right builds Q.
		for i := 0; i < m; i++ {
			var s complex128
			for j := k; j < m; j++ {
				s += q.At(i, j) * v[j]
			}
			s *= beta
			for j := k; j < m; j++ {
				q.Set(i, j, q.At(i, j)-s*cmplx.Conj(v[j]))
			}
		}
	}
	// Thin factors, with the R diagonal rotated to be real non-negative:
	// H = Q R = (Q D)(Dᴴ R) with D = diag(phase_j), so column j of Q picks
	// up phase_j and row j of R picks up its conjugate.
	phases := make([]complex128, n)
	for j := 0; j < n; j++ {
		d := r.At(j, j)
		phases[j] = 1
		if d != 0 { //lint:ignore floatcmp division guard for the phase factor d/|d|
			phases[j] = d / complex(cmplx.Abs(d), 0)
		}
	}
	qt := New(m, n)
	rt := New(n, n)
	for i := 0; i < n; i++ {
		rt.Set(i, i, complex(cmplx.Abs(r.At(i, i)), 0))
		for j := i + 1; j < n; j++ {
			rt.Set(i, j, cmplx.Conj(phases[i])*r.At(i, j))
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			qt.Set(i, j, q.At(i, j)*phases[j])
		}
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return &QRResult{Q: qt, R: rt, Perm: perm}
}

// Ordering selects the column-pivoting rule of SortedQR.
type Ordering int

const (
	// OrderNone performs no pivoting (plain modified Gram-Schmidt).
	OrderNone Ordering = iota
	// OrderSQRD is the sorted QR of Wübben et al. [13]: at every step the
	// remaining column with the smallest residual norm is factored next.
	// Because tree-search and SIC detection decide the *last* factored
	// column first, this leaves the strongest streams for the levels that
	// are detected first.
	OrderSQRD
	// OrderFCSD is the Barbero–Thompson FCSD ordering [4] parameterised by
	// the number of fully-expanded levels L (see SortedQRFCSD): the L
	// streams with the worst residual norms are pushed to the levels the
	// FCSD fully expands, and the rest are ordered as in OrderSQRD.
	OrderFCSD
)

// SortedQR computes a thin QR decomposition with the given column
// ordering using modified Gram-Schmidt with column pivoting.
// For OrderFCSD use SortedQRFCSD, which takes the expansion depth.
func SortedQR(h *Matrix, ord Ordering) *QRResult {
	switch ord {
	case OrderNone:
		return sortedQR(h, func(step, n int) pickRule { return pickFirst })
	case OrderSQRD:
		return sortedQR(h, func(step, n int) pickRule { return pickMin })
	case OrderFCSD:
		panic("cmatrix: use SortedQRFCSD for the FCSD ordering")
	default:
		panic("cmatrix: unknown ordering")
	}
}

// SortedQRFCSD computes the FCSD ordering of Barbero–Thompson [4] for a
// fixed-complexity detector that fully expands the top fullExpand levels:
// the weakest streams are deferred to the last factored columns (the
// levels detected first and fully expanded), removing their influence on
// the error rate; the remaining columns follow the SQRD rule.
func SortedQRFCSD(h *Matrix, fullExpand int) *QRResult {
	n := h.Cols
	if fullExpand < 0 || fullExpand > n {
		panic("cmatrix: SortedQRFCSD expansion depth out of range")
	}
	return sortedQR(h, func(step, cols int) pickRule {
		if step < cols-fullExpand {
			// Early positions are detected last: give them the strongest
			// of the remaining columns so the weak ones land in the
			// fully-expanded levels.
			return pickMax
		}
		return pickMin
	})
}

type pickRule int

const (
	pickFirst pickRule = iota
	pickMin
	pickMax
)

func sortedQR(h *Matrix, ruleAt func(step, cols int) pickRule) *QRResult {
	var ws QRWorkspace
	return ws.sortedQRInto(h, ruleAt, &QRResult{})
}

// QRWorkspace holds the scratch buffers of a sorted QR decomposition so
// repeated decompositions (one per OFDM subcarrier per packet at the
// channel rate) are allocation-free in steady state. A workspace is not
// safe for concurrent use; keep one per goroutine. The zero value is
// ready to use.
type QRWorkspace struct {
	cols    [][]complex128
	colData []complex128
	norms   []float64
	qi      []complex128
}

// SortedQRInto is SortedQR writing the factors into a caller-owned
// QRResult whose buffers are reused when the dimensions match (grown
// otherwise), using the workspace's scratch. It returns out.
//
//flexcore:noalloc
func (ws *QRWorkspace) SortedQRInto(h *Matrix, ord Ordering, out *QRResult) *QRResult {
	switch ord {
	case OrderNone:
		return ws.sortedQRInto(h, func(step, n int) pickRule { return pickFirst }, out)
	case OrderSQRD:
		return ws.sortedQRInto(h, func(step, n int) pickRule { return pickMin }, out)
	case OrderFCSD:
		panic("cmatrix: use SortedQRFCSD for the FCSD ordering") //lint:ignore noalloc cold panic path: the panic argument escapes by construction
	default:
		panic("cmatrix: unknown ordering") //lint:ignore noalloc cold panic path: the panic argument escapes by construction
	}
}

// ensure grows the workspace scratch to an m×n decomposition.
func (ws *QRWorkspace) ensure(m, n int) {
	if cap(ws.colData) < m*n {
		ws.colData = make([]complex128, m*n)
		ws.cols = make([][]complex128, n)
		ws.norms = make([]float64, n)
		ws.qi = make([]complex128, m)
	}
	ws.colData = ws.colData[:m*n]
	if cap(ws.cols) < n {
		ws.cols = make([][]complex128, n)
		ws.norms = make([]float64, n)
	}
	if cap(ws.qi) < m {
		ws.qi = make([]complex128, m)
	}
	ws.cols = ws.cols[:n]
	ws.norms = ws.norms[:n]
	ws.qi = ws.qi[:m]
}

// ensureResult points out's factors at reusable buffers of the right
// shape, zeroing reused storage (R's strict lower triangle must read as
// zero for consumers that scan the full matrix).
func ensureResult(out *QRResult, m, n int) {
	if out.Q == nil || out.Q.Rows != m || out.Q.Cols != n {
		out.Q = New(m, n)
	}
	if out.R == nil || out.R.Rows != n || out.R.Cols != n {
		out.R = New(n, n)
	} else {
		clear(out.R.Data)
	}
	if cap(out.Perm) < n {
		out.Perm = make([]int, n)
	}
	out.Perm = out.Perm[:n]
}

// sortedQRInto is the shared modified-Gram-Schmidt kernel behind the
// SortedQR entry points: workspace-pooled, allocation-free once the
// workspace and result have their steady-state shape.
//
//flexcore:noalloc
func (ws *QRWorkspace) sortedQRInto(h *Matrix, ruleAt func(step, cols int) pickRule, out *QRResult) *QRResult {
	m, n := h.Rows, h.Cols
	if m < n {
		panic("cmatrix: SortedQR requires Rows ≥ Cols") //lint:ignore noalloc cold panic path: the panic argument escapes by construction
	}
	ws.ensure(m, n)
	ensureResult(out, m, n)
	// Working copy of the columns and their residual squared norms.
	cols := ws.cols
	norms := ws.norms
	for j := 0; j < n; j++ {
		c := ws.colData[j*m : (j+1)*m]
		for t := 0; t < m; t++ {
			c[t] = h.Data[t*n+j]
		}
		cols[j] = c
		norms[j] = Norm2(c)
	}
	perm := out.Perm
	for i := range perm {
		perm[i] = i
	}
	q, r := out.Q, out.R
	for i := 0; i < n; i++ {
		// Pivot selection over the not-yet-factored columns.
		k := i
		switch ruleAt(i, n) {
		case pickMin:
			for j := i + 1; j < n; j++ {
				if norms[j] < norms[k] {
					k = j
				}
			}
		case pickMax:
			for j := i + 1; j < n; j++ {
				if norms[j] > norms[k] {
					k = j
				}
			}
		}
		if k != i {
			cols[i], cols[k] = cols[k], cols[i]
			norms[i], norms[k] = norms[k], norms[i]
			perm[i], perm[k] = perm[k], perm[i]
			// Already-computed R entries travel with their columns.
			for row := 0; row < i; row++ {
				r.Data[row*n+i], r.Data[row*n+k] = r.Data[row*n+k], r.Data[row*n+i]
			}
		}
		// Re-computing the norm avoids drift from the running updates.
		rii := Norm(cols[i])
		r.Set(i, i, complex(rii, 0))
		qi := ws.qi
		if rii > 0 {
			inv := complex(1/rii, 0)
			for t := 0; t < m; t++ {
				qi[t] = cols[i][t] * inv
			}
		} else {
			clear(qi)
		}
		q.SetCol(i, qi) //lint:ignore noalloc cold panic path of the inlined SetCol length check
		for j := i + 1; j < n; j++ {
			rij := Dot(qi, cols[j]) //lint:ignore noalloc cold panic path of the inlined Dot length check
			r.Set(i, j, rij)
			AXPY(-rij, qi, cols[j]) //lint:ignore noalloc cold panic path of the inlined AXPY length check
			norms[j] -= real(rij)*real(rij) + imag(rij)*imag(rij)
			if norms[j] < 0 {
				norms[j] = 0
			}
		}
	}
	return out
}
