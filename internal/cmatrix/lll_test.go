package cmatrix

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestCLLLUnimodularTransform(t *testing.T) {
	rng := newRng(71)
	for _, n := range []int{2, 4, 8, 12} {
		g := randMatrix(rng, n, n)
		b, tr := CLLL(g, 0.75)
		if !IsUnimodular(tr, 1e-9) {
			t.Fatalf("n=%d: T not unimodular", n)
		}
		// B must equal G·T exactly (up to float error).
		if !g.Mul(tr).EqualApprox(b, 1e-9) {
			t.Fatalf("n=%d: B != G·T", n)
		}
	}
}

func TestCLLLImprovesOrthogonality(t *testing.T) {
	rng := newRng(72)
	improved := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		g := randMatrix(rng, 8, 8)
		before := OrthogonalityDefect(g)
		b, _ := CLLL(g, 0.75)
		after := OrthogonalityDefect(b)
		if after <= before*1.0001 {
			improved++
		}
		if after > before*1.5 {
			t.Fatalf("trial %d: reduction badly worsened the basis (%v → %v)", i, before, after)
		}
	}
	if improved < trials*3/4 {
		t.Fatalf("reduction improved only %d/%d bases", improved, trials)
	}
}

func TestCLLLPreservesLattice(t *testing.T) {
	// Any Gaussian-integer combination of the reduced basis must be a
	// Gaussian-integer combination of the original one and vice versa:
	// check by mapping unit vectors through T and T⁻¹ (via inverse).
	rng := newRng(73)
	g := randMatrix(rng, 6, 6)
	_, tr := CLLL(g, 0.75)
	inv, err := Inverse(tr)
	if err != nil {
		t.Fatal(err)
	}
	// T⁻¹ must also be Gaussian-integer (unimodularity).
	for _, v := range inv.Data {
		if cmplx.Abs(v-roundGaussian(v)) > 1e-7 {
			t.Fatalf("T⁻¹ entry %v not a Gaussian integer", v)
		}
	}
}

func TestCLLLIdentityStaysPut(t *testing.T) {
	b, tr := CLLL(Identity(5), 0.75)
	if !b.EqualApprox(Identity(5), 1e-12) {
		t.Fatal("identity basis should be unchanged")
	}
	if !tr.EqualApprox(Identity(5), 1e-12) {
		t.Fatal("transform should be identity")
	}
}

func TestDeterminant(t *testing.T) {
	a := FromRows([][]complex128{{2, 0}, {0, 3i}})
	if d := determinant(a); cmplx.Abs(d-6i) > 1e-12 {
		t.Fatalf("det = %v, want 6i", d)
	}
	if d := determinant(New(3, 3)); d != 0 {
		t.Fatalf("det of zero matrix = %v", d)
	}
	rng := newRng(74)
	m := randMatrix(rng, 5, 5)
	// |det| must match the product of QR diagonal entries.
	qr := QR(m)
	want := 1.0
	for i := 0; i < 5; i++ {
		want *= real(qr.R.At(i, i))
	}
	if math.Abs(cmplx.Abs(determinant(m))-want) > 1e-9*want {
		t.Fatalf("|det| %v, want %v", cmplx.Abs(determinant(m)), want)
	}
}
