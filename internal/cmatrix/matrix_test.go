package cmatrix

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

// randMatrix returns an m×n matrix with standard complex Gaussian entries.
func randMatrix(rng *rand.Rand, m, n int) *Matrix {
	a := New(m, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * complex(math.Sqrt(0.5), 0)
	}
	return a
}

func newRng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)) }

func TestIdentityMul(t *testing.T) {
	rng := newRng(1)
	a := randMatrix(rng, 4, 4)
	if got := Identity(4).Mul(a); !got.EqualApprox(a, 1e-12) {
		t.Fatalf("I·A != A")
	}
	if got := a.Mul(Identity(4)); !got.EqualApprox(a, 1e-12) {
		t.Fatalf("A·I != A")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := newRng(2)
	a := randMatrix(rng, 5, 3)
	x := randMatrix(rng, 3, 1)
	want := a.Mul(x)
	got := a.MulVec(x.Col(0))
	for i := range got {
		if cmplx.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec mismatch at %d: %v vs %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestHermitianInvolution(t *testing.T) {
	rng := newRng(3)
	a := randMatrix(rng, 4, 6)
	if !a.H().H().EqualApprox(a, 0) {
		t.Fatal("(Aᴴ)ᴴ != A")
	}
}

func TestMulHVecMatchesExplicitTranspose(t *testing.T) {
	rng := newRng(4)
	a := randMatrix(rng, 6, 4)
	y := randMatrix(rng, 6, 1).Col(0)
	want := a.H().MulVec(y)
	got := a.MulHVec(y)
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulHVec mismatch at %d", i)
		}
	}
}

func TestPermuteCols(t *testing.T) {
	a := FromRows([][]complex128{{1, 2, 3}, {4, 5, 6}})
	p := a.PermuteCols([]int{2, 0, 1})
	want := FromRows([][]complex128{{3, 1, 2}, {6, 4, 5}})
	if !p.EqualApprox(want, 0) {
		t.Fatalf("PermuteCols wrong:\n%v", p)
	}
}

func TestAddSubScale(t *testing.T) {
	rng := newRng(5)
	a := randMatrix(rng, 3, 3)
	b := randMatrix(rng, 3, 3)
	if !a.Add(b).Sub(b).EqualApprox(a, 1e-12) {
		t.Fatal("A+B-B != A")
	}
	if !a.Scale(2).Sub(a).EqualApprox(a, 1e-12) {
		t.Fatal("2A-A != A")
	}
}

func TestDotNormConsistency(t *testing.T) {
	rng := newRng(6)
	v := randMatrix(rng, 7, 1).Col(0)
	if math.Abs(real(Dot(v, v))-Norm2(v)) > 1e-12 {
		t.Fatal("⟨v,v⟩ != ||v||²")
	}
	if math.Abs(imag(Dot(v, v))) > 1e-12 {
		t.Fatal("⟨v,v⟩ not real")
	}
}

func TestAXPYSubVec(t *testing.T) {
	rng := newRng(7)
	x := randMatrix(rng, 5, 1).Col(0)
	y := CopyVec(x)
	AXPY(-1, x, y)
	if Norm(y) > 1e-12 {
		t.Fatal("y - y != 0")
	}
	d := SubVec(x, x)
	if Norm(d) != 0 {
		t.Fatal("x - x != 0")
	}
}

func TestColSetColRoundTrip(t *testing.T) {
	rng := newRng(8)
	a := randMatrix(rng, 4, 4)
	c := a.Col(2)
	b := a.Copy()
	b.SetCol(2, c)
	if !a.EqualApprox(b, 0) {
		t.Fatal("SetCol(Col) changed the matrix")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := FromRows([][]complex128{{3, 0}, {0, 4i}})
	if math.Abs(a.FrobeniusNorm()-5) > 1e-12 {
		t.Fatalf("Frobenius norm = %v, want 5", a.FrobeniusNorm())
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	a := New(2, 3)
	b := New(2, 3)
	a.Mul(b)
}
