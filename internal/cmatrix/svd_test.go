package cmatrix

import (
	"math"
	"testing"
)

func TestSingularValuesDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, complex(0, -5)) // magnitude 5
	a.Set(2, 2, 1)
	sv := SingularValues(a)
	want := []float64{5, 3, 1}
	for i := range want {
		if math.Abs(sv[i]-want[i]) > 1e-9 {
			t.Fatalf("σ[%d] = %v, want %v", i, sv[i], want[i])
		}
	}
}

func TestSingularValuesFrobenius(t *testing.T) {
	rng := newRng(31)
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {12, 8}, {8, 12}} {
		a := randMatrix(rng, dims[0], dims[1])
		sv := SingularValues(a)
		var sum float64
		for _, s := range sv {
			sum += s * s
		}
		f := a.FrobeniusNorm()
		if math.Abs(sum-f*f) > 1e-8*(1+f*f) {
			t.Fatalf("%v: Σσ² = %v, ||A||F² = %v", dims, sum, f*f)
		}
	}
}

func TestSingularValuesMatchEigsOfGram(t *testing.T) {
	// For A = QR with known R, σ(A) = σ(R); check via the 2×2 closed form.
	a := FromRows([][]complex128{{2, 1}, {0, 1}})
	sv := SingularValues(a)
	// Gram matrix eigenvalues of [[4,2],[2,2]]: 3±√5.
	w1 := math.Sqrt(3 + math.Sqrt(5))
	w2 := math.Sqrt(3 - math.Sqrt(5))
	if math.Abs(sv[0]-w1) > 1e-9 || math.Abs(sv[1]-w2) > 1e-9 {
		t.Fatalf("σ = %v, want [%v %v]", sv, w1, w2)
	}
}

func TestCond2(t *testing.T) {
	if c := Cond2(Identity(6)); math.Abs(c-1) > 1e-9 {
		t.Fatalf("cond(I) = %v", c)
	}
	// Singular matrix → +Inf.
	z := New(3, 3)
	if c := Cond2(z); !math.IsInf(c, 1) {
		t.Fatalf("cond(0) = %v, want +Inf", c)
	}
	// Unitary Q from a QR factorisation is perfectly conditioned.
	rng := newRng(32)
	h := randMatrix(rng, 8, 8)
	q := QR(h).Q
	if c := Cond2(q); math.Abs(c-1) > 1e-6 {
		t.Fatalf("cond(Q) = %v, want 1", c)
	}
}

func TestCondOrderingDetectsBadChannels(t *testing.T) {
	rng := newRng(33)
	good := randMatrix(rng, 8, 8)
	bad := good.Copy()
	// Make two columns nearly parallel.
	for i := 0; i < 8; i++ {
		bad.Set(i, 1, bad.At(i, 0)+1e-3*bad.At(i, 1))
	}
	if Cond2(bad) < 10*Cond2(good) {
		t.Fatalf("conditioning not detected: good %v bad %v", Cond2(good), Cond2(bad))
	}
}
