package cmatrix

import (
	"math"
	"math/cmplx"
)

// roundGaussian rounds a complex number to the nearest Gaussian integer.
func roundGaussian(v complex128) complex128 {
	return complex(math.Round(real(v)), math.Round(imag(v)))
}

// CLLL performs complex Lenstra–Lenstra–Lovász lattice basis reduction
// (Gan, Ling, Mow — the paper's related-work reference [15]) on the
// columns of g with parameter delta ∈ (0.5, 1]. It returns the reduced
// basis B = g·T and the unimodular Gaussian-integer transform T.
//
// The implementation is the textbook iterate-until-stable formulation
// (fresh Gram-Schmidt per round): simple and robust, with the O(Nt⁴)-ish
// sequential cost the paper cites as the reason lattice reduction does
// not fit large MIMO APs — which the ablation benchmarks measure.
func CLLL(g *Matrix, delta float64) (b, t *Matrix) {
	n := g.Cols
	b = g.Copy()
	t = Identity(n)

	cols := func(m *Matrix) [][]complex128 {
		out := make([][]complex128, n)
		for j := 0; j < n; j++ {
			out[j] = m.Col(j)
		}
		return out
	}
	setCols := func(m *Matrix, c [][]complex128) {
		for j := 0; j < n; j++ {
			m.SetCol(j, c[j])
		}
	}

	bc := cols(b)
	tc := cols(t)

	// gramSchmidt returns the orthogonalised squared norms and the mu
	// coefficients of the current basis.
	gramSchmidt := func() (norms []float64, mu [][]complex128) {
		star := make([][]complex128, n)
		norms = make([]float64, n)
		mu = make([][]complex128, n)
		for i := 0; i < n; i++ {
			mu[i] = make([]complex128, n)
			star[i] = CopyVec(bc[i])
			for j := 0; j < i; j++ {
				if norms[j] == 0 { //lint:ignore floatcmp division guard for a degenerate Gram-Schmidt vector
					continue
				}
				mu[i][j] = Dot(star[j], bc[i]) / complex(norms[j], 0)
				AXPY(-mu[i][j], star[j], star[i])
			}
			norms[i] = Norm2(star[i])
		}
		return norms, mu
	}

	const maxRounds = 1000
	for round := 0; round < maxRounds; round++ {
		changed := false
		norms, mu := gramSchmidt()
		// Size reduction.
		for k := 1; k < n; k++ {
			for j := k - 1; j >= 0; j-- {
				q := roundGaussian(mu[k][j])
				if q == 0 { //lint:ignore floatcmp q is an exact Gaussian integer from rounding; zero means a no-op size reduction
					continue
				}
				AXPY(-q, bc[j], bc[k])
				AXPY(-q, tc[j], tc[k])
				changed = true
				// Keep mu approximately current for the remaining j.
				for l := 0; l <= j; l++ {
					mu[k][l] -= q * mu[j][l]
				}
			}
		}
		if changed {
			norms, mu = gramSchmidt()
		}
		// Lovász condition; swap the first violating pair.
		swapped := false
		for k := 1; k < n; k++ {
			m2 := real(mu[k][k-1])*real(mu[k][k-1]) + imag(mu[k][k-1])*imag(mu[k][k-1])
			if norms[k] < (delta-m2)*norms[k-1] {
				bc[k-1], bc[k] = bc[k], bc[k-1]
				tc[k-1], tc[k] = tc[k], tc[k-1]
				swapped = true
				break
			}
		}
		if !changed && !swapped {
			break
		}
	}
	setCols(b, bc)
	setCols(t, tc)
	return b, t
}

// OrthogonalityDefect returns Π‖b_i‖ / |det(BᴴB)|^{1/2}, a standard
// reduction-quality measure (1 = orthogonal basis).
func OrthogonalityDefect(b *Matrix) float64 {
	prod := 1.0
	for j := 0; j < b.Cols; j++ {
		prod *= Norm(b.Col(j))
	}
	// Volume via the R factor of a QR decomposition.
	qr := QR(b)
	vol := 1.0
	for i := 0; i < b.Cols; i++ {
		vol *= real(qr.R.At(i, i))
	}
	if vol == 0 { //lint:ignore floatcmp division guard: exactly-zero volume means a rank-deficient basis
		return math.Inf(1)
	}
	return prod / vol
}

// IsUnimodular reports whether t has Gaussian-integer entries and unit
// determinant magnitude (so t⁻¹ is also a Gaussian-integer matrix).
func IsUnimodular(t *Matrix, tol float64) bool {
	for _, v := range t.Data {
		if cmplx.Abs(v-roundGaussian(v)) > tol {
			return false
		}
	}
	d := determinant(t)
	return math.Abs(cmplx.Abs(d)-1) < tol
}

// determinant computes det(m) by LU elimination with partial pivoting.
func determinant(m *Matrix) complex128 {
	if m.Rows != m.Cols {
		panic("cmatrix: determinant requires a square matrix")
	}
	n := m.Rows
	a := m.Copy()
	det := complex(1, 0)
	for col := 0; col < n; col++ {
		p := col
		best := cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a.At(r, col)); v > best {
				best, p = v, r
			}
		}
		if best == 0 { //lint:ignore floatcmp an exactly-zero best pivot means an exactly-zero determinant
			return 0
		}
		if p != col {
			swapRows(a, p, col)
			det = -det
		}
		piv := a.At(col, col)
		det *= piv
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / piv
			if f == 0 { //lint:ignore floatcmp exact-zero entries need no elimination; skipping them is exact
				continue
			}
			for j := col; j < n; j++ {
				a.Data[r*n+j] -= f * a.Data[col*n+j]
			}
		}
	}
	return det
}
