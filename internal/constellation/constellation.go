// Package constellation implements square QAM constellations with Gray bit
// mapping, unit average symbol energy, nearest-symbol slicing and the
// FlexCore k-th-closest-symbol lookup of Husmann et al. (NSDI '17, §3.2):
// a per-triangle predefined symbol ordering that finds the symbol with the
// k-th smallest Euclidean distance to an observation without computing or
// sorting all |Q| distances.
package constellation

import (
	"fmt"
	"math"
)

// Constellation is a square M-QAM constellation (M ∈ {4, 16, 64, 256,
// 1024}) normalised to unit average symbol energy. Symbol indices are
// grid coordinates iy·side + ix with ix, iy ∈ [0, side).
type Constellation struct {
	m      int     // constellation order |Q|
	bits   int     // log2 m
	side   int     // √m points per axis
	scale  float64 // half the minimum inter-symbol distance
	points []complex128
	// Per-axis Gray maps between level index and bit pattern.
	grayFwd []int // level index → gray code
	grayInv []int // gray code → level index
	lut     *orderLUT
}

// New returns the M-QAM constellation for m ∈ {4, 16, 64, 256, 1024}.
func New(m int) (*Constellation, error) {
	side := 0
	switch m {
	case 4, 16, 64, 256, 1024:
		side = int(math.Round(math.Sqrt(float64(m))))
	default:
		return nil, fmt.Errorf("constellation: unsupported order %d (want 4, 16, 64, 256 or 1024)", m)
	}
	c := &Constellation{
		m:     m,
		bits:  bitsFor(m),
		side:  side,
		scale: math.Sqrt(3 / (2 * (float64(m) - 1))),
	}
	c.points = make([]complex128, m)
	for iy := 0; iy < side; iy++ {
		for ix := 0; ix < side; ix++ {
			c.points[iy*side+ix] = complex(c.level(ix), c.level(iy))
		}
	}
	c.grayFwd = make([]int, side)
	c.grayInv = make([]int, side)
	for i := 0; i < side; i++ {
		g := i ^ (i >> 1)
		c.grayFwd[i] = g
		c.grayInv[g] = i
	}
	c.lut = buildOrderLUT(m, side)
	return c, nil
}

// MustNew is New for known-valid orders; it panics otherwise.
func MustNew(m int) *Constellation {
	c, err := New(m)
	if err != nil {
		panic(err)
	}
	return c
}

func bitsFor(m int) int {
	b := 0
	for v := m; v > 1; v >>= 1 {
		b++
	}
	return b
}

// level maps an axis index (possibly outside [0, side)) to its PAM level.
func (c *Constellation) level(i int) float64 {
	return float64(2*i-c.side+1) * c.scale
}

// Size returns the constellation order |Q|.
func (c *Constellation) Size() int { return c.m }

// BitsPerSymbol returns log2 |Q|.
func (c *Constellation) BitsPerSymbol() int { return c.bits }

// Side returns the per-axis point count √|Q|.
func (c *Constellation) Side() int { return c.side }

// MinDist returns the minimum inter-symbol distance.
func (c *Constellation) MinDist() float64 { return 2 * c.scale }

// Scale returns half the minimum distance (the PAM level unit).
func (c *Constellation) Scale() float64 { return c.scale }

// Point returns the complex symbol value for index idx.
//
//flexcore:noalloc
func (c *Constellation) Point(idx int) complex128 { return c.points[idx] }

// Points returns the full symbol alphabet (shared slice; do not modify).
func (c *Constellation) Points() []complex128 { return c.points }

// AvgEnergy returns the average symbol energy (1 by construction, computed
// from the alphabet for verification).
func (c *Constellation) AvgEnergy() float64 {
	var s float64
	for _, p := range c.points {
		s += real(p)*real(p) + imag(p)*imag(p)
	}
	return s / float64(c.m)
}

// axisIndex slices one axis value to the nearest in-range level index.
func (c *Constellation) axisIndex(v float64) int {
	i := int(math.Round((v/c.scale + float64(c.side) - 1) / 2))
	if i < 0 {
		return 0
	}
	if i >= c.side {
		return c.side - 1
	}
	return i
}

// Slice returns the index of the constellation point nearest to z.
//
//flexcore:noalloc
func (c *Constellation) Slice(z complex128) int {
	return c.axisIndex(imag(z))*c.side + c.axisIndex(real(z))
}

// SymbolBits writes the Gray-mapped bits of symbol idx into dst
// (length BitsPerSymbol, values 0/1) and returns dst.
// The first half carries the in-phase (ix) axis, MSB first.
func (c *Constellation) SymbolBits(idx int, dst []uint8) []uint8 {
	if dst == nil {
		dst = make([]uint8, c.bits)
	}
	half := c.bits / 2
	gx := c.grayFwd[idx%c.side]
	gy := c.grayFwd[idx/c.side]
	for b := 0; b < half; b++ {
		dst[b] = uint8(gx>>(half-1-b)) & 1
		dst[half+b] = uint8(gy>>(half-1-b)) & 1
	}
	return dst
}

// SymbolFromBits maps BitsPerSymbol Gray-coded bits to a symbol index;
// the inverse of SymbolBits.
func (c *Constellation) SymbolFromBits(bits []uint8) int {
	if len(bits) != c.bits {
		panic(fmt.Sprintf("constellation: need %d bits, got %d", c.bits, len(bits)))
	}
	half := c.bits / 2
	gx, gy := 0, 0
	for b := 0; b < half; b++ {
		gx = gx<<1 | int(bits[b]&1)
		gy = gy<<1 | int(bits[half+b]&1)
	}
	return c.grayInv[gy]*c.side + c.grayInv[gx]
}
