package constellation

import (
	"math"
	"testing"
)

// fuzzOrders are the square-QAM orders the k-th-closest machinery
// supports; the fuzzer cycles through all of them.
var fuzzOrders = []int{4, 16, 64, 256}

func finite(z complex128) bool {
	re, im := real(z), imag(z)
	return !math.IsNaN(re) && !math.IsInf(re, 0) && !math.IsNaN(im) && !math.IsInf(im, 0)
}

func dist2To(c *Constellation, z complex128, idx int) float64 {
	p := c.Point(idx)
	dr, di := real(z)-real(p), imag(z)-imag(p)
	return dr*dr + di*di
}

// FuzzKthClosest is the slicer fuzz target of the conformance harness.
// For arbitrary query points (including NaN/Inf — the lookup must not
// panic or return an out-of-range index) and every supported QAM order
// it checks the triangle-LUT k-th-closest contract:
//
//   - any ok result is a valid constellation index, and the ok results
//     across k = 1..M are pairwise distinct (the ordering enumerates
//     symbols, never repeats one);
//   - k = 1 and k = 2 are EXACT: the returned point's distance equals
//     the true k-th smallest distance (the per-triangle order provably
//     matches the instantaneous order for the first two ranks);
//   - KthClosestClamped always returns an in-range index, agrees with
//     KthClosest whenever the unclamped lookup succeeds, and reports
//     clamped=true exactly when it does not;
//   - out-of-range ranks (k ≤ 0, k > M) are rejected, never sliced.
func FuzzKthClosest(f *testing.F) {
	f.Add(uint8(1), 0.3, -0.7)
	f.Add(uint8(0), 0.0, 0.0)
	f.Add(uint8(2), -2.5, 2.5)
	f.Add(uint8(3), 1e9, -1e9)
	f.Add(uint8(1), math.Inf(1), math.NaN())
	f.Fuzz(func(t *testing.T, mSel uint8, re, im float64) {
		c := MustNew(fuzzOrders[int(mSel)%len(fuzzOrders)])
		m := c.Size()
		z := complex(re, im)

		if idx, ok := c.KthClosest(z, 0); ok {
			t.Fatalf("k=0 accepted (idx %d)", idx)
		}
		if idx, ok := c.KthClosest(z, m+1); ok {
			t.Fatalf("k=%d accepted (idx %d)", m+1, idx)
		}

		seen := make(map[int]bool, m)
		for k := 1; k <= m; k++ {
			idx, ok := c.KthClosest(z, k)
			cidx, clamped := c.KthClosestClamped(z, k)
			if cidx < 0 || cidx >= m {
				t.Fatalf("k=%d: clamped index %d out of range [0,%d)", k, cidx, m)
			}
			if ok != !clamped {
				t.Fatalf("k=%d: ok=%v but clamped=%v", k, ok, clamped)
			}
			if !ok {
				continue
			}
			if idx < 0 || idx >= m {
				t.Fatalf("k=%d: index %d out of range [0,%d)", k, idx, m)
			}
			if cidx != idx {
				t.Fatalf("k=%d: KthClosestClamped %d != KthClosest %d", k, cidx, idx)
			}
			if seen[idx] {
				t.Fatalf("k=%d: index %d already returned for a smaller rank", k, idx)
			}
			seen[idx] = true
			if finite(z) && k <= 2 {
				// Exactness of the first two ranks: compare distances, not
				// indices, so exact ties on decision boundaries stay legal.
				want := dist2To(c, z, c.ExactKth(z, k))
				got := dist2To(c, z, idx)
				if got > want*(1+1e-12)+1e-12 {
					t.Fatalf("k=%d at z=%v (M=%d): LUT dist² %.17g > exact %.17g", k, z, m, got, want)
				}
			}
		}
		// Rank 1 never deactivates strictly inside the constellation's
		// bounding square (outside it the unclamped lookup legitimately
		// points past the hull — the paper's deactivation case).
		bound := float64(c.Side()) * c.Scale()
		inside := finite(z) && math.Abs(re) < bound && math.Abs(im) < bound
		if _, ok := c.KthClosest(z, 1); inside && !ok {
			t.Fatalf("rank 1 deactivated at interior z=%v (M=%d)", z, m)
		}
	})
}
