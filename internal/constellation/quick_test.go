package constellation

import (
	"math"
	"testing"
	"testing/quick"
)

// TestQuickKthClosestContracts drives the ordering LUT with arbitrary
// observations and ranks, checking its contracts hold everywhere:
// returned indices are valid, k=1 equals the exact nearest symbol when
// active, and the clamped variant always returns a valid index that
// agrees with the plain variant whenever the plain variant is active.
func TestQuickKthClosestContracts(t *testing.T) {
	for _, m := range []int{4, 16, 64} {
		c := MustNew(m)
		f := func(re, im float64, rawK uint16) bool {
			// Map arbitrary floats into a generous but finite region.
			z := complex(math.Mod(re, 10), math.Mod(im, 10))
			if math.IsNaN(real(z)) || math.IsNaN(imag(z)) {
				return true
			}
			k := int(rawK)%c.Size() + 1
			idx, ok := c.KthClosest(z, k)
			if ok && (idx < 0 || idx >= c.Size()) {
				return false
			}
			if k == 1 && ok {
				// k=1 must be a nearest symbol (distance ties allowed).
				want := c.ExactKth(z, 1)
				dg := z - c.Point(idx)
				dw := z - c.Point(want)
				if real(dg)*real(dg)+imag(dg)*imag(dg) > real(dw)*real(dw)+imag(dw)*imag(dw)+1e-12 {
					return false
				}
			}
			cIdx, _ := c.KthClosestClamped(z, k)
			if cIdx < 0 || cIdx >= c.Size() {
				return false
			}
			if ok && cIdx != idx {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("%d-QAM: %v", m, err)
		}
	}
}

// TestQuickSliceGrayRoundTrip checks the slicer and bit maps compose for
// arbitrary observations.
func TestQuickSliceGrayRoundTrip(t *testing.T) {
	c := MustNew(256)
	f := func(re, im float64) bool {
		if math.IsNaN(re) || math.IsNaN(im) || math.IsInf(re, 0) || math.IsInf(im, 0) {
			return true
		}
		idx := c.Slice(complex(re, im))
		if idx < 0 || idx >= 256 {
			return false
		}
		return c.SymbolFromBits(c.SymbolBits(idx, nil)) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
