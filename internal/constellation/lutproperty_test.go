package constellation

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// quadratureOrder rebuilds the Fig. 6 candidate ordering from first
// principles, independently of buildOrderLUT's closed form: the expected
// squared distance from an odd-integer offset (a, b) to a point uniform
// in the canonical triangle t1 (vertices (0,0), (1,0), (1,1)) is
// computed by the three-edge-midpoint quadrature rule, which is exact
// for quadratic integrands. 3·E[d²] is provably an integer for odd
// (a, b), so the sort key is discretised before ordering — exact ties
// stay exact and fall through to the same (a desc, b desc) tie-break
// the production table uses.
func quadratureOrder(t *testing.T, m, side int) [][2]int {
	t.Helper()
	type cand struct {
		a, b int
		key  int64
	}
	mids := [3][2]float64{{0.5, 0}, {1, 0.5}, {0.5, 0.5}}
	lim := 2*side + 1
	var cands []cand
	for a := -lim; a <= lim; a += 2 {
		for b := -lim; b <= lim; b += 2 {
			var e float64
			for _, p := range mids {
				dx := p[0] - float64(a)
				dy := p[1] - float64(b)
				e += dx*dx + dy*dy
			}
			// e is now 3·E[d²]; it must be an integer for odd offsets.
			key := math.Round(e)
			if math.Abs(e-key) > 1e-9 {
				t.Fatalf("3·E[d²] for offset (%d,%d) = %.17g, not an integer", a, b, e)
			}
			cands = append(cands, cand{a, b, int64(key)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].key != cands[j].key {
			return cands[i].key < cands[j].key
		}
		if cands[i].a != cands[j].a {
			return cands[i].a > cands[j].a
		}
		return cands[i].b > cands[j].b
	})
	out := make([][2]int, m)
	for k := 0; k < m; k++ {
		out[k] = [2]int{cands[k].a, cands[k].b}
	}
	return out
}

// TestLUTOrderMatchesQuadratureReference cross-checks the production
// triangle ordering end to end against the independent quadrature
// reconstruction for every supported QAM order.
func TestLUTOrderMatchesQuadratureReference(t *testing.T) {
	for _, m := range []int{4, 16, 64, 256} {
		c := MustNew(m)
		want := quadratureOrder(t, m, c.Side())
		for k, got := range c.lut.offsets {
			if got != want[k] {
				t.Fatalf("M=%d rank %d: LUT offset %v, quadrature reference %v", m, k+1, got, want[k])
			}
		}
	}
}

// lutPropertyPoints yields a deterministic cloud of query points spread
// over (and slightly beyond) the constellation, in symbol coordinates.
func lutPropertyPoints(m int, scale float64, side, n int) []complex128 {
	rng := rand.New(rand.NewPCG(uint64(m), 0xF16C0DE))
	span := scale * float64(side+1)
	pts := make([]complex128, n)
	for i := range pts {
		pts[i] = complex((rng.Float64()*2-1)*span, (rng.Float64()*2-1)*span)
	}
	return pts
}

// TestLUTRanksOneAndTwoExact pins the provable part of the triangle
// approximation: whenever the unclamped lookup succeeds, ranks 1 and 2
// return the TRUE nearest and second-nearest symbol (compared by
// distance, so exact boundary ties remain legal). Higher ranks are
// approximate by design — the per-triangle modal order — and are
// covered by the monotonicity/golden layers instead.
func TestLUTRanksOneAndTwoExact(t *testing.T) {
	for _, m := range []int{4, 16, 64, 256} {
		c := MustNew(m)
		for _, z := range lutPropertyPoints(m, c.Scale(), c.Side(), 1000) {
			for k := 1; k <= 2; k++ {
				idx, ok := c.KthClosest(z, k)
				if !ok {
					continue
				}
				want := dist2To(c, z, c.ExactKth(z, k))
				got := dist2To(c, z, idx)
				if got > want*(1+1e-12)+1e-12 {
					t.Fatalf("M=%d z=%v rank %d: LUT dist² %.17g > exact %.17g", m, z, k, got, want)
				}
			}
		}
	}
}

// TestLUTRanksAreBijective checks that across the full rank range the
// successful lookups never repeat a symbol: the predefined order visits
// each constellation point at most once from any query point.
func TestLUTRanksAreBijective(t *testing.T) {
	for _, m := range []int{4, 16, 64, 256} {
		c := MustNew(m)
		for _, z := range lutPropertyPoints(m, c.Scale(), c.Side(), 1000) {
			seen := make(map[int]int, m)
			for k := 1; k <= m; k++ {
				idx, ok := c.KthClosest(z, k)
				if !ok {
					continue
				}
				if prev, dup := seen[idx]; dup {
					t.Fatalf("M=%d z=%v: ranks %d and %d both map to symbol %d", m, z, prev, k, idx)
				}
				seen[idx] = k
			}
		}
	}
}
