package constellation

import (
	"math"
	"sort"
)

// orderLUT holds the predefined k-th-closest symbol ordering of FlexCore's
// detection step (paper §3.2, Fig. 6).
//
// The effective received point is referred to the minimum-distance square
// of the *midpoint grid* that contains it: the square's centre is a
// midpoint of the constellation lattice and its four corners are
// constellation points (the paper's slicer "computes the midpoint value
// and index instead of the actual constellation point", §4). The square
// is split into eight triangles by its axes and diagonals; for points in
// a given triangle the distance-sorted order of the surrounding lattice
// points is (almost always) the same, so one ordering per triangle
// suffices — and by the dihedral symmetry of the lattice only the
// canonical triangle t1 (dx ≥ dy ≥ 0) is stored; the other seven are
// sign/swap transforms of it.
//
// Offsets from the square centre to constellation points are pairs of
// odd integers in half-minimum-distance units. The stored ordering ranks
// them by the expected squared distance to a point uniform in t1, which
// has the closed form E[d²] = (1/2 − (4/3)a + a²) + (1/6 − (2/3)b + b²).
// This is the analytic limit of the paper's Monte-Carlo "most frequent
// sorted order" procedure. Its first four entries are the square's four
// corners, so the first candidate ranks deactivate only when the
// effective point falls outside the constellation hull.
type orderLUT struct {
	offsets [][2]int // canonical-frame odd-integer offsets, best first
}

func buildOrderLUT(m, side int) *orderLUT {
	type cand struct {
		a, b int
		ed   int64
	}
	// A window of odd offsets covering the whole constellation from any
	// midpoint adjacent to it.
	lim := 2*side + 1
	var cands []cand
	for a := -lim; a <= lim; a += 2 {
		for b := -lim; b <= lim; b += 2 {
			fa, fb := float64(a), float64(b)
			ed := (0.5 - (4.0/3.0)*fa + fa*fa) + (1.0/6.0 - (2.0/3.0)*fb + fb*fb)
			// 3·E[d²] is an integer for odd offsets. Discretise the sort
			// key so exact ties (e.g. (7,−1) vs (−3,−5), both 3E = 126)
			// compare equal and fall through to the tie-break — with raw
			// floats the two algebraically equal expressions differ at
			// ulp level and the resulting order would depend on rounding
			// (and on whether the compiler fuses multiply-adds).
			cands = append(cands, cand{a, b, int64(math.Round(3 * ed))})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ed != cands[j].ed {
			return cands[i].ed < cands[j].ed
		}
		// Deterministic tie-break.
		if cands[i].a != cands[j].a {
			return cands[i].a > cands[j].a
		}
		return cands[i].b > cands[j].b
	})
	lut := &orderLUT{offsets: make([][2]int, m)}
	for k := 0; k < m; k++ {
		lut.offsets[k] = [2]int{cands[k].a, cands[k].b}
	}
	return lut
}

// OrderOffsets returns a copy of the canonical-triangle offset table of
// the predefined k-th-closest ordering: entry k−1 is the odd-integer
// offset (in half-minimum-distance units) from the containing midpoint-
// square centre to the k-th-ranked symbol for points in the canonical
// triangle t1 (dx ≥ dy ≥ 0). Reduced-precision slicer implementations
// (internal/kernel32) rebuild their lookup planes from this table so
// both backends share one ordering definition.
func (c *Constellation) OrderOffsets() [][2]int {
	out := make([][2]int, len(c.lut.offsets))
	copy(out, c.lut.offsets)
	return out
}

// KthClosest returns the index of the constellation point with
// (approximately) the k-th smallest Euclidean distance to z, k ≥ 1, using
// the predefined per-triangle ordering. ok is false when the ordering
// points outside the constellation — the "deactivated processing element"
// case of the paper — or when k exceeds the stored table.
//
//flexcore:noalloc
func (c *Constellation) KthClosest(z complex128, k int) (idx int, ok bool) {
	if k < 1 || k > len(c.lut.offsets) {
		return 0, false
	}
	// Nearest midpoint-grid node (values are even integers cx = 2m − side
	// in half-distance units; symbols sit at odd integers).
	mx := int(math.Round((real(z)/c.scale + float64(c.side)) / 2))
	my := int(math.Round((imag(z)/c.scale + float64(c.side)) / 2))
	cx := 2*mx - c.side
	cy := 2*my - c.side
	// Position relative to the square centre, in half-distance units.
	dx := real(z)/c.scale - float64(cx)
	dy := imag(z)/c.scale - float64(cy)

	// Canonicalise into t1: record sign flips and the axis swap.
	sx, sy := 1, 1
	if dx < 0 {
		sx = -1
		dx = -dx
	}
	if dy < 0 {
		sy = -1
		dy = -dy
	}
	swap := dy > dx

	off := c.lut.offsets[k-1]
	oa, ob := off[0], off[1]
	if swap {
		oa, ob = ob, oa
	}
	// Symbol value in half-distance units: centre + signed odd offset.
	vx := cx + sx*oa
	vy := cy + sy*ob
	// Axis index of a symbol at value v = 2i − side + 1 → i = (v+side−1)/2.
	nx := (vx + c.side - 1) / 2
	ny := (vy + c.side - 1) / 2
	if nx < 0 || nx >= c.side || ny < 0 || ny >= c.side {
		return 0, false
	}
	return ny*c.side + nx, true
}

// ExactKth returns the true k-th closest constellation point to z (k ≥ 1)
// by exhaustive search; used to validate the LUT approximation and by
// reference detectors.
func (c *Constellation) ExactKth(z complex128, k int) int {
	type ds struct {
		idx int
		d   float64
	}
	all := make([]ds, c.m)
	for i, p := range c.points {
		dr := real(z) - real(p)
		di := imag(z) - imag(p)
		all[i] = ds{i, dr*dr + di*di}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d { //lint:ignore floatcmp sort comparator: exact ties fall through to the index tie-break; any FP difference is a strict order
			return all[i].d < all[j].d
		}
		return all[i].idx < all[j].idx
	})
	return all[k-1].idx
}

// KthClosestClamped is KthClosest with per-axis slicer saturation: when
// the predefined ordering points outside the constellation, each axis
// index clamps to the nearest edge instead of deactivating the path —
// the behaviour of a saturating hardware slicer. The boolean reports
// whether clamping occurred.
//
//flexcore:noalloc
func (c *Constellation) KthClosestClamped(z complex128, k int) (idx int, clamped bool) {
	if idx, ok := c.KthClosest(z, k); ok {
		return idx, false
	}
	// Recompute the raw candidate and saturate.
	if k < 1 {
		k = 1
	}
	if k > len(c.lut.offsets) {
		k = len(c.lut.offsets)
	}
	mx := int(math.Round((real(z)/c.scale + float64(c.side)) / 2))
	my := int(math.Round((imag(z)/c.scale + float64(c.side)) / 2))
	cx := 2*mx - c.side
	cy := 2*my - c.side
	dx := real(z)/c.scale - float64(cx)
	dy := imag(z)/c.scale - float64(cy)
	sx, sy := 1, 1
	if dx < 0 {
		sx = -1
		dx = -dx
	}
	if dy < 0 {
		sy = -1
		dy = -dy
	}
	swap := dy > dx
	off := c.lut.offsets[k-1]
	oa, ob := off[0], off[1]
	if swap {
		oa, ob = ob, oa
	}
	nx := (cx + sx*oa + c.side - 1) / 2
	ny := (cy + sy*ob + c.side - 1) / 2
	nx = clampAxis(nx, c.side)
	ny = clampAxis(ny, c.side)
	return ny*c.side + nx, true
}

//flexcore:noalloc
func clampAxis(i, side int) int {
	if i < 0 {
		return 0
	}
	if i >= side {
		return side - 1
	}
	return i
}
