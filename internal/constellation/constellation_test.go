package constellation

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

var orders = []int{4, 16, 64, 256, 1024}

func newRng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed*2654435761)) }

func TestNewRejectsBadOrders(t *testing.T) {
	for _, m := range []int{0, 2, 8, 32, 128, 512, 2048, -4} {
		if _, err := New(m); err == nil {
			t.Fatalf("order %d accepted", m)
		}
	}
}

func TestUnitAverageEnergy(t *testing.T) {
	for _, m := range orders {
		c := MustNew(m)
		if e := c.AvgEnergy(); math.Abs(e-1) > 1e-12 {
			t.Fatalf("%d-QAM energy %v != 1", m, e)
		}
	}
}

func TestMinDistance(t *testing.T) {
	for _, m := range orders {
		c := MustNew(m)
		// Exhaustive pairwise minimum must equal MinDist.
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				d := c.Point(i) - c.Point(j)
				if v := math.Hypot(real(d), imag(d)); v < best {
					best = v
				}
			}
		}
		if math.Abs(best-c.MinDist()) > 1e-12 {
			t.Fatalf("%d-QAM min distance %v != %v", m, best, c.MinDist())
		}
	}
}

func TestSliceIsNearest(t *testing.T) {
	rng := newRng(41)
	for _, m := range orders {
		c := MustNew(m)
		for trial := 0; trial < 500; trial++ {
			z := complex(rng.NormFloat64(), rng.NormFloat64())
			got := c.Slice(z)
			want := c.ExactKth(z, 1)
			dg := z - c.Point(got)
			dw := z - c.Point(want)
			// Allow exact ties only.
			if real(dg)*real(dg)+imag(dg)*imag(dg) > real(dw)*real(dw)+imag(dw)*imag(dw)+1e-12 {
				t.Fatalf("%d-QAM: Slice(%v) = %d not nearest (want %d)", m, z, got, want)
			}
		}
	}
}

func TestGrayBitsRoundTrip(t *testing.T) {
	for _, m := range orders {
		c := MustNew(m)
		for idx := 0; idx < m; idx++ {
			bits := c.SymbolBits(idx, nil)
			if len(bits) != c.BitsPerSymbol() {
				t.Fatalf("%d-QAM: bits length %d", m, len(bits))
			}
			if back := c.SymbolFromBits(bits); back != idx {
				t.Fatalf("%d-QAM: round trip %d → %v → %d", m, idx, bits, back)
			}
		}
	}
}

func TestGrayAdjacencySingleBitFlips(t *testing.T) {
	// Horizontally or vertically adjacent symbols must differ in exactly
	// one bit — the defining property of the Gray mapping.
	for _, m := range orders {
		c := MustNew(m)
		side := c.Side()
		diff := func(a, b int) int {
			ba := c.SymbolBits(a, nil)
			bb := c.SymbolBits(b, nil)
			n := 0
			for i := range ba {
				if ba[i] != bb[i] {
					n++
				}
			}
			return n
		}
		for iy := 0; iy < side; iy++ {
			for ix := 0; ix < side; ix++ {
				idx := iy*side + ix
				if ix+1 < side && diff(idx, idx+1) != 1 {
					t.Fatalf("%d-QAM: horizontal neighbours %d,%d differ in %d bits", m, idx, idx+1, diff(idx, idx+1))
				}
				if iy+1 < side && diff(idx, idx+side) != 1 {
					t.Fatalf("%d-QAM: vertical neighbours differ in %d bits", m, diff(idx, idx+side))
				}
			}
		}
	}
}

func TestBitsQuickProperty(t *testing.T) {
	c := MustNew(64)
	f := func(raw uint8) bool {
		idx := int(raw) % 64
		return c.SymbolFromBits(c.SymbolBits(idx, nil)) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
