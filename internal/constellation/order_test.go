package constellation

import (
	"math"
	"testing"
)

func TestKthClosestFirstMatchesSlicer(t *testing.T) {
	// For observations that stay within the constellation's outer
	// boundary, k=1 must agree with the exact nearest-symbol slicer.
	rng := newRng(51)
	for _, m := range orders {
		c := MustNew(m)
		limit := c.level(c.Side()-1) + 0.999*c.Scale()
		for trial := 0; trial < 2000; trial++ {
			z := complex((2*rng.Float64()-1)*limit, (2*rng.Float64()-1)*limit)
			got, ok := c.KthClosest(z, 1)
			if !ok {
				t.Fatalf("%d-QAM: k=1 deactivated inside the constellation at %v", m, z)
			}
			if want := c.Slice(z); got != want {
				t.Fatalf("%d-QAM: KthClosest(%v,1) = %d, Slice = %d", m, z, got, want)
			}
		}
	}
}

func TestKthClosestEnumeratesWholeConstellation(t *testing.T) {
	// For an observation at the centre of a *central* symbol's cell, the
	// full k = 1..|Q| scan must reach every constellation point exactly
	// once or be deactivated; deactivations happen only for offsets that
	// leave the grid.
	for _, m := range orders {
		c := MustNew(m)
		mid := c.Side() / 2
		z := c.Point(mid*c.Side() + mid)
		seen := make(map[int]bool)
		for k := 1; k <= m; k++ {
			idx, ok := c.KthClosest(z, k)
			if !ok {
				continue
			}
			if seen[idx] {
				t.Fatalf("%d-QAM: symbol %d returned twice", m, idx)
			}
			seen[idx] = true
		}
		if len(seen) == 0 {
			t.Fatalf("%d-QAM: no symbols enumerated", m)
		}
	}
}

func TestKthClosestNeverRepeatsWithinScan(t *testing.T) {
	rng := newRng(52)
	for _, m := range orders {
		c := MustNew(m)
		for trial := 0; trial < 50; trial++ {
			z := complex(rng.NormFloat64(), rng.NormFloat64())
			seen := make(map[int]bool)
			for k := 1; k <= m; k++ {
				idx, ok := c.KthClosest(z, k)
				if !ok {
					continue
				}
				if seen[idx] {
					t.Fatalf("%d-QAM: duplicate symbol %d in scan of %v", m, idx, z)
				}
				seen[idx] = true
			}
		}
	}
}

func TestKthClosestApproximationQuality(t *testing.T) {
	// The predefined ordering is an approximation of the true distance
	// order; it must agree with the exact order for k=1 (tested above)
	// and keep the true 2nd-closest within its first three candidates in
	// the overwhelming majority of draws (paper §3.2 reports the order is
	// "the most frequent" one).
	rng := newRng(53)
	c := MustNew(16)
	total, hit := 0, 0
	for trial := 0; trial < 3000; trial++ {
		z := complex(rng.NormFloat64()*0.6, rng.NormFloat64()*0.6)
		want := c.ExactKth(z, 2)
		total++
		for k := 2; k <= 4; k++ {
			if idx, ok := c.KthClosest(z, k); ok && idx == want {
				hit++
				break
			}
		}
	}
	if frac := float64(hit) / float64(total); frac < 0.95 {
		t.Fatalf("true 2nd-closest found in first candidates only %.1f%% of draws", 100*frac)
	}
}

func TestKthClosestDeactivatesOutsideConstellation(t *testing.T) {
	c := MustNew(16)
	// Far outside the grid every candidate offset lands outside.
	z := complex(100, 100)
	active := 0
	for k := 1; k <= 16; k++ {
		if _, ok := c.KthClosest(z, k); ok {
			active++
		}
	}
	if active != 0 {
		t.Fatalf("expected all candidates deactivated far outside, got %d active", active)
	}
	// Just beyond a corner symbol, k=1 points at the (out-of-grid)
	// nearest grid node, so it must deactivate.
	corner := c.Point(0) // most negative corner
	z = corner + complex(-2*c.Scale(), -2*c.Scale())
	if _, ok := c.KthClosest(z, 1); ok {
		t.Fatal("expected k=1 deactivation beyond the corner")
	}
}

func TestKthClosestInvalidK(t *testing.T) {
	c := MustNew(4)
	if _, ok := c.KthClosest(0, 0); ok {
		t.Fatal("k=0 must be rejected")
	}
	if _, ok := c.KthClosest(0, 5); ok {
		t.Fatal("k>|Q| must be rejected")
	}
}

func TestOrderLUTNearSorted(t *testing.T) {
	// The canonical-frame expected squared distances must be
	// non-decreasing along the stored order (by construction) — a guard
	// against regressions in the tie-break or sort.
	c := MustNew(64)
	prev := math.Inf(-1)
	for _, off := range c.lut.offsets {
		fa, fb := float64(off[0]), float64(off[1])
		if off[0]%2 == 0 || off[1]%2 == 0 {
			t.Fatalf("offset %v not odd-odd (not a constellation point relative to a midpoint)", off)
		}
		ed := (0.5 - (4.0/3.0)*fa + fa*fa) + (1.0/6.0 - (2.0/3.0)*fb + fb*fb)
		if ed < prev-1e-12 {
			t.Fatalf("LUT not sorted: %v after %v", ed, prev)
		}
		prev = ed
	}
	// Fig. 6's qualitative pattern: the square's own corners come first
	// (nearest corner, then the corner across the short axis, …).
	if c.lut.offsets[0] != [2]int{1, 1} {
		t.Fatalf("first offset %v, want the t1 corner", c.lut.offsets[0])
	}
	if c.lut.offsets[1] != [2]int{1, -1} {
		t.Fatalf("second offset %v, want the adjacent corner", c.lut.offsets[1])
	}
	corners := map[[2]int]bool{}
	for _, off := range c.lut.offsets[:4] {
		corners[off] = true
	}
	for _, want := range [][2]int{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
		if !corners[want] {
			t.Fatalf("square corner %v not among the first four candidates", want)
		}
	}
}
