package lint

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the bit-identical-results contract of the
// detection pipeline (ROADMAP "Full verify"; DESIGN.md §8–§9): inside
// the detector-facing packages it forbids wall-clock reads (time.Now /
// Since / Until), the process-seeded global math/rand generators (only
// explicitly seeded *rand.Rand instances are deterministic), map
// iteration whose body writes to state declared outside the loop
// (iteration order is randomized; writes indexed by the range key are
// order-independent and stay legal), and goroutines that append to a
// slice captured from the enclosing scope (a determinism *and* race
// hazard — workers must write through disjoint indices).
var Determinism = &Analyzer{
	Name:     "determinism",
	Doc:      "forbid wall-clock, global rand, order-dependent map iteration and shared-slice appends in goroutines",
	Packages: []string{"internal/core", "internal/detector", "internal/phy", "internal/conformance", "internal/serve"},
	Run:      runDeterminism,
}

// randConstructors are the math/rand[/v2] package-level functions that
// build explicitly seeded generators — the deterministic entry points.
var randConstructors = map[string]bool{
	"New": true, "NewPCG": true, "NewSource": true, "NewZipf": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkForbiddenRef(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.GoStmt:
				checkGoAppend(pass, n)
			}
			return true
		})
	}
}

// checkForbiddenRef flags time.Now/Since/Until and package-level
// math/rand state.
func checkForbiddenRef(pass *Pass, sel *ast.SelectorExpr) {
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if _, ok := obj.(*types.Func); ok {
			switch obj.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock — detection must be a pure function of its inputs", obj.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		// Only package-level functions/vars are process-seeded; methods
		// on an explicit *rand.Rand resolve to the rand package too but
		// have a receiver in their signature.
		switch o := obj.(type) {
		case *types.Func:
			if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() != nil {
				return
			}
			if randConstructors[o.Name()] {
				return
			}
			pass.Reportf(sel.Pos(), "global %s.%s is process-seeded and nondeterministic — use a seeded rand.New(rand.NewPCG(...)) stream", obj.Pkg().Name(), obj.Name())
		case *types.Var:
			pass.Reportf(sel.Pos(), "global %s.%s is shared process state — use a seeded local generator", obj.Pkg().Name(), obj.Name())
		}
	}
}

// checkMapRange flags map iterations whose body writes to variables
// declared outside the loop, except writes indexed by the range key
// (those touch a distinct element per iteration, so order cannot
// matter).
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	keyObj := rangeVarObj(pass, rng.Key)
	valObj := rangeVarObj(pass, rng.Value)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure defers execution; out of scope here
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkOuterWrite(pass, rng, lhs, keyObj, valObj)
			}
		case *ast.IncDecStmt:
			checkOuterWrite(pass, rng, n.X, keyObj, valObj)
		}
		return true
	})
}

// rangeVarObj resolves the object of a range key/value identifier.
func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pass.Info.Defs[id]; o != nil {
		return o
	}
	return pass.Info.Uses[id]
}

// checkOuterWrite reports an assignment target that roots at a
// variable declared outside the range statement, unless the write is
// element-wise through the range key.
func checkOuterWrite(pass *Pass, rng *ast.RangeStmt, lhs ast.Expr, keyObj, valObj types.Object) {
	e := ast.Unparen(lhs)
	// Walk off index/selector/star layers, remembering whether any
	// index uses the range key.
	indexedByKey := false
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			if keyObj != nil && usesObj(pass, x.Index, keyObj) {
				indexedByKey = true
			}
			e = ast.Unparen(x.X)
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		default:
			id, ok := e.(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				obj = pass.Info.Defs[id]
			}
			if obj == nil || obj == keyObj || obj == valObj {
				return
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return
			}
			// Declared inside the loop body → each iteration owns it.
			if v.Pos() >= rng.Body.Pos() && v.Pos() < rng.Body.End() {
				return
			}
			if indexedByKey {
				return // distinct element per iteration: order-independent
			}
			pass.Reportf(lhs.Pos(), "map iteration writes to %s declared outside the loop — iteration order is randomized; index by the range key, collect and sort keys first, or accumulate into a local", v.Name())
			return
		}
	}
}

// usesObj reports whether expression e references obj.
func usesObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkGoAppend flags `go func(){ ... x = append(x, ...) ... }()` where
// x is captured from the enclosing scope: concurrent appends race on
// the slice header and land in scheduler order.
func checkGoAppend(pass *Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				continue
			}
			if i >= len(asg.Lhs) {
				continue
			}
			target, ok := rootIdent(asg.Lhs[i])
			if !ok {
				continue
			}
			v, ok := pass.Info.Uses[target].(*types.Var)
			if !ok {
				continue
			}
			// Captured: declared outside the goroutine's function literal.
			if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
				pass.Reportf(asg.Pos(), "goroutine appends to %s captured from the enclosing scope — results depend on scheduling (and race); write through disjoint indices instead", v.Name())
			}
		}
		return true
	})
}

// rootIdent peels index/selector/star layers off an lvalue.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x, true
		default:
			return nil, false
		}
	}
}
