// Package lint is a stdlib-only static-analysis framework (go/ast +
// go/parser + go/types + go/importer; no golang.org/x/tools) that
// machine-enforces this repository's structural contracts: determinism
// (bit-identical results for any worker count), allocation-free
// steady-state hot paths, pooled-resource discipline and OpCount
// accounting. The framework is deliberately small — analyzers, passes,
// diagnostics, line-level suppressions — and is driven either by
// cmd/flexlint over the whole module or by the `// want`-comment test
// harness in want.go over fixture packages.
//
// Suppression: a finding is silenced by a comment
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// either at the end of the offending line or on its own line directly
// above it. The reason is mandatory; a reasonless ignore is itself
// reported (analyzer "lint"). Suppressions are the escape hatch for
// sites where the flagged construct is provably correct — an exact
// float compare against a sentinel, an amortized grow-path append — and
// double as in-source documentation of why.
//
// Function annotation: a declaration whose doc comment carries the
// directive
//
//	//flexcore:noalloc
//
// opts into the noalloc analyzer (and the -escapes cross-check of
// cmd/flexlint): its body must contain no allocation sites.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-line description (shown by flexlint -list).
	Doc string
	// Packages restricts the analyzer to packages whose import path
	// contains one of these fragments (segment-wise, e.g.
	// "internal/core"). Empty applies the analyzer everywhere. The
	// restriction is applied by Run, not by the test harness, so
	// fixtures exercise analyzers directly.
	Packages []string
	// Run reports findings on one package through pass.Reportf.
	Run func(pass *Pass)
}

// AppliesTo reports whether the analyzer covers a package import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, frag := range a.Packages {
		if pkgPath == frag || strings.HasSuffix(pkgPath, "/"+frag) ||
			strings.Contains(pkgPath, "/"+frag+"/") || strings.HasPrefix(pkgPath, frag+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// ignorePrefix is the suppression-comment marker (after "//").
const ignorePrefix = "lint:ignore"

// suppressions maps file → line → set of silenced analyzer names.
type suppressions map[string]map[int]map[string]bool

// SuppressionEntry is one parsed //lint:ignore comment — the auditable
// record behind flexlint -suppressions.
type SuppressionEntry struct {
	// File is the file holding the comment.
	File string
	// Line is the line the comment silences (the next line for a
	// stand-alone comment, its own for an end-of-line one).
	Line int
	// CommentLine is the comment's own line (what an editor jumps to).
	CommentLine int
	// Analyzers are the silenced analyzer names.
	Analyzers []string
	// Reason is the mandatory justification text.
	Reason string
}

// collectSuppressions scans the comments of a parsed file and returns
// the line-level suppression table, the parsed entries (for the
// suppressions audit) and diagnostics for malformed ignore comments.
// src is the file's source, used to decide whether a suppression
// comment shares its line with code (silences that line) or stands
// alone (silences the next line).
func collectSuppressions(fset *token.FileSet, file *ast.File, src []byte) (suppressions, []SuppressionEntry, []Diagnostic) {
	sup := suppressions{}
	var entries []SuppressionEntry
	var bad []Diagnostic
	lines := strings.Split(string(src), "\n")
	for _, group := range file.Comments {
		for _, c := range group.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			names, reason, ok := strings.Cut(rest, " ")
			if !ok || names == "" || strings.TrimSpace(reason) == "" {
				bad = append(bad, Diagnostic{
					Pos:      pos,
					Analyzer: "lint",
					Message:  "malformed //lint:ignore: need \"//lint:ignore <analyzer>[,...] <reason>\" with a non-empty reason",
				})
				continue
			}
			line := pos.Line
			// A stand-alone comment silences the line below it; an
			// end-of-line comment silences its own line.
			if line-1 < len(lines) {
				before := lines[line-1][:pos.Column-1]
				if strings.TrimSpace(before) == "" {
					line++
				}
			}
			m := sup[pos.Filename]
			if m == nil {
				m = map[int]map[string]bool{}
				sup[pos.Filename] = m
			}
			set := m[line]
			if set == nil {
				set = map[string]bool{}
				m[line] = set
			}
			entry := SuppressionEntry{
				File:        pos.Filename,
				Line:        line,
				CommentLine: pos.Line,
				Reason:      strings.TrimSpace(reason),
			}
			for _, n := range strings.Split(names, ",") {
				n = strings.TrimSpace(n)
				set[n] = true
				entry.Analyzers = append(entry.Analyzers, n)
			}
			entries = append(entries, entry)
		}
	}
	return sup, entries, bad
}

// merge folds other into s.
func (s suppressions) merge(other suppressions) {
	for f, byLine := range other {
		m := s[f]
		if m == nil {
			s[f] = byLine
			continue
		}
		for line, set := range byLine {
			if m[line] == nil {
				m[line] = set
				continue
			}
			for n := range set {
				m[line][n] = true
			}
		}
	}
}

// filter drops diagnostics silenced by s. Framework ("lint")
// diagnostics are never suppressible.
func (s suppressions) filter(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for _, d := range ds {
		if d.Analyzer != "lint" {
			if set := s[d.Pos.Filename][d.Pos.Line]; set[d.Analyzer] {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// NoallocDirective is the doc-comment directive that opts a function
// into the noalloc analyzer.
const NoallocDirective = "//flexcore:noalloc"

// hasNoallocDirective reports whether a function declaration carries
// the //flexcore:noalloc directive in its doc comment.
func hasNoallocDirective(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(c.Text) == NoallocDirective {
			return true
		}
	}
	return false
}
