package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepositoryIsLintClean is the self-test behind the CI gate: the
// repository itself, analyzed with the shipped suite, must produce no
// findings — every genuine violation fixed, every intentional site
// annotated with a reasoned //lint:ignore.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repository analysis is not short")
	}
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "flexcore" {
		t.Fatalf("loaded module %q, want the repository root module", mod.Path)
	}
	diags := Run(mod, nil, DefaultAnalyzers())
	for _, d := range diags {
		t.Errorf("repository finding: %s", d)
	}
}

// TestFixtureGolden pins the exact diagnostic stream of the fixture
// module — positions, messages, analyzer names, suppression filtering
// and sort order — against testdata/fixture.golden. Regenerate with
//
//	go test ./internal/lint -run TestFixtureGolden -update
func TestFixtureGolden(t *testing.T) {
	mod, err := LoadModule("testdata/module")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod, nil, DefaultAnalyzers())
	var b strings.Builder
	for _, d := range diags {
		rel, err := filepath.Rel(mod.Root, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		d.Pos.Filename = filepath.ToSlash(rel)
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()
	golden := filepath.Join("testdata", "fixture.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("fixture diagnostics drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
