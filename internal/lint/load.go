package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, type-checked module package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	Names []string          // file path per Files entry
	Src   map[string][]byte // file path → source bytes
	Types *types.Package
	Info  *types.Info

	imports []string // module-local imports (for topo ordering)
}

// Module is a loaded Go module: every non-test package under its root,
// type-checked in dependency order against one shared FileSet. Test
// files (_test.go) and testdata directories are excluded — the
// contracts flexlint enforces are properties of the shipped code.
type Module struct {
	Root string // absolute module root (directory of go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // dependency order

	sup     suppressions
	supEnts []SuppressionEntry
	supDiag []Diagnostic
	supOnce sync.Once
}

// stdImporter is the shared stdlib importer: the "source" importer
// type-checks standard-library packages from GOROOT source, so no
// pre-built export data is needed. It is package-global so repeated
// loads in one process (the test suite) type-check the stdlib closure
// once. The importer owns a private FileSet; stdlib positions are never
// reported, so the split from the module FileSet is harmless.
var stdImporter = sync.OnceValue(func() types.ImporterFrom {
	return importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom)
})

var stdImportMu sync.Mutex

// moduleImporter resolves module-local import paths from the loader's
// cache and everything else (the stdlib) through stdImporter.
type moduleImporter struct {
	modulePath string
	loaded     map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == m.modulePath || strings.HasPrefix(path, m.modulePath+"/") {
		if pkg := m.loaded[path]; pkg != nil {
			return pkg, nil
		}
		return nil, fmt.Errorf("lint: module package %q not loaded (import cycle or unresolved dependency)", path)
	}
	stdImportMu.Lock()
	defer stdImportMu.Unlock()
	return stdImporter().ImportFrom(path, dir, mode)
}

// LoadModule loads and type-checks every non-test package of the Go
// module rooted at root (the directory containing go.mod).
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*Package, len(dirs))
	for _, dir := range dirs {
		pkg, err := mod.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			byPath[pkg.Path] = pkg
		}
	}

	order, err := topoOrder(byPath)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{modulePath: modPath, loaded: map[string]*types.Package{}}
	for _, pkg := range order {
		if err := mod.typeCheck(pkg, imp); err != nil {
			return nil, err
		}
		imp.loaded[pkg.Path] = pkg.Types
	}
	mod.Pkgs = order
	return mod, nil
}

// Match returns the loaded packages selected by patterns. Supported
// patterns: "./..." (everything), "./dir/..." (a subtree), "./dir" or
// "dir" (one directory), or a full import path. A nil or empty pattern
// list selects everything.
func (m *Module) Match(patterns []string) []*Package {
	if len(patterns) == 0 {
		return m.Pkgs
	}
	var out []*Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		for _, pkg := range m.Pkgs {
			if seen[pkg.Path] || !m.matchOne(pkg, pat) {
				continue
			}
			seen[pkg.Path] = true
			out = append(out, pkg)
		}
	}
	return out
}

func (m *Module) matchOne(pkg *Package, pat string) bool {
	pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
	if pat == "..." || pat == "." || pat == "" {
		return true
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, m.Path), "/")
	if rel == "" {
		rel = "."
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == sub || strings.HasPrefix(rel, sub+"/") || pkg.Path == sub || strings.HasPrefix(pkg.Path, sub+"/")
	}
	return rel == pat || pkg.Path == pat
}

// Suppressions returns the module-wide suppression table, the parsed
// //lint:ignore entries and the diagnostics for malformed ignore
// comments, computed once.
func (m *Module) Suppressions() (suppressions, []SuppressionEntry, []Diagnostic) {
	m.supOnce.Do(func() {
		m.sup = suppressions{}
		for _, pkg := range m.Pkgs {
			for i, f := range pkg.Files {
				s, ents, bad := collectSuppressions(m.Fset, f, pkg.Src[pkg.Names[i]])
				m.sup.merge(s)
				m.supEnts = append(m.supEnts, ents...)
				m.supDiag = append(m.supDiag, bad...)
			}
		}
		sort.Slice(m.supEnts, func(i, j int) bool {
			a, b := m.supEnts[i], m.supEnts[j]
			if a.File != b.File {
				return a.File < b.File
			}
			return a.Line < b.Line
		})
	})
	return m.sup, m.supEnts, m.supDiag
}

// SuppressionEntries returns every //lint:ignore comment of the
// module, sorted by file and line.
func (m *Module) SuppressionEntries() []SuppressionEntry {
	_, ents, _ := m.Suppressions()
	return ents
}

// FilterSuppressed drops the diagnostics silenced by //lint:ignore
// comments anywhere in the module and sorts the remainder.
func (m *Module) FilterSuppressed(ds []Diagnostic) []Diagnostic {
	sup, _, _ := m.Suppressions()
	out := sup.filter(ds)
	sortDiagnostics(out)
	return out
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// packageDirs lists the directories under root that hold at least one
// non-test .go file, skipping testdata, hidden and underscore dirs and
// nested modules.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if n := e.Name(); !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// parseDir parses the non-test files of one directory as one package.
func (m *Module) parseDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	importPath := m.Path
	if rel != "." {
		importPath = m.Path + "/" + filepath.ToSlash(rel)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Dir: dir, Src: map[string][]byte{}}
	name := ""
	for _, e := range ents {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
			continue
		}
		full := filepath.Join(dir, fn)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(m.Fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if name == "" {
			name = file.Name.Name
		} else if file.Name.Name != name {
			return nil, fmt.Errorf("lint: %s: multiple packages in one directory (%s and %s)", dir, name, file.Name.Name)
		}
		pkg.Files = append(pkg.Files, file)
		pkg.Names = append(pkg.Names, full)
		pkg.Src[full] = src
		for _, imp := range file.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == m.Path || strings.HasPrefix(p, m.Path+"/") {
				pkg.imports = append(pkg.imports, p)
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// topoOrder sorts packages so every module-local dependency precedes
// its importers, rejecting import cycles.
func topoOrder(byPath map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %q", p)
		}
		state[p] = visiting
		pkg := byPath[p]
		for _, dep := range pkg.imports {
			if byPath[dep] != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = done
		order = append(order, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// typeCheck runs go/types over one parsed package.
func (m *Module) typeCheck(pkg *Package, imp types.ImporterFrom) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	if firstErr != nil {
		return fmt.Errorf("lint: type error: %w", firstErr)
	}
	if err != nil {
		return fmt.Errorf("lint: type error: %w", err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}
