package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// This file implements the -escapes cross-check of cmd/flexlint: the
// AST-level noalloc analyzer proves the absence of allocation *syntax*
// inside //flexcore:noalloc functions; the escape cross-check parses
// the compiler's own escape-analysis notes (`go build -gcflags=-m`) and
// reports any value the compiler decided to heap-allocate inside an
// annotated function — catching allocations the syntax cannot show
// (escaping locals, spilled variables).

// FuncRange is the source extent of one annotated function.
type FuncRange struct {
	File      string // absolute path
	Name      string
	StartLine int
	EndLine   int
}

// NoallocRanges returns the source ranges of every function in the
// module annotated //flexcore:noalloc.
func (m *Module) NoallocRanges() []FuncRange {
	var out []FuncRange
	for _, pkg := range m.Pkgs {
		for i, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasNoallocDirective(fd) {
					continue
				}
				out = append(out, FuncRange{
					File:      pkg.Names[i],
					Name:      fd.Name.Name,
					StartLine: m.Fset.Position(fd.Pos()).Line,
					EndLine:   m.Fset.Position(fd.End()).Line,
				})
			}
		}
	}
	return out
}

// escapeNote matches the -m lines that indicate a heap allocation:
//
//	internal/core/flexcore.go:217:12: make([]int, d.n) escapes to heap
//	internal/core/pool.go:77:8: moved to heap: w
var escapeNote = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// EscapeDiagnostics parses `go build -gcflags=-m` output and returns a
// diagnostic for every heap allocation the compiler placed inside an
// annotated //flexcore:noalloc function. File names in the build output
// are resolved relative to the module root. The result is unfiltered;
// pass it through Module.FilterSuppressed so //lint:ignore noalloc
// comments cover both the AST and the escape findings.
func EscapeDiagnostics(mod *Module, buildOutput []byte) []Diagnostic {
	ranges := mod.NoallocRanges()
	if len(ranges) == 0 {
		return nil
	}
	byFile := map[string][]FuncRange{}
	for _, r := range ranges {
		byFile[r.File] = append(byFile[r.File], r)
	}
	var out []Diagnostic
	for _, line := range strings.Split(string(buildOutput), "\n") {
		sub := escapeNote.FindStringSubmatch(strings.TrimSpace(line))
		if sub == nil {
			continue
		}
		file := sub[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(mod.Root, file)
		}
		lineNo, _ := strconv.Atoi(sub[2])
		col, _ := strconv.Atoi(sub[3])
		note := sub[4]
		// "leaking param" style notes also contain no allocation; the
		// regexp already restricts to escapes/moved-to-heap.
		for _, r := range byFile[file] {
			if lineNo >= r.StartLine && lineNo <= r.EndLine {
				d := Diagnostic{Analyzer: "noalloc", Message: fmt.Sprintf("escape analysis: %s inside //flexcore:noalloc %s", note, r.Name)}
				d.Pos.Filename = file
				d.Pos.Line = lineNo
				d.Pos.Column = col
				out = append(out, d)
				break
			}
		}
	}
	return out
}
