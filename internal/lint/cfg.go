package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// This file is the framework's small intra-procedural control-flow
// helper: a forward walk over one function body that drives analyzer
// hooks in execution order while maintaining two path-sensitive fact
// sets. "May" facts hold on at least one path reaching a point (used
// by lockscope for locks-possibly-held: union at merges), "must" facts
// hold on every path (used by timeoutguard for deadlines-armed:
// intersection at merges). The walker is deliberately simpler than a
// real CFG: loop bodies are evaluated once (facts established late in
// a body are not propagated back to its top), and break/continue/goto
// conservatively end their path, so both fact kinds can only miss
// findings on such paths, never invent them.
//
// Closures are separate execution contexts: the walker never descends
// into a *ast.FuncLit body — analyzers walk each literal as its own
// function.

// flowFacts is the per-path analysis state at one program point.
type flowFacts struct {
	// may holds facts true on at least one path (union at merges).
	may map[string]bool
	// must holds facts true on every path (intersection at merges).
	must map[string]bool
	// dead marks a path that cannot continue (after return/break);
	// dead paths are excluded from merges.
	dead bool
}

func newFlowFacts() *flowFacts {
	return &flowFacts{may: map[string]bool{}, must: map[string]bool{}}
}

func (f *flowFacts) clone() *flowFacts {
	c := &flowFacts{may: make(map[string]bool, len(f.may)), must: make(map[string]bool, len(f.must)), dead: f.dead}
	for k, v := range f.may {
		c.may[k] = v
	}
	for k, v := range f.must {
		c.must[k] = v
	}
	return c
}

// mayKeys returns the sorted may-facts (deterministic diagnostics).
func (f *flowFacts) mayKeys() []string {
	keys := make([]string, 0, len(f.may))
	for k := range f.may {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// merge folds the state of a sibling branch into f: may-union,
// must-intersection. A dead branch contributes nothing; if f itself is
// dead the other branch's state replaces it.
func (f *flowFacts) merge(o *flowFacts) {
	if o.dead {
		return
	}
	if f.dead {
		*f = *o.clone()
		return
	}
	for k := range o.may {
		f.may[k] = true
	}
	for k := range f.must {
		if !o.must[k] {
			delete(f.must, k)
		}
	}
}

// flowHooks are the analyzer callbacks the walker drives. Every hook
// is optional; each receives the current path facts and may mutate
// them (that is how lockscope records Lock/Unlock transitions and
// timeoutguard records deadline arming).
type flowHooks struct {
	// onCall fires for every call expression, with deferred=true for
	// the call of a defer statement (which runs at function exit, not
	// here — analyzers usually skip fact transitions for it).
	onCall func(call *ast.CallExpr, deferred bool, f *flowFacts)
	// onSend fires for every channel send statement. Sends that are a
	// select communication clause do not fire (the select decides
	// whether anything blocks); onSelect sees those.
	onSend func(s *ast.SendStmt, f *flowFacts)
	// onRecv fires for every <-ch receive expression outside select
	// communication clauses.
	onRecv func(u *ast.UnaryExpr, f *flowFacts)
	// onSelect fires for every select statement, before its clauses.
	onSelect func(s *ast.SelectStmt, f *flowFacts)
	// onRangeChan fires for every range statement; the analyzer checks
	// whether the ranged expression is a channel.
	onRangeChan func(r *ast.RangeStmt, f *flowFacts)
	// onGo fires for every go statement (the spawned call itself runs
	// concurrently and is not treated as executing here).
	onGo func(g *ast.GoStmt, f *flowFacts)
}

// walkFlow drives hooks over body with fresh facts and returns the
// exit-state facts (the merge of every non-dead path reaching the end).
func walkFlow(body *ast.BlockStmt, hooks *flowHooks) *flowFacts {
	f := newFlowFacts()
	flowStmt(body, hooks, f)
	return f
}

// flowStmt walks one statement, updating f in place.
func flowStmt(s ast.Stmt, hooks *flowHooks, f *flowFacts) {
	if s == nil || f.dead {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			if f.dead {
				return
			}
			flowStmt(st, hooks, f)
		}
	case *ast.ExprStmt:
		flowExpr(s.X, hooks, f)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			flowExpr(e, hooks, f)
		}
		for _, e := range s.Lhs {
			flowExpr(e, hooks, f)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		flowExpr(s, hooks, f)
	case *ast.SendStmt:
		flowExpr(s.Chan, hooks, f)
		flowExpr(s.Value, hooks, f)
		if hooks.onSend != nil {
			hooks.onSend(s, f)
		}
	case *ast.IfStmt:
		flowStmt(s.Init, hooks, f)
		flowExpr(s.Cond, hooks, f)
		then := f.clone()
		flowStmt(s.Body, hooks, then)
		els := f.clone()
		flowStmt(s.Else, hooks, els)
		*f = *then
		f.merge(els)
	case *ast.ForStmt:
		flowStmt(s.Init, hooks, f)
		flowExpr(s.Cond, hooks, f)
		one := f.clone()
		flowStmt(s.Body, hooks, one)
		flowStmt(s.Post, hooks, one)
		// The zero-iteration path is f itself; one full iteration is
		// merged in. (Facts set late in a body are not re-fed to its
		// top — see the file comment.)
		f.merge(one)
	case *ast.RangeStmt:
		flowExpr(s.X, hooks, f)
		if hooks.onRangeChan != nil {
			hooks.onRangeChan(s, f)
		}
		one := f.clone()
		flowStmt(s.Body, hooks, one)
		f.merge(one)
	case *ast.SwitchStmt:
		flowStmt(s.Init, hooks, f)
		flowExpr(s.Tag, hooks, f)
		flowCases(s.Body, hooks, f)
	case *ast.TypeSwitchStmt:
		flowStmt(s.Init, hooks, f)
		flowStmt(s.Assign, hooks, f)
		flowCases(s.Body, hooks, f)
	case *ast.SelectStmt:
		if hooks.onSelect != nil {
			hooks.onSelect(s, f)
		}
		var branches []*flowFacts
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			bf := f.clone()
			flowCommStmt(comm.Comm, hooks, bf)
			for _, st := range comm.Body {
				if bf.dead {
					break
				}
				flowStmt(st, hooks, bf)
			}
			branches = append(branches, bf)
		}
		if len(branches) > 0 {
			*f = *branches[0]
			for _, b := range branches[1:] {
				f.merge(b)
			}
		}
	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			flowExpr(a, hooks, f)
		}
		if hooks.onCall != nil {
			hooks.onCall(s.Call, true, f)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			flowExpr(a, hooks, f)
		}
		if hooks.onGo != nil {
			hooks.onGo(s, f)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			flowExpr(e, hooks, f)
		}
		f.dead = true
	case *ast.BranchStmt:
		// break/continue/goto end this path conservatively; their
		// facts do not reach the post-loop merge (may miss findings
		// on such paths, never invents them).
		f.dead = true
	case *ast.LabeledStmt:
		flowStmt(s.Stmt, hooks, f)
	default:
		flowExpr(s, hooks, f)
	}
}

// flowCases walks the case clauses of a switch body: each clause from
// a clone of the entry state, all merged; without a default clause the
// fall-past path (entry state unchanged) joins the merge too.
func flowCases(body *ast.BlockStmt, hooks *flowHooks, f *flowFacts) {
	hasDefault := false
	var branches []*flowFacts
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		bf := f.clone()
		for _, e := range cc.List {
			flowExpr(e, hooks, bf)
		}
		for _, st := range cc.Body {
			if bf.dead {
				break
			}
			flowStmt(st, hooks, bf)
		}
		branches = append(branches, bf)
	}
	if !hasDefault {
		branches = append(branches, f.clone())
	}
	if len(branches) > 0 {
		*f = *branches[0]
		for _, b := range branches[1:] {
			f.merge(b)
		}
	}
}

// flowCommStmt walks a select communication statement without firing
// onSend/onRecv for the communication operation itself — whether the
// select blocks is onSelect's judgement (a default clause makes every
// communication non-blocking).
func flowCommStmt(s ast.Stmt, hooks *flowHooks, f *flowFacts) {
	switch s := s.(type) {
	case nil: // default clause
	case *ast.SendStmt:
		flowExpr(s.Chan, hooks, f)
		flowExpr(s.Value, hooks, f)
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			flowExpr(u.X, hooks, f)
			return
		}
		flowExpr(s.X, hooks, f)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				flowExpr(u.X, hooks, f)
				continue
			}
			flowExpr(e, hooks, f)
		}
	default:
		flowStmt(s, hooks, f)
	}
}

// flowExpr fires the call/receive hooks for every call expression and
// channel receive inside n, in source order, without descending into
// function literals (separate execution contexts).
func flowExpr(n ast.Node, hooks *flowHooks, f *flowFacts) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if hooks.onCall != nil {
				hooks.onCall(x, false, f)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && hooks.onRecv != nil {
				hooks.onRecv(x, f)
			}
		}
		return true
	})
}

// funcScopes yields every function body in a file — each declaration
// and each function literal — as an independent analysis scope.
func funcScopes(file *ast.File, visit func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd, nil, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				visit(fd, lit, lit.Body)
			}
			return true
		})
	}
}
