package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Statuscase keeps every switch over the wire Status type exhaustive:
// a switch whose tag has the named type Status must either list every
// Status constant its defining package declares or carry a default
// clause. The wire protocol grows codes over time (StatusExpired
// arrived in PR 9); without this check a new code silently falls
// through client, load-generator and metrics switches and is counted
// as nothing at all. The check is value-based (two names for one value
// count once) and gives up only when a case arm is non-constant —
// exhaustiveness is then not statically decidable.
var Statuscase = &Analyzer{
	Name: "statuscase",
	Doc:  "switches over the wire Status type must be exhaustive or carry default",
	Run:  runStatuscase,
}

func runStatuscase(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkStatusSwitch(pass, sw)
			return true
		})
	}
}

func checkStatusSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tagType := pass.TypeOf(sw.Tag)
	named := namedStatusType(tagType)
	if named == nil {
		return
	}
	// Every package-level constant of exactly this type, by value
	// (aliased names for one value need only one case between them).
	constants := map[string][]string{} // exact value → names
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		constants[key] = append(constants[key], c.Name())
	}
	if len(constants) == 0 {
		return
	}
	covered := map[string]bool{}
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: future codes have a landing place
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant arm: coverage is not decidable
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for val, names := range constants {
		if !covered[val] {
			sort.Strings(names)
			missing = append(missing, names[0])
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Switch, "switch on %s does not handle %s — add the missing cases or a default so new status codes cannot fall through silently",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// namedStatusType returns the named type when t is (an alias of) a
// type literally named "Status" with an integer underlying type — the
// wire status convention this analyzer guards.
func namedStatusType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Name() != "Status" || n.Obj().Pkg() == nil {
		return nil
	}
	b, ok := n.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	return n
}
