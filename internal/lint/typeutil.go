package lint

import (
	"go/ast"
	"go/types"
)

// Shared type-resolution helpers for the concurrency analyzers
// (lockscope, waitdiscipline, timeoutguard).

// calleeFunc resolves the called function or method object of a call
// expression, or nil (built-ins, function values, indirect calls).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isNamedType reports whether t (possibly behind a pointer) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// hasAnyMethod reports whether the method set of t (or *t) contains a
// method with one of the given names.
func hasAnyMethod(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	if _, ok := t.Underlying().(*types.Interface); ok {
		ms = types.NewMethodSet(t)
	}
	for i := 0; i < ms.Len(); i++ {
		for _, n := range names {
			if ms.At(i).Obj().Name() == n {
				return true
			}
		}
	}
	return false
}

// declIndex maps every function/method object declared in the package
// to its declaration (the package-local call-graph substrate).
func declIndex(pass *Pass) map[*types.Func]*ast.FuncDecl {
	idx := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				idx[fn] = fd
			}
		}
	}
	return idx
}

// selectorRecv returns the receiver expression and method name of a
// method-call expression, or nil.
func selectorRecv(call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	return sel.X, sel.Sel.Name
}

// isPkgFunc reports whether a call targets the package-level function
// pkgPath.name (e.g. time.Sleep, io.ReadFull).
func isPkgFunc(pass *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// rootObj resolves the object a channel-ish expression denotes: the
// variable of a plain identifier, or the field object of a selector
// chain (c.done). Used to match a goroutine's completion signal to the
// spawner's wait site.
func rootObj(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.Info.Uses[e]
	case *ast.SelectorExpr:
		return pass.Info.Uses[e.Sel]
	}
	return nil
}
