package lint

import (
	"flag"
	"fmt"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestEscapeDiagnostics feeds synthetic `go build -gcflags=-m` output
// through the escape cross-check: a heap note inside an annotated
// function must be reported (under the noalloc analyzer name, so
// //lint:ignore noalloc covers it), notes outside annotated functions
// and non-allocation notes must not.
func TestEscapeDiagnostics(t *testing.T) {
	mod, err := LoadModule("testdata/module")
	if err != nil {
		t.Fatal(err)
	}
	ranges := mod.NoallocRanges()
	var scratch FuncRange
	for _, r := range ranges {
		if r.Name == "scratch" {
			scratch = r
		}
	}
	if scratch.Name == "" {
		t.Fatal("fixture function scratch not found in NoallocRanges")
	}
	inside := scratch.StartLine + 1
	build := strings.Join([]string{
		// Relative path, inside an annotated function: reported.
		fmt.Sprintf("hot/hot.go:%d:9: make([]float64, n) escapes to heap", inside),
		// Same line, non-allocation note: ignored.
		fmt.Sprintf("hot/hot.go:%d:14: leaking param: n", inside),
		// Outside any annotated function: ignored.
		"hot/hot.go:10000:1: make([]int, 4) escapes to heap",
		// Unrelated file: ignored.
		"pool/pool.go:7:2: moved to heap: bufs",
		"# fixture/hot",
	}, "\n")
	diags := EscapeDiagnostics(mod, []byte(build))
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 escape diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "noalloc" {
		t.Errorf("escape findings must report as noalloc (shared suppressions), got %q", d.Analyzer)
	}
	if !strings.Contains(d.Message, "escapes to heap") || !strings.Contains(d.Message, "scratch") {
		t.Errorf("unexpected message %q", d.Message)
	}
	if d.Pos.Line != inside {
		t.Errorf("diagnostic at line %d, want %d", d.Pos.Line, inside)
	}
}

// TestNoallocRangesCoverFixture spot-checks the annotated-function
// index the escape mode is built on.
func TestNoallocRangesCoverFixture(t *testing.T) {
	mod, err := LoadModule("testdata/module")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range mod.NoallocRanges() {
		if r.EndLine < r.StartLine {
			t.Errorf("inverted range for %s: %d..%d", r.Name, r.StartLine, r.EndLine)
		}
		names[r.Name] = true
	}
	for _, want := range []string{"grow", "scratch", "box", "amortized"} {
		if !names[want] {
			t.Errorf("annotated fixture %s missing from NoallocRanges", want)
		}
	}
	if names["unannotated"] {
		t.Error("unannotated function wrongly indexed as noalloc")
	}
}
