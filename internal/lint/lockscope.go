package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockscope forbids blocking while a sync.Mutex or sync.RWMutex is
// held: a channel send/receive, a blocking select, time.Sleep,
// WaitGroup/Cond waiting, conn or buffered I/O, dialing — or a call to
// a same-package function that transitively does any of those — inside
// a Lock/Unlock window stalls every other contender of the mutex (and,
// for the serve path, can deadlock admission against drain). The
// analysis is path-sensitive through the framework's flow walker:
// Lock/Unlock pairing is tracked across branches, `defer mu.Unlock()`
// keeps the mutex held for the rest of the function (exactly the
// window other goroutines observe), and a lock released on one branch
// but not the other is still held at the merge. Blocking-call
// detection is intra-package: calls into other packages are trusted
// (their own lockscope run covers them).
var Lockscope = &Analyzer{
	Name: "lockscope",
	Doc:  "no channel ops, conn I/O, time.Sleep or transitively blocking calls while a sync mutex is held",
	Run:  runLockscope,
}

func runLockscope(pass *Pass) {
	blockers := blockingFuncs(pass)
	reported := map[string]bool{}
	for _, file := range pass.Files {
		funcScopes(file, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
			checkLockScope(pass, body, blockers, reported)
		})
	}
}

// checkLockScope walks one function body tracking the held-lock set in
// the may-facts (a lock possibly held on some path is a finding — the
// schedule chooses the path at runtime).
func checkLockScope(pass *Pass, body *ast.BlockStmt, blockers map[*types.Func]string, reported map[string]bool) {
	report := func(pos token.Pos, what string, f *flowFacts) {
		if len(f.may) == 0 {
			return
		}
		held := strings.Join(f.mayKeys(), ", ")
		key := fmt.Sprintf("%d:%s", pos, what)
		if reported[key] {
			return
		}
		reported[key] = true
		pass.Reportf(pos, "%s while %s is held — blocking under a mutex stalls every contender", what, held)
	}
	hooks := &flowHooks{
		onCall: func(call *ast.CallExpr, deferred bool, f *flowFacts) {
			if key, acquire, ok := mutexOp(pass, call); ok {
				if deferred {
					return // defer mu.Unlock(): held until function exit
				}
				if acquire {
					f.may[key] = true
				} else {
					delete(f.may, key)
				}
				return
			}
			if deferred {
				return // deferred calls run at exit, after deferred unlocks
			}
			if what := blockingCall(pass, call, blockers); what != "" {
				report(call.Pos(), what, f)
			}
		},
		onSend: func(s *ast.SendStmt, f *flowFacts) {
			report(s.Arrow, "channel send", f)
		},
		onRecv: func(u *ast.UnaryExpr, f *flowFacts) {
			report(u.OpPos, "channel receive", f)
		},
		onSelect: func(s *ast.SelectStmt, f *flowFacts) {
			if !selectHasDefault(s) {
				report(s.Select, "blocking select", f)
			}
		},
		onRangeChan: func(r *ast.RangeStmt, f *flowFacts) {
			if t := pass.TypeOf(r.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(r.For, "range over channel", f)
				}
			}
		},
	}
	walkFlow(body, hooks)
}

// mutexOp classifies a call as a sync.Mutex/RWMutex transition,
// returning the normalized receiver key and whether it acquires.
func mutexOp(pass *Pass, call *ast.CallExpr) (key string, acquire, ok bool) {
	recv, name := selectorRecv(call)
	if recv == nil {
		return "", false, false
	}
	switch name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	t := pass.TypeOf(recv)
	if !isNamedType(t, "sync", "Mutex") && !isNamedType(t, "sync", "RWMutex") {
		return "", false, false
	}
	return types.ExprString(recv), acquire, true
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall describes why a call blocks ("" if it does not): a
// known blocking primitive, or a same-package callee that transitively
// contains one.
func blockingCall(pass *Pass, call *ast.CallExpr, blockers map[*types.Func]string) string {
	if what := blockingPrimitive(pass, call); what != "" {
		return what
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return ""
	}
	if why, ok := blockers[fn]; ok {
		return fmt.Sprintf("call to %s, which blocks (%s)", fn.Name(), why)
	}
	return ""
}

// blockingPrimitive classifies directly blocking calls.
func blockingPrimitive(pass *Pass, call *ast.CallExpr) string {
	if isPkgFunc(pass, call, "time", "Sleep") {
		return "time.Sleep"
	}
	for _, name := range []string{"ReadFull", "ReadAtLeast", "Copy", "CopyN"} {
		if isPkgFunc(pass, call, "io", name) {
			return "io." + name
		}
	}
	for _, name := range []string{"Dial", "DialTimeout", "Listen"} {
		if isPkgFunc(pass, call, "net", name) {
			return "net." + name
		}
	}
	recv, name := selectorRecv(call)
	if recv == nil {
		return ""
	}
	t := pass.TypeOf(recv)
	switch name {
	case "Wait":
		if isNamedType(t, "sync", "WaitGroup") {
			return "WaitGroup.Wait"
		}
		if isNamedType(t, "sync", "Cond") {
			return "Cond.Wait"
		}
	case "Read", "Write", "Flush", "ReadFrom", "WriteTo":
		if isConnIO(t) {
			return fmt.Sprintf("%s I/O", types.ExprString(call.Fun))
		}
	}
	return ""
}

// isConnIO reports whether a receiver type does potentially unbounded
// I/O: any deadline-capable conn (net.Conn and friends, detected by
// method set so test fakes count too) or a bufio reader/writer (whose
// fill/flush hits the underlying conn).
func isConnIO(t types.Type) bool {
	return hasAnyMethod(t, "SetReadDeadline", "SetWriteDeadline", "SetDeadline") ||
		isNamedType(t, "bufio", "Reader") || isNamedType(t, "bufio", "Writer") ||
		isNamedType(t, "bufio", "ReadWriter")
}

// blockingFuncs computes the package-local transitive-blocking set:
// functions whose body (outside closures — those run in their own
// goroutine or context) contains a blocking primitive, a channel
// operation, or a call to another blocking same-package function.
func blockingFuncs(pass *Pass) map[*types.Func]string {
	idx := declIndex(pass)
	out := map[*types.Func]string{}

	// Seed: direct primitives and channel operations.
	for fn, fd := range idx {
		if why := directBlockReason(pass, fd.Body); why != "" {
			out[fn] = why
		}
	}
	// Close over package-local calls, deterministically (sorted by
	// position) so the recorded reason is stable across runs.
	fns := make([]*types.Func, 0, len(idx))
	for fn := range idx {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return idx[fns[i]].Pos() < idx[fns[j]].Pos() })
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if _, done := out[fn]; done {
				continue
			}
			var why string
			ast.Inspect(idx[fn].Body, func(n ast.Node) bool {
				if why != "" {
					return false
				}
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := calleeFunc(pass, call); callee != nil && callee != fn {
						if _, blocks := out[callee]; blocks {
							why = "calls " + callee.Name()
						}
					}
				}
				return true
			})
			if why != "" {
				out[fn] = why
				changed = true
			}
		}
	}
	return out
}

// directBlockReason scans one body (skipping closures) for a directly
// blocking construct.
func directBlockReason(pass *Pass, body ast.Node) string {
	var why string
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			why = "channel send"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				why = "channel receive"
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				why = "blocking select"
				return false
			}
			// A select with default never blocks: its communication
			// operations are non-blocking attempts, so only the clause
			// bodies (which do execute) are scanned.
			for _, cl := range n.Body.List {
				comm, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				for _, st := range comm.Body {
					if why == "" {
						why = directBlockReason(pass, st)
					}
				}
			}
			return false
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					why = "range over channel"
				}
			}
		case *ast.CallExpr:
			why = blockingPrimitive(pass, n)
		}
		return why == ""
	})
	return why
}
