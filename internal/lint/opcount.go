package lint

import (
	"go/ast"
	"go/types"
)

// Opcount enforces the paper's accounting contract (Tables 1–2): every
// exported detector entry point — Detect, DetectBatch, DetectSoft,
// Prepare, PrepareAll methods in internal/detector and internal/core —
// must thread OpCount/PreprocessStats accounting to the math it runs,
// directly or through same-package callees. A detector whose entry
// point updates no counter reports free work, silently corrupting the
// complexity comparisons the experiments are built on. The check is a
// reachability question over the package-local call graph: from the
// entry point's body, some reachable function must write an
// OpCount/PreprocessStats field (or call a method on one, e.g. Add).
var Opcount = &Analyzer{
	Name:     "opcount",
	Doc:      "exported detector entry points must reach OpCount accounting",
	Packages: []string{"internal/detector", "internal/core"},
	Run:      runOpcount,
}

// opcountEntryPoints are the method names that constitute the public
// detection protocol (detector.Detector / BatchDetector plus the frame
// entry points).
var opcountEntryPoints = map[string]bool{
	"Detect": true, "DetectBatch": true, "DetectSoft": true,
	"Prepare": true, "PrepareAll": true,
}

// accountingTypes are the counter structs whose mutation counts as
// accounting.
var accountingTypes = map[string]bool{"OpCount": true, "PreprocessStats": true}

func runOpcount(pass *Pass) {
	// Index every function/method declaration of the package.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	// Per declaration: does it account directly, and whom does it call?
	accounts := map[*types.Func]bool{}
	calls := map[*types.Func][]*types.Func{}
	for fn, fd := range decls {
		accounts[fn] = accountsDirectly(pass, fd)
		calls[fn] = packageCallees(pass, fd)
	}
	reaches := func(root *types.Func) bool {
		seen := map[*types.Func]bool{}
		stack := []*types.Func{root}
		for len(stack) > 0 {
			fn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[fn] {
				continue
			}
			seen[fn] = true
			if accounts[fn] {
				return true
			}
			stack = append(stack, calls[fn]...)
		}
		return false
	}
	for fn, fd := range decls {
		if fd.Recv == nil || !fn.Exported() || !opcountEntryPoints[fn.Name()] {
			continue
		}
		if !reaches(fn) {
			pass.Reportf(fd.Name.Pos(), "exported entry point %s performs no OpCount accounting, directly or via same-package callees — the detector's work is invisible to the complexity comparison", fn.Name())
		}
	}
}

// accountsDirectly reports whether the function body mutates an
// OpCount/PreprocessStats value or calls a method on one.
func accountsDirectly(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	touches := func(e ast.Expr) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if hit {
				return false
			}
			ex, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if isAccountingType(pass.TypeOf(ex)) {
				hit = true
				return false
			}
			return true
		})
		return hit
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if touches(lhs) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if touches(n.X) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if isAccountingType(pass.TypeOf(sel.X)) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isAccountingType reports whether t is (a pointer to) a named type
// called OpCount or PreprocessStats.
func isAccountingType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && accountingTypes[n.Obj().Name()]
}

// packageCallees lists the same-package functions a body calls.
func packageCallees(pass *Pass, fd *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch f := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = f
		case *ast.SelectorExpr:
			id = f.Sel
		default:
			return true
		}
		if fn, ok := pass.Info.Uses[id].(*types.Func); ok && fn.Pkg() == pass.Pkg {
			out = append(out, fn)
		}
		return true
	})
	return out
}
