package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseForSuppressions(t *testing.T, src string) (suppressions, []Diagnostic) {
	t.Helper()
	sup, _, bad := parseForEntries(t, src)
	return sup, bad
}

func parseForEntries(t *testing.T, src string) (suppressions, []SuppressionEntry, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "s.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return collectSuppressions(fset, file, []byte(src))
}

func TestSuppressionInline(t *testing.T) {
	sup, bad := parseForSuppressions(t, `package p

func f() int {
	return g() //lint:ignore determinism reason here
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed diags: %v", bad)
	}
	if !sup["s.go"][4]["determinism"] {
		t.Errorf("inline ignore should silence its own line 4: %v", sup)
	}
}

func TestSuppressionStandalone(t *testing.T) {
	sup, bad := parseForSuppressions(t, `package p

func f() int {
	//lint:ignore floatcmp,noalloc the next line is intentional
	return g()
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed diags: %v", bad)
	}
	for _, a := range []string{"floatcmp", "noalloc"} {
		if !sup["s.go"][5][a] {
			t.Errorf("standalone ignore should silence analyzer %s on line 5: %v", a, sup)
		}
	}
	if len(sup["s.go"][4]) != 0 {
		t.Errorf("standalone ignore must not silence its own line: %v", sup)
	}
}

func TestSuppressionMalformed(t *testing.T) {
	for _, src := range []string{
		"package p\n\n//lint:ignore\nfunc f() {}\n",
		"package p\n\n//lint:ignore floatcmp\nfunc f() {}\n",
	} {
		sup, bad := parseForSuppressions(t, src)
		if len(bad) != 1 {
			t.Errorf("reasonless ignore must be reported, got %v", bad)
			continue
		}
		if bad[0].Analyzer != "lint" {
			t.Errorf("malformed ignore reported under %q, want \"lint\"", bad[0].Analyzer)
		}
		if !strings.Contains(bad[0].Message, "malformed //lint:ignore") {
			t.Errorf("unexpected message %q", bad[0].Message)
		}
		if len(sup) != 0 {
			t.Errorf("malformed ignore must not suppress anything: %v", sup)
		}
	}
}

func TestFilterNeverDropsFrameworkDiags(t *testing.T) {
	sup := suppressions{"s.go": {4: {"lint": true, "floatcmp": true}}}
	ds := []Diagnostic{
		{Pos: token.Position{Filename: "s.go", Line: 4}, Analyzer: "lint", Message: "malformed"},
		{Pos: token.Position{Filename: "s.go", Line: 4}, Analyzer: "floatcmp", Message: "cmp"},
	}
	out := sup.filter(ds)
	if len(out) != 1 || out[0].Analyzer != "lint" {
		t.Errorf("framework diagnostics must survive suppression, got %v", out)
	}
}

func TestSuppressionEntries(t *testing.T) {
	_, ents, bad := parseForEntries(t, `package p

func f() int {
	//lint:ignore determinism,floatcmp standalone reason
	x := g()
	return x + h() //lint:ignore noalloc inline reason
}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed diags: %v", bad)
	}
	if len(ents) != 2 {
		t.Fatalf("want 2 entries, got %d: %v", len(ents), ents)
	}
	e0 := ents[0]
	if e0.Line != 5 || e0.CommentLine != 4 || e0.Reason != "standalone reason" ||
		len(e0.Analyzers) != 2 || e0.Analyzers[0] != "determinism" || e0.Analyzers[1] != "floatcmp" {
		t.Errorf("standalone entry wrong: %+v", e0)
	}
	e1 := ents[1]
	if e1.Line != 6 || e1.CommentLine != 6 || e1.Reason != "inline reason" ||
		len(e1.Analyzers) != 1 || e1.Analyzers[0] != "noalloc" {
		t.Errorf("inline entry wrong: %+v", e1)
	}
}

func TestNoallocDirectiveDetection(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "d.go", `package p

// f is documented.
//
//flexcore:noalloc
func f() {}

// g mentions flexcore:noalloc in prose only.
func g() {}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var got []bool
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			got = append(got, hasNoallocDirective(fd))
		}
	}
	if len(got) != 2 || !got[0] || got[1] {
		t.Errorf("directive detection wrong: %v", got)
	}
}
