package lint

// Run executes the analyzers over the packages of mod selected by
// patterns (nil = every package), applies //lint:ignore suppressions
// and returns the surviving diagnostics sorted by position. Malformed
// suppression comments in the analyzed packages are reported under the
// "lint" analyzer name and cannot themselves be suppressed.
func Run(mod *Module, patterns []string, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	selected := mod.Match(patterns)
	selectedSet := map[string]bool{}
	for _, pkg := range selected {
		selectedSet[pkg.Path] = true
	}
	for _, pkg := range selected {
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     mod.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	_, bad := mod.Suppressions()
	for _, d := range bad {
		if selectedSet[pkgPathForFile(mod, d.Pos.Filename)] {
			diags = append(diags, d)
		}
	}
	return mod.FilterSuppressed(diags)
}

// pkgPathForFile maps a file name back to its package import path.
func pkgPathForFile(mod *Module, filename string) string {
	for _, pkg := range mod.Pkgs {
		if _, ok := pkg.Src[filename]; ok {
			return pkg.Path
		}
	}
	return ""
}

// DefaultAnalyzers returns the analyzer suite flexlint ships: the
// repository's determinism, zero-allocation, float-comparison, pool-
// discipline and OpCount-accounting contracts.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{Noalloc, Determinism, Floatcmp, Pooldiscipline, Opcount}
}
