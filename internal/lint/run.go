package lint

import "strconv"

// Run executes the analyzers over the packages of mod selected by
// patterns (nil = every package), applies //lint:ignore suppressions
// and returns the surviving diagnostics sorted by position. Malformed
// suppression comments in the analyzed packages are reported under the
// "lint" analyzer name and cannot themselves be suppressed.
func Run(mod *Module, patterns []string, analyzers []*Analyzer) []Diagnostic {
	return mod.FilterSuppressed(RunRaw(mod, patterns, analyzers))
}

// RunRaw executes the analyzers like Run but keeps every diagnostic,
// including ones a //lint:ignore would silence — the substrate of the
// suppressions audit, which needs to know whether an ignore still has
// a finding under it.
func RunRaw(mod *Module, patterns []string, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	selected := mod.Match(patterns)
	selectedSet := map[string]bool{}
	for _, pkg := range selected {
		selectedSet[pkg.Path] = true
	}
	for _, pkg := range selected {
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     mod.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	_, _, bad := mod.Suppressions()
	for _, d := range bad {
		if selectedSet[pkgPathForFile(mod, d.Pos.Filename)] {
			diags = append(diags, d)
		}
	}
	return diags
}

// pkgPathForFile maps a file name back to its package import path.
func pkgPathForFile(mod *Module, filename string) string {
	for _, pkg := range mod.Pkgs {
		if _, ok := pkg.Src[filename]; ok {
			return pkg.Path
		}
	}
	return ""
}

// DefaultAnalyzers returns the analyzer suite flexlint ships: the
// repository's determinism, zero-allocation, float-comparison,
// pool-discipline and OpCount-accounting contracts for the compute
// path, plus the concurrency and wire-protocol contracts of the
// serving layer (lock scope, goroutine joining, conn deadline arming,
// status-switch exhaustiveness, wire-offset tiling).
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Noalloc, Determinism, Floatcmp, Pooldiscipline, Opcount,
		Lockscope, Waitdiscipline, Timeoutguard, Statuscase, Wireoffset,
	}
}

// SuppressionAudit classifies one //lint:ignore comment: Active when
// at least one raw (pre-suppression) diagnostic still lands on the
// line and analyzer it silences, stale otherwise. Stale ignores are
// worse than dead code — they pre-silence future findings at that
// line — so flexlint -suppressions reports them and exits nonzero.
type SuppressionAudit struct {
	Entry  SuppressionEntry
	Active bool
}

// AuditSuppressions audits every suppression comment in the packages
// selected by patterns against the raw findings of the analyzers plus
// any extra raw diagnostics (the -escapes side when enabled).
func AuditSuppressions(mod *Module, patterns []string, analyzers []*Analyzer, extra []Diagnostic) []SuppressionAudit {
	raw := append(RunRaw(mod, patterns, analyzers), extra...)
	hit := map[string]bool{}
	for _, d := range raw {
		hit[suppressionKey(d.Pos.Filename, d.Pos.Line, d.Analyzer)] = true
	}
	selected := map[string]bool{}
	for _, pkg := range mod.Match(patterns) {
		selected[pkg.Path] = true
	}
	var out []SuppressionAudit
	for _, e := range mod.SuppressionEntries() {
		if !selected[pkgPathForFile(mod, e.File)] {
			continue
		}
		active := false
		for _, a := range e.Analyzers {
			if hit[suppressionKey(e.File, e.Line, a)] {
				active = true
				break
			}
		}
		out = append(out, SuppressionAudit{Entry: e, Active: active})
	}
	return out
}

func suppressionKey(file string, line int, analyzer string) string {
	return file + "\x00" + analyzer + "\x00" + strconv.Itoa(line)
}
