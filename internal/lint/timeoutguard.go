package lint

import (
	"go/ast"
	"go/types"
)

// Timeoutguard turns PR 9's connection hygiene into a contract: inside
// internal/serve, every read or write that can touch a connection — a
// Read/Write on a deadline-capable conn, a bufio fill/flush, an
// io.ReadFull, or a call into a same-package helper that does those on
// a conn-ish argument — must be dominated on every path by a deadline
// arming call (SetReadDeadline/SetDeadline for reads,
// SetWriteDeadline/SetDeadline for writes, directly or through a
// same-package arming helper such as armRead/armWrite). A single
// unarmed site hands one stalled peer the power to wedge a shard's
// ingest or response path forever. The domination check is
// path-sensitive (must-facts of the flow walker): arming on one branch
// only does not cover the other.
//
// Methods whose receiver is itself deadline-capable are exempt: a conn
// wrapper (fault injector, middleware) delegating Read/Write is the
// conn — its deadlines are armed by whoever owns it.
var Timeoutguard = &Analyzer{
	Name:     "timeoutguard",
	Doc:      "conn reads/writes in internal/serve must be deadline-armed on every path",
	Packages: []string{"internal/serve"},
	Run:      runTimeoutguard,
}

// Must-fact keys: "armed read deadline" / "armed write deadline".
const (
	armedRead  = "read"
	armedWrite = "write"
)

func runTimeoutguard(pass *Pass) {
	idx := declIndex(pass)
	readArm, writeArm := armingFuncs(pass, idx)
	for _, file := range pass.Files {
		funcScopes(file, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			// Conn wrappers delegate; their receiver IS the conn.
			if lit == nil && declRecvDeadlineCapable(pass, decl) {
				return
			}
			checkDeadlineArming(pass, body, idx, readArm, writeArm)
		})
	}
}

func checkDeadlineArming(pass *Pass, body *ast.BlockStmt, idx map[*types.Func]*ast.FuncDecl, readArm, writeArm map[*types.Func]bool) {
	hooks := &flowHooks{
		onCall: func(call *ast.CallExpr, deferred bool, f *flowFacts) {
			if deferred {
				return
			}
			// Arming transitions first: an arming call guards the
			// sites after it on this path.
			if r, w := armsDeadline(pass, call, readArm, writeArm); r || w {
				if r {
					f.must[armedRead] = true
				}
				if w {
					f.must[armedWrite] = true
				}
				return
			}
			if isReadSite(pass, call, idx) && !f.must[armedRead] {
				pass.Reportf(call.Pos(), "conn read %s without a SetReadDeadline on every path to it — one stalled peer wedges this goroutine forever", types.ExprString(call.Fun))
			}
			if isWriteSite(pass, call, idx) && !f.must[armedWrite] {
				pass.Reportf(call.Pos(), "conn write %s without a SetWriteDeadline on every path to it — one stalled peer wedges this goroutine forever", types.ExprString(call.Fun))
			}
		},
	}
	walkFlow(body, hooks)
}

// armsDeadline classifies a call as arming the read and/or write
// deadline: a direct Set*Deadline method on a deadline-capable value,
// or a call to a same-package function that transitively does so.
func armsDeadline(pass *Pass, call *ast.CallExpr, readArm, writeArm map[*types.Func]bool) (read, write bool) {
	if recv, name := selectorRecv(call); recv != nil && deadlineCapable(pass.TypeOf(recv)) {
		switch name {
		case "SetReadDeadline":
			return true, false
		case "SetWriteDeadline":
			return false, true
		case "SetDeadline":
			return true, true
		}
	}
	if fn := calleeFunc(pass, call); fn != nil {
		return readArm[fn], writeArm[fn]
	}
	return false, false
}

// armingFuncs computes, transitively over package-local calls, the
// functions whose body arms a read or write deadline (the armRead /
// armWrite helper pattern).
func armingFuncs(pass *Pass, idx map[*types.Func]*ast.FuncDecl) (readArm, writeArm map[*types.Func]bool) {
	readArm, writeArm = map[*types.Func]bool{}, map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, fd := range idx {
			if readArm[fn] && writeArm[fn] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				r, w := false, false
				if recv, name := selectorRecv(call); recv != nil && deadlineCapable(pass.TypeOf(recv)) {
					r = name == "SetReadDeadline" || name == "SetDeadline"
					w = name == "SetWriteDeadline" || name == "SetDeadline"
				}
				if callee := calleeFunc(pass, call); callee != nil && callee != fn {
					r = r || readArm[callee]
					w = w || writeArm[callee]
				}
				if r && !readArm[fn] {
					readArm[fn] = true
					changed = true
				}
				if w && !writeArm[fn] {
					writeArm[fn] = true
					changed = true
				}
				return true
			})
		}
	}
	return readArm, writeArm
}

// isReadSite reports whether a call reads from a connection: a .Read
// on a conn-ish value, io.ReadFull/ReadAtLeast with a conn-ish reader,
// or a same-package reader helper handed a conn-ish argument
// (ReadFrame(c.br, …)).
func isReadSite(pass *Pass, call *ast.CallExpr, idx map[*types.Func]*ast.FuncDecl) bool {
	if recv, name := selectorRecv(call); recv != nil && name == "Read" && connishReader(pass.TypeOf(recv)) {
		return true
	}
	if (isPkgFunc(pass, call, "io", "ReadFull") || isPkgFunc(pass, call, "io", "ReadAtLeast")) && len(call.Args) > 0 {
		return connishReader(pass.TypeOf(call.Args[0]))
	}
	if fn := calleeFunc(pass, call); fn != nil {
		if fd := idx[fn]; fd != nil && bodyDoesRawIO(pass, fd.Body, true) {
			return anyConnishArg(pass, call, connishReader)
		}
	}
	return false
}

// isWriteSite mirrors isReadSite for writes and bufio flushes.
func isWriteSite(pass *Pass, call *ast.CallExpr, idx map[*types.Func]*ast.FuncDecl) bool {
	if recv, name := selectorRecv(call); recv != nil {
		if (name == "Write" || name == "Flush") && connishWriter(pass.TypeOf(recv)) {
			return true
		}
	}
	if fn := calleeFunc(pass, call); fn != nil {
		if fd := idx[fn]; fd != nil && bodyDoesRawIO(pass, fd.Body, false) {
			return anyConnishArg(pass, call, connishWriter)
		}
	}
	return false
}

// anyConnishArg reports whether any call argument satisfies the
// conn-ish predicate — the channel through which a generic helper
// (ReadFrame over an io.Reader) gets attached to a real connection.
func anyConnishArg(pass *Pass, call *ast.CallExpr, connish func(types.Type) bool) bool {
	for _, a := range call.Args {
		if connish(pass.TypeOf(a)) {
			return true
		}
	}
	return false
}

// bodyDoesRawIO reports whether a helper body performs raw read (or
// write) operations on anything — the classifier that makes ReadFrame
// a read helper even though its parameter is a plain io.Reader.
func bodyDoesRawIO(pass *Pass, body *ast.BlockStmt, read bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if read {
			if isPkgFunc(pass, call, "io", "ReadFull") || isPkgFunc(pass, call, "io", "ReadAtLeast") {
				found = true
			}
			if _, name := selectorRecv(call); name == "Read" && len(call.Args) == 1 {
				found = true
			}
		} else {
			if _, name := selectorRecv(call); (name == "Write" && len(call.Args) == 1) || (name == "Flush" && len(call.Args) == 0) {
				found = true
			}
		}
		return !found
	})
	return found
}

// deadlineCapable reports whether a type's method set offers deadline
// control (net.Conn and any test fake implementing it).
func deadlineCapable(t types.Type) bool {
	return hasAnyMethod(t, "SetReadDeadline", "SetWriteDeadline", "SetDeadline")
}

// connishReader: a deadline-capable conn or a bufio.Reader (whose fill
// blocks on the underlying conn).
func connishReader(t types.Type) bool {
	return deadlineCapable(t) || isNamedType(t, "bufio", "Reader")
}

// connishWriter: a deadline-capable conn or a bufio.Writer (whose
// flush blocks on the underlying conn).
func connishWriter(t types.Type) bool {
	return deadlineCapable(t) || isNamedType(t, "bufio", "Writer")
}

// declRecvDeadlineCapable reports whether a method's receiver type is
// itself deadline-capable (a conn wrapper).
func declRecvDeadlineCapable(pass *Pass, decl *ast.FuncDecl) bool {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return false
	}
	return deadlineCapable(pass.TypeOf(decl.Recv.List[0].Type))
}
