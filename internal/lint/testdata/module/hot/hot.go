// Package hot is the noalloc fixture: //flexcore:noalloc-annotated
// functions seeded with one instance of every allocation class the
// analyzer recognizes, plus negative cases that must stay silent.
package hot

type point struct{ x, y float64 }

//flexcore:noalloc
func grow(xs []int, v int) []int {
	return append(xs, v) // want "append may grow its backing array"
}

//flexcore:noalloc
func scratch(n int) []float64 {
	return make([]float64, n) // want "make allocates"
}

//flexcore:noalloc
func fresh() *point {
	return new(point) // want "new allocates"
}

//flexcore:noalloc
func table() []int {
	return []int{1, 2, 3} // want "slice literal allocates"
}

//flexcore:noalloc
func index() map[string]int {
	return map[string]int{"a": 1} // want "map literal allocates"
}

//flexcore:noalloc
func ref() *point {
	return &point{x: 1} // want "composite literal allocates"
}

//flexcore:noalloc
func capture(start int) func() int {
	i := start
	return func() int { // want "closure captures i"
		i++
		return i
	}
}

//flexcore:noalloc
func spawn(f func()) {
	go f() // want "go statement allocates a goroutine" "goroutine spawns a function this package cannot see into"
}

//flexcore:noalloc
func join(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//flexcore:noalloc
func stringify(bs []byte) string {
	return string(bs) // want "conversion to string allocates"
}

//flexcore:noalloc
func box(v int) any {
	return v // want "boxes into interface"
}

// Negative cases — all of these must produce no finding.

//flexcore:noalloc
func valueLiteral() point {
	return point{x: 1, y: 2} // value struct literal: stack, no allocation
}

//flexcore:noalloc
func staticClosure() func(int) int {
	return func(v int) int { return v + 1 } // captures nothing: static
}

//flexcore:noalloc
func constBox() any {
	return 42 // untyped constant boxes to static data
}

//flexcore:noalloc
func guarded(xs []int) int {
	if len(xs) == 0 {
		panic("hot: empty input") // constant string: no boxing allocation
	}
	return xs[0]
}

//flexcore:noalloc
func amortized(xs []int, v int) []int {
	return append(xs, v) //lint:ignore noalloc fixture: capacity reserved by the caller
}

// unannotated may allocate freely; the analyzer only checks opted-in
// functions.
func unannotated(n int) []int {
	out := make([]int, n)
	return append(out, n)
}
