package serve

// Status mirrors the wire status convention: a named integer type with
// package-level constants. statuscase keys on the type name.
type Status uint8

const (
	StatusOK   Status = 0
	StatusBusy Status = 1
	StatusGone Status = 2

	// StatusFinal aliases StatusGone by value: one case covers both.
	StatusFinal Status = 2
)

// exhaustive lists every distinct value — clean.
func exhaustive(s Status) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBusy:
		return "busy"
	case StatusGone:
		return "gone"
	}
	return "unknown"
}

// defaulted gives future codes a landing place — clean.
func defaulted(s Status) int {
	switch s {
	case StatusOK:
		return 0
	default:
		return 1
	}
}

// missing drops StatusGone: the canonical deliberately-broken case.
func missing(s Status) int {
	switch s { // want "switch on Status does not handle StatusFinal"
	case StatusOK:
		return 0
	case StatusBusy:
		return 1
	}
	return 2
}

// nonConstantArm makes coverage statically undecidable — the analyzer
// gives up rather than guess.
func nonConstantArm(s, boundary Status) int {
	switch s {
	case boundary:
		return 0
	case StatusOK:
		return 1
	}
	return 2
}

// suppressedSwitch documents a deliberate partial switch.
func suppressedSwitch(s Status) bool {
	//lint:ignore statuscase fixture: only terminal codes matter here, everything else falls through
	switch s {
	case StatusGone:
		return true
	}
	return false
}
