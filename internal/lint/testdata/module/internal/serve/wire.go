package serve

import "encoding/binary"

// Wire sizes for the wireoffset fixtures.
const (
	hdrSize  = 8
	tinySize = 4
)

// encodeGood tiles [0,8) exactly: u32 id, u16 count, flag, version.
//
//flexcore:wire b hdrSize
func encodeGood(b []byte, id uint32, n uint16, flag, ver byte) {
	binary.BigEndian.PutUint32(b[0:4], id)
	binary.BigEndian.PutUint16(b[4:6], n)
	b[6] = flag
	b[7] = ver
}

// decodeGood re-reads the id field to validate before decoding: a
// repeated access to the same interval is one field, not an overlap.
//
//flexcore:wire b hdrSize
func decodeGood(b []byte) (uint32, uint16, byte, byte) {
	if binary.BigEndian.Uint32(b[0:4]) == 0 {
		return 0, 0, 0, 0
	}
	id := binary.BigEndian.Uint32(b[0:4])
	n := binary.BigEndian.Uint16(b[4:6])
	return id, n, b[6], b[7]
}

// encodeOverlap claims byte 3 twice: the canonical deliberately-broken
// case — encoder and decoder cannot agree on where the count lives.
//
//flexcore:wire b hdrSize
func encodeOverlap(b []byte, id uint32, n uint16) {
	binary.BigEndian.PutUint32(b[0:4], id)
	binary.BigEndian.PutUint16(b[3:5], n) // want "overlaps the preceding field"
	b[5] = 0
	binary.BigEndian.PutUint16(b[6:8], n)
}

// encodeGap leaves bytes [4,6) untouched.
//
//flexcore:wire b hdrSize
func encodeGap(b []byte, id uint32, n uint16) {
	binary.BigEndian.PutUint32(b[0:4], id)
	binary.BigEndian.PutUint16(b[6:8], n) // want "the layout has a gap"
}

// encodePast writes one byte beyond the declared frame.
//
//flexcore:wire b tinySize
func encodePast(b []byte, id uint32) {
	binary.BigEndian.PutUint32(b[0:4], id)
	b[4] = 1 // want "runs past the declared size"
}

// encodeShort stops half way: the tail of the frame is never written.
//
//flexcore:wire b hdrSize
func encodeShort(b []byte, id uint32) {
	binary.BigEndian.PutUint32(b[0:4], id) // want "cover only"
}

// encodeSuppressed documents a deliberate overlap (a union field).
//
//flexcore:wire b hdrSize
func encodeSuppressed(b []byte, id uint32, n uint16) {
	binary.BigEndian.PutUint32(b[0:4], id)
	binary.BigEndian.PutUint16(b[3:5], n) //lint:ignore wireoffset fixture: union field, the tag in byte 3 selects the interpretation
	b[5] = 0
	binary.BigEndian.PutUint16(b[6:8], n)
}

// encodeVariableTail: the non-constant tail access is outside the
// header tiling and ignored.
//
//flexcore:wire b hdrSize
func encodeVariableTail(b []byte, id uint32, n uint16, off int, payload []byte) {
	binary.BigEndian.PutUint32(b[0:4], id)
	binary.BigEndian.PutUint16(b[4:6], n)
	b[6] = 0
	b[7] = 0
	copy(b[off:], payload)
}

// badDirective is missing its size operand.
//
//flexcore:wire b // want "malformed"
func badDirective(b []byte) {
	b[0] = 1
}
