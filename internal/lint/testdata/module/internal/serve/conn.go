// Package serve is the serve-scoped fixture package: timeoutguard
// (deadline-armed conn I/O), statuscase (exhaustive Status switches)
// and wireoffset (frame tiling directives) all apply here because the
// fixture import path ends in internal/serve, mirroring the real
// serve package.
package serve

import (
	"bufio"
	"io"
	"time"
)

// fakeConn is deadline-capable by method set — the analyzer detects
// conn-ness structurally, so fixtures need no real sockets.
type fakeConn struct{}

func (fakeConn) Read(p []byte) (int, error)         { return len(p), nil }
func (fakeConn) Write(p []byte) (int, error)        { return len(p), nil }
func (fakeConn) SetReadDeadline(t time.Time) error  { return nil }
func (fakeConn) SetWriteDeadline(t time.Time) error { return nil }
func (fakeConn) SetDeadline(t time.Time) error      { return nil }

// peer owns a conn and its buffered endpoints, like serverConn/Client.
type peer struct {
	c      fakeConn
	br     *bufio.Reader
	bw     *bufio.Writer
	budget time.Duration
}

// armRead / armWrite are the transitive arming-helper pattern: calling
// them counts as arming the respective deadline.
func (p *peer) armRead(now time.Time)  { p.c.SetReadDeadline(now.Add(p.budget)) }
func (p *peer) armWrite(now time.Time) { p.c.SetWriteDeadline(now.Add(p.budget)) }

// nakedWrite is the canonical deliberately-broken case: a conn write
// with no deadline armed on any path.
func (p *peer) nakedWrite(b []byte) {
	p.c.Write(b) // want "conn write p.c.Write without a SetWriteDeadline"
}

// nakedRead blocks in io.ReadFull on the conn-backed reader, unarmed.
func (p *peer) nakedRead(b []byte) {
	io.ReadFull(p.br, b) // want "conn read io.ReadFull without a SetReadDeadline"
}

// armedWrite arms through the helper before buffering and flushing.
func (p *peer) armedWrite(b []byte, now time.Time) {
	p.armWrite(now)
	p.bw.Write(b)
	p.bw.Flush()
}

// branchArmed arms on one branch only — the merge point may be unarmed,
// so the read is not dominated.
func (p *peer) branchArmed(b []byte, fast bool, now time.Time) {
	if fast {
		p.armRead(now)
	}
	p.c.Read(b) // want "conn read p.c.Read without a SetReadDeadline"
}

// bothBranchesArm: arming on every incoming path dominates the read.
func (p *peer) bothBranchesArm(b []byte, fast bool, now time.Time) {
	if fast {
		p.armRead(now)
	} else {
		p.c.SetReadDeadline(now)
	}
	p.c.Read(b)
}

// readMessage does raw I/O on its plain io.Reader parameter, so the
// analyzer classifies it as a reader helper: handing it a conn-backed
// reader makes the call site a read site.
func readMessage(r io.Reader, b []byte) error {
	_, err := io.ReadFull(r, b)
	return err
}

// recvUnarmed reaches the helper with a conn-ish argument, unarmed.
func (p *peer) recvUnarmed(b []byte) {
	readMessage(p.br, b) // want "conn read readMessage without a SetReadDeadline"
}

// recvArmed is the same call dominated by the arming helper.
func (p *peer) recvArmed(b []byte, now time.Time) {
	p.armRead(now)
	readMessage(p.br, b)
}

// dualArmed: SetDeadline arms both directions at once.
func (p *peer) dualArmed(b []byte, now time.Time) {
	p.c.SetDeadline(now)
	p.c.Read(b)
	p.c.Write(b)
}

// Wrapper is a conn middleware: its receiver is itself
// deadline-capable, so its delegating Read is exempt — deadlines are
// armed by whoever owns the wrapper.
type Wrapper struct{ inner fakeConn }

func (w *Wrapper) Read(p []byte) (int, error)         { return w.inner.Read(p) }
func (w *Wrapper) Write(p []byte) (int, error)        { return w.inner.Write(p) }
func (w *Wrapper) SetReadDeadline(t time.Time) error  { return w.inner.SetReadDeadline(t) }
func (w *Wrapper) SetWriteDeadline(t time.Time) error { return w.inner.SetWriteDeadline(t) }
func (w *Wrapper) SetDeadline(t time.Time) error      { return w.inner.SetDeadline(t) }

// suppressed documents a loopback pipe that cannot stall.
func (p *peer) suppressed(b []byte) {
	p.bw.Write(b) //lint:ignore timeoutguard fixture: in-process loopback pipe, the peer cannot stall
	p.bw.Flush()  //lint:ignore timeoutguard fixture: in-process loopback pipe, the peer cannot stall
}
