package core

import "time"

// Suppression fixtures: every violation below carries a //lint:ignore,
// so this file must produce no diagnostics at all — the harness fails
// on any unexpected finding, which is how silence gets asserted.

func inlineSuppressed() int64 {
	return time.Now().UnixNano() //lint:ignore determinism fixture: inline suppression silences its own line
}

func standaloneSuppressed() int64 {
	//lint:ignore determinism fixture: standalone suppression silences the next line
	return time.Now().UnixNano()
}

func multiSuppressed(a float64) bool {
	//lint:ignore determinism,floatcmp fixture: one comment can silence several analyzers on one line
	return a == float64(time.Now().Unix())
}
