// Package core is the determinism-analyzer fixture: it mirrors the
// real repository's internal/core import path so the Packages filter of
// the determinism and opcount analyzers selects it.
package core

import (
	"math/rand/v2"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func jitter() float64 {
	return rand.Float64() // want "global rand.Float64 is process-seeded"
}

func seeded(seed uint64) float64 {
	r := rand.New(rand.NewPCG(seed, seed|1))
	return r.Float64() // methods on a seeded *rand.Rand are deterministic
}
