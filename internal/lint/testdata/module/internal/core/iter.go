package core

import "sync"

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "map iteration writes to out"
	}
	return out
}

func total(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want "map iteration writes to sum"
	}
	return sum
}

func invert(m map[string]int, into map[string]int) {
	for k, v := range m {
		into[k] = v // indexed by the range key: order-independent, legal
	}
}

func localPerIteration(m map[string][]int) int {
	n := 0
	for k := range m {
		c := len(m[k])
		if c > n { // reads are fine; the write below targets a loop-local
			_ = c
		}
	}
	return n
}

func gather(parts [][]int) []int {
	var (
		out []int
		wg  sync.WaitGroup
	)
	for i := range parts {
		p := parts[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, p...) // want "goroutine appends to out"
		}()
	}
	wg.Wait()
	return out
}
