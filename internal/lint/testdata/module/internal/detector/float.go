// Package detector is the floatcmp/opcount fixture: it mirrors the
// real repository's internal/detector import path.
package detector

func eq(a, b float64) bool {
	return a == b // want "exact floating-point comparison a == b"
}

func neq(a, b complex128) bool {
	return a != b // want "exact complex comparison a != b"
}

func mixed(a float64, n int) bool {
	return a == float64(n) // want "exact floating-point comparison"
}

func constFolded() bool {
	return 1.0 == 2.0/2.0 // both operands constant: folded, legal
}

func sentinel(x float64) bool {
	return x == 0 //lint:ignore floatcmp fixture: exact-zero sentinel comparison is intentional
}

func intsAreFine(a, b int) bool {
	return a == b
}
