package detector

// OpCount mirrors the repository's operation-counter struct; the
// opcount analyzer matches the type by name.
type OpCount struct {
	RealMuls int64
	FLOPs    int64
}

// Good accounts through a same-package callee: the entry point itself
// holds no counter writes, exercising the call-graph reachability.
type Good struct {
	ops OpCount
}

func (g *Good) Detect(y []float64) []int {
	g.tally(len(y))
	return nil
}

func (g *Good) tally(n int) {
	g.ops.RealMuls += int64(n)
	g.ops.FLOPs += 2 * int64(n)
}

// Bad is the seeded violation: an exported entry point whose work never
// reaches an OpCount write.
type Bad struct {
	ops OpCount
}

func (b *Bad) Detect(y []float64) []int { // want "exported entry point Detect performs no OpCount accounting"
	out := make([]int, len(y))
	return out
}

func (b *Bad) Prepare(sigma2 float64) error { // want "exported entry point Prepare performs no OpCount accounting"
	return nil
}

// Null is a suppressed stub: no arithmetic happens, so there is nothing
// to account, and the ignore documents that.
type Null struct{}

//lint:ignore opcount fixture: stub detector performs no arithmetic
func (n *Null) Detect(y []float64) []int { return nil }

// detectHelper is unexported and not an entry point; no accounting
// required.
func detectHelper(y []float64) int { return len(y) }
