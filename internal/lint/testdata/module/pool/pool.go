// Package pool is the pooldiscipline fixture: sync.Pool Get/Put and
// Acquire/Release arena pairings, balanced and leaking.
package pool

import "sync"

var bufs sync.Pool

func leak() []byte {
	buf := bufs.Get().([]byte) // want "bufs.Get has no matching Put"
	return buf[:0]
}

func balanced() int {
	buf := bufs.Get().([]byte)
	defer bufs.Put(buf)
	return len(buf)
}

func releasedBeforeReturn() int {
	buf := bufs.Get().([]byte)
	n := len(buf)
	bufs.Put(buf)
	return n
}

type arena struct {
	free [][]int
}

func (a *arena) Acquire() []int       { return nil }
func (a *arena) Release(s []int)      { a.free = append(a.free, s) }
func (a *arena) sizeOf(s []int) int   { return len(s) }
func (a *arena) with(f func([]int))   { s := a.Acquire(); defer a.Release(s); f(s) }
func notAPool(ch chan int, v int) int { ch <- v; return <-ch }

func missedPath(a *arena, fail bool) int {
	s := a.Acquire()
	if fail {
		return 0 // want "return without releasing a acquired by Acquire"
	}
	a.Release(s)
	return a.sizeOf(s)
}
