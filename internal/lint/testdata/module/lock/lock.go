// Package lock is the lockscope fixture: blocking operations inside a
// mutex window — across branches, through defer, and transitively
// through package-local calls — versus the clean release-then-block
// patterns.
package lock

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
	ch chan int
}

// sendUnderLock is the canonical deliberately-broken case: a blocking
// channel send inside the Lock/Unlock window.
func (c *counter) sendUnderLock(v int) {
	c.mu.Lock()
	c.ch <- v // want "channel send while c.mu is held"
	c.mu.Unlock()
}

// recvUnderDefer holds the mutex to function exit through defer; the
// receive is inside the window.
func (c *counter) recvUnderDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.ch // want "channel receive while c.mu is held"
}

// sleepUnderRLock blocks under the read lock, stalling writers.
func (c *counter) sleepUnderRLock() {
	c.rw.RLock()
	time.Sleep(time.Millisecond) // want "time.Sleep while c.rw is held"
	c.rw.RUnlock()
}

// branchLeak releases on one branch only: at the merge the lock may
// still be held, so the select blocks under it.
func (c *counter) branchLeak(early bool) {
	c.mu.Lock()
	if early {
		c.mu.Unlock()
	}
	select { // want "blocking select while c.mu is held"
	case v := <-c.ch:
		c.n += v
	case c.ch <- c.n:
	}
	if !early {
		c.mu.Unlock()
	}
}

// drainUnderLock ranges over a channel while holding the lock.
func (c *counter) drainUnderLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for v := range c.ch { // want "range over channel while c.mu is held"
		c.n += v
	}
}

// blockingHelper blocks (no lock of its own, so no finding here), so
// calling it under a lock is a finding at the call site.
func (c *counter) blockingHelper() { c.ch <- 1 }

// transitive calls the blocking helper inside the window.
func (c *counter) transitive() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blockingHelper() // want "call to blockingHelper, which blocks \\(channel send\\) while c.mu is held"
}

// releaseThenBlock is the clean pattern: every blocking operation
// happens after the window closes.
func (c *counter) releaseThenBlock(v int) int {
	c.mu.Lock()
	c.n += v
	n := c.n
	c.mu.Unlock()
	c.ch <- n
	time.Sleep(time.Microsecond)
	return <-c.ch
}

// nonBlockingUnderLock: a select with default never blocks, and plain
// arithmetic under the lock is what mutexes are for.
func (c *counter) nonBlockingUnderLock(v int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case c.ch <- v:
		return true
	default:
		return false
	}
}

// bothBranchesRelease: the walker merges branches — released on every
// path means not held at the send.
func (c *counter) bothBranchesRelease(early bool) {
	c.mu.Lock()
	if early {
		c.n++
		c.mu.Unlock()
	} else {
		c.mu.Unlock()
	}
	c.ch <- c.n
}

// suppressed documents a provably bounded send under the lock.
func (c *counter) suppressed(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ch <- v //lint:ignore lockscope fixture: the channel is buffered and drained by the owner, the send cannot block
}
