// Package waitjoin is the waitdiscipline fixture: fire-and-forget
// goroutines versus the two joined shapes (WaitGroup.Add/Done and a
// done-channel the spawner waits on).
package waitjoin

import "sync"

// leak is the canonical deliberately-broken case: nobody ever learns
// this goroutine finished.
func leak(work func() int) {
	go func() { // want "goroutine is never joined"
		work()
	}()
}

// leakNamed spawns a same-package function with no join protocol.
func leakNamed() {
	go helper() // want "goroutine is never joined"
}

func helper() {}

// leakOpaque spawns through a function value the analyzer cannot
// resolve.
func leakOpaque(f func()) {
	go f() // want "goroutine spawns a function this package cannot see into"
}

// waitGroupJoined is the Add/Done handshake.
func waitGroupJoined(parts []int) int {
	var wg sync.WaitGroup
	total := make([]int, len(parts))
	for i, p := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total[i] = p * p
		}()
	}
	wg.Wait()
	sum := 0
	for _, v := range total {
		sum += v
	}
	return sum
}

// methodJoined spawns a method whose body marks Done — resolution
// through the package declaration index.
type runner struct {
	wg sync.WaitGroup
}

func (r *runner) run() { defer r.wg.Done() }

func (r *runner) start() {
	r.wg.Add(1)
	go r.run()
	r.wg.Wait()
}

// doneChannelJoined signals completion by closing a channel the
// spawner selects on.
func doneChannelJoined(work func()) {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// sendJoined signals by sending the result; the spawner receives it.
func sendJoined(work func() int) int {
	res := make(chan int, 1)
	go func() {
		res <- work()
	}()
	return <-res
}

// rangeJoined: a fan-in closer goroutine joined by the spawner
// draining the results channel to close.
func rangeJoined(parts []int) int {
	var wg sync.WaitGroup
	results := make(chan int)
	for _, p := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- p
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	sum := 0
	for v := range results {
		sum += v
	}
	return sum
}

// suppressed documents a process-lifetime goroutine.
func suppressed(serve func()) {
	go serve() //lint:ignore waitdiscipline fixture: process-lifetime sidecar, exits with the process
}
