module mismatch

go 1.22
