// Package m exists to fail the want harness in both directions: eq has
// a finding but no want, two has a want but no finding. Used only by
// TestWantMismatchReporting, never by the passing fixture tests.
package m

func eq(a, b float64) bool {
	return a == b
}

func two() int {
	return 2 // want "this diagnostic never fires"
}
