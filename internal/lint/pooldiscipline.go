package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Pooldiscipline enforces acquire/release pairing for pooled
// resources: every sync.Pool Get — and every Acquire on a workspace
// arena that offers a matching Release — must be paired with a release
// on all paths of the same function, either through a defer or with a
// release before every later return. The analysis is lexical (no full
// CFG): a function is clean when it defers the release, or when every
// return statement after the acquire is preceded, within the function,
// by a release of the same receiver expression. Leaking a pooled
// object is silent — the pool just allocates afresh forever — which is
// exactly the class of regression that never fails a test but
// dismantles the zero-allocation steady state.
var Pooldiscipline = &Analyzer{
	Name: "pooldiscipline",
	Doc:  "sync.Pool Get / arena Acquire must have a matching Put/Release on every path",
	Run:  runPooldiscipline,
}

// acquirePairs maps acquire method names to their release counterpart.
var acquirePairs = map[string]string{
	"Get":     "Put",     // sync.Pool only (classifyPoolCall checks the receiver type)
	"Acquire": "Release", // workspace-arena convention: any type with both methods
}

func runPooldiscipline(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolFunc(pass, fd)
		}
	}
}

// poolEvent is one acquire, release or return site inside a function.
type poolEvent struct {
	pos      token.Pos
	recv     string // normalized receiver expression, "" for returns
	release  string // expected release method (acquires only)
	method   string
	kind     int // 0 acquire, 1 release, 2 return
	deferred bool
}

func checkPoolFunc(pass *Pass, fd *ast.FuncDecl) {
	var events []poolEvent
	var scan func(n ast.Node, deferred bool)
	scan = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				// The deferred call itself (and a deferred closure body)
				// runs on every exit path.
				scan(n.Call, true)
				return false
			case *ast.FuncLit:
				if !deferred {
					return false // other closures: separate execution context
				}
				return true
			case *ast.ReturnStmt:
				events = append(events, poolEvent{pos: n.Pos(), kind: 2})
			case *ast.CallExpr:
				if ev, ok := classifyPoolCall(pass, n); ok {
					ev.deferred = deferred
					events = append(events, ev)
				}
			}
			return true
		})
	}
	scan(fd.Body, false)

	// Pair up: for each acquire receiver, find releases.
	type relInfo struct {
		deferred bool
		pos      []token.Pos
	}
	releases := map[string]*relInfo{}
	for _, ev := range events {
		if ev.kind != 1 {
			continue
		}
		ri := releases[ev.recv+"."+ev.method]
		if ri == nil {
			ri = &relInfo{}
			releases[ev.recv+"."+ev.method] = ri
		}
		ri.deferred = ri.deferred || ev.deferred
		ri.pos = append(ri.pos, ev.pos)
	}
	for _, ev := range events {
		if ev.kind != 0 {
			continue
		}
		key := ev.recv + "." + ev.release
		ri := releases[key]
		if ri == nil {
			pass.Reportf(ev.pos, "%s.%s has no matching %s in this function — release the pooled object on every path (defer %s.%s)",
				ev.recv, ev.method, ev.release, ev.recv, ev.release)
			continue
		}
		if ri.deferred {
			continue // covers every path
		}
		// No defer: every return after the acquire needs a release
		// between the acquire and that return.
		for _, ret := range events {
			if ret.kind != 2 || ret.pos < ev.pos {
				continue
			}
			covered := false
			for _, rp := range ri.pos {
				if rp > ev.pos && rp < ret.pos {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(ret.pos, "return without releasing %s acquired by %s at line %d — add %s.%s before this return or defer it",
					ev.recv, ev.method, pass.Fset.Position(ev.pos).Line, ev.recv, ev.release)
			}
		}
	}
}

// classifyPoolCall decides whether a call is a pooled acquire or
// release: a Get/Put on sync.Pool, or an Acquire/Release method pair
// on any receiver type that offers both.
func classifyPoolCall(pass *Pass, call *ast.CallExpr) (poolEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return poolEvent{}, false
	}
	name := sel.Sel.Name
	recvT := pass.TypeOf(sel.X)
	if recvT == nil {
		return poolEvent{}, false
	}
	recv := types.ExprString(sel.X)
	switch name {
	case "Get", "Put":
		if !isSyncPool(recvT) {
			return poolEvent{}, false
		}
	case "Acquire", "Release":
		if !hasMethodPair(recvT, "Acquire", "Release") {
			return poolEvent{}, false
		}
	default:
		return poolEvent{}, false
	}
	ev := poolEvent{pos: call.Pos(), recv: recv, method: name}
	if rel, isAcq := acquirePairs[name]; isAcq {
		ev.kind = 0
		ev.release = rel
	} else {
		ev.kind = 1
	}
	return ev, true
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool (possibly
// through named types).
func isSyncPool(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// hasMethodPair reports whether t (or *t) declares both named methods.
func hasMethodPair(t types.Type, a, b string) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	foundA, foundB := false, false
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case a:
			foundA = true
		case b:
			foundB = true
		}
	}
	return foundA && foundB
}
