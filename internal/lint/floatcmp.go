package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatcmp forbids == and != on floating-point and complex operands.
// The conformance work of CHANGES.md PR 2 (the buildOrderLUT FP-tie
// fix) showed how float equality silently turns algebraic identities
// into rounding-dependent behaviour; the contract is that every exact
// float comparison in the codebase is either rewritten as an
// epsilon/ULP compare or carries a //lint:ignore floatcmp comment
// saying why exact equality is correct there (sentinel "unset" checks,
// exact-zero division guards, IEEE-exact copies). Comparisons where
// both operands are compile-time constants are allowed.
var Floatcmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= on float and complex operands outside annotated sites",
	Run:  runFloatcmp,
}

func runFloatcmp(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatish(pass.TypeOf(be.X)) && !isFloatish(pass.TypeOf(be.Y)) {
				return true
			}
			if pass.Info.Types[be.X].Value != nil && pass.Info.Types[be.Y].Value != nil {
				return true // constant folded at compile time
			}
			kind := "floating-point"
			if isComplex(pass.TypeOf(be.X)) || isComplex(pass.TypeOf(be.Y)) {
				kind = "complex"
			}
			pass.Reportf(be.OpPos, "exact %s comparison %s — use an epsilon/ULP compare, or //lint:ignore floatcmp with why exact equality is correct", kind, types.ExprString(be))
			return true
		})
	}
}

func isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isComplex(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsComplex != 0
}
