package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Waitdiscipline flags fire-and-forget goroutines: every `go`
// statement in non-test code must be joined, either through a
// sync.WaitGroup the spawned function marks Done (the spawner's
// Add/Wait pair completes the handshake) or through a done-channel the
// spawned closure signals (send or close) and the spawning function
// waits on (receive, range, or select case). A goroutine nobody joins
// outlives Shutdown, leaks its stack and its captures, and turns every
// "drain leaves nothing running" guarantee into a hope. Resolution is
// intra-package: a goroutine spawning a cross-package function whose
// join protocol the analyzer cannot see is flagged — either restructure
// so the join is visible or document the lifetime with a reasoned
// //lint:ignore.
var Waitdiscipline = &Analyzer{
	Name: "waitdiscipline",
	Doc:  "every go statement must be joined via WaitGroup.Done or a done-channel the spawner waits on",
	Run:  runWaitdiscipline,
}

func runWaitdiscipline(pass *Pass) {
	idx := declIndex(pass)
	for _, file := range pass.Files {
		funcScopes(file, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
			checkGoJoins(pass, body, idx)
		})
	}
}

// checkGoJoins examines every go statement spawned directly by one
// function body (closures are separate scopes — funcScopes visits them
// on their own, so a go inside a closure is judged against that
// closure's joins).
func checkGoJoins(pass *Pass, body *ast.BlockStmt, idx map[*types.Func]*ast.FuncDecl) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		spawned := spawnedBody(pass, g, idx)
		if spawned != nil && callsWaitGroupDone(pass, spawned) {
			return true // WaitGroup-joined: the body marks Done
		}
		if spawned != nil && signalsEnclosingWait(pass, spawned, body) {
			return true // done-channel joined
		}
		if spawned == nil {
			pass.Reportf(g.Go, "goroutine spawns a function this package cannot see into — join it via a WaitGroup or a done-channel received here, or //lint:ignore waitdiscipline with its lifetime")
		} else {
			pass.Reportf(g.Go, "goroutine is never joined — no WaitGroup.Done in the spawned function and no completion channel this function waits on; a leaked goroutine outlives every drain")
		}
		return true
	})
}

// spawnedBody resolves the body of the function a go statement runs:
// a literal, or a same-package declaration/method.
func spawnedBody(pass *Pass, g *ast.GoStmt, idx map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeFunc(pass, g.Call); fn != nil {
		if fd := idx[fn]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// callsWaitGroupDone reports whether a body contains a Done() call on
// a sync.WaitGroup (including `defer wg.Done()`).
func callsWaitGroupDone(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name := selectorRecv(call)
		if name == "Done" && isNamedType(pass.TypeOf(recv), "sync", "WaitGroup") {
			found = true
		}
		return !found
	})
	return found
}

// signalsEnclosingWait reports whether the spawned body signals
// completion on a channel (send or close) that the enclosing function
// receives from (<-ch, range ch, or a select case) — the done-channel
// join pattern.
func signalsEnclosingWait(pass *Pass, spawned, enclosing *ast.BlockStmt) bool {
	signals := map[types.Object]bool{}
	ast.Inspect(spawned, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := rootObj(pass, n.Chan); obj != nil {
				signals[obj] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					if obj := rootObj(pass, n.Args[0]); obj != nil {
						signals[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(signals) == 0 {
		return false
	}
	joined := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && signals[rootObj(pass, n.X)] {
				joined = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && signals[rootObj(pass, n.X)] {
					joined = true
				}
			}
		}
		return !joined
	})
	return joined
}
