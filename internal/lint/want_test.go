package lint

import (
	"fmt"
	"strings"
	"testing"
)

// TestFixtureModule drives every analyzer over the fixture module and
// checks its findings against the fixture's // want comments — both
// directions: every want must fire, nothing beyond the wants may.
func TestFixtureModule(t *testing.T) {
	RunWantTest(t, "testdata/module", nil, DefaultAnalyzers()...)
}

// TestFixturePatterns checks the harness respects package patterns: the
// pool fixture alone must produce only pooldiscipline findings.
func TestFixturePatterns(t *testing.T) {
	RunWantTest(t, "testdata/module", []string{"./pool"}, DefaultAnalyzers()...)
}

// fakeReporter records Errorf calls for testing the harness itself.
type fakeReporter struct {
	errors []string
}

func (f *fakeReporter) Errorf(format string, args ...any) {
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
}

// TestWantMismatchReporting checks both failure modes of the harness:
// a diagnostic with no want comment, and a want comment no diagnostic
// matches.
func TestWantMismatchReporting(t *testing.T) {
	fake := &fakeReporter{}
	RunWantTest(fake, "testdata/mismatch", nil, DefaultAnalyzers()...)
	var unexpected, unmatched bool
	for _, e := range fake.errors {
		if strings.Contains(e, "unexpected diagnostic") && strings.Contains(e, "exact floating-point comparison") {
			unexpected = true
		}
		if strings.Contains(e, "no diagnostic matched want") && strings.Contains(e, "this diagnostic never fires") {
			unmatched = true
		}
	}
	if !unexpected {
		t.Errorf("harness did not report the unwanted diagnostic; got %q", fake.errors)
	}
	if !unmatched {
		t.Errorf("harness did not report the unmatched want; got %q", fake.errors)
	}
	if len(fake.errors) != 2 {
		t.Errorf("want exactly 2 harness errors, got %d: %q", len(fake.errors), fake.errors)
	}
}

// TestWantParsing pins the want-comment grammar: multiple expectations
// per line and malformed quoting.
func TestWantParsing(t *testing.T) {
	ws, err := parseWants("f.go", "x // want \"a\" \"b\"\ny\nz // want \"c\"\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("want 3 expectations, got %d", len(ws))
	}
	if ws[0].line != 1 || ws[1].line != 1 || ws[2].line != 3 {
		t.Errorf("wrong lines: %d %d %d", ws[0].line, ws[1].line, ws[2].line)
	}
	if _, err := parseWants("f.go", "x // want unquoted\n"); err == nil {
		t.Error("malformed want comment not rejected")
	}
	if _, err := parseWants("f.go", "x // want \"(unclosed\"\n"); err == nil {
		t.Error("non-compiling want regexp not rejected")
	}
}
