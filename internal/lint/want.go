package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// This file is the fixture-driven test harness of the framework, in the
// style of golang.org/x/tools' analysistest but stdlib-only: fixture
// sources carry expectations as trailing comments
//
//	total++ // want "map iteration writes to total"
//
// where each quoted string is a regular expression that must match the
// message of exactly one diagnostic reported on that line. A line may
// carry several expectations (`// want "a" "b"`). The harness fails the
// test for every diagnostic with no matching expectation and for every
// expectation with no matching diagnostic, so fixtures pin both the
// positives and the silence of everything else.

// TestReporter is the subset of *testing.T the harness needs; tests of
// the harness itself substitute a recording fake.
type TestReporter interface {
	Errorf(format string, args ...any)
}

// wantExpectation is one parsed `// want` regexp.
type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantMarker introduces expectations in fixture sources.
const wantMarker = "// want "

// RunWantTest loads the module rooted at dir, runs the analyzers over
// the packages selected by patterns (nil = all), applies suppressions,
// and checks the surviving diagnostics against the fixture's `// want`
// comments, reporting every mismatch through t.
func RunWantTest(t TestReporter, dir string, patterns []string, analyzers ...*Analyzer) {
	mod, err := LoadModule(dir)
	if err != nil {
		t.Errorf("loading fixture module %s: %v", dir, err)
		return
	}
	selected := mod.Match(patterns)
	if len(selected) == 0 {
		t.Errorf("fixture module %s: no packages match %v", dir, patterns)
		return
	}
	var wants []*wantExpectation
	for _, pkg := range selected {
		for filename, src := range pkg.Src {
			ws, err := parseWants(filename, string(src))
			if err != nil {
				t.Errorf("%v", err)
				return
			}
			wants = append(wants, ws...)
		}
	}
	diags := Run(mod, patterns, analyzers)
	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// claimWant marks the first unmatched expectation covering d and
// reports whether one existed.
func claimWant(wants []*wantExpectation, d Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the `// want "re"...` expectations of one source
// file. Expectations are trailing comments, so the marker is searched
// per line; each quoted string after it is one regexp.
func parseWants(filename, src string) ([]*wantExpectation, error) {
	var out []*wantExpectation
	for i, line := range strings.Split(src, "\n") {
		idx := strings.Index(line, wantMarker)
		if idx < 0 {
			continue
		}
		rest := strings.TrimSpace(line[idx+len(wantMarker):])
		for rest != "" {
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: malformed want comment %q: each expectation must be a quoted regexp", filename, i+1, rest)
			}
			raw, err := strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: malformed want string %s: %v", filename, i+1, q, err)
			}
			re, err := regexp.Compile(raw)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: want regexp %q does not compile: %v", filename, i+1, raw, err)
			}
			out = append(out, &wantExpectation{file: filename, line: i + 1, re: re, raw: raw})
			rest = strings.TrimSpace(rest[len(q):])
		}
	}
	return out, nil
}
