package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Noalloc enforces the repository's zero-allocation steady-state
// contract (CHANGES.md PRs 1 & 3): a function annotated
// //flexcore:noalloc must contain no allocation site — no make, new or
// append, no escaping composite literal (slice/map literals and &T{}),
// no allocating string conversion or concatenation, no capturing
// closure, no go statement and no interface boxing of a non-constant
// value. Amortized grow paths that are provably within-capacity carry
// an explicit //lint:ignore noalloc <why>; the cheap AllocsPerRun gate
// tests keep the dynamic side of the claim honest, and `flexlint
// -escapes` cross-checks against the compiler's escape analysis.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//flexcore:noalloc functions must contain no allocation sites",
	Run:  runNoalloc,
}

func runNoalloc(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocDirective(fd) {
				continue
			}
			checkNoalloc(pass, fd)
		}
	}
}

func checkNoalloc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNoallocCall(pass, fd, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(lit.Pos(), "&composite literal allocates in //flexcore:noalloc %s", fd.Name.Name)
				}
			}
		case *ast.CompositeLit:
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "%s literal allocates in //flexcore:noalloc %s", typeKind(pass.TypeOf(n)), fd.Name.Name)
			}
		case *ast.FuncLit:
			if cap := capturedVar(pass, fd, n); cap != "" {
				pass.Reportf(n.Pos(), "closure captures %s and allocates in //flexcore:noalloc %s", cap, fd.Name.Name)
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine in //flexcore:noalloc %s", fd.Name.Name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypeOf(n)) && pass.Info.Types[n].Value == nil {
				pass.Reportf(n.Pos(), "string concatenation allocates in //flexcore:noalloc %s", fd.Name.Name)
			}
		case *ast.AssignStmt:
			checkBoxing(pass, fd, assignPairs(pass, n))
		case *ast.ReturnStmt:
			checkBoxing(pass, fd, returnPairs(pass, fd, n))
		}
		return true
	})
}

// checkNoallocCall flags allocating builtins, allocating string
// conversions, and interface boxing of call arguments.
func checkNoallocCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in //flexcore:noalloc %s", fd.Name.Name)
			case "new":
				pass.Reportf(call.Pos(), "new allocates in //flexcore:noalloc %s", fd.Name.Name)
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array in //flexcore:noalloc %s", fd.Name.Name)
			}
			return
		}
	}
	tv, ok := pass.Info.Types[call.Fun]
	if ok && tv.IsType() {
		// Conversion: T(x). Only string conversions allocate here.
		if isString(tv.Type) && len(call.Args) == 1 {
			arg := call.Args[0]
			if pass.Info.Types[arg].Value == nil && !isString(pass.TypeOf(arg)) {
				pass.Reportf(call.Pos(), "conversion to string allocates in //flexcore:noalloc %s", fd.Name.Name)
			}
		}
		return
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	pairs := make([]boxPair, 0, len(call.Args))
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				pt = sig.Params().At(np - 1).Type() // arg is the slice itself
			} else {
				pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		pairs = append(pairs, boxPair{dst: pt, src: arg})
	}
	checkBoxing(pass, fd, pairs)
}

// boxPair is one concrete-value-into-destination flow to check for
// interface boxing.
type boxPair struct {
	dst types.Type
	src ast.Expr
}

// checkBoxing reports pairs where a non-constant concrete value flows
// into an interface destination (an allocation at the conversion).
func checkBoxing(pass *Pass, fd *ast.FuncDecl, pairs []boxPair) {
	for _, p := range pairs {
		if p.dst == nil || p.src == nil {
			continue
		}
		if !types.IsInterface(p.dst) {
			continue
		}
		st := pass.TypeOf(p.src)
		if st == nil || types.IsInterface(st) {
			continue
		}
		tv := pass.Info.Types[p.src]
		if tv.Value != nil || tv.IsNil() {
			continue // constants and nil box without a heap allocation
		}
		pass.Reportf(p.src.Pos(), "%s boxes into interface %s (allocates) in //flexcore:noalloc %s",
			types.ExprString(p.src), p.dst.String(), fd.Name.Name)
	}
}

// assignPairs extracts the value→destination flows of an assignment.
func assignPairs(pass *Pass, n *ast.AssignStmt) []boxPair {
	if len(n.Lhs) != len(n.Rhs) {
		return nil // comma-ok / multi-value call; conversions inside are caught as calls
	}
	pairs := make([]boxPair, 0, len(n.Lhs))
	for i := range n.Lhs {
		pairs = append(pairs, boxPair{dst: pass.TypeOf(n.Lhs[i]), src: n.Rhs[i]})
	}
	return pairs
}

// returnPairs extracts the value→result flows of a return statement.
func returnPairs(pass *Pass, fd *ast.FuncDecl, n *ast.ReturnStmt) []boxPair {
	obj := pass.Info.Defs[fd.Name]
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	res := fn.Type().(*types.Signature).Results()
	if res.Len() != len(n.Results) {
		return nil
	}
	pairs := make([]boxPair, 0, len(n.Results))
	for i, r := range n.Results {
		pairs = append(pairs, boxPair{dst: res.At(i).Type(), src: r})
	}
	return pairs
}

// capturedVar returns the name of a variable the function literal
// captures from its enclosing function, or "" if it captures nothing
// (a non-capturing literal compiles to a static function — no
// allocation).
func capturedVar(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.Pkg() != pass.Pkg {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal (package-level vars are not captures).
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			found = v.Name()
			return false
		}
		return true
	})
	return found
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
