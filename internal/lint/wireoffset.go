package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Wireoffset machine-checks the wire layout tables: a codec function
// annotated with
//
//	//flexcore:wire <buffer> <size>
//
// (buffer: the parameter or local the function indexes; size: a
// package-level integer constant or literal) must touch the buffer's
// bytes [0, size) exactly once through its constant-bound index and
// slice expressions — no gaps, no overlaps, nothing past the end. The
// layout comments in wire.go/payload.go describe the frame; this
// directive makes the code itself the checked table, CRC field
// included: an encoder and decoder annotated against the same size
// constant cannot silently disagree about where a field lives.
// Accesses with non-constant bounds (payload[off:], the variable-length
// tail) are outside the header tiling and are ignored.
var Wireoffset = &Analyzer{
	Name: "wireoffset",
	Doc:  "//flexcore:wire codec functions must tile their buffer's declared size with no gaps or overlaps",
	Run:  runWireoffset,
}

// WireDirective is the doc-comment directive marking a codec function
// for offset tiling verification.
const WireDirective = "//flexcore:wire"

func runWireoffset(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, WireDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, WireDirective))
				if len(fields) != 2 {
					pass.Reportf(c.Pos(), "malformed %s directive: need \"%s <buffer> <size>\"", WireDirective, WireDirective)
					continue
				}
				checkWireTiling(pass, fd, c, fields[0], fields[1])
			}
		}
	}
}

// byteInterval is one constant-bound access [lo, hi) into the buffer.
type byteInterval struct {
	lo, hi int64
	pos    ast.Node
}

func checkWireTiling(pass *Pass, fd *ast.FuncDecl, dir *ast.Comment, buffer, sizeName string) {
	size, ok := resolveWireSize(pass, sizeName)
	if !ok {
		pass.Reportf(dir.Pos(), "%s: size %q is neither an integer literal nor a package-level integer constant", WireDirective, sizeName)
		return
	}
	intervals := collectIntervals(pass, fd.Body, buffer)
	if len(intervals) == 0 {
		pass.Reportf(dir.Pos(), "%s: no constant-bound accesses to %q found in %s — directive on the wrong function or buffer?", WireDirective, buffer, fd.Name.Name)
		return
	}
	sort.Slice(intervals, func(i, j int) bool {
		if intervals[i].lo != intervals[j].lo {
			return intervals[i].lo < intervals[j].lo
		}
		return intervals[i].hi < intervals[j].hi
	})
	var cursor int64
	for i, iv := range intervals {
		// A repeated read of the same field (validate + decode) is one
		// access, not an overlap.
		if i > 0 && iv.lo == intervals[i-1].lo && iv.hi == intervals[i-1].hi {
			continue
		}
		if iv.hi > size {
			pass.Reportf(iv.pos.Pos(), "%s[%d:%d] runs past the declared size %s=%d", buffer, iv.lo, iv.hi, sizeName, size)
			return
		}
		if iv.lo < cursor {
			pass.Reportf(iv.pos.Pos(), "%s[%d:%d] overlaps the preceding field, which ends at byte %d — two fields claim the same wire bytes", buffer, iv.lo, iv.hi, cursor)
			return
		}
		if iv.lo > cursor {
			pass.Reportf(iv.pos.Pos(), "bytes [%d,%d) of %s are never touched — the layout has a gap before %s[%d:%d]", cursor, iv.lo, buffer, buffer, iv.lo, iv.hi)
			return
		}
		cursor = iv.hi
	}
	if cursor != size {
		last := intervals[len(intervals)-1]
		pass.Reportf(last.pos.Pos(), "constant accesses to %s cover only [0,%d) of the declared %s=%d — bytes [%d,%d) are never touched", buffer, cursor, sizeName, size, cursor, size)
	}
}

// collectIntervals gathers every constant-bound index/slice access on
// the named buffer inside body. Whole-buffer uses (buf[:]) and
// accesses with any non-constant bound are ignored.
func collectIntervals(pass *Pass, body *ast.BlockStmt, buffer string) []byteInterval {
	var out []byteInterval
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SliceExpr:
			id, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok || id.Name != buffer || n.High == nil {
				return true
			}
			lo := int64(0)
			if n.Low != nil {
				v, ok := constIntValue(pass, n.Low)
				if !ok {
					return true
				}
				lo = v
			}
			hi, ok := constIntValue(pass, n.High)
			if !ok {
				return true
			}
			out = append(out, byteInterval{lo: lo, hi: hi, pos: n})
		case *ast.IndexExpr:
			id, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok || id.Name != buffer {
				return true
			}
			i, ok := constIntValue(pass, n.Index)
			if !ok {
				return true
			}
			out = append(out, byteInterval{lo: i, hi: i + 1, pos: n})
		}
		return true
	})
	return out
}

// constIntValue evaluates an expression to a compile-time integer.
func constIntValue(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}

// resolveWireSize resolves the directive's size operand: an integer
// literal or a package-level integer constant.
func resolveWireSize(pass *Pass, name string) (int64, bool) {
	if v, err := strconv.ParseInt(name, 0, 64); err == nil {
		return v, true
	}
	c, ok := pass.Pkg.Scope().Lookup(name).(*types.Const)
	if !ok {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(c.Val()))
	return v, exact
}
