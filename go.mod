module flexcore

go 1.22
