package flexcore_test

import (
	"testing"

	"flexcore"
	"flexcore/internal/coding"
)

// TestFacadeEndToEnd exercises the public API the way README's quickstart
// does: build a channel, prepare, detect, and compare against ML.
func TestFacadeEndToEnd(t *testing.T) {
	cons := flexcore.MustConstellation(16)
	h := flexcore.Rayleigh(7, 8, 8)
	sigma2 := flexcore.Sigma2FromSNRdB(30)

	det := flexcore.New(cons, flexcore.Options{NPE: 32})
	ml := flexcore.NewML(cons)
	if err := det.Prepare(h, sigma2); err != nil {
		t.Fatal(err)
	}
	if err := ml.Prepare(h, sigma2); err != nil {
		t.Fatal(err)
	}
	// Transmit a clean vector: both detectors must agree at high SNR.
	x := make([]complex128, 8)
	want := make([]int, 8)
	for i := range x {
		want[i] = (i * 3) % cons.Size()
		x[i] = cons.Point(want[i])
	}
	y := h.MulVec(x)
	got := det.Detect(y)
	gotML := ml.Detect(y)
	for i := range want {
		if got[i] != want[i] || gotML[i] != want[i] {
			t.Fatalf("stream %d: flexcore %d, ml %d, want %d", i, got[i], gotML[i], want[i])
		}
	}
	if det.OpCount().Detections != 1 {
		t.Fatal("op counters not wired through the facade")
	}
}

func TestFacadeFindPaths(t *testing.T) {
	cons := flexcore.MustConstellation(64)
	r := flexcore.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		r.Set(i, i, complex(float64(i+1)/2, 0))
	}
	paths := flexcore.FindPaths(r, flexcore.Sigma2FromSNRdB(15), cons, 16, 0)
	if len(paths) != 16 {
		t.Fatalf("%d paths", len(paths))
	}
	for i, rank := range paths[0].Ranks {
		if rank != 1 {
			t.Fatalf("most promising path rank[%d] = %d", i, rank)
		}
	}
}

func TestFacadeLinkSim(t *testing.T) {
	cons := flexcore.MustConstellation(4)
	res, err := flexcore.RunLink(flexcore.SimConfig{
		Link: flexcore.LinkConfig{
			Users: 2, APAntennas: 2, Constellation: cons,
			CodeRate: coding.Rate12, Subcarriers: 8, OFDMSymbols: 8,
		},
		SNRdB:    35,
		Packets:  5,
		Seed:     9,
		Detector: flexcore.NewMMSE(cons),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PER != 0 {
		t.Fatalf("high-SNR PER %v", res.PER)
	}
}
