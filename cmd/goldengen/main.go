// Command goldengen regenerates the conformance golden corpus: the
// deterministic JSON fixture pinning every detector's output (and short
// link-level simulation counts) on seeded channels. It is wired to
// `go generate ./internal/conformance`; run it after an intentional
// numerical-behaviour change and review the fixture diff like any other
// code change.
//
// Usage:
//
//	goldengen [-out internal/conformance/testdata/golden_vectors.json] [-check]
//
// With -check the tool regenerates in memory and diffs against the
// existing fixture instead of writing, exiting non-zero on divergence —
// the same comparison the golden test performs, usable standalone.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"flexcore/internal/conformance"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("goldengen: ")
	out := flag.String("out", "internal/conformance/testdata/golden_vectors.json", "fixture path to write (or compare with -check)")
	check := flag.Bool("check", false, "diff a fresh generation against the fixture instead of writing")
	flag.Parse()

	suite, err := conformance.GenerateGoldenSuite()
	if err != nil {
		log.Fatal(err)
	}
	if *check {
		want, err := conformance.LoadGoldenSuite(*out)
		if err != nil {
			log.Fatalf("load fixture: %v", err)
		}
		diffs := conformance.DiffGoldenSuites(want, suite)
		for _, d := range diffs {
			fmt.Fprintln(os.Stderr, d)
		}
		if len(diffs) > 0 {
			log.Fatalf("%d divergence(s) from %s", len(diffs), *out)
		}
		log.Printf("%s is up to date (%d cases, %d sims)", *out, len(suite.Cases), len(suite.Sims))
		return
	}
	if err := conformance.WriteGoldenSuite(*out, suite); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d cases, %d sims)", *out, len(suite.Cases), len(suite.Sims))
}
