// Command flexlint runs the repository's custom static-analysis suite
// (internal/lint): stdlib-only analyzers that machine-enforce the
// determinism, zero-allocation, pool-discipline, OpCount-accounting,
// lock-scope, goroutine-joining, conn-deadline, status-exhaustiveness
// and wire-offset contracts the tests and benchmarks otherwise only
// check dynamically.
//
// Usage:
//
//	flexlint [-escapes] [-json] [-suppressions] [-list] [patterns...]
//
// Patterns follow the usual ./... convention and default to ./... from
// the enclosing module root. Exit status is 0 when clean, 1 when any
// diagnostic survives suppression (or, with -suppressions, when any
// stale ignore exists), 2 on a load/usage error.
//
// With -escapes, flexlint additionally runs `go build -gcflags=-m`
// over the module and reports every value the compiler moved to the
// heap inside a //flexcore:noalloc function — the dynamic complement
// to the syntactic noalloc analyzer. //lint:ignore noalloc comments
// silence both sides.
//
// With -json, findings are emitted as a JSON array of
// {file, line, col, analyzer, message} objects on stdout (an empty
// array when clean) — the machine-readable form CI archives as a
// build artifact.
//
// With -suppressions, flexlint reports every //lint:ignore comment in
// the selected packages instead of findings: its location, the
// analyzers it silences, its mandatory reason, and whether it is
// active (a raw finding still lands under it) or STALE (the finding
// it once silenced is gone — the ignore now pre-silences future
// findings and must be removed). Stale suppressions exit 1. Combines
// with -escapes so noalloc ignores backing escape-analysis findings
// count as active, and with -json for machine-readable output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"flexcore/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	escapes := flag.Bool("escapes", false, "cross-check //flexcore:noalloc functions against go build -gcflags=-m escape analysis")
	jsonOut := flag.Bool("json", false, "emit results as JSON on stdout")
	suppr := flag.Bool("suppressions", false, "audit //lint:ignore comments instead of reporting findings; stale ignores exit 1")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint:", err)
		return 2
	}

	var escapeDiags []lint.Diagnostic // raw (pre-suppression)
	if *escapes {
		out, err := escapeOutput(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexlint: -escapes:", err)
			return 2
		}
		escapeDiags = lint.EscapeDiagnostics(mod, out)
	}

	if *suppr {
		return reportSuppressions(root, mod, patterns, analyzers, escapeDiags, *jsonOut)
	}

	diags := lint.Run(mod, patterns, analyzers)
	if *escapes {
		diags = append(diags, mod.FilterSuppressed(escapeDiags)...)
	}

	if *jsonOut {
		if err := printJSONFindings(root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "flexlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(relDiag(root, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "flexlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable form of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// printJSONFindings emits the findings as a JSON array (empty when
// clean — never null, so consumers can range unconditionally).
func printJSONFindings(root string, diags []lint.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonSuppression is the machine-readable form of one audited
// //lint:ignore comment.
type jsonSuppression struct {
	File      string   `json:"file"`
	Line      int      `json:"line"` // the comment's own line
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
	Active    bool     `json:"active"`
}

// reportSuppressions prints the suppressions audit and exits nonzero
// when any ignore is stale: an ignore whose finding is gone silences
// nothing today and pre-silences tomorrow's findings at that line.
func reportSuppressions(root string, mod *lint.Module, patterns []string, analyzers []*lint.Analyzer, escapeDiags []lint.Diagnostic, jsonOut bool) int {
	audits := lint.AuditSuppressions(mod, patterns, analyzers, escapeDiags)
	stale := 0
	if jsonOut {
		out := make([]jsonSuppression, 0, len(audits))
		for _, a := range audits {
			if !a.Active {
				stale++
			}
			out = append(out, jsonSuppression{
				File:      relPath(root, a.Entry.File),
				Line:      a.Entry.CommentLine,
				Analyzers: a.Entry.Analyzers,
				Reason:    a.Entry.Reason,
				Active:    a.Active,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "flexlint:", err)
			return 2
		}
	} else {
		for _, a := range audits {
			status := "active"
			if !a.Active {
				status = "STALE"
				stale++
			}
			fmt.Printf("%s:%d: [%s] %s — %s\n",
				relPath(root, a.Entry.File), a.Entry.CommentLine,
				strings.Join(a.Entry.Analyzers, ","), a.Entry.Reason, status)
		}
	}
	if stale > 0 {
		fmt.Fprintf(os.Stderr, "flexlint: %d stale suppression(s) — remove them or restore the contract they silenced\n", stale)
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// escapeOutput captures the compiler's escape-analysis notes for every
// module package. -gcflags applies to the listed packages only, so the
// stdlib is not re-analyzed. The build itself writes no binaries.
func escapeOutput(root string) ([]byte, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m failed: %v\n%s", err, out)
	}
	return out, nil
}

// relPath makes a module file path root-relative (stable output for CI
// logs, artifacts and the golden tests).
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil {
		return rel
	}
	return file
}

// relDiag prints a diagnostic with the file path relative to the
// module root.
func relDiag(root string, d lint.Diagnostic) string {
	d.Pos.Filename = relPath(root, d.Pos.Filename)
	return d.String()
}
