// Command flexlint runs the repository's custom static-analysis suite
// (internal/lint): stdlib-only analyzers that machine-enforce the
// determinism, zero-allocation, pool-discipline and OpCount-accounting
// contracts the tests and benchmarks otherwise only check dynamically.
//
// Usage:
//
//	flexlint [-escapes] [-list] [patterns...]
//
// Patterns follow the usual ./... convention and default to ./... from
// the enclosing module root. Exit status is 0 when clean, 1 when any
// diagnostic survives suppression, 2 on a load/usage error.
//
// With -escapes, flexlint additionally runs `go build -gcflags=-m`
// over the module and reports every value the compiler moved to the
// heap inside a //flexcore:noalloc function — the dynamic complement
// to the syntactic noalloc analyzer. //lint:ignore noalloc comments
// silence both sides.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"flexcore/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	escapes := flag.Bool("escapes", false, "cross-check //flexcore:noalloc functions against go build -gcflags=-m escape analysis")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint:", err)
		return 2
	}
	diags := lint.Run(mod, patterns, analyzers)

	if *escapes {
		out, err := escapeOutput(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexlint: -escapes:", err)
			return 2
		}
		esc := mod.FilterSuppressed(lint.EscapeDiagnostics(mod, out))
		diags = append(diags, esc...)
	}

	for _, d := range diags {
		fmt.Println(relDiag(root, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "flexlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// escapeOutput captures the compiler's escape-analysis notes for every
// module package. -gcflags applies to the listed packages only, so the
// stdlib is not re-analyzed. The build itself writes no binaries.
func escapeOutput(root string) ([]byte, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m failed: %v\n%s", err, out)
	}
	return out, nil
}

// relDiag prints a diagnostic with the file path relative to the
// module root (stable output for CI logs and the golden tests).
func relDiag(root string, d lint.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
		d.Pos.Filename = rel
	}
	return d.String()
}
