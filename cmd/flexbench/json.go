package main

// flexbench -json: the hot-path backend acceptance record. Instead of
// the experiment tables, this mode reruns the PR's four reference
// benchmarks in-process (testing.Benchmark) on both kernel backends —
// baseline is the complex128 reference, after is the float32
// structure-of-arrays backend (Options.Backend = soa32) in the same
// tree — and emits the comparison in the BENCH_PR*.json format, e.g.
//
//	flexbench -json -commit $(git rev-parse --short HEAD) -o BENCH_PR6.json
//
// The workloads mirror BenchmarkFlexCoreDetect12x12_64QAM_128 and
// BenchmarkFlexCorePreprocess12x12_64QAM_128 (internal/core),
// BenchmarkTable1 and BenchmarkFig10 (repo root) exactly; Table 1 is a
// pure sphere-decoder kernel with no FlexCore code in the loop, kept as
// the control that non-backend paths are untouched.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"testing"

	"flexcore"
	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/core"
)

type benchRecord struct {
	NsOp     int64  `json:"ns_op"`
	BOp      int64  `json:"b_op"`
	AllocsOp int64  `json:"allocs_op"`
	Note     string `json:"note,omitempty"`
}

type benchReport struct {
	Description    string                 `json:"description"`
	BaselineCommit string                 `json:"baseline_commit"`
	Baseline       map[string]benchRecord `json:"baseline"`
	After          map[string]benchRecord `json:"after"`
	Speedup        map[string]float64     `json:"speedup"`
	Acceptance     map[string]any         `json:"acceptance"`
}

// measure runs one benchmark function to a stable estimate and packs
// the result the way the BENCH_PR*.json records expect.
func measure(f func(b *testing.B)) benchRecord {
	r := testing.Benchmark(f)
	return benchRecord{NsOp: r.NsPerOp(), BOp: r.AllocedBytesPerOp(), AllocsOp: r.AllocsPerOp()}
}

// benchDetect12 is BenchmarkFlexCoreDetect12x12_64QAM_128: steady-state
// Detect on a 12×12 64-QAM Rayleigh channel with N_PE = 128.
func benchDetect12(backend flexcore.Backend) benchRecord {
	rng := channel.NewRNG(208)
	cons := flexcore.MustConstellation(64)
	fc := flexcore.New(cons, flexcore.Options{NPE: 128, Backend: backend})
	sigma2 := channel.Sigma2FromSNRdB(21.6, 1)
	h := channel.Rayleigh(rng, 12, 12)
	if err := fc.Prepare(h, sigma2); err != nil {
		panic(err)
	}
	x := make([]complex128, 12)
	for i := range x {
		x[i] = cons.Point(rng.IntN(cons.Size()))
	}
	y := h.MulVec(x)
	channel.AddAWGN(rng, y, sigma2)
	fc.Detect(y) // build the backend's planes outside the timed loop
	return measure(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fc.Detect(y)
		}
	})
}

// benchPreprocess12 is BenchmarkFlexCorePreprocess12x12_64QAM_128: the
// pre-processing tree search selecting 128 paths on a 12×12 64-QAM
// model.
func benchPreprocess12(backend flexcore.Backend) benchRecord {
	rng := channel.NewRNG(209)
	cons := flexcore.MustConstellation(64)
	sigma2 := channel.Sigma2FromSNRdB(21.6, 1)
	h := channel.Rayleigh(rng, 12, 12)
	qr := cmatrix.SortedQR(h, cmatrix.OrderSQRD)
	m := core.NewModel(qr.R, sigma2, cons)
	find := core.FindPaths
	if backend == flexcore.BackendSoA32 {
		find = core.FindPaths32
	}
	return measure(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			find(m, 128, 0)
		}
	})
}

// benchTable1 is BenchmarkTable1: one exact depth-first sphere
// detection (16-QAM, 13 dB, 8×8). No FlexCore kernels run here — the
// record is the control that the backend leaves other detectors alone.
func benchTable1() benchRecord {
	cons := flexcore.MustConstellation(16)
	det := flexcore.NewML(cons)
	rng := channel.NewRNG(99)
	h := channel.Rayleigh(rng, 8, 8)
	sigma2 := channel.Sigma2FromSNRdB(13, 1)
	if err := det.Prepare(h, sigma2); err != nil {
		panic(err)
	}
	x := make([]complex128, 8)
	for i := range x {
		x[i] = cons.Point(rng.IntN(cons.Size()))
	}
	y := h.MulVec(x)
	channel.AddAWGN(rng, y, sigma2)
	return measure(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det.Detect(y)
		}
	})
}

// benchFig10 is BenchmarkFig10: a-FlexCore Prepare+Detect on a 12×12
// indoor-TDL trace channel (N_PE = 64, θ = 0.95) — the combined
// channel-rate plus symbol-rate unit the backend accelerates end to
// end.
func benchFig10(backend flexcore.Backend) benchRecord {
	cons := flexcore.MustConstellation(64)
	rng := channel.NewRNG(10)
	sigma2 := channel.Sigma2FromSNRdB(21.6, 1)
	det := flexcore.New(cons, flexcore.Options{NPE: 64, Threshold: 0.95, Backend: backend})
	hs := channel.FreqSelective(rng, 12, 12, []int{1, 9, 17, 25}, channel.DefaultIndoorTDL)
	x := make([]complex128, 12)
	for i := range x {
		x[i] = cons.Point(rng.IntN(64))
	}
	y := hs[0].MulVec(x)
	channel.AddAWGN(rng, y, sigma2)
	return measure(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := det.Prepare(hs[i%len(hs)], sigma2); err != nil {
				panic(err)
			}
			det.Detect(y)
		}
	})
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

// runJSONBench measures every benchmark on both backends and writes the
// report.
func runJSONBench(w io.Writer, commit string) error {
	const (
		nameDetect  = "BenchmarkFlexCoreDetect12x12_64QAM_128"
		namePrep    = "BenchmarkFlexCorePreprocess12x12_64QAM_128"
		nameTable1  = "BenchmarkTable1"
		nameFig10   = "BenchmarkFig10"
		controlNote = "control: exact sphere decoder, no FlexCore kernels in the loop — the backend must not move this"
	)
	baseline := map[string]benchRecord{
		nameDetect: benchDetect12(flexcore.BackendComplex128),
		namePrep:   benchPreprocess12(flexcore.BackendComplex128),
		nameTable1: benchTable1(),
		nameFig10:  benchFig10(flexcore.BackendComplex128),
	}
	after := map[string]benchRecord{
		nameDetect: benchDetect12(flexcore.BackendSoA32),
		namePrep:   benchPreprocess12(flexcore.BackendSoA32),
		nameTable1: benchTable1(),
		nameFig10:  benchFig10(flexcore.BackendSoA32),
	}
	b, a := baseline[nameTable1], after[nameTable1]
	b.Note, a.Note = controlNote, controlNote
	baseline[nameTable1], after[nameTable1] = b, a
	f := after[nameFig10]
	f.Note = "near-parity expected: the unit is dominated by the sorted QR (complex128 on both backends) and the θ=0.95 early stop leaves only a handful of paths of kernel work"
	after[nameFig10] = f

	detectSpeed := float64(baseline[nameDetect].NsOp) / float64(after[nameDetect].NsOp)
	prepSpeed := float64(baseline[namePrep].NsOp) / float64(after[namePrep].NsOp)
	report := benchReport{
		Description: "float32 SoA kernel backend, complex128 vs soa32 in the same tree. Detect: steady-state 12x12 64-QAM N_PE=128 (BenchmarkFlexCoreDetect12x12_64QAM_128); Preprocess: 128-path tree search on the matching model (BenchmarkFlexCorePreprocess12x12_64QAM_128); Fig10: a-FlexCore Prepare+Detect on the indoor-TDL trace; Table1 is the no-FlexCore control. " +
			"Generated by `flexbench -json`; single-core container, Intel Xeon @ 2.10GHz, go1.24.",
		BaselineCommit: commit,
		Baseline:       baseline,
		After:          after,
		Speedup: map[string]float64{
			"detect_12x12_64qam_128":     round2(detectSpeed),
			"preprocess_12x12_64qam_128": round2(prepSpeed),
			"fig10_prepare_detect":       round2(float64(baseline[nameFig10].NsOp) / float64(after[nameFig10].NsOp)),
			"table1_control":             round2(float64(baseline[nameTable1].NsOp) / float64(after[nameTable1].NsOp)),
		},
		Acceptance: map[string]any{
			"detect_speedup_target":       2.0,
			"detect_speedup_measured":     round2(detectSpeed),
			"preprocess_speedup_target":   2.0,
			"preprocess_speedup_measured": round2(prepSpeed),
			"note":                        "targets from ISSUE 6: soa32 must be >= 2x on both named benchmarks; decisions are pinned to complex128 by internal/conformance (TestSoA32MatchesGoldenFlexCoreDecisions) so the speedup is not bought with accuracy",
		},
	}
	raw, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", raw)
	return err
}
