// Command flexbench regenerates the FlexCore paper's evaluation tables
// and figures (DESIGN.md §4 maps names to paper artefacts).
//
// Usage:
//
//	flexbench [-quick] [-seed N] [-o file] all
//	flexbench [-quick] [-seed N] [-o file] table1|table2|table3|fig9|fig10|fig11|fig12|fig13|fig14
//	flexbench -json [-commit HASH] [-o file]
//
// -quick runs reduced Monte-Carlo settings (minutes); the default runs
// the full settings used for EXPERIMENTS.md. -json skips the experiment
// tables and instead measures the kernel-backend comparison (complex128
// vs float32 SoA) on the PR's reference benchmarks, emitting the
// BENCH_PR*.json acceptance format (see json.go).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"flexcore/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced Monte-Carlo settings")
	seed := flag.Uint64("seed", 42, "experiment seed (all runs are deterministic)")
	workers := flag.Int("workers", 0, "packet-level simulation parallelism (0 = all cores; results are identical for any value)")
	out := flag.String("o", "", "write output to a file as well as stdout")
	csvDir := flag.String("csvdir", "", "also write each table as a CSV file into this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	jsonMode := flag.Bool("json", false, "measure the kernel-backend comparison and emit BENCH_PR*.json instead of experiment tables")
	commit := flag.String("commit", "", "commit hash recorded as baseline_commit in -json output")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flexbench [-quick] [-seed N] [-o file] {all|%s}\n"+
			"       flexbench -json [-commit HASH] [-o file]\n",
			joinNames())
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonMode {
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flexbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = io.MultiWriter(os.Stdout, f)
		}
		if err := runJSONBench(w, *commit); err != nil {
			fmt.Fprintf(os.Stderr, "flexbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *workers}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "flexbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flexbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "flexbench: %v\n", err)
			}
		}()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	names := []string{name}
	if name == "all" {
		names = experiments.Names
	}
	for _, n := range names {
		fmt.Fprintf(w, "\n––––– %s –––––\n", n)
		tables, err := experiments.RunTables(n, cfg, w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexbench: %s: %v\n", n, err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "flexbench: %v\n", err)
				os.Exit(1)
			}
			for i, t := range tables {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", n, i))
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "flexbench: %v\n", err)
					os.Exit(1)
				}
				t.CSV(f)
				f.Close()
			}
		}
	}
	fmt.Fprintf(w, "\ncompleted in %s (quick=%v seed=%d)\n", time.Since(start).Round(time.Millisecond), *quick, *seed)
}

func joinNames() string {
	s := ""
	for i, n := range experiments.Names {
		if i > 0 {
			s += "|"
		}
		s += n
	}
	return s
}
