// Command flexsim runs one link-level MIMO-OFDM uplink simulation and
// reports PER, BER and network throughput for a chosen detector.
//
// Example:
//
//	flexsim -users 8 -antennas 8 -qam 16 -snr 14 -detector flexcore -npe 32 -packets 100
//	flexsim -users 12 -antennas 12 -qam 64 -snr 21.6 -detector ml
//	flexsim -users 8 -antennas 8 -qam 64 -snr 18 -detector aflexcore -npe 64
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"flexcore/internal/channel"
	"flexcore/internal/coding"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/phy"
)

func main() {
	users := flag.Int("users", 8, "number of single-antenna uplink users (Nt)")
	antennas := flag.Int("antennas", 8, "AP receive antennas (Nr)")
	qam := flag.Int("qam", 16, "QAM order (4, 16, 64, 256, 1024)")
	snr := flag.Float64("snr", 14, "per-stream SNR Es/σ² in dB")
	detName := flag.String("detector", "flexcore", "detector: flexcore|aflexcore|ml|mmse|zf|sic|fcsd|kbest|trellis|lrzf")
	npe := flag.Int("npe", 32, "processing elements for flexcore/aflexcore; K for kbest; |Q|^L paths pick L for fcsd")
	packets := flag.Int("packets", 50, "packets to simulate")
	seed := flag.Uint64("seed", 1, "simulation seed")
	subcarriers := flag.Int("subcarriers", 16, "simulated data subcarriers (NCBPS must be a multiple of 16)")
	symbols := flag.Int("symbols", 8, "OFDM symbols per packet")
	channelKind := flag.String("channel", "tdl", "channel model: tdl|flat|iid")
	rho := flag.Float64("rho", 0, "AP-side antenna correlation for flat channels")
	soft := flag.Bool("soft", false, "soft-decision decoding (flexcore/aflexcore only)")
	pilots := flag.Int("pilots", 0, "LS channel estimation from this many pilot symbols (0 = genie CSI)")
	workers := flag.Int("workers", 1, "packet-level simulation parallelism (0 = all cores); results are identical for any value")
	detWorkers := flag.Int("detworkers", 0, "flexcore/aflexcore internal worker pool (0/1 = sequential; detection results are identical for any value)")
	reuse := flag.Float64("reuse", -1, "coherence threshold for flexcore position-vector reuse across subcarriers (<0 = off; 0 = exact-match only; typical 0.05–0.2)")
	backendName := flag.String("backend", "", "flexcore/aflexcore kernel backend: complex128 (default) or soa32 (float32 structure-of-arrays fast path)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	cons, err := constellation.New(*qam)
	if err != nil {
		fatal(err)
	}
	link := phy.LinkConfig{
		Users:         *users,
		APAntennas:    *antennas,
		Constellation: cons,
		CodeRate:      coding.Rate12,
		Subcarriers:   *subcarriers,
		OFDMSymbols:   *symbols,
	}
	backend, ok := core.ParseBackend(*backendName)
	if !ok {
		fatal(fmt.Errorf("unknown backend %q (want complex128 or soa32)", *backendName))
	}
	det, err := makeDetector(strings.ToLower(*detName), cons, *npe, *detWorkers, *reuse, backend)
	if err != nil {
		fatal(err)
	}
	var channels phy.ChannelProvider
	switch *channelKind {
	case "flat":
		channels = &phy.FlatProvider{Seed: *seed, Users: *users, APAntennas: *antennas, Subcarriers: *subcarriers, APCorrelation: *rho}
	case "iid":
		channels = &phy.IIDProvider{Seed: *seed, Users: *users, APAntennas: *antennas, Subcarriers: *subcarriers}
	case "tdl":
		channels = nil // phy.Run synthesizes the default indoor TDL
	default:
		fatal(fmt.Errorf("unknown channel model %q", *channelKind))
	}

	cfg := phy.SimConfig{
		Link:         link,
		SNRdB:        *snr,
		Packets:      *packets,
		Seed:         *seed,
		Detector:     det,
		Channels:     channels,
		Soft:         *soft,
		PilotSymbols: *pilots,
	}
	if *workers != 1 {
		// Parallel runs use one detector per worker; the flag-built
		// instance then only serves the Name/OpCount report below.
		cfg.Detector = nil
		cfg.Workers = *workers
		name, q, dw, ru := strings.ToLower(*detName), *npe, *detWorkers, *reuse
		cfg.DetectorFactory = func() detector.Detector {
			d, err := makeDetector(name, cons, q, dw, ru, backend)
			if err != nil {
				fatal(err)
			}
			return d
		}
	}
	res, err := phy.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("detector      %s\n", det.Name())
	fmt.Printf("backend       %s\n", backend)
	fmt.Printf("system        %d users × %d antennas, %d-QAM, rate-1/2, %.1f dB\n", *users, *antennas, *qam, *snr)
	fmt.Printf("user packets  %d (%d errors)\n", res.UserPackets, res.PacketErrors)
	fmt.Printf("PER           %.4f\n", res.PER)
	fmt.Printf("BER           %.3e\n", res.BER)
	fmt.Printf("throughput    %.1f Mbit/s (48-subcarrier 802.11 symbol)\n", res.ThroughputBps/1e6)
	if res.AvgActivePEs > 0 {
		fmt.Printf("active PEs    %.1f\n", res.AvgActivePEs)
	}
	if *reuse >= 0 {
		fmt.Printf("reuse         threshold %.3g (indoor TDL coherence ≈ %d subcarriers)\n",
			*reuse, channel.DefaultIndoorTDL.CoherenceSubcarriers())
		if fc, ok := det.(*core.FlexCore); ok && *workers == 1 {
			pp := fc.PreprocessStats()
			fmt.Printf("cache         %d hits / %d misses\n", pp.CacheHits, pp.CacheMisses)
		}
	}
	if *workers == 1 {
		ops := det.OpCount().PerDetection()
		fmt.Printf("per detection %d real muls, %d FLOPs, %d nodes\n", ops.RealMuls, ops.FLOPs, ops.Nodes)
	}
}

func makeDetector(name string, cons *constellation.Constellation, npe, detWorkers int, reuse float64, backend core.Backend) (detector.Detector, error) {
	opts := core.Options{NPE: npe, Workers: detWorkers, Backend: backend}
	if reuse >= 0 {
		opts.PathReuse = true
		opts.ReuseThreshold = reuse
	}
	switch name {
	case "flexcore":
		return core.New(cons, opts), nil
	case "aflexcore":
		opts.Threshold = 0.95
		return core.New(cons, opts), nil
	case "ml":
		return detector.NewSphere(cons), nil
	case "mmse":
		return detector.NewMMSE(cons), nil
	case "zf":
		return detector.NewZF(cons), nil
	case "sic":
		return detector.NewSIC(cons), nil
	case "fcsd":
		l := 1
		for p := cons.Size(); p < npe; p *= cons.Size() {
			l++
		}
		return detector.NewFCSD(cons, l), nil
	case "kbest":
		return detector.NewKBest(cons, npe), nil
	case "trellis":
		return detector.NewTrellis(cons), nil
	case "lrzf":
		return detector.NewLRZF(cons), nil
	default:
		return nil, fmt.Errorf("unknown detector %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flexsim: %v\n", err)
	os.Exit(1)
}
