// Command flexserve is the long-running FlexCore detection service
// (DESIGN.md §12–13): it accepts concurrent uplink detection frames
// from many users over a length-prefixed binary TCP protocol, shards
// them across per-shard worker pools (several detectors per shard,
// per-user FIFO sequencing) with consistent user→shard routing,
// applies bounded admission queues with explicit overload rejection,
// reuses each user's Prepare results across frames when -reuse is set,
// coalesces response writes per connection, and exposes a JSON metrics
// endpoint (latency histogram, throughput, per-shard queue depths and
// high-watermarks, reuse hit/miss counters, rejection counts,
// aggregated OpCount/PreprocessStats). On SIGINT/SIGTERM it drains
// gracefully: admitted frames detect and respond, new work is rejected
// with StatusDraining.
//
// Example:
//
//	flexserve -listen :7600 -metrics :7601 -shards 4 -qam 16 -npe 64
//	flexserve -listen :7600 -shards 8 -shardworkers 4 -reuse 0 -qam 64 -npe 128 -backend soa32
//	flexserve -listen :7600 -npe 512 -ladder 128,32 -degrade-start 0.5 -idle-timeout 2m
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/serve"
)

func main() {
	listen := flag.String("listen", ":7600", "TCP address for the frame-ingest protocol")
	metricsAddr := flag.String("metrics", ":7601", "HTTP address for /metrics and /healthz (empty disables)")
	shards := flag.Int("shards", 4, "detection shards (one admission queue + worker pool each)")
	shardWorkers := flag.Int("shardworkers", 1, "worker goroutines per shard, one detector each (per-user order is preserved for any value)")
	queue := flag.Int("queue", 256, "per-shard admission queue depth (full queue ⇒ StatusOverloaded)")
	userCap := flag.Int("usercap", 0, "per-shard tracked-user state cap (0 = default; idle users evict FIFO)")
	qam := flag.Int("qam", 16, "QAM order served (4, 16, 64, 256, 1024)")
	npe := flag.Int("npe", 64, "FlexCore processing elements per detector")
	threshold := flag.Float64("threshold", 0, "a-FlexCore stopping threshold (0 = fixed NPE; paper uses 0.95)")
	workers := flag.Int("workers", 0, "per-detector worker pool (0/1 = sequential; decisions are identical for any value)")
	reuse := flag.Float64("reuse", -1, "coherence threshold for position-vector reuse, within frames and per user across frames (<0 = off; 0 = exact-match, output-neutral)")
	backendName := flag.String("backend", "", "kernel backend: complex128 (default) or soa32")
	ladder := flag.String("ladder", "", "comma-separated descending N_PE degradation rungs (e.g. 128,32 under -npe 512); empty disables graceful degradation")
	degradeStart := flag.Float64("degrade-start", 0, "queue-fill fraction at which degradation begins (0 = default 0.5)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "per-frame read budget once a header has arrived (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "idle-connection reap budget between frames (0 disables)")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "per-flush response write budget (0 disables)")
	drainTimeout := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers on the metrics address")
	flag.Parse()

	cons, err := constellation.New(*qam)
	if err != nil {
		fatal(err)
	}
	backend, ok := core.ParseBackend(*backendName)
	if !ok {
		fatal(fmt.Errorf("unknown backend %q", *backendName))
	}
	opts := core.Options{
		NPE:       *npe,
		Threshold: *threshold,
		Workers:   *workers,
		Backend:   backend,
	}
	if *reuse >= 0 {
		opts.PathReuse = true
		opts.ReuseThreshold = *reuse
	}

	rungs, err := parseLadder(*ladder)
	if err != nil {
		fatal(err)
	}
	scfg := serve.Config{
		Shards:          *shards,
		WorkersPerShard: *shardWorkers,
		QueueDepth:      *queue,
		UserStateCap:    *userCap,
		DegradeStart:    *degradeStart,
		ReadTimeout:     *readTimeout,
		IdleTimeout:     *idleTimeout,
		WriteTimeout:    *writeTimeout,
		DetectorFactory: func() detector.Detector {
			return core.New(cons, opts)
		},
	}
	if len(rungs) > 0 {
		scfg.DegradeLadder = rungs
		scfg.DegradeFactory = func(npe int) detector.Detector {
			rungOpts := opts
			rungOpts.NPE = npe
			return core.New(cons, rungOpts)
		}
	}
	srv, err := serve.NewServer(scfg)
	if err != nil {
		fatal(err)
	}

	if *metricsAddr != "" {
		hs := newMetricsServer(*metricsAddr, newMetricsMux(srv, *pprof))
		//lint:ignore waitdiscipline process-lifetime sidecar: the metrics endpoint serves until the process exits; there is no drain point to join it at
		go func() {
			if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "flexserve: metrics endpoint: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	//lint:ignore waitdiscipline signal-lifetime: Shutdown here is what unblocks ListenAndServe below, so the goroutine cannot be joined before the serve loop exits; it ends with the process
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "flexserve: draining…")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "flexserve: drain incomplete: %v\n", err)
			os.Exit(1)
		}
	}()

	fmt.Printf("flexserve: %d-QAM, %d shards × %d workers × (NPE=%d, detworkers=%d, backend=%s), queue depth %d\n",
		*qam, *shards, *shardWorkers, *npe, *workers, backend, *queue)
	if len(rungs) > 0 {
		fmt.Printf("flexserve: degradation ladder %v (start at %.0f%% queue fill)\n", rungs, scfg.DegradeStart*100)
	}
	fmt.Printf("flexserve: listening on %s (metrics on %s)\n", *listen, *metricsAddr)
	if err := srv.ListenAndServe(*listen); err != nil {
		fatal(err)
	}
	snap := srv.Metrics()
	fmt.Printf("flexserve: drained — %d completed, %d rejected (%d overload, %d draining, %d invalid)\n",
		snap.Completed, snap.RejectedOverload+snap.RejectedDraining+snap.RejectedInvalid,
		snap.RejectedOverload, snap.RejectedDraining, snap.RejectedInvalid)
}

// parseLadder parses the -ladder flag: a comma-separated list of
// descending N_PE rungs, empty for none. Ordering and positivity are
// validated again by serve.NewServer; this only parses.
func parseLadder(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	rungs := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("-ladder %q: %w", spec, err)
		}
		rungs = append(rungs, n)
	}
	return rungs, nil
}

// newMetricsMux builds the metrics/health mux served on -metrics.
func newMetricsMux(srv *serve.Server, pprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", srv.MetricsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if srv.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if pprof {
		// net/http/pprof self-registers on http.DefaultServeMux,
		// which flexserve never serves; mount the handlers on the
		// metrics mux explicitly so profiling shares that listener.
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	return mux
}

// newMetricsServer wraps the mux in an http.Server with every idle- and
// slow-client budget set: the metrics sidecar must never be the
// unbounded listener on a box whose data plane enforces deadlines.
// (The pprof profile endpoint streams for its ?seconds= window, so the
// write budget stays generous.)
func newMetricsServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexserve:", err)
	os.Exit(1)
}
