// Command flexserve is the long-running FlexCore detection service
// (DESIGN.md §12–13): it accepts concurrent uplink detection frames
// from many users over a length-prefixed binary TCP protocol, shards
// them across per-shard worker pools (several detectors per shard,
// per-user FIFO sequencing) with consistent user→shard routing,
// applies bounded admission queues with explicit overload rejection,
// reuses each user's Prepare results across frames when -reuse is set,
// coalesces response writes per connection, and exposes a JSON metrics
// endpoint (latency histogram, throughput, per-shard queue depths and
// high-watermarks, reuse hit/miss counters, rejection counts,
// aggregated OpCount/PreprocessStats). On SIGINT/SIGTERM it drains
// gracefully: admitted frames detect and respond, new work is rejected
// with StatusDraining.
//
// Example:
//
//	flexserve -listen :7600 -metrics :7601 -shards 4 -qam 16 -npe 64
//	flexserve -listen :7600 -shards 8 -shardworkers 4 -reuse 0 -qam 64 -npe 128 -backend soa32
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/serve"
)

func main() {
	listen := flag.String("listen", ":7600", "TCP address for the frame-ingest protocol")
	metricsAddr := flag.String("metrics", ":7601", "HTTP address for /metrics and /healthz (empty disables)")
	shards := flag.Int("shards", 4, "detection shards (one admission queue + worker pool each)")
	shardWorkers := flag.Int("shardworkers", 1, "worker goroutines per shard, one detector each (per-user order is preserved for any value)")
	queue := flag.Int("queue", 256, "per-shard admission queue depth (full queue ⇒ StatusOverloaded)")
	userCap := flag.Int("usercap", 0, "per-shard tracked-user state cap (0 = default; idle users evict FIFO)")
	qam := flag.Int("qam", 16, "QAM order served (4, 16, 64, 256, 1024)")
	npe := flag.Int("npe", 64, "FlexCore processing elements per detector")
	threshold := flag.Float64("threshold", 0, "a-FlexCore stopping threshold (0 = fixed NPE; paper uses 0.95)")
	workers := flag.Int("workers", 0, "per-detector worker pool (0/1 = sequential; decisions are identical for any value)")
	reuse := flag.Float64("reuse", -1, "coherence threshold for position-vector reuse, within frames and per user across frames (<0 = off; 0 = exact-match, output-neutral)")
	backendName := flag.String("backend", "", "kernel backend: complex128 (default) or soa32")
	drainTimeout := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers on the metrics address")
	flag.Parse()

	cons, err := constellation.New(*qam)
	if err != nil {
		fatal(err)
	}
	backend, ok := core.ParseBackend(*backendName)
	if !ok {
		fatal(fmt.Errorf("unknown backend %q", *backendName))
	}
	opts := core.Options{
		NPE:       *npe,
		Threshold: *threshold,
		Workers:   *workers,
		Backend:   backend,
	}
	if *reuse >= 0 {
		opts.PathReuse = true
		opts.ReuseThreshold = *reuse
	}

	srv, err := serve.NewServer(serve.Config{
		Shards:          *shards,
		WorkersPerShard: *shardWorkers,
		QueueDepth:      *queue,
		UserStateCap:    *userCap,
		DetectorFactory: func() detector.Detector {
			return core.New(cons, opts)
		},
	})
	if err != nil {
		fatal(err)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			if srv.Draining() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		})
		if *pprof {
			// net/http/pprof self-registers on http.DefaultServeMux,
			// which flexserve never serves; mount the handlers on the
			// metrics mux explicitly so profiling shares that listener.
			mux.HandleFunc("/debug/pprof/", httppprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		}
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "flexserve: metrics endpoint: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "flexserve: draining…")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "flexserve: drain incomplete: %v\n", err)
			os.Exit(1)
		}
	}()

	fmt.Printf("flexserve: %d-QAM, %d shards × %d workers × (NPE=%d, detworkers=%d, backend=%s), queue depth %d\n",
		*qam, *shards, *shardWorkers, *npe, *workers, backend, *queue)
	fmt.Printf("flexserve: listening on %s (metrics on %s)\n", *listen, *metricsAddr)
	if err := srv.ListenAndServe(*listen); err != nil {
		fatal(err)
	}
	snap := srv.Metrics()
	fmt.Printf("flexserve: drained — %d completed, %d rejected (%d overload, %d draining, %d invalid)\n",
		snap.Completed, snap.RejectedOverload+snap.RejectedDraining+snap.RejectedInvalid,
		snap.RejectedOverload, snap.RejectedDraining, snap.RejectedInvalid)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexserve:", err)
	os.Exit(1)
}
