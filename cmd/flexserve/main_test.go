package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/serve"
)

func testServer(t *testing.T) *serve.Server {
	t.Helper()
	cons, err := constellation.New(16)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(serve.Config{
		Shards: 1,
		DetectorFactory: func() detector.Detector {
			return core.New(cons, core.Options{NPE: 8, Workers: 1})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestMetricsServerHasTimeouts is the regression for the bare
// http.ListenAndServe the metrics endpoint used to run on: a sidecar
// listener with no read/idle budgets is a slow-loris hole on a daemon
// whose data plane enforces deadlines.
func TestMetricsServerHasTimeouts(t *testing.T) {
	hs := newMetricsServer(":0", http.NewServeMux())
	if hs.ReadHeaderTimeout <= 0 {
		t.Fatal("metrics server has no ReadHeaderTimeout")
	}
	if hs.ReadTimeout <= 0 {
		t.Fatal("metrics server has no ReadTimeout")
	}
	if hs.WriteTimeout <= 0 {
		t.Fatal("metrics server has no WriteTimeout")
	}
	if hs.IdleTimeout <= 0 {
		t.Fatal("metrics server has no IdleTimeout")
	}
}

// TestMetricsMuxEndpoints drives the mux through httptest: /metrics
// must serve a parseable serve.Snapshot (including the PR 9 fields)
// and /healthz must flip to 503 once draining.
func TestMetricsMuxEndpoints(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(newMetricsMux(srv, false))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics did not serve a Snapshot: %v", err)
	}
	if snap.Shards != 1 {
		t.Fatalf("snapshot shards %d, want 1", snap.Shards)
	}
	if snap.ExpiredFrames != 0 || snap.DegradedFrames != 0 || snap.ConnTimeouts != 0 {
		t.Fatalf("fresh server reports expired %d degraded %d conn timeouts %d, want zeros",
			snap.ExpiredFrames, snap.DegradedFrames, snap.ConnTimeouts)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz before drain: %d", hz.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	hz, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after drain: %d, want 503", hz.StatusCode)
	}
}

// TestParseLadder pins the flag syntax; semantic validation (descending,
// positive) stays with serve.NewServer.
func TestParseLadder(t *testing.T) {
	if rungs, err := parseLadder(" 128, 32 "); err != nil || len(rungs) != 2 || rungs[0] != 128 || rungs[1] != 32 {
		t.Fatalf("parseLadder(\" 128, 32 \") = %v, %v", rungs, err)
	}
	if rungs, err := parseLadder(""); err != nil || rungs != nil {
		t.Fatalf("parseLadder(\"\") = %v, %v, want nil, nil", rungs, err)
	}
	if _, err := parseLadder("128,abc"); err == nil {
		t.Fatal("parseLadder accepted a non-numeric rung")
	}
}
