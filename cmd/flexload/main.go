// Command flexload is the load generator for the flexserve detection
// service (DESIGN.md §13): it drives pipelined detection frames from
// many simulated users over concurrent connections — closed-loop (a
// fixed in-flight window per connection) or open-loop (a target
// aggregate frame rate) — and reports throughput and exact latency
// percentiles. Each user follows a channel-coherence model: its
// per-subcarrier channels are redrawn every -coherence frames
// (0 = static, the cross-frame Prepare-reuse steady state), so the
// served reuse hit rate is a controlled property of the workload.
//
// With -spawn it starts an in-process loopback server first (the
// self-contained benchmark mode that produced BENCH_PR8.json) and
// includes the server's final metrics snapshot in the -json output.
//
// Frames can carry a staleness budget (-deadline, shed server-side as
// StatusExpired once stale), overloaded rejections can be retried
// closed-loop (-retries), and every connection can run under lossless
// fault injection (-fault partial,short,stutter) to exercise the
// chaos-hardened wire path under load. The report and -json break out
// expired/degraded/retried frames and per-status latency percentiles.
//
// Example:
//
//	flexload -spawn -shards 2 -shardworkers 4 -reuse 0 -users 16 -frames 200 -json
//	flexload -addr :7600 -conns 8 -users 32 -rate 5000 -duration 10s
//	flexload -addr :7600 -deadline 5ms -retries 2 -fault partial,stutter
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flexcore/internal/channel"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/serve"
)

type config struct {
	addr  string
	spawn bool

	// server knobs (spawn mode)
	shards       int
	shardWorkers int
	queue        int
	qam          int
	npe          int
	threshold    float64
	strict       bool
	detWorkers   int
	reuse        float64
	backend      string

	// workload
	conns     int
	users     int
	frames    int
	inflight  int
	rate      float64
	duration  time.Duration
	coherence int
	seed      uint64
	deadline  time.Duration
	retries   int
	fault     string

	nr, nt, k, s int
	sigma2       float64
}

// latSummary is one response class's latency distribution.
type latSummary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_micros"`
	P50Us  float64 `json:"p50_micros"`
	P95Us  float64 `json:"p95_micros"`
	P99Us  float64 `json:"p99_micros"`
}

// result is the -json document: the workload's client-side view plus,
// in spawn mode, the server's own snapshot (reuse hits, queue
// high-watermarks, …). FramesOK counts every served frame including
// degraded ones; FramesDegraded breaks out the responses the pressure
// ladder served at a reduced N_PE, FramesExpired the StatusExpired
// sheds, FramesRetried the overloaded re-submissions (closed loop).
type result struct {
	Config          map[string]any        `json:"config"`
	ElapsedSeconds  float64               `json:"elapsed_seconds"`
	FramesSent      int64                 `json:"frames_sent"`
	FramesOK        int64                 `json:"frames_ok"`
	FramesRejected  int64                 `json:"frames_rejected"`
	FramesExpired   int64                 `json:"frames_expired"`
	FramesDegraded  int64                 `json:"frames_degraded"`
	FramesRetried   int64                 `json:"frames_retried"`
	ThroughputFPS   float64               `json:"throughput_fps"`
	LatencyMeanUs   float64               `json:"latency_mean_micros"`
	LatencyP50Us    float64               `json:"latency_p50_micros"`
	LatencyP95Us    float64               `json:"latency_p95_micros"`
	LatencyP99Us    float64               `json:"latency_p99_micros"`
	LatencyByStatus map[string]latSummary `json:"latency_by_status,omitempty"`
	Server          *serve.Snapshot       `json:"server,omitempty"`
}

func main() {
	var c config
	flag.StringVar(&c.addr, "addr", "", "flexserve TCP address to load (empty with -spawn: loopback)")
	flag.BoolVar(&c.spawn, "spawn", false, "start an in-process loopback server and load it")
	flag.IntVar(&c.shards, "shards", 2, "[spawn] detection shards")
	flag.IntVar(&c.shardWorkers, "shardworkers", 1, "[spawn] worker goroutines per shard")
	flag.IntVar(&c.queue, "queue", 256, "[spawn] per-shard admission backlog")
	flag.IntVar(&c.qam, "qam", 16, "[spawn] QAM order")
	flag.IntVar(&c.npe, "npe", 64, "[spawn] FlexCore processing elements")
	flag.Float64Var(&c.threshold, "threshold", 0, "[spawn] a-FlexCore stopping threshold (0 = fixed NPE; paper uses 0.95)")
	flag.BoolVar(&c.strict, "strict", false, "[spawn] strict PE deactivation (paper §3.2 literal: out-of-constellation kills the path)")
	flag.IntVar(&c.detWorkers, "detworkers", 1, "[spawn] per-detector worker pool")
	flag.Float64Var(&c.reuse, "reuse", -1, "[spawn] Prepare-reuse coherence threshold, keyed per user (<0 = off; 0 = exact-match, output-neutral)")
	flag.StringVar(&c.backend, "backend", "", "[spawn] kernel backend: complex128 (default) or soa32")
	flag.IntVar(&c.conns, "conns", 4, "pipelined client connections")
	flag.IntVar(&c.users, "users", 8, "simulated users (round-robin across connections; user→shard routing is the server's)")
	flag.IntVar(&c.frames, "frames", 100, "frames per user (closed loop; ignored when -rate is set)")
	flag.IntVar(&c.inflight, "inflight", 8, "closed-loop in-flight window per connection")
	flag.Float64Var(&c.rate, "rate", 0, "open-loop aggregate target rate in frames/sec (0 = closed loop)")
	flag.DurationVar(&c.duration, "duration", 10*time.Second, "open-loop run length")
	flag.IntVar(&c.coherence, "coherence", 0, "frames between channel redraws per user (0 = static channel)")
	flag.Uint64Var(&c.seed, "seed", 0xf1ec, "workload seed (frames are deterministic per (seed, user, frame))")
	flag.DurationVar(&c.deadline, "deadline", 0, "per-frame staleness budget stamped into every request (0 = none; stale frames are shed with StatusExpired)")
	flag.IntVar(&c.retries, "retries", 0, "max re-submissions per frame on StatusOverloaded (closed loop only)")
	flag.StringVar(&c.fault, "fault", "", "comma-separated lossless fault injection on every connection: partial, short, stutter")
	flag.IntVar(&c.nr, "nr", 6, "receive antennas")
	flag.IntVar(&c.nt, "nt", 4, "transmit streams")
	flag.IntVar(&c.k, "k", 32, "subcarriers per frame")
	flag.IntVar(&c.s, "s", 1, "OFDM symbols per subcarrier")
	flag.Float64Var(&c.sigma2, "sigma2", 0.05, "noise variance")
	jsonOut := flag.Bool("json", false, "emit the run result as JSON on stdout")
	flag.Parse()

	if !c.spawn && c.addr == "" {
		fatal(fmt.Errorf("need -addr or -spawn"))
	}
	if c.conns <= 0 || c.users <= 0 {
		fatal(fmt.Errorf("-conns and -users must be positive"))
	}
	if c.users < c.conns {
		c.conns = c.users
	}

	var srv *serve.Server
	if c.spawn {
		var err error
		srv, err = spawnServer(&c)
		if err != nil {
			fatal(err)
		}
	}

	res, err := run(&c)
	if err != nil {
		fatal(err)
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		snap := srv.Metrics()
		res.Server = &snap
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("flexload: %d frames ok (%d degraded), %d rejected, %d expired, %d retried in %.2fs — %.0f frames/sec\n",
		res.FramesOK, res.FramesDegraded, res.FramesRejected, res.FramesExpired, res.FramesRetried,
		res.ElapsedSeconds, res.ThroughputFPS)
	fmt.Printf("flexload: latency µs — mean %.0f, p50 %.0f, p95 %.0f, p99 %.0f\n",
		res.LatencyMeanUs, res.LatencyP50Us, res.LatencyP95Us, res.LatencyP99Us)
	for status, s := range res.LatencyByStatus {
		fmt.Printf("flexload: latency[%s] µs — n %d, mean %.0f, p50 %.0f, p95 %.0f, p99 %.0f\n",
			status, s.Count, s.MeanUs, s.P50Us, s.P95Us, s.P99Us)
	}
	if res.Server != nil {
		var hits, misses int64
		for _, st := range res.Server.ShardStats {
			hits += st.ReuseHits
			misses += st.ReuseMisses
		}
		fmt.Printf("flexload: server — %d completed, reuse hits/misses %d/%d\n", res.Server.Completed, hits, misses)
	}
}

// spawnServer starts the loopback server described by the [spawn] flags
// and points c.addr at it.
func spawnServer(c *config) (*serve.Server, error) {
	cons, err := constellation.New(c.qam)
	if err != nil {
		return nil, err
	}
	backend, ok := core.ParseBackend(c.backend)
	if !ok {
		return nil, fmt.Errorf("unknown backend %q", c.backend)
	}
	opts := core.Options{NPE: c.npe, Threshold: c.threshold, StrictDeactivation: c.strict, Workers: c.detWorkers, Backend: backend}
	if c.reuse >= 0 {
		opts.PathReuse = true
		opts.ReuseThreshold = c.reuse
	}
	srv, err := serve.NewServer(serve.Config{
		Shards:          c.shards,
		WorkersPerShard: c.shardWorkers,
		QueueDepth:      c.queue,
		DetectorFactory: func() detector.Detector { return core.New(cons, opts) },
	})
	if err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	// Joined across functions: main's srv.Shutdown closes the listener,
	// Serve returns, and the goroutine exits — the analyzer cannot see a
	// join that lives in the caller.
	//lint:ignore waitdiscipline joined in main via srv.Shutdown, which closes the listener and makes Serve return
	go func() {
		if err := srv.Serve(lis); err != nil {
			fmt.Fprintf(os.Stderr, "flexload: spawned server: %v\n", err)
		}
	}()
	c.addr = lis.Addr().String()
	return srv, nil
}

// user is one simulated uplink user: its identity and its private
// channel/data RNG state under the coherence model.
type user struct {
	id    uint64
	sent  uint64 // frames generated so far
	chans []*matrixBuf
}

// matrixBuf caches one user's current per-subcarrier channel draw so a
// static user re-sends bit-identical H arrays (the reuse contract needs
// exact bits, not a re-derivation).
type matrixBuf struct {
	data []complex128
}

// fillFrame writes user u's next frame into q. The channel is redrawn
// from the coherence-keyed stream every `coherence` frames (epoch
// change); transmitted symbols and noise always come from the
// frame-keyed stream, so payloads differ even when channels repeat.
func fillFrame(c *config, u *user, q *serve.DetectRequest) error {
	u.sent++
	frameID := u.sent
	q.UserID, q.FrameID, q.Sigma2 = u.id, frameID, c.sigma2
	q.DeadlineMicros = uint64(c.deadline / time.Microsecond)
	if err := q.SetGeometry(c.nr, c.nt, c.k, c.s); err != nil {
		return err
	}
	epoch := uint64(0)
	if c.coherence > 0 {
		epoch = (frameID - 1) / uint64(c.coherence)
	}
	redraw := u.chans == nil || (c.coherence > 0 && (frameID-1)%uint64(c.coherence) == 0)
	if u.chans == nil {
		u.chans = make([]*matrixBuf, c.k)
		for k := range u.chans {
			u.chans[k] = &matrixBuf{data: make([]complex128, c.nr*c.nt)}
		}
	}
	if redraw {
		chRNG := channel.NewStreamRNG(c.seed, u.id<<24|epoch)
		for k := 0; k < c.k; k++ {
			h := channel.Rayleigh(chRNG, c.nr, c.nt)
			copy(u.chans[k].data, h.Data)
		}
	}
	dataRNG := channel.NewStreamRNG(c.seed^0xda7a, u.id<<24|frameID)
	x := make([]complex128, c.nt)
	for k := 0; k < c.k; k++ {
		hm := q.H()[k]
		copy(hm.Data, u.chans[k].data)
		for _, y := range q.Burst(k) {
			for i := range x {
				x[i] = channel.CN(dataRNG, 1)
			}
			copy(y, hm.MulVec(x))
			channel.AddAWGN(dataRNG, y, c.sigma2)
		}
	}
	return nil
}

// connStats is one connection's tally, merged after the run.
type connStats struct {
	sent, ok, rejected int64
	expired, degraded  int64
	retried            int64
	lat                []time.Duration
	latBy              map[serve.Status][]time.Duration
	err                error
}

// record books one finalized response: overall and per-status latency,
// plus the disposition counters.
func (st *connStats) record(status serve.Status, servedNPE int, lat time.Duration) {
	st.lat = append(st.lat, lat)
	st.latBy[status] = append(st.latBy[status], lat)
	switch status {
	case serve.StatusOK:
		st.ok++
		if servedNPE != 0 {
			st.degraded++
		}
	case serve.StatusExpired:
		st.expired++
	default:
		st.rejected++
	}
}

// run drives the workload and aggregates the client-side result.
func run(c *config) (*result, error) {
	// Users round-robin onto connections; a user's frames all ride one
	// connection, so per-user response order is observable end to end.
	connUsers := make([][]*user, c.conns)
	for i := 0; i < c.users; i++ {
		connUsers[i%c.conns] = append(connUsers[i%c.conns], &user{id: uint64(1 + i*13)})
	}

	// Closed-loop runs pregenerate every frame before the clock starts:
	// synthesising a frame (Rayleigh draws, MulVec, AWGN) costs the same
	// order as detecting it, and on a small host that client-side work
	// would otherwise share cores with the server and dominate the timed
	// window, masking exactly the server-side effects being measured.
	// Open-loop runs are duration-bound (frame count unknown up front)
	// and synthesise inline; their pacing loop absorbs the cost.
	var connReqs [][]*serve.DetectRequest
	if c.rate <= 0 {
		connReqs = make([][]*serve.DetectRequest, c.conns)
		for i, users := range connUsers {
			reqs := make([]*serve.DetectRequest, 0, c.frames*len(users))
			for n := 0; n < c.frames*len(users); n++ {
				q := new(serve.DetectRequest)
				if err := fillFrame(c, users[n%len(users)], q); err != nil {
					return nil, err
				}
				reqs = append(reqs, q)
			}
			connReqs[i] = reqs
		}
	}

	stats := make([]connStats, c.conns)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < c.conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reqs []*serve.DetectRequest
			if connReqs != nil {
				reqs = connReqs[i]
			}
			stats[i] = driveConn(c, i, connUsers[i], reqs, start)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &result{
		Config: map[string]any{
			"addr": c.addr, "spawn": c.spawn, "shards": c.shards,
			"shardworkers": c.shardWorkers, "queue": c.queue, "qam": c.qam,
			"npe": c.npe, "threshold": c.threshold, "strict": c.strict, "detworkers": c.detWorkers, "reuse": c.reuse,
			"backend": c.backend, "conns": c.conns, "users": c.users,
			"frames": c.frames, "inflight": c.inflight, "rate": c.rate,
			"coherence": c.coherence, "seed": c.seed,
			"deadline": c.deadline.String(), "retries": c.retries, "fault": c.fault,
			"nr": c.nr, "nt": c.nt, "k": c.k, "s": c.s, "sigma2": c.sigma2,
		},
		ElapsedSeconds: elapsed.Seconds(),
	}
	var all []time.Duration
	byStatus := map[serve.Status][]time.Duration{}
	for i := range stats {
		if stats[i].err != nil {
			return nil, stats[i].err
		}
		res.FramesSent += stats[i].sent
		res.FramesOK += stats[i].ok
		res.FramesRejected += stats[i].rejected
		res.FramesExpired += stats[i].expired
		res.FramesDegraded += stats[i].degraded
		res.FramesRetried += stats[i].retried
		all = append(all, stats[i].lat...)
		for status, lats := range stats[i].latBy {
			byStatus[status] = append(byStatus[status], lats...)
		}
	}
	if res.ElapsedSeconds > 0 {
		res.ThroughputFPS = float64(res.FramesOK) / res.ElapsedSeconds
	}
	if len(all) > 0 {
		res.LatencyByStatus = make(map[string]latSummary, len(byStatus))
		for status, lats := range byStatus {
			res.LatencyByStatus[status.String()] = summarize(lats)
		}
		overall := summarize(all)
		res.LatencyMeanUs = overall.MeanUs
		res.LatencyP50Us = overall.P50Us
		res.LatencyP95Us = overall.P95Us
		res.LatencyP99Us = overall.P99Us
	}
	return res, nil
}

// summarize sorts the samples in place and condenses them.
func summarize(lats []time.Duration) latSummary {
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	return latSummary{
		Count:  int64(len(lats)),
		MeanUs: float64(sum.Microseconds()) / float64(len(lats)),
		P50Us:  float64(pct(lats, 50).Microseconds()),
		P95Us:  float64(pct(lats, 95).Microseconds()),
		P99Us:  float64(pct(lats, 99).Microseconds()),
	}
}

// pct returns the p-th percentile of sorted samples (nearest-rank).
func pct(sorted []time.Duration, p int) time.Duration {
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

// dialLoad dials the target, wrapping the connection in a FaultConn
// when -fault asks for injection. Each connection's plan is seeded from
// the workload seed and the connection index, so runs replay exactly.
func dialLoad(c *config, idx int) (*serve.Client, error) {
	if c.fault == "" {
		return serve.Dial(c.addr)
	}
	plan, err := faultPlanFor(c.fault, c.seed, idx)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return serve.NewClient(serve.NewFaultConn(conn, plan)), nil
}

// faultPlanFor maps the -fault presets onto a FaultPlan. Only the
// lossless classes are offered — a load generator must complete its
// run; the lossy classes (corruption, resets) live in the chaos suite.
func faultPlanFor(spec string, seed uint64, idx int) (serve.FaultPlan, error) {
	plan := serve.FaultPlan{Seed: seed + uint64(idx)*0x9e3779b97f4a7c15}
	for _, part := range strings.Split(spec, ",") {
		switch strings.TrimSpace(part) {
		case "partial":
			plan.MaxWriteChunk = 7
		case "short":
			plan.MaxReadChunk = 5
		case "stutter":
			plan.StutterEvery = 13
			plan.Stutter = 200 * time.Microsecond
		case "":
		default:
			return plan, fmt.Errorf("-fault %q: unknown fault %q (want partial, short, stutter)", spec, part)
		}
	}
	return plan, nil
}

// driveConn runs one connection's workload: closed loop (in-flight
// window over pregenerated frames, Queue/Flush coalescing, optional
// overload retries) or open loop (paced inline-synthesised sends with
// a concurrent reader).
func driveConn(c *config, idx int, users []*user, reqs []*serve.DetectRequest, start time.Time) connStats {
	st := connStats{latBy: map[serve.Status][]time.Duration{}}
	if len(users) == 0 {
		return st
	}
	cl, err := dialLoad(c, idx)
	if err != nil {
		st.err = err
		return st
	}
	defer cl.Close()

	if c.rate > 0 {
		st.err = openLoopConn(c, cl, users, &st)
		return st
	}
	st.err = closedLoop(c, cl, reqs, &st)
	return st
}

// pending is one closed-loop frame on the wire: its request (kept for
// re-submission), original send time (latency spans retries) and how
// many times it has been re-submitted after StatusOverloaded.
type pending struct {
	q        *serve.DetectRequest
	t0       time.Time
	attempts int
}

// closedLoop drives the pregenerated frames through an in-flight
// window. Responses echo FrameID only, so outstanding frames are
// matched FIFO per FrameID: when several users have the same FrameID in
// flight the latency/retry attribution between them is approximate, but
// every frame is finalized exactly once — re-submission is safe because
// requests are idempotent by (UserID, FrameID).
func closedLoop(c *config, cl *serve.Client, reqs []*serve.DetectRequest, st *connStats) error {
	total := len(reqs)
	outstanding := make(map[uint64][]*pending, c.inflight)
	next, open, finalized := 0, 0, 0
	var resp serve.DetectResponse
	for finalized < total {
		for next < total && open < c.inflight {
			qp := reqs[next]
			next++
			open++
			st.sent++
			outstanding[qp.FrameID] = append(outstanding[qp.FrameID], &pending{q: qp, t0: time.Now()})
			if err := cl.Queue(qp); err != nil {
				return err
			}
		}
		if err := cl.Flush(); err != nil {
			return err
		}
		if err := cl.Recv(&resp); err != nil {
			return err
		}
		fifo := outstanding[resp.FrameID]
		if len(fifo) == 0 {
			return fmt.Errorf("unmatched response for frame %d", resp.FrameID)
		}
		p := fifo[0]
		outstanding[resp.FrameID] = fifo[1:]
		if resp.Status == serve.StatusOverloaded && p.attempts < c.retries {
			// Explicit backpressure with retry budget left: re-queue the
			// frame (flushed at the top of the next iteration) and keep it
			// open. Its latency keeps accruing from the first send.
			p.attempts++
			st.retried++
			st.sent++
			outstanding[resp.FrameID] = append(outstanding[resp.FrameID], p)
			if err := cl.Queue(p.q); err != nil {
				return err
			}
			continue
		}
		st.record(resp.Status, resp.ServedNPE, time.Since(p.t0))
		open--
		finalized++
	}
	return nil
}

// openLoopConn wires the open-loop pacer's send/recv hooks for one
// connection: inline frame synthesis round-robin over the connection's
// users, with a response matcher keyed by (user, frame). -retries does
// not apply here — an open-loop generator measures the server's
// behaviour at the offered rate, it does not add load to a server
// already shedding it.
func openLoopConn(c *config, cl *serve.Client, users []*user, st *connStats) error {
	// sendAt maps an on-the-wire (user, frame) key to its send time.
	// Guarded by mu: the open-loop mode reads responses on a separate
	// goroutine (Client.Queue and Client.Recv are individually
	// thread-safe).
	type key struct{ user, frame uint64 }
	var mu sync.Mutex
	sendAt := make(map[key]time.Time, c.inflight*len(users)+1)
	var q serve.DetectRequest
	next := 0 // round-robin user cursor

	send := func() error {
		u := users[next]
		next = (next + 1) % len(users)
		if err := fillFrame(c, u, &q); err != nil {
			return err
		}
		mu.Lock()
		sendAt[key{q.UserID, q.FrameID}] = time.Now()
		st.sent++
		mu.Unlock()
		return cl.Queue(&q)
	}
	var resp serve.DetectResponse
	recv := func() error {
		if err := cl.Recv(&resp); err != nil {
			return err
		}
		// Responses echo FrameID only; recover the user by matching the
		// outstanding frame with that ID (FrameIDs are per-user
		// sequence numbers, unique per user).
		mu.Lock()
		lat := time.Duration(-1)
		for _, u := range users {
			k := key{u.id, resp.FrameID}
			if t0, ok := sendAt[k]; ok {
				lat = time.Since(t0)
				delete(sendAt, k)
				break
			}
		}
		if lat >= 0 {
			st.record(resp.Status, resp.ServedNPE, lat)
		}
		mu.Unlock()
		return nil
	}
	return openLoop(c, cl, send, recv)
}

// openLoop paces this connection's share of the aggregate target rate
// until the run duration elapses, with a concurrent reader recording
// latencies as responses arrive (a lazily-read response would otherwise
// charge client-side batching to the server), then drains what is still
// outstanding.
func openLoop(c *config, cl *serve.Client, send func() error, recv func() error) error {
	interval := time.Duration(float64(time.Second) * float64(c.conns) / c.rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	stop := make(chan struct{})
	readerErr := make(chan error, 1)
	var sent atomic.Int64
	var recvd int64
	go func() {
		for {
			select {
			case <-stop:
				// Drain the remainder, then report.
				for recvd < sent.Load() {
					if err := recv(); err != nil {
						readerErr <- err
						return
					}
					recvd++
				}
				readerErr <- nil
				return
			default:
			}
			if recvd < sent.Load() { // outstanding responses exist or will shortly
				if err := recv(); err != nil {
					readerErr <- err
					return
				}
				recvd++
			} else {
				time.Sleep(interval / 2)
			}
		}
	}()
	deadline := time.Now().Add(c.duration)
	nextSend := time.Now()
	for time.Now().Before(deadline) {
		if err := send(); err != nil {
			close(stop)
			<-readerErr
			return err
		}
		if err := cl.Flush(); err != nil {
			close(stop)
			<-readerErr
			return err
		}
		sent.Add(1)
		nextSend = nextSend.Add(interval)
		if d := time.Until(nextSend); d > 0 {
			time.Sleep(d)
		} else {
			nextSend = time.Now() // behind schedule: don't burst to catch up
		}
	}
	close(stop)
	return <-readerErr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexload:", err)
	os.Exit(1)
}
