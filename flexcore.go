// Package flexcore is a Go implementation of FlexCore (Husmann, Georgis,
// Nikitopoulos, Jamieson — "FlexCore: Massively Parallel and Flexible
// Processing for Large MIMO Access Points", NSDI 2017): a massively
// parallel, processing-element-flexible approximate-ML MIMO detector,
// together with every substrate the paper's evaluation needs — complex
// linear algebra, QAM constellations, 802.11 coding and OFDM numerology,
// wireless channel models, the baseline detectors (ML sphere decoding,
// FCSD, K-best, trellis, SIC, MMSE/ZF), a full link-level simulator, and
// calibrated GPU/FPGA/LTE platform models.
//
// The root package is a facade over internal packages; it exposes the
// types a downstream user needs to detect uplink MIMO transmissions and
// to run link-level experiments. See README.md for a walkthrough and
// DESIGN.md for the architecture.
//
// Basic use:
//
//	cons := flexcore.MustConstellation(64)
//	det := flexcore.New(cons, flexcore.Options{NPE: 128})
//	// per channel realisation (e.g. per OFDM subcarrier):
//	if err := det.Prepare(h, sigma2); err != nil { ... }
//	// per received vector:
//	symbols := det.Detect(y)
//
// For OFDM frames, the channel-rate fast path prepares every subcarrier
// in one call (fanning across Options.Workers, and reusing position
// vectors across coherent subcarriers when Options.PathReuse is set):
//
//	if err := det.PrepareAll(hs, sigma2); err != nil { ... }
//	for k := range hs {
//		det.Select(k)
//		symbols := det.Detect(ys[k])
//	}
package flexcore

import (
	"flexcore/internal/channel"
	"flexcore/internal/cmatrix"
	"flexcore/internal/constellation"
	"flexcore/internal/core"
	"flexcore/internal/detector"
	"flexcore/internal/phy"
)

// Matrix is a dense complex matrix (row-major); channels are Nr×Nt.
type Matrix = cmatrix.Matrix

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return cmatrix.New(rows, cols) }

// Constellation is a square Gray-mapped QAM alphabet with unit average
// symbol energy.
type Constellation = constellation.Constellation

// NewConstellation returns the M-QAM constellation (M ∈ {4, 16, 64, 256, 1024}).
func NewConstellation(m int) (*Constellation, error) { return constellation.New(m) }

// MustConstellation is NewConstellation for known-valid orders.
func MustConstellation(m int) *Constellation { return constellation.MustNew(m) }

// Detector is the two-phase detection interface every detector in the
// library implements: Prepare once per channel, Detect once per vector.
type Detector = detector.Detector

// BatchDetector is a Detector with an amortised burst entry point:
// DetectBatch detects a whole slice of received vectors (e.g. every OFDM
// symbol of a packet on one subcarrier) in one call. FlexCore implements
// it natively (fanning vectors across its persistent worker pool); wrap
// any other detector with AsBatchDetector.
type BatchDetector = detector.BatchDetector

// AsBatchDetector returns d's native batch implementation when it has
// one, or a sequential loop adapter otherwise.
func AsBatchDetector(d Detector) BatchDetector { return detector.Batch(d) }

// OpCount carries instrumentation counters (real multiplications, FLOPs,
// visited nodes) in the units the paper reports.
type OpCount = detector.OpCount

// Options configures the FlexCore detector (processing elements,
// a-FlexCore threshold, QR ordering, worker parallelism).
type Options = core.Options

// FlexCore is the paper's detector.
type FlexCore = core.FlexCore

// Path is a pre-processing position vector with its model probability.
type Path = core.Path

// Backend selects the arithmetic kernels behind Options.Backend: the
// complex128 reference implementation or the float32 structure-of-
// arrays fast path (DESIGN.md §11).
type Backend = core.Backend

// The available hot-path kernel backends.
const (
	BackendComplex128 = core.BackendComplex128
	BackendSoA32      = core.BackendSoA32
)

// ParseBackend maps a command-line spelling ("complex128", "soa32", …)
// to a Backend; the empty string selects the default complex128.
func ParseBackend(s string) (Backend, bool) { return core.ParseBackend(s) }

// New returns a FlexCore detector for the constellation.
func New(cons *Constellation, opts Options) *FlexCore { return core.New(cons, opts) }

// Baseline detectors evaluated by the paper.
var (
	// NewML returns the exact maximum-likelihood depth-first sphere
	// decoder (the paper's Geosphere reference).
	NewML = func(cons *Constellation) *detector.Sphere { return detector.NewSphere(cons) }
	// NewMMSE returns the linear MMSE detector.
	NewMMSE = detector.NewMMSE
	// NewZF returns the zero-forcing detector.
	NewZF = detector.NewZF
	// NewSIC returns ordered successive interference cancellation
	// (V-BLAST).
	NewSIC = detector.NewSIC
	// NewFCSD returns the fixed complexity sphere decoder with L fully
	// expanded levels (|Q|^L parallel paths).
	NewFCSD = detector.NewFCSD
	// NewKBest returns a breadth-first K-best decoder.
	NewKBest = detector.NewKBest
	// NewTrellis returns the trellis-based parallel detector of Wu et
	// al. [50].
	NewTrellis = detector.NewTrellis
	// NewLRZF returns lattice-reduction-aided zero-forcing (related work
	// [15]; strictly sequential, included as a baseline).
	NewLRZF = detector.NewLRZF
)

// Rayleigh draws an Nr×Nt i.i.d. CN(0,1) channel from a seeded RNG.
func Rayleigh(seed uint64, nr, nt int) *Matrix {
	return channel.Rayleigh(channel.NewRNG(seed), nr, nt)
}

// Sigma2FromSNRdB converts a per-stream SNR (dB) to a noise variance for
// unit-energy constellations.
func Sigma2FromSNRdB(snrdB float64) float64 { return channel.Sigma2FromSNRdB(snrdB, 1) }

// Link-level simulation (see internal/phy for the full chain).
type (
	// LinkConfig is the uplink geometry (users, antennas, constellation,
	// code rate, subcarriers, OFDM symbols per packet).
	LinkConfig = phy.LinkConfig
	// SimConfig drives one link-level measurement.
	SimConfig = phy.SimConfig
	// SimResult summarises PER, BER and network throughput.
	SimResult = phy.Result
	// CalibrationConfig locates the SNR of a PER operating point.
	CalibrationConfig = phy.CalibrationConfig
	// ChannelProvider supplies per-packet per-subcarrier channels.
	ChannelProvider = phy.ChannelProvider
	// WaveformConfig drives a full time-domain (waveform-level) run with
	// preamble-based channel estimation.
	WaveformConfig = phy.WaveformConfig
	// WaveformResult reports waveform-level detection quality.
	WaveformResult = phy.WaveformResult
)

// RunLink simulates packets through the full TX→channel→RX chain.
func RunLink(cfg SimConfig) (SimResult, error) { return phy.Run(cfg) }

// CalibrateSNR bisects a detector's PER-vs-SNR curve to a target PER
// (default detector: exact ML — the paper's anchor definition).
func CalibrateSNR(cfg CalibrationConfig) (snrdB, measuredPER float64, err error) {
	return phy.CalibrateSNR(cfg)
}

// RunWaveform executes the time-domain over-the-air-style chain: OFDM
// waveform synthesis, sample-level multipath, LTF channel estimation,
// then detection.
func RunWaveform(cfg WaveformConfig) (WaveformResult, error) { return phy.RunWaveform(cfg) }

// QRResult is a (column-permuted) thin QR decomposition H·P = Q·R.
type QRResult = cmatrix.QRResult

// SortedQR computes the SQRD-ordered QR decomposition [13] used by the
// tree-search detectors; its R factor feeds FindPaths.
func SortedQR(h *Matrix) *QRResult { return cmatrix.SortedQR(h, cmatrix.OrderSQRD) }

// FindPaths exposes FlexCore's pre-processing directly: the nPE most
// promising position vectors for a channel with upper-triangular factor
// r and noise variance sigma2 (stopThreshold > 0 enables the a-FlexCore
// early stop).
func FindPaths(r *Matrix, sigma2 float64, cons *Constellation, nPE int, stopThreshold float64) []Path {
	model := core.NewModel(r, sigma2, cons)
	paths, _ := core.FindPaths(model, nPE, stopThreshold)
	return paths
}
